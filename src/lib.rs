//! Umbrella crate for the PayloadPark reproduction workspace.
//!
//! This crate only hosts the top-level integration tests (`tests/`) and the
//! runnable examples (`examples/`); the implementation lives in the member
//! crates re-exported below.

pub use payloadpark as core;
pub use pp_harness as harness;
pub use pp_metrics as metrics;
pub use pp_netsim as netsim;
pub use pp_nf as nf;
pub use pp_packet as packet;
pub use pp_rmt as rmt;
pub use pp_trafficgen as trafficgen;
