//! NF-framework profiles and the Explicit-Drop notification.
//!
//! The paper evaluates two frameworks (§6.1): OpenNetVM (DPDK + Docker
//! containers, shared-memory rings between NFs) and NetBricks (DPDK + Rust,
//! no container isolation). For the server's cost model they differ in
//! per-packet fixed overhead and per-byte cost; both run the same NF code.

use pp_packet::ppark::{PayloadParkHeader, PpOpcode, PAYLOADPARK_HEADER_LEN};
use pp_packet::udp::UDP_HEADER_LEN;
use pp_packet::Packet;

/// Cost profile of an NF framework.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct FrameworkProfile {
    /// Display name.
    pub name: &'static str,
    /// Fixed cycles per packet (rx/tx processing, ring hops, scheduling).
    pub fixed_cycles: u64,
    /// Cycles per wire byte (DMA, copies, cache traffic). This term is what
    /// PayloadPark's truncation buys back.
    pub per_byte_cycles: f64,
    /// Whether the framework carries the 50-line Explicit-Drop patch
    /// (§6.2.4) that notifies the switch of NF drops.
    pub explicit_drop: bool,
}

impl FrameworkProfile {
    /// OpenNetVM: container-based, shared-memory rings (heavier fixed
    /// costs).
    pub fn open_netvm() -> Self {
        FrameworkProfile {
            name: "OpenNetVM",
            fixed_cycles: 150,
            per_byte_cycles: 0.60,
            explicit_drop: false,
        }
    }

    /// NetBricks: Rust, no isolation overhead (lighter fixed costs).
    pub fn netbricks() -> Self {
        FrameworkProfile {
            name: "NetBricks",
            fixed_cycles: 110,
            per_byte_cycles: 0.50,
            explicit_drop: false,
        }
    }

    /// Enables the Explicit-Drop patch.
    pub fn with_explicit_drop(mut self) -> Self {
        self.explicit_drop = true;
        self
    }

    /// Total service cycles for a packet of `wire_bytes` whose NF chain
    /// consumed `chain_cycles`.
    pub fn service_cycles(&self, wire_bytes: usize, chain_cycles: u64) -> f64 {
        self.fixed_cycles as f64 + chain_cycles as f64 + self.per_byte_cycles * wire_bytes as f64
    }
}

/// Builds the Explicit-Drop notification for a packet the NF chain dropped.
///
/// Returns `None` when the packet does not carry an *enabled* PayloadPark
/// header (nothing is parked, nothing to reclaim). Otherwise the packet is
/// truncated to `headers + PayloadPark header`, the opcode is flipped to
/// Explicit Drop, and the length fields are fixed — exactly what the
/// paper's 50-line OpenNetVM change does (§6.2.4).
pub fn explicit_drop_notification(pkt: &Packet) -> Option<Packet> {
    let parsed = pkt.parse().ok()?;
    if parsed.five_tuple().protocol != 17 {
        return None;
    }
    let off = parsed.offsets();
    let payload = parsed.payload();
    let pp = PayloadParkHeader::new_checked(payload).ok()?;
    if !pp.enabled() {
        return None;
    }
    let keep = off.payload + PAYLOADPARK_HEADER_LEN;
    let mut bytes = pkt.bytes()[..keep].to_vec();
    {
        let mut hdr = PayloadParkHeader::new_checked(&mut bytes[off.payload..]).ok()?;
        hdr.set_opcode(PpOpcode::ExplicitDrop);
    }
    // Fix lengths: IP total = header + UDP header + PayloadPark header.
    let ip_total = (keep - off.ip) as u16;
    bytes[off.ip + 2..off.ip + 4].copy_from_slice(&ip_total.to_be_bytes());
    let udp_len = (UDP_HEADER_LEN + PAYLOADPARK_HEADER_LEN) as u16;
    bytes[off.transport + 4..off.transport + 6].copy_from_slice(&udp_len.to_be_bytes());
    // Recompute the IP header checksum over the patched header.
    bytes[off.ip + 10] = 0;
    bytes[off.ip + 11] = 0;
    let ihl = (bytes[off.ip] & 0x0F) as usize * 4;
    let ck = pp_packet::checksum::checksum(&bytes[off.ip..off.ip + ihl]);
    bytes[off.ip + 10..off.ip + 12].copy_from_slice(&ck.to_be_bytes());
    Some(Packet::with_seq(bytes, pkt.seq()))
}

#[cfg(test)]
mod tests {
    use super::*;
    use pp_packet::builder::UdpPacketBuilder;
    use pp_packet::ppark::PpTag;
    use pp_packet::IPV4_HEADER_LEN;

    fn parked_packet(enabled: bool) -> Packet {
        // UDP payload = PayloadPark header + 40 bytes of remaining payload.
        let mut payload = vec![0u8; PAYLOADPARK_HEADER_LEN + 40];
        let mut hdr = PayloadParkHeader::new_checked(&mut payload[..]).unwrap();
        if enabled {
            hdr.write_enabled(PpOpcode::Merge, PpTag { table_index: 3, generation: 9 });
        } else {
            hdr.write_disabled();
        }
        UdpPacketBuilder::new().payload(&payload).build()
    }

    #[test]
    fn profiles_have_expected_ordering() {
        let onvm = FrameworkProfile::open_netvm();
        let nb = FrameworkProfile::netbricks();
        assert!(onvm.fixed_cycles > nb.fixed_cycles);
        assert!(onvm.per_byte_cycles > nb.per_byte_cycles);
        assert!(!onvm.explicit_drop);
        assert!(onvm.with_explicit_drop().explicit_drop);
    }

    #[test]
    fn service_cycles_formula() {
        let p = FrameworkProfile::open_netvm();
        let c = p.service_cycles(500, 100);
        assert!((c - (150.0 + 100.0 + 0.6 * 500.0)).abs() < 1e-9);
    }

    #[test]
    fn notification_truncates_and_flips_opcode() {
        let pkt = parked_packet(true);
        let n = explicit_drop_notification(&pkt).expect("enabled header");
        // 14 + 20 + 8 + 7 bytes.
        assert_eq!(n.len(), 49);
        let parsed = n.parse().unwrap();
        assert_eq!(parsed.wire_len(), 49);
        let pp = PayloadParkHeader::new_checked(parsed.payload()).unwrap();
        assert_eq!(pp.opcode(), PpOpcode::ExplicitDrop);
        assert!(pp.enabled());
        // Tag survives untouched.
        assert_eq!(pp.verify_tag().unwrap(), PpTag { table_index: 3, generation: 9 });
    }

    #[test]
    fn disabled_header_yields_no_notification() {
        assert!(explicit_drop_notification(&parked_packet(false)).is_none());
    }

    #[test]
    fn plain_packet_yields_no_notification() {
        // 4-byte payload: too short for a PayloadPark header.
        let pkt = UdpPacketBuilder::new().payload(&[1, 2, 3, 4]).build();
        assert!(explicit_drop_notification(&pkt).is_none());
    }

    #[test]
    fn notification_preserves_seq() {
        let mut pkt = parked_packet(true);
        pkt.set_seq(77);
        assert_eq!(explicit_drop_notification(&pkt).unwrap().seq(), 77);
    }

    #[test]
    fn ip_header_len_sane() {
        // Document the constant relationship the truncation relies on.
        assert_eq!(IPV4_HEADER_LEN, 20);
    }
}
