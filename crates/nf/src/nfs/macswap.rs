//! The MAC-address swapper — the minimal NF of the paper's multi-server
//! (§6.2.3) and functional-equivalence (§6.2.6) experiments.

use crate::chain::{Nf, NfResult};
use pp_packet::ethernet::EthernetFrame;
use pp_packet::Packet;

/// Cycles per packet.
pub const MACSWAP_CYCLES: u64 = 30;

/// The MAC swapper NF.
#[derive(Debug, Default)]
pub struct MacSwap {
    swapped: u64,
}

impl MacSwap {
    /// Creates the NF.
    pub fn new() -> Self {
        Self::default()
    }

    /// Packets processed.
    pub fn swapped(&self) -> u64 {
        self.swapped
    }
}

impl Nf for MacSwap {
    fn name(&self) -> &str {
        "MacSwap"
    }

    fn process(&mut self, pkt: &mut Packet) -> NfResult {
        if let Ok(mut eth) = EthernetFrame::new_checked(&mut pkt.bytes_mut()[..]) {
            eth.swap_macs();
            self.swapped += 1;
        }
        NfResult::forward(MACSWAP_CYCLES)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::chain::NfVerdict;
    use pp_packet::builder::UdpPacketBuilder;
    use pp_packet::MacAddr;

    #[test]
    fn swaps_addresses() {
        let mut nf = MacSwap::new();
        let mut p = UdpPacketBuilder::new()
            .src_mac(MacAddr::from_index(1))
            .dst_mac(MacAddr::from_index(2))
            .total_size(100, 1)
            .build();
        let r = nf.process(&mut p);
        assert_eq!(r.verdict, NfVerdict::Forward);
        assert_eq!(r.cycles, MACSWAP_CYCLES);
        let eth = EthernetFrame::new_checked(p.bytes()).unwrap();
        assert_eq!(eth.src(), MacAddr::from_index(2));
        assert_eq!(eth.dst(), MacAddr::from_index(1));
        assert_eq!(nf.swapped(), 1);
    }

    #[test]
    fn runt_frame_passes_unswapped() {
        let mut nf = MacSwap::new();
        let mut p = Packet::new(vec![0u8; 5]);
        let r = nf.process(&mut p);
        assert_eq!(r.verdict, NfVerdict::Forward);
        assert_eq!(nf.swapped(), 0);
    }
}
