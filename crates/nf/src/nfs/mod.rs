//! The network functions of the paper's evaluation (§6.1):
//!
//! * [`firewall::Firewall`] — linearly probes a blacklist of source
//!   prefixes (20 rules in the 3-NF chain, 1 rule in the 2-NF chain);
//! * [`nat::Nat`] — a MazuNAT-style source NAT with a flow table and
//!   incremental checksum updates;
//! * [`maglev::MaglevLb`] — the Maglev consistent-hashing L4 load balancer
//!   (lookup-table construction included);
//! * [`macswap::MacSwap`] — swaps Ethernet addresses (the multi-server and
//!   NF-cost experiments);
//! * [`synthetic`] — busy-loop NFs with calibrated per-packet cycles
//!   (NF-Light ≈ 50, NF-Medium ≈ 300, NF-Heavy ≈ 570; §6.3.3).

pub mod firewall;
pub mod macswap;
pub mod maglev;
pub mod nat;
pub mod synthetic;

pub use firewall::Firewall;
pub use macswap::MacSwap;
pub use maglev::MaglevLb;
pub use nat::Nat;
pub use synthetic::{Synthetic, NF_HEAVY_CYCLES, NF_LIGHT_CYCLES, NF_MEDIUM_CYCLES};

/// Incremental internet-checksum update per RFC 1624 (equation 3):
/// `HC' = ~(~HC + ~m + m')` — the standard way NATs patch the UDP/TCP
/// checksum after rewriting addresses or ports without re-summing payload
/// bytes (essential here: the payload may be parked in the switch).
pub fn incremental_checksum_update(old_ck: u16, old_word: u16, new_word: u16) -> u16 {
    if old_ck == 0 {
        // Zero UDP checksum means "not computed": leave it that way.
        return 0;
    }
    let mut sum = u32::from(!old_ck) + u32::from(!old_word) + u32::from(new_word);
    while sum >> 16 != 0 {
        sum = (sum & 0xFFFF) + (sum >> 16);
    }
    let ck = !(sum as u16);
    // UDP: a computed checksum of zero is transmitted as 0xFFFF (RFC 768).
    if ck == 0 {
        0xFFFF
    } else {
        ck
    }
}

/// Applies [`incremental_checksum_update`] for a 32-bit field change (e.g.
/// an IPv4 address) by folding it as two 16-bit words.
pub fn incremental_checksum_update32(old_ck: u16, old: u32, new: u32) -> u16 {
    let ck = incremental_checksum_update(old_ck, (old >> 16) as u16, (new >> 16) as u16);
    incremental_checksum_update(ck, old as u16, new as u16)
}

#[cfg(test)]
mod tests {
    use super::*;
    use pp_packet::checksum::{Checksum, PseudoHeader};

    /// Full recompute for comparison.
    fn full_udp_checksum(src: u32, dst: u32, seg: &[u8]) -> u16 {
        let mut c = Checksum::new();
        PseudoHeader { src, dst, protocol: 17, length: seg.len() as u16 }.add_to(&mut c);
        // Zero out the checksum field (bytes 6..8) while summing.
        c.add_bytes(&seg[..6]);
        c.add_bytes(&[0, 0]);
        c.add_bytes(&seg[8..]);
        let ck = c.finish();
        if ck == 0 {
            0xFFFF
        } else {
            ck
        }
    }

    #[test]
    fn incremental_matches_full_recompute_for_port_change() {
        let src = 0x0A000001u32;
        let dst = 0x0A000002u32;
        // A UDP segment: ports 1000→2000, len 12, payload [1,2,3,4].
        let mut seg = vec![0x03, 0xE8, 0x07, 0xD0, 0x00, 0x0C, 0, 0, 1, 2, 3, 4];
        let ck = full_udp_checksum(src, dst, &seg);
        seg[6..8].copy_from_slice(&ck.to_be_bytes());

        // Rewrite the source port 1000 -> 5555.
        let new_port = 5555u16;
        let patched = incremental_checksum_update(ck, 1000, new_port);
        seg[0..2].copy_from_slice(&new_port.to_be_bytes());
        seg[6..8].copy_from_slice(&patched.to_be_bytes());
        let expect = full_udp_checksum(src, dst, &seg);
        assert_eq!(patched, expect);
    }

    #[test]
    fn incremental_matches_full_recompute_for_address_change() {
        let src = 0x0A000001u32;
        let dst = 0x0A000002u32;
        let mut seg = vec![0x03, 0xE8, 0x07, 0xD0, 0x00, 0x0A, 0, 0, 0xAB, 0xCD];
        let ck = full_udp_checksum(src, dst, &seg);
        seg[6..8].copy_from_slice(&ck.to_be_bytes());

        let new_src = 0xC0A80101u32; // 192.168.1.1
        let patched = incremental_checksum_update32(ck, src, new_src);
        seg[6..8].copy_from_slice(&patched.to_be_bytes());
        let expect = full_udp_checksum(new_src, dst, &seg);
        assert_eq!(patched, expect);
    }

    #[test]
    fn zero_checksum_stays_zero() {
        assert_eq!(incremental_checksum_update(0, 1, 2), 0);
        assert_eq!(incremental_checksum_update32(0, 1, 2), 0);
    }

    #[test]
    fn identity_change_preserves_checksum() {
        // Changing a word to itself must not alter the checksum.
        let ck = 0x1234;
        assert_eq!(incremental_checksum_update(ck, 0xABCD, 0xABCD), ck);
    }
}
