//! A linear-probe firewall.
//!
//! "The firewall linearly probes through a list of blacklisted IP
//! addresses" (§6.1). Cost is linear in the number of rules probed, which
//! is what makes the 20-rule firewall of the 3-NF chain heavier than the
//! 1-rule firewall of the 2-NF chain.

use crate::chain::{Nf, NfResult};
use pp_packet::Packet;
use std::net::Ipv4Addr;

/// Base cycles charged per packet (parse + bookkeeping).
pub const FIREWALL_BASE_CYCLES: u64 = 26;
/// Cycles per rule probed.
pub const FIREWALL_PER_RULE_CYCLES: u64 = 4;

/// One blacklist rule: a source prefix.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct FirewallRule {
    /// Network address.
    pub addr: Ipv4Addr,
    /// Prefix length (0-32).
    pub prefix_len: u8,
}

impl FirewallRule {
    /// Builds a rule; panics on prefix > 32 (a configuration bug).
    pub fn new(addr: Ipv4Addr, prefix_len: u8) -> Self {
        assert!(prefix_len <= 32, "prefix length out of range");
        FirewallRule { addr, prefix_len }
    }

    /// True when `ip` falls inside this prefix.
    pub fn matches(&self, ip: Ipv4Addr) -> bool {
        if self.prefix_len == 0 {
            return true;
        }
        let mask = u32::MAX << (32 - u32::from(self.prefix_len));
        (u32::from(ip) & mask) == (u32::from(self.addr) & mask)
    }
}

/// Statistics kept by the firewall.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct FirewallStats {
    /// Packets inspected.
    pub inspected: u64,
    /// Packets dropped by a rule.
    pub blocked: u64,
}

/// The firewall NF.
#[derive(Debug, Clone)]
pub struct Firewall {
    rules: Vec<FirewallRule>,
    stats: FirewallStats,
}

impl Firewall {
    /// Creates a firewall with an explicit blacklist.
    pub fn new(rules: Vec<FirewallRule>) -> Self {
        Firewall { rules, stats: FirewallStats::default() }
    }

    /// A firewall with `n` synthetic /32 rules, none of which match the
    /// default generator addresses — models rule-count cost without drops.
    pub fn with_rule_count(n: usize) -> Self {
        let rules = (0..n)
            .map(|i| FirewallRule::new(Ipv4Addr::new(203, 0, (i / 256) as u8, (i % 256) as u8), 32))
            .collect();
        Firewall::new(rules)
    }

    /// Number of configured rules.
    pub fn rule_count(&self) -> usize {
        self.rules.len()
    }

    /// Accumulated statistics.
    pub fn stats(&self) -> FirewallStats {
        self.stats
    }
}

impl Nf for Firewall {
    fn name(&self) -> &str {
        "Firewall"
    }

    fn process(&mut self, pkt: &mut Packet) -> NfResult {
        self.stats.inspected += 1;
        let Ok(parsed) = pkt.parse() else {
            // Non-IPv4/UDP/TCP traffic passes (shallow firewall).
            return NfResult::forward(FIREWALL_BASE_CYCLES);
        };
        let src = parsed.five_tuple().src_ip;
        let mut probed = 0u64;
        for rule in &self.rules {
            probed += 1;
            if rule.matches(src) {
                self.stats.blocked += 1;
                return NfResult::drop(FIREWALL_BASE_CYCLES + FIREWALL_PER_RULE_CYCLES * probed);
            }
        }
        NfResult::forward(FIREWALL_BASE_CYCLES + FIREWALL_PER_RULE_CYCLES * probed)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::chain::NfVerdict;
    use pp_packet::builder::UdpPacketBuilder;

    fn pkt_from(src: Ipv4Addr) -> Packet {
        UdpPacketBuilder::new().src_ip(src).total_size(100, 1).build()
    }

    #[test]
    fn blocks_matching_prefix() {
        let mut fw = Firewall::new(vec![FirewallRule::new(Ipv4Addr::new(10, 1, 0, 0), 16)]);
        let r = fw.process(&mut pkt_from(Ipv4Addr::new(10, 1, 2, 3)));
        assert_eq!(r.verdict, NfVerdict::Drop);
        let r = fw.process(&mut pkt_from(Ipv4Addr::new(10, 2, 2, 3)));
        assert_eq!(r.verdict, NfVerdict::Forward);
        assert_eq!(fw.stats(), FirewallStats { inspected: 2, blocked: 1 });
    }

    #[test]
    fn cycles_scale_with_rules_probed() {
        let mut fw = Firewall::with_rule_count(20);
        let r = fw.process(&mut pkt_from(Ipv4Addr::new(10, 0, 0, 1)));
        assert_eq!(r.verdict, NfVerdict::Forward);
        // All 20 rules probed.
        assert_eq!(r.cycles, FIREWALL_BASE_CYCLES + 20 * FIREWALL_PER_RULE_CYCLES);

        let mut fw1 = Firewall::with_rule_count(1);
        let r1 = fw1.process(&mut pkt_from(Ipv4Addr::new(10, 0, 0, 1)));
        assert!(r1.cycles < r.cycles);
    }

    #[test]
    fn early_match_probes_fewer_rules() {
        let mut fw = Firewall::new(vec![
            FirewallRule::new(Ipv4Addr::new(10, 0, 0, 1), 32),
            FirewallRule::new(Ipv4Addr::new(10, 0, 0, 2), 32),
        ]);
        let r = fw.process(&mut pkt_from(Ipv4Addr::new(10, 0, 0, 1)));
        assert_eq!(r.cycles, FIREWALL_BASE_CYCLES + FIREWALL_PER_RULE_CYCLES);
    }

    #[test]
    fn prefix_zero_matches_everything() {
        let rule = FirewallRule::new(Ipv4Addr::new(0, 0, 0, 0), 0);
        assert!(rule.matches(Ipv4Addr::new(255, 255, 255, 255)));
        assert!(rule.matches(Ipv4Addr::new(1, 2, 3, 4)));
    }

    #[test]
    fn synthetic_rules_do_not_match_default_traffic() {
        let mut fw = Firewall::with_rule_count(100);
        assert_eq!(fw.rule_count(), 100);
        let r = fw.process(&mut pkt_from(Ipv4Addr::new(10, 0, 0, 1)));
        assert_eq!(r.verdict, NfVerdict::Forward);
    }

    #[test]
    fn garbage_packet_forwards() {
        let mut fw = Firewall::with_rule_count(5);
        let mut junk = Packet::new(vec![0u8; 20]);
        let r = fw.process(&mut junk);
        assert_eq!(r.verdict, NfVerdict::Forward);
        assert_eq!(r.cycles, FIREWALL_BASE_CYCLES);
    }

    #[test]
    #[should_panic(expected = "prefix length")]
    fn bad_prefix_panics() {
        FirewallRule::new(Ipv4Addr::new(0, 0, 0, 0), 33);
    }
}
