//! The Maglev consistent-hashing load balancer (Eisenbud et al., NSDI'16),
//! which the paper's 3-NF chain uses as its L4 LB (§6.1).
//!
//! Implements the real lookup-table construction: each backend fills table
//! slots following its own permutation of `(offset, skip)` derived from two
//! hashes of its name, giving near-perfectly balanced slot ownership and
//! minimal disruption when backends change.

use crate::chain::{Nf, NfResult};
use crate::nfs::incremental_checksum_update32;
use pp_packet::parse::FiveTuple;
use pp_packet::Packet;
use std::net::Ipv4Addr;

/// Cycles per packet (hash + table lookup + rewrite).
pub const MAGLEV_CYCLES: u64 = 50;

/// Default lookup-table size; a prime, as Maglev requires (the paper's
/// Maglev uses 65537).
pub const DEFAULT_TABLE_SIZE: usize = 65_537;

/// A backend server.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Backend {
    /// Backend name (hashed for the permutation).
    pub name: String,
    /// Virtual-IP traffic is rewritten to this address.
    pub ip: Ipv4Addr,
}

/// FNV-1a, used for both permutation hashes (with different seeds) and the
/// per-packet 5-tuple hash.
fn fnv1a(seed: u64, data: &[u8]) -> u64 {
    let mut h = 0xcbf29ce484222325u64 ^ seed;
    for &b in data {
        h ^= u64::from(b);
        h = h.wrapping_mul(0x100000001b3);
    }
    h
}

fn hash_tuple(ft: &FiveTuple) -> u64 {
    let mut key = [0u8; 13];
    key[0..4].copy_from_slice(&ft.src_ip.octets());
    key[4..8].copy_from_slice(&ft.dst_ip.octets());
    key[8..10].copy_from_slice(&ft.src_port.to_be_bytes());
    key[10..12].copy_from_slice(&ft.dst_port.to_be_bytes());
    key[12] = ft.protocol;
    fnv1a(0, &key)
}

/// Statistics kept by the load balancer.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct MaglevStats {
    /// Packets dispatched.
    pub dispatched: u64,
}

/// The Maglev LB NF.
#[derive(Debug)]
pub struct MaglevLb {
    backends: Vec<Backend>,
    table: Vec<u32>,
    stats: MaglevStats,
}

impl MaglevLb {
    /// Builds the LB with the default table size.
    pub fn new(backends: Vec<Backend>) -> Self {
        Self::with_table_size(backends, DEFAULT_TABLE_SIZE)
    }

    /// Builds the LB with an explicit (prime) table size.
    ///
    /// Panics on an empty backend list — an LB with nothing to balance to
    /// is a configuration bug.
    pub fn with_table_size(backends: Vec<Backend>, table_size: usize) -> Self {
        assert!(!backends.is_empty(), "maglev needs at least one backend");
        let table = Self::populate(&backends, table_size);
        MaglevLb { backends, table, stats: MaglevStats::default() }
    }

    /// The Maglev population algorithm (§3.4 of the Maglev paper).
    fn populate(backends: &[Backend], m: usize) -> Vec<u32> {
        let n = backends.len();
        let mut permutation = Vec::with_capacity(n);
        for b in backends {
            let offset = fnv1a(0x5bd1e995, b.name.as_bytes()) as usize % m;
            let skip = fnv1a(0xc2b2ae35, b.name.as_bytes()) as usize % (m - 1) + 1;
            permutation.push((offset, skip));
        }
        let mut next = vec![0usize; n];
        let mut entry = vec![u32::MAX; m];
        let mut filled = 0usize;
        while filled < m {
            for i in 0..n {
                // Walk backend i's permutation to its next free slot.
                loop {
                    let (offset, skip) = permutation[i];
                    let c = (offset + next[i] * skip) % m;
                    next[i] += 1;
                    if entry[c] == u32::MAX {
                        entry[c] = i as u32;
                        filled += 1;
                        break;
                    }
                }
                if filled == m {
                    break;
                }
            }
        }
        entry
    }

    /// The backend a 5-tuple maps to.
    pub fn backend_for(&self, ft: &FiveTuple) -> &Backend {
        let idx = (hash_tuple(ft) % self.table.len() as u64) as usize;
        &self.backends[self.table[idx] as usize]
    }

    /// Slot counts per backend (for balance inspection).
    pub fn slot_distribution(&self) -> Vec<usize> {
        let mut counts = vec![0usize; self.backends.len()];
        for &e in &self.table {
            counts[e as usize] += 1;
        }
        counts
    }

    /// Accumulated statistics.
    pub fn stats(&self) -> MaglevStats {
        self.stats
    }
}

impl Nf for MaglevLb {
    fn name(&self) -> &str {
        "MaglevLB"
    }

    fn process(&mut self, pkt: &mut Packet) -> NfResult {
        let Ok(parsed) = pkt.parse() else {
            return NfResult::forward(MAGLEV_CYCLES);
        };
        let ft = parsed.five_tuple();
        let ip_off = parsed.offsets().ip;
        let tr_off = parsed.offsets().transport;
        let proto = ft.protocol;
        let backend_ip = self.backend_for(&ft).ip;
        let old_dst = u32::from(ft.dst_ip);
        let new_dst = u32::from(backend_ip);

        let bytes = pkt.bytes_mut();
        bytes[ip_off + 16..ip_off + 20].copy_from_slice(&backend_ip.octets());
        // Patch the IP header checksum incrementally.
        let ip_ck = u16::from_be_bytes([bytes[ip_off + 10], bytes[ip_off + 11]]);
        let step = |ck: u16, o: u16, n: u16| {
            let mut sum = u32::from(!ck) + u32::from(!o) + u32::from(n);
            while sum >> 16 != 0 {
                sum = (sum & 0xFFFF) + (sum >> 16);
            }
            !(sum as u16)
        };
        let ip_ck = step(ip_ck, (old_dst >> 16) as u16, (new_dst >> 16) as u16);
        let ip_ck = step(ip_ck, old_dst as u16, new_dst as u16);
        bytes[ip_off + 10..ip_off + 12].copy_from_slice(&ip_ck.to_be_bytes());
        // And the transport checksum (pseudo-header includes dst address).
        let ck_off = if proto == 17 { tr_off + 6 } else { tr_off + 16 };
        let old_ck = u16::from_be_bytes([bytes[ck_off], bytes[ck_off + 1]]);
        let ck = incremental_checksum_update32(old_ck, old_dst, new_dst);
        bytes[ck_off..ck_off + 2].copy_from_slice(&ck.to_be_bytes());

        self.stats.dispatched += 1;
        NfResult::forward(MAGLEV_CYCLES)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::chain::NfVerdict;
    use pp_packet::builder::UdpPacketBuilder;
    use pp_packet::ethernet::EthernetFrame;
    use pp_packet::ipv4::Ipv4Header;
    use pp_packet::udp::UdpHeader;

    fn backends(n: usize) -> Vec<Backend> {
        (0..n)
            .map(|i| Backend {
                name: format!("backend-{i}"),
                ip: Ipv4Addr::new(10, 50, 0, i as u8 + 1),
            })
            .collect()
    }

    #[test]
    fn table_fully_populated_and_balanced() {
        let lb = MaglevLb::with_table_size(backends(5), 1009);
        let dist = lb.slot_distribution();
        assert_eq!(dist.iter().sum::<usize>(), 1009);
        let min = *dist.iter().min().unwrap();
        let max = *dist.iter().max().unwrap();
        // Maglev guarantees near-perfect balance (within a few percent).
        assert!(max - min <= 1009 / 50, "imbalance: {dist:?}");
    }

    #[test]
    fn same_flow_always_same_backend() {
        let mut lb = MaglevLb::with_table_size(backends(4), 503);
        let mk = || {
            UdpPacketBuilder::new()
                .src_ip(Ipv4Addr::new(1, 2, 3, 4))
                .src_port(777)
                .total_size(100, 1)
                .build()
        };
        let mut p1 = mk();
        lb.process(&mut p1);
        let dst1 = p1.parse().unwrap().five_tuple().dst_ip;
        let mut p2 = mk();
        lb.process(&mut p2);
        assert_eq!(dst1, p2.parse().unwrap().five_tuple().dst_ip);
        assert_eq!(lb.stats().dispatched, 2);
    }

    #[test]
    fn different_flows_spread_across_backends() {
        let mut lb = MaglevLb::with_table_size(backends(4), 503);
        let mut seen = std::collections::HashSet::new();
        for sp in 0..64u16 {
            let mut p = UdpPacketBuilder::new().src_port(sp).total_size(100, 1).build();
            lb.process(&mut p);
            seen.insert(p.parse().unwrap().five_tuple().dst_ip);
        }
        assert!(seen.len() >= 3, "only {seen:?}");
    }

    #[test]
    fn checksums_stay_valid_after_rewrite() {
        let mut lb = MaglevLb::with_table_size(backends(3), 101);
        let mut p = UdpPacketBuilder::new().total_size(300, 5).build();
        let r = lb.process(&mut p);
        assert_eq!(r.verdict, NfVerdict::Forward);
        let eth = EthernetFrame::new_checked(p.bytes()).unwrap();
        let ip = Ipv4Header::new_checked(eth.payload()).unwrap();
        assert!(ip.verify_checksum());
        let udp = UdpHeader::new_checked(ip.payload()).unwrap();
        assert!(udp.verify_checksum(u32::from(ip.src()), u32::from(ip.dst())));
    }

    #[test]
    fn removing_a_backend_mostly_preserves_mappings() {
        // Maglev's minimal-disruption property.
        let lb5 = MaglevLb::with_table_size(backends(5), 1009);
        let mut four = backends(5);
        four.remove(4);
        let lb4 = MaglevLb::with_table_size(four, 1009);
        let mut stable = 0usize;
        let mut total = 0usize;
        for sp in 0..500u16 {
            let ft = FiveTuple {
                src_ip: Ipv4Addr::new(9, 9, 9, 9),
                dst_ip: Ipv4Addr::new(10, 0, 0, 2),
                src_port: sp,
                dst_port: 80,
                protocol: 17,
            };
            let b5 = lb5.backend_for(&ft);
            if b5.name == "backend-4" {
                continue; // flows on the removed backend must move
            }
            total += 1;
            if lb5.backend_for(&ft).name == lb4.backend_for(&ft).name {
                stable += 1;
            }
        }
        // The vast majority of surviving flows keep their backend.
        assert!(stable as f64 / total as f64 > 0.75, "{stable}/{total}");
    }

    #[test]
    #[should_panic(expected = "at least one backend")]
    fn empty_backends_panics() {
        MaglevLb::new(vec![]);
    }
}
