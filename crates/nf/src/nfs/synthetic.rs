//! Synthetic NFs of calibrated computational cost.
//!
//! The paper builds NF-Light / NF-Medium / NF-Heavy by adding a busy loop
//! to a MAC swapper, measuring ~50 / ~300 / ~570 cycles per packet with
//! RDTSC (§6.1, §6.3.3). Here the cost is the declared cycle count fed to
//! the server's service-time model.

use crate::chain::{Nf, NfResult};
use pp_packet::ethernet::EthernetFrame;
use pp_packet::Packet;

/// NF-Light average cycles per packet.
pub const NF_LIGHT_CYCLES: u64 = 50;
/// NF-Medium average cycles per packet.
pub const NF_MEDIUM_CYCLES: u64 = 300;
/// NF-Heavy average cycles per packet.
pub const NF_HEAVY_CYCLES: u64 = 570;

/// A MAC swapper with an attached busy loop.
#[derive(Debug, Clone)]
pub struct Synthetic {
    name: String,
    cycles: u64,
}

impl Synthetic {
    /// An NF burning `cycles` per packet.
    pub fn with_cycles(name: impl Into<String>, cycles: u64) -> Self {
        Synthetic { name: name.into(), cycles }
    }

    /// NF-Light (≈50 cycles).
    pub fn light() -> Self {
        Self::with_cycles("NF-Light", NF_LIGHT_CYCLES)
    }

    /// NF-Medium (≈300 cycles).
    pub fn medium() -> Self {
        Self::with_cycles("NF-Medium", NF_MEDIUM_CYCLES)
    }

    /// NF-Heavy (≈570 cycles).
    pub fn heavy() -> Self {
        Self::with_cycles("NF-Heavy", NF_HEAVY_CYCLES)
    }

    /// The configured per-packet cost.
    pub fn cycles(&self) -> u64 {
        self.cycles
    }
}

impl Nf for Synthetic {
    fn name(&self) -> &str {
        &self.name
    }

    fn process(&mut self, pkt: &mut Packet) -> NfResult {
        if let Ok(mut eth) = EthernetFrame::new_checked(&mut pkt.bytes_mut()[..]) {
            eth.swap_macs();
        }
        NfResult::forward(self.cycles)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use pp_packet::builder::UdpPacketBuilder;

    #[test]
    fn presets_match_paper_costs() {
        assert_eq!(Synthetic::light().cycles(), 50);
        assert_eq!(Synthetic::medium().cycles(), 300);
        assert_eq!(Synthetic::heavy().cycles(), 570);
        assert_eq!(Synthetic::light().name, "NF-Light");
    }

    #[test]
    fn charges_declared_cycles_and_swaps_macs() {
        let mut nf = Synthetic::with_cycles("custom", 123);
        let mut p = UdpPacketBuilder::new().total_size(80, 1).build();
        let before_dst = p.bytes()[0..6].to_vec();
        let r = nf.process(&mut p);
        assert_eq!(r.cycles, 123);
        assert_eq!(&p.bytes()[6..12], &before_dst[..]);
    }
}
