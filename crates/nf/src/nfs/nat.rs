//! A MazuNAT-style source NAT.
//!
//! Rewrites (src IP, src port) of outbound flows to an external address
//! with a per-flow allocated port, keeping a bidirectional flow table.
//! Checksums are patched *incrementally* (RFC 1624) — crucial under
//! PayloadPark, where the payload bytes are parked in the switch and a full
//! checksum recompute would be impossible.

use crate::chain::{Nf, NfResult};
use crate::nfs::{incremental_checksum_update, incremental_checksum_update32};
use pp_packet::parse::FiveTuple;
use pp_packet::Packet;
use std::collections::HashMap;
use std::net::Ipv4Addr;

/// Cycles for a flow-table hit.
pub const NAT_HIT_CYCLES: u64 = 60;
/// Cycles for allocating a new flow entry.
pub const NAT_ALLOC_CYCLES: u64 = 300;

/// Statistics kept by the NAT.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct NatStats {
    /// Packets translated outbound.
    pub translated_out: u64,
    /// Packets translated inbound (reverse path).
    pub translated_in: u64,
    /// New flows allocated.
    pub flows_allocated: u64,
    /// Packets dropped because the port pool was exhausted.
    pub pool_exhausted: u64,
}

/// The NAT NF.
#[derive(Debug)]
pub struct Nat {
    external_ip: Ipv4Addr,
    next_port: u16,
    /// Outbound: original 5-tuple → allocated external port.
    out_map: HashMap<FiveTuple, u16>,
    /// Inbound: external port → original (src ip, src port).
    in_map: HashMap<u16, (Ipv4Addr, u16)>,
    stats: NatStats,
}

impl Nat {
    /// First port of the allocation pool.
    pub const POOL_START: u16 = 1024;

    /// Creates a NAT translating to `external_ip`.
    pub fn new(external_ip: Ipv4Addr) -> Self {
        Nat {
            external_ip,
            next_port: Self::POOL_START,
            out_map: HashMap::new(),
            in_map: HashMap::new(),
            stats: NatStats::default(),
        }
    }

    /// Accumulated statistics.
    pub fn stats(&self) -> NatStats {
        self.stats
    }

    /// Number of active flows.
    pub fn flow_count(&self) -> usize {
        self.out_map.len()
    }

    fn rewrite_outbound(pkt: &mut Packet, new_ip: Ipv4Addr, new_port: u16) {
        let (ip_off, tr_off, old_src_ip, old_src_port, proto) = {
            let parsed = pkt.parse().expect("caller verified");
            let ft = parsed.five_tuple();
            (parsed.offsets().ip, parsed.offsets().transport, ft.src_ip, ft.src_port, ft.protocol)
        };
        let bytes = pkt.bytes_mut();
        // Rewrite the IPv4 source address and fix the IP header checksum.
        bytes[ip_off + 12..ip_off + 16].copy_from_slice(&new_ip.octets());
        let ip_ck = u16::from_be_bytes([bytes[ip_off + 10], bytes[ip_off + 11]]);
        let ip_ck =
            incremental_checksum_update32_raw(ip_ck, u32::from(old_src_ip), u32::from(new_ip));
        bytes[ip_off + 10..ip_off + 12].copy_from_slice(&ip_ck.to_be_bytes());
        // Rewrite the transport source port and patch the UDP/TCP checksum
        // (which also covers the pseudo-header source address).
        bytes[tr_off..tr_off + 2].copy_from_slice(&new_port.to_be_bytes());
        let ck_off = if proto == 17 { tr_off + 6 } else { tr_off + 16 };
        let old_ck = u16::from_be_bytes([bytes[ck_off], bytes[ck_off + 1]]);
        let ck = incremental_checksum_update32(old_ck, u32::from(old_src_ip), u32::from(new_ip));
        let ck = incremental_checksum_update(ck, old_src_port, new_port);
        bytes[ck_off..ck_off + 2].copy_from_slice(&ck.to_be_bytes());
    }

    fn rewrite_inbound(pkt: &mut Packet, orig_ip: Ipv4Addr, orig_port: u16) {
        let (ip_off, tr_off, old_dst_ip, old_dst_port, proto) = {
            let parsed = pkt.parse().expect("caller verified");
            let ft = parsed.five_tuple();
            (parsed.offsets().ip, parsed.offsets().transport, ft.dst_ip, ft.dst_port, ft.protocol)
        };
        let bytes = pkt.bytes_mut();
        bytes[ip_off + 16..ip_off + 20].copy_from_slice(&orig_ip.octets());
        let ip_ck = u16::from_be_bytes([bytes[ip_off + 10], bytes[ip_off + 11]]);
        let ip_ck =
            incremental_checksum_update32_raw(ip_ck, u32::from(old_dst_ip), u32::from(orig_ip));
        bytes[ip_off + 10..ip_off + 12].copy_from_slice(&ip_ck.to_be_bytes());
        bytes[tr_off + 2..tr_off + 4].copy_from_slice(&orig_port.to_be_bytes());
        let ck_off = if proto == 17 { tr_off + 6 } else { tr_off + 16 };
        let old_ck = u16::from_be_bytes([bytes[ck_off], bytes[ck_off + 1]]);
        let ck = incremental_checksum_update32(old_ck, u32::from(old_dst_ip), u32::from(orig_ip));
        let ck = incremental_checksum_update(ck, old_dst_port, orig_port);
        bytes[ck_off..ck_off + 2].copy_from_slice(&ck.to_be_bytes());
    }
}

/// IP-header checksum variant of the incremental update: the IP checksum is
/// always present, so zero is *not* treated as "absent".
fn incremental_checksum_update32_raw(old_ck: u16, old: u32, new: u32) -> u16 {
    let step = |ck: u16, o: u16, n: u16| {
        let mut sum = u32::from(!ck) + u32::from(!o) + u32::from(n);
        while sum >> 16 != 0 {
            sum = (sum & 0xFFFF) + (sum >> 16);
        }
        !(sum as u16)
    };
    let ck = step(old_ck, (old >> 16) as u16, (new >> 16) as u16);
    step(ck, old as u16, new as u16)
}

impl Nf for Nat {
    fn name(&self) -> &str {
        "NAT"
    }

    fn process(&mut self, pkt: &mut Packet) -> NfResult {
        let Ok(parsed) = pkt.parse() else {
            return NfResult::forward(NAT_HIT_CYCLES);
        };
        let ft = parsed.five_tuple();

        // Reverse path: traffic addressed to our external IP on an
        // allocated port.
        if ft.dst_ip == self.external_ip {
            if let Some(&(ip, port)) = self.in_map.get(&ft.dst_port) {
                Self::rewrite_inbound(pkt, ip, port);
                self.stats.translated_in += 1;
                return NfResult::forward(NAT_HIT_CYCLES);
            }
        }

        // Outbound path.
        if let Some(&ext_port) = self.out_map.get(&ft) {
            Self::rewrite_outbound(pkt, self.external_ip, ext_port);
            self.stats.translated_out += 1;
            return NfResult::forward(NAT_HIT_CYCLES);
        }
        // Allocate a new flow.
        if self.out_map.len() >= usize::from(u16::MAX - Self::POOL_START) {
            self.stats.pool_exhausted += 1;
            return NfResult::drop(NAT_HIT_CYCLES);
        }
        let ext_port = self.next_port;
        self.next_port = self.next_port.checked_add(1).unwrap_or(Self::POOL_START);
        self.out_map.insert(ft, ext_port);
        self.in_map.insert(ext_port, (ft.src_ip, ft.src_port));
        self.stats.flows_allocated += 1;
        Self::rewrite_outbound(pkt, self.external_ip, ext_port);
        self.stats.translated_out += 1;
        NfResult::forward(NAT_ALLOC_CYCLES)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::chain::NfVerdict;
    use pp_packet::builder::UdpPacketBuilder;
    use pp_packet::ethernet::EthernetFrame;
    use pp_packet::ipv4::Ipv4Header;
    use pp_packet::udp::UdpHeader;

    fn ext_ip() -> Ipv4Addr {
        Ipv4Addr::new(198, 51, 100, 1)
    }

    fn flow_pkt(src_port: u16) -> Packet {
        UdpPacketBuilder::new()
            .src_ip(Ipv4Addr::new(10, 0, 0, 5))
            .dst_ip(Ipv4Addr::new(93, 184, 216, 34))
            .src_port(src_port)
            .dst_port(80)
            .total_size(200, 3)
            .build()
    }

    fn checksums_valid(pkt: &Packet) -> bool {
        let eth = EthernetFrame::new_checked(pkt.bytes()).unwrap();
        let ip = Ipv4Header::new_checked(eth.payload()).unwrap();
        if !ip.verify_checksum() {
            return false;
        }
        let udp = UdpHeader::new_checked(ip.payload()).unwrap();
        udp.verify_checksum(u32::from(ip.src()), u32::from(ip.dst()))
    }

    #[test]
    fn outbound_rewrites_and_keeps_checksums_valid() {
        let mut nat = Nat::new(ext_ip());
        let mut p = flow_pkt(4000);
        let r = nat.process(&mut p);
        assert_eq!(r.verdict, NfVerdict::Forward);
        assert_eq!(r.cycles, NAT_ALLOC_CYCLES);
        let ft = p.parse().unwrap().five_tuple();
        assert_eq!(ft.src_ip, ext_ip());
        assert_eq!(ft.src_port, Nat::POOL_START);
        assert!(checksums_valid(&p), "checksums must stay valid after NAT");
        assert_eq!(nat.flow_count(), 1);
    }

    #[test]
    fn same_flow_hits_cache() {
        let mut nat = Nat::new(ext_ip());
        let mut p1 = flow_pkt(4000);
        nat.process(&mut p1);
        let mut p2 = flow_pkt(4000);
        let r = nat.process(&mut p2);
        assert_eq!(r.cycles, NAT_HIT_CYCLES);
        assert_eq!(p2.parse().unwrap().five_tuple().src_port, Nat::POOL_START);
        assert_eq!(nat.stats().flows_allocated, 1);
        assert_eq!(nat.stats().translated_out, 2);
    }

    #[test]
    fn distinct_flows_get_distinct_ports() {
        let mut nat = Nat::new(ext_ip());
        let mut ports = std::collections::HashSet::new();
        for sp in 0..50u16 {
            let mut p = flow_pkt(3000 + sp);
            nat.process(&mut p);
            ports.insert(p.parse().unwrap().five_tuple().src_port);
        }
        assert_eq!(ports.len(), 50);
    }

    #[test]
    fn reverse_path_restores_original() {
        let mut nat = Nat::new(ext_ip());
        let mut out = flow_pkt(4000);
        nat.process(&mut out);
        let ext_port = out.parse().unwrap().five_tuple().src_port;

        // A reply: server → external ip/port.
        let mut reply = UdpPacketBuilder::new()
            .src_ip(Ipv4Addr::new(93, 184, 216, 34))
            .dst_ip(ext_ip())
            .src_port(80)
            .dst_port(ext_port)
            .total_size(200, 4)
            .build();
        let r = nat.process(&mut reply);
        assert_eq!(r.verdict, NfVerdict::Forward);
        let ft = reply.parse().unwrap().five_tuple();
        assert_eq!(ft.dst_ip, Ipv4Addr::new(10, 0, 0, 5));
        assert_eq!(ft.dst_port, 4000);
        assert!(checksums_valid(&reply));
        assert_eq!(nat.stats().translated_in, 1);
    }

    #[test]
    fn payload_untouched_by_nat() {
        // Shallow NF guarantee: only headers change.
        let mut nat = Nat::new(ext_ip());
        let mut p = flow_pkt(4000);
        let payload_before = p.parse().unwrap().payload().to_vec();
        nat.process(&mut p);
        assert_eq!(p.parse().unwrap().payload(), &payload_before[..]);
    }

    #[test]
    fn non_ip_traffic_passes() {
        let mut nat = Nat::new(ext_ip());
        let mut junk = Packet::new(vec![0u8; 30]);
        let r = nat.process(&mut junk);
        assert_eq!(r.verdict, NfVerdict::Forward);
    }
}
