//! The NF-server model.
//!
//! A single logical service unit (the paper's NF chains run pinned to
//! dedicated cores; the aggregate behaves FIFO) fed by a deep DPDK-style
//! ring. Per-packet service time follows the framework cost model; two
//! perturbations make the model realistic enough to reproduce the paper's
//! eviction-related results:
//!
//! * **per-packet jitter** — a small uniform factor (cache misses,
//!   batching);
//! * **slow service-rate modulation** — a few-percent sinusoidal drift with
//!   a period of tens of milliseconds (frequency scaling, interference).
//!   Near saturation these dips create multi-millisecond queue excursions;
//!   it is exactly such excursions that exhaust the switch lookup table and
//!   trigger premature evictions (Figs. 14 and 15 hinge on this).
//!
//! PCIe is modelled as two independent lanes (PCIe is full duplex): RX DMA
//! delays service start, TX DMA delays departure, and both are metered for
//! the PCIe-bandwidth results (Fig. 9).

use crate::chain::{NfChain, NfVerdict};
use crate::framework::{explicit_drop_notification, FrameworkProfile};
use pp_netsim::pcie::{PcieBus, PcieConfig, PcieStats};
use pp_netsim::rng::DetRng;
use pp_netsim::time::{SimDuration, SimTime};
use pp_packet::{MacAddr, Packet};
use std::collections::VecDeque;

/// Static description of an NF server.
#[derive(Debug, Clone, Copy)]
pub struct ServerProfile {
    /// Core clock in Hz (2.3 GHz Xeon E7-4870v2 in the paper's main rig).
    pub cpu_hz: f64,
    /// Framework cost profile.
    pub framework: FrameworkProfile,
    /// Total packet buffering (NIC ring + framework rings). OpenNetVM-style
    /// deployments chain several 16K rings, hence the deep default.
    pub ring_capacity: usize,
    /// Uniform per-packet service jitter amplitude (±fraction/2).
    pub jitter_frac: f64,
    /// Amplitude of the slow service-rate modulation (fraction of µ).
    pub modulation_amplitude: f64,
    /// Period of the modulation.
    pub modulation_period: SimDuration,
    /// PCIe lane configuration (each direction gets one lane).
    pub pcie: PcieConfig,
}

impl Default for ServerProfile {
    fn default() -> Self {
        ServerProfile {
            cpu_hz: 2.3e9,
            framework: FrameworkProfile::open_netvm(),
            ring_capacity: 32_768,
            jitter_frac: 0.05,
            modulation_amplitude: 0.04,
            modulation_period: SimDuration::from_millis(40),
            pcie: PcieConfig::default(),
        }
    }
}

/// Statistics kept by the server.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct ServerStats {
    /// Packets offered by the switch.
    pub received: u64,
    /// Packets dropped because the ring was full.
    pub ring_drops: u64,
    /// Packets the NF chain dropped.
    pub nf_dropped: u64,
    /// Explicit-Drop notifications emitted.
    pub explicit_notifications: u64,
    /// Packets forwarded back out.
    pub forwarded: u64,
    /// Total service nanoseconds consumed (for utilization).
    pub busy_ns: u64,
}

/// Result of offering a packet to the server.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum RxOutcome {
    /// Ring overflow; the packet is gone (the "drops at the NF server NIC"
    /// of §6.3.3).
    Dropped,
    /// The packet was (will be) processed.
    Done {
        /// Time the result leaves the server (TX DMA complete). For chain
        /// drops without notification this is when processing finished.
        time: SimTime,
        /// The outgoing packet: the processed packet, an Explicit-Drop
        /// notification, or `None` when the chain dropped it silently.
        packet: Option<Packet>,
    },
}

/// The NF server.
pub struct NfServer {
    profile: ServerProfile,
    chain: NfChain,
    rx_pcie: PcieBus,
    tx_pcie: PcieBus,
    busy_until: SimTime,
    /// Completion times of queued/in-service packets (drained lazily).
    backlog: VecDeque<SimTime>,
    rng: DetRng,
    /// Destination MAC stamped on forwarded packets (the framework's TX
    /// route toward the traffic sink).
    tx_dst_mac: Option<MacAddr>,
    stats: ServerStats,
}

impl NfServer {
    /// Creates a server running `chain`.
    pub fn new(profile: ServerProfile, chain: NfChain, rng: DetRng) -> Self {
        NfServer {
            rx_pcie: PcieBus::new(profile.pcie),
            tx_pcie: PcieBus::new(profile.pcie),
            profile,
            chain,
            busy_until: SimTime::ZERO,
            backlog: VecDeque::new(),
            rng,
            tx_dst_mac: None,
            stats: ServerStats::default(),
        }
    }

    /// Sets the MAC address stamped on forwarded packets.
    pub fn set_tx_dst_mac(&mut self, mac: MacAddr) {
        self.tx_dst_mac = Some(mac);
    }

    /// The server's profile.
    pub fn profile(&self) -> &ServerProfile {
        &self.profile
    }

    /// Accumulated statistics.
    pub fn stats(&self) -> ServerStats {
        self.stats
    }

    /// Combined PCIe statistics (both lanes).
    pub fn pcie_stats(&self) -> PcieStats {
        let rx = self.rx_pcie.stats();
        let tx = self.tx_pcie.stats();
        PcieStats {
            transactions: rx.transactions + tx.transactions,
            payload_bytes: rx.payload_bytes + tx.payload_bytes,
            bus_bytes: rx.bus_bytes + tx.bus_bytes,
            busy_ns: rx.busy_ns + tx.busy_ns,
        }
    }

    /// Achieved PCIe bandwidth over `[0, now]` in Gbps, summed over both
    /// directions — the Fig. 9 metric.
    pub fn pcie_achieved_gbps(&self, now: SimTime) -> f64 {
        self.rx_pcie.achieved_gbps(now) + self.tx_pcie.achieved_gbps(now)
    }

    /// Current queue depth (after draining completions up to `now`).
    pub fn queue_depth(&mut self, now: SimTime) -> usize {
        self.drain(now);
        self.backlog.len()
    }

    /// CPU utilization over `[0, now]`.
    pub fn utilization(&self, now: SimTime) -> f64 {
        if now.nanos() == 0 {
            return 0.0;
        }
        self.stats.busy_ns as f64 / now.nanos() as f64
    }

    fn drain(&mut self, now: SimTime) {
        while self.backlog.front().is_some_and(|&t| t <= now) {
            self.backlog.pop_front();
        }
    }

    /// The slow modulation factor at time `t` (≥ 1 slows service down).
    fn modulation(&self, t: SimTime) -> f64 {
        if self.profile.modulation_amplitude == 0.0 {
            return 1.0;
        }
        let period = self.profile.modulation_period.nanos().max(1);
        let phase = (t.nanos() % period) as f64 / period as f64;
        let a = self.profile.modulation_amplitude;
        // 1/(1 - a·sin): dips below µ are what build queues.
        1.0 / (1.0 - a * (2.0 * std::f64::consts::PI * phase).sin())
    }

    /// Offers one packet arriving from the switch at `now`.
    pub fn rx(&mut self, now: SimTime, mut pkt: Packet) -> RxOutcome {
        self.stats.received += 1;
        self.drain(now);
        if self.backlog.len() >= self.profile.ring_capacity {
            self.stats.ring_drops += 1;
            return RxOutcome::Dropped;
        }

        let wire_in = pkt.len();
        // RX DMA: NIC → memory.
        let rx_done = self.rx_pcie.dma(now, wire_in);
        let start = self.busy_until.max(rx_done);

        // NF chain runs (header mutations happen here; model time below).
        let result = self.chain.process(&mut pkt);

        // Service time: framework model × jitter × slow modulation.
        let cycles = self.profile.framework.service_cycles(wire_in, result.cycles);
        let base_ns = cycles / self.profile.cpu_hz * 1e9;
        let jitter = 1.0 + self.profile.jitter_frac * (self.rng.next_f64() - 0.5);
        let svc_ns = (base_ns * jitter * self.modulation(start)).max(1.0) as u64;
        let done = start + SimDuration::from_nanos(svc_ns);
        self.busy_until = done;
        self.backlog.push_back(done);
        self.stats.busy_ns += svc_ns;

        match result.verdict {
            NfVerdict::Forward => {
                if let Some(mac) = self.tx_dst_mac {
                    if pkt.len() >= 6 {
                        pkt.bytes_mut()[0..6].copy_from_slice(&mac.0);
                    }
                }
                let out_len = pkt.len();
                let tx_done = self.tx_pcie.dma(done, out_len);
                self.stats.forwarded += 1;
                RxOutcome::Done { time: tx_done, packet: Some(pkt) }
            }
            NfVerdict::Drop => {
                self.stats.nf_dropped += 1;
                if self.profile.framework.explicit_drop {
                    if let Some(notif) = explicit_drop_notification(&pkt) {
                        let tx_done = self.tx_pcie.dma(done, notif.len());
                        self.stats.explicit_notifications += 1;
                        return RxOutcome::Done { time: tx_done, packet: Some(notif) };
                    }
                }
                RxOutcome::Done { time: done, packet: None }
            }
        }
    }
}

impl core::fmt::Debug for NfServer {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        f.debug_struct("NfServer")
            .field("framework", &self.profile.framework.name)
            .field("chain", &self.chain)
            .field("stats", &self.stats)
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::nfs::firewall::FirewallRule;
    use crate::nfs::{Firewall, MacSwap};
    use pp_packet::builder::UdpPacketBuilder;
    use std::net::Ipv4Addr;

    fn quiet_profile() -> ServerProfile {
        ServerProfile { jitter_frac: 0.0, modulation_amplitude: 0.0, ..Default::default() }
    }

    fn server(chain: NfChain) -> NfServer {
        NfServer::new(quiet_profile(), chain, DetRng::from_seed(1))
    }

    fn pkt(size: usize) -> Packet {
        UdpPacketBuilder::new().total_size(size, 1).build()
    }

    #[test]
    fn forwards_through_chain_with_latency() {
        let mut s = server(NfChain::new(vec![Box::new(MacSwap::new())]));
        let out = s.rx(SimTime::ZERO, pkt(500));
        let RxOutcome::Done { time, packet } = out else { panic!("dropped") };
        assert!(packet.is_some());
        assert!(time > SimTime::ZERO);
        assert_eq!(s.stats().forwarded, 1);
    }

    #[test]
    fn smaller_packets_finish_sooner() {
        // The per-byte term: a truncated (PayloadPark) packet costs less.
        let mut s1 = server(NfChain::empty());
        let RxOutcome::Done { time: t_small, .. } = s1.rx(SimTime::ZERO, pkt(359)) else {
            panic!()
        };
        let mut s2 = server(NfChain::empty());
        let RxOutcome::Done { time: t_big, .. } = s2.rx(SimTime::ZERO, pkt(512)) else { panic!() };
        assert!(t_small < t_big, "{t_small} !< {t_big}");
    }

    #[test]
    fn fifo_backlog_accumulates() {
        let mut s = server(NfChain::empty());
        let RxOutcome::Done { time: t1, .. } = s.rx(SimTime::ZERO, pkt(1000)) else { panic!() };
        let RxOutcome::Done { time: t2, .. } = s.rx(SimTime::ZERO, pkt(1000)) else { panic!() };
        assert!(t2 > t1);
        assert_eq!(s.queue_depth(SimTime::ZERO), 2);
        assert_eq!(s.queue_depth(t2 + SimDuration::from_micros(1)), 0);
    }

    #[test]
    fn ring_overflow_drops() {
        let mut profile = quiet_profile();
        profile.ring_capacity = 4;
        let mut s = NfServer::new(profile, NfChain::empty(), DetRng::from_seed(1));
        let mut drops = 0;
        for _ in 0..10 {
            if s.rx(SimTime::ZERO, pkt(1500)) == RxOutcome::Dropped {
                drops += 1;
            }
        }
        assert_eq!(drops, 6);
        assert_eq!(s.stats().ring_drops, 6);
    }

    #[test]
    fn firewall_drop_yields_no_packet_without_patch() {
        let fw = Firewall::new(vec![FirewallRule::new(Ipv4Addr::new(10, 0, 0, 1), 32)]);
        let mut s = server(NfChain::new(vec![Box::new(fw)]));
        let p =
            UdpPacketBuilder::new().src_ip(Ipv4Addr::new(10, 0, 0, 1)).total_size(400, 1).build();
        let RxOutcome::Done { packet, .. } = s.rx(SimTime::ZERO, p) else { panic!() };
        assert!(packet.is_none());
        assert_eq!(s.stats().nf_dropped, 1);
        assert_eq!(s.stats().explicit_notifications, 0);
    }

    #[test]
    fn explicit_drop_patch_emits_notification() {
        use pp_packet::ppark::{PayloadParkHeader, PpOpcode, PpTag, PAYLOADPARK_HEADER_LEN};
        let mut profile = quiet_profile();
        profile.framework = FrameworkProfile::open_netvm().with_explicit_drop();
        let fw = Firewall::new(vec![FirewallRule::new(Ipv4Addr::new(10, 0, 0, 1), 32)]);
        let mut s = NfServer::new(profile, NfChain::new(vec![Box::new(fw)]), DetRng::from_seed(1));

        // A parked packet from the blocked source.
        let mut payload = vec![0u8; PAYLOADPARK_HEADER_LEN + 100];
        PayloadParkHeader::new_checked(&mut payload[..])
            .unwrap()
            .write_enabled(PpOpcode::Merge, PpTag { table_index: 1, generation: 2 });
        let p =
            UdpPacketBuilder::new().src_ip(Ipv4Addr::new(10, 0, 0, 1)).payload(&payload).build();
        let RxOutcome::Done { packet, .. } = s.rx(SimTime::ZERO, p) else { panic!() };
        let notif = packet.expect("notification");
        assert_eq!(notif.len(), 49);
        assert_eq!(s.stats().explicit_notifications, 1);
    }

    #[test]
    fn tx_dst_mac_is_stamped() {
        let mut s = server(NfChain::empty());
        s.set_tx_dst_mac(MacAddr::from_index(200));
        let RxOutcome::Done { packet, .. } = s.rx(SimTime::ZERO, pkt(100)) else { panic!() };
        assert_eq!(&packet.unwrap().bytes()[0..6], &MacAddr::from_index(200).0);
    }

    #[test]
    fn pcie_meters_both_directions() {
        let mut s = server(NfChain::empty());
        s.rx(SimTime::ZERO, pkt(500));
        let stats = s.pcie_stats();
        assert_eq!(stats.transactions, 2); // rx + tx
        assert_eq!(stats.payload_bytes, 1000);
        assert!(s.pcie_achieved_gbps(SimTime::from_micros(10)) > 0.0);
    }

    #[test]
    fn modulation_slows_service_at_peak_phase() {
        let mut profile = quiet_profile();
        profile.modulation_amplitude = 0.5;
        profile.modulation_period = SimDuration::from_millis(40);
        let mut slow = NfServer::new(profile, NfChain::empty(), DetRng::from_seed(1));
        // Quarter period = peak of sin -> maximum slowdown.
        let t = SimTime(profile.modulation_period.nanos() / 4);
        let RxOutcome::Done { time: t_mod, .. } = slow.rx(t, pkt(1000)) else { panic!() };
        let mut fast = server(NfChain::empty());
        let RxOutcome::Done { time: t_plain, .. } = fast.rx(t, pkt(1000)) else { panic!() };
        assert!(t_mod.since(t) > t_plain.since(t));
    }

    #[test]
    fn utilization_grows_with_load() {
        let mut s = server(NfChain::empty());
        for i in 0..100u64 {
            s.rx(SimTime(i * 10_000), pkt(800));
        }
        let u = s.utilization(SimTime(1_000_000));
        assert!(u > 0.0 && u <= 1.0, "{u}");
    }

    #[test]
    fn deterministic_across_identical_runs() {
        let run = || {
            let mut s = NfServer::new(
                ServerProfile::default(),
                NfChain::new(vec![Box::new(MacSwap::new())]),
                DetRng::from_seed(9),
            );
            (0..50u64)
                .map(|i| match s.rx(SimTime(i * 5_000), pkt(700)) {
                    RxOutcome::Done { time, .. } => time.nanos(),
                    RxOutcome::Dropped => 0,
                })
                .collect::<Vec<_>>()
        };
        assert_eq!(run(), run());
    }
}
