//! The NF trait and NF chains.

use pp_packet::Packet;

/// What an NF decided about a packet.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum NfVerdict {
    /// Pass the packet to the next NF (or out).
    Forward,
    /// Drop the packet (e.g. firewall ACL hit).
    Drop,
}

/// Result of one NF processing one packet.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct NfResult {
    /// Forward or drop.
    pub verdict: NfVerdict,
    /// CPU cycles this NF spent on the packet (drives the server's
    /// service-time model).
    pub cycles: u64,
}

impl NfResult {
    /// Convenience constructor for a forwarding result.
    pub fn forward(cycles: u64) -> Self {
        NfResult { verdict: NfVerdict::Forward, cycles }
    }

    /// Convenience constructor for a dropping result.
    pub fn drop(cycles: u64) -> Self {
        NfResult { verdict: NfVerdict::Drop, cycles }
    }
}

/// A shallow network function.
///
/// NFs may modify packet *headers* in place; they must not depend on
/// payload bytes (the whole premise of PayloadPark is that shallow NFs
/// leave the payload unexamined — §1).
pub trait Nf: Send {
    /// The NF's display name.
    fn name(&self) -> &str;
    /// Processes one packet.
    fn process(&mut self, pkt: &mut Packet) -> NfResult;
}

/// An ordered chain of NFs (e.g. `FW → NAT → LB`, §6.1).
pub struct NfChain {
    nfs: Vec<Box<dyn Nf>>,
}

impl NfChain {
    /// Builds a chain from NFs in processing order.
    pub fn new(nfs: Vec<Box<dyn Nf>>) -> Self {
        NfChain { nfs }
    }

    /// An empty chain (pure framework forwarding).
    pub fn empty() -> Self {
        NfChain { nfs: Vec::new() }
    }

    /// Number of NFs in the chain.
    pub fn len(&self) -> usize {
        self.nfs.len()
    }

    /// True when the chain has no NFs.
    pub fn is_empty(&self) -> bool {
        self.nfs.is_empty()
    }

    /// A ` → `-joined description, e.g. `"Firewall → NAT"`.
    pub fn describe(&self) -> String {
        if self.nfs.is_empty() {
            return "(empty)".to_string();
        }
        self.nfs.iter().map(|nf| nf.name()).collect::<Vec<_>>().join(" -> ")
    }

    /// Runs the packet through every NF until one drops it.
    ///
    /// Returns the final verdict and the *total* cycles consumed (cycles of
    /// NFs after a drop are not charged — the packet never reaches them).
    pub fn process(&mut self, pkt: &mut Packet) -> NfResult {
        let mut total = 0u64;
        for nf in &mut self.nfs {
            let r = nf.process(pkt);
            total += r.cycles;
            if r.verdict == NfVerdict::Drop {
                return NfResult { verdict: NfVerdict::Drop, cycles: total };
            }
        }
        NfResult::forward(total)
    }
}

impl core::fmt::Debug for NfChain {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        write!(f, "NfChain[{}]", self.describe())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use pp_packet::builder::UdpPacketBuilder;

    struct Marker {
        byte: u8,
        cycles: u64,
        drop: bool,
    }
    impl Nf for Marker {
        fn name(&self) -> &str {
            "Marker"
        }
        fn process(&mut self, pkt: &mut Packet) -> NfResult {
            pkt.bytes_mut()[6] = self.byte; // scribble in src MAC
            if self.drop {
                NfResult::drop(self.cycles)
            } else {
                NfResult::forward(self.cycles)
            }
        }
    }

    fn pkt() -> Packet {
        UdpPacketBuilder::new().total_size(100, 1).build()
    }

    #[test]
    fn chain_runs_in_order_and_sums_cycles() {
        let mut chain = NfChain::new(vec![
            Box::new(Marker { byte: 1, cycles: 10, drop: false }),
            Box::new(Marker { byte: 2, cycles: 20, drop: false }),
        ]);
        let mut p = pkt();
        let r = chain.process(&mut p);
        assert_eq!(r.verdict, NfVerdict::Forward);
        assert_eq!(r.cycles, 30);
        assert_eq!(p.bytes()[6], 2); // second NF ran last
    }

    #[test]
    fn drop_short_circuits() {
        let mut chain = NfChain::new(vec![
            Box::new(Marker { byte: 1, cycles: 10, drop: true }),
            Box::new(Marker { byte: 2, cycles: 20, drop: false }),
        ]);
        let mut p = pkt();
        let r = chain.process(&mut p);
        assert_eq!(r.verdict, NfVerdict::Drop);
        assert_eq!(r.cycles, 10);
        assert_eq!(p.bytes()[6], 1); // second NF never ran
    }

    #[test]
    fn empty_chain_forwards_for_free() {
        let mut chain = NfChain::empty();
        assert!(chain.is_empty());
        assert_eq!(chain.len(), 0);
        let r = chain.process(&mut pkt());
        assert_eq!(r, NfResult::forward(0));
        assert_eq!(chain.describe(), "(empty)");
    }

    #[test]
    fn describe_joins_names() {
        let chain = NfChain::new(vec![
            Box::new(Marker { byte: 0, cycles: 0, drop: false }),
            Box::new(Marker { byte: 0, cycles: 0, drop: false }),
        ]);
        assert_eq!(chain.describe(), "Marker -> Marker");
        assert_eq!(format!("{chain:?}"), "NfChain[Marker -> Marker]");
    }
}
