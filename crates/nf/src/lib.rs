//! Network-function framework emulator and shallow NFs.
//!
//! Models the end-host side of the paper's testbed (§6.1): an NF server
//! running a DPDK-style framework (OpenNetVM or NetBricks profile) that
//! pulls packets from a NIC ring, pushes them through an NF chain, and
//! transmits the result. The cost model is the load-bearing part:
//!
//! ```text
//! service cycles = framework fixed + Σ NF cycles + per-byte × wire bytes
//! ```
//!
//! The per-byte term (PCIe DMA, memory copies) is why header-only packets
//! raise the sustainable packet rate — the mechanism behind every goodput
//! gain in the paper. The fixed and NF terms are why heavy chains and tiny
//! packets cap those gains (Figs. 8, 15, 16).
//!
//! Modules:
//!
//! * [`chain`] — the [`chain::Nf`] trait and [`chain::NfChain`];
//! * [`nfs`] — the paper's NFs: linear-probe firewall, MazuNAT-style NAT,
//!   Maglev load balancer, MAC swapper, calibrated synthetic NFs;
//! * [`framework`] — framework profiles and the Explicit-Drop notification
//!   (the paper's 50-line OpenNetVM change, §6.2.4);
//! * [`server`] — the FIFO server model with NIC ring, PCIe accounting and
//!   service-time jitter (OS hiccups), which produces the queueing delays
//!   that interact with payload eviction (Figs. 12, 14, 15).

pub mod chain;
pub mod framework;
pub mod nfs;
pub mod server;

pub use chain::{Nf, NfChain, NfResult, NfVerdict};
pub use framework::FrameworkProfile;
pub use server::{NfServer, RxOutcome, ServerProfile, ServerStats};
