//! Property-based tests for the NF implementations.
//!
//! The invariant that matters most under PayloadPark: shallow NFs may
//! rewrite headers however they like, but (a) checksums must stay valid
//! using *incremental* updates only, and (b) the payload bytes must never
//! change — because under PayloadPark most of the payload is not even
//! present on the server.

use proptest::prelude::*;
use std::net::Ipv4Addr;

use pp_nf::chain::{Nf, NfChain, NfVerdict};
use pp_nf::nfs::maglev::{Backend, MaglevLb};
use pp_nf::nfs::{Firewall, MacSwap, Nat, Synthetic};
use pp_packet::builder::UdpPacketBuilder;
use pp_packet::ethernet::EthernetFrame;
use pp_packet::ipv4::Ipv4Header;
use pp_packet::udp::UdpHeader;
use pp_packet::Packet;

fn checksums_valid(pkt: &Packet) -> bool {
    let eth = EthernetFrame::new_checked(pkt.bytes()).unwrap();
    let ip = Ipv4Header::new_checked(eth.payload()).unwrap();
    if !ip.verify_checksum() {
        return false;
    }
    let udp = UdpHeader::new_checked(ip.payload()).unwrap();
    udp.verify_checksum(u32::from(ip.src()), u32::from(ip.dst()))
}

fn arbitrary_packet(src: u32, dst: u32, sport: u16, dport: u16, size: usize, seed: u64) -> Packet {
    UdpPacketBuilder::new()
        .src_ip(Ipv4Addr::from(src))
        .dst_ip(Ipv4Addr::from(dst))
        .src_port(sport)
        .dst_port(dport)
        .total_size(size.max(42), seed)
        .build()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(96))]

    /// NAT keeps IP and UDP checksums valid for arbitrary flows, and never
    /// touches payload bytes.
    #[test]
    fn nat_preserves_checksums_and_payload(
        src in any::<u32>(), dst in 1u32..0xF0000000,
        sport in any::<u16>(), dport in any::<u16>(),
        size in 42usize..1000, seed in any::<u64>(),
    ) {
        let mut nat = Nat::new(Ipv4Addr::new(198, 51, 100, 1));
        let mut pkt = arbitrary_packet(src, dst, sport, dport, size, seed);
        let payload_before = pkt.parse().unwrap().payload().to_vec();
        let r = nat.process(&mut pkt);
        prop_assert_eq!(r.verdict, NfVerdict::Forward);
        prop_assert!(checksums_valid(&pkt), "invalid checksums after NAT");
        prop_assert_eq!(pkt.parse().unwrap().payload(), &payload_before[..]);
        // Source was rewritten to the external address.
        prop_assert_eq!(
            pkt.parse().unwrap().five_tuple().src_ip,
            Ipv4Addr::new(198, 51, 100, 1)
        );
    }

    /// NAT translation is a bijection per flow: the same flow always maps
    /// to the same external port, different flows to different ports.
    #[test]
    fn nat_flow_mapping_is_consistent(
        flows in proptest::collection::vec((any::<u32>(), 1024u16..60000), 2..30),
        repeats in 1usize..3,
    ) {
        let mut nat = Nat::new(Ipv4Addr::new(198, 51, 100, 1));
        let mut mapping = std::collections::HashMap::new();
        for _ in 0..repeats {
            for &(src, sport) in &flows {
                let mut pkt = arbitrary_packet(src, 0x5DB8D822, sport, 80, 300, 1);
                nat.process(&mut pkt);
                let ext = pkt.parse().unwrap().five_tuple().src_port;
                let prev = mapping.insert((src, sport), ext);
                if let Some(p) = prev {
                    prop_assert_eq!(p, ext, "flow remapped");
                }
            }
        }
        // Distinct flows -> distinct external ports.
        let distinct: std::collections::HashSet<_> = mapping.values().collect();
        prop_assert_eq!(distinct.len(), mapping.len());
    }

    /// Maglev keeps checksums valid and dispatches deterministically.
    #[test]
    fn maglev_is_deterministic_and_checksum_safe(
        src in any::<u32>(), sport in any::<u16>(),
        size in 42usize..800, seed in any::<u64>(),
    ) {
        let backends: Vec<Backend> = (0..5)
            .map(|i| Backend {
                name: format!("b{i}"),
                ip: Ipv4Addr::new(10, 50, 0, i + 1),
            })
            .collect();
        let mut lb1 = MaglevLb::with_table_size(backends.clone(), 1009);
        let mut lb2 = MaglevLb::with_table_size(backends, 1009);
        let mut p1 = arbitrary_packet(src, 0x0A000002, sport, 80, size, seed);
        let mut p2 = p1.clone();
        lb1.process(&mut p1);
        lb2.process(&mut p2);
        prop_assert_eq!(p1.bytes(), p2.bytes());
        prop_assert!(checksums_valid(&p1));
    }

    /// A whole chain (FW → NAT → LB → MacSwap → Synthetic) forwards
    /// non-blacklisted traffic with valid checksums, untouched payload and
    /// cycle costs equal to the sum of its parts.
    #[test]
    fn full_chain_preserves_invariants(
        src in 0x0B000000u32..0x0BFFFFFF, sport in any::<u16>(),
        size in 42usize..1200, seed in any::<u64>(),
    ) {
        let mut chain = NfChain::new(vec![
            Box::new(Firewall::with_rule_count(20)),
            Box::new(Nat::new(Ipv4Addr::new(198, 51, 100, 1))),
            Box::new(MaglevLb::with_table_size(
                vec![
                    Backend { name: "a".into(), ip: Ipv4Addr::new(10, 50, 0, 1) },
                    Backend { name: "b".into(), ip: Ipv4Addr::new(10, 50, 0, 2) },
                ],
                101,
            )),
            Box::new(MacSwap::new()),
            Box::new(Synthetic::light()),
        ]);
        let mut pkt = arbitrary_packet(src, 0x5DB8D822, sport, 80, size, seed);
        let payload_before = pkt.parse().unwrap().payload().to_vec();
        let r = chain.process(&mut pkt);
        prop_assert_eq!(r.verdict, NfVerdict::Forward);
        prop_assert!(r.cycles > 0);
        prop_assert!(checksums_valid(&pkt));
        prop_assert_eq!(pkt.parse().unwrap().payload(), &payload_before[..]);
    }

    /// The firewall's verdict matches a reference implementation of
    /// longest-prefix blacklisting for arbitrary rule sets.
    #[test]
    fn firewall_matches_reference(
        rules in proptest::collection::vec((any::<u32>(), 8u8..33), 0..20),
        src in any::<u32>(),
    ) {
        use pp_nf::nfs::firewall::FirewallRule;
        let fw_rules: Vec<FirewallRule> = rules
            .iter()
            .map(|&(a, l)| FirewallRule::new(Ipv4Addr::from(a), l))
            .collect();
        let mut fw = Firewall::new(fw_rules);
        let mut pkt = arbitrary_packet(src, 0x0A000002, 1, 2, 300, 0);
        let got = fw.process(&mut pkt).verdict;
        let expect = rules.iter().any(|&(a, l)| {
            let mask = if l == 0 { 0 } else { u32::MAX << (32 - u32::from(l)) };
            (src & mask) == (a & mask)
        });
        prop_assert_eq!(got == NfVerdict::Drop, expect);
    }
}
