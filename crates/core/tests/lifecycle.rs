//! End-to-end tests of the PayloadPark dataplane program: Split, Merge,
//! eviction, explicit drops, fallback paths and recirculation.
//!
//! These tests play the role of both the traffic generator and the NF
//! server: they inject packets on the split ports, take whatever the switch
//! emits toward the "server", optionally modify headers (as an NF would),
//! and send the packets back on the merge port.

use payloadpark::program::{build_baseline_switch, build_switch};
use payloadpark::{ParkConfig, PipeControl, SliceSpec};
use pp_packet::builder::{pattern, TcpPacketBuilder, UdpPacketBuilder};
use pp_packet::parse::ParsedPacket;
use pp_packet::ppark::{PayloadParkHeader, PpOpcode};
use pp_packet::{MacAddr, UDP_STACK_HEADER_LEN};
use pp_rmt::chip::ChipProfile;
use pp_rmt::switch::{SwitchModel, SwitchOutput};
use pp_rmt::PortId;

const GEN_PORT: u16 = 0;
const GEN_PORT2: u16 = 1;
const SERVER_PORT: u16 = 2;
const SINK_PORT: u16 = 3;

fn server_mac() -> MacAddr {
    MacAddr::from_index(100)
}
fn sink_mac() -> MacAddr {
    MacAddr::from_index(200)
}

/// A testbed with PayloadPark on pipe 0 and `slots` lookup-table entries.
fn testbed(slots: usize, expiry: u16) -> (SwitchModel, PipeControl) {
    let mut cfg = ParkConfig::single_server(
        ChipProfile::default(),
        vec![GEN_PORT, GEN_PORT2],
        SERVER_PORT,
        slots,
    );
    cfg.expiry_threshold = expiry;
    let (mut switch, handles) = build_switch(&cfg).unwrap();
    switch.l2_add(server_mac(), PortId(SERVER_PORT));
    switch.l2_add(sink_mac(), PortId(SINK_PORT));
    (switch, PipeControl::new(handles[0].clone()))
}

/// Same topology with recirculation through pipe 1 (384-byte parking).
fn testbed_recirc(slots: usize) -> (SwitchModel, PipeControl) {
    let mut cfg = ParkConfig::single_server(
        ChipProfile::default(),
        vec![GEN_PORT, GEN_PORT2],
        SERVER_PORT,
        slots,
    );
    cfg.pipes[0].annex_pipe = Some(1);
    let (mut switch, handles) = build_switch(&cfg).unwrap();
    switch.l2_add(server_mac(), PortId(SERVER_PORT));
    switch.l2_add(sink_mac(), PortId(SINK_PORT));
    (switch, PipeControl::new(handles[0].clone()))
}

/// Builds a generator packet of `size` total bytes addressed to the server.
fn gen_packet(size: usize, seed: u64) -> Vec<u8> {
    UdpPacketBuilder::new()
        .dst_mac(server_mac())
        .src_mac(MacAddr::from_index(1))
        .total_size(size, seed)
        .build()
        .into_bytes()
}

/// Emulates the NF server bouncing a packet back: dst MAC becomes the sink
/// (the NF chain's TX path), and the bytes return on the server port.
fn bounce(switch: &mut SwitchModel, out: &SwitchOutput) -> Vec<SwitchOutput> {
    let mut bytes = out.bytes.clone();
    bytes[0..6].copy_from_slice(&sink_mac().0); // dst <- sink
    switch.process(&bytes, PortId(SERVER_PORT), out.seq)
}

#[test]
fn split_trims_wire_packet_and_tags_it() {
    let (mut switch, control) = testbed(1024, 1);
    let pkt = gen_packet(512, 7);
    let out = switch.process(&pkt, PortId(GEN_PORT), 1);
    assert_eq!(out.len(), 1);
    assert_eq!(out[0].port, PortId(SERVER_PORT));
    // 160 parked, 7-byte header added.
    assert_eq!(out[0].bytes.len(), 512 - 153);

    // The trimmed packet is well-formed: lengths updated, header present.
    let parsed = ParsedPacket::parse(&out[0].bytes).unwrap();
    assert_eq!(parsed.wire_len(), 512 - 153);
    let pp = PayloadParkHeader::new_checked(parsed.payload()).unwrap();
    assert!(pp.enabled());
    assert_eq!(pp.opcode(), PpOpcode::Merge);
    pp.verify_tag().unwrap();

    let c = control.counters(&switch);
    assert_eq!(c.splits, 1);
    assert_eq!(control.occupancy(&switch), 1);
}

#[test]
fn merge_restores_exact_payload_bytes() {
    let (mut switch, control) = testbed(1024, 1);
    for (seed, size) in [(1u64, 202usize), (2, 512), (3, 882), (4, 1492)].into_iter() {
        let pkt = gen_packet(size, seed);
        let out = switch.process(&pkt, PortId(GEN_PORT), seed);
        let back = bounce(&mut switch, &out[0]);
        assert_eq!(back.len(), 1, "size {size}");
        assert_eq!(back[0].port, PortId(SINK_PORT));
        assert_eq!(back[0].bytes.len(), size);
        // Payload must be byte-identical to the original (§6.2.6).
        let parsed = ParsedPacket::parse(&back[0].bytes).unwrap();
        assert_eq!(parsed.payload(), &pattern(size - UDP_STACK_HEADER_LEN, seed)[..]);
    }
    let c = control.counters(&switch);
    assert_eq!(c.splits, 4);
    assert_eq!(c.merges, 4);
    assert!(c.functionally_equivalent());
    assert_eq!(control.occupancy(&switch), 0);
}

#[test]
fn small_payload_bypasses_parking_but_gets_header() {
    let (mut switch, control) = testbed(1024, 1);
    // 160-byte minimum payload: a 201-byte packet (159 B payload) is small.
    let pkt = gen_packet(201, 9);
    let out = switch.process(&pkt, PortId(GEN_PORT), 0);
    // Whole payload rides along, plus the 7-byte disabled header.
    assert_eq!(out[0].bytes.len(), 201 + 7);
    let parsed = ParsedPacket::parse(&out[0].bytes).unwrap();
    let pp = PayloadParkHeader::new_checked(parsed.payload()).unwrap();
    assert!(!pp.enabled());

    // The merge side strips the header and restores the original bytes.
    let back = bounce(&mut switch, &out[0]);
    assert_eq!(back[0].bytes.len(), 201);
    let c = control.counters(&switch);
    assert_eq!(c.splits, 0);
    assert_eq!(c.disabled_small_payload, 1);
    assert_eq!(c.enb0_from_server, 1);
    assert_eq!(c.merges, 0);
}

#[test]
fn nf_header_modifications_survive_merge() {
    // A NAT-like NF rewrites addresses/ports; Merge must still find the
    // payload (the tag, not the 5-tuple, locates it — §3.3 packet tagger).
    let (mut switch, control) = testbed(1024, 1);
    let pkt = gen_packet(800, 42);
    let out = switch.process(&pkt, PortId(GEN_PORT), 0);

    let mut modified = out[0].bytes.clone();
    modified[0..6].copy_from_slice(&sink_mac().0);
    // Rewrite src IP (bytes 26..30) and src port (34..36) like a NAT.
    modified[26..30].copy_from_slice(&[192, 168, 7, 7]);
    modified[34..36].copy_from_slice(&9999u16.to_be_bytes());
    {
        let mut ip = pp_packet::ipv4::Ipv4Header::new_checked(&mut modified[14..]).unwrap();
        ip.fill_checksum();
    }
    let back = switch.process(&modified, PortId(SERVER_PORT), 0);
    assert_eq!(back.len(), 1);
    assert_eq!(back[0].bytes.len(), 800);
    let parsed = ParsedPacket::parse(&back[0].bytes).unwrap();
    // NAT rewrite preserved...
    assert_eq!(parsed.five_tuple().src_port, 9999);
    // ...and the payload intact.
    assert_eq!(parsed.payload(), &pattern(800 - 42, 42)[..]);
    assert!(control.counters(&switch).functionally_equivalent());
}

#[test]
fn table_exhaustion_falls_back_to_baseline_mode() {
    // 4 slots, expiry 10: the fifth packet in flight finds its slot
    // occupied (EXP aged 10→9, still > 0) and is forwarded whole.
    let (mut switch, control) = testbed(4, 10);
    let mut outs = Vec::new();
    for i in 0..5u64 {
        let pkt = gen_packet(512, i);
        let out = switch.process(&pkt, PortId(GEN_PORT), i);
        outs.push(out.into_iter().next().unwrap());
    }
    let c = control.counters(&switch);
    assert_eq!(c.splits, 4);
    assert_eq!(c.disabled_occupied, 1);
    // The disabled packet kept its full payload (+ header).
    assert_eq!(outs[4].bytes.len(), 512 + 7);
    // All five packets still round-trip correctly.
    for out in &outs {
        let back = bounce(&mut switch, out);
        assert_eq!(back[0].bytes.len(), 512);
    }
    assert!(control.counters(&switch).functionally_equivalent());
}

#[test]
fn eviction_reclaims_and_premature_merge_drops() {
    // One slot, expiry 1: the second split evicts the first payload; when
    // the first header finally returns, its generation mismatches and the
    // packet is dropped — the premature-eviction path of §3.3.
    let (mut switch, control) = testbed(1, 1);
    let p0 = switch.process(&gen_packet(512, 0), PortId(GEN_PORT), 0);
    let p1 = switch.process(&gen_packet(512, 1), PortId(GEN_PORT), 1);
    let c = control.counters(&switch);
    assert_eq!(c.splits, 2);
    assert_eq!(c.evictions, 1);

    // First packet's payload is gone: merge drops it.
    let back0 = bounce(&mut switch, &p0[0]);
    assert!(back0.is_empty());
    let c = control.counters(&switch);
    assert_eq!(c.premature_evictions, 1);
    assert!(!c.functionally_equivalent());

    // Second packet is fine.
    let back1 = bounce(&mut switch, &p1[0]);
    assert_eq!(back1[0].bytes.len(), 512);
    assert_eq!(control.counters(&switch).merges, 1);
}

#[test]
fn explicit_drop_reclaims_without_emitting() {
    let (mut switch, control) = testbed(8, 1);
    let out = switch.process(&gen_packet(512, 5), PortId(GEN_PORT), 0);
    assert_eq!(control.occupancy(&switch), 1);

    // The NF framework drops the packet and notifies the switch: truncate
    // to headers + PayloadPark header, flip the opcode (§6.2.4).
    let mut notify = out[0].bytes.clone();
    let parsed = ParsedPacket::parse(&notify).unwrap();
    let pp_start = parsed.offsets().payload;
    {
        let mut pp = PayloadParkHeader::new_checked(&mut notify[pp_start..]).unwrap();
        pp.set_opcode(PpOpcode::ExplicitDrop);
    }
    notify[0..6].copy_from_slice(&sink_mac().0);
    let back = switch.process(&notify, PortId(SERVER_PORT), 0);
    assert!(back.is_empty(), "explicit drop consumes the packet");
    let c = control.counters(&switch);
    assert_eq!(c.explicit_drops, 1);
    assert_eq!(c.merges, 0);
    assert_eq!(control.occupancy(&switch), 0, "slot reclaimed");
    assert!(c.functionally_equivalent());
}

#[test]
fn corrupted_tag_is_rejected_by_crc() {
    let (mut switch, control) = testbed(8, 1);
    let out = switch.process(&gen_packet(512, 5), PortId(GEN_PORT), 0);
    let mut evil = out[0].bytes.clone();
    evil[0..6].copy_from_slice(&sink_mac().0);
    let parsed = ParsedPacket::parse(&evil).unwrap();
    let pp_start = parsed.offsets().payload;
    evil[pp_start + 2] ^= 0x01; // flip a tag bit
    let back = switch.process(&evil, PortId(SERVER_PORT), 0);
    assert!(back.is_empty());
    let c = control.counters(&switch);
    assert_eq!(c.crc_fail, 1);
    assert_eq!(c.merges, 0);
    // The slot was NOT reclaimed (memory untouched on CRC failure).
    assert_eq!(control.occupancy(&switch), 1);
}

#[test]
fn non_transport_traffic_passes_through_untouched() {
    let (mut switch, control) = testbed(8, 1);
    let mut gre_pkt = gen_packet(512, 3);
    gre_pkt[23] = 47; // protocol = GRE: neither UDP nor TCP
    {
        let mut ip = pp_packet::ipv4::Ipv4Header::new_checked(&mut gre_pkt[14..]).unwrap();
        ip.fill_checksum();
    }
    let out = switch.process(&gre_pkt, PortId(GEN_PORT), 0);
    assert_eq!(out[0].bytes, gre_pkt);
    assert_eq!(control.counters(&switch).splits, 0);
}

#[test]
fn tcp_split_merge_is_identity_with_valid_checksums() {
    // TCP is a first-class parked workload: a 512-byte segment parks 160
    // payload bytes (only the IPv4 total-length moves — TCP has no length
    // field), the parked leg carries a zeroed transport checksum, and
    // Merge restores the original byte-for-byte.
    let (mut switch, control) = testbed(64, 1);
    let pkt = TcpPacketBuilder::new()
        .dst_mac(server_mac())
        .src_mac(MacAddr::from_index(1))
        .tcp_seq(0x1000)
        .total_size(512, 9)
        .build()
        .into_bytes();

    let out = switch.process(&pkt, PortId(GEN_PORT), 0);
    assert_eq!(out.len(), 1);
    assert_eq!(out[0].bytes.len(), 512 - 160 + 7);
    let parsed = ParsedPacket::parse(&out[0].bytes).unwrap();
    assert_eq!(parsed.five_tuple().protocol, 6);
    // Parked leg: transport checksum zeroed (the original is parked).
    let tr = parsed.offsets().transport;
    assert_eq!(&out[0].bytes[tr + 16..tr + 18], &[0, 0]);

    let back = bounce(&mut switch, &out[0]);
    assert_eq!(back.len(), 1);
    assert_eq!(back[0].bytes.len(), 512);
    let mut restored = back[0].bytes.clone();
    restored[0..6].copy_from_slice(&server_mac().0); // undo the NF's MAC swap
    assert_eq!(restored, pkt, "Split ∘ Merge must be the identity for TCP");
    assert!(ParsedPacket::parse(&back[0].bytes).unwrap().verify_checksums());

    let c = control.counters(&switch);
    assert_eq!((c.splits, c.merges), (1, 1));
    assert!(c.functionally_equivalent());
}

/// An NF that rewrites the 5-tuple while the payload is parked (NAT): it
/// sees a zero transport checksum on the parked leg and leaves it alone
/// (RFC 768); Merge must repair the restored checksum for the rewritten
/// header, so the sink still receives a fully valid packet.
#[test]
fn merge_repairs_checksum_after_nat_style_rewrite() {
    for tcp in [false, true] {
        let (mut switch, control) = testbed(64, 1);
        let pkt = if tcp {
            TcpPacketBuilder::new()
                .dst_mac(server_mac())
                .src_mac(MacAddr::from_index(1))
                .total_size(512, 21)
                .build()
                .into_bytes()
        } else {
            gen_packet(512, 21)
        };

        let out = switch.process(&pkt, PortId(GEN_PORT), 0);
        let mut at_server = out[0].bytes.clone();
        at_server[0..6].copy_from_slice(&sink_mac().0);
        // The NAT: rewrite source IP and port, fix the IP header checksum,
        // leave the zero ("not computed") transport checksum untouched.
        at_server[26..30].copy_from_slice(&[198, 51, 100, 1]);
        at_server[34..36].copy_from_slice(&40_000u16.to_be_bytes());
        {
            let mut ip = pp_packet::ipv4::Ipv4Header::new_checked(&mut at_server[14..]).unwrap();
            ip.fill_checksum();
        }
        let tr = 34;
        let ck_off = if tcp { tr + 16 } else { tr + 6 };
        assert_eq!(&at_server[ck_off..ck_off + 2], &[0, 0], "parked leg carries no checksum");

        let back = switch.process(&at_server, PortId(SERVER_PORT), 0);
        assert_eq!(back.len(), 1, "tcp={tcp}");
        assert_eq!(back[0].bytes.len(), 512);
        let merged = ParsedPacket::parse(&back[0].bytes).unwrap();
        assert_eq!(merged.five_tuple().src_port, 40_000);
        assert!(
            merged.verify_checksums(),
            "merged checksum must be valid for the NAT-rewritten header (tcp={tcp})"
        );
        assert!(control.counters(&switch).functionally_equivalent());
    }
}

#[test]
fn udp_parked_leg_checksum_is_zeroed_and_restored() {
    let (mut switch, control) = testbed(64, 1);
    let pkt = gen_packet(512, 11);
    let original_ck = pkt[40..42].to_vec();
    assert_ne!(original_ck, [0, 0]);

    let out = switch.process(&pkt, PortId(GEN_PORT), 0);
    // Parked leg: RFC 768 "checksum not computed".
    assert_eq!(&out[0].bytes[40..42], &[0, 0]);

    let back = bounce(&mut switch, &out[0]);
    assert_eq!(&back[0].bytes[40..42], &original_ck[..], "Merge restores the original");
    assert!(ParsedPacket::parse(&back[0].bytes).unwrap().verify_checksums());
    assert!(control.counters(&switch).functionally_equivalent());
}

#[test]
fn both_generator_ports_split_into_the_same_slice() {
    let (mut switch, control) = testbed(1024, 1);
    let a = switch.process(&gen_packet(512, 1), PortId(GEN_PORT), 0);
    let b = switch.process(&gen_packet(512, 2), PortId(GEN_PORT2), 1);
    assert_eq!(control.counters(&switch).splits, 2);
    assert_eq!(control.occupancy(&switch), 2);
    for out in [&a[0], &b[0]] {
        let back = bounce(&mut switch, out);
        assert_eq!(back[0].bytes.len(), 512);
    }
    assert_eq!(control.occupancy(&switch), 0);
}

#[test]
fn tags_are_unique_across_consecutive_packets() {
    let (mut switch, _) = testbed(4096, 1);
    let mut tags = std::collections::HashSet::new();
    for i in 0..1000u64 {
        let out = switch.process(&gen_packet(512, i), PortId(GEN_PORT), i);
        let parsed = ParsedPacket::parse(&out[0].bytes).unwrap();
        let pp = PayloadParkHeader::new_checked(parsed.payload()).unwrap();
        let tag = pp.verify_tag().unwrap();
        assert!(tags.insert((tag.table_index, tag.generation)), "duplicate tag at {i}");
    }
}

#[test]
fn recirculation_parks_384_bytes() {
    let (mut switch, control) = testbed_recirc(1024);
    // 500-byte payload >= 384: split engages across both pipes.
    let pkt = gen_packet(542, 11);
    let out = switch.process(&pkt, PortId(GEN_PORT), 0);
    assert_eq!(out.len(), 1);
    // 384 parked, 7 added.
    assert_eq!(out[0].bytes.len(), 542 - 377);
    assert_eq!(switch.stats().recirculations, 1);

    let back = bounce(&mut switch, &out[0]);
    assert_eq!(back[0].bytes.len(), 542);
    let parsed = ParsedPacket::parse(&back[0].bytes).unwrap();
    assert_eq!(parsed.payload(), &pattern(500, 11)[..]);
    let c = control.counters(&switch);
    assert_eq!(c.splits, 1);
    assert_eq!(c.merges, 1);
    assert!(c.functionally_equivalent());
    assert_eq!(switch.stats().recirculations, 2);
}

#[test]
fn recirculation_raises_minimum_payload_to_384() {
    let (mut switch, control) = testbed_recirc(1024);
    // 380-byte payload < 384: no split, disabled header instead.
    let pkt = gen_packet(422, 3);
    let out = switch.process(&pkt, PortId(GEN_PORT), 0);
    assert_eq!(out[0].bytes.len(), 422 + 7);
    assert_eq!(control.counters(&switch).disabled_small_payload, 1);
    assert_eq!(switch.stats().recirculations, 0);
    let back = bounce(&mut switch, &out[0]);
    assert_eq!(back[0].bytes.len(), 422);
}

#[test]
fn recirculation_interleaved_flows_round_trip() {
    let (mut switch, control) = testbed_recirc(512);
    let mut outs = Vec::new();
    for i in 0..50u64 {
        let out = switch.process(&gen_packet(900, i), PortId(GEN_PORT), i);
        outs.push(out.into_iter().next().unwrap());
    }
    for (i, out) in outs.iter().enumerate() {
        let back = bounce(&mut switch, out);
        assert_eq!(back[0].bytes.len(), 900);
        let parsed = ParsedPacket::parse(&back[0].bytes).unwrap();
        assert_eq!(parsed.payload(), &pattern(900 - 42, i as u64)[..], "packet {i}");
    }
    assert!(control.counters(&switch).functionally_equivalent());
}

#[test]
fn baseline_switch_is_byte_transparent() {
    let mut switch = build_baseline_switch(ChipProfile::default()).unwrap();
    switch.l2_add(server_mac(), PortId(SERVER_PORT));
    for size in [64usize, 256, 882, 1492] {
        let pkt = gen_packet(size, size as u64);
        let out = switch.process(&pkt, PortId(GEN_PORT), 0);
        assert_eq!(out[0].bytes, pkt);
        assert_eq!(out[0].port, PortId(SERVER_PORT));
    }
}

#[test]
fn multi_slice_isolation() {
    // Two servers share pipe 0 with static slices; filling one slice must
    // not consume the other's slots (§6.2.3 performance isolation).
    let chip = ChipProfile::default();
    let mut cfg = ParkConfig::single_server(chip, vec![0], 2, 4);
    cfg.pipes[0].slices.push(SliceSpec {
        name: "server1".into(),
        split_ports: vec![4],
        merge_ports: vec![5],
        slots: 4,
    });
    let (mut switch, handles) = build_switch(&cfg).unwrap();
    let control = PipeControl::new(handles[0].clone());
    let mac_a = MacAddr::from_index(100);
    let mac_b = MacAddr::from_index(101);
    switch.l2_add(mac_a, PortId(2));
    switch.l2_add(mac_b, PortId(5));

    // Exhaust slice A (expiry 1 means its own slots recycle, so fill 4).
    for i in 0..4u64 {
        let pkt = UdpPacketBuilder::new().dst_mac(mac_a).total_size(512, i).build().into_bytes();
        switch.process(&pkt, PortId(0), i);
    }
    assert_eq!(control.occupancy(&switch), 4);

    // Slice B still splits happily.
    let pkt = UdpPacketBuilder::new().dst_mac(mac_b).total_size(512, 9).build().into_bytes();
    let out = switch.process(&pkt, PortId(4), 9);
    assert_eq!(out[0].bytes.len(), 512 - 153);
    let c = control.counters(&switch);
    assert_eq!(c.splits, 5);
    assert_eq!(c.disabled_occupied, 0);
    assert_eq!(control.occupancy(&switch), 5);
}

#[test]
fn resource_report_has_sensible_shape() {
    let chip = ChipProfile::default();
    let mut cfg = ParkConfig::single_server(chip, vec![0, 1], 2, 1024);
    // ~26% of pipe SRAM, as in the paper's macro-benchmarks.
    cfg.pipes[0].slices[0].slots = cfg.slots_for_sram_fraction(0.26);
    let (switch, handles) = build_switch(&cfg).unwrap();
    let control = PipeControl::new(handles[0].clone());
    let report = control.resource_report(&switch);

    // SRAM: the paper reports 25.94% average / 33.75% peak per stage.
    let avg = report.sram_avg_pct();
    let peak = report.sram_peak_pct();
    assert!((20.0..35.0).contains(&avg), "avg {avg}");
    assert!(peak >= avg && peak < 50.0, "peak {peak}");
    // TCAM is engineered to the paper's 0.69%.
    assert!((report.tcam_pct() - 0.69).abs() < 0.05, "tcam {}", report.tcam_pct());
    // The remaining resources stay under 20% / PHV under 50%.
    assert!(report.vliw_pct() < 20.0);
    assert!(report.exact_xbar_pct() < 20.0);
    assert!(report.phv_pct() < 50.0);
    let rendered = report.render();
    assert!(rendered.contains("SRAM"));
}

#[test]
fn clear_tables_resets_occupancy() {
    let (mut switch, control) = testbed(64, 1);
    for i in 0..10u64 {
        switch.process(&gen_packet(512, i), PortId(GEN_PORT), i);
    }
    assert_eq!(control.occupancy(&switch), 10);
    control.clear_tables(&mut switch);
    assert_eq!(control.occupancy(&switch), 0);
}

#[test]
fn adaptive_policy_tunes_the_live_threshold() {
    use payloadpark::AdaptiveConfig;

    // One slot, aggressive expiry: the second split evicts the first
    // payload and its merge comes back premature.
    let (mut switch, control) = testbed(1, 1);
    let mut policy = control.adaptive_policy(AdaptiveConfig::default());
    assert_eq!(policy.current(), 1);

    let p0 = switch.process(&gen_packet(512, 0), PortId(GEN_PORT), 0);
    let _p1 = switch.process(&gen_packet(512, 1), PortId(GEN_PORT), 1);
    assert!(bounce(&mut switch, &p0[0]).is_empty(), "premature eviction");
    assert_eq!(control.counters(&switch).premature_evictions, 1);

    // The controller reacts by moving to a more conservative threshold.
    assert_eq!(policy.observe(control.counters(&switch)), 2);

    // From now on, an occupied slot is aged instead of evicted: the next
    // overlapping split falls back to baseline mode rather than killing
    // the in-flight payload.
    let p2 = switch.process(&gen_packet(512, 2), PortId(GEN_PORT), 2);
    let p3 = switch.process(&gen_packet(512, 3), PortId(GEN_PORT), 3);
    assert_eq!(p3[0].bytes.len(), 512 + 7, "fallback, not eviction");
    let before = control.counters(&switch).premature_evictions;
    assert_eq!(bounce(&mut switch, &p2[0])[0].bytes.len(), 512);
    assert_eq!(bounce(&mut switch, &p3[0])[0].bytes.len(), 512);
    assert_eq!(control.counters(&switch).premature_evictions, before);

    // Quiet traffic leaves the threshold alone.
    assert_eq!(policy.observe(control.counters(&switch)), 2);
    assert_eq!(policy.adjustments(), 1);
}
