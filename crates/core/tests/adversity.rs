//! Evictor and Merge behaviour under adversarial arrival schedules.
//!
//! These tests drive hand-crafted loss/blackout/duplication/reordering
//! schedules through a small deployment — precise control over *which*
//! packet is lost or replayed, where the top-level adversity matrix uses
//! the seeded scenario engine — and assert the conformance oracle's
//! invariants: no slot leaks, exactly-once payload restore, and the
//! adaptive policy stepping toward conservative expiry when live payloads
//! get evicted.

use payloadpark::program::build_switch;
use payloadpark::{oracle, AdaptiveConfig, ParkConfig, PipeControl};
use pp_packet::{MacAddr, ParsedPacket, UdpPacketBuilder};
use pp_rmt::chip::ChipProfile;
use pp_rmt::switch::{SwitchModel, SwitchOutput};
use pp_rmt::PortId;

const SPLIT_PORT: u16 = 0;
const MERGE_PORT: u16 = 2;
const SINK_PORT: u16 = 3;

fn server_mac() -> MacAddr {
    MacAddr::from_index(100)
}
fn sink_mac() -> MacAddr {
    MacAddr::from_index(200)
}

fn park_switch(slots: usize, expiry: u16) -> (SwitchModel, PipeControl) {
    let mut cfg =
        ParkConfig::single_server(ChipProfile::default(), vec![SPLIT_PORT, 1], MERGE_PORT, slots);
    cfg.expiry_threshold = expiry;
    let (mut sw, handles) = build_switch(&cfg).expect("config builds");
    sw.l2_add(server_mac(), PortId(MERGE_PORT));
    sw.l2_add(sink_mac(), PortId(SINK_PORT));
    (sw, PipeControl::new(handles[0].clone()))
}

/// A parkable packet: 512 wire bytes leave a 470-byte payload, well past
/// the 160-byte minimum.
fn pkt(seq: u64, size: usize) -> Vec<u8> {
    UdpPacketBuilder::new().dst_mac(server_mac()).total_size(size, seq).build().into_bytes()
}

/// Splits `seqs` one by one, returning the header packets bound for the
/// NF server.
fn split_wave(sw: &mut SwitchModel, seqs: std::ops::Range<u64>, size: usize) -> Vec<SwitchOutput> {
    seqs.flat_map(|seq| {
        let out = sw.process(&pkt(seq, size), PortId(SPLIT_PORT), seq);
        assert!(out.iter().all(|o| o.port == PortId(MERGE_PORT)), "split output to server");
        out
    })
    .collect()
}

/// The MAC-swap NF + merge ingress for one returning header packet.
fn merge_one(sw: &mut SwitchModel, out: &SwitchOutput) -> Vec<SwitchOutput> {
    let mut back = out.bytes.clone();
    back[0..6].copy_from_slice(&sink_mac().0);
    sw.process(&back, PortId(MERGE_PORT), out.seq)
}

/// §3.3 under a scripted blackout: an 8-slot table, one full wave whose
/// NF-leg returns all vanish (a blacked-out server), then a double wave
/// whose splits must evict the orphans — and whose own first half gets
/// evicted in turn, so its late merges come back prematurely. Zero slot
/// leaks, every counter balanced, and the §7 adaptive policy reacts by
/// stepping toward conservative expiry.
#[test]
fn blackout_on_the_nf_leg_evicts_orphans_without_leaking_slots() {
    let (mut sw, control) = park_switch(8, 1);

    // Wave A: 8 splits; the blackout swallows every return.
    let blacked_out = split_wave(&mut sw, 0..8, 512);
    assert_eq!(blacked_out.len(), 8);
    assert_eq!(control.occupancy(&sw), 8, "all 8 slots parked and orphaned");

    // Wave B: 16 splits wrap the table twice — the first 8 evict wave A's
    // orphans, the second 8 evict wave B's own first half.
    let returns = split_wave(&mut sw, 8..24, 512);
    let c = control.counters(&sw);
    assert_eq!(c.splits, 24);
    assert_eq!(c.evictions, 16, "8 orphans + 8 of wave B aged out");

    // All of wave B returns (late): the first half finds its slots
    // re-occupied — premature evictions — and the second half merges.
    let mut delivered = Vec::new();
    for out in &returns {
        delivered.extend(merge_one(&mut sw, out));
    }
    let c = control.counters(&sw);
    assert_eq!(c.premature_evictions, 8, "{c:?}");
    assert_eq!(c.merges, 8, "{c:?}");
    assert_eq!(delivered.len(), 8);

    // The conformance oracle: counters balance against occupancy (zero
    // leaks: 24 splits = 8 merges + 16 evictions + 0 occupied), and every
    // delivered packet is whole.
    assert_eq!(control.occupancy(&sw), 0);
    oracle::check_switch(&control, &sw, delivered.iter().map(|o| o.bytes.as_slice())).assert_ok();

    // The §7 adaptive policy sees the premature evictions and steps the
    // live threshold toward the conservative end.
    let mut policy = control.adaptive_policy(AdaptiveConfig::default());
    assert_eq!(policy.current(), 1, "started aggressive");
    let next = policy.observe(control.counters(&sw));
    assert_eq!(next, 2, "premature evictions must raise the threshold");
    assert_eq!(control.handles().expiry.load(std::sync::atomic::Ordering::Relaxed), 2);
    assert_eq!(policy.adjustments(), 1);
}

/// Duplicate and reordered ENB=1 merge arrivals: the payload is restored
/// exactly once per Split, duplicates are counted in `dup_merge` and
/// dropped without double-freeing the slot or splicing a stale payload,
/// and the surviving output is byte-identical to the calm run.
#[test]
fn duplicate_and_reordered_merges_restore_exactly_once() {
    // Calm reference: split + merge in order, no adversity.
    let (mut calm_sw, calm_control) = park_switch(64, 4);
    let mut reference = std::collections::BTreeMap::new();
    for out in split_wave(&mut calm_sw, 0..12, 420) {
        for merged in merge_one(&mut calm_sw, &out) {
            reference.insert(merged.seq, merged.bytes);
        }
    }
    assert_eq!(reference.len(), 12);
    assert!(calm_control.counters(&calm_sw).functionally_equivalent());

    // Adverse run: the same 12 packets, but the NF leg reverses the
    // returns (reordering far beyond any batch boundary) and delivers
    // every one of them twice.
    let (mut sw, control) = park_switch(64, 4);
    let returns = split_wave(&mut sw, 0..12, 420);
    let mut delivered = Vec::new();
    for out in returns.iter().rev() {
        for copy in 0..2 {
            let merged = merge_one(&mut sw, out);
            if copy == 0 {
                assert_eq!(merged.len(), 1, "first arrival must merge");
            } else {
                assert!(merged.is_empty(), "duplicate must be consumed");
            }
            delivered.extend(merged);
        }
    }

    let c = control.counters(&sw);
    assert_eq!(c.merges, 12, "{c:?}");
    assert_eq!(c.dup_merge, 12, "every duplicate counted: {c:?}");
    assert_eq!(c.premature_evictions, 0, "{c:?}");
    assert_eq!(c.crc_fail, 0, "{c:?}");

    // Exactly-once, order-independent restore: every surviving packet is
    // byte-identical to the calm run's delivery for the same seq.
    assert_eq!(delivered.len(), 12);
    for out in &delivered {
        assert_eq!(&out.bytes, reference.get(&out.seq).expect("seq delivered in calm run"));
        assert!(ParsedPacket::parse(&out.bytes).unwrap().verify_checksums());
    }

    // No slot leaked, none double-freed.
    assert_eq!(control.occupancy(&sw), 0);
    oracle::check_switch(&control, &sw, delivered.iter().map(|o| o.bytes.as_slice())).assert_ok();
}

/// A duplicated ENB=0 (small-payload) return takes the baseline path:
/// both copies are delivered whole, exactly as a baseline L2 switch would
/// forward a duplicated packet — nothing is parked, so nothing can leak.
#[test]
fn duplicated_disabled_shim_returns_take_the_baseline_path() {
    let (mut sw, control) = park_switch(16, 1);
    // 100 wire bytes → 58-byte payload, far under the 160-byte minimum:
    // Split attaches a disabled shim instead of parking.
    let out = sw.process(&pkt(5, 100), PortId(SPLIT_PORT), 5);
    assert_eq!(out.len(), 1);
    let c = control.counters(&sw);
    assert_eq!(c.disabled_small_payload, 1);
    assert_eq!(c.splits, 0);

    let mut delivered = Vec::new();
    for _ in 0..2 {
        delivered.extend(merge_one(&mut sw, &out[0]));
    }
    let c = control.counters(&sw);
    assert_eq!(delivered.len(), 2, "baseline semantics: duplicates pass through");
    assert_eq!(c.enb0_from_server, 2, "{c:?}");
    assert_eq!(c.dup_merge, 0, "no parked state was touched: {c:?}");
    assert_eq!(delivered[0].bytes, delivered[1].bytes);
    assert_eq!(control.occupancy(&sw), 0);
    oracle::check_switch(&control, &sw, delivered.iter().map(|o| o.bytes.as_slice())).assert_ok();
}
