//! Property-based tests for the PayloadPark dataplane program.
//!
//! The central invariant is the paper's functional-equivalence requirement
//! (§6.2.6): for any traffic pattern that suffers no premature evictions,
//! Split followed by Merge must restore every packet byte for byte.

use proptest::prelude::*;

use payloadpark::program::build_switch;
use payloadpark::{ParkConfig, PipeControl};
use pp_packet::builder::UdpPacketBuilder;
use pp_packet::parse::ParsedPacket;
use pp_packet::MacAddr;
use pp_rmt::chip::ChipProfile;
use pp_rmt::switch::SwitchModel;
use pp_rmt::PortId;

const SERVER_PORT: u16 = 2;
const SINK_PORT: u16 = 3;

fn testbed(slots: usize, expiry: u16) -> (SwitchModel, PipeControl) {
    let mut cfg = ParkConfig::single_server(ChipProfile::default(), vec![0, 1], SERVER_PORT, slots);
    cfg.expiry_threshold = expiry;
    let (mut switch, handles) = build_switch(&cfg).unwrap();
    switch.l2_add(MacAddr::from_index(100), PortId(SERVER_PORT));
    switch.l2_add(MacAddr::from_index(200), PortId(SINK_PORT));
    (switch, PipeControl::new(handles[0].clone()))
}

fn packet(size: usize, seed: u64) -> Vec<u8> {
    UdpPacketBuilder::new()
        .dst_mac(MacAddr::from_index(100))
        .total_size(size, seed)
        .build()
        .into_bytes()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// Any mix of packet sizes round-trips byte-identically when the table
    /// is large enough that no eviction can occur.
    #[test]
    fn split_merge_is_identity_without_evictions(
        sizes in proptest::collection::vec(43usize..1492, 1..40),
        seed in any::<u64>(),
    ) {
        let (mut switch, control) = testbed(4096, 1);
        // Split all, then merge all (worst-case table pressure for the batch).
        let mut in_flight = Vec::new();
        for (i, &size) in sizes.iter().enumerate() {
            let pkt = packet(size, seed ^ i as u64);
            let out = switch.process(&pkt, PortId((i % 2) as u16), i as u64);
            prop_assert_eq!(out.len(), 1);
            in_flight.push((pkt, out.into_iter().next().unwrap()));
        }
        for (original, out) in in_flight {
            let mut back = out.bytes.clone();
            back[0..6].copy_from_slice(&MacAddr::from_index(200).0);
            let merged = switch.process(&back, PortId(SERVER_PORT), out.seq);
            prop_assert_eq!(merged.len(), 1);
            // Compare everything except the dst MAC we rewrote.
            prop_assert_eq!(&merged[0].bytes[6..], &original[6..]);
        }
        let c = control.counters(&switch);
        prop_assert!(c.functionally_equivalent());
        prop_assert_eq!(control.occupancy(&switch), 0);
    }

    /// Wire length after Split is always original − 153 for parked packets
    /// and original + 7 for bypassed ones; never anything else.
    #[test]
    fn split_changes_length_by_exactly_the_contract(
        size in 43usize..1492,
        seed in any::<u64>(),
    ) {
        let (mut switch, control) = testbed(64, 1);
        let pkt = packet(size, seed);
        let out = switch.process(&pkt, PortId(0), 0);
        prop_assert_eq!(out.len(), 1);
        let payload = size - 42;
        if payload >= 160 {
            prop_assert_eq!(out[0].bytes.len(), size - 153);
            prop_assert_eq!(control.counters(&switch).splits, 1);
        } else {
            prop_assert_eq!(out[0].bytes.len(), size + 7);
            prop_assert_eq!(control.counters(&switch).disabled_small_payload, 1);
        }
        // The emitted packet always re-parses cleanly.
        let parsed = ParsedPacket::parse(&out[0].bytes).unwrap();
        prop_assert_eq!(parsed.wire_len(), out[0].bytes.len());
    }

    /// Counters are conserved: every split-port packet lands in exactly one
    /// of {split, disabled_small, disabled_occupied}, and outstanding slots
    /// equal table occupancy.
    #[test]
    fn counter_conservation(
        sizes in proptest::collection::vec(43usize..900, 1..60),
        slots in 1usize..32,
        expiry in 1u16..4,
        seed in any::<u64>(),
    ) {
        let (mut switch, control) = testbed(slots, expiry);
        for (i, &size) in sizes.iter().enumerate() {
            switch.process(&packet(size, seed ^ i as u64), PortId(0), i as u64);
        }
        let c = control.counters(&switch);
        prop_assert_eq!(
            c.splits + c.disabled_small_payload + c.disabled_occupied,
            sizes.len() as u64
        );
        prop_assert_eq!(control.occupancy(&switch) as i64, c.outstanding());
    }

    /// Under deliberate table starvation the switch never drops a forward-
    /// path packet: splits that cannot park fall back to baseline mode.
    #[test]
    fn no_forward_path_loss_under_starvation(
        n in 1usize..80,
        expiry in 2u16..16,
        seed in any::<u64>(),
    ) {
        // 2 slots, conservative expiry: most packets find slots occupied.
        let (mut switch, control) = testbed(2, expiry);
        for i in 0..n {
            let out = switch.process(&packet(600, seed ^ i as u64), PortId(0), i as u64);
            prop_assert_eq!(out.len(), 1, "packet {} lost", i);
        }
        let c = control.counters(&switch);
        prop_assert!(c.splits + c.disabled_occupied == n as u64);
    }
}
