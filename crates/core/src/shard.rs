//! Sharding a deployment across parallel workers.
//!
//! The paper's multi-server slicing (§6.2.4) statically partitions a pipe's
//! lookup table into per-server *slices*, keyed by ingress port: a packet's
//! port decides which slice's circular buffers its tagger walks, and the
//! slices never share register cells. [`ShardPlan`] reuses exactly that
//! port→slice mapping to partition a deployment across execution workers:
//! each worker receives the slices assigned to it as a standalone
//! [`ParkConfig`] and therefore owns a disjoint portion of the parking
//! store. Because a slice's tagger, metadata entries and payload cells are
//! only ever touched by packets of that slice's ports, running the shards
//! concurrently is observationally identical to running the original
//! multi-slice program one packet at a time — the property the fastpath
//! equivalence oracle verifies.

use crate::config::{ParkConfig, PipePark};
use std::collections::BTreeMap;

/// A partition of one deployment into per-worker sub-deployments.
#[derive(Debug, Clone)]
pub struct ShardPlan {
    configs: Vec<ParkConfig>,
    port_to_shard: BTreeMap<u16, usize>,
}

impl ShardPlan {
    /// Splits `cfg` into `workers` disjoint shards.
    ///
    /// Requirements, mirroring what the static slicing of §6.2.4 can
    /// express: the deployment must program exactly one pipe, carry at
    /// least one slice per worker, and not use recirculation when sharding
    /// (an annex pipe stripes *one* slice across two pipes; `workers == 1`
    /// keeps it). Slices are dealt round-robin to workers in declaration
    /// order, so worker *w* owns slices `w, w + workers, …`.
    pub fn new(cfg: &ParkConfig, workers: usize) -> Result<ShardPlan, String> {
        cfg.validate()?;
        if workers == 0 {
            return Err("need at least one worker".into());
        }
        let [pipe_cfg]: &[PipePark] = cfg.pipes.as_slice() else {
            return Err(format!(
                "sharding expects a single-pipe deployment, got {} pipes",
                cfg.pipes.len()
            ));
        };
        if pipe_cfg.slices.len() < workers {
            return Err(format!(
                "{} workers need at least as many slices, got {}",
                workers,
                pipe_cfg.slices.len()
            ));
        }
        if pipe_cfg.annex_pipe.is_some() && workers > 1 {
            return Err("recirculation deployments cannot be sharded".into());
        }

        let mut port_to_shard = BTreeMap::new();
        let mut configs = Vec::with_capacity(workers);
        for w in 0..workers {
            let slices: Vec<_> = pipe_cfg
                .slices
                .iter()
                .enumerate()
                .filter(|(i, _)| i % workers == w)
                .map(|(_, s)| s.clone())
                .collect();
            for slice in &slices {
                for &p in slice.split_ports.iter().chain(&slice.merge_ports) {
                    port_to_shard.insert(p, w);
                }
            }
            let shard = ParkConfig {
                pipes: vec![PipePark {
                    pipe: pipe_cfg.pipe,
                    slices,
                    annex_pipe: pipe_cfg.annex_pipe,
                }],
                ..cfg.clone()
            };
            shard.validate().map_err(|e| format!("shard {w}: {e}"))?;
            configs.push(shard);
        }
        Ok(ShardPlan { configs, port_to_shard })
    }

    /// Number of workers in the plan.
    pub fn workers(&self) -> usize {
        self.configs.len()
    }

    /// The sub-deployment worker `w` runs.
    pub fn config(&self, w: usize) -> &ParkConfig {
        &self.configs[w]
    }

    /// All per-worker sub-deployments, in worker order.
    pub fn configs(&self) -> &[ParkConfig] {
        &self.configs
    }

    /// The worker that owns `port` (split or merge), if any.
    pub fn shard_of_port(&self, port: u16) -> Option<usize> {
        self.port_to_shard.get(&port).copied()
    }

    /// Total lookup-table slots across all shards — equals the original
    /// deployment's slot count (the partition neither loses nor duplicates
    /// parking capacity).
    pub fn total_slots(&self) -> usize {
        self.configs.iter().map(|c| c.pipes[0].total_slots()).sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::SliceSpec;
    use pp_rmt::chip::ChipProfile;

    /// `n` slices on pipe 0: slice k splits on port 2k, merges on 2k+1.
    fn sliced(n: usize, slots: usize) -> ParkConfig {
        let mut cfg = ParkConfig::single_server(ChipProfile::default(), vec![0], 1, slots);
        cfg.pipes[0].slices = (0..n)
            .map(|k| SliceSpec {
                name: format!("server{k}"),
                split_ports: vec![2 * k as u16],
                merge_ports: vec![2 * k as u16 + 1],
                slots,
            })
            .collect();
        cfg
    }

    #[test]
    fn round_robin_partition_covers_all_slices() {
        let cfg = sliced(4, 256);
        let plan = ShardPlan::new(&cfg, 2).unwrap();
        assert_eq!(plan.workers(), 2);
        assert_eq!(plan.config(0).pipes[0].slices.len(), 2);
        assert_eq!(plan.config(0).pipes[0].slices[0].name, "server0");
        assert_eq!(plan.config(0).pipes[0].slices[1].name, "server2");
        assert_eq!(plan.config(1).pipes[0].slices[0].name, "server1");
        assert_eq!(plan.total_slots(), 4 * 256);
        assert_eq!(plan.configs().len(), 2);
    }

    #[test]
    fn port_mapping_follows_slice_assignment() {
        let cfg = sliced(4, 64);
        let plan = ShardPlan::new(&cfg, 4).unwrap();
        for k in 0..4u16 {
            assert_eq!(plan.shard_of_port(2 * k), Some(usize::from(k)));
            assert_eq!(plan.shard_of_port(2 * k + 1), Some(usize::from(k)));
        }
        assert_eq!(plan.shard_of_port(9), None);
    }

    #[test]
    fn single_worker_plan_is_the_original_config() {
        let cfg = sliced(3, 128);
        let plan = ShardPlan::new(&cfg, 1).unwrap();
        assert_eq!(plan.config(0), &cfg);
    }

    #[test]
    fn rejects_invalid_plans() {
        let cfg = sliced(2, 64);
        assert!(ShardPlan::new(&cfg, 0).is_err());
        assert!(ShardPlan::new(&cfg, 3).is_err(), "more workers than slices");

        let mut annex = sliced(1, 64);
        annex.pipes[0].annex_pipe = Some(1);
        assert!(ShardPlan::new(&annex, 2).is_err());
        ShardPlan::new(&annex, 1).unwrap();

        let mut two_pipes = sliced(2, 64);
        let mut second = two_pipes.pipes[0].clone();
        second.pipe = 1;
        for s in &mut second.slices {
            s.split_ports.iter_mut().for_each(|p| *p += 16);
            s.merge_ports.iter_mut().for_each(|p| *p += 16);
        }
        two_pipes.pipes.push(second);
        assert!(ShardPlan::new(&two_pipes, 2).is_err());
    }
}
