//! The park-table storage abstraction: [`FlowStore`].
//!
//! The register program ([`crate::program`]) hard-wires the paper's park
//! table into per-stage register arrays: an 8-byte metadata cell and
//! `primary_blocks` 16-byte payload cells per slot, capacity fixed at
//! build time. That is faithful to the ASIC, but the cluster tier needs
//! the same *semantics* at a very different scale — millions of
//! concurrent flows, sparse occupancy, slots migrating between switches.
//!
//! This module lifts the park table behind a trait with two
//! implementations:
//!
//! * [`CircularStore`] — the register file's dense layout verbatim: a
//!   flat metadata array plus a payload arena, full capacity allocated up
//!   front. The reference implementation; byte-for-byte what the
//!   register program does.
//! * [`SlabStore`] — a sparse map of occupied slots over a
//!   generational-index slab ([`Slab`]/[`SlabHandle`]) for payload
//!   storage: memory is proportional to *occupancy*, not capacity, so a
//!   logical table of millions of slots costs nothing until flows park.
//!   Park, restore and evict are all O(1); freed payload handles bump a
//!   generation so a stale handle can never read a re-used arena entry —
//!   the in-memory analogue of the wire tag's `(idx, clk, crc)`
//!   validation. An optional spill tier demotes the oldest parked
//!   payloads out of the bounded hot slab (modeling off-ASIC memory for
//!   long-parked flows) and restores them transparently.
//!
//! Every operation mirrors one register-program action exactly — the
//! aging/occupy rules of `split_probe`, the reclaim/duplicate/premature
//! classification of `merge_validate`, the load-then-zero of
//! `merge_load_j`. Crucially, [`FlowStore::merge`] clears only the slot's
//! *metadata*; payload bytes stay in place until [`FlowStore::load_block`]
//! drains them, preserving the register file's aliasing behaviour under
//! batched (stage-outer) execution. `tests/flowstore_matrix.rs` pins the
//! equivalence over the full adversity matrix.

use std::collections::HashMap;
use std::collections::VecDeque;
use std::ops::Range;
use std::sync::{Arc, Mutex};

use pp_rmt::phv::BLOCK_BYTES;

/// What `split_probe` writes into a slot when it occupies it.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ParkTag {
    /// Generation clock from the tagger.
    pub clk: u16,
    /// Expiry threshold at occupy time (the live `Arc<AtomicU16>` value).
    pub expiry: u16,
    /// The original transport checksum, parked with the payload.
    pub xsum: u16,
    /// The 5-tuple one's-complement sum, for RFC 1624 repair at merge.
    pub tsum: u16,
}

/// The outcome of a `split_probe` against one slot.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ProbeOutcome {
    /// The slot was free (or just aged out) and is now occupied by the
    /// probing flow — Split proceeds.
    pub parked: bool,
    /// Aging expired the previous occupant on this probe.
    pub evicted: bool,
}

/// The outcome of a `merge_validate` against one slot.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum MergeOutcome {
    /// Generations matched: the slot is reclaimed and Merge restores the
    /// payload. Carries the parked checksum state.
    Restored {
        /// The parked transport checksum.
        xsum: u16,
        /// The parked 5-tuple sum.
        tsum: u16,
    },
    /// The slot is already cleared: a duplicate (or replayed) merge.
    Duplicate,
    /// The slot was evicted (and possibly re-occupied by a newer flow).
    Premature,
}

/// One parked flow lifted out of a store, for migration between cluster
/// switches. `slot` is in the parent deployment's global coordinates, so
/// a flow's wire tag `(idx, clk, crc)` stays valid across the move.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ParkedFlow {
    /// Global lookup-table slot.
    pub slot: usize,
    /// Stored generation clock.
    pub clk: u16,
    /// Remaining expiry budget (0 = residual payload of a drained slot).
    pub exp: u16,
    /// Parked transport checksum.
    pub xsum: u16,
    /// Parked 5-tuple sum.
    pub tsum: u16,
    /// Payload bytes (`blocks * BLOCK_BYTES`), when any are live.
    pub payload: Option<Vec<u8>>,
}

/// The park table behind the dataplane program: metadata + payload
/// storage for `slots()` logical slots of `blocks` 16-byte payload cells
/// each. All methods mirror one register-program action; see the module
/// docs for the exact correspondence.
pub trait FlowStore: Send {
    /// Logical capacity in slots (parent-deployment coordinates).
    fn slots(&self) -> usize;

    /// Payload blocks per slot.
    fn blocks(&self) -> usize;

    /// Number of slots whose expiry budget is > 0 — the same definition
    /// [`crate::control::PipeControl::occupancy`] scans the register file
    /// for.
    fn occupancy(&self) -> usize;

    /// `split_probe`: age the occupant (evicting at zero), then occupy
    /// the slot with `tag` if it is free. Mirrors Alg. 1 lines 11-23.
    fn probe(&mut self, slot: usize, tag: ParkTag) -> ProbeOutcome;

    /// `split_store_j`: park payload block `j` (`data` is one
    /// [`BLOCK_BYTES`] cell).
    fn store_block(&mut self, slot: usize, j: usize, data: &[u8]);

    /// `merge_validate`: classify an enabled merge arrival carrying
    /// generation `clk`. Restoring clears the slot's metadata only;
    /// payload bytes stay until [`FlowStore::load_block`] drains them.
    fn merge(&mut self, slot: usize, clk: u16) -> MergeOutcome;

    /// `merge_load_j`: copy payload block `j` into `out` and zero it
    /// (Alg. 2 line 23).
    fn load_block(&mut self, slot: usize, j: usize, out: &mut [u8]);

    /// Clears every slot (the control plane's table wipe).
    fn clear(&mut self);

    /// Lifts every live slot in `range` out of the store (clearing it
    /// here), for migration to another switch's store.
    fn extract_range(&mut self, range: Range<usize>) -> Vec<ParkedFlow>;

    /// Installs migrated flows (the counterpart of
    /// [`FlowStore::extract_range`] on the receiving switch).
    fn inject(&mut self, flows: Vec<ParkedFlow>);

    /// Payloads currently demoted to the spill tier (0 for stores
    /// without one).
    fn spilled(&self) -> usize {
        0
    }
}

/// A store shared between the MAT closures that drive it and the control
/// plane that inspects it.
pub type SharedStore = Arc<Mutex<dyn FlowStore>>;

/// Wraps a concrete store for use by [`crate::storeprog::build_store_switch`].
pub fn shared(store: impl FlowStore + 'static) -> SharedStore {
    Arc::new(Mutex::new(store))
}

/// One slot's metadata, the in-struct form of the register file's 8-byte
/// cell (`clk @0, exp @2, xsum @4, tsum @6`).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
struct SlotMeta {
    clk: u16,
    exp: u16,
    xsum: u16,
    tsum: u16,
}

impl SlotMeta {
    fn is_zero(&self) -> bool {
        *self == SlotMeta::default()
    }

    fn from_tag(tag: ParkTag) -> SlotMeta {
        SlotMeta { clk: tag.clk, exp: tag.expiry, xsum: tag.xsum, tsum: tag.tsum }
    }
}

/// Shared probe logic: age, evict, occupy. Returns the outcome; `meta`
/// holds the post-probe state.
fn probe_meta(meta: &mut SlotMeta, tag: ParkTag) -> ProbeOutcome {
    let mut evicted = false;
    // Alg. 1 lines 11-13: age the occupant.
    if meta.exp >= 1 {
        meta.exp -= 1;
        if meta.exp == 0 {
            evicted = true;
        }
    }
    if meta.exp == 0 {
        // Alg. 1 lines 14-20: free (or just evicted) — occupy.
        *meta = SlotMeta::from_tag(tag);
        ProbeOutcome { parked: true, evicted }
    } else {
        // Alg. 1 lines 21-23: occupied — the aged budget stays written.
        ProbeOutcome { parked: false, evicted: false }
    }
}

/// Shared merge classification over a slot's metadata. `None` means the
/// caller should reclaim (metadata is zeroed by the caller).
fn classify_merge(meta: &SlotMeta, clk: u16) -> Option<MergeOutcome> {
    if meta.exp > 0 && meta.clk == clk {
        None // Alg. 2 lines 11-15: reclaim.
    } else if meta.exp == 0 && meta.is_zero() {
        Some(MergeOutcome::Duplicate)
    } else {
        Some(MergeOutcome::Premature)
    }
}

// ---------------------------------------------------------------------------
// CircularStore: the register file's dense layout.
// ---------------------------------------------------------------------------

/// The fixed circular-buffer park table: dense metadata array + payload
/// arena, full capacity allocated up front. Semantically identical to the
/// register program's `metadata_table` + `payload_block_j` arrays.
#[derive(Debug)]
pub struct CircularStore {
    blocks: usize,
    meta: Vec<SlotMeta>,
    payload: Vec<u8>,
    occupied: usize,
}

impl CircularStore {
    /// A dense store of `slots` slots × `blocks` payload blocks.
    pub fn new(slots: usize, blocks: usize) -> CircularStore {
        CircularStore {
            blocks,
            meta: vec![SlotMeta::default(); slots],
            payload: vec![0u8; slots * blocks * BLOCK_BYTES],
            occupied: 0,
        }
    }

    fn payload_region(&mut self, slot: usize) -> &mut [u8] {
        let bytes = self.blocks * BLOCK_BYTES;
        &mut self.payload[slot * bytes..(slot + 1) * bytes]
    }
}

impl FlowStore for CircularStore {
    fn slots(&self) -> usize {
        self.meta.len()
    }

    fn blocks(&self) -> usize {
        self.blocks
    }

    fn occupancy(&self) -> usize {
        self.occupied
    }

    fn probe(&mut self, slot: usize, tag: ParkTag) -> ProbeOutcome {
        let meta = &mut self.meta[slot];
        let was = meta.exp > 0;
        let outcome = probe_meta(meta, tag);
        let now = meta.exp > 0;
        self.occupied = self.occupied + usize::from(now) - usize::from(was);
        outcome
    }

    fn store_block(&mut self, slot: usize, j: usize, data: &[u8]) {
        let off = j * BLOCK_BYTES;
        self.payload_region(slot)[off..off + BLOCK_BYTES].copy_from_slice(data);
    }

    fn merge(&mut self, slot: usize, clk: u16) -> MergeOutcome {
        let meta = &mut self.meta[slot];
        match classify_merge(meta, clk) {
            Some(outcome) => outcome,
            None => {
                let (xsum, tsum) = (meta.xsum, meta.tsum);
                *meta = SlotMeta::default();
                self.occupied -= 1;
                MergeOutcome::Restored { xsum, tsum }
            }
        }
    }

    fn load_block(&mut self, slot: usize, j: usize, out: &mut [u8]) {
        let off = j * BLOCK_BYTES;
        let region = self.payload_region(slot);
        out.copy_from_slice(&region[off..off + BLOCK_BYTES]);
        region[off..off + BLOCK_BYTES].fill(0);
    }

    fn clear(&mut self) {
        self.meta.fill(SlotMeta::default());
        self.payload.fill(0);
        self.occupied = 0;
    }

    fn extract_range(&mut self, range: Range<usize>) -> Vec<ParkedFlow> {
        let mut out = Vec::new();
        for slot in range {
            let meta = self.meta[slot];
            let live_payload = {
                let region = self.payload_region(slot);
                region.iter().any(|b| *b != 0)
            };
            if meta.is_zero() && !live_payload {
                continue;
            }
            let payload = live_payload.then(|| self.payload_region(slot).to_vec());
            self.payload_region(slot).fill(0);
            self.meta[slot] = SlotMeta::default();
            if meta.exp > 0 {
                self.occupied -= 1;
            }
            out.push(ParkedFlow {
                slot,
                clk: meta.clk,
                exp: meta.exp,
                xsum: meta.xsum,
                tsum: meta.tsum,
                payload,
            });
        }
        out
    }

    fn inject(&mut self, flows: Vec<ParkedFlow>) {
        for f in flows {
            let was = self.meta[f.slot].exp > 0;
            self.meta[f.slot] = SlotMeta { clk: f.clk, exp: f.exp, xsum: f.xsum, tsum: f.tsum };
            self.occupied = self.occupied + usize::from(f.exp > 0) - usize::from(was);
            let region = self.payload_region(f.slot);
            match f.payload {
                Some(bytes) => region.copy_from_slice(&bytes),
                None => region.fill(0),
            }
        }
    }
}

// ---------------------------------------------------------------------------
// Generational slab.
// ---------------------------------------------------------------------------

/// A handle into a [`Slab`]: arena index plus the generation it was
/// allocated under. A freed-and-reused entry bumps its generation, so a
/// stale handle dereferences to `None` instead of another flow's payload
/// — the same protection the wire tag's `(idx, clk)` check gives merges.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct SlabHandle {
    index: u32,
    generation: u32,
}

#[derive(Debug)]
struct SlabEntry {
    generation: u32,
    live: bool,
    data: Vec<u8>,
}

/// A generational arena of fixed-size payload buffers: O(1) alloc/free
/// via a free list, stale handles rejected by generation.
#[derive(Debug)]
pub struct Slab {
    entry_bytes: usize,
    entries: Vec<SlabEntry>,
    free: Vec<u32>,
}

impl Slab {
    /// An empty slab of `entry_bytes`-sized buffers.
    pub fn new(entry_bytes: usize) -> Slab {
        Slab { entry_bytes, entries: Vec::new(), free: Vec::new() }
    }

    /// Allocates a zeroed buffer.
    pub fn alloc(&mut self) -> SlabHandle {
        match self.free.pop() {
            Some(index) => {
                let e = &mut self.entries[index as usize];
                e.live = true;
                e.data.fill(0);
                SlabHandle { index, generation: e.generation }
            }
            None => {
                let index = self.entries.len() as u32;
                self.entries.push(SlabEntry {
                    generation: 0,
                    live: true,
                    data: vec![0u8; self.entry_bytes],
                });
                SlabHandle { index, generation: 0 }
            }
        }
    }

    /// The buffer behind `h`, or `None` for a stale or freed handle.
    pub fn get_mut(&mut self, h: SlabHandle) -> Option<&mut [u8]> {
        let e = self.entries.get_mut(h.index as usize)?;
        (e.live && e.generation == h.generation).then_some(e.data.as_mut_slice())
    }

    /// Read-only view of the buffer behind `h`.
    pub fn get(&self, h: SlabHandle) -> Option<&[u8]> {
        let e = self.entries.get(h.index as usize)?;
        (e.live && e.generation == h.generation).then_some(e.data.as_slice())
    }

    /// Frees `h`, bumping the entry's generation so `h` (and any copy of
    /// it) is dead from here on. Returns false for an already-stale handle.
    pub fn free(&mut self, h: SlabHandle) -> bool {
        let Some(e) = self.entries.get_mut(h.index as usize) else {
            return false;
        };
        if !e.live || e.generation != h.generation {
            return false;
        }
        e.live = false;
        e.generation = e.generation.wrapping_add(1);
        self.free.push(h.index);
        true
    }

    /// Number of live entries.
    pub fn live(&self) -> usize {
        self.entries.len() - self.free.len()
    }
}

// ---------------------------------------------------------------------------
// SlabStore: sparse slots over the generational slab, optional spill.
// ---------------------------------------------------------------------------

/// Where a slot's payload bytes live.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum PayloadRef {
    /// In the hot generational slab.
    Hot(SlabHandle),
    /// Demoted to the spill tier (keyed by slot).
    Spilled,
}

#[derive(Debug)]
struct SlotState {
    meta: SlotMeta,
    payload: Option<PayloadRef>,
    /// Monotonic park generation: bumped each time a new occupant parks
    /// in this slot. Spill-order entries record the epoch they were
    /// enqueued under, so an entry left behind by a previous occupant
    /// (slot re-occupied, slab handle reused) prunes instead of demoting
    /// the fresh flow out of turn.
    epoch: u64,
}

/// The sparse park table: occupied slots in a hash map, payload in a
/// generational [`Slab`], memory proportional to occupancy. With
/// [`SlabStore::with_spill`], the oldest parked payloads demote to a
/// spill map once the hot slab exceeds its capacity, modeling a
/// secondary memory tier for long-parked flows.
#[derive(Debug)]
pub struct SlabStore {
    slots: usize,
    blocks: usize,
    states: HashMap<usize, SlotState>,
    slab: Slab,
    spill: HashMap<usize, Vec<u8>>,
    /// Hot-slab capacity that triggers spilling (None = unbounded).
    hot_capacity: Option<usize>,
    /// Park order for the spill policy, lazily pruned: entries whose
    /// handle or park epoch went stale (the flow merged, was evicted, or
    /// the slot was re-occupied) are skipped.
    park_order: VecDeque<(usize, SlabHandle, u64)>,
    /// Next park epoch to hand out (see [`SlotState::epoch`]).
    park_epoch: u64,
    occupied: usize,
}

impl SlabStore {
    /// A sparse store of `slots` logical slots × `blocks` payload blocks.
    pub fn new(slots: usize, blocks: usize) -> SlabStore {
        SlabStore {
            slots,
            blocks,
            states: HashMap::new(),
            slab: Slab::new(blocks * BLOCK_BYTES),
            spill: HashMap::new(),
            hot_capacity: None,
            park_order: VecDeque::new(),
            park_epoch: 0,
            occupied: 0,
        }
    }

    /// Like [`SlabStore::new`], but the hot slab is bounded: beyond
    /// `hot_capacity` live payloads, the oldest parked ones demote to
    /// the spill tier.
    pub fn with_spill(slots: usize, blocks: usize, hot_capacity: usize) -> SlabStore {
        SlabStore { hot_capacity: Some(hot_capacity.max(1)), ..SlabStore::new(slots, blocks) }
    }

    /// Live hot-slab payloads (for tests and telemetry).
    pub fn hot(&self) -> usize {
        self.slab.live()
    }

    fn free_payload(
        states_entry: &mut SlotState,
        slab: &mut Slab,
        spill: &mut HashMap<usize, Vec<u8>>,
        slot: usize,
    ) {
        match states_entry.payload.take() {
            Some(PayloadRef::Hot(h)) => {
                slab.free(h);
            }
            Some(PayloadRef::Spilled) => {
                spill.remove(&slot);
            }
            None => {}
        }
    }

    /// Demotes oldest *live* parked payloads until the slab is back under
    /// its capacity. Stale park-order entries (already merged/evicted/
    /// spilled, or superseded by a newer occupant of the slot) are pruned
    /// as encountered. Slots whose expiry clock already ran out never
    /// demote: a fully-drained residual is released (evicted) on the
    /// spot, and a merge residual still waiting for `load_block` stays
    /// hot — spilling either would bump the spill gauge for a flow that
    /// is no longer parked, then bump it right back down on drain.
    fn enforce_spill(&mut self) {
        let Some(cap) = self.hot_capacity else {
            return;
        };
        // Entries skipped this pass (hot, but not demotable because the
        // metadata is already zero while payload bytes are still pending
        // drain). Re-queued afterwards so a later pass revisits them.
        let mut deferred = Vec::new();
        while self.slab.live() > cap {
            let Some((slot, handle, epoch)) = self.park_order.pop_front() else {
                break;
            };
            let still_hot = matches!(
                self.states.get(&slot),
                Some(SlotState { payload: Some(PayloadRef::Hot(h)), epoch: e, .. })
                    if *h == handle && *e == epoch
            );
            if !still_hot {
                continue; // lazily pruned: the flow is gone or moved.
            }
            let expired = self.states.get(&slot).expect("checked above").meta.exp == 0;
            if expired {
                let drained =
                    self.slab.get(handle).map(|d| d.iter().all(|b| *b == 0)).unwrap_or(true);
                if drained {
                    // Nothing left to restore: evict instead of demoting.
                    let mut state = self.states.remove(&slot).expect("present");
                    Self::free_payload(&mut state, &mut self.slab, &mut self.spill, slot);
                } else {
                    deferred.push((slot, handle, epoch));
                }
                continue;
            }
            let bytes = self.slab.get(handle).expect("live handle").to_vec();
            self.slab.free(handle);
            self.spill.insert(slot, bytes);
            self.states.get_mut(&slot).expect("checked above").payload = Some(PayloadRef::Spilled);
        }
        for entry in deferred.into_iter().rev() {
            self.park_order.push_front(entry);
        }
    }

    /// Drops the whole slot entry once both its metadata and payload are
    /// fully drained.
    fn release_if_drained(&mut self, slot: usize) {
        let Some(state) = self.states.get(&slot) else {
            return;
        };
        if !state.meta.is_zero() {
            return;
        }
        let drained = match state.payload {
            None => true,
            Some(PayloadRef::Hot(h)) => {
                self.slab.get(h).map(|d| d.iter().all(|b| *b == 0)).unwrap_or(true)
            }
            Some(PayloadRef::Spilled) => {
                self.spill.get(&slot).map(|d| d.iter().all(|b| *b == 0)).unwrap_or(true)
            }
        };
        if drained {
            let mut state = self.states.remove(&slot).expect("present");
            Self::free_payload(&mut state, &mut self.slab, &mut self.spill, slot);
        }
    }
}

impl FlowStore for SlabStore {
    fn slots(&self) -> usize {
        self.slots
    }

    fn blocks(&self) -> usize {
        self.blocks
    }

    fn occupancy(&self) -> usize {
        self.occupied
    }

    fn probe(&mut self, slot: usize, tag: ParkTag) -> ProbeOutcome {
        let state = self.states.entry(slot).or_insert(SlotState {
            meta: SlotMeta::default(),
            payload: None,
            epoch: 0,
        });
        let was = state.meta.exp > 0;
        let outcome = probe_meta(&mut state.meta, tag);
        let now = state.meta.exp > 0;
        self.occupied = self.occupied + usize::from(now) - usize::from(was);
        if outcome.parked {
            // The register program leaves the previous occupant's payload
            // cells in place for split_store_j to overwrite; reusing (or
            // allocating) the buffer here reproduces that aliasing.
            let handle = match state.payload {
                Some(PayloadRef::Hot(h)) => h,
                Some(PayloadRef::Spilled) => {
                    // Promote back: the new occupant writes hot.
                    let h = self.slab.alloc();
                    let bytes = self.spill.remove(&slot).expect("spilled payload present");
                    self.slab.get_mut(h).expect("fresh handle").copy_from_slice(&bytes);
                    h
                }
                None => self.slab.alloc(),
            };
            let epoch = self.park_epoch;
            self.park_epoch += 1;
            let state = self.states.get_mut(&slot).expect("present");
            state.payload = Some(PayloadRef::Hot(handle));
            state.epoch = epoch;
            if self.hot_capacity.is_some() {
                self.park_order.push_back((slot, handle, epoch));
                self.enforce_spill();
            }
        } else if state.meta.is_zero() && state.payload.is_none() {
            self.states.remove(&slot);
        }
        outcome
    }

    fn store_block(&mut self, slot: usize, j: usize, data: &[u8]) {
        let off = j * BLOCK_BYTES;
        let Some(state) = self.states.get_mut(&slot) else {
            debug_assert!(false, "store_block on an unoccupied slot");
            return;
        };
        match state.payload {
            Some(PayloadRef::Hot(h)) => {
                let buf = self.slab.get_mut(h).expect("live payload handle");
                buf[off..off + BLOCK_BYTES].copy_from_slice(data);
            }
            Some(PayloadRef::Spilled) => {
                let buf = self.spill.get_mut(&slot).expect("spilled payload present");
                buf[off..off + BLOCK_BYTES].copy_from_slice(data);
            }
            None => debug_assert!(false, "store_block on a slot without payload storage"),
        }
    }

    fn merge(&mut self, slot: usize, clk: u16) -> MergeOutcome {
        let Some(state) = self.states.get_mut(&slot) else {
            // An absent entry is an all-zero cell: duplicate arrival.
            return MergeOutcome::Duplicate;
        };
        match classify_merge(&state.meta, clk) {
            Some(outcome) => outcome,
            None => {
                let (xsum, tsum) = (state.meta.xsum, state.meta.tsum);
                state.meta = SlotMeta::default();
                self.occupied -= 1;
                // Payload stays for load_block to drain (register cells
                // behave the same way); release if already empty.
                self.release_if_drained(slot);
                MergeOutcome::Restored { xsum, tsum }
            }
        }
    }

    fn load_block(&mut self, slot: usize, j: usize, out: &mut [u8]) {
        let off = j * BLOCK_BYTES;
        let region: Option<&mut [u8]> = match self.states.get_mut(&slot) {
            Some(SlotState { payload: Some(PayloadRef::Hot(h)), .. }) => {
                let h = *h;
                self.slab.get_mut(h)
            }
            Some(SlotState { payload: Some(PayloadRef::Spilled), .. }) => {
                self.spill.get_mut(&slot).map(Vec::as_mut_slice)
            }
            _ => None,
        };
        match region {
            Some(buf) => {
                out.copy_from_slice(&buf[off..off + BLOCK_BYTES]);
                buf[off..off + BLOCK_BYTES].fill(0);
            }
            // A fully-drained (released) slot reads as zeros, exactly like
            // the register file's cleared cells.
            None => out.fill(0),
        }
        self.release_if_drained(slot);
    }

    fn clear(&mut self) {
        self.states.clear();
        self.slab = Slab::new(self.blocks * BLOCK_BYTES);
        self.spill.clear();
        self.park_order.clear();
        self.park_epoch = 0;
        self.occupied = 0;
    }

    fn extract_range(&mut self, range: Range<usize>) -> Vec<ParkedFlow> {
        // Occupancy is sparse: walk the map, not the range.
        let mut slots: Vec<usize> =
            self.states.keys().copied().filter(|s| range.contains(s)).collect();
        slots.sort_unstable();
        let mut out = Vec::with_capacity(slots.len());
        for slot in slots {
            let mut state = self.states.remove(&slot).expect("present");
            let payload = match state.payload {
                Some(PayloadRef::Hot(h)) => self.slab.get(h).map(<[u8]>::to_vec),
                Some(PayloadRef::Spilled) => self.spill.get(&slot).cloned(),
                None => None,
            };
            let payload = payload.filter(|p| p.iter().any(|b| *b != 0));
            Self::free_payload(&mut state, &mut self.slab, &mut self.spill, slot);
            if state.meta.exp > 0 {
                self.occupied -= 1;
            }
            out.push(ParkedFlow {
                slot,
                clk: state.meta.clk,
                exp: state.meta.exp,
                xsum: state.meta.xsum,
                tsum: state.meta.tsum,
                payload,
            });
        }
        out
    }

    fn inject(&mut self, flows: Vec<ParkedFlow>) {
        for f in flows {
            // Clear any residual state first.
            if let Some(mut old) = self.states.remove(&f.slot) {
                if old.meta.exp > 0 {
                    self.occupied -= 1;
                }
                Self::free_payload(&mut old, &mut self.slab, &mut self.spill, f.slot);
            }
            let meta = SlotMeta { clk: f.clk, exp: f.exp, xsum: f.xsum, tsum: f.tsum };
            if meta.is_zero() && f.payload.is_none() {
                continue;
            }
            let epoch = self.park_epoch;
            self.park_epoch += 1;
            let payload = f.payload.map(|bytes| {
                let h = self.slab.alloc();
                self.slab.get_mut(h).expect("fresh handle").copy_from_slice(&bytes);
                if self.hot_capacity.is_some() {
                    self.park_order.push_back((f.slot, h, epoch));
                }
                PayloadRef::Hot(h)
            });
            if meta.exp > 0 {
                self.occupied += 1;
            }
            self.states.insert(f.slot, SlotState { meta, payload, epoch });
        }
        self.enforce_spill();
    }

    fn spilled(&self) -> usize {
        self.spill.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tag(clk: u16) -> ParkTag {
        ParkTag { clk, expiry: 4, xsum: 0xBEEF, tsum: 0x1234 }
    }

    fn block(fill: u8) -> [u8; BLOCK_BYTES] {
        [fill; BLOCK_BYTES]
    }

    /// Both stores through the same scripted slot lifecycle must agree on
    /// every outcome and byte.
    fn lifecycle(store: &mut dyn FlowStore) {
        // Park flow A in slot 3.
        assert_eq!(store.probe(3, tag(7)), ProbeOutcome { parked: true, evicted: false });
        store.store_block(3, 0, &block(0xAA));
        store.store_block(3, 1, &block(0xBB));
        assert_eq!(store.occupancy(), 1);

        // A second probe ages A (4 → 3) and is refused.
        assert_eq!(store.probe(3, tag(8)), ProbeOutcome { parked: false, evicted: false });

        // Wrong generation: premature (slot occupied by another clk).
        assert_eq!(store.merge(3, 9), MergeOutcome::Premature);

        // Right generation: restored, payload drains block by block.
        assert_eq!(store.merge(3, 7), MergeOutcome::Restored { xsum: 0xBEEF, tsum: 0x1234 });
        assert_eq!(store.occupancy(), 0);
        let mut out = [0u8; BLOCK_BYTES];
        store.load_block(3, 0, &mut out);
        assert_eq!(out, block(0xAA));
        store.load_block(3, 1, &mut out);
        assert_eq!(out, block(0xBB));

        // The slot is now fully cleared: a replay is a duplicate.
        assert_eq!(store.merge(3, 7), MergeOutcome::Duplicate);

        // Aging to zero evicts, and the evicting probe occupies.
        assert!(store.probe(5, ParkTag { clk: 1, expiry: 2, xsum: 0, tsum: 0 }).parked);
        assert!(!store.probe(5, tag(2)).parked); // 2 → 1
        let o = store.probe(5, tag(3)); // 1 → 0: evict + occupy
        assert_eq!(o, ProbeOutcome { parked: true, evicted: true });
        // The evicted flow's merge is premature (slot re-occupied).
        assert_eq!(store.merge(5, 1), MergeOutcome::Premature);
        assert_eq!(store.occupancy(), 1);
    }

    #[test]
    fn circular_lifecycle() {
        lifecycle(&mut CircularStore::new(64, 2));
    }

    #[test]
    fn slab_lifecycle() {
        lifecycle(&mut SlabStore::new(64, 2));
    }

    #[test]
    fn slab_generations_reject_stale_handles() {
        let mut slab = Slab::new(BLOCK_BYTES);
        let a = slab.alloc();
        slab.get_mut(a).unwrap().copy_from_slice(&block(0x11));
        assert!(slab.free(a));
        // The arena entry is re-used by flow B...
        let b = slab.alloc();
        assert_eq!(b.index, a.index);
        slab.get_mut(b).unwrap().copy_from_slice(&block(0x22));
        // ...and the stale handle can neither read B's payload nor free it
        // out from under B — the same way a stale wire tag's clk mismatch
        // turns its merge into a premature drop instead of a double-free.
        assert!(slab.get(a).is_none());
        assert!(slab.get_mut(a).is_none());
        assert!(!slab.free(a));
        assert_eq!(slab.get(b).unwrap(), &block(0x22));
        assert_eq!(slab.live(), 1);
    }

    #[test]
    fn slab_store_memory_tracks_occupancy() {
        let mut s = SlabStore::new(1 << 20, 4);
        for slot in 0..100 {
            assert!(s.probe(slot * 1000, tag(1)).parked);
        }
        assert_eq!(s.occupancy(), 100);
        assert_eq!(s.hot(), 100);
        for slot in 0..100 {
            assert!(matches!(s.merge(slot * 1000, 1), MergeOutcome::Restored { .. }));
        }
        assert_eq!(s.occupancy(), 0);
        // Nothing was stored, so reclaim released every buffer.
        assert_eq!(s.hot(), 0);
        assert!(s.states.is_empty());
    }

    #[test]
    fn spill_tier_demotes_oldest_and_restores_transparently() {
        let mut s = SlabStore::with_spill(1024, 1, 2);
        for slot in 0..5u16 {
            assert!(s.probe(usize::from(slot), tag(slot)).parked);
            s.store_block(usize::from(slot), 0, &block(slot as u8 + 1));
        }
        // Hot bounded at 2: the three oldest payloads live in the spill.
        assert_eq!(s.hot(), 2);
        assert_eq!(s.spilled(), 3);
        assert_eq!(s.occupancy(), 5);
        // Merging a spilled flow restores its exact payload.
        assert_eq!(s.merge(0, 0), MergeOutcome::Restored { xsum: 0xBEEF, tsum: 0x1234 });
        let mut out = [0u8; BLOCK_BYTES];
        s.load_block(0, 0, &mut out);
        assert_eq!(out, block(1));
        assert_eq!(s.spilled(), 2);
    }

    #[test]
    fn extract_inject_moves_live_flows() {
        let mut a = SlabStore::new(4096, 2);
        let mut b = SlabStore::new(4096, 2);
        assert!(a.probe(10, tag(3)).parked);
        a.store_block(10, 0, &block(0x10));
        a.store_block(10, 1, &block(0x11));
        assert!(a.probe(900, tag(4)).parked);
        a.store_block(900, 0, &block(0x90));
        a.store_block(900, 1, &block(0x91));

        let moved = a.extract_range(0..512);
        assert_eq!(moved.len(), 1);
        assert_eq!(moved[0].slot, 10);
        assert_eq!(a.occupancy(), 1);
        b.inject(moved);
        assert_eq!(b.occupancy(), 1);

        // The migrated flow merges on the new store with its original tag.
        assert_eq!(b.merge(10, 3), MergeOutcome::Restored { xsum: 0xBEEF, tsum: 0x1234 });
        let mut out = [0u8; BLOCK_BYTES];
        b.load_block(10, 0, &mut out);
        assert_eq!(out, block(0x10));
        b.load_block(10, 1, &mut out);
        assert_eq!(out, block(0x11));
        // It is gone from the old store: a late replay there is a duplicate.
        assert_eq!(a.merge(10, 3), MergeOutcome::Duplicate);
    }

    /// Regression (pp-fuzz find): the spill bound must never demote a
    /// slot whose expiry clock already ran out. A merge residual (meta
    /// cleared, payload waiting for `load_block`) used to be demoted as
    /// "oldest parked", bumping the spill gauge for a flow that is no
    /// longer parked and bumping it back down when the drain pulled the
    /// bytes out of the spill map — the gauge double-touch.
    #[test]
    fn spill_bound_skips_merge_residuals() {
        let mut s = SlabStore::with_spill(1024, 1, 1);
        // Park A and merge it: its payload is now a residual pending drain.
        assert!(s.probe(0, tag(7)).parked);
        s.store_block(0, 0, &block(0xAA));
        assert_eq!(s.merge(0, 7), MergeOutcome::Restored { xsum: 0xBEEF, tsum: 0x1234 });
        // Parking B overflows the hot tier (cap 1, two hot payloads).
        assert!(s.probe(1, tag(8)).parked);
        s.store_block(1, 0, &block(0xBB));
        // The residual stays hot; the genuinely parked flow demotes.
        assert_eq!(s.spilled(), 1, "exactly one parked payload demotes");
        assert!(!s.spill.contains_key(&0), "merge residual must not enter the spill tier");
        assert!(s.spill.contains_key(&1), "the live parked flow is the one demoted");
        // Draining A releases it from the hot slab without ever touching
        // the spill gauge; B stays spilled throughout.
        let mut out = [0u8; BLOCK_BYTES];
        s.load_block(0, 0, &mut out);
        assert_eq!(out, block(0xAA));
        assert_eq!(s.spilled(), 1);
        assert_eq!(s.hot(), 0);
        assert_eq!(s.occupancy(), 1);
    }

    /// Regression (pp-fuzz find): a slot that merges and is immediately
    /// re-occupied reuses the previous occupant's slab handle (register
    /// aliasing), so the *old* park-order entry used to pass the
    /// staleness check and demote the freshly parked flow ahead of a
    /// genuinely older one. Park epochs prune the stale entry.
    #[test]
    fn spill_order_survives_slot_reoccupancy() {
        let mut s = SlabStore::with_spill(1024, 1, 2);
        // A (slot 0) then B (slot 1) park; hot tier holds both.
        assert!(s.probe(0, tag(1)).parked);
        s.store_block(0, 0, &block(0xA1));
        assert!(s.probe(1, tag(2)).parked);
        s.store_block(1, 0, &block(0xB1));
        // A merges and slot 0 is re-occupied by C, reusing A's handle.
        assert_eq!(s.merge(0, 1), MergeOutcome::Restored { xsum: 0xBEEF, tsum: 0x1234 });
        assert!(s.probe(0, tag(3)).parked);
        s.store_block(0, 0, &block(0xC1));
        // D overflows the hot tier. Oldest live flow is B — not C, whose
        // slot merely inherited A's position in the queue.
        assert!(s.probe(2, tag(4)).parked);
        s.store_block(2, 0, &block(0xD1));
        assert_eq!(s.spilled(), 1);
        assert!(s.spill.contains_key(&1), "oldest live flow (B) demotes");
        assert!(!s.spill.contains_key(&0), "freshly re-parked flow (C) stays hot");
        // All three restore byte-identical.
        let mut out = [0u8; BLOCK_BYTES];
        assert!(matches!(s.merge(1, 2), MergeOutcome::Restored { .. }));
        s.load_block(1, 0, &mut out);
        assert_eq!(out, block(0xB1));
        assert!(matches!(s.merge(0, 3), MergeOutcome::Restored { .. }));
        s.load_block(0, 0, &mut out);
        assert_eq!(out, block(0xC1));
        assert!(matches!(s.merge(2, 4), MergeOutcome::Restored { .. }));
        s.load_block(2, 0, &mut out);
        assert_eq!(out, block(0xD1));
        assert_eq!(s.spilled(), 0);
        assert_eq!(s.occupancy(), 0);
    }

    /// The acceptance-criteria soak: park and restore over a million
    /// concurrent flows through the sparse store.
    #[test]
    fn slab_store_soaks_a_million_concurrent_flows() {
        const FLOWS: usize = 1 << 20; // 1,048,576
        let mut s = SlabStore::new(2 * FLOWS, 1);
        let payload = block(0x5A);
        for slot in 0..FLOWS {
            let t = ParkTag { clk: slot as u16, expiry: u16::MAX, xsum: 1, tsum: 2 };
            assert!(s.probe(slot, t).parked);
            s.store_block(slot, 0, &payload);
        }
        assert_eq!(s.occupancy(), FLOWS);
        assert_eq!(s.hot(), FLOWS);

        let mut out = [0u8; BLOCK_BYTES];
        for slot in 0..FLOWS {
            assert!(matches!(s.merge(slot, slot as u16), MergeOutcome::Restored { .. }));
            s.load_block(slot, 0, &mut out);
            assert_eq!(out, payload);
        }
        assert_eq!(s.occupancy(), 0);
        assert_eq!(s.hot(), 0);
        assert!(s.states.is_empty());
    }
}
