//! The store-backed PayloadPark program.
//!
//! [`crate::program::build_primary`] wires the park table into per-stage
//! register arrays — the faithful ASIC model. This module builds the
//! *same* match-action program (same gateways, same counters, same trace
//! flags, same length arithmetic, same stage placement) with the park
//! table behind a [`FlowStore`] instead: `split_probe`, `merge_validate`,
//! `split_store_j` and `merge_load_j` drive a captured [`SharedStore`]
//! rather than register cells. Everything a packet can observe — bytes
//! out, counters, traces — is identical by construction; the
//! `flowstore_matrix` integration test pins that over the full adversity
//! matrix.
//!
//! What the swap buys:
//!
//! * capacity decoupled from the register file — a [`SlabStore`] scales
//!   the same semantics to millions of concurrent flows;
//! * slot space decoupled from the switch — a cluster switch addresses
//!   its slices at their *parent* (global) coordinates
//!   ([`build_store_switch_with_bases`]), so a flow's wire tag stays
//!   valid when its slice migrates to another switch;
//! * an external store handle — parked flows survive a pipeline rebuild
//!   (switch join/leave) and can be lifted out/in for migration.
//!
//! Taggers stay register-backed: their `ti`/`clk` sequences are the
//! per-slice state that makes two builds byte-identical, and the control
//! plane migrates them explicitly ([`StoreControl::tagger_state`]).
//! Recirculation (annex) is not supported in store mode.
//!
//! [`SlabStore`]: crate::flowstore::SlabStore

use crate::config::{ParkConfig, PipePark};
use crate::counters::CounterSnapshot;
use crate::counters::{
    COUNTER_NAMES, C_CRC_FAIL, C_DISABLED_OCCUPIED, C_DISABLED_SMALL_PAYLOAD, C_DUP_MERGE,
    C_ENB0_FROM_SERVER, C_EVICTIONS, C_EXPLICIT_DROPS, C_MERGES, C_PREMATURE_EVICTIONS, C_SPLITS,
};
use crate::flowstore::{FlowStore, MergeOutcome, ParkTag, SharedStore};
use crate::program::{
    apply_len_delta, gateway_footprint, len_delta_effects, m, primary_block_stage,
    restored_checksum, tuple_sum, BuildError, MAX_CLK, META_CLK, META_MERGE_OK, META_SLICE,
    META_SPLIT_OK, META_TBL_IDX, META_XSUM, PP_LEN,
};
use pp_packet::crc::tag_crc;
use pp_rmt::chip::PortSet;
use pp_rmt::mat::{Mat, MatFootprint, MatchKind};
use pp_rmt::parser::{BlockRule, ParserConfig};
use pp_rmt::phv::{Phv, BLOCK_BYTES};
use pp_rmt::pipeline::Pipeline;
use pp_rmt::register::{cell, RegisterId, RegisterSpec};
use pp_rmt::summary::{BranchSummary, MatSummary, Req, Slot};
use pp_rmt::switch::SwitchModel;
use pp_rmt::trace::decision;
use std::sync::atomic::{AtomicU16, Ordering};
use std::sync::{Arc, MutexGuard};

/// Control-plane handles for a store-backed pipe.
#[derive(Clone)]
pub struct StoreHandles {
    /// The pipe index.
    pub pipe: usize,
    /// The store's slot space (parent/global coordinates).
    pub total_slots: usize,
    /// Live expiry threshold, same contract as the register program's.
    pub expiry: Arc<AtomicU16>,
    /// The park table.
    pub store: SharedStore,
    /// Tagger table-index register (one cell per slice, config order).
    pub ti_reg: RegisterId,
    /// Tagger generation-clock register (one cell per slice).
    pub clk_reg: RegisterId,
    /// Slice names in config (register-cell) order.
    pub slices: Vec<String>,
}

fn lock(store: &SharedStore) -> MutexGuard<'_, dyn FlowStore + 'static> {
    store.lock().expect("flow store lock poisoned")
}

/// Builds the store-backed primary program for one pipe. `bases[i]` is
/// slice `i`'s first slot in the store's (global) coordinate space; for a
/// standalone switch that is the cumulative layout the register program
/// uses, for a cluster switch it is the parent deployment's layout.
pub fn build_store_primary(
    cfg: &ParkConfig,
    pipe_cfg: &PipePark,
    bases: &[u32],
    store: SharedStore,
) -> Result<(Pipeline, StoreHandles), BuildError> {
    let chip = cfg.chip;
    let n_slices = pipe_cfg.slices.len();
    if pipe_cfg.annex_pipe.is_some() {
        return Err(BuildError::Config(
            "store-backed deployments do not support recirculation (annex)".into(),
        ));
    }
    if bases.len() != n_slices {
        return Err(BuildError::Config(format!(
            "{} slice bases for {n_slices} slices",
            bases.len()
        )));
    }
    let store_slots = {
        let s = lock(&store);
        if s.blocks() != cfg.primary_blocks {
            return Err(BuildError::Config(format!(
                "store holds {} payload blocks per slot, deployment parks {}",
                s.blocks(),
                cfg.primary_blocks
            )));
        }
        s.slots()
    };
    for (slice, &base) in pipe_cfg.slices.iter().zip(bases) {
        if base as usize + slice.slots > store_slots {
            return Err(BuildError::Config(format!(
                "slice '{}' spans slots {}..{} but the store holds {}",
                slice.name,
                base,
                base as usize + slice.slots,
                store_slots
            )));
        }
    }

    // Parser: identical to the register program.
    let mut parser = ParserConfig { phv_block_capacity: cfg.primary_blocks, ..Default::default() };
    let min_payload = cfg.min_split_payload(pipe_cfg);
    for slice in &pipe_cfg.slices {
        for &p in &slice.split_ports {
            parser.block_rules.insert(p, BlockRule { blocks: cfg.primary_blocks, min_payload });
        }
        for &p in &slice.merge_ports {
            parser.pp_header_ports.insert(p);
        }
    }

    let mut b = Pipeline::builder(chip).parser(parser);
    for name in COUNTER_NAMES {
        let _ = b.counter(name);
    }

    let split_ports: Arc<PortSet> =
        Arc::new(pipe_cfg.slices.iter().flat_map(|s| s.split_ports.iter().copied()).collect());
    let merge_ports: Arc<PortSet> =
        Arc::new(pipe_cfg.slices.iter().flat_map(|s| s.merge_ports.iter().copied()).collect());
    let max_port = pipe_cfg
        .slices
        .iter()
        .flat_map(|s| s.split_ports.iter().copied())
        .max()
        .map_or(0, usize::from);
    let mut slice_of_port = vec![0u32; max_port + 1];
    let mut geom_of_port: Vec<Option<(usize, u32, u32)>> = vec![None; max_port + 1];
    for (idx, slice) in pipe_cfg.slices.iter().enumerate() {
        for &p in &slice.split_ports {
            slice_of_port[usize::from(p)] = idx as u32 + 1;
            geom_of_port[usize::from(p)] = Some((idx, bases[idx], slice.slots as u32));
        }
    }
    let slice_of_port = Arc::new(slice_of_port);
    let geom_of_port = Arc::new(geom_of_port);

    // Taggers stay register-backed: their per-slice sequences are the
    // state that keeps builds byte-identical and migrates on rebalance.
    let ti_reg = b.register(RegisterSpec {
        name: "tagger_ti".into(),
        stage: 0,
        cell_bytes: 4,
        cells: n_slices,
    });
    let clk_reg = b.register(RegisterSpec {
        name: "tagger_clk".into(),
        stage: 0,
        cell_bytes: 4,
        cells: n_slices,
    });

    // --- Stage 0: slice select, disabled-header strip, taggers. These are
    // stateless w.r.t. the park table and match the register program
    // action for action.
    {
        let sp = split_ports.clone();
        let map = slice_of_port.clone();
        b.place(
            0,
            Mat::builder("slice_select")
                .gateway(move |p| sp.contains(p.ingress_port.0) && p.has_transport())
                .action(move |ctx| {
                    ctx.phv.meta[META_SLICE] =
                        map.get(usize::from(ctx.phv.ingress_port.0)).copied().unwrap_or(0);
                })
                .summary(
                    MatSummary::on_port_set((*split_ports).clone())
                        .require(Req::Valid(Slot::Transport))
                        .writes(m(META_SLICE)),
                )
                .footprint(MatFootprint {
                    match_kind: MatchKind::Ternary,
                    key_bits: 16,
                    vliw_slots: 1,
                    table_sram_bits: 0,
                    tcam_bits: 512 * 88,
                })
                .build(),
        );
    }
    {
        let mp = merge_ports.clone();
        b.place(
            0,
            Mat::builder("merge_strip_disabled")
                .gateway(move |p| p.pp.valid && !p.pp.enb && mp.contains(p.ingress_port.0))
                .action(|ctx| {
                    ctx.phv.pp.valid = false;
                    apply_len_delta(ctx.phv, -PP_LEN, ctx.counters);
                    ctx.counters[C_ENB0_FROM_SERVER] += 1;
                    ctx.phv.trace_flags |= decision::ENB0;
                })
                .summary(len_delta_effects(
                    MatSummary::on_port_set((*merge_ports).clone())
                        .require(Req::Valid(Slot::Pp))
                        .require(Req::PpEnb(false))
                        .sets_invalid(Slot::Pp),
                ))
                .footprint(gateway_footprint(18, 4))
                .build(),
        );
    }
    let splittable = {
        let sp = split_ports.clone();
        move |p: &Phv| sp.contains(p.ingress_port.0) && p.blocks.iter().any(|blk| blk.valid)
    };
    {
        let geom = geom_of_port.clone();
        let geom_idx = geom_of_port.clone();
        b.place(
            0,
            Mat::builder("tagger_ti")
                .gateway(splittable.clone())
                .stateful(ti_reg, move |p| {
                    geom_idx
                        .get(usize::from(p.ingress_port.0))
                        .copied()
                        .flatten()
                        .map(|(slice, _, _)| slice)
                })
                .action(move |ctx| {
                    let (_, slice_base, slice_size) = geom[usize::from(ctx.phv.ingress_port.0)]
                        .expect("splittable gateway implies a split port");
                    let cell_ref = ctx.cell.as_deref_mut().expect("ti bound");
                    let ti = (cell::read_u32(cell_ref) + 1) % slice_size;
                    cell::write_u32(cell_ref, ti);
                    ctx.phv.meta[META_TBL_IDX] = slice_base + ti;
                })
                .summary(
                    MatSummary::on_port_set((*split_ports).clone())
                        .require(Req::Valid(Slot::Blocks))
                        .writes(m(META_TBL_IDX)),
                )
                .footprint(gateway_footprint(20, 2))
                .build(),
        );
    }
    {
        let geom_idx = geom_of_port.clone();
        b.place(
            0,
            Mat::builder("tagger_clk")
                .gateway(splittable.clone())
                .stateful(clk_reg, move |p| {
                    geom_idx
                        .get(usize::from(p.ingress_port.0))
                        .copied()
                        .flatten()
                        .map(|(slice, _, _)| slice)
                })
                .action(|ctx| {
                    let cell_ref = ctx.cell.as_deref_mut().expect("clk bound");
                    let clk = (cell::read_u32(cell_ref) + 1) % MAX_CLK;
                    cell::write_u32(cell_ref, clk);
                    ctx.phv.meta[META_CLK] = clk;
                })
                .summary(
                    MatSummary::on_port_set((*split_ports).clone())
                        .require(Req::Valid(Slot::Blocks))
                        .writes(m(META_CLK)),
                )
                .footprint(gateway_footprint(20, 2))
                .build(),
        );
    }

    // --- Stage 1: probe / small-payload fallback / validate, against the
    // store instead of the metadata register array.
    let expiry = Arc::new(AtomicU16::new(cfg.expiry_threshold));
    {
        let max_exp = expiry.clone();
        let savings = cfg.primary_blocks as i32 * BLOCK_BYTES as i32 - PP_LEN;
        let st = store.clone();
        b.place(
            1,
            Mat::builder("split_probe")
                .gateway(splittable.clone())
                .action(move |ctx| {
                    let phv = &mut *ctx.phv;
                    let slot = phv.meta[META_TBL_IDX] as usize;
                    let clk = phv.meta[META_CLK] as u16;
                    let tag = ParkTag {
                        clk,
                        expiry: max_exp.load(Ordering::Relaxed),
                        xsum: phv.transport_checksum().unwrap_or(0),
                        tsum: tuple_sum(phv),
                    };
                    let outcome = lock(&st).probe(slot, tag);
                    if outcome.evicted {
                        ctx.counters[C_EVICTIONS] += 1;
                        phv.trace_flags |= decision::EVICT;
                    }
                    if outcome.parked {
                        let idx = phv.meta[META_TBL_IDX] as u16;
                        phv.pp.valid = true;
                        phv.pp.enb = true;
                        phv.pp.op_drop = false;
                        phv.pp.tbl_idx = idx;
                        phv.pp.clk = clk;
                        phv.pp.crc = tag_crc(idx, clk);
                        phv.meta[META_SPLIT_OK] = 1;
                        ctx.counters[C_SPLITS] += 1;
                        phv.trace_flags |= decision::SPLIT;
                        apply_len_delta(phv, -savings, ctx.counters);
                    } else {
                        phv.pp = Default::default();
                        phv.pp.valid = true;
                        ctx.counters[C_DISABLED_OCCUPIED] += 1;
                        phv.trace_flags |= decision::DISABLED_OCCUPIED;
                        apply_len_delta(phv, PP_LEN, ctx.counters);
                    }
                })
                .summary(
                    len_delta_effects(
                        MatSummary::on_port_set((*split_ports).clone())
                            .require(Req::Valid(Slot::Blocks))
                            .reads(m(META_TBL_IDX))
                            .reads(m(META_CLK))
                            .writes(Slot::Pp)
                            .sets_valid(Slot::Pp),
                    )
                    .branch(
                        BranchSummary::new("split").sets_enb(true).sets_flag(META_SPLIT_OK as u8),
                    )
                    .branch(BranchSummary::new("occupied").sets_enb(false)),
                )
                .footprint(gateway_footprint(52, 6))
                .build(),
        );
    }
    {
        let sp = split_ports.clone();
        b.place(
            1,
            Mat::builder("split_small")
                .gateway(move |p| {
                    sp.contains(p.ingress_port.0)
                        && p.has_transport()
                        && !p.blocks.iter().any(|blk| blk.valid)
                })
                .action(|ctx| {
                    ctx.phv.pp = Default::default();
                    ctx.phv.pp.valid = true;
                    ctx.counters[C_DISABLED_SMALL_PAYLOAD] += 1;
                    ctx.phv.trace_flags |= decision::DISABLED_SMALL;
                    apply_len_delta(ctx.phv, PP_LEN, ctx.counters);
                })
                .summary(len_delta_effects(
                    MatSummary::on_port_set((*split_ports).clone())
                        .require(Req::Valid(Slot::Transport))
                        .require(Req::Invalid(Slot::Blocks))
                        .writes(Slot::Pp)
                        .sets_valid(Slot::Pp)
                        .sets_enb(false),
                ))
                .footprint(gateway_footprint(20, 4))
                .build(),
        );
    }
    {
        let mp = merge_ports.clone();
        let restore_primary = cfg.primary_blocks as i32 * BLOCK_BYTES as i32;
        let st = store.clone();
        let slots_bound = store_slots;
        b.place(
            1,
            Mat::builder("merge_validate")
                .gateway(move |p| p.pp.valid && p.pp.enb && mp.contains(p.ingress_port.0))
                .action(move |ctx| {
                    let phv = &mut *ctx.phv;
                    let idx = usize::from(phv.pp.tbl_idx);
                    let crc_ok = tag_crc(phv.pp.tbl_idx, phv.pp.clk) == phv.pp.crc;
                    if !crc_ok || idx >= slots_bound {
                        // Corrupted or out-of-range tag: never touch the store.
                        ctx.counters[C_CRC_FAIL] += 1;
                        phv.trace_flags |= decision::CRC_FAIL;
                        phv.verdict.drop = true;
                        return;
                    }
                    match lock(&st).merge(idx, phv.pp.clk) {
                        MergeOutcome::Restored { xsum: stored_xsum, tsum: stored_tsum } => {
                            phv.meta[META_MERGE_OK] = 1;
                            phv.meta[META_TBL_IDX] = u32::from(phv.pp.tbl_idx);
                            if phv.pp.op_drop {
                                ctx.counters[C_EXPLICIT_DROPS] += 1;
                                phv.trace_flags |= decision::EXPLICIT_DROP;
                                phv.pp.valid = false;
                                phv.verdict.drop = true;
                            } else {
                                ctx.counters[C_MERGES] += 1;
                                phv.trace_flags |= decision::MERGE;
                                let xsum =
                                    restored_checksum(stored_xsum, stored_tsum, tuple_sum(phv));
                                phv.set_transport_checksum(xsum);
                                phv.meta[META_XSUM] = u32::from(xsum);
                                apply_len_delta(phv, restore_primary - PP_LEN, ctx.counters);
                                phv.pp.valid = false;
                            }
                        }
                        MergeOutcome::Duplicate => {
                            ctx.counters[C_DUP_MERGE] += 1;
                            phv.trace_flags |= decision::DUP_MERGE;
                            phv.verdict.drop = true;
                        }
                        MergeOutcome::Premature => {
                            ctx.counters[C_PREMATURE_EVICTIONS] += 1;
                            phv.trace_flags |= decision::PREMATURE_EVICT;
                            phv.verdict.drop = true;
                        }
                    }
                })
                .summary(
                    MatSummary::on_port_set((*merge_ports).clone())
                        .require(Req::Valid(Slot::Pp))
                        .require(Req::PpEnb(true))
                        .reads(Slot::Pp)
                        .branch(BranchSummary::new("crc_fail").drops())
                        .branch(
                            BranchSummary::new("merge")
                                .sets_flag(META_MERGE_OK as u8)
                                .writes(m(META_TBL_IDX))
                                .writes(m(META_XSUM))
                                .reads(Slot::Ipv4)
                                .reads(Slot::Transport)
                                .writes(Slot::Ipv4)
                                .writes(Slot::Transport)
                                .sets_invalid(Slot::Pp)
                                .drops(),
                        )
                        .branch(
                            BranchSummary::new("explicit_drop")
                                .sets_flag(META_MERGE_OK as u8)
                                .writes(m(META_TBL_IDX))
                                .sets_invalid(Slot::Pp)
                                .drops(),
                        )
                        .branch(BranchSummary::new("dup").drops())
                        .branch(BranchSummary::new("premature").drops()),
                )
                .footprint(gateway_footprint(52, 6))
                .build(),
        );
    }

    // --- Stages 2..N: payload blocks against the store, same striping as
    // the register arrays (Fig. 4).
    for j in 0..cfg.primary_blocks {
        let stage = primary_block_stage(&chip, j);
        {
            let sp = split_ports.clone();
            let st = store.clone();
            b.place(
                stage,
                Mat::builder(format!("split_store_{j}"))
                    .gateway(move |p| p.meta[META_SPLIT_OK] == 1 && sp.contains(p.ingress_port.0))
                    .action(move |ctx| {
                        let slot = ctx.phv.meta[META_TBL_IDX] as usize;
                        lock(&st).store_block(slot, j, &ctx.phv.blocks[j].data);
                        ctx.phv.blocks[j].valid = false;
                    })
                    .summary(
                        MatSummary::on_port_set((*split_ports).clone())
                            .require(Req::MetaFlag(META_SPLIT_OK as u8))
                            .reads(m(META_TBL_IDX))
                            .reads(Slot::Blocks),
                    )
                    .footprint(gateway_footprint(44, 1))
                    .build(),
            );
        }
        {
            let mp = merge_ports.clone();
            let st = store.clone();
            b.place(
                stage,
                Mat::builder(format!("merge_load_{j}"))
                    .gateway(move |p| p.meta[META_MERGE_OK] == 1 && mp.contains(p.ingress_port.0))
                    .action(move |ctx| {
                        let slot = ctx.phv.meta[META_TBL_IDX] as usize;
                        lock(&st).load_block(slot, j, &mut ctx.phv.blocks[j].data);
                        ctx.phv.blocks[j].valid = true;
                    })
                    .summary(
                        MatSummary::on_port_set((*merge_ports).clone())
                            .require(Req::MetaFlag(META_MERGE_OK as u8))
                            .reads(m(META_TBL_IDX))
                            .writes(Slot::Blocks)
                            .sets_valid(Slot::Blocks),
                    )
                    .footprint(gateway_footprint(44, 1))
                    .build(),
            );
        }
    }

    let pipeline = b.build()?;
    let handles = StoreHandles {
        pipe: pipe_cfg.pipe,
        total_slots: store_slots,
        expiry,
        store,
        ti_reg,
        clk_reg,
        slices: pipe_cfg.slices.iter().map(|s| s.name.clone()).collect(),
    };
    Ok((pipeline, handles))
}

/// Assembles a store-backed switch for a single-pipe deployment, slices
/// laid out cumulatively (the register program's layout). The store's
/// slot space must cover `cfg`'s total slots.
pub fn build_store_switch(
    cfg: &ParkConfig,
    store: SharedStore,
) -> Result<(SwitchModel, StoreControl), BuildError> {
    let pipe_cfg = single_pipe(cfg)?;
    let mut bases = Vec::with_capacity(pipe_cfg.slices.len());
    let mut base = 0u32;
    for slice in &pipe_cfg.slices {
        bases.push(base);
        base += slice.slots as u32;
    }
    build_store_switch_with_bases(cfg, &bases, store)
}

/// Assembles a store-backed switch whose slices address the store at the
/// given global bases — the cluster form, where each switch's slices keep
/// their parent-deployment coordinates so wire tags survive migration.
pub fn build_store_switch_with_bases(
    cfg: &ParkConfig,
    bases: &[u32],
    store: SharedStore,
) -> Result<(SwitchModel, StoreControl), BuildError> {
    let pipe_cfg = single_pipe(cfg)?;
    cfg.validate().map_err(BuildError::Config)?;
    let chip = cfg.chip;
    let (pipeline, handles) = build_store_primary(cfg, pipe_cfg, bases, store)?;
    let mut primary = Some(pipeline);
    let mut pipes = Vec::with_capacity(chip.pipes);
    for idx in 0..chip.pipes {
        if idx == handles.pipe {
            pipes.push(primary.take().expect("one primary pipe"));
        } else {
            pipes.push(Pipeline::builder(chip).build()?);
        }
    }
    Ok((SwitchModel::new(chip, pipes), StoreControl { handles }))
}

fn single_pipe(cfg: &ParkConfig) -> Result<&PipePark, BuildError> {
    match cfg.pipes.as_slice() {
        [pipe_cfg] => Ok(pipe_cfg),
        other => Err(BuildError::Config(format!(
            "store-backed switches host exactly one parked pipe, config has {}",
            other.len()
        ))),
    }
}

/// Control-plane view of a store-backed switch: counters from the
/// pipeline, occupancy from the store, tagger state for migration.
#[derive(Clone)]
pub struct StoreControl {
    handles: StoreHandles,
}

impl StoreControl {
    /// The underlying handles.
    pub fn handles(&self) -> &StoreHandles {
        &self.handles
    }

    /// Reads the deployment's monitoring counters.
    pub fn counters(&self, switch: &SwitchModel) -> CounterSnapshot {
        CounterSnapshot::read(switch.pipe(self.handles.pipe))
    }

    /// Number of occupied slots (expiry > 0), straight from the store.
    pub fn occupancy(&self) -> usize {
        lock(&self.handles.store).occupancy()
    }

    /// Payloads currently demoted to the store's spill tier.
    pub fn spilled(&self) -> usize {
        lock(&self.handles.store).spilled()
    }

    /// A handle on the park table itself.
    pub fn store(&self) -> SharedStore {
        self.handles.store.clone()
    }

    /// Sets the live expiry threshold.
    pub fn set_expiry(&self, v: u16) {
        self.handles.expiry.store(v, Ordering::Relaxed);
    }

    /// Clears the park table and every register (taggers included).
    pub fn clear_tables(&self, switch: &mut SwitchModel) {
        lock(&self.handles.store).clear();
        switch.pipe_mut(self.handles.pipe).registers_mut().clear_all();
    }

    /// Reads the per-slice tagger state `(ti, clk)` in slice config order
    /// — the state that must travel with a slice on rebalance so the new
    /// owner continues the exact `ti`/`clk` sequences.
    pub fn tagger_state(&self, switch: &SwitchModel) -> Vec<(u32, u32)> {
        let regs = switch.pipe(self.handles.pipe).registers();
        (0..self.handles.slices.len())
            .map(|i| {
                (
                    cell::read_u32(regs.cell(self.handles.ti_reg, i)),
                    cell::read_u32(regs.cell(self.handles.clk_reg, i)),
                )
            })
            .collect()
    }

    /// Writes one slice's tagger state (by slice position in this
    /// switch's config order).
    pub fn set_tagger_state(&self, switch: &mut SwitchModel, slice: usize, ti: u32, clk: u32) {
        let regs = switch.pipe_mut(self.handles.pipe).registers_mut();
        cell::write_u32(regs.cell_mut(self.handles.ti_reg, slice), ti);
        cell::write_u32(regs.cell_mut(self.handles.clk_reg, slice), clk);
    }
}
