//! Adaptive payload-eviction policy (paper §7, "Adaptive payload eviction
//! policy").
//!
//! The prototype tracks premature evictions with a counter; the paper
//! suggests using it to retune the expiry threshold at runtime: "start
//! with an aggressive payload eviction policy and dynamically switch to a
//! conservative eviction policy when payload evictions exceed a predefined
//! threshold." [`AdaptivePolicy`] implements exactly that control loop
//! over the live threshold exposed by
//! [`PipeHandles::expiry`](crate::program::PipeHandles).

use crate::counters::CounterSnapshot;
use std::sync::atomic::{AtomicU16, Ordering};
use std::sync::Arc;

/// Configuration of the adaptive policy.
#[derive(Debug, Clone, Copy)]
pub struct AdaptiveConfig {
    /// Most aggressive threshold the controller will set (paper: 1).
    pub min_expiry: u16,
    /// Most conservative threshold it will set (paper experiments with 10).
    pub max_expiry: u16,
    /// Premature evictions per observation interval that trigger a step
    /// toward the conservative end.
    pub premature_tolerance: u64,
    /// Disabled-split (occupied) events per interval that trigger a step
    /// back toward the aggressive end: a clogged table means payloads live
    /// too long.
    pub occupied_tolerance: u64,
}

impl Default for AdaptiveConfig {
    fn default() -> Self {
        AdaptiveConfig {
            min_expiry: 1,
            max_expiry: 10,
            premature_tolerance: 0,
            occupied_tolerance: 64,
        }
    }
}

/// The control loop. Call [`AdaptivePolicy::observe`] periodically with a
/// fresh counter snapshot; it compares against the previous snapshot and
/// nudges the live expiry threshold.
#[derive(Debug)]
pub struct AdaptivePolicy {
    config: AdaptiveConfig,
    expiry: Arc<AtomicU16>,
    last: CounterSnapshot,
    adjustments: u64,
}

impl AdaptivePolicy {
    /// Wraps the live threshold of a deployed pipe.
    ///
    /// Panics if the configured bounds are inverted or zero — a controller
    /// that can set expiry 0 would corrupt the metadata-table encoding
    /// (0 means "slot free").
    pub fn new(expiry: Arc<AtomicU16>, config: AdaptiveConfig) -> Self {
        assert!(config.min_expiry >= 1, "expiry 0 would mark slots free");
        assert!(config.min_expiry <= config.max_expiry, "inverted bounds");
        AdaptivePolicy { config, expiry, last: CounterSnapshot::default(), adjustments: 0 }
    }

    /// The threshold currently in force.
    pub fn current(&self) -> u16 {
        self.expiry.load(Ordering::Relaxed)
    }

    /// Number of threshold changes made so far.
    pub fn adjustments(&self) -> u64 {
        self.adjustments
    }

    /// Feeds one observation interval's counters; returns the (possibly
    /// new) threshold.
    ///
    /// Premature evictions mean live payloads are being aged out too
    /// eagerly → raise the threshold (more conservative). A clogged table
    /// (splits refused because slots stay occupied) without premature
    /// evictions means dead payloads are overstaying → lower it.
    pub fn observe(&mut self, now: CounterSnapshot) -> u16 {
        let premature = now.premature_evictions.saturating_sub(self.last.premature_evictions);
        let occupied = now.disabled_occupied.saturating_sub(self.last.disabled_occupied);
        self.last = now;

        let cur = self.current();
        let next = if premature > self.config.premature_tolerance {
            cur.saturating_add(1).min(self.config.max_expiry)
        } else if occupied > self.config.occupied_tolerance {
            cur.saturating_sub(1).max(self.config.min_expiry)
        } else {
            cur
        };
        if next != cur {
            self.expiry.store(next, Ordering::Relaxed);
            self.adjustments += 1;
        }
        next
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn snapshot(premature: u64, occupied: u64) -> CounterSnapshot {
        CounterSnapshot {
            premature_evictions: premature,
            disabled_occupied: occupied,
            ..Default::default()
        }
    }

    fn policy(start: u16) -> AdaptivePolicy {
        AdaptivePolicy::new(Arc::new(AtomicU16::new(start)), AdaptiveConfig::default())
    }

    #[test]
    fn premature_evictions_raise_threshold() {
        let mut p = policy(1);
        assert_eq!(p.observe(snapshot(5, 0)), 2);
        assert_eq!(p.observe(snapshot(9, 0)), 3);
        assert_eq!(p.current(), 3);
        assert_eq!(p.adjustments(), 2);
    }

    #[test]
    fn clogged_table_lowers_threshold() {
        let mut p = policy(10);
        assert_eq!(p.observe(snapshot(0, 1000)), 9);
        assert_eq!(p.observe(snapshot(0, 2000)), 8);
    }

    #[test]
    fn quiet_intervals_hold_steady() {
        let mut p = policy(4);
        for _ in 0..5 {
            assert_eq!(p.observe(snapshot(0, 0)), 4);
        }
        assert_eq!(p.adjustments(), 0);
    }

    #[test]
    fn bounds_are_respected() {
        let mut p = policy(10);
        // Already at max: premature evictions cannot push it further.
        assert_eq!(p.observe(snapshot(100, 0)), 10);
        let mut p = policy(1);
        // Already at min: clogging cannot push below 1.
        assert_eq!(p.observe(snapshot(0, 1_000_000)), 1);
    }

    #[test]
    fn deltas_not_absolutes_drive_decisions() {
        let mut p = policy(5);
        p.observe(snapshot(10, 0)); // 5 -> 6
                                    // Same cumulative counters again: delta zero, no change.
        assert_eq!(p.observe(snapshot(10, 0)), 6);
    }

    #[test]
    fn premature_wins_over_clogging() {
        // Both symptoms at once: protecting live payloads takes priority.
        let mut p = policy(5);
        assert_eq!(p.observe(snapshot(10, 10_000)), 6);
    }

    #[test]
    #[should_panic(expected = "slots free")]
    fn zero_min_expiry_rejected() {
        AdaptivePolicy::new(
            Arc::new(AtomicU16::new(1)),
            AdaptiveConfig { min_expiry: 0, ..Default::default() },
        );
    }

    #[test]
    fn shared_atomic_is_visible_to_the_program() {
        let shared = Arc::new(AtomicU16::new(1));
        let mut p = AdaptivePolicy::new(shared.clone(), AdaptiveConfig::default());
        p.observe(snapshot(1, 0));
        // The dataplane-side handle sees the new threshold.
        assert_eq!(shared.load(Ordering::Relaxed), 2);
    }
}
