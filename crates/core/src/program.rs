//! The PayloadPark dataplane program.
//!
//! This module compiles the paper's Algorithms 1 (Split) and 2 (Merge) into
//! match-action tables on the `pp-rmt` emulator, stage for stage:
//!
//! ```text
//! stage 0   slice_select (port → memory slice)        [split side]
//!           tagger_ti, tagger_clk (Alg.1 stage 1, keyed on ingress port)
//!           merge_strip_disabled (ENB=0 → remove hdr) [merge, Alg.2 st.1]
//! stage 1   split_probe   (Alg.1 st.2: probe metadata table, evict/occupy)
//!           split_small   (payload < minimum → disabled header, §5)
//!           merge_validate (Alg.2 st.2: CRC + generation check, reclaim)
//! stage 2+  payload_block_j arrays with split_store_j / merge_load_j MATs
//!           (Alg.1/2 stages 3..N: one block per stage, Fig. 4)
//! ```
//!
//! (The paper numbers stages from 1; this implementation is 0-based, so its
//! stages 1..3 appear here as 0..2.)
//!
//! With recirculation (§6.2.5) the *annex* pipe parks 14 further blocks:
//! split packets recirculate on channel 0 (store), merge packets on channel
//! 1 (load), with direction-specific parsing.
//!
//! Every stateful access is a single read-modify-write of one register cell
//! per MAT per packet — the restriction that dictates the circular-buffer
//! design and the fall-back-to-baseline behaviour (§4).

use crate::config::{
    ParkConfig, PipePark, META_ENTRY_BYTES, META_OFF_CLK, META_OFF_EXP, META_OFF_TSUM,
    META_OFF_XSUM,
};
use crate::counters::{
    COUNTER_NAMES, C_CRC_FAIL, C_DISABLED_OCCUPIED, C_DISABLED_SMALL_PAYLOAD, C_DUP_MERGE,
    C_ENB0_FROM_SERVER, C_EVICTIONS, C_EXPLICIT_DROPS, C_LEN_UNDERFLOW, C_MERGES,
    C_PREMATURE_EVICTIONS, C_SPLITS,
};
use pp_packet::checksum::Checksum;
use pp_packet::crc::tag_crc;
use pp_packet::ppark::PAYLOADPARK_HEADER_LEN;
use pp_packet::{IPV4_HEADER_LEN, UDP_HEADER_LEN};
use pp_rmt::chip::{ChipProfile, PortSet};
use pp_rmt::mat::{Mat, MatFootprint, MatchKind};
use pp_rmt::parser::{BlockRule, ParserConfig};
use pp_rmt::phv::{Phv, RecircTarget, BLOCK_BYTES};
use pp_rmt::pipeline::{Pipeline, ProgramError};
use pp_rmt::register::{cell, RegisterId, RegisterSpec};
use pp_rmt::summary::{BranchSummary, MatSummary, Req, Slot};
use pp_rmt::switch::SwitchModel;
use pp_rmt::trace::decision;
use std::sync::atomic::{AtomicU16, Ordering};
use std::sync::Arc;

/// Metadata word: global lookup-table index chosen by the tagger.
pub const META_TBL_IDX: usize = 0;
/// Metadata word: generation clock chosen by the tagger.
pub const META_CLK: usize = 1;
/// Metadata word: 1 when Split succeeded for this packet.
pub const META_SPLIT_OK: usize = 2;
/// Metadata word: 1 when Merge validated for this packet.
pub const META_MERGE_OK: usize = 3;
/// Metadata word: memory-slice id + 1 (0 = no slice).
pub const META_SLICE: usize = 4;
/// Metadata word: the original transport checksum read back from the
/// metadata table at Merge, bridged across the annex recirculation so the
/// annex pipe can restore it after re-attaching the annex blocks.
pub const META_XSUM: usize = 5;

/// Generation-clock modulus (the tag carries a 16-bit clock).
pub const MAX_CLK: u32 = 65_536;

pub(crate) const PP_LEN: i32 = PAYLOADPARK_HEADER_LEN as i32;

/// The summary [`Slot`] for one of the `META_*` metadata words.
pub(crate) const fn m(w: usize) -> Slot {
    Slot::Meta(w as u8)
}

/// Summary fragment shared by every action that calls [`apply_len_delta`]:
/// it reads and rewrites the IPv4/transport length fields and may drop on
/// a length-guard trip.
pub(crate) fn len_delta_effects(s: MatSummary) -> MatSummary {
    s.reads(Slot::Ipv4).reads(Slot::Transport).writes(Slot::Ipv4).writes(Slot::Transport).drops()
}

/// Errors from assembling a deployment.
#[derive(Debug)]
pub enum BuildError {
    /// The configuration failed validation.
    Config(String),
    /// The program did not fit the chip.
    Program(ProgramError),
}

impl core::fmt::Display for BuildError {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        match self {
            BuildError::Config(s) => write!(f, "configuration error: {s}"),
            BuildError::Program(e) => write!(f, "program error: {e}"),
        }
    }
}

impl std::error::Error for BuildError {}

impl From<ProgramError> for BuildError {
    fn from(e: ProgramError) -> Self {
        BuildError::Program(e)
    }
}

/// Control-plane handles for one PayloadPark-enabled pipe.
#[derive(Debug, Clone)]
pub struct PipeHandles {
    /// The pipe index.
    pub pipe: usize,
    /// The metadata table's register id (for occupancy inspection).
    pub meta_tbl: RegisterId,
    /// Total lookup-table slots in this pipe.
    pub total_slots: usize,
    /// The annex pipe, when recirculation is enabled.
    pub annex_pipe: Option<usize>,
    /// The live expiry threshold. Split reads it per packet, so the control
    /// plane can retune the eviction policy at runtime — the adaptive
    /// policy of the paper's §7 builds on this.
    pub expiry: Arc<AtomicU16>,
}

/// Adds `delta` to the IPv4 total-length and (for UDP) the transport
/// length field — the VLIW arithmetic Split/Merge perform when bytes leave
/// or rejoin the wire. TCP carries no length field, so for TCP only the
/// IPv4 total-length moves (the segment length, and with it the checksum
/// pseudo-header, is implied by it).
///
/// The 16-bit length fields of a malformed or forged packet could be
/// driven past their bounds by the fix-up; instead of emitting a corrupted
/// length the guard drops the packet and bumps the `len_underflow`
/// counter. Neither field is modified on a guarded drop.
///
/// Public so store-backed program variants ([`crate::storeprog`]) can
/// reproduce the register program's length arithmetic bit for bit.
pub fn apply_len_delta(phv: &mut Phv, delta: i32, counters: &mut [u64]) {
    if let Some(ip) = phv.ipv4.as_ref() {
        let floor = (IPV4_HEADER_LEN + ip.options.len()) as i32;
        let new = i32::from(ip.total_len) + delta;
        if new < floor || new > i32::from(u16::MAX) {
            counters[C_LEN_UNDERFLOW] += 1;
            phv.trace_flags |= decision::LEN_UNDERFLOW;
            phv.verdict.drop = true;
            return;
        }
    }
    if let Some(udp) = phv.udp.as_ref() {
        let new = i32::from(udp.len) + delta;
        if new < UDP_HEADER_LEN as i32 || new > i32::from(u16::MAX) {
            counters[C_LEN_UNDERFLOW] += 1;
            phv.trace_flags |= decision::LEN_UNDERFLOW;
            phv.verdict.drop = true;
            return;
        }
    }
    if let Some(ip) = phv.ipv4.as_mut() {
        ip.total_len = (i32::from(ip.total_len) + delta) as u16;
    }
    if let Some(udp) = phv.udp.as_mut() {
        udp.len = (i32::from(udp.len) + delta) as u16;
    }
}

/// The folded one's-complement sum of the transport-checksum-covered
/// words an NF may rewrite in flight: source/destination IPv4 addresses
/// (pseudo-header) and transport ports. Split parks this next to the
/// original checksum; comparing it with the value recomputed at Merge
/// tells the dataplane whether — and by how much — to repair the
/// restored checksum (RFC 1624). Public for store-backed program
/// variants ([`crate::storeprog`]).
pub fn tuple_sum(phv: &Phv) -> u16 {
    let mut c = Checksum::new();
    if let Some(ip) = &phv.ipv4 {
        c.add_u32(ip.src);
        c.add_u32(ip.dst);
    }
    if let Some(udp) = &phv.udp {
        c.add_word(udp.src_port);
        c.add_word(udp.dst_port);
    } else if let Some(tcp) = &phv.tcp {
        c.add_word(tcp.src_port);
        c.add_word(tcp.dst_port);
    }
    // `finish` complements the folded sum; undo that to keep the raw sum.
    !c.finish()
}

/// The transport checksum Merge should restore: the parked original,
/// incrementally repaired (RFC 1624 Eqn. 3) when the NF rewrote any of
/// the 5-tuple words while the payload was parked. A parked zero means
/// the endpoint never computed a checksum (RFC 768) and stays zero.
/// Public for store-backed program variants ([`crate::storeprog`]).
pub fn restored_checksum(stored_xsum: u16, stored_tsum: u16, tsum_now: u16) -> u16 {
    if stored_xsum == 0 || tsum_now == stored_tsum {
        return stored_xsum;
    }
    let mut sum = u32::from(!stored_xsum) + u32::from(!stored_tsum) + u32::from(tsum_now);
    while sum >> 16 != 0 {
        sum = (sum & 0xFFFF) + (sum >> 16);
    }
    let ck = !(sum as u16);
    // A computed checksum of zero is transmitted as 0xFFFF (RFC 768); the
    // NF-side incremental helpers normalize the same way.
    if ck == 0 {
        0xFFFF
    } else {
        ck
    }
}

/// Stage that hosts payload block `j` in the primary pipe: blocks are
/// striped from stage 2 onward (Fig. 4), wrapping onto extra MATs in the
/// same stage when there are more blocks than stages. With the default 12
/// stages and 10 blocks, each block gets its own stage.
pub(crate) fn primary_block_stage(chip: &ChipProfile, j: usize) -> usize {
    2 + (j % (chip.stages_per_pipe - 2))
}

/// Stage that hosts annex block `j`: the annex pipe has no tagger or
/// metadata table, so all stages are available.
fn annex_block_stage(chip: &ChipProfile, j: usize) -> usize {
    j % chip.stages_per_pipe
}

pub(crate) fn gateway_footprint(key_bits: u32, vliw: u32) -> MatFootprint {
    MatFootprint {
        match_kind: MatchKind::Gateway,
        key_bits,
        vliw_slots: vliw,
        table_sram_bits: 0,
        tcam_bits: 0,
    }
}

/// Builds the primary pipe's program.
pub fn build_primary(
    cfg: &ParkConfig,
    pipe_cfg: &PipePark,
) -> Result<(Pipeline, PipeHandles), ProgramError> {
    let chip = cfg.chip;
    let total_slots = pipe_cfg.total_slots();
    let n_slices = pipe_cfg.slices.len();

    // Parser: extract blocks on split ports, expect the PayloadPark header
    // on merge ports.
    let mut parser = ParserConfig { phv_block_capacity: cfg.primary_blocks, ..Default::default() };
    let min_payload = cfg.min_split_payload(pipe_cfg);
    for slice in &pipe_cfg.slices {
        for &p in &slice.split_ports {
            parser.block_rules.insert(p, BlockRule { blocks: cfg.primary_blocks, min_payload });
        }
        for &p in &slice.merge_ports {
            parser.pp_header_ports.insert(p);
        }
    }

    let mut b = Pipeline::builder(chip).parser(parser);
    for name in COUNTER_NAMES {
        let _ = b.counter(name);
    }

    // Shared lookup structures captured by the MAT closures. Gateways run
    // once per MAT per packet, so both the port sets and the per-port
    // geometry are flat port-indexed tables (one load each), not trees.
    let split_ports: Arc<PortSet> =
        Arc::new(pipe_cfg.slices.iter().flat_map(|s| s.split_ports.iter().copied()).collect());
    let merge_ports: Arc<PortSet> =
        Arc::new(pipe_cfg.slices.iter().flat_map(|s| s.merge_ports.iter().copied()).collect());
    // Per-port slice lookup: slice id + 1 (for META_SLICE) and the slice's
    // (base, size) geometry within the pipe's global table index space.
    let max_port = pipe_cfg
        .slices
        .iter()
        .flat_map(|s| s.split_ports.iter().copied())
        .max()
        .map_or(0, usize::from);
    let mut slice_of_port = vec![0u32; max_port + 1];
    let mut geom_of_port: Vec<Option<(usize, u32, u32)>> = vec![None; max_port + 1];
    let mut base = 0u32;
    for (idx, slice) in pipe_cfg.slices.iter().enumerate() {
        for &p in &slice.split_ports {
            slice_of_port[usize::from(p)] = idx as u32 + 1;
            geom_of_port[usize::from(p)] = Some((idx, base, slice.slots as u32));
        }
        base += slice.slots as u32;
    }
    let slice_of_port = Arc::new(slice_of_port);
    let geom_of_port = Arc::new(geom_of_port);

    // Registers.
    let ti_reg = b.register(RegisterSpec {
        name: "tagger_ti".into(),
        stage: 0,
        cell_bytes: 4,
        cells: n_slices,
    });
    let clk_reg = b.register(RegisterSpec {
        name: "tagger_clk".into(),
        stage: 0,
        cell_bytes: 4,
        cells: n_slices,
    });
    let meta_tbl = b.register(RegisterSpec {
        name: "metadata_table".into(),
        stage: 1,
        cell_bytes: META_ENTRY_BYTES,
        cells: total_slots,
    });
    let pload: Vec<RegisterId> = (0..cfg.primary_blocks)
        .map(|j| {
            b.register(RegisterSpec {
                name: format!("payload_block_{j}"),
                stage: primary_block_stage(&chip, j),
                cell_bytes: BLOCK_BYTES,
                cells: total_slots,
            })
        })
        .collect();

    // --- Stage 0: slice selection (split) and disabled-header strip (merge).
    {
        let sp = split_ports.clone();
        let map = slice_of_port.clone();
        b.place(
            0,
            Mat::builder("slice_select")
                .gateway(move |p| sp.contains(p.ingress_port.0) && p.has_transport())
                .action(move |ctx| {
                    ctx.phv.meta[META_SLICE] =
                        map.get(usize::from(ctx.phv.ingress_port.0)).copied().unwrap_or(0);
                })
                .summary(
                    MatSummary::on_port_set((*split_ports).clone())
                        .require(Req::Valid(Slot::Transport))
                        .writes(m(META_SLICE)),
                )
                .footprint(MatFootprint {
                    match_kind: MatchKind::Ternary,
                    key_bits: 16,
                    vliw_slots: 1,
                    table_sram_bits: 0,
                    // One half-populated TCAM block, which reproduces the
                    // paper's 0.69 % TCAM utilization.
                    tcam_bits: 512 * 88,
                })
                .build(),
        );
    }
    {
        let mp = merge_ports.clone();
        b.place(
            0,
            Mat::builder("merge_strip_disabled")
                .gateway(move |p| p.pp.valid && !p.pp.enb && mp.contains(p.ingress_port.0))
                .action(|ctx| {
                    ctx.phv.pp.valid = false;
                    apply_len_delta(ctx.phv, -PP_LEN, ctx.counters);
                    ctx.counters[C_ENB0_FROM_SERVER] += 1;
                    ctx.phv.trace_flags |= decision::ENB0;
                })
                .summary(len_delta_effects(
                    MatSummary::on_port_set((*merge_ports).clone())
                        .require(Req::Valid(Slot::Pp))
                        .require(Req::PpEnb(false))
                        .sets_invalid(Slot::Pp),
                ))
                .footprint(gateway_footprint(18, 4))
                .build(),
        );
    }

    // --- Stage 0 (cont.): taggers (Alg. 1 lines 3-7). Keyed directly on
    // the ingress port (a compile-time constant in the paper's P4), so they
    // co-reside with slice_select without an intra-stage dependency.
    let splittable = {
        let sp = split_ports.clone();
        move |p: &Phv| sp.contains(p.ingress_port.0) && p.blocks.iter().any(|blk| blk.valid)
    };
    {
        let geom = geom_of_port.clone();
        let geom_idx = geom_of_port.clone();
        b.place(
            0,
            Mat::builder("tagger_ti")
                .gateway(splittable.clone())
                .stateful(ti_reg, move |p| {
                    geom_idx
                        .get(usize::from(p.ingress_port.0))
                        .copied()
                        .flatten()
                        .map(|(slice, _, _)| slice)
                })
                .action(move |ctx| {
                    let (_, slice_base, slice_size) = geom[usize::from(ctx.phv.ingress_port.0)]
                        .expect("splittable gateway implies a split port");
                    let cell_ref = ctx.cell.as_deref_mut().expect("ti bound");
                    let ti = (cell::read_u32(cell_ref) + 1) % slice_size;
                    cell::write_u32(cell_ref, ti);
                    ctx.phv.meta[META_TBL_IDX] = slice_base + ti;
                })
                .summary(
                    MatSummary::on_port_set((*split_ports).clone())
                        .require(Req::Valid(Slot::Blocks))
                        .writes(m(META_TBL_IDX)),
                )
                .footprint(gateway_footprint(20, 2))
                .build(),
        );
    }
    {
        let geom_idx = geom_of_port.clone();
        b.place(
            0,
            Mat::builder("tagger_clk")
                .gateway(splittable.clone())
                .stateful(clk_reg, move |p| {
                    geom_idx
                        .get(usize::from(p.ingress_port.0))
                        .copied()
                        .flatten()
                        .map(|(slice, _, _)| slice)
                })
                .action(|ctx| {
                    let cell_ref = ctx.cell.as_deref_mut().expect("clk bound");
                    let clk = (cell::read_u32(cell_ref) + 1) % MAX_CLK;
                    cell::write_u32(cell_ref, clk);
                    ctx.phv.meta[META_CLK] = clk;
                })
                .summary(
                    MatSummary::on_port_set((*split_ports).clone())
                        .require(Req::Valid(Slot::Blocks))
                        .writes(m(META_CLK)),
                )
                .footprint(gateway_footprint(20, 2))
                .build(),
        );
    }

    // --- Stage 1: split probe, small-payload fallback, merge validate.
    let expiry = Arc::new(AtomicU16::new(cfg.expiry_threshold));
    {
        let max_exp = expiry.clone();
        let savings = cfg.primary_blocks as i32 * BLOCK_BYTES as i32 - PP_LEN;
        let recirc_split = pipe_cfg.annex_pipe.map(|pipe| RecircTarget { pipe, channel: 0 });
        b.place(
            1,
            Mat::builder("split_probe")
                .gateway(splittable.clone())
                .stateful(meta_tbl, |p| Some(p.meta[META_TBL_IDX] as usize))
                .action(move |ctx| {
                    let cell_ref = ctx.cell.as_deref_mut().expect("meta_tbl bound");
                    let mut exp = cell::read_u16(&cell_ref[META_OFF_EXP..META_OFF_EXP + 2]);
                    // Alg. 1 lines 11-13: age the occupant.
                    if exp >= 1 {
                        exp -= 1;
                        if exp == 0 {
                            ctx.counters[C_EVICTIONS] += 1;
                            ctx.phv.trace_flags |= decision::EVICT;
                        }
                    }
                    let phv = &mut *ctx.phv;
                    if exp == 0 {
                        // Alg. 1 lines 14-20: slot is free (or just evicted):
                        // occupy it and enable Split. The original transport
                        // checksum is parked with the payload — the wire
                        // copy is zeroed while the payload is off the wire.
                        let clk = phv.meta[META_CLK] as u16;
                        let idx = phv.meta[META_TBL_IDX] as u16;
                        cell::write_u16(&mut cell_ref[META_OFF_CLK..META_OFF_CLK + 2], clk);
                        cell::write_u16(
                            &mut cell_ref[META_OFF_EXP..META_OFF_EXP + 2],
                            max_exp.load(Ordering::Relaxed),
                        );
                        cell::write_u16(
                            &mut cell_ref[META_OFF_XSUM..META_OFF_XSUM + 2],
                            phv.transport_checksum().unwrap_or(0),
                        );
                        cell::write_u16(
                            &mut cell_ref[META_OFF_TSUM..META_OFF_TSUM + 2],
                            tuple_sum(phv),
                        );
                        phv.pp.valid = true;
                        phv.pp.enb = true;
                        phv.pp.op_drop = false;
                        phv.pp.tbl_idx = idx;
                        phv.pp.clk = clk;
                        phv.pp.crc = tag_crc(idx, clk);
                        phv.meta[META_SPLIT_OK] = 1;
                        ctx.counters[C_SPLITS] += 1;
                        phv.trace_flags |= decision::SPLIT;
                        apply_len_delta(phv, -savings, ctx.counters);
                        if let Some(t) = recirc_split {
                            phv.verdict.recirculate = Some(t);
                        }
                    } else {
                        // Alg. 1 lines 21-23: occupied — write back the aged
                        // threshold, disable Split for this packet.
                        cell::write_u16(&mut cell_ref[META_OFF_EXP..META_OFF_EXP + 2], exp);
                        phv.pp = Default::default();
                        phv.pp.valid = true;
                        ctx.counters[C_DISABLED_OCCUPIED] += 1;
                        phv.trace_flags |= decision::DISABLED_OCCUPIED;
                        apply_len_delta(phv, PP_LEN, ctx.counters);
                    }
                })
                .summary({
                    // Both outcomes attach a shim header and fix lengths;
                    // which enb they set (and whether the packet leaves for
                    // the annex) is per-branch.
                    let mut split_br =
                        BranchSummary::new("split").sets_enb(true).sets_flag(META_SPLIT_OK as u8);
                    if recirc_split.is_some() {
                        split_br = split_br.recirculates(0);
                    }
                    len_delta_effects(
                        MatSummary::on_port_set((*split_ports).clone())
                            .require(Req::Valid(Slot::Blocks))
                            .reads(m(META_TBL_IDX))
                            .reads(m(META_CLK))
                            .writes(Slot::Pp)
                            .sets_valid(Slot::Pp),
                    )
                    .branch(split_br)
                    .branch(BranchSummary::new("occupied").sets_enb(false))
                })
                .footprint(gateway_footprint(52, 6))
                .build(),
        );
    }
    {
        let sp = split_ports.clone();
        b.place(
            1,
            Mat::builder("split_small")
                .gateway(move |p| {
                    sp.contains(p.ingress_port.0)
                        && p.has_transport()
                        && !p.blocks.iter().any(|blk| blk.valid)
                })
                .action(|ctx| {
                    // Payload under the minimum: add a disabled header so the
                    // merge side can tell this apart from a parked packet
                    // whose remaining payload happens to be small (§5).
                    ctx.phv.pp = Default::default();
                    ctx.phv.pp.valid = true;
                    ctx.counters[C_DISABLED_SMALL_PAYLOAD] += 1;
                    ctx.phv.trace_flags |= decision::DISABLED_SMALL;
                    apply_len_delta(ctx.phv, PP_LEN, ctx.counters);
                })
                .summary(len_delta_effects(
                    MatSummary::on_port_set((*split_ports).clone())
                        .require(Req::Valid(Slot::Transport))
                        .require(Req::Invalid(Slot::Blocks))
                        .writes(Slot::Pp)
                        .sets_valid(Slot::Pp)
                        .sets_enb(false),
                ))
                .footprint(gateway_footprint(20, 4))
                .build(),
        );
    }
    {
        let mp = merge_ports.clone();
        let restore_primary = cfg.primary_blocks as i32 * BLOCK_BYTES as i32;
        let recirc_merge = pipe_cfg.annex_pipe.map(|pipe| RecircTarget { pipe, channel: 1 });
        let slots = total_slots;
        b.place(
            1,
            Mat::builder("merge_validate")
                .gateway(move |p| p.pp.valid && p.pp.enb && mp.contains(p.ingress_port.0))
                .stateful(meta_tbl, move |p| {
                    let i = usize::from(p.pp.tbl_idx);
                    (i < slots).then_some(i)
                })
                .action(move |ctx| {
                    let crc_ok = tag_crc(ctx.phv.pp.tbl_idx, ctx.phv.pp.clk) == ctx.phv.pp.crc;
                    let Some(cell_ref) = ctx.cell.as_deref_mut().filter(|_| crc_ok) else {
                        // Corrupted or out-of-range tag: never touch memory.
                        ctx.counters[C_CRC_FAIL] += 1;
                        ctx.phv.trace_flags |= decision::CRC_FAIL;
                        ctx.phv.verdict.drop = true;
                        return;
                    };
                    let stored_clk = cell::read_u16(&cell_ref[META_OFF_CLK..META_OFF_CLK + 2]);
                    let exp = cell::read_u16(&cell_ref[META_OFF_EXP..META_OFF_EXP + 2]);
                    let stored_xsum = cell::read_u16(&cell_ref[META_OFF_XSUM..META_OFF_XSUM + 2]);
                    let stored_tsum = cell::read_u16(&cell_ref[META_OFF_TSUM..META_OFF_TSUM + 2]);
                    let phv = &mut *ctx.phv;
                    if exp > 0 && stored_clk == phv.pp.clk {
                        // Alg. 2 lines 11-15: generations match — reclaim.
                        cell_ref.fill(0);
                        phv.meta[META_MERGE_OK] = 1;
                        phv.meta[META_TBL_IDX] = u32::from(phv.pp.tbl_idx);
                        if phv.pp.op_drop {
                            // Explicit Drop (§6.2.4): reclaim only.
                            ctx.counters[C_EXPLICIT_DROPS] += 1;
                            phv.trace_flags |= decision::EXPLICIT_DROP;
                            phv.pp.valid = false;
                            phv.verdict.drop = true;
                        } else {
                            ctx.counters[C_MERGES] += 1;
                            phv.trace_flags |= decision::MERGE;
                            // Un-park the original transport checksum along
                            // with the payload, repaired for any 5-tuple
                            // rewrite the NF applied in flight; the annex
                            // path needs it bridged across recirculation.
                            let xsum = restored_checksum(stored_xsum, stored_tsum, tuple_sum(phv));
                            phv.set_transport_checksum(xsum);
                            phv.meta[META_XSUM] = u32::from(xsum);
                            match recirc_merge {
                                Some(t) => {
                                    // Annex blocks are restored in the annex
                                    // pipe; keep the header for its tag.
                                    apply_len_delta(phv, restore_primary, ctx.counters);
                                    phv.verdict.recirculate = Some(t);
                                }
                                None => {
                                    apply_len_delta(phv, restore_primary - PP_LEN, ctx.counters);
                                    phv.pp.valid = false;
                                }
                            }
                        }
                    } else if exp == 0 && cell_ref.iter().all(|b| *b == 0) {
                        // A cleared slot with a validated tag: the slot was
                        // already reclaimed by an earlier Merge or Explicit
                        // Drop, so this is a duplicate (or replayed)
                        // arrival. Drop it without touching memory — the
                        // payload was restored exactly once and a lossy
                        // link's duplicate must never double-free the slot
                        // or splice a stale payload.
                        ctx.counters[C_DUP_MERGE] += 1;
                        phv.trace_flags |= decision::DUP_MERGE;
                        phv.verdict.drop = true;
                    } else {
                        // Premature eviction: the payload is gone (the slot
                        // was aged out, and possibly re-occupied by a newer
                        // Split). Drop the packet and record it (§3.3).
                        ctx.counters[C_PREMATURE_EVICTIONS] += 1;
                        phv.trace_flags |= decision::PREMATURE_EVICT;
                        phv.verdict.drop = true;
                    }
                })
                .summary({
                    let mut merge_br = BranchSummary::new("merge")
                        .sets_flag(META_MERGE_OK as u8)
                        .writes(m(META_TBL_IDX))
                        .writes(m(META_XSUM))
                        .reads(Slot::Ipv4)
                        .reads(Slot::Transport)
                        .writes(Slot::Ipv4)
                        .writes(Slot::Transport)
                        .drops();
                    match recirc_merge {
                        Some(_) => merge_br = merge_br.recirculates(1),
                        None => merge_br = merge_br.sets_invalid(Slot::Pp),
                    }
                    MatSummary::on_port_set((*merge_ports).clone())
                        .require(Req::Valid(Slot::Pp))
                        .require(Req::PpEnb(true))
                        .reads(Slot::Pp)
                        .branch(BranchSummary::new("crc_fail").drops())
                        .branch(merge_br)
                        .branch(
                            BranchSummary::new("explicit_drop")
                                .sets_flag(META_MERGE_OK as u8)
                                .writes(m(META_TBL_IDX))
                                .sets_invalid(Slot::Pp)
                                .drops(),
                        )
                        .branch(BranchSummary::new("dup").drops())
                        .branch(BranchSummary::new("premature").drops())
                })
                .footprint(gateway_footprint(52, 6))
                .build(),
        );
    }

    // --- Stages 2..N: payload blocks (Alg. 1/2 stages 3..N, Fig. 4).
    for (j, &reg) in pload.iter().enumerate() {
        let st = primary_block_stage(&chip, j);
        {
            let sp = split_ports.clone();
            b.place(
                st,
                Mat::builder(format!("split_store_{j}"))
                    .gateway(move |p| p.meta[META_SPLIT_OK] == 1 && sp.contains(p.ingress_port.0))
                    .stateful(reg, |p| Some(p.meta[META_TBL_IDX] as usize))
                    .action(move |ctx| {
                        let cell_ref = ctx.cell.as_deref_mut().expect("payload bound");
                        cell_ref.copy_from_slice(&ctx.phv.blocks[j].data);
                        ctx.phv.blocks[j].valid = false;
                    })
                    .summary(
                        MatSummary::on_port_set((*split_ports).clone())
                            .require(Req::MetaFlag(META_SPLIT_OK as u8))
                            .reads(m(META_TBL_IDX))
                            .reads(Slot::Blocks),
                    )
                    .footprint(gateway_footprint(44, 1))
                    .build(),
            );
        }
        {
            let mp = merge_ports.clone();
            b.place(
                st,
                Mat::builder(format!("merge_load_{j}"))
                    .gateway(move |p| p.meta[META_MERGE_OK] == 1 && mp.contains(p.ingress_port.0))
                    .stateful(reg, |p| Some(p.meta[META_TBL_IDX] as usize))
                    .action(move |ctx| {
                        let cell_ref = ctx.cell.as_deref_mut().expect("payload bound");
                        ctx.phv.blocks[j].data.copy_from_slice(cell_ref);
                        ctx.phv.blocks[j].valid = true;
                        cell_ref.fill(0); // Alg. 2 line 23
                    })
                    .summary(
                        MatSummary::on_port_set((*merge_ports).clone())
                            .require(Req::MetaFlag(META_MERGE_OK as u8))
                            .reads(m(META_TBL_IDX))
                            .writes(Slot::Blocks)
                            .sets_valid(Slot::Blocks),
                    )
                    .footprint(gateway_footprint(44, 1))
                    .build(),
            );
        }
    }

    let pipeline = b.build()?;
    let handles = PipeHandles {
        pipe: pipe_cfg.pipe,
        meta_tbl,
        total_slots,
        annex_pipe: pipe_cfg.annex_pipe,
        expiry,
    };
    Ok((pipeline, handles))
}

/// Builds the annex pipe's program (recirculation mode, §6.2.5).
pub fn build_annex(
    cfg: &ParkConfig,
    primary_cfg: &PipePark,
    annex_pipe: usize,
) -> Result<Pipeline, ProgramError> {
    let chip = cfg.chip;
    let total_slots = primary_cfg.total_slots();
    let rc_store = chip.recirc_port(annex_pipe, 0);
    let rc_load = chip.recirc_port(annex_pipe, 1);
    let annex_bytes = cfg.annex_blocks as i32 * BLOCK_BYTES as i32;
    let primary_blocks = cfg.primary_blocks;

    let mut parser = ParserConfig {
        phv_block_capacity: primary_blocks + cfg.annex_blocks,
        ..Default::default()
    };
    parser.pp_header_ports.insert(rc_store.0);
    parser.pp_header_ports.insert(rc_load.0);
    // Channel 0 carries split packets: the remaining payload starts with the
    // bytes to park in this pipe.
    parser.block_rules.insert(
        rc_store.0,
        BlockRule { blocks: cfg.annex_blocks, min_payload: cfg.annex_blocks * BLOCK_BYTES },
    );
    // Channel 1 carries merge packets: the wire already holds the primary
    // 160 bytes, which must stay in front of the annex blocks.
    parser.block_rules.insert(
        rc_load.0,
        BlockRule { blocks: primary_blocks, min_payload: primary_blocks * BLOCK_BYTES },
    );

    let mut b = Pipeline::builder(chip).parser(parser);
    for name in COUNTER_NAMES {
        let _ = b.counter(name);
    }

    let annex_regs: Vec<RegisterId> = (0..cfg.annex_blocks)
        .map(|j| {
            b.register(RegisterSpec {
                name: format!("annex_block_{j}"),
                stage: annex_block_stage(&chip, j),
                cell_bytes: BLOCK_BYTES,
                cells: total_slots,
            })
        })
        .collect();

    for (j, &reg) in annex_regs.iter().enumerate() {
        let st = annex_block_stage(&chip, j);
        {
            b.place(
                st,
                Mat::builder(format!("annex_store_{j}"))
                    // The block-validity conjunct closes a pp-verify PV101
                    // finding: a forged or truncated packet on the store
                    // channel can carry a valid enabled shim with *no*
                    // extracted blocks, and the unguarded store would park
                    // its zeroed block images. Recirculated split packets
                    // always carry blocks, so real traffic is unaffected.
                    .gateway(move |p| {
                        p.ingress_port == rc_store
                            && p.pp.valid
                            && p.pp.enb
                            && p.blocks.iter().any(|blk| blk.valid)
                    })
                    .stateful(reg, move |p| {
                        let i = usize::from(p.pp.tbl_idx);
                        (i < total_slots).then_some(i)
                    })
                    .action(move |ctx| {
                        let cell_ref = ctx.cell.as_deref_mut().expect("annex bound");
                        cell_ref.copy_from_slice(&ctx.phv.blocks[j].data);
                        ctx.phv.blocks[j].valid = false;
                    })
                    .summary(
                        MatSummary::on_ports([rc_store.0])
                            .require(Req::Valid(Slot::Pp))
                            .require(Req::PpEnb(true))
                            .require(Req::Valid(Slot::Blocks))
                            .reads(Slot::Pp)
                            .reads(Slot::Blocks),
                    )
                    .footprint(gateway_footprint(44, 1))
                    .build(),
            );
        }
        {
            b.place(
                st,
                Mat::builder(format!("annex_load_{j}"))
                    .gateway(move |p| p.ingress_port == rc_load && p.pp.valid && p.pp.enb)
                    .stateful(reg, move |p| {
                        let i = usize::from(p.pp.tbl_idx);
                        (i < total_slots).then_some(i)
                    })
                    .action(move |ctx| {
                        let cell_ref = ctx.cell.as_deref_mut().expect("annex bound");
                        let slot = primary_blocks + j;
                        ctx.phv.blocks[slot].data.copy_from_slice(cell_ref);
                        ctx.phv.blocks[slot].valid = true;
                        cell_ref.fill(0);
                    })
                    .summary(
                        MatSummary::on_ports([rc_load.0])
                            .require(Req::Valid(Slot::Pp))
                            .require(Req::PpEnb(true))
                            .reads(Slot::Pp)
                            .writes(Slot::Blocks)
                            .sets_valid(Slot::Blocks),
                    )
                    .footprint(gateway_footprint(44, 1))
                    .build(),
            );
        }
    }

    // Length fix-ups run in the last stage.
    let last = chip.stages_per_pipe - 1;
    b.place(
        last,
        Mat::builder("annex_finish_store")
            .gateway(move |p| p.ingress_port == rc_store && p.pp.valid && p.pp.enb)
            .action(move |ctx| apply_len_delta(ctx.phv, -annex_bytes, ctx.counters))
            .summary(len_delta_effects(
                MatSummary::on_ports([rc_store.0])
                    .require(Req::Valid(Slot::Pp))
                    .require(Req::PpEnb(true)),
            ))
            .footprint(gateway_footprint(18, 2))
            .build(),
    );
    b.place(
        last,
        Mat::builder("annex_finish_load")
            .gateway(move |p| p.ingress_port == rc_load && p.pp.valid && p.pp.enb)
            .action(move |ctx| {
                apply_len_delta(ctx.phv, annex_bytes - PP_LEN, ctx.counters);
                // The primary pipe bridged the un-parked transport checksum
                // across the recirculation (the wire copy was zeroed while
                // the shim was on); restore it now that the packet is whole.
                let xsum = ctx.phv.meta[META_XSUM] as u16;
                ctx.phv.set_transport_checksum(xsum);
                ctx.phv.pp.valid = false;
            })
            .summary(len_delta_effects(
                MatSummary::on_ports([rc_load.0])
                    .require(Req::Valid(Slot::Pp))
                    .require(Req::PpEnb(true))
                    .reads(m(META_XSUM))
                    .sets_invalid(Slot::Pp),
            ))
            .footprint(gateway_footprint(18, 3))
            .build(),
    );

    b.build()
}

/// Assembles a complete switch: PayloadPark programs on the configured
/// pipes, annex programs where recirculation is on, plain L2 pipes
/// elsewhere.
pub fn build_switch(cfg: &ParkConfig) -> Result<(SwitchModel, Vec<PipeHandles>), BuildError> {
    cfg.validate().map_err(BuildError::Config)?;
    let chip = cfg.chip;
    let mut pipelines: Vec<Option<Pipeline>> = (0..chip.pipes).map(|_| None).collect();
    let mut handles = Vec::new();
    for pipe_cfg in &cfg.pipes {
        let (pipeline, h) = build_primary(cfg, pipe_cfg)?;
        pipelines[pipe_cfg.pipe] = Some(pipeline);
        handles.push(h);
        if let Some(annex) = pipe_cfg.annex_pipe {
            pipelines[annex] = Some(build_annex(cfg, pipe_cfg, annex)?);
        }
    }
    let mut pipes = Vec::with_capacity(chip.pipes);
    for slot in pipelines {
        match slot {
            Some(p) => pipes.push(p),
            None => pipes.push(Pipeline::builder(chip).build()?),
        }
    }
    Ok((SwitchModel::new(chip, pipes), handles))
}

/// Builds the baseline switch: plain L2 forwarding on every pipe (the
/// non-PayloadPark deployment of §6.1).
pub fn build_baseline_switch(chip: ChipProfile) -> Result<SwitchModel, BuildError> {
    let mut pipes = Vec::with_capacity(chip.pipes);
    for _ in 0..chip.pipes {
        pipes.push(Pipeline::builder(chip).build()?);
    }
    Ok(SwitchModel::new(chip, pipes))
}

#[cfg(test)]
mod tests {
    use super::*;
    use pp_packet::MacAddr;
    use pp_rmt::chip::PortId;
    use pp_rmt::phv::{EthFields, Ipv4Fields, Span, TcpFields, UdpFields};

    fn udp_phv(total_len: u16, udp_len: u16) -> Phv {
        Phv {
            ingress_port: PortId(0),
            eth: EthFields { dst: MacAddr::default(), src: MacAddr::default(), ethertype: 0x0800 },
            ipv4: Some(Ipv4Fields {
                total_len,
                ident: 0,
                ttl: 64,
                protocol: 17,
                src: 1,
                dst: 2,
                options: Span::EMPTY,
            }),
            udp: Some(UdpFields { src_port: 1, dst_port: 2, len: udp_len, checksum: 0xBEEF }),
            ..Phv::default()
        }
    }

    fn tcp_phv(total_len: u16) -> Phv {
        let mut phv = udp_phv(total_len, 8);
        phv.udp = None;
        phv.ipv4.as_mut().unwrap().protocol = 6;
        phv.tcp = Some(TcpFields {
            src_port: 1,
            dst_port: 2,
            seq: 0,
            ack: 0,
            reserved: 0,
            flags: 0x10,
            window: 100,
            checksum: 0xBEEF,
            urgent: 0,
            options: Span::EMPTY,
        });
        phv
    }

    #[test]
    fn len_delta_applies_to_ip_and_udp() {
        let mut phv = udp_phv(500, 480);
        let mut counters = vec![0u64; COUNTER_NAMES.len()];
        apply_len_delta(&mut phv, -153, &mut counters);
        assert_eq!(phv.ipv4.as_ref().unwrap().total_len, 347);
        assert_eq!(phv.udp.as_ref().unwrap().len, 327);
        assert!(!phv.verdict.drop);
        assert_eq!(counters[C_LEN_UNDERFLOW], 0);
    }

    #[test]
    fn len_delta_on_tcp_moves_only_the_ip_length() {
        let mut phv = tcp_phv(500);
        let mut counters = vec![0u64; COUNTER_NAMES.len()];
        apply_len_delta(&mut phv, -153, &mut counters);
        assert_eq!(phv.ipv4.as_ref().unwrap().total_len, 347);
        assert!(!phv.verdict.drop);
    }

    #[test]
    fn len_underflow_drops_instead_of_wrapping() {
        // A forged/short packet: removing 153 bytes would wrap the u16.
        let mut phv = udp_phv(100, 80);
        let mut counters = vec![0u64; COUNTER_NAMES.len()];
        apply_len_delta(&mut phv, -153, &mut counters);
        assert!(phv.verdict.drop, "must drop, not wrap");
        assert_eq!(counters[C_LEN_UNDERFLOW], 1);
        // Neither field was modified.
        assert_eq!(phv.ipv4.as_ref().unwrap().total_len, 100);
        assert_eq!(phv.udp.as_ref().unwrap().len, 80);
    }

    #[test]
    fn udp_len_underflow_guards_even_when_ip_len_fits() {
        // Inconsistent headers: the IPv4 length survives the delta but the
        // (forged, too-small) UDP length would wrap below its 8-byte floor.
        let mut phv = udp_phv(500, 20);
        let mut counters = vec![0u64; COUNTER_NAMES.len()];
        apply_len_delta(&mut phv, -153, &mut counters);
        assert!(phv.verdict.drop);
        assert_eq!(counters[C_LEN_UNDERFLOW], 1);
        assert_eq!(phv.ipv4.as_ref().unwrap().total_len, 500);
        assert_eq!(phv.udp.as_ref().unwrap().len, 20);
    }

    #[test]
    fn restored_checksum_is_identity_when_header_unchanged() {
        // Same 5-tuple sum: the parked original comes back verbatim, even
        // for the ±0 edge representations.
        for ck in [0x1234u16, 0x0000, 0xFFFF] {
            assert_eq!(restored_checksum(ck, 0xABCD, 0xABCD), ck);
        }
        // A parked zero means "never computed" and stays zero regardless.
        assert_eq!(restored_checksum(0, 0x1111, 0x2222), 0);
    }

    #[test]
    fn restored_checksum_repair_matches_full_recompute() {
        use pp_packet::checksum::{Checksum, PseudoHeader};
        // A UDP segment checksummed under its original 5-tuple, then the
        // source address/port rewritten as a NAT would.
        let payload = [0x11u8, 0x22, 0x33, 0x44, 0x55];
        let seg_ck = |src: u32, dst: u32, sp: u16, dp: u16| {
            let mut c = Checksum::new();
            let length = 8 + payload.len() as u16;
            PseudoHeader { src, dst, protocol: 17, length }.add_to(&mut c);
            c.add_word(sp);
            c.add_word(dp);
            c.add_word(length);
            c.add_bytes(&payload);
            c.finish()
        };
        let (src, dst, sp, dp) = (0x0A00_0001, 0x0A00_0002, 1000, 2000);
        let (new_src, new_sp) = (0xC633_6401, 40_000);
        let original = seg_ck(src, dst, sp, dp);
        let expected = seg_ck(new_src, dst, new_sp, dp);

        let tsum = |s: u32, d: u32, a: u16, b: u16| {
            let mut c = Checksum::new();
            c.add_u32(s);
            c.add_u32(d);
            c.add_word(a);
            c.add_word(b);
            !c.finish()
        };
        let repaired =
            restored_checksum(original, tsum(src, dst, sp, dp), tsum(new_src, dst, new_sp, dp));
        assert_eq!(repaired, expected);
    }

    #[test]
    fn len_overflow_is_guarded_too() {
        let mut phv = udp_phv(u16::MAX - 10, u16::MAX - 30);
        let mut counters = vec![0u64; COUNTER_NAMES.len()];
        apply_len_delta(&mut phv, 160, &mut counters);
        assert!(phv.verdict.drop);
        assert_eq!(counters[C_LEN_UNDERFLOW], 1);
        assert_eq!(phv.ipv4.as_ref().unwrap().total_len, u16::MAX - 10);
    }
}
