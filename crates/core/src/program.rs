//! The PayloadPark dataplane program.
//!
//! This module compiles the paper's Algorithms 1 (Split) and 2 (Merge) into
//! match-action tables on the `pp-rmt` emulator, stage for stage:
//!
//! ```text
//! stage 0   slice_select (port → memory slice)        [split side]
//!           tagger_ti, tagger_clk (Alg.1 stage 1, keyed on ingress port)
//!           merge_strip_disabled (ENB=0 → remove hdr) [merge, Alg.2 st.1]
//! stage 1   split_probe   (Alg.1 st.2: probe metadata table, evict/occupy)
//!           split_small   (payload < minimum → disabled header, §5)
//!           merge_validate (Alg.2 st.2: CRC + generation check, reclaim)
//! stage 2+  payload_block_j arrays with split_store_j / merge_load_j MATs
//!           (Alg.1/2 stages 3..N: one block per stage, Fig. 4)
//! ```
//!
//! (The paper numbers stages from 1; this implementation is 0-based, so its
//! stages 1..3 appear here as 0..2.)
//!
//! With recirculation (§6.2.5) the *annex* pipe parks 14 further blocks:
//! split packets recirculate on channel 0 (store), merge packets on channel
//! 1 (load), with direction-specific parsing.
//!
//! Every stateful access is a single read-modify-write of one register cell
//! per MAT per packet — the restriction that dictates the circular-buffer
//! design and the fall-back-to-baseline behaviour (§4).

use crate::config::{ParkConfig, PipePark, META_ENTRY_BYTES};
use crate::counters::{
    COUNTER_NAMES, C_CRC_FAIL, C_DISABLED_OCCUPIED, C_DISABLED_SMALL_PAYLOAD, C_ENB0_FROM_SERVER,
    C_EVICTIONS, C_EXPLICIT_DROPS, C_MERGES, C_PREMATURE_EVICTIONS, C_SPLITS,
};
use pp_packet::crc::tag_crc;
use pp_packet::ppark::PAYLOADPARK_HEADER_LEN;
use pp_rmt::chip::ChipProfile;
use pp_rmt::mat::{Mat, MatFootprint, MatchKind};
use pp_rmt::parser::{BlockRule, ParserConfig};
use pp_rmt::phv::{Phv, RecircTarget, BLOCK_BYTES};
use pp_rmt::pipeline::{Pipeline, ProgramError};
use pp_rmt::register::{cell, RegisterId, RegisterSpec};
use pp_rmt::switch::SwitchModel;
use std::collections::{BTreeMap, BTreeSet};
use std::sync::atomic::{AtomicU16, Ordering};
use std::sync::Arc;

/// Metadata word: global lookup-table index chosen by the tagger.
pub const META_TBL_IDX: usize = 0;
/// Metadata word: generation clock chosen by the tagger.
pub const META_CLK: usize = 1;
/// Metadata word: 1 when Split succeeded for this packet.
pub const META_SPLIT_OK: usize = 2;
/// Metadata word: 1 when Merge validated for this packet.
pub const META_MERGE_OK: usize = 3;
/// Metadata word: memory-slice id + 1 (0 = no slice).
pub const META_SLICE: usize = 4;

/// Generation-clock modulus (the tag carries a 16-bit clock).
pub const MAX_CLK: u32 = 65_536;

const PP_LEN: i32 = PAYLOADPARK_HEADER_LEN as i32;

/// Errors from assembling a deployment.
#[derive(Debug)]
pub enum BuildError {
    /// The configuration failed validation.
    Config(String),
    /// The program did not fit the chip.
    Program(ProgramError),
}

impl core::fmt::Display for BuildError {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        match self {
            BuildError::Config(s) => write!(f, "configuration error: {s}"),
            BuildError::Program(e) => write!(f, "program error: {e}"),
        }
    }
}

impl std::error::Error for BuildError {}

impl From<ProgramError> for BuildError {
    fn from(e: ProgramError) -> Self {
        BuildError::Program(e)
    }
}

/// Control-plane handles for one PayloadPark-enabled pipe.
#[derive(Debug, Clone)]
pub struct PipeHandles {
    /// The pipe index.
    pub pipe: usize,
    /// The metadata table's register id (for occupancy inspection).
    pub meta_tbl: RegisterId,
    /// Total lookup-table slots in this pipe.
    pub total_slots: usize,
    /// The annex pipe, when recirculation is enabled.
    pub annex_pipe: Option<usize>,
    /// The live expiry threshold. Split reads it per packet, so the control
    /// plane can retune the eviction policy at runtime — the adaptive
    /// policy of the paper's §7 builds on this.
    pub expiry: Arc<AtomicU16>,
}

/// Adds `delta` to the IPv4 total-length and UDP length fields — the VLIW
/// arithmetic Split/Merge perform when bytes leave or rejoin the wire.
fn apply_len_delta(phv: &mut Phv, delta: i32) {
    if let Some(ip) = phv.ipv4.as_mut() {
        ip.total_len = (i32::from(ip.total_len) + delta) as u16;
    }
    if let Some(udp) = phv.udp.as_mut() {
        udp.len = (i32::from(udp.len) + delta) as u16;
    }
}

/// Stage that hosts payload block `j` in the primary pipe: blocks are
/// striped from stage 2 onward (Fig. 4), wrapping onto extra MATs in the
/// same stage when there are more blocks than stages. With the default 12
/// stages and 10 blocks, each block gets its own stage.
fn primary_block_stage(chip: &ChipProfile, j: usize) -> usize {
    2 + (j % (chip.stages_per_pipe - 2))
}

/// Stage that hosts annex block `j`: the annex pipe has no tagger or
/// metadata table, so all stages are available.
fn annex_block_stage(chip: &ChipProfile, j: usize) -> usize {
    j % chip.stages_per_pipe
}

fn gateway_footprint(key_bits: u32, vliw: u32) -> MatFootprint {
    MatFootprint {
        match_kind: MatchKind::Gateway,
        key_bits,
        vliw_slots: vliw,
        table_sram_bits: 0,
        tcam_bits: 0,
    }
}

/// Builds the primary pipe's program.
pub fn build_primary(
    cfg: &ParkConfig,
    pipe_cfg: &PipePark,
) -> Result<(Pipeline, PipeHandles), ProgramError> {
    let chip = cfg.chip;
    let total_slots = pipe_cfg.total_slots();
    let n_slices = pipe_cfg.slices.len();

    // Parser: extract blocks on split ports, expect the PayloadPark header
    // on merge ports.
    let mut parser = ParserConfig { phv_block_capacity: cfg.primary_blocks, ..Default::default() };
    let min_payload = cfg.min_split_payload(pipe_cfg);
    for slice in &pipe_cfg.slices {
        for &p in &slice.split_ports {
            parser
                .block_rules
                .insert(p, BlockRule { blocks: cfg.primary_blocks, min_payload });
        }
        for &p in &slice.merge_ports {
            parser.pp_header_ports.insert(p);
        }
    }

    let mut b = Pipeline::builder(chip).parser(parser);
    for name in COUNTER_NAMES {
        let _ = b.counter(name);
    }

    // Shared lookup structures captured by the MAT closures.
    let split_ports: Arc<BTreeSet<u16>> =
        Arc::new(pipe_cfg.slices.iter().flat_map(|s| s.split_ports.iter().copied()).collect());
    let merge_ports: Arc<BTreeSet<u16>> =
        Arc::new(pipe_cfg.slices.iter().flat_map(|s| s.merge_ports.iter().copied()).collect());
    // Per-port slice lookup: slice id + 1 (for META_SLICE) and the slice's
    // (base, size) geometry within the pipe's global table index space.
    let mut slice_of_port = BTreeMap::new();
    let mut geom_of_port = BTreeMap::new();
    let mut base = 0u32;
    for (idx, slice) in pipe_cfg.slices.iter().enumerate() {
        for &p in &slice.split_ports {
            slice_of_port.insert(p, idx as u32 + 1);
            geom_of_port.insert(p, (idx, base, slice.slots as u32));
        }
        base += slice.slots as u32;
    }
    let slice_of_port = Arc::new(slice_of_port);
    let geom_of_port = Arc::new(geom_of_port);

    // Registers.
    let ti_reg = b.register(RegisterSpec {
        name: "tagger_ti".into(),
        stage: 0,
        cell_bytes: 4,
        cells: n_slices,
    });
    let clk_reg = b.register(RegisterSpec {
        name: "tagger_clk".into(),
        stage: 0,
        cell_bytes: 4,
        cells: n_slices,
    });
    let meta_tbl = b.register(RegisterSpec {
        name: "metadata_table".into(),
        stage: 1,
        cell_bytes: META_ENTRY_BYTES,
        cells: total_slots,
    });
    let pload: Vec<RegisterId> = (0..cfg.primary_blocks)
        .map(|j| {
            b.register(RegisterSpec {
                name: format!("payload_block_{j}"),
                stage: primary_block_stage(&chip, j),
                cell_bytes: BLOCK_BYTES,
                cells: total_slots,
            })
        })
        .collect();

    // --- Stage 0: slice selection (split) and disabled-header strip (merge).
    {
        let sp = split_ports.clone();
        let map = slice_of_port.clone();
        b.place(
            0,
            Mat::builder("slice_select")
                .gateway(move |p| sp.contains(&p.ingress_port.0) && p.is_udp())
                .action(move |ctx| {
                    ctx.phv.meta[META_SLICE] =
                        map.get(&ctx.phv.ingress_port.0).copied().unwrap_or(0);
                })
                .footprint(MatFootprint {
                    match_kind: MatchKind::Ternary,
                    key_bits: 16,
                    vliw_slots: 1,
                    table_sram_bits: 0,
                    // One half-populated TCAM block, which reproduces the
                    // paper's 0.69 % TCAM utilization.
                    tcam_bits: 512 * 88,
                })
                .build(),
        );
    }
    {
        let mp = merge_ports.clone();
        b.place(
            0,
            Mat::builder("merge_strip_disabled")
                .gateway(move |p| mp.contains(&p.ingress_port.0) && p.pp.valid && !p.pp.enb)
                .action(|ctx| {
                    ctx.phv.pp.valid = false;
                    apply_len_delta(ctx.phv, -PP_LEN);
                    ctx.counters[C_ENB0_FROM_SERVER] += 1;
                })
                .footprint(gateway_footprint(18, 4))
                .build(),
        );
    }

    // --- Stage 0 (cont.): taggers (Alg. 1 lines 3-7). Keyed directly on
    // the ingress port (a compile-time constant in the paper's P4), so they
    // co-reside with slice_select without an intra-stage dependency.
    let splittable = {
        let sp = split_ports.clone();
        move |p: &Phv| {
            sp.contains(&p.ingress_port.0) && p.blocks.iter().any(|blk| blk.valid)
        }
    };
    {
        let geom = geom_of_port.clone();
        let geom_idx = geom_of_port.clone();
        b.place(
            0,
            Mat::builder("tagger_ti")
                .gateway(splittable.clone())
                .stateful(ti_reg, move |p| {
                    geom_idx.get(&p.ingress_port.0).map(|&(slice, _, _)| slice)
                })
                .action(move |ctx| {
                    let (_, slice_base, slice_size) =
                        geom[&ctx.phv.ingress_port.0];
                    let cell_ref = ctx.cell.as_deref_mut().expect("ti bound");
                    let ti = (cell::read_u32(cell_ref) + 1) % slice_size;
                    cell::write_u32(cell_ref, ti);
                    ctx.phv.meta[META_TBL_IDX] = slice_base + ti;
                })
                .footprint(gateway_footprint(20, 2))
                .build(),
        );
    }
    {
        let geom_idx = geom_of_port.clone();
        b.place(
            0,
            Mat::builder("tagger_clk")
                .gateway(splittable.clone())
                .stateful(clk_reg, move |p| {
                    geom_idx.get(&p.ingress_port.0).map(|&(slice, _, _)| slice)
                })
                .action(|ctx| {
                    let cell_ref = ctx.cell.as_deref_mut().expect("clk bound");
                    let clk = (cell::read_u32(cell_ref) + 1) % MAX_CLK;
                    cell::write_u32(cell_ref, clk);
                    ctx.phv.meta[META_CLK] = clk;
                })
                .footprint(gateway_footprint(20, 2))
                .build(),
        );
    }

    // --- Stage 1: split probe, small-payload fallback, merge validate.
    let expiry = Arc::new(AtomicU16::new(cfg.expiry_threshold));
    {
        let max_exp = expiry.clone();
        let savings = cfg.primary_blocks as i32 * BLOCK_BYTES as i32 - PP_LEN;
        let recirc_split =
            pipe_cfg.annex_pipe.map(|pipe| RecircTarget { pipe, channel: 0 });
        b.place(
            1,
            Mat::builder("split_probe")
                .gateway(splittable.clone())
                .stateful(meta_tbl, |p| Some(p.meta[META_TBL_IDX] as usize))
                .action(move |ctx| {
                    let cell_ref = ctx.cell.as_deref_mut().expect("meta_tbl bound");
                    let mut exp = cell::read_u16(&cell_ref[2..4]);
                    // Alg. 1 lines 11-13: age the occupant.
                    if exp >= 1 {
                        exp -= 1;
                        if exp == 0 {
                            ctx.counters[C_EVICTIONS] += 1;
                        }
                    }
                    let phv = &mut *ctx.phv;
                    if exp == 0 {
                        // Alg. 1 lines 14-20: slot is free (or just evicted):
                        // occupy it and enable Split.
                        let clk = phv.meta[META_CLK] as u16;
                        let idx = phv.meta[META_TBL_IDX] as u16;
                        cell::write_u16(&mut cell_ref[0..2], clk);
                        cell::write_u16(&mut cell_ref[2..4], max_exp.load(Ordering::Relaxed));
                        phv.pp.valid = true;
                        phv.pp.enb = true;
                        phv.pp.op_drop = false;
                        phv.pp.tbl_idx = idx;
                        phv.pp.clk = clk;
                        phv.pp.crc = tag_crc(idx, clk);
                        phv.meta[META_SPLIT_OK] = 1;
                        ctx.counters[C_SPLITS] += 1;
                        apply_len_delta(phv, -savings);
                        if let Some(t) = recirc_split {
                            phv.verdict.recirculate = Some(t);
                        }
                    } else {
                        // Alg. 1 lines 21-23: occupied — write back the aged
                        // threshold, disable Split for this packet.
                        cell::write_u16(&mut cell_ref[2..4], exp);
                        phv.pp = Default::default();
                        phv.pp.valid = true;
                        ctx.counters[C_DISABLED_OCCUPIED] += 1;
                        apply_len_delta(phv, PP_LEN);
                    }
                })
                .footprint(gateway_footprint(52, 6))
                .build(),
        );
    }
    {
        let sp = split_ports.clone();
        b.place(
            1,
            Mat::builder("split_small")
                .gateway(move |p| {
                    sp.contains(&p.ingress_port.0)
                        && p.is_udp()
                        && !p.blocks.iter().any(|blk| blk.valid)
                })
                .action(|ctx| {
                    // Payload under the minimum: add a disabled header so the
                    // merge side can tell this apart from a parked packet
                    // whose remaining payload happens to be small (§5).
                    ctx.phv.pp = Default::default();
                    ctx.phv.pp.valid = true;
                    ctx.counters[C_DISABLED_SMALL_PAYLOAD] += 1;
                    apply_len_delta(ctx.phv, PP_LEN);
                })
                .footprint(gateway_footprint(20, 4))
                .build(),
        );
    }
    {
        let mp = merge_ports.clone();
        let restore_primary = cfg.primary_blocks as i32 * BLOCK_BYTES as i32;
        let recirc_merge =
            pipe_cfg.annex_pipe.map(|pipe| RecircTarget { pipe, channel: 1 });
        let slots = total_slots;
        b.place(
            1,
            Mat::builder("merge_validate")
                .gateway(move |p| mp.contains(&p.ingress_port.0) && p.pp.valid && p.pp.enb)
                .stateful(meta_tbl, move |p| {
                    let i = usize::from(p.pp.tbl_idx);
                    (i < slots).then_some(i)
                })
                .action(move |ctx| {
                    let crc_ok =
                        tag_crc(ctx.phv.pp.tbl_idx, ctx.phv.pp.clk) == ctx.phv.pp.crc;
                    let Some(cell_ref) = ctx.cell.as_deref_mut().filter(|_| crc_ok) else {
                        // Corrupted or out-of-range tag: never touch memory.
                        ctx.counters[C_CRC_FAIL] += 1;
                        ctx.phv.verdict.drop = true;
                        return;
                    };
                    let stored_clk = cell::read_u16(&cell_ref[0..2]);
                    let exp = cell::read_u16(&cell_ref[2..4]);
                    let phv = &mut *ctx.phv;
                    if exp > 0 && stored_clk == phv.pp.clk {
                        // Alg. 2 lines 11-15: generations match — reclaim.
                        cell_ref.fill(0);
                        phv.meta[META_MERGE_OK] = 1;
                        phv.meta[META_TBL_IDX] = u32::from(phv.pp.tbl_idx);
                        if phv.pp.op_drop {
                            // Explicit Drop (§6.2.4): reclaim only.
                            ctx.counters[C_EXPLICIT_DROPS] += 1;
                            phv.pp.valid = false;
                            phv.verdict.drop = true;
                        } else {
                            ctx.counters[C_MERGES] += 1;
                            match recirc_merge {
                                Some(t) => {
                                    // Annex blocks are restored in the annex
                                    // pipe; keep the header for its tag.
                                    apply_len_delta(phv, restore_primary);
                                    phv.verdict.recirculate = Some(t);
                                }
                                None => {
                                    apply_len_delta(phv, restore_primary - PP_LEN);
                                    phv.pp.valid = false;
                                }
                            }
                        }
                    } else {
                        // Premature eviction: the payload is gone. Drop the
                        // packet and record it (§3.3).
                        ctx.counters[C_PREMATURE_EVICTIONS] += 1;
                        phv.verdict.drop = true;
                    }
                })
                .footprint(gateway_footprint(52, 6))
                .build(),
        );
    }

    // --- Stages 2..N: payload blocks (Alg. 1/2 stages 3..N, Fig. 4).
    for (j, &reg) in pload.iter().enumerate() {
        let st = primary_block_stage(&chip, j);
        {
            let sp = split_ports.clone();
            b.place(
                st,
                Mat::builder(format!("split_store_{j}"))
                    .gateway(move |p| {
                        sp.contains(&p.ingress_port.0) && p.meta[META_SPLIT_OK] == 1
                    })
                    .stateful(reg, |p| Some(p.meta[META_TBL_IDX] as usize))
                    .action(move |ctx| {
                        let cell_ref = ctx.cell.as_deref_mut().expect("payload bound");
                        cell_ref.copy_from_slice(&ctx.phv.blocks[j].data);
                        ctx.phv.blocks[j].valid = false;
                    })
                    .footprint(gateway_footprint(44, 1))
                    .build(),
            );
        }
        {
            let mp = merge_ports.clone();
            b.place(
                st,
                Mat::builder(format!("merge_load_{j}"))
                    .gateway(move |p| {
                        mp.contains(&p.ingress_port.0) && p.meta[META_MERGE_OK] == 1
                    })
                    .stateful(reg, |p| Some(p.meta[META_TBL_IDX] as usize))
                    .action(move |ctx| {
                        let cell_ref = ctx.cell.as_deref_mut().expect("payload bound");
                        ctx.phv.blocks[j].data.copy_from_slice(cell_ref);
                        ctx.phv.blocks[j].valid = true;
                        cell_ref.fill(0); // Alg. 2 line 23
                    })
                    .footprint(gateway_footprint(44, 1))
                    .build(),
            );
        }
    }

    let pipeline = b.build()?;
    let handles = PipeHandles {
        pipe: pipe_cfg.pipe,
        meta_tbl,
        total_slots,
        annex_pipe: pipe_cfg.annex_pipe,
        expiry,
    };
    Ok((pipeline, handles))
}

/// Builds the annex pipe's program (recirculation mode, §6.2.5).
pub fn build_annex(
    cfg: &ParkConfig,
    primary_cfg: &PipePark,
    annex_pipe: usize,
) -> Result<Pipeline, ProgramError> {
    let chip = cfg.chip;
    let total_slots = primary_cfg.total_slots();
    let rc_store = chip.recirc_port(annex_pipe, 0);
    let rc_load = chip.recirc_port(annex_pipe, 1);
    let annex_bytes = cfg.annex_blocks as i32 * BLOCK_BYTES as i32;
    let primary_blocks = cfg.primary_blocks;

    let mut parser = ParserConfig {
        phv_block_capacity: primary_blocks + cfg.annex_blocks,
        ..Default::default()
    };
    parser.pp_header_ports.insert(rc_store.0);
    parser.pp_header_ports.insert(rc_load.0);
    // Channel 0 carries split packets: the remaining payload starts with the
    // bytes to park in this pipe.
    parser.block_rules.insert(
        rc_store.0,
        BlockRule { blocks: cfg.annex_blocks, min_payload: cfg.annex_blocks * BLOCK_BYTES },
    );
    // Channel 1 carries merge packets: the wire already holds the primary
    // 160 bytes, which must stay in front of the annex blocks.
    parser.block_rules.insert(
        rc_load.0,
        BlockRule { blocks: primary_blocks, min_payload: primary_blocks * BLOCK_BYTES },
    );

    let mut b = Pipeline::builder(chip).parser(parser);
    for name in COUNTER_NAMES {
        let _ = b.counter(name);
    }

    let annex_regs: Vec<RegisterId> = (0..cfg.annex_blocks)
        .map(|j| {
            b.register(RegisterSpec {
                name: format!("annex_block_{j}"),
                stage: annex_block_stage(&chip, j),
                cell_bytes: BLOCK_BYTES,
                cells: total_slots,
            })
        })
        .collect();

    for (j, &reg) in annex_regs.iter().enumerate() {
        let st = annex_block_stage(&chip, j);
        {
            b.place(
                st,
                Mat::builder(format!("annex_store_{j}"))
                    .gateway(move |p| p.ingress_port == rc_store && p.pp.valid && p.pp.enb)
                    .stateful(reg, move |p| {
                        let i = usize::from(p.pp.tbl_idx);
                        (i < total_slots).then_some(i)
                    })
                    .action(move |ctx| {
                        let cell_ref = ctx.cell.as_deref_mut().expect("annex bound");
                        cell_ref.copy_from_slice(&ctx.phv.blocks[j].data);
                        ctx.phv.blocks[j].valid = false;
                    })
                    .footprint(gateway_footprint(44, 1))
                    .build(),
            );
        }
        {
            b.place(
                st,
                Mat::builder(format!("annex_load_{j}"))
                    .gateway(move |p| p.ingress_port == rc_load && p.pp.valid && p.pp.enb)
                    .stateful(reg, move |p| {
                        let i = usize::from(p.pp.tbl_idx);
                        (i < total_slots).then_some(i)
                    })
                    .action(move |ctx| {
                        let cell_ref = ctx.cell.as_deref_mut().expect("annex bound");
                        let slot = primary_blocks + j;
                        ctx.phv.blocks[slot].data.copy_from_slice(cell_ref);
                        ctx.phv.blocks[slot].valid = true;
                        cell_ref.fill(0);
                    })
                    .footprint(gateway_footprint(44, 1))
                    .build(),
            );
        }
    }

    // Length fix-ups run in the last stage.
    let last = chip.stages_per_pipe - 1;
    b.place(
        last,
        Mat::builder("annex_finish_store")
            .gateway(move |p| p.ingress_port == rc_store && p.pp.valid && p.pp.enb)
            .action(move |ctx| apply_len_delta(ctx.phv, -annex_bytes))
            .footprint(gateway_footprint(18, 2))
            .build(),
    );
    b.place(
        last,
        Mat::builder("annex_finish_load")
            .gateway(move |p| p.ingress_port == rc_load && p.pp.valid && p.pp.enb)
            .action(move |ctx| {
                apply_len_delta(ctx.phv, annex_bytes - PP_LEN);
                ctx.phv.pp.valid = false;
            })
            .footprint(gateway_footprint(18, 3))
            .build(),
    );

    b.build()
}

/// Assembles a complete switch: PayloadPark programs on the configured
/// pipes, annex programs where recirculation is on, plain L2 pipes
/// elsewhere.
pub fn build_switch(cfg: &ParkConfig) -> Result<(SwitchModel, Vec<PipeHandles>), BuildError> {
    cfg.validate().map_err(BuildError::Config)?;
    let chip = cfg.chip;
    let mut pipelines: Vec<Option<Pipeline>> = (0..chip.pipes).map(|_| None).collect();
    let mut handles = Vec::new();
    for pipe_cfg in &cfg.pipes {
        let (pipeline, h) = build_primary(cfg, pipe_cfg)?;
        pipelines[pipe_cfg.pipe] = Some(pipeline);
        handles.push(h);
        if let Some(annex) = pipe_cfg.annex_pipe {
            pipelines[annex] = Some(build_annex(cfg, pipe_cfg, annex)?);
        }
    }
    let mut pipes = Vec::with_capacity(chip.pipes);
    for slot in pipelines {
        match slot {
            Some(p) => pipes.push(p),
            None => pipes.push(Pipeline::builder(chip).build()?),
        }
    }
    Ok((SwitchModel::new(chip, pipes), handles))
}

/// Builds the baseline switch: plain L2 forwarding on every pipe (the
/// non-PayloadPark deployment of §6.1).
pub fn build_baseline_switch(chip: ChipProfile) -> Result<SwitchModel, BuildError> {
    let mut pipes = Vec::with_capacity(chip.pipes);
    for _ in 0..chip.pipes {
        pipes.push(Pipeline::builder(chip).build()?);
    }
    Ok(SwitchModel::new(chip, pipes))
}
