//! Control-plane helpers: occupancy inspection, table clearing, resource
//! reports.
//!
//! The paper's prototype reads its monitoring counters and register state
//! from the switch control plane (§5); this module provides the equivalent
//! views over a running [`SwitchModel`].

use crate::config::META_ENTRY_BYTES;
use crate::counters::CounterSnapshot;
use crate::program::PipeHandles;
use pp_rmt::register::cell;
use pp_rmt::resources::ResourceReport;
use pp_rmt::switch::SwitchModel;

/// A control-plane view over one PayloadPark pipe.
#[derive(Debug, Clone)]
pub struct PipeControl {
    handles: PipeHandles,
}

impl PipeControl {
    /// Wraps the handles returned by the program builder.
    pub fn new(handles: PipeHandles) -> Self {
        PipeControl { handles }
    }

    /// The underlying handles.
    pub fn handles(&self) -> &PipeHandles {
        &self.handles
    }

    /// Creates the §7 adaptive eviction-policy controller for this pipe.
    pub fn adaptive_policy(
        &self,
        config: crate::evictor::AdaptiveConfig,
    ) -> crate::evictor::AdaptivePolicy {
        crate::evictor::AdaptivePolicy::new(self.handles.expiry.clone(), config)
    }

    /// Reads the deployment's monitoring counters. With recirculation the
    /// annex pipe keeps its own counter block (its length fix-ups can bump
    /// `len_underflow`); the snapshot aggregates both pipes so no count is
    /// invisible to the control plane.
    pub fn counters(&self, switch: &SwitchModel) -> CounterSnapshot {
        let mut snap = CounterSnapshot::read(switch.pipe(self.handles.pipe));
        if let Some(annex) = self.handles.annex_pipe {
            snap.add(&CounterSnapshot::read(switch.pipe(annex)));
        }
        snap
    }

    /// Number of lookup-table slots currently occupied (expiry > 0).
    pub fn occupancy(&self, switch: &SwitchModel) -> usize {
        let pipe = switch.pipe(self.handles.pipe);
        let regs = pipe.registers();
        (0..self.handles.total_slots)
            .filter(|&i| {
                let c = regs.cell(self.handles.meta_tbl, i);
                debug_assert_eq!(c.len(), META_ENTRY_BYTES);
                cell::read_u16(&c[2..4]) > 0
            })
            .count()
    }

    /// Occupancy as a fraction of the table.
    pub fn occupancy_fraction(&self, switch: &SwitchModel) -> f64 {
        self.occupancy(switch) as f64 / self.handles.total_slots as f64
    }

    /// Clears the pipe's lookup table (all registers) — a control-plane
    /// table reset between experiment runs.
    pub fn clear_tables(&self, switch: &mut SwitchModel) {
        switch.pipe_mut(self.handles.pipe).registers_mut().clear_all();
        if let Some(annex) = self.handles.annex_pipe {
            switch.pipe_mut(annex).registers_mut().clear_all();
        }
    }

    /// Resource report for the primary pipe's program (Table 1). When an
    /// annex pipe is configured its usage is merged in, since the deployment
    /// consumes both pipes.
    pub fn resource_report(&self, switch: &SwitchModel) -> ResourceReport {
        let primary = switch.pipe(self.handles.pipe).resource_report();
        match self.handles.annex_pipe {
            Some(annex) => primary.merged_with(&switch.pipe(annex).resource_report()),
            None => primary,
        }
    }
}
