//! PayloadPark deployment configuration.
//!
//! A deployment enables PayloadPark on one or more pipes of the switch.
//! Within a pipe, the reserved memory can be *sliced* among several NF
//! servers (paper §6.2.3: static slicing for performance isolation); each
//! slice owns a contiguous range of lookup-table slots and its own set of
//! split/merge ports.

use crate::jsonio::{self, obj, Value};
use pp_packet::ppark::PAYLOADPARK_HEADER_LEN;
use pp_rmt::chip::ChipProfile;
use pp_rmt::phv::BLOCK_BYTES;

/// Metadata bytes per lookup-table slot, one 64-bit register cell: 16-bit
/// generation clock + 16-bit expiry threshold (Fig. 4) + the 16-bit
/// original transport checksum (parked with the payload — the wire
/// carries zero while the payload is off the wire) + the 16-bit folded
/// sum of the 5-tuple words it was computed over, so Merge can repair the
/// restored checksum incrementally (RFC 1624) when an NF rewrote the
/// header in flight.
pub const META_ENTRY_BYTES: usize = 8;

/// Byte offset of the generation clock within a metadata entry.
pub const META_OFF_CLK: usize = 0;
/// Byte offset of the expiry threshold within a metadata entry.
pub const META_OFF_EXP: usize = 2;
/// Byte offset of the parked transport checksum within a metadata entry.
pub const META_OFF_XSUM: usize = 4;
/// Byte offset of the parked 5-tuple checksum contribution.
pub const META_OFF_TSUM: usize = 6;

/// One NF server's share of a pipe's lookup table.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SliceSpec {
    /// Human-readable name (used in reports).
    pub name: String,
    /// Ports whose ingress traffic is split (the traffic-generator side;
    /// the paper uses two generator ports to saturate one server, §6.1).
    pub split_ports: Vec<u16>,
    /// Ports whose ingress traffic is merged (the NF-server side).
    pub merge_ports: Vec<u16>,
    /// Lookup-table slots reserved for this slice.
    pub slots: usize,
}

/// Per-pipe PayloadPark deployment.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct PipePark {
    /// The pipe index this configuration programs.
    pub pipe: usize,
    /// Memory slices (one per NF server sharing the pipe).
    pub slices: Vec<SliceSpec>,
    /// When set, payload beyond the primary 160 bytes is striped into this
    /// *annex* pipe via recirculation (paper §6.2.5), raising the parked
    /// capacity from 160 to 384 bytes.
    pub annex_pipe: Option<usize>,
}

impl PipePark {
    /// Total lookup-table slots across all slices of this pipe.
    pub fn total_slots(&self) -> usize {
        self.slices.iter().map(|s| s.slots).sum()
    }
}

/// Complete deployment configuration.
#[derive(Debug, Clone, PartialEq)]
pub struct ParkConfig {
    /// The chip to compile against.
    pub chip: ChipProfile,
    /// Expiry threshold written at Split time (the paper's `MAX_EXP`;
    /// macro-benchmarks use 1, Fig. 12 explores 2 and 10).
    pub expiry_threshold: u16,
    /// Payload blocks parked in the primary pipe (10 × 16 B = 160 B).
    pub primary_blocks: usize,
    /// Additional blocks parked in the annex pipe when recirculation is on
    /// (14 × 16 B = 224 B, for 384 B total).
    pub annex_blocks: usize,
    /// Per-pipe deployments.
    pub pipes: Vec<PipePark>,
}

impl ParkConfig {
    /// A single-server deployment on pipe 0 with the paper's defaults:
    /// 160-byte parking, expiry threshold 1.
    pub fn single_server(
        chip: ChipProfile,
        split_ports: Vec<u16>,
        merge_port: u16,
        slots: usize,
    ) -> Self {
        ParkConfig {
            chip,
            expiry_threshold: 1,
            primary_blocks: 10,
            annex_blocks: 14,
            pipes: vec![PipePark {
                pipe: 0,
                slices: vec![SliceSpec {
                    name: "server0".into(),
                    split_ports,
                    merge_ports: vec![merge_port],
                    slots,
                }],
                annex_pipe: None,
            }],
        }
    }

    /// Bytes of payload parked per packet.
    pub fn capacity_bytes(&self, pipe_cfg: &PipePark) -> usize {
        let annex = if pipe_cfg.annex_pipe.is_some() { self.annex_blocks } else { 0 };
        (self.primary_blocks + annex) * BLOCK_BYTES
    }

    /// Minimum UDP payload size for the Split operation (§5: splitting
    /// smaller payloads would waste a whole slot).
    pub fn min_split_payload(&self, pipe_cfg: &PipePark) -> usize {
        self.capacity_bytes(pipe_cfg)
    }

    /// Bytes the Split operation removes from the wire packet: the parked
    /// payload minus the inserted PayloadPark header.
    pub fn wire_savings_bytes(&self, pipe_cfg: &PipePark) -> usize {
        self.capacity_bytes(pipe_cfg) - PAYLOADPARK_HEADER_LEN
    }

    /// SRAM bytes one lookup-table slot costs in the *primary* pipe
    /// (payload blocks striped across stages + the metadata entry).
    pub fn slot_cost_primary_bytes(&self) -> usize {
        self.primary_blocks * BLOCK_BYTES + META_ENTRY_BYTES
    }

    /// SRAM bytes one slot costs in the annex pipe.
    pub fn slot_cost_annex_bytes(&self) -> usize {
        self.annex_blocks * BLOCK_BYTES
    }

    /// Number of slots that fit in `fraction` of one pipe's stage SRAM —
    /// how the paper's "x % of switch memory" maps to table sizes (Fig. 14
    /// sweeps this).
    pub fn slots_for_sram_fraction(&self, fraction: f64) -> usize {
        assert!((0.0..=1.0).contains(&fraction), "fraction out of range");
        let budget = self.chip.pipe_sram_bytes() as f64 * fraction;
        (budget / self.slot_cost_primary_bytes() as f64).floor() as usize
    }

    /// The fraction of one pipe's stage SRAM a slot count consumes.
    pub fn sram_fraction_for_slots(&self, slots: usize) -> f64 {
        (slots * self.slot_cost_primary_bytes()) as f64 / self.chip.pipe_sram_bytes() as f64
    }

    /// Validates the configuration; returns a human-readable error.
    pub fn validate(&self) -> Result<(), String> {
        self.chip.validate()?;
        if self.pipes.is_empty() {
            return Err("no pipes configured".into());
        }
        if self.expiry_threshold == 0 {
            return Err("expiry threshold must be >= 1".into());
        }
        if self.primary_blocks == 0 {
            return Err("primary_blocks must be >= 1".into());
        }
        let mut used_pipes = std::collections::BTreeSet::new();
        let mut used_ports = std::collections::BTreeSet::new();
        for pipe_cfg in &self.pipes {
            if pipe_cfg.pipe >= self.chip.pipes {
                return Err(format!("pipe {} beyond chip", pipe_cfg.pipe));
            }
            if !used_pipes.insert(pipe_cfg.pipe) {
                return Err(format!("pipe {} configured twice", pipe_cfg.pipe));
            }
            if pipe_cfg.slices.is_empty() {
                return Err(format!("pipe {}: no slices", pipe_cfg.pipe));
            }
            if pipe_cfg.total_slots() > usize::from(u16::MAX) + 1 {
                return Err(format!(
                    "pipe {}: {} slots exceed the 16-bit table index",
                    pipe_cfg.pipe,
                    pipe_cfg.total_slots()
                ));
            }
            for slice in &pipe_cfg.slices {
                if slice.slots == 0 {
                    return Err(format!("slice {}: zero slots", slice.name));
                }
                if slice.split_ports.is_empty() || slice.merge_ports.is_empty() {
                    return Err(format!("slice {}: needs split and merge ports", slice.name));
                }
                for &p in slice.split_ports.iter().chain(&slice.merge_ports) {
                    if self.chip.pipe_of(pp_rmt::chip::PortId(p)) != pipe_cfg.pipe {
                        return Err(format!(
                            "slice {}: port {p} not on pipe {}",
                            slice.name, pipe_cfg.pipe
                        ));
                    }
                    if !used_ports.insert(p) {
                        return Err(format!("port {p} used by more than one role"));
                    }
                }
            }
            if let Some(annex) = pipe_cfg.annex_pipe {
                if annex >= self.chip.pipes {
                    return Err(format!("annex pipe {annex} beyond chip"));
                }
                if annex == pipe_cfg.pipe {
                    return Err("annex pipe must differ from the primary pipe".into());
                }
                if pipe_cfg.slices.len() != 1 {
                    return Err("recirculation supports a single slice per pipe".into());
                }
                if self.annex_blocks == 0 {
                    return Err("annex_blocks must be >= 1 with recirculation".into());
                }
            }
        }
        // Annex pipes must not also run a primary deployment.
        for pipe_cfg in &self.pipes {
            if let Some(annex) = pipe_cfg.annex_pipe {
                if used_pipes.contains(&annex) {
                    return Err(format!("annex pipe {annex} already runs PayloadPark"));
                }
            }
        }
        // Per-pipe memory feasibility is enforced precisely by the program
        // builder (per-stage budgets); here we do a coarse sanity check.
        for pipe_cfg in &self.pipes {
            let bytes = pipe_cfg.total_slots() * self.slot_cost_primary_bytes();
            if bytes as u64 > self.chip.pipe_sram_bytes() {
                return Err(format!(
                    "pipe {}: table needs {bytes} B, pipe has {} B",
                    pipe_cfg.pipe,
                    self.chip.pipe_sram_bytes()
                ));
            }
        }
        Ok(())
    }

    /// Renders the full deployment as a deterministic JSON document, so
    /// repro files (`pp-fuzz`) and external tooling can carry an exact
    /// copy of the configuration under test.
    pub fn to_json(&self) -> String {
        self.to_json_value().render()
    }

    /// The deployment as a [`jsonio::Value`] tree (see [`Self::to_json`]).
    pub fn to_json_value(&self) -> Value {
        let chip = obj(vec![
            ("pipes", Value::num(self.chip.pipes)),
            ("stages_per_pipe", Value::num(self.chip.stages_per_pipe)),
            ("ports_per_pipe", Value::num(self.chip.ports_per_pipe)),
            ("sram_bits_per_stage", Value::num(self.chip.sram_bits_per_stage)),
            ("tcam_bits_per_stage", Value::num(self.chip.tcam_bits_per_stage)),
            ("vliw_slots_per_stage", Value::num(self.chip.vliw_slots_per_stage)),
            ("exact_xbar_bits_per_stage", Value::num(self.chip.exact_xbar_bits_per_stage)),
            ("ternary_xbar_bits_per_stage", Value::num(self.chip.ternary_xbar_bits_per_stage)),
            ("phv_bits", Value::num(self.chip.phv_bits)),
            ("max_mats_per_stage", Value::num(self.chip.max_mats_per_stage)),
            ("pipeline_latency_ns", Value::num(self.chip.pipeline_latency_ns)),
            ("recirculation_penalty_ns", Value::num(self.chip.recirculation_penalty_ns)),
            ("max_recirculations", Value::num(self.chip.max_recirculations)),
            ("recirc_channels_per_pipe", Value::num(self.chip.recirc_channels_per_pipe)),
        ]);
        let pipes = Value::Arr(
            self.pipes
                .iter()
                .map(|p| {
                    let slices = Value::Arr(
                        p.slices
                            .iter()
                            .map(|s| {
                                obj(vec![
                                    ("name", Value::str(s.name.clone())),
                                    ("split_ports", jsonio::num_arr(s.split_ports.iter())),
                                    ("merge_ports", jsonio::num_arr(s.merge_ports.iter())),
                                    ("slots", Value::num(s.slots)),
                                ])
                            })
                            .collect(),
                    );
                    obj(vec![
                        ("pipe", Value::num(p.pipe)),
                        ("slices", slices),
                        ("annex_pipe", p.annex_pipe.map_or(Value::Null, Value::num)),
                    ])
                })
                .collect(),
        );
        obj(vec![
            ("chip", chip),
            ("expiry_threshold", Value::num(self.expiry_threshold)),
            ("primary_blocks", Value::num(self.primary_blocks)),
            ("annex_blocks", Value::num(self.annex_blocks)),
            ("pipes", pipes),
        ])
    }

    /// Parses a deployment from [`Self::to_json`] output.
    pub fn parse_json(text: &str) -> Result<ParkConfig, String> {
        let value = jsonio::parse(text).ok_or("malformed JSON")?;
        Self::from_json_value(&value)
    }

    /// Rebuilds a deployment from a [`jsonio::Value`] tree.
    pub fn from_json_value(v: &Value) -> Result<ParkConfig, String> {
        fn usize_field(v: &Value, key: &str) -> Result<usize, String> {
            v.get(key).and_then(Value::as_usize).ok_or_else(|| format!("bad field {key}"))
        }
        let c = v.get("chip").ok_or("missing chip")?;
        let chip = ChipProfile {
            pipes: usize_field(c, "pipes")?,
            stages_per_pipe: usize_field(c, "stages_per_pipe")?,
            ports_per_pipe: usize_field(c, "ports_per_pipe")?,
            sram_bits_per_stage: c
                .get("sram_bits_per_stage")
                .and_then(Value::as_u64)
                .ok_or("bad field sram_bits_per_stage")?,
            tcam_bits_per_stage: c
                .get("tcam_bits_per_stage")
                .and_then(Value::as_u64)
                .ok_or("bad field tcam_bits_per_stage")?,
            vliw_slots_per_stage: c
                .get("vliw_slots_per_stage")
                .and_then(Value::as_u32)
                .ok_or("bad field vliw_slots_per_stage")?,
            exact_xbar_bits_per_stage: c
                .get("exact_xbar_bits_per_stage")
                .and_then(Value::as_u32)
                .ok_or("bad field exact_xbar_bits_per_stage")?,
            ternary_xbar_bits_per_stage: c
                .get("ternary_xbar_bits_per_stage")
                .and_then(Value::as_u32)
                .ok_or("bad field ternary_xbar_bits_per_stage")?,
            phv_bits: c.get("phv_bits").and_then(Value::as_u32).ok_or("bad field phv_bits")?,
            max_mats_per_stage: usize_field(c, "max_mats_per_stage")?,
            pipeline_latency_ns: c
                .get("pipeline_latency_ns")
                .and_then(Value::as_u64)
                .ok_or("bad field pipeline_latency_ns")?,
            recirculation_penalty_ns: c
                .get("recirculation_penalty_ns")
                .and_then(Value::as_u64)
                .ok_or("bad field recirculation_penalty_ns")?,
            max_recirculations: c
                .get("max_recirculations")
                .and_then(Value::as_u32)
                .ok_or("bad field max_recirculations")?,
            recirc_channels_per_pipe: c
                .get("recirc_channels_per_pipe")
                .and_then(Value::as_u8)
                .ok_or("bad field recirc_channels_per_pipe")?,
        };
        let mut pipes = Vec::new();
        for p in v.get("pipes").and_then(Value::as_arr).ok_or("missing pipes")? {
            let mut slices = Vec::new();
            for s in p.get("slices").and_then(Value::as_arr).ok_or("missing slices")? {
                let ports = |key: &str| -> Result<Vec<u16>, String> {
                    s.get(key)
                        .and_then(Value::as_arr)
                        .ok_or_else(|| format!("bad field {key}"))?
                        .iter()
                        .map(|x| x.as_u16().ok_or_else(|| format!("bad port in {key}")))
                        .collect()
                };
                slices.push(SliceSpec {
                    name: s.get("name").and_then(Value::as_str).ok_or("bad slice name")?.to_owned(),
                    split_ports: ports("split_ports")?,
                    merge_ports: ports("merge_ports")?,
                    slots: usize_field(s, "slots")?,
                });
            }
            let annex_pipe = match p.get("annex_pipe") {
                None | Some(Value::Null) => None,
                Some(a) => Some(a.as_usize().ok_or("bad annex_pipe")?),
            };
            pipes.push(PipePark { pipe: usize_field(p, "pipe")?, slices, annex_pipe });
        }
        Ok(ParkConfig {
            chip,
            expiry_threshold: v
                .get("expiry_threshold")
                .and_then(Value::as_u16)
                .ok_or("bad expiry_threshold")?,
            primary_blocks: usize_field(v, "primary_blocks")?,
            annex_blocks: usize_field(v, "annex_blocks")?,
            pipes,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn base() -> ParkConfig {
        ParkConfig::single_server(ChipProfile::default(), vec![0, 1], 2, 1024)
    }

    #[test]
    fn single_server_default_is_valid() {
        base().validate().unwrap();
    }

    #[test]
    fn capacity_and_savings() {
        let cfg = base();
        let pipe = &cfg.pipes[0];
        assert_eq!(cfg.capacity_bytes(pipe), 160);
        assert_eq!(cfg.min_split_payload(pipe), 160);
        assert_eq!(cfg.wire_savings_bytes(pipe), 153);
        assert_eq!(cfg.slot_cost_primary_bytes(), 168);
    }

    #[test]
    fn recirculation_raises_capacity_to_384() {
        let mut cfg = base();
        cfg.pipes[0].annex_pipe = Some(1);
        let pipe = cfg.pipes[0].clone();
        assert_eq!(cfg.capacity_bytes(&pipe), 384);
        assert_eq!(cfg.min_split_payload(&pipe), 384);
        assert_eq!(cfg.wire_savings_bytes(&pipe), 377);
        assert_eq!(cfg.slot_cost_annex_bytes(), 224);
        cfg.validate().unwrap();
    }

    #[test]
    fn sram_fraction_roundtrip() {
        let cfg = base();
        let slots = cfg.slots_for_sram_fraction(0.26);
        // 26% of ~3.8 MB / 168 B/slot ≈ 6.1k slots.
        assert!((6_000..6_500).contains(&slots), "slots {slots}");
        let frac = cfg.sram_fraction_for_slots(slots);
        assert!((frac - 0.26).abs() < 0.001);
    }

    #[test]
    fn rejects_bad_configs() {
        let mut c = base();
        c.expiry_threshold = 0;
        assert!(c.validate().is_err());

        let mut c = base();
        c.pipes.clear();
        assert!(c.validate().is_err());

        let mut c = base();
        c.pipes[0].slices[0].slots = 0;
        assert!(c.validate().is_err());

        let mut c = base();
        c.pipes[0].slices[0].split_ports = vec![20]; // pipe 1 port
        assert!(c.validate().is_err());

        let mut c = base();
        c.pipes[0].slices[0].merge_ports = vec![0]; // duplicate of split port
        assert!(c.validate().is_err());

        let mut c = base();
        c.pipes[0].annex_pipe = Some(0); // same pipe
        assert!(c.validate().is_err());

        let mut c = base();
        c.pipes[0].slices[0].slots = 70_000; // exceeds 16-bit index
        assert!(c.validate().is_err());
    }

    #[test]
    fn rejects_duplicate_pipes_and_annex_conflicts() {
        let mut c = base();
        c.pipes.push(c.pipes[0].clone());
        assert!(c.validate().is_err());

        // Annex pipe that also runs a primary deployment.
        let mut c = base();
        let mut second = PipePark {
            pipe: 1,
            slices: vec![SliceSpec {
                name: "server1".into(),
                split_ports: vec![16],
                merge_ports: vec![17],
                slots: 64,
            }],
            annex_pipe: None,
        };
        std::mem::swap(&mut second, &mut c.pipes[0]);
        c.pipes.push(second);
        c.pipes[1].annex_pipe = Some(1); // annex == pipe 1 which is primary
        assert!(c.validate().is_err());
    }

    #[test]
    fn json_round_trip_is_exact() {
        let mut cfg = base();
        cfg.pipes[0].annex_pipe = Some(1);
        cfg.pipes[0].slices.push(SliceSpec {
            name: "server \"1\"".into(),
            split_ports: vec![4, 5],
            merge_ports: vec![6],
            slots: 2048,
        });
        let text = cfg.to_json();
        let back = ParkConfig::parse_json(&text).unwrap();
        assert_eq!(back, cfg);
        // Deterministic rendering: the round trip is byte-identical.
        assert_eq!(back.to_json(), text);
    }

    #[test]
    fn json_parse_rejects_malformed_documents() {
        assert!(ParkConfig::parse_json("not json").is_err());
        assert!(ParkConfig::parse_json("{}").is_err());
        // A config whose expiry overflows u16 is rejected at parse time.
        let mut text = base().to_json();
        text = text.replace("\"expiry_threshold\":1", "\"expiry_threshold\":99999");
        assert!(ParkConfig::parse_json(&text).is_err());
    }

    #[test]
    fn multi_slice_pipe_is_valid() {
        let mut c = base();
        c.pipes[0].slices.push(SliceSpec {
            name: "server1".into(),
            split_ports: vec![4, 5],
            merge_ports: vec![6],
            slots: 2048,
        });
        c.validate().unwrap();
        assert_eq!(c.pipes[0].total_slots(), 1024 + 2048);
    }

    #[test]
    fn recirculation_rejects_multi_slice() {
        let mut c = base();
        c.pipes[0].slices.push(SliceSpec {
            name: "server1".into(),
            split_ports: vec![4],
            merge_ports: vec![5],
            slots: 64,
        });
        c.pipes[0].annex_pipe = Some(1);
        assert!(c.validate().is_err());
    }
}
