//! The monitoring counters of the PayloadPark prototype (paper §5).
//!
//! The paper maintains eight counters; this reproduction adds a ninth
//! (`crc_fail`) for tags that fail CRC validation (subsuming corrupted and
//! forged headers), a tenth (`len_underflow`) for guarded length fix-ups,
//! and an eleventh (`dup_merge`) for duplicate merge arrivals whose slot
//! was already reclaimed — the adversity suite's duplication scenarios
//! must never double-free a slot, so those packets are counted and
//! dropped rather than spliced onto stale payloads.

use pp_rmt::pipeline::Pipeline;

/// Counter index: successful Split operations.
pub const C_SPLITS: usize = 0;
/// Counter index: successful Merge operations.
pub const C_MERGES: usize = 1;
/// Counter index: Explicit Drop operations (§6.2.4).
pub const C_EXPLICIT_DROPS: usize = 2;
/// Counter index: payload evictions (expiry threshold reached zero).
pub const C_EVICTIONS: usize = 3;
/// Counter index: Merge requests whose payload was prematurely evicted.
pub const C_PREMATURE_EVICTIONS: usize = 4;
/// Counter index: packets returning from the NF server with Split disabled
/// (ENB bit zero).
pub const C_ENB0_FROM_SERVER: usize = 5;
/// Counter index: Split disabled because the payload was under the minimum.
pub const C_DISABLED_SMALL_PAYLOAD: usize = 6;
/// Counter index: Split disabled because the probed slot was occupied.
pub const C_DISABLED_OCCUPIED: usize = 7;
/// Counter index: Merge requests whose tag failed CRC validation.
pub const C_CRC_FAIL: usize = 8;
/// Counter index: packets dropped because a length fix-up would have
/// underflowed (or overflowed) the IPv4/UDP length fields — a malformed or
/// forged packet that would otherwise leave the switch with a corrupted
/// length.
pub const C_LEN_UNDERFLOW: usize = 9;
/// Counter index: duplicate Merge arrivals — a validated ENB=1 tag whose
/// slot was already reclaimed by an earlier Merge or Explicit Drop. The
/// duplicate is dropped without touching memory (exactly-once restore).
pub const C_DUP_MERGE: usize = 10;

/// Counter names in index order; the program registers them in this order so
/// the `C_*` indices are valid inside actions.
pub const COUNTER_NAMES: [&str; 11] = [
    "splits",
    "merges",
    "explicit_drops",
    "evictions",
    "premature_evictions",
    "enb0_from_server",
    "disabled_small_payload",
    "disabled_occupied",
    "crc_fail",
    "len_underflow",
    "dup_merge",
];

/// A control-plane snapshot of one pipe's counters.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct CounterSnapshot {
    /// Successful Split operations.
    pub splits: u64,
    /// Successful Merge operations.
    pub merges: u64,
    /// Explicit Drop operations.
    pub explicit_drops: u64,
    /// Payload evictions by the expiry mechanism.
    pub evictions: u64,
    /// Merges that found their payload prematurely evicted (packet dropped).
    pub premature_evictions: u64,
    /// Split-disabled packets returning from the NF server.
    pub enb0_from_server: u64,
    /// Splits skipped: payload under the minimum size.
    pub disabled_small_payload: u64,
    /// Splits skipped: probed slot occupied.
    pub disabled_occupied: u64,
    /// Merge tags failing CRC validation.
    pub crc_fail: u64,
    /// Packets dropped by the length-fix-up underflow guard.
    pub len_underflow: u64,
    /// Duplicate Merge arrivals dropped (slot already reclaimed).
    pub dup_merge: u64,
}

impl CounterSnapshot {
    /// Reads a snapshot from a pipeline's counter block.
    pub fn read(pipe: &Pipeline) -> Self {
        CounterSnapshot {
            splits: pipe.counter(COUNTER_NAMES[C_SPLITS]),
            merges: pipe.counter(COUNTER_NAMES[C_MERGES]),
            explicit_drops: pipe.counter(COUNTER_NAMES[C_EXPLICIT_DROPS]),
            evictions: pipe.counter(COUNTER_NAMES[C_EVICTIONS]),
            premature_evictions: pipe.counter(COUNTER_NAMES[C_PREMATURE_EVICTIONS]),
            enb0_from_server: pipe.counter(COUNTER_NAMES[C_ENB0_FROM_SERVER]),
            disabled_small_payload: pipe.counter(COUNTER_NAMES[C_DISABLED_SMALL_PAYLOAD]),
            disabled_occupied: pipe.counter(COUNTER_NAMES[C_DISABLED_OCCUPIED]),
            crc_fail: pipe.counter(COUNTER_NAMES[C_CRC_FAIL]),
            len_underflow: pipe.counter(COUNTER_NAMES[C_LEN_UNDERFLOW]),
            dup_merge: pipe.counter(COUNTER_NAMES[C_DUP_MERGE]),
        }
    }

    /// Accumulates another snapshot into this one — aggregating the
    /// counters of sharded workers must equal the unsharded deployment's
    /// counters (the fastpath equivalence oracle relies on this).
    pub fn add(&mut self, other: &CounterSnapshot) {
        self.splits += other.splits;
        self.merges += other.merges;
        self.explicit_drops += other.explicit_drops;
        self.evictions += other.evictions;
        self.premature_evictions += other.premature_evictions;
        self.enb0_from_server += other.enb0_from_server;
        self.disabled_small_payload += other.disabled_small_payload;
        self.disabled_occupied += other.disabled_occupied;
        self.crc_fail += other.crc_fail;
        self.len_underflow += other.len_underflow;
        self.dup_merge += other.dup_merge;
    }

    /// The counters paired with their [`COUNTER_NAMES`] entries, in index
    /// order — the iteration telemetry exporters are built on.
    pub fn named(&self) -> [(&'static str, u64); COUNTER_NAMES.len()] {
        [
            (COUNTER_NAMES[C_SPLITS], self.splits),
            (COUNTER_NAMES[C_MERGES], self.merges),
            (COUNTER_NAMES[C_EXPLICIT_DROPS], self.explicit_drops),
            (COUNTER_NAMES[C_EVICTIONS], self.evictions),
            (COUNTER_NAMES[C_PREMATURE_EVICTIONS], self.premature_evictions),
            (COUNTER_NAMES[C_ENB0_FROM_SERVER], self.enb0_from_server),
            (COUNTER_NAMES[C_DISABLED_SMALL_PAYLOAD], self.disabled_small_payload),
            (COUNTER_NAMES[C_DISABLED_OCCUPIED], self.disabled_occupied),
            (COUNTER_NAMES[C_CRC_FAIL], self.crc_fail),
            (COUNTER_NAMES[C_LEN_UNDERFLOW], self.len_underflow),
            (COUNTER_NAMES[C_DUP_MERGE], self.dup_merge),
        ]
    }

    /// Outstanding parked payloads implied by the counters: splits minus
    /// everything that reclaimed a slot.
    pub fn outstanding(&self) -> i64 {
        self.splits as i64 - self.merges as i64 - self.explicit_drops as i64 - self.evictions as i64
    }

    /// True when the deployment behaved functionally equivalently to the
    /// baseline: no payload was lost to premature eviction (§6.2.6 requires
    /// zero premature evictions) and no packet was dropped for a corrupted
    /// tag or length.
    pub fn functionally_equivalent(&self) -> bool {
        self.premature_evictions == 0
            && self.crc_fail == 0
            && self.len_underflow == 0
            && self.dup_merge == 0
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn names_match_indices() {
        assert_eq!(COUNTER_NAMES[C_SPLITS], "splits");
        assert_eq!(COUNTER_NAMES[C_MERGES], "merges");
        assert_eq!(COUNTER_NAMES[C_EXPLICIT_DROPS], "explicit_drops");
        assert_eq!(COUNTER_NAMES[C_EVICTIONS], "evictions");
        assert_eq!(COUNTER_NAMES[C_PREMATURE_EVICTIONS], "premature_evictions");
        assert_eq!(COUNTER_NAMES[C_ENB0_FROM_SERVER], "enb0_from_server");
        assert_eq!(COUNTER_NAMES[C_DISABLED_SMALL_PAYLOAD], "disabled_small_payload");
        assert_eq!(COUNTER_NAMES[C_DISABLED_OCCUPIED], "disabled_occupied");
        assert_eq!(COUNTER_NAMES[C_CRC_FAIL], "crc_fail");
        assert_eq!(COUNTER_NAMES[C_LEN_UNDERFLOW], "len_underflow");
        assert_eq!(COUNTER_NAMES[C_DUP_MERGE], "dup_merge");
    }

    #[test]
    fn outstanding_arithmetic() {
        let snap = CounterSnapshot {
            splits: 100,
            merges: 60,
            explicit_drops: 10,
            evictions: 5,
            ..Default::default()
        };
        assert_eq!(snap.outstanding(), 25);
    }

    #[test]
    fn functional_equivalence_requires_zero_premature() {
        let mut snap = CounterSnapshot::default();
        assert!(snap.functionally_equivalent());
        snap.premature_evictions = 1;
        assert!(!snap.functionally_equivalent());
        snap.premature_evictions = 0;
        snap.crc_fail = 1;
        assert!(!snap.functionally_equivalent());
        snap.crc_fail = 0;
        snap.len_underflow = 1;
        assert!(!snap.functionally_equivalent());
        snap.len_underflow = 0;
        // A duplicate delivered once by the baseline but consumed by Merge
        // is an observable difference too.
        snap.dup_merge = 1;
        assert!(!snap.functionally_equivalent());
    }
}
