//! Minimal hand-rolled JSON, for configuration and repro files.
//!
//! The workspace deliberately carries no serde; the few places that need
//! a machine-readable interchange format (metric series, fuzzer repros)
//! hand-roll it. This module is the shared core: a tiny [`Value`] tree
//! with a recursive-descent parser and a deterministic renderer.
//!
//! Two properties matter for repro files and set this apart from a
//! float-only parser:
//!
//! * **Numbers round-trip exactly.** A number keeps its raw token, so a
//!   full-range `u64` fuzz seed survives parse → render unchanged
//!   (an `f64` intermediate would quantize anything above 2^53).
//! * **Rendering is deterministic.** Objects keep insertion order and
//!   the renderer emits no discretionary whitespace, so byte-identical
//!   inputs produce byte-identical files — the shrinker's determinism
//!   check diffs repro JSON verbatim.

/// A parsed JSON value.
#[derive(Debug, Clone, PartialEq)]
pub enum Value {
    Null,
    Bool(bool),
    /// Raw number token, exactly as written (e.g. `"18446744073709551615"`).
    Num(String),
    Str(String),
    Arr(Vec<Value>),
    /// Key-value pairs in insertion order (duplicate keys keep the last).
    Obj(Vec<(String, Value)>),
}

impl Value {
    /// Builds a number value from anything displayable as a number token.
    pub fn num(n: impl std::fmt::Display) -> Value {
        Value::Num(n.to_string())
    }

    pub fn str(s: impl Into<String>) -> Value {
        Value::Str(s.into())
    }

    pub fn as_bool(&self) -> Option<bool> {
        match self {
            Value::Bool(b) => Some(*b),
            _ => None,
        }
    }

    pub fn as_str(&self) -> Option<&str> {
        match self {
            Value::Str(s) => Some(s),
            _ => None,
        }
    }

    pub fn as_arr(&self) -> Option<&[Value]> {
        match self {
            Value::Arr(items) => Some(items),
            _ => None,
        }
    }

    pub fn as_obj(&self) -> Option<&[(String, Value)]> {
        match self {
            Value::Obj(fields) => Some(fields),
            _ => None,
        }
    }

    /// Looks up a key in an object (last occurrence wins).
    pub fn get(&self, key: &str) -> Option<&Value> {
        self.as_obj()?.iter().rev().find(|(k, _)| k == key).map(|(_, v)| v)
    }

    pub fn as_u64(&self) -> Option<u64> {
        match self {
            Value::Num(raw) => raw.parse().ok(),
            _ => None,
        }
    }

    pub fn as_usize(&self) -> Option<usize> {
        self.as_u64().and_then(|n| usize::try_from(n).ok())
    }

    pub fn as_u32(&self) -> Option<u32> {
        self.as_u64().and_then(|n| u32::try_from(n).ok())
    }

    pub fn as_u16(&self) -> Option<u16> {
        self.as_u64().and_then(|n| u16::try_from(n).ok())
    }

    pub fn as_u8(&self) -> Option<u8> {
        self.as_u64().and_then(|n| u8::try_from(n).ok())
    }

    pub fn as_f64(&self) -> Option<f64> {
        match self {
            Value::Num(raw) => raw.parse().ok(),
            _ => None,
        }
    }

    /// Renders compact deterministic JSON (no discretionary whitespace,
    /// object fields in insertion order).
    pub fn render(&self) -> String {
        let mut out = String::new();
        self.render_into(&mut out);
        out
    }

    fn render_into(&self, out: &mut String) {
        match self {
            Value::Null => out.push_str("null"),
            Value::Bool(b) => out.push_str(if *b { "true" } else { "false" }),
            Value::Num(raw) => out.push_str(raw),
            Value::Str(s) => {
                out.push('"');
                for c in s.chars() {
                    match c {
                        '"' => out.push_str("\\\""),
                        '\\' => out.push_str("\\\\"),
                        '\n' => out.push_str("\\n"),
                        '\r' => out.push_str("\\r"),
                        '\t' => out.push_str("\\t"),
                        c if (c as u32) < 0x20 => {
                            out.push_str(&format!("\\u{:04x}", c as u32));
                        }
                        c => out.push(c),
                    }
                }
                out.push('"');
            }
            Value::Arr(items) => {
                out.push('[');
                for (i, item) in items.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    item.render_into(out);
                }
                out.push(']');
            }
            Value::Obj(fields) => {
                out.push('{');
                for (i, (k, v)) in fields.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    Value::Str(k.clone()).render_into(out);
                    out.push(':');
                    v.render_into(out);
                }
                out.push('}');
            }
        }
    }
}

/// Parses a complete JSON document; trailing non-whitespace is an error.
pub fn parse(text: &str) -> Option<Value> {
    let (value, rest) = parse_value(text.trim_start())?;
    if rest.trim().is_empty() {
        Some(value)
    } else {
        None
    }
}

/// Parses one JSON value off the front of `s`, returning the remainder.
pub fn parse_value(s: &str) -> Option<(Value, &str)> {
    let s = s.trim_start();
    let first = s.chars().next()?;
    match first {
        'n' => s.strip_prefix("null").map(|r| (Value::Null, r)),
        't' => s.strip_prefix("true").map(|r| (Value::Bool(true), r)),
        'f' => s.strip_prefix("false").map(|r| (Value::Bool(false), r)),
        '"' => parse_string(s).map(|(v, r)| (Value::Str(v), r)),
        '[' => parse_array(s),
        '{' => parse_object(s),
        '-' | '0'..='9' => parse_number(s),
        _ => None,
    }
}

fn parse_string(s: &str) -> Option<(String, &str)> {
    let mut chars = s.strip_prefix('"')?.char_indices();
    let body = &s[1..];
    let mut out = String::new();
    while let Some((i, c)) = chars.next() {
        match c {
            '"' => return Some((out, &body[i + 1..])),
            '\\' => match chars.next()?.1 {
                '"' => out.push('"'),
                '\\' => out.push('\\'),
                '/' => out.push('/'),
                'n' => out.push('\n'),
                'r' => out.push('\r'),
                't' => out.push('\t'),
                'b' => out.push('\u{8}'),
                'f' => out.push('\u{c}'),
                'u' => {
                    let mut code = 0u32;
                    for _ in 0..4 {
                        code = code * 16 + chars.next()?.1.to_digit(16)?;
                    }
                    out.push(char::from_u32(code)?);
                }
                _ => return None,
            },
            c => out.push(c),
        }
    }
    None
}

fn parse_number(s: &str) -> Option<(Value, &str)> {
    let end = s
        .char_indices()
        .find(|(_, c)| !matches!(c, '0'..='9' | '-' | '+' | '.' | 'e' | 'E'))
        .map_or(s.len(), |(i, _)| i);
    let raw = &s[..end];
    // Validate the token parses as a number at all.
    raw.parse::<f64>().ok()?;
    Some((Value::Num(raw.to_owned()), &s[end..]))
}

fn parse_array(s: &str) -> Option<(Value, &str)> {
    let mut rest = s.strip_prefix('[')?.trim_start();
    let mut items = Vec::new();
    if let Some(r) = rest.strip_prefix(']') {
        return Some((Value::Arr(items), r));
    }
    loop {
        let (item, r) = parse_value(rest)?;
        items.push(item);
        rest = r.trim_start();
        if let Some(r) = rest.strip_prefix(',') {
            rest = r.trim_start();
        } else {
            return rest.strip_prefix(']').map(|r| (Value::Arr(items), r));
        }
    }
}

fn parse_object(s: &str) -> Option<(Value, &str)> {
    let mut rest = s.strip_prefix('{')?.trim_start();
    let mut fields = Vec::new();
    if let Some(r) = rest.strip_prefix('}') {
        return Some((Value::Obj(fields), r));
    }
    loop {
        let (key, r) = parse_string(rest.trim_start())?;
        let r = r.trim_start().strip_prefix(':')?;
        let (value, r) = parse_value(r)?;
        fields.push((key, value));
        rest = r.trim_start();
        if let Some(r) = rest.strip_prefix(',') {
            rest = r.trim_start();
        } else {
            return rest.strip_prefix('}').map(|r| (Value::Obj(fields), r));
        }
    }
}

/// Convenience: an object from field pairs.
pub fn obj(fields: Vec<(&str, Value)>) -> Value {
    Value::Obj(fields.into_iter().map(|(k, v)| (k.to_owned(), v)).collect())
}

/// Convenience: an array of numbers.
pub fn num_arr<T: std::fmt::Display>(items: impl IntoIterator<Item = T>) -> Value {
    Value::Arr(items.into_iter().map(Value::num).collect())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn full_range_u64_round_trips_exactly() {
        let v = Value::num(u64::MAX);
        let parsed = parse(&v.render()).unwrap();
        assert_eq!(parsed.as_u64(), Some(u64::MAX));
        // An f64 intermediate would have lost the low bits.
        assert_eq!(parsed.render(), "18446744073709551615");
    }

    #[test]
    fn nested_document_round_trips() {
        let doc = obj(vec![
            ("name", Value::str("fuzz \"case\" #1\n")),
            ("seed", Value::num(0x00FF_FFFF_FFFF_FFFFu64)),
            ("flags", Value::Arr(vec![Value::Bool(true), Value::Null])),
            ("inner", obj(vec![("slots", num_arr([1u64, 2, 3]))])),
        ]);
        let text = doc.render();
        let parsed = parse(&text).unwrap();
        assert_eq!(parsed, doc);
        // Deterministic rendering: render(parse(render(x))) == render(x).
        assert_eq!(parsed.render(), text);
    }

    #[test]
    fn tolerates_whitespace_and_rejects_trailing_garbage() {
        let ok = parse("  { \"a\" : [ 1 , 2 ] ,\n \"b\" : \"x\" }  ").unwrap();
        assert_eq!(ok.get("a").unwrap().as_arr().unwrap().len(), 2);
        assert!(parse("{} trailing").is_none());
        assert!(parse("{\"a\":}").is_none());
        assert!(parse("[1,,2]").is_none());
    }
}
