//! The conformance oracle: invariant checks for adversarial runs.
//!
//! The paper's §6.2.6 functional-equivalence argument assumes a benign
//! network; the adversity engine (loss, reordering, duplication,
//! truncation, blackouts) deliberately breaks that assumption, so
//! "behaves correctly" needs a definition that survives misfortune. This
//! module is that definition — a set of invariants every execution path
//! (scalar switch loops, the sharded `pp_fastpath` engine at any width,
//! the discrete-event harness) must uphold after **every** wave,
//! regardless of what the network did:
//!
//! 1. **No slot leaks / counter balance.** Every parked payload is
//!    eventually merged, explicitly dropped, or evicted — so the counters
//!    must satisfy `splits = merges + explicit_drops + evictions +
//!    occupied_slots` exactly. A leaked slot (payload parked forever with
//!    no occupant record) or a double-free (a duplicate Merge reclaiming a
//!    slot twice) both break this equation.
//! 2. **Exactly-once restore.** Duplicate ENB=1 Merge arrivals must be
//!    counted (`dup_merge`) and dropped, never spliced onto a stale or
//!    re-occupied slot; a double restore would show up either as a
//!    balance violation (1) or as a corrupt delivered packet (3).
//! 3. **Delivered packets are whole.** Everything that reaches the sink
//!    parses and passes IPv4 *and* transport checksum verification
//!    ([`ParsedPacket::verify_checksums`]) — Merge restored the exact
//!    payload and checksum that were parked. (Skip this check for
//!    scenarios that corrupt packet bytes in flight: the baseline would
//!    deliver those corrupted too.)
//!
//! All checks are pure over a [`CounterSnapshot`] + occupancy (+ the
//! delivered bytes), so they apply equally to a single [`SwitchModel`]
//! and to aggregated per-shard state.

use crate::control::PipeControl;
use crate::counters::CounterSnapshot;
use pp_packet::ParsedPacket;
use pp_rmt::switch::SwitchModel;
use pp_rmt::trace::FlightRecorder;

/// The outcome of a conformance check: empty means every invariant held.
#[derive(Debug, Clone, Default)]
pub struct OracleReport {
    violations: Vec<String>,
}

impl OracleReport {
    /// True when every invariant held.
    pub fn ok(&self) -> bool {
        self.violations.is_empty()
    }

    /// The violations found, human-readable.
    pub fn violations(&self) -> &[String] {
        &self.violations
    }

    /// Panics with the violation list unless every invariant held.
    #[track_caller]
    pub fn assert_ok(&self) {
        assert!(self.ok(), "conformance oracle violated:\n  {}", self.violations.join("\n  "));
    }

    /// Folds another report's findings into this one.
    pub fn merge(&mut self, other: OracleReport) {
        self.violations.extend(other.violations);
    }

    fn expect(&mut self, cond: bool, msg: impl FnOnce() -> String) {
        if !cond {
            self.violations.push(msg());
        }
    }
}

/// Checks the slot-leak / counter-balance invariants against the actual
/// number of occupied lookup-table slots.
pub fn check_counters(c: &CounterSnapshot, occupancy: usize) -> OracleReport {
    let mut r = OracleReport::default();
    r.expect(c.outstanding() >= 0, || {
        format!(
            "double-free: merges + drops + evictions exceed splits \
             (outstanding {} < 0) in {c:?}",
            c.outstanding()
        )
    });
    r.expect(c.outstanding() == occupancy as i64, || {
        format!(
            "slot leak: counters imply {} parked payloads but {} slots are \
             occupied (splits {} = merges {} + explicit_drops {} + evictions {} \
             + occupied?) in {c:?}",
            c.outstanding(),
            occupancy,
            c.splits,
            c.merges,
            c.explicit_drops,
            c.evictions
        )
    });
    r
}

/// Checks that every delivered packet parses and carries valid IPv4 and
/// transport checksums — a merged packet must be byte-whole, with the
/// parked checksum restored. Not applicable to corruption scenarios (the
/// baseline delivers corrupted packets too).
pub fn check_delivered<'a>(delivered: impl IntoIterator<Item = &'a [u8]>) -> OracleReport {
    let mut r = OracleReport::default();
    for (i, bytes) in delivered.into_iter().enumerate() {
        match ParsedPacket::parse(bytes) {
            Ok(parsed) => r.expect(parsed.verify_checksums(), || {
                format!(
                    "delivered packet {i} ({}) fails checksum verification",
                    parsed.five_tuple()
                )
            }),
            Err(e) => r.violations.push(format!("delivered packet {i} does not parse: {e:?}")),
        }
    }
    r
}

/// The cluster-wide slot-leak check: the balance invariant of
/// [`check_counters`], summed over every switch of a cluster.
///
/// Per-switch balance is deliberately *not* required — rebalancing
/// migrates parked flows between switches, so one switch can hold (and
/// later reclaim) occupancy another switch's splits created, and its
/// local `outstanding()` legitimately goes negative. What must hold,
/// after every wave and across every join/leave/blackout, is the global
/// equation: Σ splits = Σ (merges + explicit_drops + evictions) +
/// Σ occupancy, with the global outstanding never negative (a duplicate
/// merge double-freeing a slot anywhere in the cluster breaks it).
pub fn check_cluster<'a>(
    per_switch: impl IntoIterator<Item = (&'a CounterSnapshot, usize)>,
) -> OracleReport {
    let mut total = CounterSnapshot::default();
    let mut occupancy = 0usize;
    let mut switches = 0usize;
    for (c, occ) in per_switch {
        total.add(c);
        occupancy += occ;
        switches += 1;
    }
    let mut r = OracleReport::default();
    r.expect(total.outstanding() >= 0, || {
        format!(
            "cluster double-free: global merges + drops + evictions exceed splits \
             (outstanding {} < 0) across {switches} switches in {total:?}",
            total.outstanding()
        )
    });
    r.expect(total.outstanding() == occupancy as i64, || {
        format!(
            "cluster slot leak: counters across {switches} switches imply {} parked \
             payloads but {occupancy} slots are occupied (Σ splits {} = Σ merges {} + \
             Σ explicit_drops {} + Σ evictions {} + occupancy?)",
            total.outstanding(),
            total.splits,
            total.merges,
            total.explicit_drops,
            total.evictions
        )
    });
    r
}

/// The full per-wave conformance check: counter balance plus delivered
/// integrity. `occupancy` is the number of occupied lookup-table slots
/// (aggregated across shards for the engine).
pub fn check_wave<'a>(
    c: &CounterSnapshot,
    occupancy: usize,
    delivered: impl IntoIterator<Item = &'a [u8]>,
) -> OracleReport {
    let mut r = check_counters(c, occupancy);
    r.merge(check_delivered(delivered));
    r
}

/// [`check_wave`] over a live scalar switch: reads the counters and
/// occupancy through its control plane.
pub fn check_switch<'a>(
    control: &PipeControl,
    switch: &SwitchModel,
    delivered: impl IntoIterator<Item = &'a [u8]>,
) -> OracleReport {
    check_wave(&control.counters(switch), control.occupancy(switch), delivered)
}

/// On violation, snapshots a flight recorder as JSONL — the forensic
/// record that accompanies a failed oracle report (the recent trace
/// events, oldest first, including the decisions taken for the offending
/// packets). Returns `None` when every invariant held or the recorder
/// captured nothing.
pub fn flight_dump(report: &OracleReport, recorder: &FlightRecorder) -> Option<String> {
    if report.ok() || recorder.is_empty() {
        return None;
    }
    Some(recorder.to_jsonl())
}

#[cfg(test)]
mod tests {
    use super::*;
    use pp_packet::builder::UdpPacketBuilder;

    fn snap(splits: u64, merges: u64, explicit: u64, evictions: u64) -> CounterSnapshot {
        CounterSnapshot {
            splits,
            merges,
            explicit_drops: explicit,
            evictions,
            ..Default::default()
        }
    }

    #[test]
    fn balanced_counters_pass() {
        // 100 splits: 60 merged, 10 explicitly dropped, 25 evicted, 5 parked.
        let r = check_counters(&snap(100, 60, 10, 25), 5);
        assert!(r.ok(), "{:?}", r.violations());
        r.assert_ok();
    }

    #[test]
    fn slot_leak_is_caught() {
        // Counters say 5 payloads are parked, but 7 slots are occupied.
        let r = check_counters(&snap(100, 60, 10, 25), 7);
        assert!(!r.ok());
        assert!(r.violations()[0].contains("slot leak"), "{:?}", r.violations());
    }

    #[test]
    fn cluster_balance_is_global_not_per_switch() {
        // Switch A split 100 flows; 30 of its parked flows migrated to B,
        // which merged 20 of them. Locally B is "negative", globally the
        // books balance: 100 = 60 + 20 (merges) + 10 (evictions) + 10 occ.
        let a = snap(100, 60, 0, 10);
        let b = snap(0, 20, 0, 0);
        let r = check_cluster([(&a, 4), (&b, 6)]);
        assert!(r.ok(), "{:?}", r.violations());

        // One leaked slot anywhere breaks the global equation.
        let r = check_cluster([(&a, 4), (&b, 7)]);
        assert!(!r.ok());
        assert!(r.violations()[0].contains("cluster slot leak"), "{:?}", r.violations());

        // A duplicate merge double-freeing on any switch shows up globally.
        let c = snap(0, 31, 0, 0);
        let r = check_cluster([(&a, 0), (&c, 0)]);
        assert!(!r.ok());
        assert!(r.violations()[0].contains("cluster double-free"), "{:?}", r.violations());
    }

    #[test]
    fn double_free_is_caught() {
        // More reclaims than splits: a duplicate merge freed a slot twice.
        let r = check_counters(&snap(10, 11, 0, 0), 0);
        assert!(!r.ok());
        assert!(r.violations()[0].contains("double-free"), "{:?}", r.violations());
    }

    #[test]
    fn delivered_integrity_checks_checksums() {
        let good = UdpPacketBuilder::new().payload(&[7u8; 64]).build().into_bytes();
        assert!(check_delivered([good.as_slice()]).ok());

        let mut bad = good.clone();
        *bad.last_mut().unwrap() ^= 0xFF;
        let r = check_delivered([good.as_slice(), bad.as_slice()]);
        assert_eq!(r.violations().len(), 1);
        assert!(r.violations()[0].contains("packet 1"), "{:?}", r.violations());

        let r = check_delivered([&[0u8; 4][..]]);
        assert!(r.violations()[0].contains("does not parse"), "{:?}", r.violations());
    }

    #[test]
    fn check_wave_merges_both_layers() {
        let bad = vec![0u8; 3];
        let r = check_wave(&snap(10, 9, 0, 0), 3, [bad.as_slice()]);
        assert_eq!(r.violations().len(), 2, "{:?}", r.violations());
    }

    #[test]
    #[should_panic(expected = "conformance oracle violated")]
    fn assert_ok_panics_on_violation() {
        check_counters(&snap(1, 2, 0, 0), 0).assert_ok();
    }

    #[test]
    fn flight_dump_only_on_violation() {
        use pp_rmt::trace::{decision, TraceEvent, TracePoint, TraceReason};
        let mut rec = FlightRecorder::with_capacity(8);
        rec.record(TraceEvent {
            seq: 77,
            port: 4,
            pipe: 0,
            point: TracePoint::Gateway,
            decision: decision::SPLIT,
            reason: TraceReason::None,
        });

        // A clean report never dumps; a violated one dumps the events.
        assert!(flight_dump(&check_counters(&snap(10, 10, 0, 0), 0), &rec).is_none());
        let bad = check_counters(&snap(10, 11, 0, 0), 0);
        let dump = flight_dump(&bad, &rec).expect("violation with events dumps");
        assert!(dump.contains("\"seq\":77"), "{dump}");
        assert!(dump.contains("split"), "{dump}");

        // A violated report with an empty recorder has nothing to dump.
        assert!(flight_dump(&bad, &FlightRecorder::with_capacity(8)).is_none());
    }
}
