//! **PayloadPark**: parking packet payloads in programmable-switch memory.
//!
//! A Rust reproduction of *"Parking Packet Payload with P4"* (Goswami,
//! Kodirov, Mustard, Beschastnikh, Seltzer — CoNEXT 2020). Shallow network
//! functions (firewalls, NATs, L4 load balancers) examine only packet
//! headers, yet whole packets — payload included — cross the link between
//! the top-of-rack switch and the NF server. PayloadPark *parks* up to 160
//! bytes of each payload (384 with recirculation) in the switch ASIC's
//! stateful SRAM, forwards only headers plus a 7-byte tag, and re-attaches
//! the payload when the processed header returns: 10-36 % more goodput and
//! 2-58 % less PCIe traffic without latency penalty, transparently to the
//! NF framework.
//!
//! The crate compiles the paper's Split (Alg. 1) and Merge (Alg. 2)
//! operations onto the [`pp_rmt`] dataplane emulator:
//!
//! * [`config`] — deployment description: which pipes/ports, how much
//!   memory (with slicing across NF servers), expiry threshold,
//!   recirculation;
//! * [`program`] — the stage-by-stage MAT program (tagger, metadata table,
//!   payload blocks striped across stages) plus [`program::build_switch`] /
//!   [`program::build_baseline_switch`];
//! * [`counters`] — the prototype's monitoring counters (§5);
//! * [`control`] — control-plane views: occupancy, counter snapshots,
//!   table clearing, the Table 1 resource report;
//! * [`oracle`] — the conformance oracle: slot-leak/counter-balance and
//!   delivered-integrity invariants that must hold after every wave, even
//!   under injected loss, reordering, duplication and truncation;
//! * [`shard`] — partitioning a deployment across parallel workers by the
//!   §6.2.4 port→slice mapping (the `pp_fastpath` engine consumes this);
//! * [`flowstore`] — the park table behind a trait: the register file's
//!   circular buffers ([`flowstore::CircularStore`]) or a sparse
//!   generational slab scaling to millions of concurrent flows
//!   ([`flowstore::SlabStore`]), with migration support for the cluster
//!   tier;
//! * [`storeprog`] — the same MAT program as [`program`], driving a
//!   [`flowstore::FlowStore`] instead of register arrays (byte- and
//!   counter-identical on the single-switch paths; `pp_cluster` builds
//!   its switches from this).
//!
//! # Quick start
//!
//! ```
//! use payloadpark::{ParkConfig, PipeControl};
//! use payloadpark::program::build_switch;
//! use pp_rmt::{ChipProfile, PortId};
//! use pp_packet::{MacAddr, UdpPacketBuilder};
//!
//! // PayloadPark on pipe 0: generator traffic on ports 0-1, NF server on 2.
//! let cfg = ParkConfig::single_server(ChipProfile::default(), vec![0, 1], 2, 4096);
//! let (mut switch, handles) = build_switch(&cfg).unwrap();
//! let control = PipeControl::new(handles[0].clone());
//!
//! // L2: the server's MAC lives on port 2.
//! let server_mac = MacAddr::from_index(100);
//! switch.l2_add(server_mac, PortId(2));
//!
//! // A 512-byte packet in: out comes a 359-byte packet (160 parked, +7 tag).
//! let pkt = UdpPacketBuilder::new().dst_mac(server_mac).total_size(512, 1).build();
//! let out = switch.process(pkt.bytes(), PortId(0), 0);
//! assert_eq!(out[0].bytes.len(), 512 - 153);
//! assert_eq!(control.counters(&switch).splits, 1);
//! ```

pub mod config;
pub mod control;
pub mod counters;
pub mod evictor;
pub mod flowstore;
pub mod jsonio;
pub mod oracle;
pub mod program;
pub mod shard;
pub mod storeprog;

pub use config::{ParkConfig, PipePark, SliceSpec, META_ENTRY_BYTES};
pub use control::PipeControl;
pub use counters::CounterSnapshot;
pub use evictor::{AdaptiveConfig, AdaptivePolicy};
pub use flowstore::{CircularStore, FlowStore, SharedStore, SlabStore};
pub use oracle::OracleReport;
pub use program::{build_baseline_switch, build_switch, BuildError, PipeHandles, MAX_CLK};
pub use shard::ShardPlan;
pub use storeprog::{build_store_switch, build_store_switch_with_bases, StoreControl};
