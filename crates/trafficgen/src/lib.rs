//! PktGen-like traffic generation.
//!
//! Reproduces the workloads of the paper's evaluation (§6.1):
//!
//! * fixed-size UDP packets (256/384/512/1024/1492 B) for the
//!   packet-size sweeps;
//! * the enterprise-datacenter packet-size distribution of Fig. 6
//!   (bimodal, mean ≈ 882 B, ~30 % of packets too small to split) modelled
//!   on Benson et al., IMC'10;
//! * replay of recorded size sequences (the PCAP-replay methodology).
//!
//! Packets are emitted in bursts at NIC line rate with inter-burst gaps
//! tuned to the target send rate — how PktGen actually paces — and carry
//! sequence numbers so receive-side metrics can correlate timestamps.

pub mod enterprise;
pub mod gen;

pub use enterprise::{EnterpriseDistribution, SizeSample};
pub use gen::{GenConfig, SizeModel, TrafficGen};
