//! The enterprise-datacenter packet-size distribution (paper Fig. 6).
//!
//! The paper replays a PCAP whose packet sizes follow the bimodal
//! enterprise-datacenter distribution reported by Benson et al. (IMC'10):
//! one mode of small (control/ACK-ish) packets, one mode near the MTU, an
//! average of 882 bytes, and ~30 % of packets whose UDP payload is below
//! PayloadPark's 160-byte minimum.
//!
//! The distribution is a piecewise-linear CDF over total wire size; within
//! a segment sizes are uniform.

use pp_netsim::rng::DetRng;

/// `(upper size bound, cumulative probability)` breakpoints. Sizes start at
/// the 42-byte header minimum. Calibrated so the mean is ≈ 882 B and
/// P(size < 202 B) = 0.30 (payload < 160 B).
const CDF: &[(f64, f64)] = &[
    (42.0, 0.00),
    (64.0, 0.06),
    (128.0, 0.18),
    (201.0, 0.30),
    (400.0, 0.35),
    (800.0, 0.39),
    (1100.0, 0.44),
    (1400.0, 0.68),
    (1492.0, 1.00),
];

/// A sampled packet size.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SizeSample {
    /// Total wire size in bytes.
    pub size: usize,
}

/// Sampler for the enterprise distribution.
#[derive(Debug, Clone)]
pub struct EnterpriseDistribution;

impl EnterpriseDistribution {
    /// The distribution's nominal mean wire size (paper: 882 bytes).
    pub const NOMINAL_MEAN: f64 = 882.0;

    /// Fraction of packets whose payload is under 160 bytes (paper: ~30 %).
    pub const SMALL_FRACTION: f64 = 0.30;

    /// Samples one packet size.
    pub fn sample(rng: &mut DetRng) -> usize {
        let u = rng.next_f64();
        Self::quantile(u)
    }

    /// The inverse CDF at probability `u` (clamped to `[0, 1)`).
    pub fn quantile(u: f64) -> usize {
        let u = u.clamp(0.0, 0.999_999);
        for w in CDF.windows(2) {
            let (lo_size, lo_p) = w[0];
            let (hi_size, hi_p) = w[1];
            if u < hi_p {
                let frac = (u - lo_p) / (hi_p - lo_p);
                return (lo_size + frac * (hi_size - lo_size)).round() as usize;
            }
        }
        CDF.last().expect("non-empty CDF").0 as usize
    }

    /// The CDF at a given size (for rendering Fig. 6).
    pub fn cdf(size: f64) -> f64 {
        if size <= CDF[0].0 {
            return 0.0;
        }
        for w in CDF.windows(2) {
            let (lo_size, lo_p) = w[0];
            let (hi_size, hi_p) = w[1];
            if size <= hi_size {
                return lo_p + (size - lo_size) / (hi_size - lo_size) * (hi_p - lo_p);
            }
        }
        1.0
    }

    /// Analytic mean of the distribution (uniform within segments).
    pub fn mean() -> f64 {
        CDF.windows(2)
            .map(|w| {
                let (lo_size, lo_p) = w[0];
                let (hi_size, hi_p) = w[1];
                (lo_size + hi_size) / 2.0 * (hi_p - lo_p)
            })
            .sum()
    }

    /// Renders the Fig. 6 series: `(size, cdf)` points at the breakpoints.
    pub fn figure_series() -> Vec<(usize, f64)> {
        CDF.iter().map(|&(s, p)| (s as usize, p)).collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn mean_is_near_882() {
        let m = EnterpriseDistribution::mean();
        assert!((m - 882.0).abs() < 25.0, "mean {m}");
    }

    #[test]
    fn thirty_percent_below_split_threshold() {
        // Packets under 202 B have payload < 160 B and are not split.
        let p = EnterpriseDistribution::cdf(201.0);
        assert!((p - 0.30).abs() < 0.005, "P(small) = {p}");
    }

    #[test]
    fn sampled_statistics_match_analytic() {
        let mut rng = DetRng::from_seed(7);
        let n = 100_000;
        let samples: Vec<usize> =
            (0..n).map(|_| EnterpriseDistribution::sample(&mut rng)).collect();
        let mean = samples.iter().sum::<usize>() as f64 / n as f64;
        assert!((mean - EnterpriseDistribution::mean()).abs() < 10.0, "mean {mean}");
        let small = samples.iter().filter(|&&s| s < 202).count() as f64 / n as f64;
        assert!((small - 0.30).abs() < 0.01, "small {small}");
        // All sizes within the legal range.
        assert!(samples.iter().all(|&s| (42..=1492).contains(&s)));
    }

    #[test]
    fn quantile_is_monotone() {
        let mut last = 0;
        for i in 0..=100 {
            let q = EnterpriseDistribution::quantile(i as f64 / 100.0);
            assert!(q >= last, "quantile not monotone at {i}");
            last = q;
        }
    }

    #[test]
    fn cdf_and_quantile_are_inverse() {
        for u in [0.05, 0.2, 0.31, 0.5, 0.75, 0.95] {
            let size = EnterpriseDistribution::quantile(u);
            let back = EnterpriseDistribution::cdf(size as f64);
            assert!((back - u).abs() < 0.01, "u {u} -> size {size} -> {back}");
        }
    }

    #[test]
    fn cdf_boundaries() {
        assert_eq!(EnterpriseDistribution::cdf(0.0), 0.0);
        assert_eq!(EnterpriseDistribution::cdf(42.0), 0.0);
        assert_eq!(EnterpriseDistribution::cdf(5000.0), 1.0);
    }

    #[test]
    fn figure_series_is_cdf_shaped() {
        let series = EnterpriseDistribution::figure_series();
        assert_eq!(series.first().unwrap().1, 0.0);
        assert_eq!(series.last().unwrap().1, 1.0);
        assert!(series.windows(2).all(|w| w[0].1 <= w[1].1 && w[0].0 <= w[1].0));
    }

    #[test]
    fn bimodality_visible() {
        // More mass in the top quartile of sizes than the middle.
        let mid = EnterpriseDistribution::cdf(1100.0) - EnterpriseDistribution::cdf(400.0);
        let top = EnterpriseDistribution::cdf(1492.0) - EnterpriseDistribution::cdf(1100.0);
        let bottom = EnterpriseDistribution::cdf(201.0);
        assert!(top > mid && bottom > mid, "top {top} mid {mid} bottom {bottom}");
    }
}
