//! The packet generator.

use crate::enterprise::EnterpriseDistribution;
use pp_netsim::rng::DetRng;
use pp_netsim::time::{Bandwidth, SimDuration, SimTime};
use pp_packet::builder::UdpPacketBuilder;
use pp_packet::{MacAddr, Packet, UDP_STACK_HEADER_LEN};
use std::net::Ipv4Addr;

/// How packet sizes are chosen.
#[derive(Debug, Clone)]
pub enum SizeModel {
    /// Every packet has this total wire size.
    Fixed(usize),
    /// Sizes follow the enterprise-datacenter distribution (Fig. 6).
    Enterprise,
    /// Replay an explicit size sequence, cycling when exhausted.
    Replay(Vec<usize>),
}

/// Generator configuration.
#[derive(Debug, Clone)]
pub struct GenConfig {
    /// Target offered rate in Gbps of wire bytes (the paper's "send rate").
    pub rate_gbps: f64,
    /// Aggregate line rate of the generator's ports; bursts serialize at
    /// this speed. The paper's generator uses two NIC ports (§6.1), so the
    /// testbed passes 2 × the per-port rate here and lets the per-port
    /// links enforce per-port serialization.
    pub line_rate_gbps: f64,
    /// Packets per burst (PktGen default-style bursting).
    pub burst: usize,
    /// Packet sizing.
    pub sizes: SizeModel,
    /// Number of distinct flows (distinct source IP/port pairs).
    pub flows: usize,
    /// Destination MAC (the NF server, for L2 forwarding).
    pub dst_mac: MacAddr,
    /// Destination IP.
    pub dst_ip: Ipv4Addr,
    /// First source IP; flows increment from here.
    pub src_ip_base: Ipv4Addr,
    /// RNG seed.
    pub seed: u64,
}

impl Default for GenConfig {
    fn default() -> Self {
        GenConfig {
            rate_gbps: 1.0,
            line_rate_gbps: 40.0,
            burst: 32,
            sizes: SizeModel::Fixed(512),
            flows: 64,
            dst_mac: MacAddr::from_index(100),
            dst_ip: Ipv4Addr::new(10, 10, 0, 1),
            src_ip_base: Ipv4Addr::new(10, 0, 0, 1),
            seed: 1,
        }
    }
}

/// A deterministic packet source.
///
/// `next_packet()` yields `(departure time, packet)` pairs forever; the
/// harness pulls as many as the experiment window needs. Departures are
/// paced in bursts: within a burst, packets leave back-to-back at line
/// rate; bursts are spaced so the long-run average hits `rate_gbps`.
pub struct TrafficGen {
    config: GenConfig,
    rng: DetRng,
    /// Time the next packet may leave.
    cursor_ns: f64,
    /// Bytes emitted in the current burst so far (packet count).
    in_burst: usize,
    /// Accumulated credit deficit: bytes sent ahead of the average rate.
    sent_bytes: u64,
    seq: u64,
    replay_idx: usize,
}

impl TrafficGen {
    /// Creates a generator.
    ///
    /// Panics on non-positive rates or rates beyond line rate — that is a
    /// mis-configured experiment.
    pub fn new(config: GenConfig) -> Self {
        assert!(config.rate_gbps > 0.0, "rate must be positive");
        assert!(
            config.rate_gbps <= config.line_rate_gbps + 1e-9,
            "rate {} beyond the generator ports' aggregate line rate {}",
            config.rate_gbps,
            config.line_rate_gbps
        );
        assert!(config.burst > 0, "burst must be positive");
        assert!(config.flows > 0, "need at least one flow");
        let rng = DetRng::derive(config.seed, "trafficgen");
        TrafficGen {
            config,
            rng,
            cursor_ns: 0.0,
            in_burst: 0,
            sent_bytes: 0,
            seq: 0,
            replay_idx: 0,
        }
    }

    /// The configuration.
    pub fn config(&self) -> &GenConfig {
        &self.config
    }

    /// Total packets generated so far.
    pub fn generated(&self) -> u64 {
        self.seq
    }

    /// Total wire bytes generated so far.
    pub fn generated_bytes(&self) -> u64 {
        self.sent_bytes
    }

    fn next_size(&mut self) -> usize {
        match &self.config.sizes {
            SizeModel::Fixed(s) => *s,
            SizeModel::Enterprise => EnterpriseDistribution::sample(&mut self.rng),
            SizeModel::Replay(sizes) => {
                let s = sizes[self.replay_idx % sizes.len()];
                self.replay_idx += 1;
                s
            }
        }
    }

    /// Produces the next `(departure, packet)`.
    pub fn next_packet(&mut self) -> (SimTime, Packet) {
        let size = self.next_size().max(UDP_STACK_HEADER_LEN);
        let seq = self.seq;
        self.seq += 1;

        // Flow selection: uniform over the pool.
        let flow = self.rng.gen_range(0, self.config.flows as u64) as u32;
        let src_ip = Ipv4Addr::from(u32::from(self.config.src_ip_base) + flow);
        let src_port = 10_000 + (flow % 50_000) as u16;

        let pkt = UdpPacketBuilder::new()
            .src_mac(MacAddr::from_index(1))
            .dst_mac(self.config.dst_mac)
            .src_ip(src_ip)
            .dst_ip(self.config.dst_ip)
            .src_port(src_port)
            .dst_port(5001)
            .ident(seq as u16)
            .total_size(size, seq ^ self.config.seed)
            .build();
        let mut pkt = pkt;
        pkt.set_seq(seq);

        // Pacing: packets within a burst go back-to-back at line rate;
        // after a burst the cursor jumps so the average matches rate_gbps.
        let t = SimTime(self.cursor_ns.round() as u64);
        let line = Bandwidth::gbps(self.config.line_rate_gbps);
        self.cursor_ns += line.serialization_delay(size).nanos() as f64;
        self.sent_bytes += size as u64;
        self.in_burst += 1;
        if self.in_burst >= self.config.burst {
            self.in_burst = 0;
            // Advance the cursor to where the average rate says we should
            // be after `sent_bytes` bytes.
            let target_ns = self.sent_bytes as f64 * 8.0 / self.config.rate_gbps;
            self.cursor_ns = self.cursor_ns.max(target_ns);
        }
        (t, pkt)
    }

    /// Generates all departures within `[0, duration)`.
    pub fn take_for(&mut self, duration: SimDuration) -> Vec<(SimTime, Packet)> {
        let mut out = Vec::new();
        loop {
            let (t, pkt) = self.next_packet();
            if t.nanos() >= duration.nanos() {
                break;
            }
            out.push((t, pkt));
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn config(rate: f64, sizes: SizeModel) -> GenConfig {
        GenConfig { rate_gbps: rate, sizes, ..Default::default() }
    }

    #[test]
    fn average_rate_matches_target() {
        let mut g = TrafficGen::new(config(10.0, SizeModel::Fixed(512)));
        let pkts = g.take_for(SimDuration::from_millis(10));
        let bytes: u64 = pkts.iter().map(|(_, p)| p.len() as u64).sum();
        let gbps = bytes as f64 * 8.0 / 10_000_000.0;
        assert!((gbps - 10.0).abs() < 0.2, "offered {gbps}");
    }

    #[test]
    fn bursts_are_line_rate_spaced() {
        let mut g = TrafficGen::new(GenConfig {
            rate_gbps: 1.0,
            line_rate_gbps: 40.0,
            burst: 4,
            sizes: SizeModel::Fixed(1000),
            ..Default::default()
        });
        let pkts = g.take_for(SimDuration::from_millis(1));
        // Within the first burst: spacing = 1000B at 40G = 200 ns.
        let d01 = pkts[1].0.nanos() - pkts[0].0.nanos();
        assert_eq!(d01, 200);
        // Between bursts: a gap much larger than line-rate spacing.
        let gap = pkts[4].0.nanos() - pkts[3].0.nanos();
        assert!(gap > 5_000, "gap {gap}");
    }

    #[test]
    fn sequences_are_consecutive_and_sizes_fixed() {
        let mut g = TrafficGen::new(config(5.0, SizeModel::Fixed(384)));
        let pkts = g.take_for(SimDuration::from_micros(100));
        for (i, (_, p)) in pkts.iter().enumerate() {
            assert_eq!(p.seq(), i as u64);
            assert_eq!(p.len(), 384);
        }
        assert!(g.generated() > 0);
        assert_eq!(g.generated_bytes() % 384, 0);
    }

    #[test]
    fn enterprise_sizes_have_right_mean() {
        let mut g = TrafficGen::new(config(20.0, SizeModel::Enterprise));
        let pkts = g.take_for(SimDuration::from_millis(5));
        let mean =
            pkts.iter().map(|(_, p)| p.len() as f64).sum::<f64>() / pkts.len() as f64;
        assert!((mean - 882.0).abs() < 40.0, "mean {mean}");
    }

    #[test]
    fn replay_cycles_sizes() {
        let mut g = TrafficGen::new(config(5.0, SizeModel::Replay(vec![100, 200, 300])));
        let (_, a) = g.next_packet();
        let (_, b) = g.next_packet();
        let (_, c) = g.next_packet();
        let (_, d) = g.next_packet();
        assert_eq!(
            (a.len(), b.len(), c.len(), d.len()),
            (100, 200, 300, 100)
        );
    }

    #[test]
    fn flows_vary_but_deterministically() {
        let run = || {
            let mut g = TrafficGen::new(config(5.0, SizeModel::Fixed(256)));
            g.take_for(SimDuration::from_micros(200))
                .into_iter()
                .map(|(_, p)| p.parse().unwrap().five_tuple().src_ip)
                .collect::<Vec<_>>()
        };
        let a = run();
        assert_eq!(a, run());
        let distinct: std::collections::HashSet<_> = a.iter().collect();
        assert!(distinct.len() > 1, "single flow only");
    }

    #[test]
    fn departures_are_monotone() {
        let mut g = TrafficGen::new(config(3.3, SizeModel::Enterprise));
        let pkts = g.take_for(SimDuration::from_millis(2));
        assert!(pkts.windows(2).all(|w| w[0].0 <= w[1].0));
    }

    #[test]
    #[should_panic(expected = "rate must be positive")]
    fn zero_rate_panics() {
        TrafficGen::new(config(0.0, SizeModel::Fixed(100)));
    }

    #[test]
    #[should_panic(expected = "beyond the generator ports")]
    fn absurd_rate_panics() {
        TrafficGen::new(config(100.0, SizeModel::Fixed(100)));
    }
}
