//! The packet generator.

use crate::enterprise::EnterpriseDistribution;
use pp_netsim::rng::DetRng;
use pp_netsim::time::{Bandwidth, SimDuration, SimTime};
use pp_packet::builder::{TcpFlags, TcpPacketBuilder, UdpPacketBuilder};
use pp_packet::{MacAddr, Packet, TCP_STACK_HEADER_LEN, UDP_STACK_HEADER_LEN};
use std::net::Ipv4Addr;

/// How packet sizes are chosen.
#[derive(Debug, Clone)]
pub enum SizeModel {
    /// Every packet has this total wire size.
    Fixed(usize),
    /// Sizes follow the enterprise-datacenter distribution (Fig. 6).
    Enterprise,
    /// Replay an explicit size sequence, cycling when exhausted.
    Replay(Vec<usize>),
}

/// Transport-protocol composition of the generated stream.
#[derive(Debug, Clone, Copy, PartialEq, Default)]
pub enum TrafficMix {
    #[default]
    /// Every packet is UDP (the paper's evaluation traffic).
    UdpOnly,
    /// An enterprise TCP/UDP mix: this fraction of the flow pool runs TCP
    /// connections with SYN/data/FIN phases (header-only control segments,
    /// data segments from the size model, cumulative sequence numbers);
    /// the remaining flows send UDP datagrams as before.
    TcpUdp {
        /// Fraction of flows that are TCP connections, in `[0, 1]`.
        tcp_fraction: f64,
    },
}

/// Per-flow TCP connection state.
#[derive(Debug, Clone, Copy, Default)]
struct TcpFlowState {
    /// Connection open (SYN already sent)?
    established: bool,
    /// Data segments left before the FIN.
    segs_left: u32,
    /// Next sequence number to send.
    next_seq: u32,
}

/// Generator configuration.
#[derive(Debug, Clone)]
pub struct GenConfig {
    /// Target offered rate in Gbps of wire bytes (the paper's "send rate").
    pub rate_gbps: f64,
    /// Aggregate line rate of the generator's ports; bursts serialize at
    /// this speed. The paper's generator uses two NIC ports (§6.1), so the
    /// testbed passes 2 × the per-port rate here and lets the per-port
    /// links enforce per-port serialization.
    pub line_rate_gbps: f64,
    /// Packets per burst (PktGen default-style bursting).
    pub burst: usize,
    /// Packet sizing.
    pub sizes: SizeModel,
    /// Transport-protocol mix.
    pub mix: TrafficMix,
    /// Number of distinct flows (distinct source IP/port pairs).
    pub flows: usize,
    /// Destination MAC (the NF server, for L2 forwarding).
    pub dst_mac: MacAddr,
    /// Destination IP.
    pub dst_ip: Ipv4Addr,
    /// First source IP; flows increment from here.
    pub src_ip_base: Ipv4Addr,
    /// RNG seed.
    pub seed: u64,
}

impl Default for GenConfig {
    fn default() -> Self {
        GenConfig {
            rate_gbps: 1.0,
            line_rate_gbps: 40.0,
            burst: 32,
            sizes: SizeModel::Fixed(512),
            mix: TrafficMix::UdpOnly,
            flows: 64,
            dst_mac: MacAddr::from_index(100),
            dst_ip: Ipv4Addr::new(10, 10, 0, 1),
            src_ip_base: Ipv4Addr::new(10, 0, 0, 1),
            seed: 1,
        }
    }
}

/// A deterministic packet source.
///
/// `next_packet()` yields `(departure time, packet)` pairs forever; the
/// harness pulls as many as the experiment window needs. Departures are
/// paced in bursts: within a burst, packets leave back-to-back at line
/// rate; bursts are spaced so the long-run average hits `rate_gbps`.
pub struct TrafficGen {
    config: GenConfig,
    rng: DetRng,
    /// Time the next packet may leave.
    cursor_ns: f64,
    /// Bytes emitted in the current burst so far (packet count).
    in_burst: usize,
    /// Accumulated credit deficit: bytes sent ahead of the average rate.
    sent_bytes: u64,
    seq: u64,
    replay_idx: usize,
    /// Number of TCP flows (flow ids below this run TCP connections).
    tcp_flows: usize,
    /// Per-TCP-flow connection state, indexed by flow id.
    tcp_states: Vec<TcpFlowState>,
}

impl TrafficGen {
    /// Creates a generator.
    ///
    /// Panics on non-positive rates or rates beyond line rate — that is a
    /// mis-configured experiment.
    pub fn new(config: GenConfig) -> Self {
        assert!(config.rate_gbps > 0.0, "rate must be positive");
        assert!(
            config.rate_gbps <= config.line_rate_gbps + 1e-9,
            "rate {} beyond the generator ports' aggregate line rate {}",
            config.rate_gbps,
            config.line_rate_gbps
        );
        assert!(config.burst > 0, "burst must be positive");
        assert!(config.flows > 0, "need at least one flow");
        let tcp_flows = match config.mix {
            TrafficMix::UdpOnly => 0,
            TrafficMix::TcpUdp { tcp_fraction } => {
                assert!(
                    (0.0..=1.0).contains(&tcp_fraction),
                    "tcp_fraction {tcp_fraction} out of [0, 1]"
                );
                (config.flows as f64 * tcp_fraction).round() as usize
            }
        };
        let rng = DetRng::derive(config.seed, "trafficgen");
        TrafficGen {
            config,
            rng,
            cursor_ns: 0.0,
            in_burst: 0,
            sent_bytes: 0,
            seq: 0,
            replay_idx: 0,
            tcp_flows,
            tcp_states: vec![TcpFlowState::default(); tcp_flows],
        }
    }

    /// The configuration.
    pub fn config(&self) -> &GenConfig {
        &self.config
    }

    /// Total packets generated so far.
    pub fn generated(&self) -> u64 {
        self.seq
    }

    /// Total wire bytes generated so far.
    pub fn generated_bytes(&self) -> u64 {
        self.sent_bytes
    }

    fn next_size(&mut self) -> usize {
        match &self.config.sizes {
            SizeModel::Fixed(s) => *s,
            SizeModel::Enterprise => EnterpriseDistribution::sample(&mut self.rng),
            SizeModel::Replay(sizes) => {
                let s = sizes[self.replay_idx % sizes.len()];
                self.replay_idx += 1;
                s
            }
        }
    }

    /// Builds one UDP datagram for `flow` (the original, paper-faithful
    /// workload packet).
    fn build_udp(&mut self, flow: u32, seq: u64, size: usize) -> Packet {
        let src_ip = Ipv4Addr::from(u32::from(self.config.src_ip_base) + flow);
        UdpPacketBuilder::new()
            .src_mac(MacAddr::from_index(1))
            .dst_mac(self.config.dst_mac)
            .src_ip(src_ip)
            .dst_ip(self.config.dst_ip)
            .src_port(10_000 + (flow % 50_000) as u16)
            .dst_port(5001)
            .ident(seq as u16)
            .total_size(size, seq ^ self.config.seed)
            .build()
    }

    /// Advances `flow`'s TCP connection one segment: SYN on a fresh
    /// connection, then a run of data segments sized by the size model,
    /// then FIN — after which the flow opens a new connection. Returns the
    /// built segment and its wire size.
    fn build_tcp(&mut self, flow: u32, seq: u64) -> (Packet, usize) {
        let mut st = self.tcp_states[flow as usize];
        let (payload_len, flags) = if !st.established {
            st.established = true;
            // 2-15 data segments per connection: short enterprise
            // request/response exchanges with an occasional longer pull.
            st.segs_left = 2 + self.rng.gen_range(0, 14) as u32;
            st.next_seq = (self.config.seed as u32) ^ flow.wrapping_mul(0x9E37_79B9);
            (0, TcpFlags::SYN)
        } else if st.segs_left == 0 {
            st.established = false;
            (0, TcpFlags::FIN | TcpFlags::ACK)
        } else {
            st.segs_left -= 1;
            let size = self.next_size().max(TCP_STACK_HEADER_LEN);
            (size - TCP_STACK_HEADER_LEN, TcpFlags::ACK)
        };
        let tcp_seq = st.next_seq;
        // SYN and FIN each consume one sequence number; data consumes its
        // payload length.
        let seq_consumed =
            payload_len as u32 + u32::from(flags & (TcpFlags::SYN | TcpFlags::FIN) != 0);
        st.next_seq = st.next_seq.wrapping_add(seq_consumed);
        self.tcp_states[flow as usize] = st;

        let src_ip = Ipv4Addr::from(u32::from(self.config.src_ip_base) + flow);
        let pkt = TcpPacketBuilder::new()
            .src_mac(MacAddr::from_index(1))
            .dst_mac(self.config.dst_mac)
            .src_ip(src_ip)
            .dst_ip(self.config.dst_ip)
            .src_port(10_000 + (flow % 50_000) as u16)
            .dst_port(80)
            .ident(seq as u16)
            .tcp_seq(tcp_seq)
            .flags(flags)
            .patterned_payload(payload_len, seq ^ self.config.seed)
            .build();
        (pkt, payload_len + TCP_STACK_HEADER_LEN)
    }

    /// Produces the next `(departure, packet)`.
    pub fn next_packet(&mut self) -> (SimTime, Packet) {
        let seq = self.seq;
        self.seq += 1;

        let (mut pkt, size) = match self.config.mix {
            TrafficMix::UdpOnly => {
                // Draw order (size, then flow) matches the original
                // UDP-only generator, keeping seeded streams stable.
                let size = self.next_size().max(UDP_STACK_HEADER_LEN);
                let flow = self.rng.gen_range(0, self.config.flows as u64) as u32;
                (self.build_udp(flow, seq, size), size)
            }
            TrafficMix::TcpUdp { .. } => {
                // Flow selection first: a TCP flow's size depends on its
                // connection phase.
                let flow = self.rng.gen_range(0, self.config.flows as u64) as u32;
                if (flow as usize) < self.tcp_flows {
                    self.build_tcp(flow, seq)
                } else {
                    let size = self.next_size().max(UDP_STACK_HEADER_LEN);
                    (self.build_udp(flow, seq, size), size)
                }
            }
        };
        pkt.set_seq(seq);

        // Pacing: packets within a burst go back-to-back at line rate;
        // after a burst the cursor jumps so the average matches rate_gbps.
        let t = SimTime(self.cursor_ns.round() as u64);
        let line = Bandwidth::gbps(self.config.line_rate_gbps);
        self.cursor_ns += line.serialization_delay(size).nanos() as f64;
        self.sent_bytes += size as u64;
        self.in_burst += 1;
        if self.in_burst >= self.config.burst {
            self.in_burst = 0;
            // Advance the cursor to where the average rate says we should
            // be after `sent_bytes` bytes.
            let target_ns = self.sent_bytes as f64 * 8.0 / self.config.rate_gbps;
            self.cursor_ns = self.cursor_ns.max(target_ns);
        }
        (t, pkt)
    }

    /// Generates all departures within `[0, duration)`.
    /// Exactly `count` packets with their departure times — the counted
    /// sibling of [`TrafficGen::take_for`] for wave-based rigs (the
    /// sliced testbed, the adversity matrix) that need a fixed packet
    /// budget rather than a time window.
    pub fn take_count(&mut self, count: usize) -> Vec<(SimTime, Packet)> {
        (0..count).map(|_| self.next_packet()).collect()
    }

    pub fn take_for(&mut self, duration: SimDuration) -> Vec<(SimTime, Packet)> {
        let mut out = Vec::new();
        loop {
            let (t, pkt) = self.next_packet();
            if t.nanos() >= duration.nanos() {
                break;
            }
            out.push((t, pkt));
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn config(rate: f64, sizes: SizeModel) -> GenConfig {
        GenConfig { rate_gbps: rate, sizes, ..Default::default() }
    }

    #[test]
    fn take_count_yields_exactly_n_and_matches_the_stream() {
        let mut a = TrafficGen::new(config(4.0, SizeModel::Enterprise));
        let mut b = TrafficGen::new(config(4.0, SizeModel::Enterprise));
        let counted = a.take_count(25);
        assert_eq!(counted.len(), 25);
        for (t, p) in counted {
            let (t2, p2) = b.next_packet();
            assert_eq!(t, t2);
            assert_eq!(p.bytes(), p2.bytes());
        }
        assert_eq!(a.generated(), 25);
    }

    #[test]
    fn average_rate_matches_target() {
        let mut g = TrafficGen::new(config(10.0, SizeModel::Fixed(512)));
        let pkts = g.take_for(SimDuration::from_millis(10));
        let bytes: u64 = pkts.iter().map(|(_, p)| p.len() as u64).sum();
        let gbps = bytes as f64 * 8.0 / 10_000_000.0;
        assert!((gbps - 10.0).abs() < 0.2, "offered {gbps}");
    }

    #[test]
    fn bursts_are_line_rate_spaced() {
        let mut g = TrafficGen::new(GenConfig {
            rate_gbps: 1.0,
            line_rate_gbps: 40.0,
            burst: 4,
            sizes: SizeModel::Fixed(1000),
            ..Default::default()
        });
        let pkts = g.take_for(SimDuration::from_millis(1));
        // Within the first burst: spacing = 1000B at 40G = 200 ns.
        let d01 = pkts[1].0.nanos() - pkts[0].0.nanos();
        assert_eq!(d01, 200);
        // Between bursts: a gap much larger than line-rate spacing.
        let gap = pkts[4].0.nanos() - pkts[3].0.nanos();
        assert!(gap > 5_000, "gap {gap}");
    }

    #[test]
    fn sequences_are_consecutive_and_sizes_fixed() {
        let mut g = TrafficGen::new(config(5.0, SizeModel::Fixed(384)));
        let pkts = g.take_for(SimDuration::from_micros(100));
        for (i, (_, p)) in pkts.iter().enumerate() {
            assert_eq!(p.seq(), i as u64);
            assert_eq!(p.len(), 384);
        }
        assert!(g.generated() > 0);
        assert_eq!(g.generated_bytes() % 384, 0);
    }

    #[test]
    fn enterprise_sizes_have_right_mean() {
        let mut g = TrafficGen::new(config(20.0, SizeModel::Enterprise));
        let pkts = g.take_for(SimDuration::from_millis(5));
        let mean = pkts.iter().map(|(_, p)| p.len() as f64).sum::<f64>() / pkts.len() as f64;
        assert!((mean - 882.0).abs() < 40.0, "mean {mean}");
    }

    #[test]
    fn replay_cycles_sizes() {
        let mut g = TrafficGen::new(config(5.0, SizeModel::Replay(vec![100, 200, 300])));
        let (_, a) = g.next_packet();
        let (_, b) = g.next_packet();
        let (_, c) = g.next_packet();
        let (_, d) = g.next_packet();
        assert_eq!((a.len(), b.len(), c.len(), d.len()), (100, 200, 300, 100));
    }

    #[test]
    fn flows_vary_but_deterministically() {
        let run = || {
            let mut g = TrafficGen::new(config(5.0, SizeModel::Fixed(256)));
            g.take_for(SimDuration::from_micros(200))
                .into_iter()
                .map(|(_, p)| p.parse().unwrap().five_tuple().src_ip)
                .collect::<Vec<_>>()
        };
        let a = run();
        assert_eq!(a, run());
        let distinct: std::collections::HashSet<_> = a.iter().collect();
        assert!(distinct.len() > 1, "single flow only");
    }

    #[test]
    fn departures_are_monotone() {
        let mut g = TrafficGen::new(config(3.3, SizeModel::Enterprise));
        let pkts = g.take_for(SimDuration::from_millis(2));
        assert!(pkts.windows(2).all(|w| w[0].0 <= w[1].0));
    }

    fn mixed_config(tcp_fraction: f64) -> GenConfig {
        GenConfig {
            rate_gbps: 5.0,
            sizes: SizeModel::Enterprise,
            mix: TrafficMix::TcpUdp { tcp_fraction },
            flows: 32,
            seed: 17,
            ..Default::default()
        }
    }

    #[test]
    fn mixed_wave_carries_both_transports_at_the_right_ratio() {
        let mut g = TrafficGen::new(mixed_config(0.75));
        let pkts = g.take_for(SimDuration::from_millis(4));
        assert!(pkts.len() > 500, "window too small: {}", pkts.len());
        let tcp =
            pkts.iter().filter(|(_, p)| p.parse().unwrap().five_tuple().protocol == 6).count();
        let frac = tcp as f64 / pkts.len() as f64;
        // Flows are drawn uniformly, so the packet ratio tracks the flow
        // ratio (control segments keep TCP slightly over-represented in
        // packet count relative to bytes, not count).
        assert!((frac - 0.75).abs() < 0.06, "tcp fraction {frac}");
    }

    #[test]
    fn mixed_wave_packets_all_verify_checksums() {
        let mut g = TrafficGen::new(mixed_config(0.5));
        for (_, p) in g.take_for(SimDuration::from_micros(500)) {
            assert!(p.parse().unwrap().verify_checksums(), "seq {}", p.seq());
        }
    }

    #[test]
    fn tcp_flows_cycle_syn_data_fin_with_cumulative_seq() {
        use pp_packet::{TcpFlags, TcpHeader};
        let mut g = TrafficGen::new(GenConfig {
            rate_gbps: 5.0,
            sizes: SizeModel::Enterprise,
            mix: TrafficMix::TcpUdp { tcp_fraction: 1.0 },
            flows: 1, // a single flow: its phases appear in emission order
            seed: 9,
            ..Default::default()
        });
        let pkts = g.take_for(SimDuration::from_millis(1));
        let segs: Vec<(u8, u32, usize)> = pkts
            .iter()
            .map(|(_, p)| {
                let parsed = p.parse().unwrap();
                let tcp = TcpHeader::new_checked(&p.bytes()[parsed.offsets().transport..]).unwrap();
                (tcp.flags(), tcp.seq(), parsed.udp_payload_len())
            })
            .collect();
        assert!(segs.len() > 20);
        // First segment of a connection is a bare SYN with no payload.
        assert_eq!(segs[0].0, TcpFlags::SYN);
        assert_eq!(segs[0].2, 0);
        let mut expected_seq = segs[0].1.wrapping_add(1); // SYN consumes one
        let mut fins = 0;
        let mut data_bytes = 0usize;
        for &(flags, seq, payload) in &segs[1..] {
            if flags == TcpFlags::SYN {
                // A new connection: fresh ISN.
                expected_seq = seq.wrapping_add(1);
                assert_eq!(payload, 0);
                continue;
            }
            assert_eq!(seq, expected_seq, "cumulative sequence numbers");
            expected_seq = expected_seq
                .wrapping_add(payload as u32)
                .wrapping_add(u32::from(flags & TcpFlags::FIN != 0));
            if flags & TcpFlags::FIN != 0 {
                fins += 1;
                assert_eq!(payload, 0);
            } else if payload > 0 {
                data_bytes += payload;
            }
            // Zero-payload ACK "data" segments model bare ACKs (the size
            // model sampled below the 54-byte header stack).
        }
        assert!(fins > 0, "the window must close at least one connection");
        assert!(data_bytes > 1000, "connections must move real payload");
    }

    #[test]
    fn udp_only_mix_is_default_and_pure() {
        let mut g = TrafficGen::new(config(5.0, SizeModel::Enterprise));
        assert_eq!(g.config().mix, TrafficMix::UdpOnly);
        for (_, p) in g.take_for(SimDuration::from_micros(300)) {
            assert_eq!(p.parse().unwrap().five_tuple().protocol, 17);
        }
    }

    #[test]
    #[should_panic(expected = "out of [0, 1]")]
    fn bad_tcp_fraction_panics() {
        TrafficGen::new(mixed_config(1.5));
    }

    #[test]
    #[should_panic(expected = "rate must be positive")]
    fn zero_rate_panics() {
        TrafficGen::new(config(0.0, SizeModel::Fixed(100)));
    }

    #[test]
    #[should_panic(expected = "beyond the generator ports")]
    fn absurd_rate_panics() {
        TrafficGen::new(config(100.0, SizeModel::Fixed(100)));
    }
}
