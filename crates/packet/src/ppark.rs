//! The PayloadPark header (paper Fig. 2).
//!
//! The Split operation inserts this 7-byte shim between the transport header
//! and the remaining payload; the parked payload bytes are removed from the
//! wire packet. Layout (big-endian bit order within the first byte):
//!
//! ```text
//!  0               1..2            3..4          5..6
//! +-+-+------+ +-----------+ +-------------+ +---------+
//! |E|O|ALIGN | | TBL INDEX | | GENERATION  | |   CRC   |
//! +-+-+------+ +-----------+ +-------------+ +---------+
//!  ^ ^  6b        16 bits        16 bits       16 bits
//!  | +-- OP: 0 = Merge, 1 = Explicit Drop
//!  +---- ENB: payload parked in switch memory?
//! ```
//!
//! The 48-bit TAG of the paper is the (table index, generation, CRC) triple.
//! The CRC covers the first two and lets the Merge stage reject corrupted or
//! forged tags before touching the payload table (§3.2).

use crate::crc::tag_crc;
use crate::{ParseError, Result};

/// Length of the PayloadPark header in bytes.
pub const PAYLOADPARK_HEADER_LEN: usize = 7;

/// The operation requested by a packet returning from the NF server.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum PpOpcode {
    /// Recombine the stored payload with this header (the common case).
    Merge,
    /// The NF framework dropped the packet; reclaim the slot without
    /// re-emitting a packet (§6.2.4, requires the 50-LoC framework change).
    ExplicitDrop,
}

/// The 48-bit tag identifying a parked payload.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct PpTag {
    /// Index into the metadata/payload register arrays.
    pub table_index: u16,
    /// Generation clock value captured at Split time; disambiguates a slot
    /// that was evicted and reused between Split and Merge.
    pub generation: u16,
}

impl PpTag {
    /// Computes the CRC the header should carry for this tag.
    pub fn crc(&self) -> u16 {
        tag_crc(self.table_index, self.generation)
    }
}

/// A view of a PayloadPark header.
#[derive(Debug, Clone, Copy)]
pub struct PayloadParkHeader<T: AsRef<[u8]>> {
    buffer: T,
}

impl<T: AsRef<[u8]>> PayloadParkHeader<T> {
    /// Wraps a buffer, checking only the length. Use
    /// [`PayloadParkHeader::verify_tag`] before trusting the tag.
    pub fn new_checked(buffer: T) -> Result<Self> {
        let len = buffer.as_ref().len();
        if len < PAYLOADPARK_HEADER_LEN {
            return Err(ParseError::Truncated {
                what: "payloadpark",
                need: PAYLOADPARK_HEADER_LEN,
                have: len,
            });
        }
        Ok(PayloadParkHeader { buffer })
    }

    /// Consumes the view, returning the underlying buffer.
    pub fn into_inner(self) -> T {
        self.buffer
    }

    /// The Enable bit: was the payload actually parked?
    ///
    /// Split sets this to zero when it could not store the payload (table
    /// occupied, payload under the minimum size); such packets traverse the
    /// NF chain whole and Merge only strips the header.
    pub fn enabled(&self) -> bool {
        self.buffer.as_ref()[0] & 0x80 != 0
    }

    /// The opcode bit.
    pub fn opcode(&self) -> PpOpcode {
        if self.buffer.as_ref()[0] & 0x40 != 0 {
            PpOpcode::ExplicitDrop
        } else {
            PpOpcode::Merge
        }
    }

    /// The six alignment bits (always zero in this implementation, reserved
    /// for byte-alignment as in the paper).
    pub fn align_bits(&self) -> u8 {
        self.buffer.as_ref()[0] & 0x3F
    }

    /// The tag (table index + generation); not CRC-validated.
    pub fn tag(&self) -> PpTag {
        let b = self.buffer.as_ref();
        PpTag {
            table_index: u16::from_be_bytes([b[1], b[2]]),
            generation: u16::from_be_bytes([b[3], b[4]]),
        }
    }

    /// The stored CRC field.
    pub fn crc_field(&self) -> u16 {
        let b = self.buffer.as_ref();
        u16::from_be_bytes([b[5], b[6]])
    }

    /// Returns the tag if its CRC verifies, otherwise `BadChecksum`.
    pub fn verify_tag(&self) -> Result<PpTag> {
        let tag = self.tag();
        if tag.crc() == self.crc_field() {
            Ok(tag)
        } else {
            Err(ParseError::BadChecksum { what: "payloadpark" })
        }
    }
}

impl<T: AsRef<[u8]> + AsMut<[u8]>> PayloadParkHeader<T> {
    /// Writes a complete header for a successfully parked payload.
    pub fn write_enabled(&mut self, opcode: PpOpcode, tag: PpTag) {
        let crc = tag.crc();
        let b = self.buffer.as_mut();
        b[0] = 0x80 | if opcode == PpOpcode::ExplicitDrop { 0x40 } else { 0 };
        b[1..3].copy_from_slice(&tag.table_index.to_be_bytes());
        b[3..5].copy_from_slice(&tag.generation.to_be_bytes());
        b[5..7].copy_from_slice(&crc.to_be_bytes());
    }

    /// Writes an all-zero header (Split disabled — Alg. 1 line 23).
    pub fn write_disabled(&mut self) {
        self.buffer.as_mut()[..PAYLOADPARK_HEADER_LEN].fill(0);
    }

    /// Sets the opcode bit in place (the NF framework's Explicit-Drop path
    /// flips Merge → ExplicitDrop without touching the tag).
    pub fn set_opcode(&mut self, opcode: PpOpcode) {
        let b = self.buffer.as_mut();
        match opcode {
            PpOpcode::ExplicitDrop => b[0] |= 0x40,
            PpOpcode::Merge => b[0] &= !0x40,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn header_is_seven_bytes() {
        assert_eq!(PAYLOADPARK_HEADER_LEN, 7);
    }

    #[test]
    fn enabled_roundtrip() {
        let mut buf = [0u8; PAYLOADPARK_HEADER_LEN];
        let tag = PpTag { table_index: 0x0123, generation: 0xBEEF };
        PayloadParkHeader::new_checked(&mut buf[..]).unwrap().write_enabled(PpOpcode::Merge, tag);
        let h = PayloadParkHeader::new_checked(&buf[..]).unwrap();
        assert!(h.enabled());
        assert_eq!(h.opcode(), PpOpcode::Merge);
        assert_eq!(h.align_bits(), 0);
        assert_eq!(h.tag(), tag);
        assert_eq!(h.verify_tag().unwrap(), tag);
    }

    #[test]
    fn disabled_header_is_all_zero() {
        let mut buf = [0xAAu8; PAYLOADPARK_HEADER_LEN];
        PayloadParkHeader::new_checked(&mut buf[..]).unwrap().write_disabled();
        assert_eq!(buf, [0u8; PAYLOADPARK_HEADER_LEN]);
        let h = PayloadParkHeader::new_checked(&buf[..]).unwrap();
        assert!(!h.enabled());
        assert_eq!(h.opcode(), PpOpcode::Merge);
    }

    #[test]
    fn explicit_drop_opcode() {
        let mut buf = [0u8; PAYLOADPARK_HEADER_LEN];
        let tag = PpTag { table_index: 5, generation: 9 };
        {
            let mut h = PayloadParkHeader::new_checked(&mut buf[..]).unwrap();
            h.write_enabled(PpOpcode::Merge, tag);
            h.set_opcode(PpOpcode::ExplicitDrop);
        }
        let h = PayloadParkHeader::new_checked(&buf[..]).unwrap();
        assert_eq!(h.opcode(), PpOpcode::ExplicitDrop);
        // Flipping the opcode must not invalidate the tag CRC.
        assert_eq!(h.verify_tag().unwrap(), tag);
        // And flipping back restores Merge.
        let mut h = PayloadParkHeader::new_checked(&mut buf[..]).unwrap();
        h.set_opcode(PpOpcode::Merge);
        let h = PayloadParkHeader::new_checked(&buf[..]).unwrap();
        assert_eq!(h.opcode(), PpOpcode::Merge);
    }

    #[test]
    fn corrupt_tag_fails_crc() {
        let mut buf = [0u8; PAYLOADPARK_HEADER_LEN];
        let tag = PpTag { table_index: 77, generation: 1234 };
        PayloadParkHeader::new_checked(&mut buf[..]).unwrap().write_enabled(PpOpcode::Merge, tag);
        for byte in 1..PAYLOADPARK_HEADER_LEN {
            let mut corrupted = buf;
            corrupted[byte] ^= 0x10;
            let h = PayloadParkHeader::new_checked(&corrupted[..]).unwrap();
            assert!(h.verify_tag().is_err(), "corruption at byte {byte} undetected");
        }
    }

    #[test]
    fn truncated_rejected() {
        assert!(matches!(
            PayloadParkHeader::new_checked(&[0u8; 6][..]),
            Err(ParseError::Truncated { .. })
        ));
    }
}
