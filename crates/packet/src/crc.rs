//! CRC-16/CCITT used to validate the PayloadPark tag.
//!
//! The paper's tag (Fig. 2) embeds a CRC so the switch can validate the
//! PayloadPark header before merging a stored payload with a returning
//! packet (§3.2). We use CRC-16/CCITT-FALSE (poly 0x1021, init 0xFFFF) —
//! a polynomial natively supported by Tofino hash units.

/// CRC-16/CCITT-FALSE polynomial.
pub const POLY: u16 = 0x1021;
/// CRC-16/CCITT-FALSE initial value.
pub const INIT: u16 = 0xFFFF;

/// Computes CRC-16/CCITT-FALSE over `bytes`.
pub fn crc16(bytes: &[u8]) -> u16 {
    let mut crc = INIT;
    for &b in bytes {
        crc ^= u16::from(b) << 8;
        for _ in 0..8 {
            crc = if crc & 0x8000 != 0 { (crc << 1) ^ POLY } else { crc << 1 };
        }
    }
    crc
}

/// Computes the tag CRC over the (table index, generation clock) pair.
///
/// This is the integrity check the Merge stage performs before touching the
/// payload table: a corrupted or forged tag fails this CRC and the packet is
/// handled as a non-PayloadPark packet.
pub fn tag_crc(table_index: u16, generation: u16) -> u16 {
    let mut buf = [0u8; 4];
    buf[..2].copy_from_slice(&table_index.to_be_bytes());
    buf[2..].copy_from_slice(&generation.to_be_bytes());
    crc16(&buf)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn known_vector() {
        // Standard check value for CRC-16/CCITT-FALSE("123456789").
        assert_eq!(crc16(b"123456789"), 0x29B1);
    }

    #[test]
    fn empty_is_init() {
        assert_eq!(crc16(&[]), INIT);
    }

    #[test]
    fn tag_crc_distinguishes_fields() {
        // Swapping index and generation must change the CRC (order matters).
        assert_ne!(tag_crc(1, 2), tag_crc(2, 1));
        // Different generations at the same index must differ.
        assert_ne!(tag_crc(7, 1), tag_crc(7, 2));
    }

    #[test]
    fn single_bit_flips_detected() {
        let base = tag_crc(0x1234, 0x5678);
        for bit in 0..16 {
            assert_ne!(base, tag_crc(0x1234 ^ (1 << bit), 0x5678), "index bit {bit}");
            assert_ne!(base, tag_crc(0x1234, 0x5678 ^ (1 << bit)), "gen bit {bit}");
        }
    }
}
