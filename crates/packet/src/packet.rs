//! An owned packet buffer.

use crate::parse::ParsedPacket;
use crate::Result;

/// An owned, heap-allocated packet.
///
/// The simulator passes packets by value between components; `Packet` is a
/// thin wrapper over `Vec<u8>` carrying an optional sequence number used by
/// the traffic generator to correlate transmit and receive timestamps.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Packet {
    bytes: Vec<u8>,
    /// Generator-assigned sequence number (0 when not set).
    seq: u64,
}

impl Packet {
    /// Wraps raw bytes.
    pub fn new(bytes: Vec<u8>) -> Self {
        Packet { bytes, seq: 0 }
    }

    /// Wraps raw bytes with a sequence number.
    pub fn with_seq(bytes: Vec<u8>, seq: u64) -> Self {
        Packet { bytes, seq }
    }

    /// The packet bytes.
    pub fn bytes(&self) -> &[u8] {
        &self.bytes
    }

    /// Mutable packet bytes.
    pub fn bytes_mut(&mut self) -> &mut Vec<u8> {
        &mut self.bytes
    }

    /// Consumes the packet, returning its bytes.
    pub fn into_bytes(self) -> Vec<u8> {
        self.bytes
    }

    /// On-wire length in bytes.
    pub fn len(&self) -> usize {
        self.bytes.len()
    }

    /// True when the buffer is empty.
    pub fn is_empty(&self) -> bool {
        self.bytes.is_empty()
    }

    /// The generator-assigned sequence number.
    pub fn seq(&self) -> u64 {
        self.seq
    }

    /// Overrides the sequence number.
    pub fn set_seq(&mut self, seq: u64) {
        self.seq = seq;
    }

    /// Parses the packet (Ethernet/IPv4/UDP-or-TCP).
    pub fn parse(&self) -> Result<ParsedPacket<'_>> {
        ParsedPacket::parse(&self.bytes)
    }
}

impl From<Vec<u8>> for Packet {
    fn from(bytes: Vec<u8>) -> Self {
        Packet::new(bytes)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn basic_accessors() {
        let mut p = Packet::with_seq(vec![1, 2, 3], 42);
        assert_eq!(p.len(), 3);
        assert!(!p.is_empty());
        assert_eq!(p.seq(), 42);
        p.set_seq(7);
        assert_eq!(p.seq(), 7);
        p.bytes_mut().push(4);
        assert_eq!(p.bytes(), &[1, 2, 3, 4]);
        assert_eq!(p.into_bytes(), vec![1, 2, 3, 4]);
    }

    #[test]
    fn from_vec() {
        let p: Packet = vec![9u8; 10].into();
        assert_eq!(p.len(), 10);
        assert_eq!(p.seq(), 0);
    }

    #[test]
    fn empty() {
        assert!(Packet::new(vec![]).is_empty());
    }
}
