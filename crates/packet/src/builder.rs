//! Packet construction.

use crate::ethernet::{EtherType, EthernetFrame, MacAddr, ETHERNET_HEADER_LEN};
use crate::ipv4::{IpProtocol, Ipv4Header, IPV4_HEADER_LEN};
use crate::packet::Packet;
use crate::tcp::{TcpHeader, TCP_HEADER_LEN};
use crate::udp::{UdpHeader, UDP_HEADER_LEN};
use crate::{TCP_STACK_HEADER_LEN, UDP_STACK_HEADER_LEN};
use std::net::Ipv4Addr;

/// Builds complete Ethernet/IPv4/UDP packets with valid checksums.
///
/// All fields have sensible defaults so tests can say only what they care
/// about. Sizes: the built packet is 42 bytes of headers plus the payload.
#[derive(Debug, Clone)]
pub struct UdpPacketBuilder {
    src_mac: MacAddr,
    dst_mac: MacAddr,
    src_ip: Ipv4Addr,
    dst_ip: Ipv4Addr,
    src_port: u16,
    dst_port: u16,
    ttl: u8,
    ident: u16,
    payload: Vec<u8>,
    fill_udp_checksum: bool,
}

impl Default for UdpPacketBuilder {
    fn default() -> Self {
        UdpPacketBuilder {
            src_mac: MacAddr::from_index(1),
            dst_mac: MacAddr::from_index(2),
            src_ip: Ipv4Addr::new(10, 0, 0, 1),
            dst_ip: Ipv4Addr::new(10, 0, 0, 2),
            src_port: 1000,
            dst_port: 2000,
            ttl: 64,
            ident: 0,
            payload: Vec::new(),
            fill_udp_checksum: true,
        }
    }
}

impl UdpPacketBuilder {
    /// Creates a builder with default addressing.
    pub fn new() -> Self {
        Self::default()
    }

    /// Sets the source MAC address.
    pub fn src_mac(mut self, mac: MacAddr) -> Self {
        self.src_mac = mac;
        self
    }

    /// Sets the destination MAC address.
    pub fn dst_mac(mut self, mac: MacAddr) -> Self {
        self.dst_mac = mac;
        self
    }

    /// Sets the source IPv4 address.
    pub fn src_ip(mut self, ip: Ipv4Addr) -> Self {
        self.src_ip = ip;
        self
    }

    /// Sets the destination IPv4 address.
    pub fn dst_ip(mut self, ip: Ipv4Addr) -> Self {
        self.dst_ip = ip;
        self
    }

    /// Sets the UDP source port.
    pub fn src_port(mut self, p: u16) -> Self {
        self.src_port = p;
        self
    }

    /// Sets the UDP destination port.
    pub fn dst_port(mut self, p: u16) -> Self {
        self.dst_port = p;
        self
    }

    /// Sets the IPv4 TTL.
    pub fn ttl(mut self, ttl: u8) -> Self {
        self.ttl = ttl;
        self
    }

    /// Sets the IPv4 identification field.
    pub fn ident(mut self, id: u16) -> Self {
        self.ident = id;
        self
    }

    /// Sets the UDP payload bytes.
    pub fn payload(mut self, bytes: &[u8]) -> Self {
        self.payload = bytes.to_vec();
        self
    }

    /// Sets a payload of `len` bytes with a deterministic pattern derived
    /// from `seed` — cheap, reproducible and content-checkable.
    pub fn patterned_payload(mut self, len: usize, seed: u64) -> Self {
        self.payload = pattern(len, seed);
        self
    }

    /// Sets the *total* on-wire packet size; the payload is patterned from
    /// `seed`. Panics if `size` is below the 42-byte header stack.
    ///
    /// This mirrors how the paper parameterises experiments ("384-byte
    /// packets" means total wire size, headers included).
    pub fn total_size(self, size: usize, seed: u64) -> Self {
        assert!(
            size >= UDP_STACK_HEADER_LEN,
            "packet size {size} below header stack {UDP_STACK_HEADER_LEN}"
        );
        self.patterned_payload(size - UDP_STACK_HEADER_LEN, seed)
    }

    /// Skips filling the UDP checksum (stores zero = "none").
    pub fn without_udp_checksum(mut self) -> Self {
        self.fill_udp_checksum = false;
        self
    }

    /// Builds the packet.
    pub fn build(self) -> Packet {
        let udp_len = UDP_HEADER_LEN + self.payload.len();
        let ip_len = IPV4_HEADER_LEN + udp_len;
        let total = ETHERNET_HEADER_LEN + ip_len;
        let mut bytes = vec![0u8; total];

        let mut eth = EthernetFrame::new_checked(&mut bytes[..]).expect("sized above");
        eth.set_dst(self.dst_mac);
        eth.set_src(self.src_mac);
        eth.set_ethertype(EtherType::Ipv4);

        {
            let ip_bytes = &mut bytes[ETHERNET_HEADER_LEN..];
            // Preset version/IHL and total length so the checked constructor
            // accepts the fresh buffer, then fill the remaining fields.
            ip_bytes[0] = 0x45;
            ip_bytes[2..4].copy_from_slice(&(ip_len as u16).to_be_bytes());
            let mut ip = Ipv4Header::new_checked(&mut *ip_bytes)
                .unwrap_or_else(|_| unreachable!("fresh buffer with version/ihl/len preset"));
            ip.init(self.ttl);
            ip.set_ident(self.ident);
            ip.set_protocol(IpProtocol::Udp);
            ip.set_src(self.src_ip);
            ip.set_dst(self.dst_ip);
            ip.fill_checksum();
        }

        {
            let udp_bytes = &mut bytes[ETHERNET_HEADER_LEN + IPV4_HEADER_LEN..];
            udp_bytes[4..6].copy_from_slice(&(udp_len as u16).to_be_bytes());
            let mut udp = UdpHeader::new_checked(&mut *udp_bytes).expect("length preset");
            udp.set_src_port(self.src_port);
            udp.set_dst_port(self.dst_port);
            udp.payload_mut().copy_from_slice(&self.payload);
            if self.fill_udp_checksum {
                udp.fill_checksum(u32::from(self.src_ip), u32::from(self.dst_ip));
            }
        }

        Packet::new(bytes)
    }
}

/// Builds complete Ethernet/IPv4/TCP segments with valid checksums.
///
/// The TCP sibling of [`UdpPacketBuilder`]: 54 bytes of headers (no
/// options) plus the payload. Sequence/ack numbers and flags default to a
/// plain data segment; SYN/FIN control segments set the flags explicitly.
#[derive(Debug, Clone)]
pub struct TcpPacketBuilder {
    src_mac: MacAddr,
    dst_mac: MacAddr,
    src_ip: Ipv4Addr,
    dst_ip: Ipv4Addr,
    src_port: u16,
    dst_port: u16,
    ttl: u8,
    ident: u16,
    tcp_seq: u32,
    tcp_ack: u32,
    flags: u8,
    payload: Vec<u8>,
}

impl Default for TcpPacketBuilder {
    fn default() -> Self {
        TcpPacketBuilder {
            src_mac: MacAddr::from_index(1),
            dst_mac: MacAddr::from_index(2),
            src_ip: Ipv4Addr::new(10, 0, 0, 1),
            dst_ip: Ipv4Addr::new(10, 0, 0, 2),
            src_port: 1000,
            dst_port: 2000,
            ttl: 64,
            ident: 0,
            tcp_seq: 0,
            tcp_ack: 0,
            flags: TcpFlags::ACK,
            payload: Vec::new(),
        }
    }
}

/// TCP flag bit constants (byte 13 of the header).
pub struct TcpFlags;

impl TcpFlags {
    /// FIN flag.
    pub const FIN: u8 = 0x01;
    /// SYN flag.
    pub const SYN: u8 = 0x02;
    /// RST flag.
    pub const RST: u8 = 0x04;
    /// PSH flag.
    pub const PSH: u8 = 0x08;
    /// ACK flag.
    pub const ACK: u8 = 0x10;
}

impl TcpPacketBuilder {
    /// Creates a builder with default addressing (a plain ACK data segment).
    pub fn new() -> Self {
        Self::default()
    }

    /// Sets the source MAC address.
    pub fn src_mac(mut self, mac: MacAddr) -> Self {
        self.src_mac = mac;
        self
    }

    /// Sets the destination MAC address.
    pub fn dst_mac(mut self, mac: MacAddr) -> Self {
        self.dst_mac = mac;
        self
    }

    /// Sets the source IPv4 address.
    pub fn src_ip(mut self, ip: Ipv4Addr) -> Self {
        self.src_ip = ip;
        self
    }

    /// Sets the destination IPv4 address.
    pub fn dst_ip(mut self, ip: Ipv4Addr) -> Self {
        self.dst_ip = ip;
        self
    }

    /// Sets the TCP source port.
    pub fn src_port(mut self, p: u16) -> Self {
        self.src_port = p;
        self
    }

    /// Sets the TCP destination port.
    pub fn dst_port(mut self, p: u16) -> Self {
        self.dst_port = p;
        self
    }

    /// Sets the IPv4 TTL.
    pub fn ttl(mut self, ttl: u8) -> Self {
        self.ttl = ttl;
        self
    }

    /// Sets the IPv4 identification field.
    pub fn ident(mut self, id: u16) -> Self {
        self.ident = id;
        self
    }

    /// Sets the TCP sequence number.
    pub fn tcp_seq(mut self, seq: u32) -> Self {
        self.tcp_seq = seq;
        self
    }

    /// Sets the TCP acknowledgement number.
    pub fn tcp_ack(mut self, ack: u32) -> Self {
        self.tcp_ack = ack;
        self
    }

    /// Sets the TCP flags byte (see [`TcpFlags`]).
    pub fn flags(mut self, flags: u8) -> Self {
        self.flags = flags;
        self
    }

    /// Sets the TCP payload bytes.
    pub fn payload(mut self, bytes: &[u8]) -> Self {
        self.payload = bytes.to_vec();
        self
    }

    /// Sets a payload of `len` bytes patterned from `seed`.
    pub fn patterned_payload(mut self, len: usize, seed: u64) -> Self {
        self.payload = pattern(len, seed);
        self
    }

    /// Sets the *total* on-wire packet size; the payload is patterned from
    /// `seed`. Panics if `size` is below the 54-byte header stack.
    pub fn total_size(self, size: usize, seed: u64) -> Self {
        assert!(
            size >= TCP_STACK_HEADER_LEN,
            "packet size {size} below header stack {TCP_STACK_HEADER_LEN}"
        );
        self.patterned_payload(size - TCP_STACK_HEADER_LEN, seed)
    }

    /// Builds the segment.
    pub fn build(self) -> Packet {
        let tcp_len = TCP_HEADER_LEN + self.payload.len();
        let ip_len = IPV4_HEADER_LEN + tcp_len;
        let total = ETHERNET_HEADER_LEN + ip_len;
        let mut bytes = vec![0u8; total];

        let mut eth = EthernetFrame::new_checked(&mut bytes[..]).expect("sized above");
        eth.set_dst(self.dst_mac);
        eth.set_src(self.src_mac);
        eth.set_ethertype(EtherType::Ipv4);

        {
            let ip_bytes = &mut bytes[ETHERNET_HEADER_LEN..];
            ip_bytes[0] = 0x45;
            ip_bytes[2..4].copy_from_slice(&(ip_len as u16).to_be_bytes());
            let mut ip = Ipv4Header::new_checked(&mut *ip_bytes)
                .unwrap_or_else(|_| unreachable!("fresh buffer with version/ihl/len preset"));
            ip.init(self.ttl);
            ip.set_ident(self.ident);
            ip.set_protocol(IpProtocol::Tcp);
            ip.set_src(self.src_ip);
            ip.set_dst(self.dst_ip);
            ip.fill_checksum();
        }

        {
            let tcp_bytes = &mut bytes[ETHERNET_HEADER_LEN + IPV4_HEADER_LEN..];
            tcp_bytes[12] = 5 << 4; // data offset preset for the checked view
            let mut tcp = TcpHeader::new_checked(&mut *tcp_bytes).expect("offset preset");
            tcp.init();
            tcp.set_src_port(self.src_port);
            tcp.set_dst_port(self.dst_port);
            tcp.set_seq(self.tcp_seq);
            tcp.set_ack(self.tcp_ack);
            tcp.set_flags(self.flags);
            let buf = tcp.into_inner();
            buf[TCP_HEADER_LEN..].copy_from_slice(&self.payload);
            let mut tcp = TcpHeader::new_checked(&mut *buf).expect("offset preset");
            tcp.fill_checksum(u32::from(self.src_ip), u32::from(self.dst_ip));
        }

        Packet::new(bytes)
    }
}

/// Deterministic byte pattern used for payload content checks.
///
/// Each byte is a simple function of its index and the seed so the
/// functional-equivalence test (paper §6.2.6) can verify that Split + Merge
/// restores every payload byte.
pub fn pattern(len: usize, seed: u64) -> Vec<u8> {
    let mut state = seed.wrapping_mul(0x9E3779B97F4A7C15).max(1);
    (0..len)
        .map(|i| {
            state ^= state << 13;
            state ^= state >> 7;
            state ^= state << 17;
            (state as u8).wrapping_add(i as u8)
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::parse::ParsedPacket;

    #[test]
    fn build_and_reparse() {
        let pkt = UdpPacketBuilder::new()
            .src_mac(MacAddr::from_index(7))
            .dst_mac(MacAddr::from_index(8))
            .src_ip(Ipv4Addr::new(172, 16, 0, 1))
            .dst_ip(Ipv4Addr::new(172, 16, 0, 2))
            .src_port(999)
            .dst_port(443)
            .ttl(12)
            .ident(0x1001)
            .payload(b"payloadpark")
            .build();
        let eth = EthernetFrame::new_checked(pkt.bytes()).unwrap();
        assert_eq!(eth.src(), MacAddr::from_index(7));
        assert_eq!(eth.dst(), MacAddr::from_index(8));
        let ip = Ipv4Header::new_checked(eth.payload()).unwrap();
        assert!(ip.verify_checksum());
        assert_eq!(ip.ttl(), 12);
        assert_eq!(ip.ident(), 0x1001);
        let udp = UdpHeader::new_checked(ip.payload()).unwrap();
        assert_eq!(udp.payload(), b"payloadpark");
        assert!(udp.verify_checksum(u32::from(ip.src()), u32::from(ip.dst())));
    }

    #[test]
    fn total_size_yields_exact_wire_length() {
        for size in [42usize, 64, 256, 384, 512, 1024, 1492] {
            let pkt = UdpPacketBuilder::new().total_size(size, 3).build();
            assert_eq!(pkt.len(), size);
            let parsed = ParsedPacket::parse(pkt.bytes()).unwrap();
            assert_eq!(parsed.wire_len(), size);
            assert_eq!(parsed.udp_payload_len(), size - 42);
        }
    }

    #[test]
    #[should_panic(expected = "below header stack")]
    fn total_size_below_headers_panics() {
        let _ = UdpPacketBuilder::new().total_size(41, 0);
    }

    #[test]
    fn pattern_is_deterministic_and_seed_sensitive() {
        assert_eq!(pattern(64, 5), pattern(64, 5));
        assert_ne!(pattern(64, 5), pattern(64, 6));
        assert_eq!(pattern(0, 1).len(), 0);
    }

    #[test]
    fn tcp_build_and_reparse() {
        let pkt = TcpPacketBuilder::new()
            .src_ip(Ipv4Addr::new(172, 16, 0, 1))
            .dst_ip(Ipv4Addr::new(172, 16, 0, 2))
            .src_port(443)
            .dst_port(51000)
            .tcp_seq(0x01020304)
            .tcp_ack(0x0A0B0C0D)
            .flags(TcpFlags::SYN | TcpFlags::ACK)
            .payload(b"payloadpark")
            .build();
        let eth = EthernetFrame::new_checked(pkt.bytes()).unwrap();
        let ip = Ipv4Header::new_checked(eth.payload()).unwrap();
        assert!(ip.verify_checksum());
        assert_eq!(u8::from(ip.protocol()), 6);
        let tcp = TcpHeader::new_checked(ip.payload()).unwrap();
        assert_eq!(tcp.src_port(), 443);
        assert_eq!(tcp.seq(), 0x01020304);
        assert_eq!(tcp.ack(), 0x0A0B0C0D);
        assert!(tcp.is_syn());
        assert_eq!(tcp.payload(), b"payloadpark");
        assert!(tcp.verify_checksum(u32::from(ip.src()), u32::from(ip.dst())));
    }

    #[test]
    fn tcp_total_size_yields_exact_wire_length() {
        for size in [54usize, 64, 256, 384, 512, 1024, 1492] {
            let pkt = TcpPacketBuilder::new().total_size(size, 3).build();
            assert_eq!(pkt.len(), size);
            let parsed = ParsedPacket::parse(pkt.bytes()).unwrap();
            assert_eq!(parsed.wire_len(), size);
            assert_eq!(parsed.udp_payload_len(), size - 54);
            assert_eq!(parsed.five_tuple().protocol, 6);
        }
    }

    #[test]
    #[should_panic(expected = "below header stack")]
    fn tcp_total_size_below_headers_panics() {
        let _ = TcpPacketBuilder::new().total_size(53, 0);
    }

    #[test]
    fn without_udp_checksum_stores_zero() {
        let pkt = UdpPacketBuilder::new().payload(&[1, 2, 3]).without_udp_checksum().build();
        let parsed = ParsedPacket::parse(pkt.bytes()).unwrap();
        let off = parsed.offsets().transport;
        let udp = UdpHeader::new_checked(&pkt.bytes()[off..]).unwrap();
        assert_eq!(udp.checksum_field(), 0);
        assert!(udp.verify_checksum(0, 0)); // zero means "not computed"
    }
}
