//! UDP header view.

use crate::checksum::{Checksum, PseudoHeader};
use crate::{ParseError, Result};

/// Length of a UDP header.
pub const UDP_HEADER_LEN: usize = 8;

/// A view of a UDP header plus payload.
#[derive(Debug, Clone, Copy)]
pub struct UdpHeader<T: AsRef<[u8]>> {
    buffer: T,
}

impl<T: AsRef<[u8]>> UdpHeader<T> {
    /// Wraps a buffer, validating the fixed header and length field.
    pub fn new_checked(buffer: T) -> Result<Self> {
        let len = buffer.as_ref().len();
        if len < UDP_HEADER_LEN {
            return Err(ParseError::Truncated { what: "udp", need: UDP_HEADER_LEN, have: len });
        }
        let hdr = UdpHeader { buffer };
        let field = usize::from(hdr.len_field());
        if field < UDP_HEADER_LEN {
            return Err(ParseError::Malformed { what: "udp", why: "length field < 8" });
        }
        if field > hdr.buffer.as_ref().len() {
            return Err(ParseError::Truncated { what: "udp", need: field, have: len });
        }
        Ok(hdr)
    }

    /// Consumes the view, returning the underlying buffer.
    pub fn into_inner(self) -> T {
        self.buffer
    }

    /// Source port.
    pub fn src_port(&self) -> u16 {
        let b = self.buffer.as_ref();
        u16::from_be_bytes([b[0], b[1]])
    }

    /// Destination port.
    pub fn dst_port(&self) -> u16 {
        let b = self.buffer.as_ref();
        u16::from_be_bytes([b[2], b[3]])
    }

    /// The UDP length field (header + payload).
    pub fn len_field(&self) -> u16 {
        let b = self.buffer.as_ref();
        u16::from_be_bytes([b[4], b[5]])
    }

    /// Stored checksum.
    pub fn checksum_field(&self) -> u16 {
        let b = self.buffer.as_ref();
        u16::from_be_bytes([b[6], b[7]])
    }

    /// UDP payload (bytes within the length field).
    pub fn payload(&self) -> &[u8] {
        &self.buffer.as_ref()[UDP_HEADER_LEN..usize::from(self.len_field())]
    }

    /// Verifies the UDP checksum against an IPv4 pseudo-header.
    ///
    /// A zero checksum means "not computed" and is accepted, per RFC 768.
    pub fn verify_checksum(&self, src: u32, dst: u32) -> bool {
        if self.checksum_field() == 0 {
            return true;
        }
        let seg_len = self.len_field();
        let mut c = Checksum::new();
        PseudoHeader { src, dst, protocol: 17, length: seg_len }.add_to(&mut c);
        c.add_bytes(&self.buffer.as_ref()[..usize::from(seg_len)]);
        c.finish() == 0
    }
}

impl<T: AsRef<[u8]> + AsMut<[u8]>> UdpHeader<T> {
    /// Sets the source port.
    pub fn set_src_port(&mut self, p: u16) {
        self.buffer.as_mut()[0..2].copy_from_slice(&p.to_be_bytes());
    }

    /// Sets the destination port.
    pub fn set_dst_port(&mut self, p: u16) {
        self.buffer.as_mut()[2..4].copy_from_slice(&p.to_be_bytes());
    }

    /// Sets the length field.
    pub fn set_len_field(&mut self, len: u16) {
        self.buffer.as_mut()[4..6].copy_from_slice(&len.to_be_bytes());
    }

    /// Recomputes and stores the checksum over the pseudo-header and segment.
    ///
    /// Produces 0xFFFF instead of zero, per RFC 768 (zero means "none").
    pub fn fill_checksum(&mut self, src: u32, dst: u32) {
        let seg_len = self.len_field();
        {
            let b = self.buffer.as_mut();
            b[6] = 0;
            b[7] = 0;
        }
        let mut c = Checksum::new();
        PseudoHeader { src, dst, protocol: 17, length: seg_len }.add_to(&mut c);
        c.add_bytes(&self.buffer.as_ref()[..usize::from(seg_len)]);
        let mut ck = c.finish();
        if ck == 0 {
            ck = 0xFFFF;
        }
        self.buffer.as_mut()[6..8].copy_from_slice(&ck.to_be_bytes());
    }

    /// Mutable payload.
    pub fn payload_mut(&mut self) -> &mut [u8] {
        let end = usize::from(self.len_field());
        &mut self.buffer.as_mut()[UDP_HEADER_LEN..end]
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    const SRC: u32 = 0x0A000001;
    const DST: u32 = 0x0A000002;

    fn sample() -> Vec<u8> {
        let mut buf = vec![0u8; UDP_HEADER_LEN + 4];
        let mut u = UdpHeader { buffer: &mut buf[..] };
        u.set_src_port(5353);
        u.set_dst_port(80);
        u.set_len_field(12);
        u.payload_mut().copy_from_slice(&[1, 2, 3, 4]);
        u.fill_checksum(SRC, DST);
        buf
    }

    #[test]
    fn roundtrip() {
        let buf = sample();
        let u = UdpHeader::new_checked(&buf[..]).unwrap();
        assert_eq!(u.src_port(), 5353);
        assert_eq!(u.dst_port(), 80);
        assert_eq!(u.len_field(), 12);
        assert_eq!(u.payload(), &[1, 2, 3, 4]);
        assert!(u.verify_checksum(SRC, DST));
    }

    #[test]
    fn checksum_detects_payload_corruption() {
        let mut buf = sample();
        buf[9] ^= 0x01;
        let u = UdpHeader::new_checked(&buf[..]).unwrap();
        assert!(!u.verify_checksum(SRC, DST));
    }

    #[test]
    fn checksum_detects_wrong_pseudo_header() {
        let buf = sample();
        let u = UdpHeader::new_checked(&buf[..]).unwrap();
        assert!(!u.verify_checksum(SRC, DST + 1));
    }

    #[test]
    fn zero_checksum_accepted() {
        let mut buf = sample();
        buf[6] = 0;
        buf[7] = 0;
        let u = UdpHeader::new_checked(&buf[..]).unwrap();
        assert!(u.verify_checksum(SRC, DST));
    }

    #[test]
    fn rejects_short_buffer() {
        assert!(matches!(UdpHeader::new_checked(&[0u8; 7][..]), Err(ParseError::Truncated { .. })));
    }

    #[test]
    fn rejects_bad_length_field() {
        let mut buf = sample();
        buf[4..6].copy_from_slice(&4u16.to_be_bytes());
        assert!(matches!(UdpHeader::new_checked(&buf[..]), Err(ParseError::Malformed { .. })));
        buf[4..6].copy_from_slice(&200u16.to_be_bytes());
        assert!(matches!(UdpHeader::new_checked(&buf[..]), Err(ParseError::Truncated { .. })));
    }

    #[test]
    fn trailing_bytes_outside_len_field_ignored() {
        let mut buf = sample();
        buf.push(0x99); // ethernet padding
        let u = UdpHeader::new_checked(&buf[..]).unwrap();
        assert_eq!(u.payload(), &[1, 2, 3, 4]);
        assert!(u.verify_checksum(SRC, DST));
    }
}
