//! TCP header view.
//!
//! PayloadPark itself operates on any protocol (§7 "Decoupling boundary");
//! the evaluation uses UDP, but the NAT and load balancer NFs accept TCP
//! flows too, so a minimal TCP header view is provided.

use crate::checksum::{Checksum, PseudoHeader};
use crate::{ParseError, Result};

/// Length of a TCP header without options.
pub const TCP_HEADER_LEN: usize = 20;

/// A view of a TCP header plus payload.
#[derive(Debug, Clone, Copy)]
pub struct TcpHeader<T: AsRef<[u8]>> {
    buffer: T,
}

impl<T: AsRef<[u8]>> TcpHeader<T> {
    /// Wraps a buffer, validating the fixed header and data offset.
    pub fn new_checked(buffer: T) -> Result<Self> {
        let len = buffer.as_ref().len();
        if len < TCP_HEADER_LEN {
            return Err(ParseError::Truncated { what: "tcp", need: TCP_HEADER_LEN, have: len });
        }
        let hdr = TcpHeader { buffer };
        let off = hdr.header_len();
        if off < TCP_HEADER_LEN {
            return Err(ParseError::Malformed { what: "tcp", why: "data offset < 5" });
        }
        if off > hdr.buffer.as_ref().len() {
            return Err(ParseError::Truncated { what: "tcp", need: off, have: len });
        }
        Ok(hdr)
    }

    /// Consumes the view, returning the underlying buffer.
    pub fn into_inner(self) -> T {
        self.buffer
    }

    /// Source port.
    pub fn src_port(&self) -> u16 {
        let b = self.buffer.as_ref();
        u16::from_be_bytes([b[0], b[1]])
    }

    /// Destination port.
    pub fn dst_port(&self) -> u16 {
        let b = self.buffer.as_ref();
        u16::from_be_bytes([b[2], b[3]])
    }

    /// Sequence number.
    pub fn seq(&self) -> u32 {
        let b = self.buffer.as_ref();
        u32::from_be_bytes([b[4], b[5], b[6], b[7]])
    }

    /// Acknowledgement number.
    pub fn ack(&self) -> u32 {
        let b = self.buffer.as_ref();
        u32::from_be_bytes([b[8], b[9], b[10], b[11]])
    }

    /// Header length in bytes (data offset × 4).
    pub fn header_len(&self) -> usize {
        usize::from(self.buffer.as_ref()[12] >> 4) * 4
    }

    /// The low nibble of byte 12 (reserved bits + NS), preserved verbatim
    /// so parse ∘ deparse is the identity even on unusual packets.
    pub fn reserved_bits(&self) -> u8 {
        self.buffer.as_ref()[12] & 0x0F
    }

    /// Flags byte (CWR..FIN).
    pub fn flags(&self) -> u8 {
        self.buffer.as_ref()[13]
    }

    /// Receive window.
    pub fn window(&self) -> u16 {
        let b = self.buffer.as_ref();
        u16::from_be_bytes([b[14], b[15]])
    }

    /// Urgent pointer.
    pub fn urgent(&self) -> u16 {
        let b = self.buffer.as_ref();
        u16::from_be_bytes([b[18], b[19]])
    }

    /// Raw option bytes (empty when the data offset is 5).
    pub fn options(&self) -> &[u8] {
        &self.buffer.as_ref()[TCP_HEADER_LEN..self.header_len()]
    }

    /// True if the SYN flag is set.
    pub fn is_syn(&self) -> bool {
        self.flags() & 0x02 != 0
    }

    /// True if the FIN flag is set.
    pub fn is_fin(&self) -> bool {
        self.flags() & 0x01 != 0
    }

    /// True if the RST flag is set.
    pub fn is_rst(&self) -> bool {
        self.flags() & 0x04 != 0
    }

    /// Stored checksum.
    pub fn checksum_field(&self) -> u16 {
        let b = self.buffer.as_ref();
        u16::from_be_bytes([b[16], b[17]])
    }

    /// TCP payload (everything after the header).
    pub fn payload(&self) -> &[u8] {
        &self.buffer.as_ref()[self.header_len()..]
    }

    /// Verifies the checksum against an IPv4 pseudo-header.
    pub fn verify_checksum(&self, src: u32, dst: u32) -> bool {
        let seg = self.buffer.as_ref();
        let mut c = Checksum::new();
        PseudoHeader { src, dst, protocol: 6, length: seg.len() as u16 }.add_to(&mut c);
        c.add_bytes(seg);
        c.finish() == 0
    }
}

impl<T: AsRef<[u8]> + AsMut<[u8]>> TcpHeader<T> {
    /// Initialises data offset to 5 (no options) and clears flags.
    pub fn init(&mut self) {
        let b = self.buffer.as_mut();
        b[12] = 5 << 4;
        b[13] = 0;
        b[14..16].copy_from_slice(&0xFFFFu16.to_be_bytes()); // window
        b[16..20].copy_from_slice(&[0, 0, 0, 0]); // checksum + urgent
    }

    /// Sets the source port.
    pub fn set_src_port(&mut self, p: u16) {
        self.buffer.as_mut()[0..2].copy_from_slice(&p.to_be_bytes());
    }

    /// Sets the destination port.
    pub fn set_dst_port(&mut self, p: u16) {
        self.buffer.as_mut()[2..4].copy_from_slice(&p.to_be_bytes());
    }

    /// Sets the sequence number.
    pub fn set_seq(&mut self, v: u32) {
        self.buffer.as_mut()[4..8].copy_from_slice(&v.to_be_bytes());
    }

    /// Sets the acknowledgement number.
    pub fn set_ack(&mut self, v: u32) {
        self.buffer.as_mut()[8..12].copy_from_slice(&v.to_be_bytes());
    }

    /// Sets the flags byte.
    pub fn set_flags(&mut self, flags: u8) {
        self.buffer.as_mut()[13] = flags;
    }

    /// Recomputes and stores the checksum.
    pub fn fill_checksum(&mut self, src: u32, dst: u32) {
        {
            let b = self.buffer.as_mut();
            b[16] = 0;
            b[17] = 0;
        }
        let seg = self.buffer.as_ref();
        let mut c = Checksum::new();
        PseudoHeader { src, dst, protocol: 6, length: seg.len() as u16 }.add_to(&mut c);
        c.add_bytes(seg);
        let ck = c.finish();
        self.buffer.as_mut()[16..18].copy_from_slice(&ck.to_be_bytes());
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    const SRC: u32 = 0xC0A80001;
    const DST: u32 = 0xC0A80002;

    fn sample() -> Vec<u8> {
        let mut buf = vec![0u8; TCP_HEADER_LEN + 5];
        let mut t = TcpHeader { buffer: &mut buf[..] };
        t.init();
        t.set_src_port(443);
        t.set_dst_port(51000);
        t.set_seq(0x01020304);
        t.set_ack(0x0A0B0C0D);
        t.set_flags(0x12); // SYN|ACK
        buf[TCP_HEADER_LEN..].copy_from_slice(b"hello");
        let mut t = TcpHeader { buffer: &mut buf[..] };
        t.fill_checksum(SRC, DST);
        buf
    }

    #[test]
    fn roundtrip() {
        let buf = sample();
        let t = TcpHeader::new_checked(&buf[..]).unwrap();
        assert_eq!(t.src_port(), 443);
        assert_eq!(t.dst_port(), 51000);
        assert_eq!(t.seq(), 0x01020304);
        assert_eq!(t.ack(), 0x0A0B0C0D);
        assert!(t.is_syn());
        assert!(!t.is_fin());
        assert!(!t.is_rst());
        assert_eq!(t.payload(), b"hello");
        assert_eq!(t.window(), 0xFFFF);
        assert_eq!(t.urgent(), 0);
        assert_eq!(t.reserved_bits(), 0);
        assert!(t.options().is_empty());
        assert!(t.verify_checksum(SRC, DST));
    }

    #[test]
    fn checksum_detects_corruption() {
        let mut buf = sample();
        *buf.last_mut().unwrap() ^= 0xFF;
        let t = TcpHeader::new_checked(&buf[..]).unwrap();
        assert!(!t.verify_checksum(SRC, DST));
    }

    #[test]
    fn rejects_bad_offset() {
        let mut buf = sample();
        buf[12] = 4 << 4;
        assert!(matches!(TcpHeader::new_checked(&buf[..]), Err(ParseError::Malformed { .. })));
        buf[12] = 15 << 4;
        assert!(matches!(TcpHeader::new_checked(&buf[..]), Err(ParseError::Truncated { .. })));
    }

    #[test]
    fn rejects_short() {
        assert!(matches!(
            TcpHeader::new_checked(&[0u8; 19][..]),
            Err(ParseError::Truncated { .. })
        ));
    }

    #[test]
    fn flag_helpers() {
        let mut buf = sample();
        {
            let mut t = TcpHeader { buffer: &mut buf[..] };
            t.set_flags(0x05); // RST|FIN
        }
        let t = TcpHeader::new_checked(&buf[..]).unwrap();
        assert!(t.is_rst());
        assert!(t.is_fin());
        assert!(!t.is_syn());
    }
}
