//! One-pass packet parsing: header boundaries and the 5-tuple.
//!
//! The shallow NFs in the paper (firewall, NAT, L4 LB) operate on the
//! 5-tuple — "approximately only the first 42 bytes of the UDP packet" (§1).
//! [`ParsedPacket`] locates each header once and exposes the offsets so NFs
//! and the switch dataplane can read/modify fields without re-parsing.

use crate::ethernet::{EtherType, EthernetFrame, ETHERNET_HEADER_LEN};
use crate::ipv4::{IpProtocol, Ipv4Header};
use crate::tcp::TcpHeader;
use crate::udp::{UdpHeader, UDP_HEADER_LEN};
use crate::{ParseError, Result};
use std::net::Ipv4Addr;

/// The classic transport 5-tuple.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct FiveTuple {
    /// IPv4 source address.
    pub src_ip: Ipv4Addr,
    /// IPv4 destination address.
    pub dst_ip: Ipv4Addr,
    /// Transport source port.
    pub src_port: u16,
    /// Transport destination port.
    pub dst_port: u16,
    /// Transport protocol (6 = TCP, 17 = UDP).
    pub protocol: u8,
}

impl FiveTuple {
    /// The reverse direction of this flow.
    pub fn reversed(&self) -> FiveTuple {
        FiveTuple {
            src_ip: self.dst_ip,
            dst_ip: self.src_ip,
            src_port: self.dst_port,
            dst_port: self.src_port,
            protocol: self.protocol,
        }
    }
}

impl core::fmt::Display for FiveTuple {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        write!(
            f,
            "{}:{} -> {}:{} proto {}",
            self.src_ip, self.src_port, self.dst_ip, self.dst_port, self.protocol
        )
    }
}

/// Byte offsets of each header within a parsed packet.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct HeaderOffsets {
    /// Start of the IPv4 header (== Ethernet header length).
    pub ip: usize,
    /// Start of the transport header.
    pub transport: usize,
    /// Start of the transport payload (where Split inserts the PayloadPark
    /// header).
    pub payload: usize,
}

/// A parsed Ethernet/IPv4/{UDP,TCP} packet.
#[derive(Debug, Clone, Copy)]
pub struct ParsedPacket<'a> {
    bytes: &'a [u8],
    offsets: HeaderOffsets,
    five_tuple: FiveTuple,
    /// Total on-wire length implied by the IPv4 total-length field.
    wire_len: usize,
}

impl<'a> ParsedPacket<'a> {
    /// Parses an Ethernet II + IPv4 + UDP/TCP packet.
    pub fn parse(bytes: &'a [u8]) -> Result<Self> {
        let eth = EthernetFrame::new_checked(bytes)?;
        if eth.ethertype() != EtherType::Ipv4 {
            return Err(ParseError::WrongProtocol { what: "ethernet" });
        }
        let ip = Ipv4Header::new_checked(eth.payload())?;
        let ip_header_len = ip.header_len();
        let transport_off = ETHERNET_HEADER_LEN + ip_header_len;
        let wire_len = ETHERNET_HEADER_LEN + usize::from(ip.total_len());
        let (src_port, dst_port, transport_header_len) = match ip.protocol() {
            IpProtocol::Udp => {
                let udp = UdpHeader::new_checked(ip.payload())?;
                (udp.src_port(), udp.dst_port(), UDP_HEADER_LEN)
            }
            IpProtocol::Tcp => {
                let tcp = TcpHeader::new_checked(ip.payload())?;
                (tcp.src_port(), tcp.dst_port(), tcp.header_len())
            }
            IpProtocol::Other(_) => return Err(ParseError::WrongProtocol { what: "ipv4" }),
        };
        let five_tuple = FiveTuple {
            src_ip: ip.src(),
            dst_ip: ip.dst(),
            src_port,
            dst_port,
            protocol: ip.protocol().into(),
        };
        Ok(ParsedPacket {
            bytes,
            offsets: HeaderOffsets {
                ip: ETHERNET_HEADER_LEN,
                transport: transport_off,
                payload: transport_off + transport_header_len,
            },
            five_tuple,
            wire_len,
        })
    }

    /// The raw bytes this view was parsed from.
    pub fn bytes(&self) -> &'a [u8] {
        self.bytes
    }

    /// Header offsets.
    pub fn offsets(&self) -> HeaderOffsets {
        self.offsets
    }

    /// The transport 5-tuple.
    pub fn five_tuple(&self) -> FiveTuple {
        self.five_tuple
    }

    /// On-wire packet length (Ethernet header + IPv4 total length).
    pub fn wire_len(&self) -> usize {
        self.wire_len
    }

    /// Length of the transport payload in bytes.
    ///
    /// For UDP packets this is the quantity Split compares against the
    /// 160-byte minimum (§5): payloads smaller than the parking capacity are
    /// not split.
    pub fn udp_payload_len(&self) -> usize {
        self.wire_len.saturating_sub(self.offsets.payload)
    }

    /// The transport payload bytes.
    pub fn payload(&self) -> &'a [u8] {
        &self.bytes[self.offsets.payload..self.wire_len]
    }

    /// Stack header bytes (everything before the transport payload).
    pub fn headers(&self) -> &'a [u8] {
        &self.bytes[..self.offsets.payload]
    }

    /// Verifies both the IPv4 header checksum and the transport (UDP/TCP)
    /// checksum. A zero UDP checksum counts as valid ("not computed",
    /// RFC 768); TCP checksums are mandatory.
    pub fn verify_checksums(&self) -> bool {
        let ip = Ipv4Header::new_checked(&self.bytes[self.offsets.ip..]).expect("parsed above");
        if !ip.verify_checksum() {
            return false;
        }
        let (src, dst) = (u32::from(ip.src()), u32::from(ip.dst()));
        match ip.protocol() {
            IpProtocol::Udp => {
                UdpHeader::new_checked(ip.payload()).is_ok_and(|udp| udp.verify_checksum(src, dst))
            }
            IpProtocol::Tcp => {
                TcpHeader::new_checked(ip.payload()).is_ok_and(|tcp| tcp.verify_checksum(src, dst))
            }
            IpProtocol::Other(_) => false,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::builder::UdpPacketBuilder;

    #[test]
    fn parse_udp() {
        let pkt = UdpPacketBuilder::new()
            .src_ip(Ipv4Addr::new(10, 1, 0, 1))
            .dst_ip(Ipv4Addr::new(10, 1, 0, 2))
            .src_port(4000)
            .dst_port(53)
            .payload(&[7u8; 100])
            .build();
        let p = ParsedPacket::parse(pkt.bytes()).unwrap();
        assert_eq!(p.offsets().ip, 14);
        assert_eq!(p.offsets().transport, 34);
        assert_eq!(p.offsets().payload, 42);
        assert_eq!(p.udp_payload_len(), 100);
        assert_eq!(p.wire_len(), 142);
        assert_eq!(p.payload(), &[7u8; 100]);
        assert_eq!(p.headers().len(), 42);
        let ft = p.five_tuple();
        assert_eq!(ft.src_ip, Ipv4Addr::new(10, 1, 0, 1));
        assert_eq!(ft.dst_ip, Ipv4Addr::new(10, 1, 0, 2));
        assert_eq!(ft.src_port, 4000);
        assert_eq!(ft.dst_port, 53);
        assert_eq!(ft.protocol, 17);
    }

    #[test]
    fn verify_checksums_both_transports() {
        let udp = UdpPacketBuilder::new().payload(&[9u8; 64]).build();
        assert!(ParsedPacket::parse(udp.bytes()).unwrap().verify_checksums());
        let tcp = crate::builder::TcpPacketBuilder::new().payload(&[9u8; 64]).build();
        assert!(ParsedPacket::parse(tcp.bytes()).unwrap().verify_checksums());

        // Corrupt a payload byte: the transport checksum must catch it.
        let mut bad = udp.into_bytes();
        *bad.last_mut().unwrap() ^= 0xFF;
        assert!(!ParsedPacket::parse(&bad).unwrap().verify_checksums());

        // A zero UDP checksum means "not computed" and is accepted.
        let none = UdpPacketBuilder::new().payload(&[1, 2, 3]).without_udp_checksum().build();
        assert!(ParsedPacket::parse(none.bytes()).unwrap().verify_checksums());
    }

    #[test]
    fn five_tuple_reverse() {
        let ft = FiveTuple {
            src_ip: Ipv4Addr::new(1, 1, 1, 1),
            dst_ip: Ipv4Addr::new(2, 2, 2, 2),
            src_port: 10,
            dst_port: 20,
            protocol: 17,
        };
        let rev = ft.reversed();
        assert_eq!(rev.src_ip, ft.dst_ip);
        assert_eq!(rev.dst_port, ft.src_port);
        assert_eq!(rev.reversed(), ft);
    }

    #[test]
    fn non_ipv4_rejected() {
        let mut pkt = UdpPacketBuilder::new().payload(&[0u8; 8]).build().into_bytes();
        pkt[12..14].copy_from_slice(&0x0806u16.to_be_bytes()); // ARP
        assert!(matches!(
            ParsedPacket::parse(&pkt),
            Err(ParseError::WrongProtocol { what: "ethernet" })
        ));
    }

    #[test]
    fn non_transport_rejected() {
        let mut pkt = UdpPacketBuilder::new().payload(&[0u8; 8]).build().into_bytes();
        pkt[23] = 1; // ICMP
                     // Recompute the IP checksum so the failure is the protocol, not cksum.
        let mut ip = crate::ipv4::Ipv4Header::new_checked(&mut pkt[14..]).unwrap();
        ip.fill_checksum();
        assert!(matches!(
            ParsedPacket::parse(&pkt),
            Err(ParseError::WrongProtocol { what: "ipv4" })
        ));
    }

    #[test]
    fn five_tuple_display() {
        let ft = FiveTuple {
            src_ip: Ipv4Addr::new(10, 0, 0, 1),
            dst_ip: Ipv4Addr::new(10, 0, 0, 2),
            src_port: 1,
            dst_port: 2,
            protocol: 17,
        };
        assert_eq!(ft.to_string(), "10.0.0.1:1 -> 10.0.0.2:2 proto 17");
    }
}
