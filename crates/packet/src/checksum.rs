//! The RFC 1071 internet checksum, used by IPv4, UDP and TCP.

/// Incremental internet-checksum accumulator.
///
/// Sums 16-bit big-endian words with end-around carry. Feed header and
/// payload slices with [`Checksum::add_bytes`], then call
/// [`Checksum::finish`] to obtain the one's-complement result.
///
/// Internally the hot loop accumulates 32 bits (two 16-bit words) per step
/// into a 64-bit sum — the one's-complement sum is associative and
/// commutative, so wide-word accumulation folds to the same result as the
/// word-at-a-time definition (RFC 1071 §2 "parallel summation").
#[derive(Debug, Clone, Copy, Default)]
pub struct Checksum {
    sum: u64,
    /// A pending odd byte from a previous `add_bytes` call.
    pending: Option<u8>,
}

impl Checksum {
    /// Creates an empty accumulator.
    pub fn new() -> Self {
        Self::default()
    }

    /// Adds a byte slice to the running sum.
    ///
    /// Slices may be fed in any number of pieces; byte alignment is handled
    /// across calls, so `add_bytes(a); add_bytes(b)` equals
    /// `add_bytes(concat(a, b))`.
    pub fn add_bytes(&mut self, mut bytes: &[u8]) {
        if let Some(hi) = self.pending.take() {
            if let Some((&lo, rest)) = bytes.split_first() {
                self.add_word(u16::from_be_bytes([hi, lo]));
                bytes = rest;
            } else {
                self.pending = Some(hi);
                return;
            }
        }
        // Wide-word hot loop: fold each aligned 4-byte group as two 16-bit
        // words in one 32-bit load. A u64 accumulator absorbs the carries
        // (2^32 additions before overflow could matter — far beyond any
        // frame), so no per-step folding is needed.
        let mut quads = bytes.chunks_exact(4);
        for quad in &mut quads {
            let w = u32::from_be_bytes(quad.try_into().expect("exact chunk"));
            self.sum += u64::from(w >> 16) + u64::from(w & 0xFFFF);
        }
        bytes = quads.remainder();
        let mut chunks = bytes.chunks_exact(2);
        for chunk in &mut chunks {
            self.add_word(u16::from_be_bytes([chunk[0], chunk[1]]));
        }
        if let [odd] = chunks.remainder() {
            self.pending = Some(*odd);
        }
    }

    /// Adds a single big-endian 16-bit word.
    pub fn add_word(&mut self, word: u16) {
        self.sum += u64::from(word);
    }

    /// Adds a 32-bit value as two 16-bit words (for pseudo-header addresses).
    pub fn add_u32(&mut self, value: u32) {
        self.add_word((value >> 16) as u16);
        self.add_word(value as u16);
    }

    /// Folds carries and returns the one's-complement checksum.
    ///
    /// A trailing odd byte (if any) is padded with a zero byte, per RFC 1071.
    pub fn finish(mut self) -> u16 {
        if let Some(hi) = self.pending.take() {
            self.add_word(u16::from_be_bytes([hi, 0]));
        }
        let mut sum = self.sum;
        while sum >> 16 != 0 {
            sum = (sum & 0xFFFF) + (sum >> 16);
        }
        !(sum as u16)
    }
}

/// Computes the internet checksum of a single slice.
pub fn checksum(bytes: &[u8]) -> u16 {
    let mut c = Checksum::new();
    c.add_bytes(bytes);
    c.finish()
}

/// Verifies data that embeds its own checksum: summing everything (checksum
/// field included) must yield zero.
pub fn verify(bytes: &[u8]) -> bool {
    checksum(bytes) == 0
}

/// Pseudo-header fields shared by the UDP and TCP checksums (RFC 768 / 793).
#[derive(Debug, Clone, Copy)]
pub struct PseudoHeader {
    /// IPv4 source address.
    pub src: u32,
    /// IPv4 destination address.
    pub dst: u32,
    /// Transport protocol number (17 for UDP, 6 for TCP).
    pub protocol: u8,
    /// Transport segment length (header + payload) in bytes.
    pub length: u16,
}

impl PseudoHeader {
    /// Adds the pseudo-header words to an accumulator.
    pub fn add_to(&self, c: &mut Checksum) {
        c.add_u32(self.src);
        c.add_u32(self.dst);
        c.add_word(u16::from(self.protocol));
        c.add_word(self.length);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn rfc1071_example() {
        // Example byte sequence from RFC 1071 §3.
        let data = [0x00u8, 0x01, 0xf2, 0x03, 0xf4, 0xf5, 0xf6, 0xf7];
        let mut c = Checksum::new();
        c.add_bytes(&data);
        // The running sum before complement should be 0xddf2 after folding.
        assert_eq!(c.finish(), !0xddf2);
    }

    #[test]
    fn empty_slice_checksums_to_all_ones() {
        assert_eq!(checksum(&[]), 0xFFFF);
    }

    #[test]
    fn odd_length_pads_with_zero() {
        // [0xAB] is summed as 0xAB00.
        assert_eq!(checksum(&[0xAB]), !0xAB00);
    }

    #[test]
    fn split_feeding_matches_contiguous() {
        let data: Vec<u8> = (0u8..=255).collect();
        let whole = checksum(&data);
        for split in [0usize, 1, 2, 3, 127, 128, 255, 256] {
            let (a, b) = data.split_at(split);
            let mut c = Checksum::new();
            c.add_bytes(a);
            c.add_bytes(b);
            assert_eq!(c.finish(), whole, "split at {split}");
        }
    }

    #[test]
    fn three_way_odd_splits_match() {
        let data: Vec<u8> = (0u8..101).collect();
        let whole = checksum(&data);
        let mut c = Checksum::new();
        c.add_bytes(&data[..33]);
        c.add_bytes(&data[33..34]);
        c.add_bytes(&data[34..]);
        assert_eq!(c.finish(), whole);
    }

    #[test]
    fn verify_accepts_embedded_checksum() {
        let mut data = vec![0x45u8, 0x00, 0x00, 0x1c, 0x00, 0x00];
        let ck = checksum(&data);
        data.extend_from_slice(&ck.to_be_bytes());
        assert!(verify(&data));
        data[0] ^= 0x01;
        assert!(!verify(&data));
    }

    #[test]
    fn pseudo_header_contributes() {
        let ph = PseudoHeader { src: 0x0A000001, dst: 0x0A000002, protocol: 17, length: 8 };
        let mut c = Checksum::new();
        ph.add_to(&mut c);
        let with_ph = c.finish();
        let without_ph = Checksum::new().finish();
        assert_ne!(with_ph, without_ph);
    }
}
