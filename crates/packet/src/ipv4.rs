//! IPv4 header view with checksum support.
//!
//! Options are accepted (the IHL field is honoured) but, as in smoltcp,
//! never interpreted.

use crate::checksum::{checksum, Checksum};
use crate::{ParseError, Result};
use std::net::Ipv4Addr;

/// Length of an IPv4 header without options.
pub const IPV4_HEADER_LEN: usize = 20;

/// IP protocol numbers this reproduction understands.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum IpProtocol {
    /// TCP (6).
    Tcp,
    /// UDP (17).
    Udp,
    /// Anything else, preserved verbatim.
    Other(u8),
}

impl From<u8> for IpProtocol {
    fn from(v: u8) -> Self {
        match v {
            6 => IpProtocol::Tcp,
            17 => IpProtocol::Udp,
            other => IpProtocol::Other(other),
        }
    }
}

impl From<IpProtocol> for u8 {
    fn from(p: IpProtocol) -> u8 {
        match p {
            IpProtocol::Tcp => 6,
            IpProtocol::Udp => 17,
            IpProtocol::Other(v) => v,
        }
    }
}

/// A view of an IPv4 header (plus the bytes that follow it).
#[derive(Debug, Clone, Copy)]
pub struct Ipv4Header<T: AsRef<[u8]>> {
    buffer: T,
}

impl<T: AsRef<[u8]>> Ipv4Header<T> {
    /// Wraps a buffer, validating version, IHL and total length.
    pub fn new_checked(buffer: T) -> Result<Self> {
        let len = buffer.as_ref().len();
        if len < IPV4_HEADER_LEN {
            return Err(ParseError::Truncated { what: "ipv4", need: IPV4_HEADER_LEN, have: len });
        }
        let hdr = Ipv4Header { buffer };
        let b = hdr.buffer.as_ref();
        if b[0] >> 4 != 4 {
            return Err(ParseError::Malformed { what: "ipv4", why: "version != 4" });
        }
        let ihl = usize::from(b[0] & 0x0F) * 4;
        if ihl < IPV4_HEADER_LEN {
            return Err(ParseError::Malformed { what: "ipv4", why: "ihl < 5" });
        }
        if len < ihl {
            return Err(ParseError::Truncated { what: "ipv4", need: ihl, have: len });
        }
        let total = usize::from(hdr.total_len());
        if total < ihl {
            return Err(ParseError::Malformed {
                what: "ipv4",
                why: "total length < header length",
            });
        }
        if len < total {
            return Err(ParseError::Truncated { what: "ipv4", need: total, have: len });
        }
        Ok(hdr)
    }

    /// Consumes the view, returning the underlying buffer.
    pub fn into_inner(self) -> T {
        self.buffer
    }

    /// Header length in bytes (IHL × 4).
    pub fn header_len(&self) -> usize {
        usize::from(self.buffer.as_ref()[0] & 0x0F) * 4
    }

    /// Total datagram length (header + payload).
    pub fn total_len(&self) -> u16 {
        let b = self.buffer.as_ref();
        u16::from_be_bytes([b[2], b[3]])
    }

    /// Identification field.
    pub fn ident(&self) -> u16 {
        let b = self.buffer.as_ref();
        u16::from_be_bytes([b[4], b[5]])
    }

    /// Time-to-live.
    pub fn ttl(&self) -> u8 {
        self.buffer.as_ref()[8]
    }

    /// Transport protocol.
    pub fn protocol(&self) -> IpProtocol {
        self.buffer.as_ref()[9].into()
    }

    /// Header checksum field as stored.
    pub fn header_checksum(&self) -> u16 {
        let b = self.buffer.as_ref();
        u16::from_be_bytes([b[10], b[11]])
    }

    /// Source address.
    pub fn src(&self) -> Ipv4Addr {
        let b = self.buffer.as_ref();
        Ipv4Addr::new(b[12], b[13], b[14], b[15])
    }

    /// Destination address.
    pub fn dst(&self) -> Ipv4Addr {
        let b = self.buffer.as_ref();
        Ipv4Addr::new(b[16], b[17], b[18], b[19])
    }

    /// Returns true if the stored header checksum verifies.
    pub fn verify_checksum(&self) -> bool {
        let b = self.buffer.as_ref();
        checksum(&b[..self.header_len()]) == 0
    }

    /// The transport segment (bytes after the IPv4 header, within
    /// `total_len`).
    pub fn payload(&self) -> &[u8] {
        let start = self.header_len();
        let end = usize::from(self.total_len());
        &self.buffer.as_ref()[start..end]
    }
}

impl<T: AsRef<[u8]> + AsMut<[u8]>> Ipv4Header<T> {
    /// Initialises version=4, IHL=5, TTL and clears DSCP/flags. Use on fresh
    /// buffers before setting other fields.
    pub fn init(&mut self, ttl: u8) {
        let b = self.buffer.as_mut();
        b[0] = 0x45;
        b[1] = 0;
        b[4..8].copy_from_slice(&[0, 0, 0, 0]);
        b[8] = ttl;
    }

    /// Sets the total length field.
    pub fn set_total_len(&mut self, len: u16) {
        self.buffer.as_mut()[2..4].copy_from_slice(&len.to_be_bytes());
    }

    /// Sets the identification field.
    pub fn set_ident(&mut self, id: u16) {
        self.buffer.as_mut()[4..6].copy_from_slice(&id.to_be_bytes());
    }

    /// Sets the TTL.
    pub fn set_ttl(&mut self, ttl: u8) {
        self.buffer.as_mut()[8] = ttl;
    }

    /// Sets the transport protocol number.
    pub fn set_protocol(&mut self, p: IpProtocol) {
        self.buffer.as_mut()[9] = p.into();
    }

    /// Sets the source address.
    pub fn set_src(&mut self, a: Ipv4Addr) {
        self.buffer.as_mut()[12..16].copy_from_slice(&a.octets());
    }

    /// Sets the destination address.
    pub fn set_dst(&mut self, a: Ipv4Addr) {
        self.buffer.as_mut()[16..20].copy_from_slice(&a.octets());
    }

    /// Recomputes and stores the header checksum.
    pub fn fill_checksum(&mut self) {
        let hlen = self.header_len();
        let b = self.buffer.as_mut();
        b[10] = 0;
        b[11] = 0;
        let mut c = Checksum::new();
        c.add_bytes(&b[..hlen]);
        let ck = c.finish();
        b[10..12].copy_from_slice(&ck.to_be_bytes());
    }

    /// Mutable transport segment.
    pub fn payload_mut(&mut self) -> &mut [u8] {
        let start = self.header_len();
        let end = usize::from(self.total_len());
        &mut self.buffer.as_mut()[start..end]
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> Vec<u8> {
        let mut buf = vec![0u8; IPV4_HEADER_LEN + 8];
        {
            let mut h = Ipv4Header::new_unchecked_for_test(&mut buf);
            h.init(64);
            h.set_total_len(28);
            h.set_ident(0x4242);
            h.set_protocol(IpProtocol::Udp);
            h.set_src(Ipv4Addr::new(10, 0, 0, 1));
            h.set_dst(Ipv4Addr::new(10, 0, 0, 2));
            h.fill_checksum();
        }
        buf
    }

    impl<T: AsRef<[u8]> + AsMut<[u8]>> Ipv4Header<T> {
        /// Test helper bypassing validation (fields are about to be set).
        fn new_unchecked_for_test(buffer: T) -> Self {
            Ipv4Header { buffer }
        }
    }

    #[test]
    fn roundtrip() {
        let buf = sample();
        let h = Ipv4Header::new_checked(&buf[..]).unwrap();
        assert_eq!(h.header_len(), 20);
        assert_eq!(h.total_len(), 28);
        assert_eq!(h.ident(), 0x4242);
        assert_eq!(h.ttl(), 64);
        assert_eq!(h.protocol(), IpProtocol::Udp);
        assert_eq!(h.src(), Ipv4Addr::new(10, 0, 0, 1));
        assert_eq!(h.dst(), Ipv4Addr::new(10, 0, 0, 2));
        assert!(h.verify_checksum());
        assert_eq!(h.payload().len(), 8);
    }

    #[test]
    fn corrupt_checksum_detected() {
        let mut buf = sample();
        buf[12] ^= 0xFF; // flip a source-address byte
        let h = Ipv4Header::new_checked(&buf[..]).unwrap();
        assert!(!h.verify_checksum());
    }

    #[test]
    fn rejects_bad_version() {
        let mut buf = sample();
        buf[0] = 0x65; // version 6
        assert!(matches!(
            Ipv4Header::new_checked(&buf[..]),
            Err(ParseError::Malformed { why: "version != 4", .. })
        ));
    }

    #[test]
    fn rejects_short_ihl() {
        let mut buf = sample();
        buf[0] = 0x44; // IHL 4 => 16 bytes
        assert!(matches!(Ipv4Header::new_checked(&buf[..]), Err(ParseError::Malformed { .. })));
    }

    #[test]
    fn rejects_total_len_beyond_buffer() {
        let mut buf = sample();
        buf[2..4].copy_from_slice(&100u16.to_be_bytes());
        assert!(matches!(Ipv4Header::new_checked(&buf[..]), Err(ParseError::Truncated { .. })));
    }

    #[test]
    fn rejects_total_len_below_header() {
        let mut buf = sample();
        buf[2..4].copy_from_slice(&10u16.to_be_bytes());
        assert!(matches!(Ipv4Header::new_checked(&buf[..]), Err(ParseError::Malformed { .. })));
    }

    #[test]
    fn rejects_truncated() {
        assert!(matches!(
            Ipv4Header::new_checked(&[0u8; 10][..]),
            Err(ParseError::Truncated { .. })
        ));
    }

    #[test]
    fn protocol_roundtrip() {
        for v in [6u8, 17, 1, 0] {
            assert_eq!(u8::from(IpProtocol::from(v)), v);
        }
    }

    #[test]
    fn checksum_stable_after_mutation_and_refill() {
        let mut buf = sample();
        {
            let mut h = Ipv4Header::new_checked(&mut buf[..]).unwrap();
            h.set_dst(Ipv4Addr::new(192, 168, 1, 1));
            h.fill_checksum();
        }
        let h = Ipv4Header::new_checked(&buf[..]).unwrap();
        assert!(h.verify_checksum());
        assert_eq!(h.dst(), Ipv4Addr::new(192, 168, 1, 1));
    }
}
