//! Classic libpcap trace files (the `.pcap` format, magic 0xA1B2C3D4).
//!
//! The paper replays PCAP files to reproduce the enterprise-datacenter
//! packet-size distribution (§6.1) and validates functional equivalence by
//! diffing DPDK-pdump captures (§6.2.6). This module provides an in-memory
//! writer/reader pair for the same purposes: the workload replayer consumes
//! traces, and the equivalence test compares them byte for byte.

use crate::packet::Packet;
use crate::{ParseError, Result};
use std::io::{self, Read, Write};

const MAGIC: u32 = 0xA1B2_C3D4;
/// `MAGIC` as written by an opposite-endian host: every header field of
/// such a file must be byte-swapped on read.
const MAGIC_SWAPPED: u32 = 0xD4C3_B2A1;
const VERSION_MAJOR: u16 = 2;
const VERSION_MINOR: u16 = 4;
/// LINKTYPE_ETHERNET.
const LINKTYPE: u32 = 1;
const GLOBAL_HEADER_LEN: usize = 24;
const RECORD_HEADER_LEN: usize = 16;
/// Default capture bound, the classic tcpdump value.
pub const DEFAULT_SNAPLEN: u32 = 65535;

/// A captured packet with its timestamp.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct PcapRecord {
    /// Capture time, seconds part.
    pub ts_sec: u32,
    /// Capture time, microseconds part.
    pub ts_usec: u32,
    /// Original on-wire length. When the capture truncated the packet at
    /// the file's snaplen, this exceeds `bytes.len()`.
    pub orig_len: u32,
    /// Captured bytes (at most snaplen of the original packet).
    pub bytes: Vec<u8>,
}

impl PcapRecord {
    /// Builds an untruncated record from a packet and a nanosecond
    /// timestamp.
    pub fn from_packet(pkt: &Packet, t_nanos: u64) -> Self {
        PcapRecord {
            ts_sec: (t_nanos / 1_000_000_000) as u32,
            ts_usec: ((t_nanos % 1_000_000_000) / 1_000) as u32,
            orig_len: pkt.bytes().len().try_into().expect("packet fits a u32"),
            bytes: pkt.bytes().to_vec(),
        }
    }

    /// Whether the capture clipped this packet (caplen < on-wire length).
    pub fn truncated(&self) -> bool {
        (self.bytes.len() as u64) < u64::from(self.orig_len)
    }
}

/// Streams records into any `io::Write` as a classic pcap file.
#[derive(Debug)]
pub struct PcapWriter<W: Write> {
    sink: W,
    snaplen: u32,
    records: usize,
}

impl<W: Write> PcapWriter<W> {
    /// Creates a writer and emits the global header with the default
    /// snaplen of 65535.
    pub fn new(sink: W) -> io::Result<Self> {
        Self::with_snaplen(sink, DEFAULT_SNAPLEN)
    }

    /// Creates a writer with an explicit snaplen: records longer than
    /// `snaplen` are stored truncated, with `orig_len` preserving the
    /// on-wire length (exactly what `tcpdump -s` produces).
    pub fn with_snaplen(mut sink: W, snaplen: u32) -> io::Result<Self> {
        sink.write_all(&MAGIC.to_le_bytes())?;
        sink.write_all(&VERSION_MAJOR.to_le_bytes())?;
        sink.write_all(&VERSION_MINOR.to_le_bytes())?;
        sink.write_all(&0i32.to_le_bytes())?; // thiszone
        sink.write_all(&0u32.to_le_bytes())?; // sigfigs
        sink.write_all(&snaplen.to_le_bytes())?;
        sink.write_all(&LINKTYPE.to_le_bytes())?;
        Ok(PcapWriter { sink, snaplen, records: 0 })
    }

    /// Appends one record, clipping it to the file's snaplen. A record
    /// whose byte length does not fit the format's 32-bit length fields
    /// is rejected instead of silently wrapped.
    pub fn write_record(&mut self, rec: &PcapRecord) -> io::Result<()> {
        let full: u32 = rec.bytes.len().try_into().map_err(|_| {
            io::Error::new(io::ErrorKind::InvalidInput, "pcap record exceeds u32 length")
        })?;
        let incl = full.min(self.snaplen);
        // A record that was itself read from a truncated capture keeps
        // its original on-wire length.
        let orig = rec.orig_len.max(full);
        self.sink.write_all(&rec.ts_sec.to_le_bytes())?;
        self.sink.write_all(&rec.ts_usec.to_le_bytes())?;
        self.sink.write_all(&incl.to_le_bytes())?; // incl_len
        self.sink.write_all(&orig.to_le_bytes())?; // orig_len
        self.sink.write_all(&rec.bytes[..incl as usize])?;
        self.records += 1;
        Ok(())
    }

    /// Number of records written so far.
    pub fn record_count(&self) -> usize {
        self.records
    }

    /// Flushes and returns the sink.
    pub fn finish(mut self) -> io::Result<W> {
        self.sink.flush()?;
        Ok(self.sink)
    }
}

/// Reads a classic pcap file fully into memory.
#[derive(Debug)]
pub struct PcapReader {
    records: Vec<PcapRecord>,
}

impl PcapReader {
    /// Parses an entire pcap stream.
    pub fn read_all<R: Read>(mut source: R) -> Result<Self> {
        let mut data = Vec::new();
        source
            .read_to_end(&mut data)
            .map_err(|_| ParseError::Malformed { what: "pcap", why: "io error" })?;
        Self::parse(&data)
    }

    /// Parses an in-memory pcap image. Files written by an opposite-endian
    /// host (swapped magic) are byte-swapped transparently.
    pub fn parse(data: &[u8]) -> Result<Self> {
        if data.len() < GLOBAL_HEADER_LEN {
            return Err(ParseError::Truncated {
                what: "pcap",
                need: GLOBAL_HEADER_LEN,
                have: data.len(),
            });
        }
        let magic = u32::from_le_bytes([data[0], data[1], data[2], data[3]]);
        let swapped = match magic {
            MAGIC => false,
            MAGIC_SWAPPED => true,
            _ => return Err(ParseError::Malformed { what: "pcap", why: "bad magic" }),
        };
        let read32 = |off: usize| -> u32 {
            let raw: [u8; 4] = data[off..off + 4].try_into().expect("4 bytes");
            if swapped {
                u32::from_be_bytes(raw)
            } else {
                u32::from_le_bytes(raw)
            }
        };
        if read32(20) != LINKTYPE {
            return Err(ParseError::Malformed { what: "pcap", why: "not ethernet linktype" });
        }
        let mut records = Vec::new();
        let mut off = GLOBAL_HEADER_LEN;
        while off < data.len() {
            if data.len() - off < RECORD_HEADER_LEN {
                return Err(ParseError::Truncated {
                    what: "pcap record",
                    need: RECORD_HEADER_LEN,
                    have: data.len() - off,
                });
            }
            let ts_sec = read32(off);
            let ts_usec = read32(off + 4);
            let incl = read32(off + 8);
            let orig_len = read32(off + 12);
            if incl > orig_len {
                return Err(ParseError::Malformed {
                    what: "pcap record",
                    why: "caplen exceeds packet length",
                });
            }
            off += RECORD_HEADER_LEN;
            let incl = incl as usize;
            if data.len() - off < incl {
                return Err(ParseError::Truncated {
                    what: "pcap record",
                    need: incl,
                    have: data.len() - off,
                });
            }
            records.push(PcapRecord {
                ts_sec,
                ts_usec,
                orig_len,
                bytes: data[off..off + incl].to_vec(),
            });
            off += incl;
        }
        Ok(PcapReader { records })
    }

    /// The parsed records.
    pub fn records(&self) -> &[PcapRecord] {
        &self.records
    }

    /// Consumes the reader, yielding the records.
    pub fn into_records(self) -> Vec<PcapRecord> {
        self.records
    }
}

/// Compares two captures for byte-identical packet sequences, ignoring
/// timestamps — the functional-equivalence check of §6.2.6.
pub fn captures_identical(a: &[PcapRecord], b: &[PcapRecord]) -> bool {
    a.len() == b.len() && a.iter().zip(b).all(|(x, y)| x.bytes == y.bytes)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::builder::UdpPacketBuilder;

    fn sample_records() -> Vec<PcapRecord> {
        (0..5)
            .map(|i| {
                let pkt = UdpPacketBuilder::new().total_size(64 + i * 10, i as u64).build();
                PcapRecord::from_packet(&pkt, 1_500_000_000 * i as u64)
            })
            .collect()
    }

    #[test]
    fn write_read_roundtrip() {
        let records = sample_records();
        let mut w = PcapWriter::new(Vec::new()).unwrap();
        for r in &records {
            w.write_record(r).unwrap();
        }
        assert_eq!(w.record_count(), 5);
        let bytes = w.finish().unwrap();
        let reader = PcapReader::parse(&bytes).unwrap();
        assert_eq!(reader.records(), &records[..]);
    }

    #[test]
    fn timestamp_conversion() {
        let pkt = UdpPacketBuilder::new().payload(&[0; 4]).build();
        let r = PcapRecord::from_packet(&pkt, 3_000_123_456);
        assert_eq!(r.ts_sec, 3);
        assert_eq!(r.ts_usec, 123); // truncated to µs
    }

    #[test]
    fn rejects_bad_magic() {
        let mut w = PcapWriter::new(Vec::new()).unwrap();
        w.write_record(&sample_records()[0]).unwrap();
        let mut bytes = w.finish().unwrap();
        bytes[0] ^= 0xFF;
        assert!(matches!(
            PcapReader::parse(&bytes),
            Err(ParseError::Malformed { why: "bad magic", .. })
        ));
    }

    #[test]
    fn rejects_truncated_record() {
        let mut w = PcapWriter::new(Vec::new()).unwrap();
        w.write_record(&sample_records()[0]).unwrap();
        let bytes = w.finish().unwrap();
        let cut = &bytes[..bytes.len() - 3];
        assert!(matches!(PcapReader::parse(cut), Err(ParseError::Truncated { .. })));
    }

    #[test]
    fn captures_identical_ignores_timestamps() {
        let a = sample_records();
        let mut b = a.clone();
        for r in &mut b {
            r.ts_sec += 100;
        }
        assert!(captures_identical(&a, &b));
        b[2].bytes[0] ^= 1;
        assert!(!captures_identical(&a, &b));
        assert!(!captures_identical(&a, &b[..4]));
    }

    #[test]
    fn empty_capture_roundtrip() {
        let w = PcapWriter::new(Vec::new()).unwrap();
        let bytes = w.finish().unwrap();
        let r = PcapReader::parse(&bytes).unwrap();
        assert!(r.records().is_empty());
    }

    /// Regression: the writer used to declare snaplen 65535 yet store
    /// every record full-length with incl_len == orig_len, so a capture
    /// with an explicit snaplen lied about truncation. Clipped records
    /// now carry the real on-wire length in orig_len.
    #[test]
    fn snaplen_truncates_and_preserves_orig_len() {
        let records = sample_records();
        let long = records.iter().map(|r| r.bytes.len()).max().unwrap();
        let snap = (long - 10) as u32;
        let mut w = PcapWriter::with_snaplen(Vec::new(), snap).unwrap();
        for r in &records {
            w.write_record(r).unwrap();
        }
        let bytes = w.finish().unwrap();
        let rt = PcapReader::parse(&bytes).unwrap().into_records();
        assert_eq!(rt.len(), records.len());
        for (orig, got) in records.iter().zip(&rt) {
            assert_eq!(got.orig_len as usize, orig.bytes.len());
            let expect = orig.bytes.len().min(snap as usize);
            assert_eq!(got.bytes, orig.bytes[..expect]);
            assert_eq!(got.truncated(), orig.bytes.len() > snap as usize);
            assert_eq!((got.ts_sec, got.ts_usec), (orig.ts_sec, orig.ts_usec));
        }
        assert!(rt.iter().any(PcapRecord::truncated), "snaplen must clip the longest record");
        // Re-writing a truncated record under a roomier snaplen keeps the
        // original on-wire length instead of shrinking it to the caplen.
        let mut w2 = PcapWriter::new(Vec::new()).unwrap();
        for r in &rt {
            w2.write_record(r).unwrap();
        }
        let rt2 = PcapReader::parse(&w2.finish().unwrap()).unwrap().into_records();
        assert_eq!(rt2, rt);
    }

    #[test]
    fn rejects_caplen_beyond_packet_length() {
        let mut w = PcapWriter::new(Vec::new()).unwrap();
        w.write_record(&sample_records()[0]).unwrap();
        let mut bytes = w.finish().unwrap();
        // Shrink orig_len (offset 36 = 24 global + 12) below incl_len.
        bytes[GLOBAL_HEADER_LEN + 12..GLOBAL_HEADER_LEN + 16].copy_from_slice(&1u32.to_le_bytes());
        assert!(matches!(
            PcapReader::parse(&bytes),
            Err(ParseError::Malformed { why: "caplen exceeds packet length", .. })
        ));
    }

    /// Regression: the reader rejected captures written on an
    /// opposite-endian host outright. A swapped magic now byte-swaps
    /// every header field.
    #[test]
    fn reads_opposite_endian_captures() {
        let records = sample_records();
        let mut w = PcapWriter::new(Vec::new()).unwrap();
        for r in &records {
            w.write_record(r).unwrap();
        }
        let le = w.finish().unwrap();
        // Byte-swap every header field to fabricate the big-endian file.
        let swap32 = |out: &mut Vec<u8>, src: &[u8]| out.extend(src[..4].iter().rev());
        let mut be = Vec::with_capacity(le.len());
        swap32(&mut be, &le[0..]); // magic
        be.extend_from_slice(&[le[5], le[4], le[7], le[6]]); // two u16 versions
        for field in 2..6 {
            swap32(&mut be, &le[field * 4..]); // thiszone..linktype
        }
        let mut off = GLOBAL_HEADER_LEN;
        while off < le.len() {
            for field in 0..4 {
                swap32(&mut be, &le[off + field * 4..]);
            }
            let incl = u32::from_le_bytes(le[off + 8..off + 12].try_into().unwrap()) as usize;
            off += RECORD_HEADER_LEN;
            be.extend_from_slice(&le[off..off + incl]);
            off += incl;
        }
        let rt = PcapReader::parse(&be).unwrap().into_records();
        assert_eq!(rt, records);
    }
}
