//! Classic libpcap trace files (the `.pcap` format, magic 0xA1B2C3D4).
//!
//! The paper replays PCAP files to reproduce the enterprise-datacenter
//! packet-size distribution (§6.1) and validates functional equivalence by
//! diffing DPDK-pdump captures (§6.2.6). This module provides an in-memory
//! writer/reader pair for the same purposes: the workload replayer consumes
//! traces, and the equivalence test compares them byte for byte.

use crate::packet::Packet;
use crate::{ParseError, Result};
use std::io::{self, Read, Write};

const MAGIC: u32 = 0xA1B2_C3D4;
const VERSION_MAJOR: u16 = 2;
const VERSION_MINOR: u16 = 4;
/// LINKTYPE_ETHERNET.
const LINKTYPE: u32 = 1;
const GLOBAL_HEADER_LEN: usize = 24;
const RECORD_HEADER_LEN: usize = 16;

/// A captured packet with its timestamp.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct PcapRecord {
    /// Capture time, seconds part.
    pub ts_sec: u32,
    /// Capture time, microseconds part.
    pub ts_usec: u32,
    /// Packet bytes (we never truncate, so caplen == len).
    pub bytes: Vec<u8>,
}

impl PcapRecord {
    /// Builds a record from a packet and a nanosecond timestamp.
    pub fn from_packet(pkt: &Packet, t_nanos: u64) -> Self {
        PcapRecord {
            ts_sec: (t_nanos / 1_000_000_000) as u32,
            ts_usec: ((t_nanos % 1_000_000_000) / 1_000) as u32,
            bytes: pkt.bytes().to_vec(),
        }
    }
}

/// Streams records into any `io::Write` as a classic pcap file.
#[derive(Debug)]
pub struct PcapWriter<W: Write> {
    sink: W,
    records: usize,
}

impl<W: Write> PcapWriter<W> {
    /// Creates a writer and emits the global header (snaplen 65535).
    pub fn new(mut sink: W) -> io::Result<Self> {
        sink.write_all(&MAGIC.to_le_bytes())?;
        sink.write_all(&VERSION_MAJOR.to_le_bytes())?;
        sink.write_all(&VERSION_MINOR.to_le_bytes())?;
        sink.write_all(&0i32.to_le_bytes())?; // thiszone
        sink.write_all(&0u32.to_le_bytes())?; // sigfigs
        sink.write_all(&65535u32.to_le_bytes())?; // snaplen
        sink.write_all(&LINKTYPE.to_le_bytes())?;
        Ok(PcapWriter { sink, records: 0 })
    }

    /// Appends one record.
    pub fn write_record(&mut self, rec: &PcapRecord) -> io::Result<()> {
        let len = rec.bytes.len() as u32;
        self.sink.write_all(&rec.ts_sec.to_le_bytes())?;
        self.sink.write_all(&rec.ts_usec.to_le_bytes())?;
        self.sink.write_all(&len.to_le_bytes())?; // incl_len
        self.sink.write_all(&len.to_le_bytes())?; // orig_len
        self.sink.write_all(&rec.bytes)?;
        self.records += 1;
        Ok(())
    }

    /// Number of records written so far.
    pub fn record_count(&self) -> usize {
        self.records
    }

    /// Flushes and returns the sink.
    pub fn finish(mut self) -> io::Result<W> {
        self.sink.flush()?;
        Ok(self.sink)
    }
}

/// Reads a classic pcap file fully into memory.
#[derive(Debug)]
pub struct PcapReader {
    records: Vec<PcapRecord>,
}

impl PcapReader {
    /// Parses an entire pcap stream.
    pub fn read_all<R: Read>(mut source: R) -> Result<Self> {
        let mut data = Vec::new();
        source
            .read_to_end(&mut data)
            .map_err(|_| ParseError::Malformed { what: "pcap", why: "io error" })?;
        Self::parse(&data)
    }

    /// Parses an in-memory pcap image.
    pub fn parse(data: &[u8]) -> Result<Self> {
        if data.len() < GLOBAL_HEADER_LEN {
            return Err(ParseError::Truncated {
                what: "pcap",
                need: GLOBAL_HEADER_LEN,
                have: data.len(),
            });
        }
        let magic = u32::from_le_bytes([data[0], data[1], data[2], data[3]]);
        if magic != MAGIC {
            return Err(ParseError::Malformed { what: "pcap", why: "bad magic" });
        }
        let linktype = u32::from_le_bytes([data[20], data[21], data[22], data[23]]);
        if linktype != LINKTYPE {
            return Err(ParseError::Malformed { what: "pcap", why: "not ethernet linktype" });
        }
        let mut records = Vec::new();
        let mut off = GLOBAL_HEADER_LEN;
        while off < data.len() {
            if data.len() - off < RECORD_HEADER_LEN {
                return Err(ParseError::Truncated {
                    what: "pcap record",
                    need: RECORD_HEADER_LEN,
                    have: data.len() - off,
                });
            }
            let ts_sec = u32::from_le_bytes(data[off..off + 4].try_into().expect("4 bytes"));
            let ts_usec = u32::from_le_bytes(data[off + 4..off + 8].try_into().expect("4 bytes"));
            let incl = u32::from_le_bytes(data[off + 8..off + 12].try_into().expect("4 bytes"));
            off += RECORD_HEADER_LEN;
            let incl = incl as usize;
            if data.len() - off < incl {
                return Err(ParseError::Truncated {
                    what: "pcap record",
                    need: incl,
                    have: data.len() - off,
                });
            }
            records.push(PcapRecord { ts_sec, ts_usec, bytes: data[off..off + incl].to_vec() });
            off += incl;
        }
        Ok(PcapReader { records })
    }

    /// The parsed records.
    pub fn records(&self) -> &[PcapRecord] {
        &self.records
    }

    /// Consumes the reader, yielding the records.
    pub fn into_records(self) -> Vec<PcapRecord> {
        self.records
    }
}

/// Compares two captures for byte-identical packet sequences, ignoring
/// timestamps — the functional-equivalence check of §6.2.6.
pub fn captures_identical(a: &[PcapRecord], b: &[PcapRecord]) -> bool {
    a.len() == b.len() && a.iter().zip(b).all(|(x, y)| x.bytes == y.bytes)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::builder::UdpPacketBuilder;

    fn sample_records() -> Vec<PcapRecord> {
        (0..5)
            .map(|i| {
                let pkt = UdpPacketBuilder::new().total_size(64 + i * 10, i as u64).build();
                PcapRecord::from_packet(&pkt, 1_500_000_000 * i as u64)
            })
            .collect()
    }

    #[test]
    fn write_read_roundtrip() {
        let records = sample_records();
        let mut w = PcapWriter::new(Vec::new()).unwrap();
        for r in &records {
            w.write_record(r).unwrap();
        }
        assert_eq!(w.record_count(), 5);
        let bytes = w.finish().unwrap();
        let reader = PcapReader::parse(&bytes).unwrap();
        assert_eq!(reader.records(), &records[..]);
    }

    #[test]
    fn timestamp_conversion() {
        let pkt = UdpPacketBuilder::new().payload(&[0; 4]).build();
        let r = PcapRecord::from_packet(&pkt, 3_000_123_456);
        assert_eq!(r.ts_sec, 3);
        assert_eq!(r.ts_usec, 123); // truncated to µs
    }

    #[test]
    fn rejects_bad_magic() {
        let mut w = PcapWriter::new(Vec::new()).unwrap();
        w.write_record(&sample_records()[0]).unwrap();
        let mut bytes = w.finish().unwrap();
        bytes[0] ^= 0xFF;
        assert!(matches!(
            PcapReader::parse(&bytes),
            Err(ParseError::Malformed { why: "bad magic", .. })
        ));
    }

    #[test]
    fn rejects_truncated_record() {
        let mut w = PcapWriter::new(Vec::new()).unwrap();
        w.write_record(&sample_records()[0]).unwrap();
        let bytes = w.finish().unwrap();
        let cut = &bytes[..bytes.len() - 3];
        assert!(matches!(PcapReader::parse(cut), Err(ParseError::Truncated { .. })));
    }

    #[test]
    fn captures_identical_ignores_timestamps() {
        let a = sample_records();
        let mut b = a.clone();
        for r in &mut b {
            r.ts_sec += 100;
        }
        assert!(captures_identical(&a, &b));
        b[2].bytes[0] ^= 1;
        assert!(!captures_identical(&a, &b));
        assert!(!captures_identical(&a, &b[..4]));
    }

    #[test]
    fn empty_capture_roundtrip() {
        let w = PcapWriter::new(Vec::new()).unwrap();
        let bytes = w.finish().unwrap();
        let r = PcapReader::parse(&bytes).unwrap();
        assert!(r.records().is_empty());
    }
}
