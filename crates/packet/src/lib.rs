//! Wire-format packet types for the PayloadPark reproduction.
//!
//! This crate provides zero-copy *view* types over byte buffers, in the style
//! of `smoltcp`: a view wraps a `&[u8]`/`&mut [u8]`, validates lengths once,
//! and then exposes typed accessors for individual fields. Views never copy
//! the underlying buffer and never allocate.
//!
//! Supported formats:
//!
//! * [`ethernet`] — Ethernet II frames;
//! * [`ipv4`] — IPv4 headers with internet checksum;
//! * [`udp`] / [`tcp`] — transport headers (checksums over the IPv4
//!   pseudo-header);
//! * [`ppark`] — the PayloadPark header from the paper (Fig. 2): a 7-byte
//!   shim carrying the Enable bit, the opcode (Merge / Explicit-Drop), and a
//!   48-bit tag = table index ⊕ generation clock ⊕ CRC;
//! * [`pcap`] — classic libpcap trace files, used by the workload replayer
//!   and the functional-equivalence test (paper §6.2.6).
//!
//! Higher layers:
//!
//! * [`builder`] — constructs complete Ethernet/IPv4/UDP packets;
//! * [`parse`] — extracts the 5-tuple and header boundaries in one pass;
//! * [`packet`] — an owned packet buffer with convenience accessors.
//!
//! # Example
//!
//! ```
//! use pp_packet::builder::UdpPacketBuilder;
//! use pp_packet::parse::ParsedPacket;
//!
//! let pkt = UdpPacketBuilder::new()
//!     .src_ip([10, 0, 0, 1].into())
//!     .dst_ip([10, 0, 0, 2].into())
//!     .src_port(1234)
//!     .dst_port(80)
//!     .payload(&[0xAB; 64])
//!     .build();
//! let parsed = ParsedPacket::parse(pkt.bytes()).unwrap();
//! assert_eq!(parsed.five_tuple().src_port, 1234);
//! assert_eq!(parsed.udp_payload_len(), 64);
//! ```

pub mod builder;
pub mod checksum;
pub mod crc;
pub mod ethernet;
pub mod ipv4;
pub mod packet;
pub mod parse;
pub mod pcap;
pub mod ppark;
pub mod tcp;
pub mod udp;

pub use builder::{TcpFlags, TcpPacketBuilder, UdpPacketBuilder};
pub use ethernet::{EtherType, EthernetFrame, MacAddr, ETHERNET_HEADER_LEN};
pub use ipv4::{IpProtocol, Ipv4Header, IPV4_HEADER_LEN};
pub use packet::Packet;
pub use parse::{FiveTuple, ParsedPacket};
pub use ppark::{PayloadParkHeader, PpOpcode, PpTag, PAYLOADPARK_HEADER_LEN};
pub use tcp::{TcpHeader, TCP_HEADER_LEN};
pub use udp::{UdpHeader, UDP_HEADER_LEN};

/// Errors produced when interpreting a byte buffer as a protocol header.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ParseError {
    /// The buffer is shorter than the fixed part of the header.
    Truncated {
        /// Header kind that failed to parse (for diagnostics).
        what: &'static str,
        /// Bytes required.
        need: usize,
        /// Bytes available.
        have: usize,
    },
    /// A version/length field contains a value the implementation rejects.
    Malformed {
        /// Header kind that failed to parse.
        what: &'static str,
        /// Human-readable description of the violated constraint.
        why: &'static str,
    },
    /// A checksum or CRC did not verify.
    BadChecksum {
        /// Header kind whose checksum failed.
        what: &'static str,
    },
    /// The packet is not of the expected protocol (e.g. non-IPv4 ethertype).
    WrongProtocol {
        /// Header kind being parsed.
        what: &'static str,
    },
}

impl core::fmt::Display for ParseError {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        match self {
            ParseError::Truncated { what, need, have } => {
                write!(f, "{what}: truncated (need {need} bytes, have {have})")
            }
            ParseError::Malformed { what, why } => write!(f, "{what}: malformed ({why})"),
            ParseError::BadChecksum { what } => write!(f, "{what}: bad checksum"),
            ParseError::WrongProtocol { what } => write!(f, "{what}: wrong protocol"),
        }
    }
}

impl std::error::Error for ParseError {}

/// Crate-wide result alias.
pub type Result<T> = core::result::Result<T, ParseError>;

/// Total bytes of Ethernet + IPv4 + UDP headers — the "42 bytes" the paper
/// uses as the unit of useful information for goodput (§1, §6.1).
pub const UDP_STACK_HEADER_LEN: usize = ETHERNET_HEADER_LEN + IPV4_HEADER_LEN + UDP_HEADER_LEN;

/// Total bytes of Ethernet + IPv4 + TCP (no options) headers — the header
/// stack of the enterprise mix's TCP segments.
pub const TCP_STACK_HEADER_LEN: usize = ETHERNET_HEADER_LEN + IPV4_HEADER_LEN + TCP_HEADER_LEN;

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn udp_stack_header_is_42_bytes() {
        // The paper's goodput unit: Ethernet (14) + IPv4 (20) + UDP (8).
        assert_eq!(UDP_STACK_HEADER_LEN, 42);
    }

    #[test]
    fn tcp_stack_header_is_54_bytes() {
        // Ethernet (14) + IPv4 (20) + TCP without options (20).
        assert_eq!(TCP_STACK_HEADER_LEN, 54);
    }

    #[test]
    fn parse_error_display() {
        let e = ParseError::Truncated { what: "ipv4", need: 20, have: 3 };
        assert_eq!(e.to_string(), "ipv4: truncated (need 20 bytes, have 3)");
        let e = ParseError::Malformed { what: "ipv4", why: "ihl < 5" };
        assert_eq!(e.to_string(), "ipv4: malformed (ihl < 5)");
        let e = ParseError::BadChecksum { what: "udp" };
        assert_eq!(e.to_string(), "udp: bad checksum");
        let e = ParseError::WrongProtocol { what: "ethernet" };
        assert_eq!(e.to_string(), "ethernet: wrong protocol");
    }
}
