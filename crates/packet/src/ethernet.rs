//! Ethernet II frame view.

use crate::{ParseError, Result};

/// Length of an Ethernet II header: two MAC addresses plus the ethertype.
pub const ETHERNET_HEADER_LEN: usize = 14;

/// A 48-bit IEEE 802 MAC address.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Default)]
pub struct MacAddr(pub [u8; 6]);

impl MacAddr {
    /// The broadcast address `ff:ff:ff:ff:ff:ff`.
    pub const BROADCAST: MacAddr = MacAddr([0xFF; 6]);

    /// Returns true for the broadcast address.
    pub fn is_broadcast(&self) -> bool {
        *self == Self::BROADCAST
    }

    /// Returns true if the group bit (I/G, least-significant bit of the first
    /// octet) is set, i.e. the address is multicast or broadcast.
    pub fn is_multicast(&self) -> bool {
        self.0[0] & 0x01 != 0
    }

    /// Builds a locally-administered unicast address from a small integer,
    /// convenient for assigning simulated hosts stable MACs.
    pub fn from_index(index: u64) -> Self {
        let b = index.to_be_bytes();
        // 0x02 = locally administered, unicast.
        MacAddr([0x02, b[3], b[4], b[5], b[6], b[7]])
    }
}

impl From<[u8; 6]> for MacAddr {
    fn from(b: [u8; 6]) -> Self {
        MacAddr(b)
    }
}

impl core::fmt::Display for MacAddr {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        let b = self.0;
        write!(f, "{:02x}:{:02x}:{:02x}:{:02x}:{:02x}:{:02x}", b[0], b[1], b[2], b[3], b[4], b[5])
    }
}

/// Ethertype values used by this reproduction.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum EtherType {
    /// IPv4 (0x0800).
    Ipv4,
    /// ARP (0x0806) — parsed but not processed by the dataplane.
    Arp,
    /// Any other value, preserved verbatim.
    Other(u16),
}

impl From<u16> for EtherType {
    fn from(v: u16) -> Self {
        match v {
            0x0800 => EtherType::Ipv4,
            0x0806 => EtherType::Arp,
            other => EtherType::Other(other),
        }
    }
}

impl From<EtherType> for u16 {
    fn from(t: EtherType) -> u16 {
        match t {
            EtherType::Ipv4 => 0x0800,
            EtherType::Arp => 0x0806,
            EtherType::Other(v) => v,
        }
    }
}

/// An immutable view of an Ethernet II frame.
///
/// The view validates only that the buffer can hold the 14-byte header;
/// the payload is whatever follows.
#[derive(Debug, Clone, Copy)]
pub struct EthernetFrame<T: AsRef<[u8]>> {
    buffer: T,
}

impl<T: AsRef<[u8]>> EthernetFrame<T> {
    /// Wraps a buffer, checking the minimum length.
    pub fn new_checked(buffer: T) -> Result<Self> {
        let len = buffer.as_ref().len();
        if len < ETHERNET_HEADER_LEN {
            return Err(ParseError::Truncated {
                what: "ethernet",
                need: ETHERNET_HEADER_LEN,
                have: len,
            });
        }
        Ok(EthernetFrame { buffer })
    }

    /// Consumes the view, returning the underlying buffer.
    pub fn into_inner(self) -> T {
        self.buffer
    }

    /// Destination MAC address.
    pub fn dst(&self) -> MacAddr {
        let b = self.buffer.as_ref();
        MacAddr([b[0], b[1], b[2], b[3], b[4], b[5]])
    }

    /// Source MAC address.
    pub fn src(&self) -> MacAddr {
        let b = self.buffer.as_ref();
        MacAddr([b[6], b[7], b[8], b[9], b[10], b[11]])
    }

    /// Ethertype field.
    pub fn ethertype(&self) -> EtherType {
        let b = self.buffer.as_ref();
        u16::from_be_bytes([b[12], b[13]]).into()
    }

    /// The bytes following the Ethernet header.
    pub fn payload(&self) -> &[u8] {
        &self.buffer.as_ref()[ETHERNET_HEADER_LEN..]
    }
}

impl<T: AsRef<[u8]> + AsMut<[u8]>> EthernetFrame<T> {
    /// Sets the destination MAC address.
    pub fn set_dst(&mut self, mac: MacAddr) {
        self.buffer.as_mut()[0..6].copy_from_slice(&mac.0);
    }

    /// Sets the source MAC address.
    pub fn set_src(&mut self, mac: MacAddr) {
        self.buffer.as_mut()[6..12].copy_from_slice(&mac.0);
    }

    /// Sets the ethertype field.
    pub fn set_ethertype(&mut self, t: EtherType) {
        self.buffer.as_mut()[12..14].copy_from_slice(&u16::from(t).to_be_bytes());
    }

    /// Mutable access to the bytes following the header.
    pub fn payload_mut(&mut self) -> &mut [u8] {
        &mut self.buffer.as_mut()[ETHERNET_HEADER_LEN..]
    }

    /// Swaps the source and destination MAC addresses in place.
    ///
    /// This is the entire data-plane behaviour of the MAC-swapper NF used in
    /// the paper's multi-server and NF-cost experiments (§6.1, §6.3.3).
    pub fn swap_macs(&mut self) {
        let (src, dst) = (self.src(), self.dst());
        self.set_src(dst);
        self.set_dst(src);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample_frame() -> Vec<u8> {
        let mut f = vec![0u8; ETHERNET_HEADER_LEN + 4];
        f[0..6].copy_from_slice(&[0x02, 0, 0, 0, 0, 0x01]); // dst
        f[6..12].copy_from_slice(&[0x02, 0, 0, 0, 0, 0x02]); // src
        f[12..14].copy_from_slice(&0x0800u16.to_be_bytes());
        f[14..].copy_from_slice(&[0xDE, 0xAD, 0xBE, 0xEF]);
        f
    }

    #[test]
    fn parse_fields() {
        let frame = EthernetFrame::new_checked(sample_frame()).unwrap();
        assert_eq!(frame.dst(), MacAddr::from_index(1));
        assert_eq!(frame.src(), MacAddr::from_index(2));
        assert_eq!(frame.ethertype(), EtherType::Ipv4);
        assert_eq!(frame.payload(), &[0xDE, 0xAD, 0xBE, 0xEF]);
    }

    #[test]
    fn truncated_rejected() {
        let err = EthernetFrame::new_checked(&[0u8; 13][..]).unwrap_err();
        assert!(matches!(err, ParseError::Truncated { what: "ethernet", .. }));
    }

    #[test]
    fn set_and_get_roundtrip() {
        let mut frame = EthernetFrame::new_checked(vec![0u8; 20]).unwrap();
        frame.set_dst(MacAddr([1, 2, 3, 4, 5, 6]));
        frame.set_src(MacAddr([7, 8, 9, 10, 11, 12]));
        frame.set_ethertype(EtherType::Other(0x88B5));
        assert_eq!(frame.dst(), MacAddr([1, 2, 3, 4, 5, 6]));
        assert_eq!(frame.src(), MacAddr([7, 8, 9, 10, 11, 12]));
        assert_eq!(frame.ethertype(), EtherType::Other(0x88B5));
    }

    #[test]
    fn swap_macs_swaps() {
        let mut frame = EthernetFrame::new_checked(sample_frame()).unwrap();
        frame.swap_macs();
        assert_eq!(frame.dst(), MacAddr::from_index(2));
        assert_eq!(frame.src(), MacAddr::from_index(1));
        // Double swap restores the original.
        frame.swap_macs();
        assert_eq!(frame.dst(), MacAddr::from_index(1));
    }

    #[test]
    fn mac_addr_classification() {
        assert!(MacAddr::BROADCAST.is_broadcast());
        assert!(MacAddr::BROADCAST.is_multicast());
        assert!(!MacAddr::from_index(3).is_broadcast());
        assert!(!MacAddr::from_index(3).is_multicast());
        assert!(MacAddr([0x01, 0, 0x5E, 0, 0, 1]).is_multicast());
    }

    #[test]
    fn mac_display() {
        assert_eq!(MacAddr([0xDE, 0xAD, 0, 0, 0xBE, 0xEF]).to_string(), "de:ad:00:00:be:ef");
    }

    #[test]
    fn ethertype_roundtrip() {
        for v in [0x0800u16, 0x0806, 0x86DD, 0x1234] {
            assert_eq!(u16::from(EtherType::from(v)), v);
        }
    }
}
