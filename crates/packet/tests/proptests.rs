//! Property-based tests for the wire-format crate.

use proptest::prelude::*;
use std::net::Ipv4Addr;

use pp_packet::builder::{pattern, UdpPacketBuilder};
use pp_packet::checksum::{checksum, Checksum};
use pp_packet::crc::{crc16, tag_crc};
use pp_packet::ethernet::{EthernetFrame, MacAddr};
use pp_packet::ipv4::Ipv4Header;
use pp_packet::parse::ParsedPacket;
use pp_packet::pcap::{captures_identical, PcapReader, PcapRecord, PcapWriter};
use pp_packet::ppark::{PayloadParkHeader, PpOpcode, PpTag, PAYLOADPARK_HEADER_LEN};
use pp_packet::udp::UdpHeader;

proptest! {
    /// Feeding a buffer in arbitrary pieces yields the same checksum as one
    /// contiguous pass.
    #[test]
    fn checksum_split_invariance(data in proptest::collection::vec(any::<u8>(), 0..512),
                                 cut in 0usize..512) {
        let whole = checksum(&data);
        let cut = cut.min(data.len());
        let mut c = Checksum::new();
        c.add_bytes(&data[..cut]);
        c.add_bytes(&data[cut..]);
        prop_assert_eq!(c.finish(), whole);
    }

    /// Appending the checksum makes verification succeed; flipping any single
    /// bit afterwards makes it fail. Data must be 16-bit aligned (as in real
    /// protocols, which pad to even length) for the trailing checksum to
    /// occupy a whole word.
    #[test]
    fn checksum_detects_single_bit_flips(data in proptest::collection::vec(any::<u8>(), 1..64)
                                             .prop_map(|mut v| { if v.len() % 2 == 1 { v.push(0); } v }),
                                         byte_idx in 0usize..130, bit in 0u8..8) {
        let mut framed = data.clone();
        let ck = checksum(&framed);
        framed.extend_from_slice(&ck.to_be_bytes());
        prop_assert_eq!(checksum(&framed), 0);
        let idx = byte_idx % framed.len();
        framed[idx] ^= 1 << bit;
        prop_assert_ne!(checksum(&framed), 0);
    }

    /// CRC-16 detects any single-bit corruption of the tag fields.
    #[test]
    fn tag_crc_single_bit(ti in any::<u16>(), gen in any::<u16>(), bit in 0u8..32) {
        let base = tag_crc(ti, gen);
        let (ti2, gen2) = if bit < 16 {
            (ti ^ (1 << bit), gen)
        } else {
            (ti, gen ^ (1 << (bit - 16)))
        };
        prop_assert_ne!(base, tag_crc(ti2, gen2));
    }

    /// crc16 is a pure function of its input.
    #[test]
    fn crc16_deterministic(data in proptest::collection::vec(any::<u8>(), 0..256)) {
        prop_assert_eq!(crc16(&data), crc16(&data));
    }

    /// Built packets always re-parse to the same 5-tuple, size and payload,
    /// with valid IP and UDP checksums.
    #[test]
    fn builder_parse_roundtrip(
        src in any::<u32>(), dst in any::<u32>(),
        sport in any::<u16>(), dport in any::<u16>(),
        len in 0usize..1454, seed in any::<u64>(),
    ) {
        let src_ip = Ipv4Addr::from(src);
        let dst_ip = Ipv4Addr::from(dst);
        let pkt = UdpPacketBuilder::new()
            .src_ip(src_ip).dst_ip(dst_ip)
            .src_port(sport).dst_port(dport)
            .patterned_payload(len, seed)
            .build();
        prop_assert_eq!(pkt.len(), 42 + len);
        let parsed = ParsedPacket::parse(pkt.bytes()).unwrap();
        let ft = parsed.five_tuple();
        prop_assert_eq!(ft.src_ip, src_ip);
        prop_assert_eq!(ft.dst_ip, dst_ip);
        prop_assert_eq!(ft.src_port, sport);
        prop_assert_eq!(ft.dst_port, dport);
        prop_assert_eq!(parsed.payload(), &pattern(len, seed)[..]);

        let eth = EthernetFrame::new_checked(pkt.bytes()).unwrap();
        let ip = Ipv4Header::new_checked(eth.payload()).unwrap();
        prop_assert!(ip.verify_checksum());
        let udp = UdpHeader::new_checked(ip.payload()).unwrap();
        prop_assert!(udp.verify_checksum(u32::from(ip.src()), u32::from(ip.dst())));
    }

    /// The PayloadPark header round-trips any tag through write + verify.
    #[test]
    fn ppark_header_roundtrip(ti in any::<u16>(), gen in any::<u16>(), drop in any::<bool>()) {
        let tag = PpTag { table_index: ti, generation: gen };
        let op = if drop { PpOpcode::ExplicitDrop } else { PpOpcode::Merge };
        let mut buf = [0u8; PAYLOADPARK_HEADER_LEN];
        PayloadParkHeader::new_checked(&mut buf[..]).unwrap().write_enabled(op, tag);
        let h = PayloadParkHeader::new_checked(&buf[..]).unwrap();
        prop_assert!(h.enabled());
        prop_assert_eq!(h.opcode(), op);
        prop_assert_eq!(h.verify_tag().unwrap(), tag);
    }

    /// pcap write/read round-trips arbitrary packet sequences.
    #[test]
    fn pcap_roundtrip(sizes in proptest::collection::vec(42usize..600, 0..20), seed in any::<u64>()) {
        let records: Vec<PcapRecord> = sizes
            .iter()
            .enumerate()
            .map(|(i, &s)| {
                let pkt = UdpPacketBuilder::new().total_size(s, seed ^ i as u64).build();
                PcapRecord::from_packet(&pkt, i as u64 * 1_000)
            })
            .collect();
        let mut w = PcapWriter::new(Vec::new()).unwrap();
        for r in &records {
            w.write_record(r).unwrap();
        }
        let bytes = w.finish().unwrap();
        let rt = PcapReader::parse(&bytes).unwrap().into_records();
        prop_assert!(captures_identical(&records, &rt));
        prop_assert_eq!(records, rt);
    }

    /// pcap round-trip under an arbitrary snaplen: record boundaries stay
    /// intact, clipped records keep their on-wire length in orig_len, and
    /// timestamps (second/microsecond parts) survive exactly.
    #[test]
    fn pcap_snaplen_roundtrip(sizes in proptest::collection::vec(42usize..600, 1..20),
                              stamps in proptest::collection::vec(any::<u64>(), 20..21),
                              snaplen in 42u32..700,
                              seed in any::<u64>()) {
        let records: Vec<PcapRecord> = sizes
            .iter()
            .enumerate()
            .map(|(i, &s)| {
                let pkt = UdpPacketBuilder::new().total_size(s, seed ^ i as u64).build();
                PcapRecord::from_packet(&pkt, stamps[i])
            })
            .collect();
        let mut w = PcapWriter::with_snaplen(Vec::new(), snaplen).unwrap();
        for r in &records {
            w.write_record(r).unwrap();
        }
        let bytes = w.finish().unwrap();
        let rt = PcapReader::parse(&bytes).unwrap().into_records();
        prop_assert_eq!(rt.len(), records.len());
        for (orig, got) in records.iter().zip(&rt) {
            prop_assert_eq!(got.orig_len as usize, orig.bytes.len());
            let clip = orig.bytes.len().min(snaplen as usize);
            prop_assert_eq!(&got.bytes[..], &orig.bytes[..clip]);
            prop_assert_eq!(got.truncated(), orig.bytes.len() > snaplen as usize);
            prop_assert_eq!((got.ts_sec, got.ts_usec), (orig.ts_sec, orig.ts_usec));
        }
        // A second pass through the writer/reader is a fixpoint: nothing
        // shrinks further and orig_len survives unchanged.
        let mut w2 = PcapWriter::with_snaplen(Vec::new(), snaplen).unwrap();
        for r in &rt {
            w2.write_record(r).unwrap();
        }
        let rt2 = PcapReader::parse(&w2.finish().unwrap()).unwrap().into_records();
        prop_assert_eq!(rt2, rt);
    }

    /// Ethernet MAC swap is an involution.
    #[test]
    fn mac_swap_involution(size in 60usize..200, seed in any::<u64>()) {
        let pkt = UdpPacketBuilder::new()
            .src_mac(MacAddr::from_index(seed % 100))
            .dst_mac(MacAddr::from_index(seed % 100 + 1))
            .total_size(size, seed)
            .build();
        let mut bytes = pkt.into_bytes();
        let original = bytes.clone();
        let mut f = EthernetFrame::new_checked(&mut bytes[..]).unwrap();
        f.swap_macs();
        f.swap_macs();
        prop_assert_eq!(bytes, original);
    }

    /// Arbitrary garbage never panics the parser — it returns an error or a
    /// consistent parse.
    #[test]
    fn parser_never_panics(data in proptest::collection::vec(any::<u8>(), 0..200)) {
        if let Ok(p) = ParsedPacket::parse(&data) {
            prop_assert!(p.wire_len() <= data.len());
            prop_assert!(p.offsets().payload <= p.wire_len());
        }
    }
}
