//! pp_verify integration tests: each pass provably catches a deliberately
//! broken program, and the shipped PayloadPark programs verify clean of
//! errors (their benign info findings are pinned as a regression report).

use payloadpark::shard::ShardPlan;
use payloadpark::{ParkConfig, SliceSpec};
use pp_rmt::summary::{MatSummary, Req, Slot};
use pp_rmt::ChipProfile;
use pp_verify::ir::{MatIr, ParserIr, ProgramIr, RegIr};
use pp_verify::shard::{check_shards, ShardIr, SliceClaim, WorkerIr};
use pp_verify::{check_deployment, check_ir, check_shard_plan, Code, Diagnostic, Severity};
use std::collections::BTreeMap;
use std::collections::BTreeSet;

fn codes(diags: &[Diagnostic]) -> Vec<Code> {
    diags.iter().map(|d| d.code).collect()
}

fn has(diags: &[Diagnostic], code: Code) -> bool {
    diags.iter().any(|d| d.code == code)
}

/// A minimal hand-built program: parser accepts blocks+transport on port 0,
/// one stage of caller-provided tables.
fn tiny_ir(stages: Vec<Vec<MatIr>>, registers: Vec<RegIr>) -> ProgramIr {
    ProgramIr {
        name: "tiny".into(),
        stages,
        registers,
        parser: ParserIr {
            pp_ports: [9u16].into_iter().collect(),
            block_ports: [0u16].into_iter().collect(),
            block_capacity: 2,
        },
        entry: BTreeMap::new(),
    }
}

fn mat(name: &str, stage: usize, summary: MatSummary) -> MatIr {
    MatIr { name: name.into(), stage, summary: Some(summary), stateful: None }
}

// --- Pass 1: def-use ----------------------------------------------------

#[test]
fn pv101_read_of_possibly_invalid_header() {
    // Reads the shim header on a port where the parser never produces one.
    let ir = tiny_ir(
        vec![vec![mat("bad_read", 0, MatSummary::on_ports([0u16]).reads(Slot::Pp))]],
        vec![],
    );
    let diags = check_ir(&ir);
    let d = diags.iter().find(|d| d.code == Code::PV101).expect("PV101");
    assert_eq!(d.severity, Severity::Error);
    assert_eq!(d.mat.as_deref(), Some("bad_read"));
    assert!(d.witness.is_some(), "def-use findings carry a packet witness");
}

#[test]
fn pv101_read_after_invalidation() {
    // Table A strips the shim, table B (later stage) still reads it: the
    // read is only *possibly* invalid (A fires only when enb=false), and
    // pass 1 must still flag it.
    let strip = MatSummary::on_ports([9u16])
        .require(Req::Valid(Slot::Pp))
        .require(Req::PpEnb(false))
        .sets_invalid(Slot::Pp);
    let read = MatSummary::on_ports([9u16]).reads(Slot::Pp);
    let ir = tiny_ir(vec![vec![mat("strip", 0, strip)], vec![mat("late_read", 1, read)]], vec![]);
    let diags = check_ir(&ir);
    let d = diags.iter().find(|d| d.code == Code::PV101).expect("PV101");
    assert_eq!(d.mat.as_deref(), Some("late_read"));
    assert!(d.message.contains("reads Pp"), "{}", d.message);
}

#[test]
fn pv102_read_of_unwritten_metadata() {
    let ir = tiny_ir(
        vec![vec![mat("meta_read", 0, MatSummary::on_ports([0u16]).reads(Slot::Meta(6)))]],
        vec![],
    );
    let diags = check_ir(&ir);
    assert!(has(&diags, Code::PV102), "{:?}", codes(&diags));
}

#[test]
fn reads_dominated_by_writes_are_clean() {
    // Writer in stage 0 (same port, unconditional), reader in stage 1.
    let w = MatSummary::on_ports([0u16]).writes(Slot::Meta(6));
    let r = MatSummary::on_ports([0u16]).reads(Slot::Meta(6));
    let ir = tiny_ir(vec![vec![mat("w", 0, w)], vec![mat("r", 1, r)]], vec![]);
    let diags = check_ir(&ir);
    assert!(!has(&diags, Code::PV101) && !has(&diags, Code::PV102), "{:?}", codes(&diags));
}

#[test]
fn pv103_block_write_without_transport() {
    // Writing payload blocks on a packet that may have no transport header
    // (the blocks vector is sized only after a transport parse).
    let ir = tiny_ir(
        vec![vec![mat("blind_write", 0, MatSummary::on_ports([0u16]).writes(Slot::Blocks))]],
        vec![],
    );
    let diags = check_ir(&ir);
    assert!(has(&diags, Code::PV103), "{:?}", codes(&diags));
}

// --- Pass 2: reachability and shadowing ---------------------------------

#[test]
fn pv201_dead_rule() {
    // Requires a shim header on a port where the parser never parses one.
    let dead = MatSummary::on_ports([0u16]).require(Req::Valid(Slot::Pp));
    let ir = tiny_ir(vec![vec![mat("dead", 0, dead)]], vec![]);
    let diags = check_ir(&ir);
    let d = diags.iter().find(|d| d.code == Code::PV201).expect("PV201");
    assert_eq!(d.mat.as_deref(), Some("dead"));
}

#[test]
fn pv202_shadowed_table_names_culprit() {
    // Table A unconditionally strips IPv4 validity; table B then requires
    // it. B is feasible at entry, so this is shadowing, not dead code.
    let a = MatSummary::on_ports([0u16]).require(Req::Valid(Slot::Ipv4)).sets_invalid(Slot::Ipv4);
    let b = MatSummary::on_ports([0u16]).require(Req::Valid(Slot::Ipv4));
    let ir = tiny_ir(vec![vec![mat("stripper", 0, a)], vec![mat("shadowed", 1, b)]], vec![]);
    let diags = check_ir(&ir);
    let d = diags.iter().find(|d| d.code == Code::PV202).expect("PV202");
    assert_eq!(d.severity, Severity::Error);
    assert_eq!(d.mat.as_deref(), Some("shadowed"));
    assert!(d.message.contains("stripper"), "culprit named: {}", d.message);
}

#[test]
fn pv203_redundant_conjunct() {
    // On a block port, any extracted block implies a transport header —
    // requiring both makes the transport conjunct redundant.
    let s = MatSummary::on_ports([0u16])
        .require(Req::Valid(Slot::Blocks))
        .require(Req::Valid(Slot::Transport));
    let ir = tiny_ir(vec![vec![mat("both", 0, s)]], vec![]);
    let diags = check_ir(&ir);
    let d = diags.iter().find(|d| d.code == Code::PV203).expect("PV203");
    assert!(d.message.contains("valid(Transport)"), "{}", d.message);
}

#[test]
fn pv204_dead_meta_write() {
    let ir = tiny_ir(
        vec![vec![mat("w", 0, MatSummary::on_ports([0u16]).writes(Slot::Meta(7)))]],
        vec![],
    );
    let diags = check_ir(&ir);
    assert!(has(&diags, Code::PV204), "{:?}", codes(&diags));
}

// --- Pass 3: stage locality ---------------------------------------------

fn stateful_mat(name: &str, stage: usize, reg: usize) -> MatIr {
    MatIr {
        name: name.into(),
        stage,
        summary: Some(MatSummary::on_ports([0u16])),
        stateful: Some(reg),
    }
}

#[test]
fn pv301_cross_stage_register_binding() {
    let ir = tiny_ir(
        vec![vec![stateful_mat("rmw_a", 0, 0)], vec![stateful_mat("rmw_b", 1, 0)]],
        vec![RegIr { name: "tbl".into(), stage: 0 }],
    );
    let diags = check_ir(&ir);
    let d = diags.iter().find(|d| d.code == Code::PV301).expect("PV301");
    assert_eq!(d.severity, Severity::Error);
    assert!(d.message.contains("rmw_a@stage0") && d.message.contains("rmw_b@stage1"));
    // PV302 also fires: the stage-1 binding contradicts the spec stage.
    assert!(has(&diags, Code::PV302), "{:?}", codes(&diags));
}

#[test]
fn builder_rejects_what_pv301_flags() {
    // The same shape is refused by the pipeline builder itself — the
    // verifier proves the property the constructor enforces dynamically,
    // so a PV301 program can never reach execution.
    use pp_rmt::{Mat, Pipeline, ProgramError, RegisterSpec};
    let chip = ChipProfile::default();
    let mut b = Pipeline::builder(chip);
    let reg = b.register(RegisterSpec { name: "tbl".into(), stage: 0, cell_bytes: 4, cells: 8 });
    b.place(0, Mat::builder("rmw_a").stateful(reg, |_| Some(0)).action(|_| {}).build());
    b.place(1, Mat::builder("rmw_b").stateful(reg, |_| Some(0)).action(|_| {}).build());
    match b.build() {
        Err(ProgramError::CrossStageStatefulBinding { .. }) => {}
        other => panic!("expected CrossStageStatefulBinding, got {other:?}"),
    }
}

#[test]
fn pv302_binding_stage_differs_from_spec() {
    let ir = tiny_ir(
        vec![vec![], vec![stateful_mat("late", 1, 0)]],
        vec![RegIr { name: "tbl".into(), stage: 0 }],
    );
    let diags = check_ir(&ir);
    assert!(has(&diags, Code::PV302) && !has(&diags, Code::PV301), "{:?}", codes(&diags));
}

#[test]
fn pv303_same_stage_double_binding_without_exclusivity() {
    let ir = tiny_ir(
        vec![vec![stateful_mat("rmw_a", 0, 0), stateful_mat("rmw_b", 0, 0)]],
        vec![RegIr { name: "tbl".into(), stage: 0 }],
    );
    let diags = check_ir(&ir);
    assert!(has(&diags, Code::PV303), "{:?}", codes(&diags));
}

#[test]
fn pv303_suppressed_by_disjoint_ports_or_contradictory_reqs() {
    // Disjoint port domains.
    let mut a = stateful_mat("rmw_a", 0, 0);
    a.summary = Some(MatSummary::on_ports([0u16]));
    let mut b = stateful_mat("rmw_b", 0, 0);
    b.summary = Some(MatSummary::on_ports([1u16]));
    let ir = tiny_ir(vec![vec![a, b]], vec![RegIr { name: "tbl".into(), stage: 0 }]);
    assert!(!has(&check_ir(&ir), Code::PV303));

    // Contradictory enb requirements on the same port.
    let mut a = stateful_mat("rmw_a", 0, 0);
    a.summary = Some(MatSummary::on_ports([9u16]).require(Req::PpEnb(true)));
    let mut b = stateful_mat("rmw_b", 0, 0);
    b.summary = Some(MatSummary::on_ports([9u16]).require(Req::PpEnb(false)));
    let ir = tiny_ir(vec![vec![a, b]], vec![RegIr { name: "tbl".into(), stage: 0 }]);
    assert!(!has(&check_ir(&ir), Code::PV303));
}

#[test]
fn pv304_unbound_register() {
    let ir = tiny_ir(vec![vec![]], vec![RegIr { name: "orphan".into(), stage: 0 }]);
    assert!(has(&check_ir(&ir), Code::PV304));
}

// --- Pass 4: shard disjointness -----------------------------------------

fn worker(name: &str, ports: &[u16], claims: &[(&str, std::ops::Range<usize>)]) -> WorkerIr {
    WorkerIr {
        name: name.into(),
        ports: ports.iter().copied().collect(),
        claims: claims
            .iter()
            .map(|(n, r)| SliceClaim { name: (*n).into(), slots: r.clone() })
            .collect(),
    }
}

fn shard_ir(workers: Vec<WorkerIr>, total: usize) -> ShardIr {
    let parent_ports: BTreeSet<u16> =
        workers.iter().flat_map(|w| w.ports.iter().copied()).collect();
    let port_map = workers
        .iter()
        .enumerate()
        .flat_map(|(i, w)| w.ports.iter().map(move |&p| (p, i)))
        .collect();
    ShardIr { total_slots: total, parent_ports, parent_has_annex: false, workers, port_map }
}

#[test]
fn pv401_overlapping_slot_ranges() {
    let ir = shard_ir(
        vec![worker("w0", &[0, 1], &[("s0", 0..64)]), worker("w1", &[2, 3], &[("s1", 32..96)])],
        96,
    );
    let diags = check_shards(&ir);
    let d = diags.iter().find(|d| d.code == Code::PV401).expect("PV401");
    assert_eq!(d.severity, Severity::Error);
    assert!(d.message.contains("w0") && d.message.contains("w1"));
}

#[test]
fn pv402_port_claimed_twice_and_map_mismatch() {
    // Port 1 appears in both workers' configurations.
    let ir = shard_ir(
        vec![worker("w0", &[0, 1], &[("s0", 0..32)]), worker("w1", &[1, 2], &[("s1", 32..64)])],
        64,
    );
    assert!(has(&check_shards(&ir), Code::PV402));

    // Routing map sends a configured port to the wrong worker.
    let mut ir = shard_ir(
        vec![worker("w0", &[0], &[("s0", 0..32)]), worker("w1", &[2], &[("s1", 32..64)])],
        64,
    );
    ir.port_map.insert(2, 0);
    assert!(has(&check_shards(&ir), Code::PV402));
}

#[test]
fn pv403_coverage_gap() {
    let ir = shard_ir(vec![worker("w0", &[0], &[("s0", 0..32)])], 64);
    let diags = check_shards(&ir);
    let d = diags.iter().find(|d| d.code == Code::PV403).expect("PV403");
    assert!(d.message.contains("32 of 64"), "{}", d.message);
}

#[test]
fn pv404_annex_with_multiple_workers() {
    let mut ir = shard_ir(
        vec![worker("w0", &[0], &[("s0", 0..32)]), worker("w1", &[2], &[("s1", 32..64)])],
        64,
    );
    ir.parent_has_annex = true;
    assert!(has(&check_shards(&ir), Code::PV404));
}

/// A real two-slice deployment sharded two ways is disjoint.
fn two_slice_config() -> ParkConfig {
    let mut cfg = ParkConfig::single_server(ChipProfile::default(), vec![0, 1], 2, 2048);
    cfg.pipes[0].slices = vec![
        SliceSpec {
            name: "server0".into(),
            split_ports: vec![0],
            merge_ports: vec![2],
            slots: 1024,
        },
        SliceSpec {
            name: "server1".into(),
            split_ports: vec![1],
            merge_ports: vec![3],
            slots: 1024,
        },
    ];
    cfg
}

#[test]
fn real_shard_plan_is_disjoint() {
    let cfg = two_slice_config();
    for workers in [1, 2] {
        let plan = ShardPlan::new(&cfg, workers).unwrap();
        let diags = check_shard_plan(&cfg, &plan);
        assert!(diags.is_empty(), "workers={workers}: {:?}", codes(&diags));
    }
}

#[test]
fn shard_ir_from_plan_reflects_geometry() {
    let cfg = two_slice_config();
    let plan = ShardPlan::new(&cfg, 2).unwrap();
    let ir = ShardIr::from_plan(&cfg, &plan);
    assert_eq!(ir.total_slots, 2048);
    assert_eq!(ir.workers.len(), 2);
    assert_eq!(ir.workers[0].claims[0].slots, 0..1024);
    assert_eq!(ir.workers[1].claims[0].slots, 1024..2048);
    assert_eq!(ir.port_map.len(), 4);
}

// --- Shipped programs ----------------------------------------------------

fn all_reports(cfg: &ParkConfig) -> Vec<pp_verify::Report> {
    let reports = check_deployment(cfg);
    for r in &reports {
        eprintln!("{}", r.render());
    }
    reports
}

#[test]
fn shipped_single_server_verifies_clean() {
    let cfg = ParkConfig::single_server(ChipProfile::default(), vec![0, 1], 2, 4096);
    let reports = all_reports(&cfg);
    for r in &reports {
        assert_eq!(r.count(Severity::Error), 0, "{}", r.render());
        assert_eq!(r.count(Severity::Warning), 0, "{}", r.render());
    }
    // Pinned regression report: the only findings are the two known-benign
    // dead metadata writes — META_SLICE (written by slice_select for the
    // future MAT-codegen worklist, read by nothing yet) and META_XSUM
    // (consumed only by the annex pipe, which this deployment lacks).
    let meta = reports
        .iter()
        .find(|r| r.program == "deployment meta dataflow")
        .expect("meta dataflow report");
    let msgs: Vec<&str> = meta.diagnostics.iter().map(|d| d.message.as_str()).collect();
    assert_eq!(meta.diagnostics.len(), 2, "{}", meta.render());
    assert!(meta.diagnostics.iter().all(|d| d.code == Code::PV204));
    assert!(msgs.iter().any(|m| m.contains("meta[4]")), "META_SLICE pinned: {msgs:?}");
    assert!(msgs.iter().any(|m| m.contains("meta[5]")), "META_XSUM pinned: {msgs:?}");
    // One more pinned true positive: merge_strip_disabled (stage 0)
    // removes every surviving shim with enb=0, so by the time the packet
    // reaches merge_validate, shim-valid implies enb=1 — the verifier
    // proves the enb conjunct redundant *in context*.
    let primary = reports.iter().find(|r| r.program == "park pipe 0").unwrap();
    assert_eq!(primary.diagnostics.len(), 1, "{}", primary.render());
    assert_eq!(primary.diagnostics[0].code, Code::PV203);
    assert_eq!(primary.diagnostics[0].mat.as_deref(), Some("merge_validate"));
}

#[test]
fn shipped_annex_deployment_verifies_clean() {
    let mut cfg = ParkConfig::single_server(ChipProfile::default(), vec![0, 1], 2, 4096);
    cfg.pipes[0].annex_pipe = Some(1);
    let reports = all_reports(&cfg);
    for r in &reports {
        assert_eq!(r.count(Severity::Error), 0, "{}", r.render());
        assert_eq!(r.count(Severity::Warning), 0, "{}", r.render());
    }
    // The recirculation bridge must resolve the annex pipe's META_XSUM
    // read — with entry facts plumbed there is no PV102 anywhere, and
    // META_XSUM is no longer a dead write (the annex reads it).
    let annex = reports.iter().find(|r| r.program == "annex pipe 1").expect("annex report");
    assert!(annex.diagnostics.iter().all(|d| d.code == Code::PV203), "{}", annex.render());
    // Pinned: one redundant-conjunct info per annex_store table — on the
    // store channel the parser requires the shim whenever blocks parsed,
    // so the gateway's pp.valid check is implied by the block check.
    assert_eq!(annex.diagnostics.len(), 14, "{}", annex.render());
    let meta = reports.iter().find(|r| r.program == "deployment meta dataflow").unwrap();
    let msgs: Vec<&str> = meta.diagnostics.iter().map(|d| d.message.as_str()).collect();
    assert_eq!(meta.diagnostics.len(), 1, "META_XSUM live in annex mode: {msgs:?}");
    assert!(msgs[0].contains("meta[4]"), "{msgs:?}");
}

#[test]
fn shipped_multislice_verifies_clean() {
    let cfg = two_slice_config();
    let reports = all_reports(&cfg);
    for r in &reports {
        assert_eq!(r.count(Severity::Error), 0, "{}", r.render());
    }
}

#[test]
fn check_on_pipeline_matches_deployment_primary() {
    use payloadpark::program::build_switch;
    let cfg = ParkConfig::single_server(ChipProfile::default(), vec![0, 1], 2, 1024);
    let (switch, _h) = build_switch(&cfg).unwrap();
    let pipe = switch.pipe(0);
    let diags = pp_verify::check(pipe, pipe.parser());
    assert!(diags.iter().all(|d| d.severity != Severity::Error), "{diags:?}");
}
