//! Deployment-level drivers: verify every pipe of a [`ParkConfig`],
//! bridging recirculation metadata facts from primary to annex pipes.

use payloadpark::program::build_switch;
use payloadpark::ParkConfig;

use crate::dataflow;
use crate::diag::{Code, Diagnostic, Report};
use crate::ir::ProgramIr;
use crate::locality;

/// Verifies a whole PayloadPark deployment: builds the switch program
/// (config time — no packets flow), extracts the IR of every programmed
/// pipe and runs passes 1–3 on each. When a pipe recirculates into an
/// annex pipe, the metadata facts guaranteed at every recirculation site
/// (per channel) become entry facts of the annex pipe's recirculation
/// ports, so the annex tables' `pp.tbl_idx`/checksum reads resolve.
/// Pass-PV204 dead-metadata analysis runs once over all pipes together,
/// so a word written in the primary pipe and read in the annex counts as
/// live.
pub fn check_deployment(cfg: &ParkConfig) -> Vec<Report> {
    let switch = match build_switch(cfg) {
        Ok((switch, _handles)) => switch,
        Err(e) => {
            return vec![Report::new(
                "deployment",
                vec![Diagnostic::new(Code::PV002, None, e.to_string())],
            )];
        }
    };

    let mut reports = Vec::new();
    let mut irs: Vec<ProgramIr> = Vec::new();
    for pipe_cfg in &cfg.pipes {
        let pipeline = switch.pipe(pipe_cfg.pipe);
        let ir = ProgramIr::from_pipeline(
            format!("park pipe {}", pipe_cfg.pipe),
            pipeline,
            pipeline.parser(),
        );
        let walk = dataflow::analyze(&ir);
        let mut diags = walk.diagnostics;
        diags.extend(locality::check_stage_locality(&ir));
        if let Some(annex) = pipe_cfg.annex_pipe {
            let annex_pipe = switch.pipe(annex);
            let mut annex_ir = ProgramIr::from_pipeline(
                format!("annex pipe {annex}"),
                annex_pipe,
                annex_pipe.parser(),
            );
            for (ch, facts) in &walk.recirc_exits {
                let port = cfg.chip.recirc_port(annex, *ch).0;
                annex_ir.entry.insert(port, facts.clone());
            }
            let annex_walk = dataflow::analyze(&annex_ir);
            let mut annex_diags = annex_walk.diagnostics;
            annex_diags.extend(locality::check_stage_locality(&annex_ir));
            reports.push(Report::new(annex_ir.name.clone(), annex_diags));
            irs.push(annex_ir);
        }
        reports.push(Report::new(ir.name.clone(), diags));
        irs.push(ir);
    }

    let meta = dataflow::meta_usage(&irs.iter().collect::<Vec<_>>());
    if !meta.is_empty() {
        reports.push(Report::new("deployment meta dataflow", meta));
    }
    reports.sort_by(|a, b| a.program.cmp(&b.program));
    reports
}
