//! Passes 1–2: PHV def-use dataflow and table reachability/shadowing.
//!
//! The analysis enumerates, per ingress port, every *parse outcome* the
//! parser accept set allows (which headers are valid on entry — e.g. a
//! split port admits plain L2 frames, IPv4 non-transport, and transport
//! with or without extracted payload blocks), then walks the stages in
//! execution order tracking a three-valued abstract state:
//!
//! * `must` — slots definitely valid/defined at this point;
//! * `may`  — slots possibly valid/defined (⊇ `must`);
//! * `enb`  — the PayloadPark `enb` bit when statically known;
//! * `flags` — guard-flag metadata words possibly set, each carrying the
//!   *imports*: slots that are guaranteed valid whenever the flag is
//!   observed set (because the setter's own firing precondition and
//!   effects guaranteed them). This resolves the `META_SPLIT_OK` /
//!   `META_MERGE_OK` idiom: a table gated on a flag inherits the facts of
//!   the table that set it.
//!
//! Each table evaluates to No / Maybe / Yes per state; a Yes-firing
//! table's base effects become definite facts, branch effects stay
//! possible. Reads are checked against the definite set (plus the firing
//! assumption: required slots and flag imports) — a header read outside
//! it is PV101, a metadata read outside it PV102, a write to a
//! possibly-invalid header PV103. Tables that never reach Maybe anywhere
//! are PV201 (infeasible at entry) or PV202 (shadowed — feasible at entry
//! but an earlier table always destroys the precondition); conjuncts that
//! are always satisfied whenever the rest hold are PV203.

use std::collections::{BTreeMap, BTreeSet};

use pp_rmt::summary::{Effects, Req, Slot};

use crate::diag::{Code, Diagnostic};
use crate::ir::{PortFacts, ProgramIr};

/// Number of user metadata words in the PHV (mirrors `pp_rmt::phv`).
const META_WORDS: u8 = 8;

#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
enum Tri {
    No,
    Maybe,
    Yes,
}

#[derive(Debug, Clone)]
struct FlagFact {
    definite: bool,
    imports: BTreeSet<Slot>,
}

#[derive(Debug, Clone, Default)]
struct AbsState {
    must: BTreeSet<Slot>,
    may: BTreeSet<Slot>,
    enb: Option<bool>,
    flags: BTreeMap<u8, FlagFact>,
    /// Last table that *definitely* invalidated a slot (shadow attribution).
    invalidated_by: BTreeMap<Slot, String>,
    /// Last table that definitely validated a slot.
    validated_by: BTreeMap<Slot, String>,
}

struct Outcome {
    state: AbsState,
    desc: String,
}

/// Enumerates the parse outcomes for one port, seeding recirculation
/// entry facts when present.
fn entry_outcomes(ir: &ProgramIr, port: u16) -> Vec<Outcome> {
    let facts = ir.entry.get(&port);
    let seed = |slots: &[Slot], enb: Option<bool>, desc: String| {
        let mut st = AbsState {
            must: slots.iter().copied().collect(),
            may: slots.iter().copied().collect(),
            enb,
            ..AbsState::default()
        };
        if let Some(f) = facts {
            for &w in &f.defined_meta {
                st.must.insert(Slot::Meta(w));
                st.may.insert(Slot::Meta(w));
            }
            for &w in &f.flags {
                st.must.insert(Slot::Meta(w));
                st.may.insert(Slot::Meta(w));
                st.flags.insert(w, FlagFact { definite: true, imports: BTreeSet::new() });
            }
        }
        Outcome { state: st, desc: format!("port {port}, {desc}") }
    };

    let mut outs = vec![
        seed(&[Slot::Eth], None, "non-IPv4 frame".into()),
        seed(&[Slot::Eth, Slot::Ipv4], None, "IPv4 non-transport".into()),
    ];
    let pp = ir.parser.pp_ports.contains(&port);
    let blocks_possible = ir.parser.block_ports.contains(&port) && ir.parser.block_capacity > 0;
    let base = [Slot::Eth, Slot::Ipv4, Slot::Transport];
    let mut block_cases = vec![false];
    if blocks_possible {
        block_cases.push(true);
    }
    for with_blocks in block_cases {
        let mut slots: Vec<Slot> = base.to_vec();
        let mut desc = String::from("transport");
        if with_blocks {
            slots.push(Slot::Blocks);
            desc.push_str("+blocks");
        }
        if pp {
            // On a PayloadPark port the header is *required* after the
            // transport header: transport-without-shim is a parse error,
            // so the only transport outcomes carry Pp, with either enb.
            slots.push(Slot::Pp);
            for enb in [false, true] {
                outs.push(seed(&slots, Some(enb), format!("{desc}+pp(enb={})", u8::from(enb))));
            }
        } else {
            outs.push(seed(&slots, None, desc));
        }
    }
    outs
}

/// The ports worth analyzing: everything the parser or any gateway names,
/// plus one representative unlisted port (plain traffic).
fn ports_of_interest(ir: &ProgramIr) -> Vec<u16> {
    let mut set: BTreeSet<u16> = ir.parser.pp_ports.iter().copied().collect();
    set.extend(ir.parser.block_ports.iter().copied());
    for mat in ir.mats() {
        if let Some(s) = &mat.summary {
            if let pp_rmt::summary::PortDomain::Set(ports) = &s.ports {
                set.extend(ports.iter());
            }
        }
    }
    set.extend(ir.entry.keys().copied());
    let other = (0..u16::MAX).find(|p| !set.contains(p)).unwrap_or(0);
    set.insert(other);
    set.into_iter().collect()
}

fn eval_req(r: &Req, st: &AbsState) -> Tri {
    match r {
        Req::Valid(s) => {
            if st.must.contains(s) {
                Tri::Yes
            } else if st.may.contains(s) {
                Tri::Maybe
            } else {
                Tri::No
            }
        }
        Req::Invalid(s) => {
            if !st.may.contains(s) {
                Tri::Yes
            } else if !st.must.contains(s) {
                Tri::Maybe
            } else {
                Tri::No
            }
        }
        Req::PpEnb(b) => match st.enb {
            Some(x) if x == *b => Tri::Yes,
            Some(_) => Tri::No,
            None => Tri::Maybe,
        },
        Req::MetaFlag(w) => match st.flags.get(w) {
            Some(f) if f.definite => Tri::Yes,
            Some(_) => Tri::Maybe,
            None => Tri::No,
        },
    }
}

fn fire_status(admitted: bool, evals: &[Tri]) -> Tri {
    if !admitted || evals.contains(&Tri::No) {
        Tri::No
    } else if evals.contains(&Tri::Maybe) {
        Tri::Maybe
    } else {
        Tri::Yes
    }
}

/// Slots an effect set defines (metadata writes, validated headers, flags).
fn defined_by(eff: &Effects) -> impl Iterator<Item = Slot> + '_ {
    eff.writes
        .iter()
        .filter(|s| s.is_meta())
        .copied()
        .chain(eff.sets_valid.iter().copied())
        .chain(eff.sets_flags.iter().map(|&w| Slot::Meta(w)))
}

fn apply_effects(
    st: &mut AbsState,
    eff: &Effects,
    definite: bool,
    mat: &str,
    flag_imports: &BTreeSet<Slot>,
) {
    for w in &eff.writes {
        if w.is_meta() {
            st.may.insert(*w);
            if definite {
                st.must.insert(*w);
            }
        }
    }
    for s in &eff.sets_valid {
        st.may.insert(*s);
        if definite {
            st.must.insert(*s);
            st.validated_by.insert(*s, mat.to_owned());
        }
    }
    for s in &eff.sets_invalid {
        st.must.remove(s);
        if definite {
            st.may.remove(s);
            st.invalidated_by.insert(*s, mat.to_owned());
        }
    }
    if let Some(b) = eff.sets_enb {
        st.enb = if definite || st.enb == Some(b) { Some(b) } else { None };
    }
    for &w in &eff.sets_flags {
        st.may.insert(Slot::Meta(w));
        if definite {
            st.must.insert(Slot::Meta(w));
        }
        let mut imports = flag_imports.clone();
        imports.insert(Slot::Meta(w));
        match st.flags.get_mut(&w) {
            Some(existing) => {
                existing.definite |= definite;
                existing.imports = existing.imports.intersection(&imports).copied().collect();
            }
            None => {
                st.flags.insert(w, FlagFact { definite, imports });
            }
        }
    }
}

/// Widen the state for a table without a summary: it may define anything,
/// but is assumed not to invalidate existing facts (documented in PV001).
fn havoc(st: &mut AbsState, flag_universe: &BTreeSet<u8>) {
    for s in [Slot::Eth, Slot::Ipv4, Slot::Transport, Slot::Pp, Slot::Blocks] {
        st.may.insert(s);
    }
    for w in 0..META_WORDS {
        st.may.insert(Slot::Meta(w));
    }
    st.enb = None;
    for &w in flag_universe {
        st.flags.entry(w).or_insert_with(|| FlagFact { definite: false, imports: BTreeSet::new() });
    }
}

#[derive(Default)]
struct MatAgg {
    ever_fires: bool,
    entry_feasible: bool,
    culprits: BTreeSet<String>,
    conjunct_live: Vec<bool>,
}

/// Result of the dataflow walk over one program.
pub struct WalkResult {
    /// PV001/PV1xx/PV2xx findings.
    pub diagnostics: Vec<Diagnostic>,
    /// Per recirculation channel: facts guaranteed on every path that
    /// requests recirculation there (intersection across paths). These
    /// become the entry facts of the target pipe's recirculation port.
    pub recirc_exits: BTreeMap<u8, PortFacts>,
}

fn slot_name(s: Slot) -> String {
    match s {
        Slot::Meta(w) => format!("meta[{w}]"),
        other => format!("{other:?}"),
    }
}

fn req_name(r: &Req) -> String {
    match r {
        Req::Valid(s) => format!("valid({})", slot_name(*s)),
        Req::Invalid(s) => format!("invalid({})", slot_name(*s)),
        Req::PpEnb(b) => format!("pp.enb=={b}"),
        Req::MetaFlag(w) => format!("flag(meta[{w}])"),
    }
}

/// Runs passes 1–2 over a program.
pub fn analyze(ir: &ProgramIr) -> WalkResult {
    // Deduplicated findings: first witness wins.
    let mut found: BTreeMap<(&'static str, String, String), Diagnostic> = BTreeMap::new();
    let mut emit = |code: Code, mat: &str, detail: String, message: String, witness: &str| {
        found
            .entry((code.as_str(), mat.to_owned(), detail))
            .or_insert_with(|| Diagnostic::new(code, Some(mat), message).with_witness(witness));
    };

    let flag_universe: BTreeSet<u8> = ir
        .mats()
        .filter_map(|m| m.summary.as_ref())
        .flat_map(|s| {
            s.effect_sets()
                .flat_map(|e| e.sets_flags.iter().copied())
                .chain(s.requires.iter().filter_map(|r| match r {
                    Req::MetaFlag(w) => Some(*w),
                    _ => None,
                }))
                .collect::<Vec<_>>()
        })
        .chain(ir.entry.values().flat_map(|f| f.flags.iter().copied()))
        .collect();

    let mats: Vec<_> = ir.mats().collect();
    let mut aggs: Vec<MatAgg> = mats
        .iter()
        .map(|m| MatAgg {
            conjunct_live: vec![false; m.summary.as_ref().map_or(0, |s| s.requires.len())],
            ..MatAgg::default()
        })
        .collect();
    let mut recirc_exits: BTreeMap<u8, PortFacts> = BTreeMap::new();

    for port in ports_of_interest(ir) {
        for outcome in entry_outcomes(ir, port) {
            // Entry feasibility (for PV201-vs-PV202 classification).
            for (mi, mat) in mats.iter().enumerate() {
                if let Some(sum) = &mat.summary {
                    let admitted = sum.ports.admits(port);
                    let evals: Vec<Tri> =
                        sum.requires.iter().map(|r| eval_req(r, &outcome.state)).collect();
                    if fire_status(admitted, &evals) != Tri::No {
                        aggs[mi].entry_feasible = true;
                    }
                }
            }

            let mut st = outcome.state.clone();
            let mut mi = 0usize;
            for stage in &ir.stages {
                for mat in stage {
                    let idx = mi;
                    mi += 1;
                    let Some(sum) = &mat.summary else {
                        havoc(&mut st, &flag_universe);
                        continue;
                    };
                    let admitted = sum.ports.admits(port);
                    let evals: Vec<Tri> = sum.requires.iter().map(|r| eval_req(r, &st)).collect();
                    let fire = fire_status(admitted, &evals);
                    if admitted {
                        for i in 0..evals.len() {
                            let others_hold =
                                evals.iter().enumerate().all(|(j, e)| j == i || *e != Tri::No);
                            if others_hold && evals[i] != Tri::Yes {
                                aggs[idx].conjunct_live[i] = true;
                            }
                        }
                    }
                    if fire == Tri::No {
                        if admitted {
                            // Shadow attribution: which earlier table
                            // destroyed a conjunct that entry satisfied?
                            for (i, r) in sum.requires.iter().enumerate() {
                                if evals[i] != Tri::No {
                                    continue;
                                }
                                let culprit = match r {
                                    Req::Valid(s) => st.invalidated_by.get(s),
                                    Req::Invalid(s) => st.validated_by.get(s),
                                    _ => None,
                                };
                                if let Some(c) = culprit {
                                    aggs[idx].culprits.insert(c.clone());
                                }
                            }
                        }
                        continue;
                    }
                    aggs[idx].ever_fires = true;

                    // The definite set under the firing assumption.
                    let mut definite = st.must.clone();
                    for r in &sum.requires {
                        match r {
                            Req::Valid(s) => {
                                definite.insert(*s);
                            }
                            Req::MetaFlag(w) => {
                                definite.insert(Slot::Meta(*w));
                                if let Some(f) = st.flags.get(w) {
                                    definite.extend(f.imports.iter().copied());
                                }
                            }
                            _ => {}
                        }
                    }

                    // Read/write checks over base + each branch.
                    let named: Vec<(&str, &Effects)> = std::iter::once(("", &sum.base))
                        .chain(sum.branches.iter().map(|b| (b.name, &b.effects)))
                        .collect();
                    for (bname, eff) in &named {
                        let ctx = if bname.is_empty() {
                            String::new()
                        } else {
                            format!(" (branch `{bname}`)")
                        };
                        for r in &eff.reads {
                            if definite.contains(r) {
                                continue;
                            }
                            if r.is_meta() {
                                emit(
                                    Code::PV102,
                                    &mat.name,
                                    slot_name(*r),
                                    format!(
                                        "reads {} which is not definitely written here{ctx} — \
                                         the parser's zero fill can leak through",
                                        slot_name(*r)
                                    ),
                                    &outcome.desc,
                                );
                            } else {
                                let how = if st.may.contains(r) {
                                    "may be invalid"
                                } else {
                                    "is never valid"
                                };
                                emit(
                                    Code::PV101,
                                    &mat.name,
                                    slot_name(*r),
                                    format!(
                                        "reads {} which {how} when this table fires{ctx}",
                                        slot_name(*r)
                                    ),
                                    &outcome.desc,
                                );
                            }
                        }
                        for w in &eff.writes {
                            let ok = match w {
                                // The blocks vector is sized iff a
                                // transport header parsed.
                                Slot::Blocks => definite.contains(&Slot::Transport),
                                Slot::Ipv4 | Slot::Transport | Slot::Pp => {
                                    definite.contains(w) || eff.sets_valid.contains(w)
                                }
                                Slot::Eth | Slot::Meta(_) => true,
                            };
                            if !ok {
                                emit(
                                    Code::PV103,
                                    &mat.name,
                                    slot_name(*w),
                                    format!(
                                        "writes {} which may be invalid when this table \
                                         fires{ctx} — the write is lost or out of bounds",
                                        slot_name(*w)
                                    ),
                                    &outcome.desc,
                                );
                            }
                        }
                    }

                    // Recirculation exit facts: what is guaranteed about
                    // metadata on every path that recirculates here.
                    for (bname, eff) in &named {
                        let Some(ch) = eff.recirculates else { continue };
                        let mut defined: BTreeSet<u8> = definite
                            .iter()
                            .filter_map(|s| match s {
                                Slot::Meta(w) => Some(*w),
                                _ => None,
                            })
                            .collect();
                        let mut flags: BTreeSet<u8> =
                            st.flags.iter().filter(|(_, f)| f.definite).map(|(w, _)| *w).collect();
                        let mut absorb = |e: &Effects| {
                            defined.extend(e.writes.iter().filter_map(|s| match s {
                                Slot::Meta(w) => Some(*w),
                                _ => None,
                            }));
                            defined.extend(e.sets_flags.iter().copied());
                            flags.extend(e.sets_flags.iter().copied());
                        };
                        absorb(&sum.base);
                        if !bname.is_empty() {
                            absorb(eff);
                        }
                        match recirc_exits.get_mut(&ch) {
                            Some(existing) => {
                                existing.defined_meta =
                                    existing.defined_meta.intersection(&defined).copied().collect();
                                existing.flags =
                                    existing.flags.intersection(&flags).copied().collect();
                            }
                            None => {
                                recirc_exits.insert(ch, PortFacts { defined_meta: defined, flags });
                            }
                        }
                    }

                    // Apply effects.
                    let definite_level = fire == Tri::Yes;
                    let base_imports: BTreeSet<Slot> =
                        definite.iter().copied().chain(defined_by(&sum.base)).collect();
                    apply_effects(&mut st, &sum.base, definite_level, &mat.name, &base_imports);
                    for br in &sum.branches {
                        let imports: BTreeSet<Slot> =
                            base_imports.iter().copied().chain(defined_by(&br.effects)).collect();
                        apply_effects(&mut st, &br.effects, false, &mat.name, &imports);
                    }
                }
            }
        }
    }

    let mut diagnostics: Vec<Diagnostic> = Vec::new();
    for mat in &mats {
        if mat.summary.is_none() {
            diagnostics.push(Diagnostic::new(
                Code::PV001,
                Some(&mat.name),
                "table has no dataflow summary; passes 1-2 treat it as opaque \
                 (may define anything, assumed to invalidate nothing)",
            ));
        }
    }
    for (mat, agg) in mats.iter().zip(&aggs) {
        let Some(sum) = &mat.summary else { continue };
        if !agg.ever_fires {
            if agg.entry_feasible {
                let culprits = if agg.culprits.is_empty() {
                    "earlier tables".to_owned()
                } else {
                    agg.culprits.iter().cloned().collect::<Vec<_>>().join(", ")
                };
                diagnostics.push(Diagnostic::new(
                    Code::PV202,
                    Some(&mat.name),
                    format!(
                        "shadowed: its precondition is feasible at parser entry but is \
                         always destroyed by {culprits}"
                    ),
                ));
            } else {
                diagnostics.push(Diagnostic::new(
                    Code::PV201,
                    Some(&mat.name),
                    "can never fire given the parser accept set (dead rule)",
                ));
            }
        } else {
            for (i, live) in agg.conjunct_live.iter().enumerate() {
                if !live {
                    diagnostics.push(Diagnostic::new(
                        Code::PV203,
                        Some(&mat.name),
                        format!(
                            "gateway conjunct {} is redundant: always satisfied when the \
                             other conjuncts hold",
                            req_name(&sum.requires[i])
                        ),
                    ));
                }
            }
        }
    }
    diagnostics.extend(found.into_values());

    WalkResult { diagnostics, recirc_exits }
}

/// Whole-deployment metadata def-use: words written by some table but read
/// by none (PV204). Pass every pipe of a deployment so cross-pipe reads
/// (recirculation bridging) are credited.
pub fn meta_usage(irs: &[&ProgramIr]) -> Vec<Diagnostic> {
    let mut writers: BTreeMap<u8, BTreeSet<String>> = BTreeMap::new();
    let mut readers: BTreeSet<u8> = BTreeSet::new();
    for ir in irs {
        for mat in ir.mats() {
            let Some(sum) = &mat.summary else { continue };
            readers.extend(sum.meta_reads());
            for w in sum.meta_writes() {
                writers.entry(w).or_default().insert(mat.name.clone());
            }
        }
    }
    writers
        .into_iter()
        .filter(|(w, _)| !readers.contains(w))
        .map(|(w, who)| {
            let who = who.into_iter().collect::<Vec<_>>().join(", ");
            Diagnostic::new(
                Code::PV204,
                Some(&who),
                format!("metadata word meta[{w}] is written but never read in this deployment"),
            )
        })
        .collect()
}
