//! Diagnostics: stable codes, severities and the rendered report.

use std::fmt;

/// How bad a finding is. `Error` findings fail `pp-lint` (exit 1) and CI.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum Severity {
    /// Informational: worth a look, harmless to ship (dead meta writes,
    /// unanalyzable tables, unused registers).
    Info,
    /// Suspicious: likely-unintended but not unsound (reads of
    /// zero-initialised metadata, unreachable tables, unproven RMW
    /// exclusivity).
    Warning,
    /// A violated invariant the runtime relies on: reads of invalid
    /// headers, shadowed tables, cross-stage register bindings,
    /// overlapping shard ownership.
    Error,
}

impl fmt::Display for Severity {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(match self {
            Severity::Info => "info",
            Severity::Warning => "warning",
            Severity::Error => "error",
        })
    }
}

/// Stable diagnostic codes. The number space is PV`<pass><nn>`:
/// PV0xx tool-level, PV1xx def-use, PV2xx reachability/shadowing,
/// PV3xx stage-locality, PV4xx shard disjointness. Codes are append-only —
/// tests and downstream tooling pin them.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
#[non_exhaustive]
pub enum Code {
    /// A MAT has no dataflow summary; passes 1–2 treat it as opaque.
    PV001,
    /// The configuration failed validation before any pass ran.
    PV002,
    /// Action reads a header slot that may be invalid on a reachable path.
    PV101,
    /// Action reads a metadata word not definitely written on some path
    /// (it reads the parser's zero fill).
    PV102,
    /// Action writes a header slot that may be invalid (the write is
    /// silently lost, or for payload blocks, out of the sized vector).
    PV103,
    /// Table can never fire given the parser accept set (dead rule).
    PV201,
    /// Table is shadowed: its precondition is feasible at parser entry but
    /// an earlier table always destroys it.
    PV202,
    /// Gateway conjunct is redundant: implied by the parser accept set and
    /// the other conjuncts on every reachable packet.
    PV203,
    /// Metadata word is written but never read by any table in the
    /// deployment (dead write).
    PV204,
    /// Register array is bound by tables in more than one stage — breaks
    /// the stage-locality precondition of batch/scalar equivalence.
    PV301,
    /// Register array is bound in a stage other than the one its spec
    /// declares (stateful memory is physically per-stage).
    PV302,
    /// Two tables in one stage bind the same register without provably
    /// exclusive guards: a packet could RMW the same cell twice.
    PV303,
    /// Register array is declared but never bound by any table.
    PV304,
    /// Two shard workers own overlapping park-table slot ranges.
    PV401,
    /// A port is claimed by more than one shard worker (or the plan's
    /// port map disagrees with a worker's slice configuration).
    PV402,
    /// Shard coverage gap: a parent slot range or port no worker owns.
    PV403,
    /// Recirculation (annex) enabled in a multi-worker plan: recirculated
    /// packets would cross worker ownership.
    PV404,
    /// A port is claimed by more than one cluster switch (or the cluster
    /// plan's routing map disagrees with a switch's slice configuration):
    /// split/merge traffic would reach a switch that does not own the
    /// slot range its tags address.
    PV405,
    /// Cluster coverage gap: a parent slot range or port no switch owns —
    /// parking capacity or traffic silently unserved.
    PV406,
}

impl Code {
    /// The stable text form ("PV101").
    pub fn as_str(self) -> &'static str {
        match self {
            Code::PV001 => "PV001",
            Code::PV002 => "PV002",
            Code::PV101 => "PV101",
            Code::PV102 => "PV102",
            Code::PV103 => "PV103",
            Code::PV201 => "PV201",
            Code::PV202 => "PV202",
            Code::PV203 => "PV203",
            Code::PV204 => "PV204",
            Code::PV301 => "PV301",
            Code::PV302 => "PV302",
            Code::PV303 => "PV303",
            Code::PV304 => "PV304",
            Code::PV401 => "PV401",
            Code::PV402 => "PV402",
            Code::PV403 => "PV403",
            Code::PV404 => "PV404",
            Code::PV405 => "PV405",
            Code::PV406 => "PV406",
        }
    }

    /// The default severity of this code.
    pub fn severity(self) -> Severity {
        match self {
            Code::PV001 | Code::PV203 | Code::PV204 | Code::PV304 => Severity::Info,
            Code::PV102 | Code::PV103 | Code::PV201 | Code::PV303 | Code::PV403 | Code::PV406 => {
                Severity::Warning
            }
            Code::PV002
            | Code::PV101
            | Code::PV202
            | Code::PV301
            | Code::PV302
            | Code::PV401
            | Code::PV402
            | Code::PV404
            | Code::PV405 => Severity::Error,
        }
    }
}

impl fmt::Display for Code {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.as_str())
    }
}

/// One finding. Diagnostics are plain data: stable [`Code`], the severity
/// (always `code.severity()`), the table it anchors to when there is one,
/// a human-readable message and, for path-sensitive findings, a witness
/// describing a packet shape that exhibits the problem.
#[derive(Debug, Clone)]
pub struct Diagnostic {
    /// Stable code (see [`Code`] for the catalogue).
    pub code: Code,
    /// Severity, derived from the code.
    pub severity: Severity,
    /// The MAT the finding anchors to, when applicable.
    pub mat: Option<String>,
    /// What is wrong, in one sentence.
    pub message: String,
    /// A packet shape (ingress port + parse outcome) witnessing the
    /// finding, for path-sensitive passes.
    pub witness: Option<String>,
}

impl Diagnostic {
    /// Builds a diagnostic with the code's default severity.
    pub fn new(code: Code, mat: Option<&str>, message: impl Into<String>) -> Self {
        Diagnostic {
            code,
            severity: code.severity(),
            mat: mat.map(str::to_owned),
            message: message.into(),
            witness: None,
        }
    }

    /// Attaches a witness packet shape.
    pub fn with_witness(mut self, witness: impl Into<String>) -> Self {
        self.witness = Some(witness.into());
        self
    }
}

impl fmt::Display for Diagnostic {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{} [{}]", self.severity, self.code)?;
        if let Some(mat) = &self.mat {
            write!(f, " {mat}:")?;
        }
        write!(f, " {}", self.message)?;
        if let Some(w) = &self.witness {
            write!(f, " (witness: {w})")?;
        }
        Ok(())
    }
}

/// All findings for one analyzed program, with a rendered text form.
#[derive(Debug, Clone)]
pub struct Report {
    /// Label of the analyzed program ("park pipe 0", "annex pipe 1", ...).
    pub program: String,
    /// Findings, ordered most severe first, then by code.
    pub diagnostics: Vec<Diagnostic>,
}

impl Report {
    /// Wraps findings under a program label, sorting them most severe
    /// first then by code (stable within a code).
    pub fn new(program: impl Into<String>, mut diagnostics: Vec<Diagnostic>) -> Self {
        diagnostics.sort_by(|a, b| b.severity.cmp(&a.severity).then_with(|| a.code.cmp(&b.code)));
        Report { program: program.into(), diagnostics }
    }

    /// The most severe finding present, if any.
    pub fn worst(&self) -> Option<Severity> {
        self.diagnostics.iter().map(|d| d.severity).max()
    }

    /// Number of findings at `severity`.
    pub fn count(&self, severity: Severity) -> usize {
        self.diagnostics.iter().filter(|d| d.severity == severity).count()
    }

    /// Renders the report as text, one finding per line.
    pub fn render(&self) -> String {
        let mut out = String::new();
        let verdict = match self.worst() {
            Some(Severity::Error) => "FAIL",
            Some(Severity::Warning) => "warn",
            _ => "ok",
        };
        out.push_str(&format!(
            "== {} — {} ({} error, {} warning, {} info)\n",
            self.program,
            verdict,
            self.count(Severity::Error),
            self.count(Severity::Warning),
            self.count(Severity::Info),
        ));
        for d in &self.diagnostics {
            out.push_str(&format!("  {d}\n"));
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn codes_round_trip_and_have_severities() {
        for code in [
            Code::PV001,
            Code::PV002,
            Code::PV101,
            Code::PV102,
            Code::PV103,
            Code::PV201,
            Code::PV202,
            Code::PV203,
            Code::PV204,
            Code::PV301,
            Code::PV302,
            Code::PV303,
            Code::PV304,
            Code::PV401,
            Code::PV402,
            Code::PV403,
            Code::PV404,
            Code::PV405,
            Code::PV406,
        ] {
            assert!(code.as_str().starts_with("PV"));
            let _ = code.severity();
        }
        assert_eq!(Code::PV101.severity(), Severity::Error);
        assert_eq!(Code::PV102.severity(), Severity::Warning);
        assert_eq!(Code::PV204.severity(), Severity::Info);
    }

    #[test]
    fn report_sorts_errors_first() {
        let r = Report::new(
            "p",
            vec![
                Diagnostic::new(Code::PV204, None, "dead write"),
                Diagnostic::new(Code::PV101, Some("t"), "bad read").with_witness("port 0, Eth"),
            ],
        );
        assert_eq!(r.diagnostics[0].code, Code::PV101);
        assert_eq!(r.worst(), Some(Severity::Error));
        let text = r.render();
        assert!(text.contains("FAIL") && text.contains("witness: port 0"), "{text}");
    }
}
