//! Pass 5: cluster-plan disjointness and coverage.
//!
//! The distributed tier's analogue of the shard pass: a
//! [`pp_cluster::ClusterPlan`] places a parent deployment's slices onto
//! switches, and correctness needs every lookup-table slot range and
//! every ingress port owned by exactly one switch (PV401/PV405 errors),
//! and the whole parent covered (PV406 warnings — a gap loses capacity
//! or strands traffic, but races nothing). As with shards, the checks
//! run over a plain-data [`ClusterIr`] so negative tests can hand-build
//! the shapes a real [`ClusterPlan::with_ring`] refuses to construct:
//! the verifier proves the property instead of trusting the constructor.
//!
//! One cluster-specific check has no shard counterpart: a switch's slice
//! *bases* must match the parent layout (PV405). A cluster switch
//! addresses its store at global coordinates precisely so wire tags
//! survive migration; a base that disagrees with the parent's slice
//! layout silently writes another slice's slots.

use std::collections::{BTreeMap, BTreeSet};
use std::ops::Range;

use payloadpark::ParkConfig;
use pp_cluster::ClusterPlan;

use crate::diag::{Code, Diagnostic};
use crate::shard::SliceClaim;

/// One switch of a cluster plan.
#[derive(Debug, Clone)]
pub struct SwitchIr {
    /// Switch id.
    pub id: u32,
    /// Split and merge ports this switch serves.
    pub ports: BTreeSet<u16>,
    /// Slot ranges this switch claims, in its config's slice order.
    pub claims: Vec<SliceClaim>,
}

/// The analyzed form of a cluster plan.
#[derive(Debug, Clone)]
pub struct ClusterIr {
    /// Total slots of the parent deployment (the space to cover).
    pub total_slots: usize,
    /// All split/merge ports of the parent deployment.
    pub parent_ports: BTreeSet<u16>,
    /// Parent slice layout: name → global slot range.
    pub parent_layout: BTreeMap<String, Range<usize>>,
    /// Per-switch claims.
    pub switches: Vec<SwitchIr>,
    /// The plan's port→switch routing map.
    pub port_map: BTreeMap<u16, u32>,
}

impl ClusterIr {
    /// Builds the IR from a parent deployment and a plan derived from
    /// it. Claims come from each switch's *bases* (what its store
    /// program will actually address), not from the parent layout — so
    /// a base/layout disagreement is visible to the checks.
    pub fn from_plan(parent: &ParkConfig, plan: &ClusterPlan) -> ClusterIr {
        let pipe = &parent.pipes[0];
        let mut parent_layout = BTreeMap::new();
        let mut parent_ports = BTreeSet::new();
        let mut base = 0usize;
        for slice in &pipe.slices {
            parent_layout.insert(slice.name.clone(), base..base + slice.slots);
            base += slice.slots;
            parent_ports.extend(slice.split_ports.iter().copied());
            parent_ports.extend(slice.merge_ports.iter().copied());
        }
        let switches = plan
            .switches()
            .iter()
            .map(|&id| {
                let cfg = plan.config(id).expect("plan switches own slices");
                let bases = plan.bases(id).expect("config implies bases");
                let mut ports = BTreeSet::new();
                let mut claims = Vec::new();
                for (slice, &b) in cfg.pipes[0].slices.iter().zip(bases) {
                    ports.extend(slice.split_ports.iter().copied());
                    ports.extend(slice.merge_ports.iter().copied());
                    claims.push(SliceClaim {
                        name: slice.name.clone(),
                        slots: b as usize..b as usize + slice.slots,
                    });
                }
                SwitchIr { id, ports, claims }
            })
            .collect();
        let port_map = plan.port_owners().collect();
        ClusterIr {
            total_slots: pipe.total_slots(),
            parent_ports,
            parent_layout,
            switches,
            port_map,
        }
    }
}

fn overlap(a: &Range<usize>, b: &Range<usize>) -> bool {
    a.start < b.end && b.start < a.end
}

/// Runs pass 5: PV401 (slot overlap), PV405 (port double-claim /
/// routing-map mismatch / base-layout mismatch), PV406 (coverage gaps).
pub fn check_cluster(ir: &ClusterIr) -> Vec<Diagnostic> {
    let mut diags = Vec::new();

    // PV401: overlapping slot ranges across (or within) switches — two
    // stores would both believe they own the cells a wire tag addresses.
    let claims: Vec<(u32, &SliceClaim)> =
        ir.switches.iter().flat_map(|s| s.claims.iter().map(move |c| (s.id, c))).collect();
    for i in 0..claims.len() {
        for j in (i + 1)..claims.len() {
            let (sa, ca) = claims[i];
            let (sb, cb) = claims[j];
            if overlap(&ca.slots, &cb.slots) {
                diags.push(Diagnostic::new(
                    Code::PV401,
                    None,
                    format!(
                        "slot ranges overlap: switch{sa}/{} owns {:?} and switch{sb}/{} \
                         owns {:?} — both stores would serve the same wire tags",
                        ca.name, ca.slots, cb.name, cb.slots
                    ),
                ));
            }
        }
    }

    // PV405: a port claimed by two switches, claimed against the routing
    // map, or a claim whose base disagrees with the parent layout.
    let mut port_owners: BTreeMap<u16, Vec<u32>> = BTreeMap::new();
    for s in &ir.switches {
        for &p in &s.ports {
            port_owners.entry(p).or_default().push(s.id);
        }
    }
    for (port, owners) in &port_owners {
        if owners.len() > 1 {
            diags.push(Diagnostic::new(
                Code::PV405,
                None,
                format!(
                    "port {port} is claimed by {} switches ({}) — split and merge \
                     traffic would park on one and restore from another",
                    owners.len(),
                    owners.iter().map(u32::to_string).collect::<Vec<_>>().join(", ")
                ),
            ));
        }
    }
    for s in &ir.switches {
        for &p in &s.ports {
            match ir.port_map.get(&p) {
                Some(&mapped) if mapped != s.id => diags.push(Diagnostic::new(
                    Code::PV405,
                    None,
                    format!(
                        "routing map sends port {p} to switch{mapped} but switch{} \
                         configures it — packets would reach a non-owner",
                        s.id
                    ),
                )),
                Some(_) => {}
                None => diags.push(Diagnostic::new(
                    Code::PV405,
                    None,
                    format!(
                        "port {p} is configured by switch{} but absent from the routing map",
                        s.id
                    ),
                )),
            }
        }
        for claim in &s.claims {
            match ir.parent_layout.get(&claim.name) {
                Some(expected) if *expected != claim.slots => diags.push(Diagnostic::new(
                    Code::PV405,
                    None,
                    format!(
                        "switch{} addresses slice '{}' at {:?} but the parent lays it \
                         out at {:?} — wire tags would dereference the wrong slots",
                        s.id, claim.name, claim.slots, expected
                    ),
                )),
                Some(_) => {}
                None => diags.push(Diagnostic::new(
                    Code::PV405,
                    None,
                    format!(
                        "switch{} claims slice '{}', which the parent deployment \
                         does not declare",
                        s.id, claim.name
                    ),
                )),
            }
        }
    }

    // PV406: coverage gaps — slots or parent ports no switch serves.
    let mut covered = vec![false; ir.total_slots];
    for (_, c) in &claims {
        for s in c.slots.clone() {
            if let Some(slot) = covered.get_mut(s) {
                *slot = true;
            }
        }
    }
    let uncovered = covered.iter().filter(|c| !**c).count();
    if uncovered > 0 {
        diags.push(Diagnostic::new(
            Code::PV406,
            None,
            format!(
                "{uncovered} of {} parent lookup-table slots are owned by no switch — \
                 parking capacity is silently lost",
                ir.total_slots
            ),
        ));
    }
    for &p in &ir.parent_ports {
        if !port_owners.contains_key(&p) {
            diags.push(Diagnostic::new(
                Code::PV406,
                None,
                format!("parent port {p} is served by no switch — its traffic is unparked"),
            ));
        }
    }
    diags
}

/// Convenience: build the IR from a plan and check it.
pub fn check_cluster_plan(parent: &ParkConfig, plan: &ClusterPlan) -> Vec<Diagnostic> {
    check_cluster(&ClusterIr::from_plan(parent, plan))
}

#[cfg(test)]
mod tests {
    use super::*;
    use payloadpark::config::SliceSpec;
    use payloadpark::{ParkConfig, PipePark};
    use pp_rmt::ChipProfile;

    fn sliced(n: usize, slots: usize) -> ParkConfig {
        let mut cfg = ParkConfig::single_server(ChipProfile::default(), vec![0], 1, slots);
        cfg.pipes[0] = PipePark {
            pipe: 0,
            slices: (0..n)
                .map(|k| SliceSpec {
                    name: format!("server{k}"),
                    split_ports: vec![2 * k as u16],
                    merge_ports: vec![2 * k as u16 + 1],
                    slots,
                })
                .collect(),
            annex_pipe: None,
        };
        cfg
    }

    #[test]
    fn real_plans_are_clean_at_every_width() {
        let parent = sliced(8, 32);
        for n in [1usize, 2, 3, 5] {
            let plan = ClusterPlan::new(&parent, n, 42).unwrap();
            let diags = check_cluster_plan(&parent, &plan);
            assert!(diags.is_empty(), "n={n}: {diags:?}");
        }
    }

    fn clean_ir() -> ClusterIr {
        // 8 slices over 2 switches: seed 42 gives both switches work.
        let parent = sliced(8, 16);
        let plan = ClusterPlan::new(&parent, 2, 42).unwrap();
        let ir = ClusterIr::from_plan(&parent, &plan);
        assert_eq!(ir.switches.len(), 2, "fixture needs two serving switches");
        ir
    }

    #[test]
    fn port_double_claim_is_pv405_error() {
        let mut ir = clean_ir();
        let stolen = *ir.switches[0].ports.iter().next().unwrap();
        ir.switches[1].ports.insert(stolen);
        let diags = check_cluster(&ir);
        assert!(
            diags.iter().any(|d| d.code == Code::PV405 && d.message.contains("claimed by 2")),
            "{diags:?}"
        );
        assert_eq!(Code::PV405.severity(), crate::Severity::Error);
    }

    #[test]
    fn routing_map_mismatch_is_pv405() {
        let mut ir = clean_ir();
        // Swap one port's routing to the other switch.
        let p = *ir.switches[0].ports.iter().next().unwrap();
        let other = ir.switches[1].id;
        ir.port_map.insert(p, other);
        let diags = check_cluster(&ir);
        assert!(diags.iter().any(|d| d.code == Code::PV405 && d.message.contains("routing map")));
    }

    #[test]
    fn base_layout_mismatch_is_pv405() {
        let mut ir = clean_ir();
        let claim = &mut ir.switches[0].claims[0];
        claim.slots = claim.slots.start + 1..claim.slots.end + 1;
        let diags = check_cluster(&ir);
        assert!(
            diags.iter().any(|d| d.code == Code::PV405 && d.message.contains("wire tags")),
            "{diags:?}"
        );
    }

    #[test]
    fn coverage_gap_is_pv406_warning() {
        let mut ir = clean_ir();
        // Drop one switch entirely: its slots and ports go unserved.
        let gone = ir.switches.pop().unwrap();
        for p in &gone.ports {
            ir.port_map.remove(p);
        }
        let diags = check_cluster(&ir);
        let gaps: Vec<_> = diags.iter().filter(|d| d.code == Code::PV406).collect();
        assert!(gaps.iter().any(|d| d.message.contains("slots")), "{diags:?}");
        assert!(gaps.iter().any(|d| d.message.contains("port")), "{diags:?}");
        assert_eq!(Code::PV406.severity(), crate::Severity::Warning);
        // Slot overlap within the surviving claims stays clean.
        assert!(!diags.iter().any(|d| d.code == Code::PV401));
    }

    #[test]
    fn slot_overlap_is_pv401() {
        let mut ir = clean_ir();
        // Make switch 1's first claim collide with switch 0's.
        let claim = ir.switches[0].claims[0].clone();
        ir.switches[1].claims[0].slots = claim.slots.clone();
        let diags = check_cluster(&ir);
        assert!(diags.iter().any(|d| d.code == Code::PV401), "{diags:?}");
    }
}
