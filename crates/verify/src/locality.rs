//! Pass 3: stateful-register stage locality.
//!
//! The batch executor (`Pipeline::execute_batch`) and the sharded fastpath
//! are scalar-equivalent only because a register array is touched from
//! exactly one stage: stage-major batch execution then performs every RMW
//! of an array in the same global order as packet-major scalar execution.
//! This pass proves that property over the IR — and additionally that the
//! binding stage matches the stage the register spec declares (stateful
//! SRAM is physically per-stage), and that two same-stage tables binding
//! one array have provably exclusive guards (otherwise a single packet
//! could RMW the same cell twice, which the Tofino stateful ALU cannot do).

use std::collections::BTreeMap;

use pp_rmt::summary::{PortDomain, Req};

use crate::diag::{Code, Diagnostic};
use crate::ir::{MatIr, ProgramIr};

/// Whether two tables can be proven never to fire on the same packet.
fn mutually_exclusive(a: &MatIr, b: &MatIr) -> bool {
    let (Some(sa), Some(sb)) = (&a.summary, &b.summary) else {
        return false;
    };
    if let (PortDomain::Set(pa), PortDomain::Set(pb)) = (&sa.ports, &sb.ports) {
        if pa.iter().all(|p| !pb.contains(p)) {
            return true;
        }
    }
    for ra in &sa.requires {
        for rb in &sb.requires {
            let contradictory = match (ra, rb) {
                (Req::Valid(x), Req::Invalid(y)) | (Req::Invalid(x), Req::Valid(y)) => x == y,
                (Req::PpEnb(x), Req::PpEnb(y)) => x != y,
                _ => false,
            };
            if contradictory {
                return true;
            }
        }
    }
    false
}

/// Runs pass 3 over a program: PV301/PV302/PV303/PV304.
pub fn check_stage_locality(ir: &ProgramIr) -> Vec<Diagnostic> {
    let mut diags = Vec::new();
    // register index -> stage -> binding tables.
    let mut bound: BTreeMap<usize, BTreeMap<usize, Vec<&MatIr>>> = BTreeMap::new();
    for mat in ir.mats() {
        if let Some(reg) = mat.stateful {
            bound.entry(reg).or_default().entry(mat.stage).or_default().push(mat);
        }
    }
    for (reg_idx, by_stage) in &bound {
        let reg_name = ir
            .registers
            .get(*reg_idx)
            .map_or_else(|| format!("register #{reg_idx}"), |r| r.name.clone());
        if by_stage.len() > 1 {
            let sites: Vec<String> = by_stage
                .iter()
                .flat_map(|(stage, mats)| {
                    mats.iter().map(move |m| format!("{}@stage{}", m.name, stage))
                })
                .collect();
            diags.push(Diagnostic::new(
                Code::PV301,
                None,
                format!(
                    "register `{reg_name}` is bound in {} stages ({}) — breaks the \
                     stage-locality precondition of batch/scalar equivalence",
                    by_stage.len(),
                    sites.join(", ")
                ),
            ));
        }
        for (stage, mats) in by_stage {
            if let Some(spec) = ir.registers.get(*reg_idx) {
                if *stage != spec.stage {
                    diags.push(Diagnostic::new(
                        Code::PV302,
                        Some(&mats[0].name),
                        format!(
                            "binds register `{reg_name}` from stage {stage}, but its spec \
                             places it in stage {} — stateful SRAM is per-stage",
                            spec.stage
                        ),
                    ));
                }
            }
            for i in 0..mats.len() {
                for j in (i + 1)..mats.len() {
                    if !mutually_exclusive(mats[i], mats[j]) {
                        diags.push(Diagnostic::new(
                            Code::PV303,
                            Some(&mats[i].name),
                            format!(
                                "and `{}` both bind register `{reg_name}` in stage {stage} \
                                 without provably exclusive guards — one packet could RMW \
                                 the array twice",
                                mats[j].name
                            ),
                        ));
                    }
                }
            }
        }
    }
    for (idx, reg) in ir.registers.iter().enumerate() {
        if !bound.contains_key(&idx) {
            diags.push(Diagnostic::new(
                Code::PV304,
                None,
                format!("register `{}` is declared but never bound by any table", reg.name),
            ));
        }
    }
    diags
}
