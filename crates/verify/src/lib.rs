//! `pp_verify`: a static dataplane verifier for the RMT IR.
//!
//! Four analysis passes over the in-memory program form, run at config
//! time (no packets flow, nothing touches the zero-alloc hot path):
//!
//! 1. **PHV def-use dataflow** — every header read is dominated by a
//!    parser extract or a prior-stage validation on every reachable
//!    (port, parse-outcome) path; metadata reads are definitely written
//!    first. Codes PV101–PV103.
//! 2. **Reachability and shadowing** — dead rules, tables whose
//!    precondition an earlier table always destroys, redundant gateway
//!    conjuncts, dead metadata writes. Codes PV201–PV204.
//! 3. **Stateful stage locality** — no register array bound from more
//!    than one stage (the precondition under which
//!    [`pp_rmt::Pipeline::execute_batch`] is scalar-equivalent), bindings
//!    match spec stages, same-stage double bindings are provably
//!    exclusive. Codes PV301–PV304.
//! 4. **Shard disjointness** — every lookup-table slot range and ingress
//!    port of a [`payloadpark::shard::ShardPlan`] is owned by exactly one
//!    worker. Codes PV401–PV404.
//! 5. **Cluster disjointness** — the distributed analogue of pass 4: a
//!    [`pp_cluster::ClusterPlan`]'s slot ranges, port claims, routing map
//!    and global slice bases are consistent and cover the parent. Codes
//!    PV401, PV405–PV406.
//!
//! The verifier never inspects closures: each MAT carries a declarative
//! [`pp_rmt::MatSummary`] describing its gateway and action effects, and
//! the passes walk those summaries (tables without one are reported as
//! PV001 and treated conservatively).
//!
//! Entry points: [`check`] for one built pipeline (the ISSUE-stable API),
//! [`check_deployment`] for a whole [`payloadpark::ParkConfig`] including
//! annex-pipe recirculation bridging, [`check_shard_plan`] for pass 4,
//! [`check_cluster_plan`] for pass 5, and
//! [`check_ir`] for a hand-built [`ProgramIr`] (negative tests). The
//! `pp-lint` binary in `pp_harness` runs all of them over every built-in
//! program and exits non-zero on any [`Severity::Error`] finding.

pub mod cluster;
pub mod dataflow;
pub mod deploy;
pub mod diag;
pub mod ir;
pub mod locality;
pub mod shard;

use pp_rmt::{ParserConfig, Pipeline};

pub use cluster::{check_cluster, check_cluster_plan, ClusterIr, SwitchIr};
pub use deploy::check_deployment;
pub use diag::{Code, Diagnostic, Report, Severity};
pub use ir::{MatIr, ParserIr, PortFacts, ProgramIr, RegIr};
pub use shard::{check_shard_plan, check_shards, ShardIr, SliceClaim, WorkerIr};

/// Verifies one built pipeline against a parser accept set: runs passes
/// 1–3 and returns the findings (most severe first). `parser` is normally
/// `pipeline.parser()`; passing a different accept set checks the program
/// against hypothetical traffic.
pub fn check(pipeline: &Pipeline, parser: &ParserConfig) -> Vec<Diagnostic> {
    check_ir(&ProgramIr::from_pipeline("pipeline", pipeline, parser))
}

/// Verifies a hand-built or extracted [`ProgramIr`] (passes 1–3).
/// Deployment-wide dead-metadata analysis (PV204) is included only when
/// the program does not recirculate — a recirculating program's metadata
/// readers live in another pipe, which [`check_deployment`] sees.
pub fn check_ir(ir: &ProgramIr) -> Vec<Diagnostic> {
    let walk = dataflow::analyze(ir);
    let mut diags = walk.diagnostics;
    diags.extend(locality::check_stage_locality(ir));
    if !ir.recirculates() {
        diags.extend(dataflow::meta_usage(&[ir]));
    }
    diags.sort_by(|a, b| b.severity.cmp(&a.severity).then_with(|| a.code.cmp(&b.code)));
    diags
}
