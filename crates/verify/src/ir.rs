//! The analyzed program form: a plain-data mirror of a built
//! [`Pipeline`]'s structure.
//!
//! The verifier never touches closures — it works on [`ProgramIr`], which
//! couples each table's declared [`MatSummary`] with its stage placement
//! and stateful binding, plus the parser accept set and register specs.
//! The IR is fully public and hand-buildable, which is how the negative
//! test suite constructs programs that [`pp_rmt::PipelineBuilder`] itself
//! would refuse to build (e.g. cross-stage register bindings).

use std::collections::BTreeMap;
use std::collections::BTreeSet;

use pp_rmt::summary::MatSummary;
use pp_rmt::{ParserConfig, Pipeline};

/// One table: its name, placement, summary and stateful binding.
#[derive(Debug, Clone)]
pub struct MatIr {
    /// Table name (diagnostics anchor).
    pub name: String,
    /// Stage the table is placed in.
    pub stage: usize,
    /// Declared dataflow summary, if any ([`crate::Code::PV001`] when absent).
    pub summary: Option<MatSummary>,
    /// Index of the bound register in [`ProgramIr::registers`], if any.
    pub stateful: Option<usize>,
}

/// One register array declaration.
#[derive(Debug, Clone)]
pub struct RegIr {
    /// Register name.
    pub name: String,
    /// Stage the spec declares the array lives in.
    pub stage: usize,
}

/// The parser accept set, per ingress port.
#[derive(Debug, Clone, Default)]
pub struct ParserIr {
    /// Ports where a PayloadPark header is parsed (and required) after
    /// the transport header.
    pub pp_ports: BTreeSet<u16>,
    /// Ports where payload blocks may be extracted.
    pub block_ports: BTreeSet<u16>,
    /// PHV payload-block capacity; the blocks vector is sized to this
    /// whenever a transport header parses (0 = no blocks ever).
    pub block_capacity: usize,
}

impl ParserIr {
    /// Extracts the accept set from a parser configuration.
    pub fn from_config(config: &ParserConfig) -> Self {
        ParserIr {
            pp_ports: config.pp_header_ports.iter().collect(),
            block_ports: config.block_rules.iter().map(|(p, _)| p).collect(),
            block_capacity: config.phv_block_capacity,
        }
    }
}

/// Facts known to hold for packets *entering* on one port, beyond what the
/// parser derives — used for recirculation ports, where user metadata is
/// bridged from the pass that requested recirculation.
#[derive(Debug, Clone, Default)]
pub struct PortFacts {
    /// Metadata words definitely written before entry.
    pub defined_meta: BTreeSet<u8>,
    /// Guard flags definitely set non-zero before entry.
    pub flags: BTreeSet<u8>,
}

/// The whole analyzed program.
#[derive(Debug, Clone)]
pub struct ProgramIr {
    /// Program label for reports.
    pub name: String,
    /// Stages in execution order; each is the tables placed there, in
    /// placement (execution) order.
    pub stages: Vec<Vec<MatIr>>,
    /// Declared register arrays, indexed by [`MatIr::stateful`].
    pub registers: Vec<RegIr>,
    /// Parser accept set.
    pub parser: ParserIr,
    /// Extra entry facts per port (recirculation metadata bridging).
    pub entry: BTreeMap<u16, PortFacts>,
}

impl ProgramIr {
    /// Extracts the IR from a built pipeline. `parser` is passed
    /// separately (normally `pipeline.parser()`) so a program can be
    /// checked against an alternative accept set.
    pub fn from_pipeline(
        name: impl Into<String>,
        pipeline: &Pipeline,
        parser: &ParserConfig,
    ) -> Self {
        let registers: Vec<RegIr> = pipeline
            .registers()
            .specs()
            .iter()
            .map(|spec| RegIr { name: spec.name.clone(), stage: spec.stage })
            .collect();
        let stages = pipeline
            .stages()
            .iter()
            .enumerate()
            .map(|(stage, s)| {
                s.mats()
                    .iter()
                    .map(|m| MatIr {
                        name: m.name().to_owned(),
                        stage,
                        summary: m.summary().cloned(),
                        stateful: m.stateful_array().map(|id| id.0),
                    })
                    .collect()
            })
            .collect();
        ProgramIr {
            name: name.into(),
            stages,
            registers,
            parser: ParserIr::from_config(parser),
            entry: BTreeMap::new(),
        }
    }

    /// All tables in execution order.
    pub fn mats(&self) -> impl Iterator<Item = &MatIr> {
        self.stages.iter().flatten()
    }

    /// Whether any summary requests recirculation (the program continues
    /// in another pipe, so single-pipe whole-program passes must not
    /// assume they saw every reader).
    pub fn recirculates(&self) -> bool {
        self.mats().any(|m| {
            m.summary.as_ref().is_some_and(|s| s.effect_sets().any(|e| e.recirculates.is_some()))
        })
    }
}
