//! Pass 4: shard disjointness.
//!
//! A [`payloadpark::shard::ShardPlan`] partitions one deployment across
//! parallel workers. Concurrent shards are race-free only if every
//! lookup-table slot and every ingress port is owned by exactly one
//! worker. This pass checks that over a plain-data [`ShardIr`] — built
//! from a real plan with [`ShardIr::from_plan`], or by hand for negative
//! tests (a real `ShardPlan::new` refuses most of these shapes up front;
//! the verifier proves the property rather than trusting the constructor).

use std::collections::BTreeMap;
use std::collections::BTreeSet;
use std::ops::Range;

use payloadpark::shard::ShardPlan;
use payloadpark::ParkConfig;

use crate::diag::{Code, Diagnostic};

/// One worker's claim on a contiguous global lookup-table slot range.
#[derive(Debug, Clone)]
pub struct SliceClaim {
    /// Slice name (from the parent deployment).
    pub name: String,
    /// Global slot range claimed, in parent-table coordinates.
    pub slots: Range<usize>,
}

/// One worker of a shard plan.
#[derive(Debug, Clone)]
pub struct WorkerIr {
    /// Worker label ("worker0", ...).
    pub name: String,
    /// Split and merge ports this worker serves.
    pub ports: BTreeSet<u16>,
    /// Slot ranges this worker claims.
    pub claims: Vec<SliceClaim>,
}

/// The analyzed form of a shard plan.
#[derive(Debug, Clone)]
pub struct ShardIr {
    /// Total slots of the parent deployment (the space to cover).
    pub total_slots: usize,
    /// All split/merge ports of the parent deployment.
    pub parent_ports: BTreeSet<u16>,
    /// Whether the parent uses an annex (recirculation) pipe.
    pub parent_has_annex: bool,
    /// Per-worker claims.
    pub workers: Vec<WorkerIr>,
    /// The plan's port→worker routing map (checked against worker claims).
    pub port_map: BTreeMap<u16, usize>,
}

impl ShardIr {
    /// Builds the IR from a parent deployment and a plan derived from it.
    /// Global slot ranges are assigned by the parent's slice declaration
    /// order (the same order the program generator lays slices out in the
    /// register file).
    pub fn from_plan(parent: &ParkConfig, plan: &ShardPlan) -> ShardIr {
        let pipe = &parent.pipes[0];
        let mut ranges: BTreeMap<&str, Range<usize>> = BTreeMap::new();
        let mut base = 0usize;
        let mut parent_ports = BTreeSet::new();
        for slice in &pipe.slices {
            ranges.insert(&slice.name, base..base + slice.slots);
            base += slice.slots;
            parent_ports.extend(slice.split_ports.iter().copied());
            parent_ports.extend(slice.merge_ports.iter().copied());
        }
        let workers = (0..plan.workers())
            .map(|w| {
                let mut ports = BTreeSet::new();
                let mut claims = Vec::new();
                for slice in &plan.config(w).pipes[0].slices {
                    ports.extend(slice.split_ports.iter().copied());
                    ports.extend(slice.merge_ports.iter().copied());
                    let slots =
                        ranges.get(slice.name.as_str()).cloned().unwrap_or(usize::MAX..usize::MAX);
                    claims.push(SliceClaim { name: slice.name.clone(), slots });
                }
                WorkerIr { name: format!("worker{w}"), ports, claims }
            })
            .collect();
        let port_map =
            parent_ports.iter().filter_map(|&p| plan.shard_of_port(p).map(|w| (p, w))).collect();
        ShardIr {
            total_slots: pipe.total_slots(),
            parent_ports,
            parent_has_annex: pipe.annex_pipe.is_some(),
            workers,
            port_map,
        }
    }
}

fn overlap(a: &Range<usize>, b: &Range<usize>) -> bool {
    a.start < b.end && b.start < a.end
}

/// Runs pass 4: PV401/PV402/PV403/PV404.
pub fn check_shards(ir: &ShardIr) -> Vec<Diagnostic> {
    let mut diags = Vec::new();

    // PV401: overlapping slot ranges, across and within workers.
    let claims: Vec<(&str, &SliceClaim)> = ir
        .workers
        .iter()
        .flat_map(|w| w.claims.iter().map(move |c| (w.name.as_str(), c)))
        .collect();
    for i in 0..claims.len() {
        for j in (i + 1)..claims.len() {
            let (wa, ca) = claims[i];
            let (wb, cb) = claims[j];
            if overlap(&ca.slots, &cb.slots) {
                diags.push(Diagnostic::new(
                    Code::PV401,
                    None,
                    format!(
                        "slot ranges overlap: {wa}/{} owns {:?} and {wb}/{} owns {:?} — \
                         concurrent workers would race on the shared cells",
                        ca.name, ca.slots, cb.name, cb.slots
                    ),
                ));
            }
        }
    }

    // PV402: a port claimed by two workers, or claimed by one worker while
    // the routing map sends it to another.
    let mut port_owners: BTreeMap<u16, Vec<&str>> = BTreeMap::new();
    for w in &ir.workers {
        for &p in &w.ports {
            port_owners.entry(p).or_default().push(&w.name);
        }
    }
    for (port, owners) in &port_owners {
        if owners.len() > 1 {
            diags.push(Diagnostic::new(
                Code::PV402,
                None,
                format!(
                    "port {port} is claimed by {} workers: {}",
                    owners.len(),
                    owners.join(", ")
                ),
            ));
        }
    }
    for (wi, w) in ir.workers.iter().enumerate() {
        for &p in &w.ports {
            match ir.port_map.get(&p) {
                Some(&mapped) if mapped != wi => diags.push(Diagnostic::new(
                    Code::PV402,
                    None,
                    format!(
                        "routing map sends port {p} to worker{mapped} but {} \
                         configures it — packets would reach the wrong shard",
                        w.name
                    ),
                )),
                Some(_) => {}
                None => diags.push(Diagnostic::new(
                    Code::PV402,
                    None,
                    format!("port {p} is configured by {} but absent from the routing map", w.name),
                )),
            }
        }
    }

    // PV403: coverage gaps — slots or parent ports no worker owns.
    let mut covered = vec![false; ir.total_slots];
    for (_, c) in &claims {
        for s in c.slots.clone() {
            if let Some(slot) = covered.get_mut(s) {
                *slot = true;
            }
        }
    }
    let uncovered = covered.iter().filter(|c| !**c).count();
    if uncovered > 0 {
        diags.push(Diagnostic::new(
            Code::PV403,
            None,
            format!(
                "{uncovered} of {} parent lookup-table slots are owned by no worker — \
                 parking capacity is silently lost",
                ir.total_slots
            ),
        ));
    }
    for &p in &ir.parent_ports {
        if !port_owners.contains_key(&p) {
            diags.push(Diagnostic::new(
                Code::PV403,
                None,
                format!("parent port {p} is served by no worker — its traffic is unparked"),
            ));
        }
    }

    // PV404: annex recirculation cannot cross worker ownership.
    if ir.parent_has_annex && ir.workers.len() > 1 {
        diags.push(Diagnostic::new(
            Code::PV404,
            None,
            format!(
                "annex (recirculation) deployment sharded across {} workers — \
                 recirculated packets would cross worker ownership",
                ir.workers.len()
            ),
        ));
    }
    diags
}

/// Convenience: build the IR from a plan and check it.
pub fn check_shard_plan(parent: &ParkConfig, plan: &ShardPlan) -> Vec<Diagnostic> {
    check_shards(&ShardIr::from_plan(parent, plan))
}
