//! Mini-loom: exhaustive model checking of the SPSC ring's two-thread
//! interleavings.
//!
//! The `transfers_across_threads` unit test only samples whatever schedules
//! the OS happens to produce. This test instead mirrors `spsc.rs`'s
//! algorithm — including the cached-index optimization, where each endpoint
//! only refreshes its copy of the opposite counter when the ring looks
//! full/empty — as an explicit step machine, one step per shared-memory
//! access, and runs a depth-first search over *every* sequentially
//! consistent interleaving of a bounded push/pop workload, memoizing
//! visited global states so retry loops terminate.
//!
//! Checked at every step and at every terminal state:
//! - no lost or duplicated slots: the consumer asserts each value read is
//!   exactly the next expected sequence number, and every terminal state
//!   has all pushed values received;
//! - no uninitialized or double reads: a slot is emptied when read, so
//!   reading a slot the producer has not (re)written trips an assert;
//! - occupancy bounds: `0 <= tail - head <= capacity` always;
//! - high-water marks are monotone, never exceed the capacity, and never
//!   under-report the true in-flight depth at publish time.
//!
//! Scope: the exploration is sequentially consistent, so it proves the
//! *algorithm* (index arithmetic, cache refresh, full/empty rechecks) free
//! of races but does not model weak-memory reorderings — the ring's
//! acquire/release pairing on `head`/`tail` is what rules those out, and
//! that pairing is reviewed by eye (see the SAFETY comments in `spsc.rs`).

use std::collections::HashSet;

/// Shared ring memory: both counters plus the slot array. `None` models an
/// uninitialized or already-consumed slot, so an errant read is detectable.
#[derive(Clone, PartialEq, Eq, Hash)]
struct Shared {
    head: usize,
    tail: usize,
    slots: Vec<Option<usize>>,
}

/// Producer program counter: which shared access `try_push` performs next.
#[derive(Clone, Copy, PartialEq, Eq, Hash)]
enum ProdPc {
    /// About to start the next `try_push` (load `tail`).
    Idle,
    /// Loaded `tail`; the ring looked full against the cached head, so the
    /// next access reloads `head` (the cache-refresh slow path).
    Reload { tail: usize },
    /// Full check passed; the next access writes the slot.
    Write { tail: usize },
    /// Slot written; the next access publishes `tail + 1`.
    Publish { tail: usize },
}

#[derive(Clone, Copy, PartialEq, Eq, Hash)]
struct Prod {
    pc: ProdPc,
    head_cache: usize,
    high_water: usize,
    /// Next value to push == number of completed pushes.
    pushed: usize,
}

/// Consumer program counter, mirroring `try_pop`.
#[derive(Clone, Copy, PartialEq, Eq, Hash)]
enum ConsPc {
    /// About to start the next `try_pop` (load `head`).
    Idle,
    /// Loaded `head`; the ring looked empty against the cached tail, so the
    /// next access reloads `tail`.
    Reload { head: usize },
    /// Empty check passed; the next access reads the slot.
    Read { head: usize },
    /// Slot read; the next access publishes `head + 1`.
    Publish { head: usize },
}

#[derive(Clone, Copy, PartialEq, Eq, Hash)]
struct Cons {
    pc: ConsPc,
    tail_cache: usize,
    /// Number of values received == the next expected FIFO value.
    popped: usize,
}

#[derive(Clone, PartialEq, Eq, Hash)]
struct State {
    shared: Shared,
    prod: Prod,
    cons: Cons,
}

struct Model {
    capacity: usize,
    /// Total values the producer pushes (and the consumer must receive).
    budget: usize,
    visited: HashSet<State>,
    terminals: usize,
}

impl Model {
    fn check_occupancy(&self, s: &State) {
        let depth = s.shared.tail - s.shared.head;
        assert!(depth <= self.capacity, "occupancy {depth} exceeds capacity {}", self.capacity);
        assert!(s.prod.high_water <= self.capacity, "high-water exceeds capacity");
    }

    /// One producer step: exactly one shared-memory access, mirroring the
    /// corresponding line of `Producer::try_push`. Returns `None` when the
    /// producer has pushed its whole budget and sits idle.
    fn prod_step(&self, s: &State) -> Option<State> {
        let mut n = s.clone();
        match s.prod.pc {
            ProdPc::Idle => {
                if s.prod.pushed == self.budget {
                    return None;
                }
                // load tail (the producer's own counter).
                let tail = s.shared.tail;
                n.prod.pc = if tail - s.prod.head_cache >= self.capacity {
                    ProdPc::Reload { tail }
                } else {
                    ProdPc::Write { tail }
                };
            }
            ProdPc::Reload { tail } => {
                // Acquire-load head into the cache, then recheck.
                n.prod.head_cache = s.shared.head;
                n.prod.pc = if tail - n.prod.head_cache >= self.capacity {
                    ProdPc::Idle // try_push returned Err; retry the value.
                } else {
                    ProdPc::Write { tail }
                };
            }
            ProdPc::Write { tail } => {
                let idx = tail % self.capacity;
                assert!(
                    n.shared.slots[idx].is_none(),
                    "producer overwrote a live slot at seq {tail}"
                );
                n.shared.slots[idx] = Some(s.prod.pushed);
                n.prod.pc = ProdPc::Publish { tail };
            }
            ProdPc::Publish { tail } => {
                // Release-store tail + 1, then the local bookkeeping.
                n.shared.tail = tail + 1;
                let depth_vs_cache = tail + 1 - s.prod.head_cache;
                let old = n.prod.high_water;
                n.prod.high_water = n.prod.high_water.max(depth_vs_cache);
                assert!(n.prod.high_water >= old, "high-water regressed");
                assert!(
                    n.prod.high_water >= n.shared.tail - n.shared.head,
                    "high-water under-reports the true in-flight depth"
                );
                n.prod.pushed += 1;
                n.prod.pc = ProdPc::Idle;
            }
        }
        Some(n)
    }

    /// One consumer step, mirroring `Consumer::try_pop`.
    fn cons_step(&self, s: &State) -> Option<State> {
        let mut n = s.clone();
        match s.cons.pc {
            ConsPc::Idle => {
                if s.cons.popped == self.budget {
                    return None;
                }
                let head = s.shared.head;
                n.cons.pc = if head == s.cons.tail_cache {
                    ConsPc::Reload { head }
                } else {
                    ConsPc::Read { head }
                };
            }
            ConsPc::Reload { head } => {
                n.cons.tail_cache = s.shared.tail;
                n.cons.pc = if head == n.cons.tail_cache {
                    ConsPc::Idle // try_pop returned None; poll again.
                } else {
                    ConsPc::Read { head }
                };
            }
            ConsPc::Read { head } => {
                let idx = head % self.capacity;
                let value = n.shared.slots[idx]
                    .take()
                    .unwrap_or_else(|| panic!("consumer read an unwritten slot at seq {head}"));
                assert_eq!(
                    value, s.cons.popped,
                    "FIFO violation: lost, duplicated or reordered slot"
                );
                n.cons.pc = ConsPc::Publish { head };
            }
            ConsPc::Publish { head } => {
                n.shared.head = head + 1;
                n.cons.popped += 1;
                n.cons.pc = ConsPc::Idle;
            }
        }
        Some(n)
    }

    /// Explores every interleaving reachable from `s` (iterative DFS; the
    /// deepest chains exceed the default test-thread stack for the larger
    /// configurations).
    fn explore(&mut self, s: State) {
        let mut stack = vec![s];
        while let Some(s) = stack.pop() {
            if !self.visited.insert(s.clone()) {
                continue;
            }
            self.check_occupancy(&s);
            let succ: Vec<State> =
                [self.prod_step(&s), self.cons_step(&s)].into_iter().flatten().collect();
            if succ.is_empty() {
                // Terminal: both threads done. Everything pushed must have
                // been received and the ring must be empty.
                assert_eq!(s.prod.pushed, self.budget, "producer finished early");
                assert_eq!(s.cons.popped, self.budget, "slots were lost in flight");
                assert_eq!(s.shared.head, self.budget);
                assert_eq!(s.shared.tail, self.budget);
                assert!(s.shared.slots.iter().all(Option::is_none), "ring not drained");
                if self.budget > 0 {
                    assert!(s.prod.high_water >= 1, "pushes happened but high-water is zero");
                }
                self.terminals += 1;
            } else {
                stack.extend(succ);
            }
        }
    }
}

/// Exhaustively checks a (capacity, budget) workload; returns the number of
/// distinct global states explored.
fn check(capacity: usize, budget: usize) -> usize {
    let init = State {
        shared: Shared { head: 0, tail: 0, slots: vec![None; capacity] },
        prod: Prod { pc: ProdPc::Idle, head_cache: 0, high_water: 0, pushed: 0 },
        cons: Cons { pc: ConsPc::Idle, tail_cache: 0, popped: 0 },
    };
    let mut model = Model { capacity, budget, visited: HashSet::new(), terminals: 0 };
    model.explore(init);
    assert!(model.terminals >= 1, "no terminal state reached");
    model.visited.len()
}

#[test]
fn capacity_one_serializes_every_transfer() {
    // capacity 1 maximizes full/empty contention: every push/pop pair
    // exercises both cache-refresh slow paths.
    let states = check(1, 4);
    assert!(states > 50, "exploration trivially small: {states} states");
}

#[test]
fn wraparound_with_contention() {
    // budget > capacity forces the indices to wrap while both endpoints
    // race; capacity 2 keeps both the fast and slow paths reachable.
    check(2, 5);
}

#[test]
fn deep_ring_mostly_fast_path() {
    // capacity >= budget: the producer can run ahead without ever seeing
    // full, so the stale-head-cache arithmetic gets maximal exposure.
    check(4, 4);
}

#[test]
fn prime_capacity_wraps_unevenly() {
    // capacity 3 with budget 7: slot indices cycle through every residue
    // against an uneven wrap pattern.
    // (Distinct *states* number in the hundreds; the path count through
    // them is far larger, but memoization only ever visits each once.)
    let states = check(3, 7);
    assert!(states > 400, "expected a substantial interleaving space: {states}");
}
