//! Adversity appliers for engine waves.
//!
//! [`pp_netsim::adversity`] defines *what* happens to a packet (a pure
//! function of `(seed, leg, seq)`); this module applies those decisions to
//! [`BatchPacket`] waves — the currency of both the scalar two-phase
//! reference loop and the sharded engine. Because every decision is
//! seq-keyed and reordering sorts by `seq + displacement`, applying a
//! profile to the whole wave and then sharding it is indistinguishable
//! from applying it per shard (or per batch): the same packets are lost,
//! duplicated, truncated and displaced either way, which is what lets the
//! equivalence oracle compare scalar and sharded runs under identical
//! misfortune.

use pp_netsim::adversity::{AdversityProfile, FaultTally, Leg};
use pp_packet::MacAddr;
use pp_rmt::switch::BatchPacket;

pub use pp_netsim::adversity::internal_leg_protected_prefix;

/// Applies one leg's scenario to a wave of [`BatchPacket`]s.
pub fn apply_leg_wave(
    adv: &AdversityProfile,
    leg: Leg,
    wave: Vec<BatchPacket>,
    tally: &mut FaultTally,
) -> Vec<BatchPacket> {
    adv.apply_leg(leg, wave, |p| p.seq, |p| &mut p.bytes, internal_leg_protected_prefix, tally)
}

/// The full adverse NF round trip for a split-side output wave: the
/// switch → NF leg misbehaves, the MAC-swap NF readdresses the survivors
/// to `sink`, and the NF → switch leg misbehaves again. Returns the wave
/// to feed back into the merge side.
pub fn adverse_return_wave(
    adv: &AdversityProfile,
    outs: Vec<BatchPacket>,
    sink: MacAddr,
    tally: &mut FaultTally,
) -> Vec<BatchPacket> {
    let mut back = apply_leg_wave(adv, Leg::ToNf, outs, tally);
    for pkt in &mut back {
        if pkt.bytes.len() >= 6 {
            pkt.bytes[0..6].copy_from_slice(&sink.0);
        }
    }
    apply_leg_wave(adv, Leg::FromNf, back, tally)
}

#[cfg(test)]
mod tests {
    use super::*;
    use pp_netsim::adversity::LegProfile;
    use pp_packet::builder::UdpPacketBuilder;
    use pp_packet::ppark::PAYLOADPARK_HEADER_LEN;
    use pp_rmt::PortId;

    fn wave(n: u64) -> Vec<BatchPacket> {
        (0..n)
            .map(|seq| BatchPacket {
                bytes: UdpPacketBuilder::new().total_size(300, seq).build().into_bytes(),
                port: PortId((seq % 4) as u16),
                seq,
            })
            .collect()
    }

    #[test]
    fn protected_prefix_covers_headers_and_shim() {
        let pkt = UdpPacketBuilder::new().total_size(300, 1).build().into_bytes();
        assert_eq!(internal_leg_protected_prefix(&pkt), 42 + PAYLOADPARK_HEADER_LEN);
        assert_eq!(internal_leg_protected_prefix(&[0u8; 9]), 9, "garbage fully protected");
    }

    #[test]
    fn return_wave_readdresses_survivors_to_the_sink() {
        let adv = AdversityProfile {
            seed: 8,
            to_nf: LegProfile::loss(0.3),
            from_nf: LegProfile { duplicate: 0.2, ..Default::default() },
        };
        let sink = MacAddr::from_index(200);
        let mut tally = FaultTally::default();
        let back = adverse_return_wave(&adv, wave(300), sink, &mut tally);
        assert!(tally.dropped > 50, "{tally:?}");
        assert!(tally.duplicated > 20, "{tally:?}");
        assert_eq!(back.len() as u64, 300 - tally.dropped + tally.duplicated);
        assert!(back.iter().all(|p| p.bytes[0..6] == sink.0));
        // Replayable: the same seed produces the identical wave.
        let mut tally2 = FaultTally::default();
        let back2 = adverse_return_wave(&adv, wave(300), sink, &mut tally2);
        assert_eq!(back, back2);
        assert_eq!(tally, tally2);
    }
}
