//! A lock-free single-producer/single-consumer ring queue.
//!
//! The engine's dispatcher feeds each worker through one of these rings and
//! collects results through another, so the steady-state hot path contains
//! no mutexes: a push is one slot write plus one release store, a pop one
//! slot read plus one release store. Head and tail live on separate cache
//! lines, and both endpoints keep a local cache of the opposite index so
//! they only touch the shared counter when the ring looks full/empty —
//! the standard DPDK/Lamport SPSC design the kernel-bypass stacks the
//! paper compares against (§6.1) are built on.

use std::cell::UnsafeCell;
use std::mem::MaybeUninit;
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Arc;

/// An atomic counter padded to a cache line (no false sharing between the
/// producer's tail and the consumer's head).
#[repr(align(64))]
#[derive(Default)]
struct PaddedCounter(AtomicUsize);

struct Ring<T> {
    slots: Box<[UnsafeCell<MaybeUninit<T>>]>,
    /// Sequence number of the next element to pop. Monotonically
    /// increasing; slot index is `seq % capacity`.
    head: PaddedCounter,
    /// Sequence number of the next free slot to push into.
    tail: PaddedCounter,
}

// SAFETY: the ring transfers `T` values between exactly one producer and
// one consumer thread; a slot is written only while it is invisible to the
// consumer (tail not yet published) and read only while it is invisible to
// the producer (head not yet published).
unsafe impl<T: Send> Send for Ring<T> {}
unsafe impl<T: Send> Sync for Ring<T> {}

impl<T> Drop for Ring<T> {
    fn drop(&mut self) {
        let head = self.head.0.load(Ordering::Relaxed);
        let tail = self.tail.0.load(Ordering::Relaxed);
        for seq in head..tail {
            let idx = seq % self.slots.len();
            // SAFETY: elements in [head, tail) were written and never read.
            unsafe { (*self.slots[idx].get()).assume_init_drop() };
        }
    }
}

/// The sending endpoint of a ring. Not clonable — single producer.
pub struct Producer<T> {
    ring: Arc<Ring<T>>,
    /// Local cache of the consumer's head, refreshed only on apparent full.
    head_cache: usize,
    /// Deepest in-flight depth this producer has observed at push time —
    /// a high-water mark for backpressure telemetry. Computed against the
    /// cached head, so it costs nothing extra on the hot path.
    high_water: usize,
}

/// The receiving endpoint of a ring. Not clonable — single consumer.
pub struct Consumer<T> {
    ring: Arc<Ring<T>>,
    /// Local cache of the producer's tail, refreshed only on apparent empty.
    tail_cache: usize,
}

/// Creates a ring holding at most `capacity` in-flight elements.
pub fn ring<T: Send>(capacity: usize) -> (Producer<T>, Consumer<T>) {
    assert!(capacity > 0, "ring capacity must be positive");
    let slots: Box<[UnsafeCell<MaybeUninit<T>>]> =
        (0..capacity).map(|_| UnsafeCell::new(MaybeUninit::uninit())).collect();
    let ring =
        Arc::new(Ring { slots, head: PaddedCounter::default(), tail: PaddedCounter::default() });
    (
        Producer { ring: Arc::clone(&ring), head_cache: 0, high_water: 0 },
        Consumer { ring, tail_cache: 0 },
    )
}

impl<T> Producer<T> {
    /// Enqueues `value`, or hands it back when the ring is full.
    pub fn try_push(&mut self, value: T) -> Result<(), T> {
        let tail = self.ring.tail.0.load(Ordering::Relaxed);
        if tail - self.head_cache >= self.ring.slots.len() {
            self.head_cache = self.ring.head.0.load(Ordering::Acquire);
            if tail - self.head_cache >= self.ring.slots.len() {
                return Err(value);
            }
        }
        let idx = tail % self.ring.slots.len();
        // SAFETY: the slot at `tail` is unpublished, so the consumer cannot
        // observe it until the release store below.
        unsafe { (*self.ring.slots[idx].get()).write(value) };
        self.ring.tail.0.store(tail + 1, Ordering::Release);
        self.high_water = self.high_water.max(tail + 1 - self.head_cache);
        Ok(())
    }

    /// Enqueues `value`, yielding the CPU while the ring is full.
    pub fn push(&mut self, mut value: T) {
        loop {
            match self.try_push(value) {
                Ok(()) => return,
                Err(v) => {
                    value = v;
                    std::thread::yield_now();
                }
            }
        }
    }

    /// Elements currently in flight (approximate under concurrency).
    pub fn in_flight(&self) -> usize {
        self.ring.tail.0.load(Ordering::Relaxed) - self.ring.head.0.load(Ordering::Relaxed)
    }

    /// Deepest in-flight depth observed by this producer. An upper bound
    /// relative to the consumer's true progress (the cached head lags), so
    /// it never under-reports a backlog.
    pub fn high_water(&self) -> usize {
        self.high_water
    }
}

impl<T> Consumer<T> {
    /// Dequeues the oldest element, or `None` when the ring is empty.
    pub fn try_pop(&mut self) -> Option<T> {
        let head = self.ring.head.0.load(Ordering::Relaxed);
        if head == self.tail_cache {
            self.tail_cache = self.ring.tail.0.load(Ordering::Acquire);
            if head == self.tail_cache {
                return None;
            }
        }
        let idx = head % self.ring.slots.len();
        // SAFETY: the element at `head` was published by the producer's
        // release store and becomes invisible to it only after the release
        // store below, so exactly one side owns it at any time.
        let value = unsafe { (*self.ring.slots[idx].get()).assume_init_read() };
        self.ring.head.0.store(head + 1, Ordering::Release);
        Some(value)
    }

    /// Dequeues the oldest element, yielding the CPU while the ring is
    /// empty.
    pub fn pop(&mut self) -> T {
        loop {
            if let Some(v) = self.try_pop() {
                return v;
            }
            std::thread::yield_now();
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fifo_order_within_one_thread() {
        let (mut tx, mut rx) = ring::<u32>(4);
        for v in 0..4 {
            tx.try_push(v).unwrap();
        }
        assert_eq!(tx.try_push(99), Err(99), "ring is full");
        assert_eq!(tx.in_flight(), 4);
        assert_eq!(tx.high_water(), 4);
        for v in 0..4 {
            assert_eq!(rx.try_pop(), Some(v));
        }
        assert_eq!(rx.try_pop(), None);
    }

    #[test]
    fn wraps_around_many_times() {
        let (mut tx, mut rx) = ring::<usize>(3);
        for v in 0..1000 {
            tx.push(v);
            assert_eq!(rx.pop(), v);
        }
        // Only one element was ever in flight, but the producer's cached
        // head may lag, so the mark is bounded by the ring capacity.
        assert!(tx.high_water() >= 1 && tx.high_water() <= 3, "{}", tx.high_water());
    }

    #[test]
    fn transfers_across_threads() {
        const N: u64 = 100_000;
        let (mut tx, mut rx) = ring::<u64>(64);
        std::thread::scope(|s| {
            s.spawn(move || {
                for v in 0..N {
                    tx.push(v);
                }
            });
            let mut expect = 0;
            while expect < N {
                assert_eq!(rx.pop(), expect, "FIFO order violated");
                expect += 1;
            }
        });
    }

    #[test]
    fn drops_unconsumed_elements() {
        let token = Arc::new(());
        {
            let (mut tx, rx) = ring::<Arc<()>>(8);
            for _ in 0..5 {
                tx.push(Arc::clone(&token));
            }
            drop(tx);
            drop(rx);
        }
        assert_eq!(Arc::strong_count(&token), 1, "ring leaked elements");
    }

    #[test]
    #[should_panic(expected = "capacity must be positive")]
    fn zero_capacity_panics() {
        let _ = ring::<u8>(0);
    }
}
