//! The shared sliced-deployment fixture.
//!
//! Every surface that exercises the engine against the scalar pipeline —
//! the `fastpath` bench, the `fastpath_throughput` example, the `pp-exp
//! throughput` experiment, and the equivalence oracle in
//! `tests/functional_equivalence.rs` — needs the same rig: an N-server
//! §6.2.4 slicing of pipe 0 (slice *k* splits on port 2k, merges on port
//! 2k+1 where its MAC-swap NF server lives), per-slice server MACs, a
//! sink, and a scalar Split → NF → Merge reference loop. Defining it once
//! keeps the bench, the example and the oracle measuring the *same*
//! deployment; if the slicing shape or the NF-reflection convention ever
//! changes, it changes everywhere at once.

use crate::adversity::adverse_return_wave;
use crate::engine::{Engine, EngineConfig};
use payloadpark::program::build_switch;
use payloadpark::{BuildError, ParkConfig, PipeControl, SliceSpec};
use pp_netsim::adversity::{AdversityProfile, FaultTally};
use pp_netsim::time::SimDuration;
use pp_packet::MacAddr;
use pp_rmt::chip::ChipProfile;
use pp_rmt::switch::{BatchOutput, BatchPacket, SwitchOutput};
use pp_rmt::{PortId, SwitchModel};
use pp_trafficgen::gen::{GenConfig, SizeModel, TrafficGen, TrafficMix};

/// An N-slice single-pipe deployment with one MAC-swap NF server per
/// slice and a sink.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SlicedTestbed {
    /// Memory slices (= NF servers = maximum engine workers).
    pub slices: usize,
    /// Lookup-table slots per slice.
    pub slots: usize,
}

impl SlicedTestbed {
    /// A testbed with `slices` slices of `slots` slots each.
    pub fn new(slices: usize, slots: usize) -> Self {
        SlicedTestbed { slices, slots }
    }

    /// Slice `k`'s split port (generator side).
    pub fn split_port(&self, k: usize) -> PortId {
        PortId(2 * k as u16)
    }

    /// Slice `k`'s merge port (its NF server's port).
    pub fn merge_port(&self, k: usize) -> PortId {
        PortId(2 * k as u16 + 1)
    }

    /// The sink's port (the first port after the slices').
    pub fn sink_port(&self) -> PortId {
        PortId(2 * self.slices as u16)
    }

    /// Slice `k`'s NF server MAC.
    pub fn server_mac(&self, k: usize) -> MacAddr {
        MacAddr::from_index(100 + k as u64)
    }

    /// The sink's MAC.
    pub fn sink_mac(&self) -> MacAddr {
        MacAddr::from_index(200)
    }

    /// The deployment configuration.
    pub fn config(&self) -> ParkConfig {
        let mut cfg = ParkConfig::single_server(ChipProfile::default(), vec![0], 1, self.slots);
        cfg.pipes[0].slices = (0..self.slices)
            .map(|k| SliceSpec {
                name: format!("server{k}"),
                split_ports: vec![self.split_port(k).0],
                merge_ports: vec![self.merge_port(k).0],
                slots: self.slots,
            })
            .collect();
        cfg
    }

    /// Feeds the L2 view (server MACs on their merge ports, the sink on
    /// its port) to `add` — works for switches and engines alike.
    pub fn wire(&self, add: &mut dyn FnMut(MacAddr, PortId)) {
        for k in 0..self.slices {
            add(self.server_mac(k), self.merge_port(k));
        }
        add(self.sink_mac(), self.sink_port());
    }

    /// Builds the scalar reference switch, L2 wired.
    pub fn build_scalar(&self) -> (SwitchModel, PipeControl) {
        let (mut sw, handles) = build_switch(&self.config()).expect("valid testbed config");
        self.wire(&mut |mac, port| sw.l2_add(mac, port));
        (sw, PipeControl::new(handles[0].clone()))
    }

    /// Builds an engine over the same deployment, L2 wired.
    pub fn build_engine(&self, cfg: EngineConfig) -> Result<Engine, BuildError> {
        let mut engine = Engine::new(&self.config(), cfg)?;
        self.wire(&mut |mac, port| engine.l2_add(mac, port));
        Ok(engine)
    }

    /// Readdresses `pkt` to its ingress slice's NF server (the generator
    /// steers traffic per slice by destination MAC).
    pub fn stamp_server_mac(&self, pkt: &mut BatchPacket) {
        let slice = usize::from(pkt.port.0) / 2;
        pkt.bytes[0..6].copy_from_slice(&self.server_mac(slice).0);
    }

    /// A paced enterprise-mix wave across all split ports, server MACs
    /// stamped: the standard throughput workload.
    pub fn enterprise_wave(&self, seed: u64, window: SimDuration) -> Vec<BatchPacket> {
        let gen = TrafficGen::new(GenConfig {
            rate_gbps: 20.0,
            line_rate_gbps: 40.0,
            sizes: SizeModel::Enterprise,
            flows: 256,
            seed,
            ..Default::default()
        });
        let ports = (0..self.slices).map(|k| self.split_port(k).0).collect();
        let mut wave = crate::adapter::PacedIngest::new(gen, ports).wave(window);
        for pkt in &mut wave {
            self.stamp_server_mac(pkt);
        }
        wave
    }

    /// Exactly `packets` enterprise-mix packets, dealt round-robin across
    /// the slices by sequence number: the oracle's seeded workload.
    pub fn counted_enterprise_wave(&self, seed: u64, packets: usize) -> Vec<BatchPacket> {
        self.counted_wave(seed, packets, TrafficMix::UdpOnly)
    }

    /// Exactly `packets` of the mixed TCP+UDP enterprise workload (the
    /// traffic composition the paper's target datacenters actually carry):
    /// 70 % of flows run TCP connections with SYN/data/FIN phases, dealt
    /// round-robin across the slices like the UDP wave.
    pub fn counted_mixed_wave(&self, seed: u64, packets: usize) -> Vec<BatchPacket> {
        self.counted_wave(seed, packets, TrafficMix::TcpUdp { tcp_fraction: 0.7 })
    }

    fn counted_wave(&self, seed: u64, packets: usize, mix: TrafficMix) -> Vec<BatchPacket> {
        let mut gen = TrafficGen::new(GenConfig {
            rate_gbps: 4.0,
            sizes: SizeModel::Enterprise,
            mix,
            flows: 32,
            seed,
            ..Default::default()
        });
        gen.take_count(packets)
            .into_iter()
            .map(|(_, pkt)| {
                let seq = pkt.seq();
                let slice = (seq as usize) % self.slices;
                let mut pkt =
                    BatchPacket { bytes: pkt.into_bytes(), port: self.split_port(slice), seq };
                self.stamp_server_mac(&mut pkt);
                pkt
            })
            .collect()
    }

    /// The scalar Split → MAC-swap NF → Merge reference, one packet at a
    /// time: each switch output bounces off its slice's server
    /// (readdressed to the sink) and merges immediately. Returns the
    /// sink-side outputs in arrival order.
    pub fn scalar_roundtrip(
        &self,
        sw: &mut SwitchModel,
        inputs: &[BatchPacket],
    ) -> Vec<SwitchOutput> {
        let mut merged = BatchOutput::new();
        self.scalar_roundtrip_into(sw, inputs, &mut merged);
        merged.to_switch_outputs()
    }

    /// [`SlicedTestbed::scalar_roundtrip`] into a reusable [`BatchOutput`]
    /// (cleared first): the allocation-free form the throughput experiment
    /// times. All per-packet scratch (PHV, deparse arena, NF bounce frame)
    /// is pooled, so a warm switch runs the whole loop without touching
    /// the heap.
    pub fn scalar_roundtrip_into(
        &self,
        sw: &mut SwitchModel,
        inputs: &[BatchPacket],
        merged: &mut BatchOutput,
    ) {
        merged.clear();
        let mut split_out = BatchOutput::new();
        let mut back: Vec<u8> = Vec::new();
        for pkt in inputs {
            split_out.clear();
            sw.process_into(&pkt.bytes, pkt.port, pkt.seq, &mut split_out);
            for out in split_out.iter() {
                back.clear();
                back.extend_from_slice(out.bytes);
                back[0..6].copy_from_slice(&self.sink_mac().0);
                sw.process_into(&back, out.port, out.seq, merged);
            }
        }
    }

    /// The scalar reference in two phases — all Splits, then all Merges
    /// in the same order — matching the phase structure of
    /// [`Engine::process`] driven split-wave-then-merge-wave, so the two
    /// stay comparable even when the circular buffers wrap.
    pub fn scalar_roundtrip_two_phase(
        &self,
        sw: &mut SwitchModel,
        inputs: &[BatchPacket],
    ) -> Vec<SwitchOutput> {
        let mut to_servers = Vec::new();
        for pkt in inputs {
            to_servers.extend(sw.process(&pkt.bytes, pkt.port, pkt.seq));
        }
        let mut merged = Vec::new();
        for out in to_servers {
            let mut back = out.bytes;
            back[0..6].copy_from_slice(&self.sink_mac().0);
            merged.extend(sw.process(&back, out.port, out.seq));
        }
        merged
    }

    /// The two-phase scalar reference under an adversity scenario: all
    /// Splits, then the split-side wave suffers the profile's switch → NF
    /// and NF → switch legs (loss, reordering, duplication, truncation,
    /// blackouts) around the MAC-swap NF, then the survivors Merge. This
    /// is the oracle the sharded engine is compared against under
    /// identical seeded misfortune.
    pub fn scalar_roundtrip_two_phase_adverse(
        &self,
        sw: &mut SwitchModel,
        inputs: &[BatchPacket],
        adversity: &AdversityProfile,
        tally: &mut FaultTally,
    ) -> Vec<SwitchOutput> {
        let mut to_servers = Vec::new();
        for pkt in inputs {
            to_servers.extend(
                sw.process(&pkt.bytes, pkt.port, pkt.seq).into_iter().map(|o| BatchPacket {
                    bytes: o.bytes,
                    port: o.port,
                    seq: o.seq,
                }),
            );
        }
        let back = adverse_return_wave(adversity, to_servers, self.sink_mac(), tally);
        let mut merged = Vec::new();
        for pkt in back {
            merged.extend(sw.process(&pkt.bytes, pkt.port, pkt.seq));
        }
        merged
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn geometry_is_consistent() {
        let tb = SlicedTestbed::new(4, 64);
        assert_eq!(tb.split_port(3), PortId(6));
        assert_eq!(tb.merge_port(3), PortId(7));
        assert_eq!(tb.sink_port(), PortId(8));
        let cfg = tb.config();
        cfg.validate().unwrap();
        assert_eq!(cfg.pipes[0].slices.len(), 4);
        assert_eq!(cfg.pipes[0].total_slots(), 4 * 64);
    }

    #[test]
    fn waves_cover_every_slice_and_are_stamped() {
        let tb = SlicedTestbed::new(4, 64);
        let wave = tb.counted_enterprise_wave(9, 40);
        assert_eq!(wave.len(), 40);
        for k in 0..4 {
            let slice: Vec<_> = wave.iter().filter(|p| p.port == tb.split_port(k)).collect();
            assert_eq!(slice.len(), 10, "slice {k}");
            assert!(slice.iter().all(|p| p.bytes[0..6] == tb.server_mac(k).0));
        }
        let paced = tb.enterprise_wave(9, SimDuration::from_micros(200));
        assert!(!paced.is_empty());
    }

    #[test]
    fn mixed_wave_carries_both_transports() {
        let tb = SlicedTestbed::new(4, 64);
        let wave = tb.counted_mixed_wave(9, 400);
        assert_eq!(wave.len(), 400);
        let tcp = wave
            .iter()
            .filter(|p| {
                pp_packet::ParsedPacket::parse(&p.bytes).unwrap().five_tuple().protocol == 6
            })
            .count();
        assert!(tcp > 100 && tcp < 400, "tcp {tcp} of 400");
        // Dealt across all slices like the UDP wave.
        for k in 0..4 {
            assert_eq!(
                wave.iter().filter(|p| p.port == tb.split_port(k)).count(),
                100,
                "slice {k}"
            );
        }
    }

    #[test]
    fn scalar_reference_delivers_everything_to_the_sink() {
        let tb = SlicedTestbed::new(2, 256);
        let (mut sw, control) = tb.build_scalar();
        let wave = tb.counted_enterprise_wave(3, 50);
        let merged = tb.scalar_roundtrip(&mut sw, &wave);
        assert_eq!(merged.len(), 50);
        assert!(merged.iter().all(|o| o.port == tb.sink_port()));
        assert!(control.counters(&sw).functionally_equivalent());
    }
}
