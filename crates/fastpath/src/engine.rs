//! The sharded, batched multi-worker engine.
//!
//! An [`Engine`] partitions a PayloadPark deployment with
//! [`payloadpark::ShardPlan`] (the paper's §6.2.4 port→slice mapping) and
//! owns one long-lived worker thread per shard. Each worker owns its
//! shard's [`SwitchModel`] outright — register file included — and is fed
//! over a pair of lock-free SPSC rings ([`crate::spsc`]): packet batches
//! and control messages in, result arenas and snapshots out. Workers run
//! batches through the batched dataplane
//! ([`SwitchModel::process_batch`]), so MAT dispatch is amortized and
//! every batch deparses into one arena; the threads persist across waves,
//! so the steady state costs no spawns and no locks.
//!
//! Determinism is preserved: a shard processes its packets in arrival
//! order, a slice's register cells are only ever touched by its own
//! shard, and batch execution performs register accesses in the same
//! per-array order as scalar execution. For any traffic mix the engine's
//! aggregate counters and merged egress bytes are therefore identical to
//! the single-threaded pipeline — the oracle in
//! `tests/functional_equivalence.rs` and this module's tests enforce it
//! byte for byte.

use crate::adapter::reflect_outputs;
use crate::adversity::adverse_return_wave;
use crate::spsc::{self, Consumer, Producer};
use payloadpark::program::build_switch;
use payloadpark::{BuildError, CounterSnapshot, ParkConfig, PipeControl, ShardPlan};
use pp_netsim::adversity::{AdversityProfile, FaultTally};
use pp_packet::MacAddr;
use pp_rmt::switch::{BatchOutput, BatchPacket, OutputRef, SwitchStats};
use pp_rmt::{PortId, SwitchModel, SwitchOutput};
use std::collections::VecDeque;
use std::sync::{Arc, Mutex};
use std::thread::{JoinHandle, Thread};

/// Engine tuning knobs.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct EngineConfig {
    /// Worker threads; the deployment needs at least this many slices.
    pub workers: usize,
    /// Packets per batch message (the unit of amortization).
    pub batch: usize,
    /// Messages each SPSC ring can hold in flight.
    pub ring_depth: usize,
}

impl Default for EngineConfig {
    fn default() -> Self {
        // 128-packet batches keep a batch's PHVs and payloads inside L2
        // while still amortizing dispatch; measured optimal on the
        // enterprise mix (64-128, falling off past 512).
        EngineConfig { workers: 4, batch: 128, ring_depth: 16 }
    }
}

/// What the dispatcher sends a worker. The ring is FIFO and the worker
/// single-threaded, so control messages are ordered with the batches
/// around them.
enum WorkerMsg {
    /// Process one batch, reply with its outputs.
    Batch(Vec<BatchPacket>),
    /// Process a batch, bounce every output off this shard's MAC-swap NF
    /// server (readdressing it to `sink`), process the returns, reply with
    /// the merge-side outputs. Keeps the whole Split → NF → Merge round
    /// trip on the worker, as each slice's NF server is its own machine.
    /// With `adversity` set, the worker's own injector mangles the two
    /// internal legs (switch → NF and NF → switch) — every per-packet
    /// fault is keyed on the sequence number, so per-shard injection
    /// drops/duplicates/mutates exactly the packets a global injector
    /// would. Reordering is the one batch-scoped effect: displacement
    /// cannot carry a packet past the end of its batch, since each
    /// Roundtrip merges its own returns before the next batch splits.
    Roundtrip { pkts: Vec<BatchPacket>, sink: MacAddr, adversity: Option<Arc<AdversityProfile>> },
    /// Add an L2 forwarding entry (fire and forget).
    L2Add(MacAddr, PortId),
    /// Reply with a control-plane snapshot.
    Query,
    /// Reply `Flushed` — everything before this message has been processed.
    Flush,
    /// Exit the worker loop.
    Shutdown,
}

/// What a worker sends back.
enum WorkerReply {
    Out(BatchOutput),
    State { counters: CounterSnapshot, stats: SwitchStats, occupancy: usize, tally: FaultTally },
    Flushed,
}

struct WorkerHandle {
    tx: Producer<WorkerMsg>,
    rx: Consumer<WorkerReply>,
    join: Option<JoinHandle<()>>,
}

/// The thread currently driving the engine. Workers unpark it after every
/// reply; `Engine` re-captures it at the start of each driving call, so
/// moving the engine to another thread keeps wakeups working (the lock is
/// taken once per reply message, never per packet).
type DispatcherSlot = Arc<Mutex<Thread>>;

impl WorkerHandle {
    /// Wakes the worker to look at its ring.
    fn wake(&self) {
        if let Some(join) = &self.join {
            join.thread().unpark();
        }
    }

    /// Pushes a message, parking while the ring is full but giving up if
    /// the worker died (a panicked worker must not hang the dispatcher).
    fn send(&mut self, mut msg: WorkerMsg) -> bool {
        loop {
            match self.tx.try_push(msg) {
                Ok(()) => {
                    self.wake();
                    return true;
                }
                Err(back) => {
                    if self.join.as_ref().is_none_or(|j| j.is_finished()) {
                        return false;
                    }
                    msg = back;
                    std::thread::park_timeout(IDLE_PARK);
                }
            }
        }
    }

    /// Pops the next reply, parking while the ring is empty.
    fn recv(&mut self) -> Option<WorkerReply> {
        loop {
            if let Some(reply) = self.rx.try_pop() {
                return Some(reply);
            }
            if self.join.as_ref().is_none_or(|j| j.is_finished()) {
                return self.rx.try_pop();
            }
            std::thread::park_timeout(IDLE_PARK);
        }
    }
}

/// How long an idle thread sleeps before re-checking its rings — a
/// safety net against lost wakeups; real wakeups come from `unpark`.
const IDLE_PARK: std::time::Duration = std::time::Duration::from_millis(1);

/// Waits for `poll` to produce a value: a short yield-spin first (on a
/// busy sibling this hands the core over directly, no futex round trip),
/// then timed parks until the peer's `unpark` or the backstop fires.
fn idle_wait<T>(mut poll: impl FnMut() -> Option<T>) -> T {
    for _ in 0..128 {
        if let Some(v) = poll() {
            return v;
        }
        std::thread::yield_now();
    }
    loop {
        if let Some(v) = poll() {
            return v;
        }
        std::thread::park_timeout(IDLE_PARK);
    }
}

/// The worker thread body: own the shard's switch, drain the ring. The
/// worker parks while idle and is unparked by the dispatcher when work
/// arrives; every reply unparks the dispatcher in turn, so neither side
/// burns the other's cycles busy-polling (which on a single core would
/// steal half the machine).
fn worker_main(
    mut switch: SwitchModel,
    control: PipeControl,
    mut rx: Consumer<WorkerMsg>,
    mut tx: Producer<WorkerReply>,
    dispatcher: DispatcherSlot,
) {
    let reply = |tx: &mut Producer<WorkerReply>, r: WorkerReply| {
        tx.push(r);
        dispatcher.lock().expect("dispatcher slot poisoned").unpark();
    };
    let mut tally = FaultTally::default();
    // Split-side scratch, reused across round trips: only the merge-side
    // arena crosses the ring, so this one's capacity stays with the worker.
    let mut split_side = BatchOutput::new();
    loop {
        let msg = idle_wait(|| rx.try_pop());
        match msg {
            WorkerMsg::Batch(pkts) => {
                let mut out = BatchOutput::new();
                switch.process_batch(&pkts, &mut out);
                reply(&mut tx, WorkerReply::Out(out));
            }
            WorkerMsg::Roundtrip { pkts, sink, adversity } => {
                switch.process_batch(&pkts, &mut split_side);
                let back = match &adversity {
                    None => reflect_outputs(split_side.iter(), sink),
                    Some(adv) => {
                        // This shard's own injector: mangle the two
                        // internal legs around the MAC-swap NF. The wave
                        // is built straight off the arena views (one copy,
                        // unavoidable: the injector mutates bytes).
                        let outs = split_side
                            .iter()
                            .map(|o| BatchPacket {
                                bytes: o.bytes.to_vec(),
                                port: o.port,
                                seq: o.seq,
                            })
                            .collect();
                        adverse_return_wave(adv, outs, sink, &mut tally)
                    }
                };
                let mut merge_side = BatchOutput::new();
                switch.process_batch(&back, &mut merge_side);
                reply(&mut tx, WorkerReply::Out(merge_side));
            }
            WorkerMsg::L2Add(mac, port) => switch.l2_add(mac, port),
            WorkerMsg::Query => {
                let state = WorkerReply::State {
                    counters: control.counters(&switch),
                    stats: switch.stats(),
                    occupancy: control.occupancy(&switch),
                    tally,
                };
                reply(&mut tx, state);
            }
            WorkerMsg::Flush => reply(&mut tx, WorkerReply::Flushed),
            WorkerMsg::Shutdown => return,
        }
    }
}

/// The multi-worker Split/Merge execution engine.
pub struct Engine {
    plan: ShardPlan,
    cfg: EngineConfig,
    workers: Vec<WorkerHandle>,
    dispatcher: DispatcherSlot,
}

impl Engine {
    /// Points the workers' wakeups at the calling thread — every entry
    /// point that waits on replies does this first, so an `Engine` moved
    /// across threads keeps its unpark path alive.
    fn capture_dispatcher(&self) {
        let current = std::thread::current();
        let mut slot = self.dispatcher.lock().expect("dispatcher slot poisoned");
        if slot.id() != current.id() {
            *slot = current;
        }
    }
}

impl Engine {
    /// Builds an engine for `park`, sharded `cfg.workers` ways, and starts
    /// the worker threads. The threads live until the engine is dropped.
    pub fn new(park: &ParkConfig, cfg: EngineConfig) -> Result<Engine, BuildError> {
        if cfg.batch == 0 || cfg.ring_depth == 0 {
            return Err(BuildError::Config("batch and ring_depth must be positive".into()));
        }
        let plan = ShardPlan::new(park, cfg.workers).map_err(BuildError::Config)?;
        let dispatcher: DispatcherSlot = Arc::new(Mutex::new(std::thread::current()));
        let mut workers = Vec::with_capacity(plan.workers());
        for (w, shard_cfg) in plan.configs().iter().enumerate() {
            let (switch, handles) = build_switch(shard_cfg)?;
            let control = PipeControl::new(handles[0].clone());
            let (tx, in_rx) = spsc::ring::<WorkerMsg>(cfg.ring_depth);
            let (out_tx, rx) = spsc::ring::<WorkerReply>(cfg.ring_depth);
            let slot = Arc::clone(&dispatcher);
            let join = std::thread::Builder::new()
                .name(format!("pp-fastpath-{w}"))
                .spawn(move || worker_main(switch, control, in_rx, out_tx, slot))
                .expect("spawn fastpath worker");
            workers.push(WorkerHandle { tx, rx, join: Some(join) });
        }
        Ok(Engine { plan, cfg, workers, dispatcher })
    }

    /// The shard plan in use.
    pub fn plan(&self) -> &ShardPlan {
        &self.plan
    }

    /// Number of worker threads.
    pub fn workers(&self) -> usize {
        self.workers.len()
    }

    /// Adds an L2 forwarding entry to every shard (all shards share the
    /// switch's forwarding view, as all slices of one pipe do).
    pub fn l2_add(&mut self, mac: MacAddr, port: PortId) {
        for w in &mut self.workers {
            w.send(WorkerMsg::L2Add(mac, port));
        }
    }

    /// Runs one wave of traffic through the engine.
    ///
    /// Packets are routed to shards by ingress port (packets on ports
    /// outside the plan take the pure L2 path and go to shard 0), cut into
    /// `batch`-sized messages, and processed concurrently. Within a shard,
    /// arrival order is preserved end to end.
    pub fn process(&mut self, inputs: Vec<BatchPacket>) -> EngineOutput {
        self.run(inputs, None, None)
    }

    /// Runs one wave through the full Split → NF → Merge round trip: each
    /// worker bounces its split-side outputs off its slice's MAC-swap NF
    /// server (readdressed to `sink`) and merges the returns, so the
    /// entire per-packet path executes shard-locally. Returns the
    /// merge-side (sink-bound) outputs.
    pub fn process_roundtrip(&mut self, inputs: Vec<BatchPacket>, sink: MacAddr) -> EngineOutput {
        self.run(inputs, Some(sink), None)
    }

    /// [`Engine::process_roundtrip`] under an adversity scenario: each
    /// worker's own injector mangles the switch → NF and NF → switch legs
    /// of its shard. Decisions are keyed on `(seed, leg, seq)`, so the
    /// scenario is replayable from the profile's seed, and which packets
    /// are lost, duplicated, truncated or corrupted is independent of the
    /// worker count or batch size. Reorder displacement is additionally
    /// clamped to the batch span (the fused round trip merges each batch
    /// before the next one splits) — drive the engine in two phases with
    /// [`adverse_return_wave`] applied globally, as the equivalence suite
    /// does, when cross-batch reordering must match the scalar reference.
    /// [`Engine::fault_tally`] reports what was injected.
    pub fn process_roundtrip_adverse(
        &mut self,
        inputs: Vec<BatchPacket>,
        sink: MacAddr,
        adversity: &AdversityProfile,
    ) -> EngineOutput {
        let adv = (!adversity.is_disabled()).then(|| Arc::new(adversity.clone()));
        self.run(inputs, Some(sink), adv)
    }

    fn run(
        &mut self,
        inputs: Vec<BatchPacket>,
        sink: Option<MacAddr>,
        adversity: Option<Arc<AdversityProfile>>,
    ) -> EngineOutput {
        self.capture_dispatcher();
        let n = self.workers.len();

        // Shard the inputs by the port→slice mapping, then cut each
        // shard's queue into batch messages.
        let mut queues: Vec<Vec<BatchPacket>> = (0..n).map(|_| Vec::new()).collect();
        for pkt in inputs {
            let w = self.plan.shard_of_port(pkt.port.0).unwrap_or(0);
            queues[w].push(pkt);
        }
        let mut chunks: Vec<VecDeque<Vec<BatchPacket>>> =
            queues.into_iter().map(|q| chunked(q, self.cfg.batch)).collect();

        // Dispatch and collect, interleaved so a full ring on either side
        // can always drain: work is offered with try_push and replies are
        // drained every round. A final Flush per worker marks the wave's
        // end.
        let mut results: Vec<Vec<BatchOutput>> = (0..n).map(|_| Vec::new()).collect();
        let mut flush_sent = vec![false; n];
        let mut flushed = vec![false; n];
        let mut idle_rounds = 0u32;
        while !flushed.iter().all(|&f| f) {
            let mut progress = false;
            for w in 0..n {
                if !flush_sent[w] {
                    if let Some(chunk) = chunks[w].pop_front() {
                        let msg = match sink {
                            Some(sink) => WorkerMsg::Roundtrip {
                                pkts: chunk,
                                sink,
                                adversity: adversity.clone(),
                            },
                            None => WorkerMsg::Batch(chunk),
                        };
                        match self.workers[w].tx.try_push(msg) {
                            Ok(()) => {
                                self.workers[w].wake();
                                progress = true;
                            }
                            Err(WorkerMsg::Batch(c))
                            | Err(WorkerMsg::Roundtrip { pkts: c, .. }) => {
                                chunks[w].push_front(c);
                            }
                            Err(_) => unreachable!("pushed a batch message"),
                        }
                    } else if self.workers[w].tx.try_push(WorkerMsg::Flush).is_ok() {
                        self.workers[w].wake();
                        flush_sent[w] = true;
                        progress = true;
                    }
                }
                while let Some(reply) = self.workers[w].rx.try_pop() {
                    progress = true;
                    match reply {
                        WorkerReply::Out(out) => results[w].push(out),
                        WorkerReply::Flushed => flushed[w] = true,
                        WorkerReply::State { .. } => {}
                    }
                }
            }
            if progress {
                idle_rounds = 0;
            } else {
                // A panicked worker can never flush; surface what we have
                // instead of spinning forever (tests then see the damage).
                for (w, handle) in self.workers.iter().enumerate() {
                    if !flushed[w] && handle.join.as_ref().is_none_or(|j| j.is_finished()) {
                        flushed[w] = true;
                    }
                }
                // Same hybrid as the workers: yield first (direct hand-over
                // on a saturated core), park once the wave has gone quiet.
                idle_rounds += 1;
                if idle_rounds < 128 {
                    std::thread::yield_now();
                } else {
                    std::thread::park_timeout(IDLE_PARK);
                }
            }
        }

        EngineOutput { per_worker: results }
    }

    /// Control-plane snapshots from every worker, in worker order.
    fn query(&mut self) -> Vec<(CounterSnapshot, SwitchStats, usize, FaultTally)> {
        self.capture_dispatcher();
        let mut states = Vec::with_capacity(self.workers.len());
        for w in &mut self.workers {
            if !w.send(WorkerMsg::Query) {
                continue;
            }
            loop {
                match w.recv() {
                    Some(WorkerReply::State { counters, stats, occupancy, tally }) => {
                        states.push((counters, stats, occupancy, tally));
                        break;
                    }
                    Some(_) => continue, // stale wave replies cannot occur here, but be safe
                    None => break,
                }
            }
        }
        states
    }

    /// Aggregated PayloadPark counters across all shards.
    pub fn counters(&mut self) -> CounterSnapshot {
        let mut total = CounterSnapshot::default();
        for (c, _, _, _) in self.query() {
            total.add(&c);
        }
        total
    }

    /// Aggregated switch statistics across all shards.
    pub fn switch_stats(&mut self) -> SwitchStats {
        let mut total = SwitchStats::default();
        for (_, s, _, _) in self.query() {
            total.add(&s);
        }
        total
    }

    /// Occupied lookup-table slots across all shards.
    pub fn occupancy(&mut self) -> usize {
        self.query().iter().map(|(_, _, o, _)| o).sum()
    }

    /// Aggregated fault tally of the per-shard adversity injectors.
    pub fn fault_tally(&mut self) -> FaultTally {
        let mut total = FaultTally::default();
        for (_, _, _, t) in self.query() {
            total.add(&t);
        }
        total
    }

    /// One telemetry registry for the whole engine: each worker's state
    /// becomes a shard-labelled registry (plus that shard's inbound-ring
    /// depth high-water mark), merged with an unlabelled aggregate view —
    /// so the exposition carries both per-shard series and deployment
    /// totals.
    pub fn telemetry_registry(&mut self) -> pp_metrics::MetricsRegistry {
        let states = self.query();
        let mut total = pp_metrics::MetricsRegistry::new();
        let mut agg_counters = CounterSnapshot::default();
        let mut agg_stats = SwitchStats::default();
        let mut agg_occupancy = 0;
        let mut agg_tally = FaultTally::default();
        for (w, (counters, stats, occupancy, tally)) in states.iter().enumerate() {
            let shard = w.to_string();
            let labels = [("shard", shard.as_str())];
            let mut reg =
                crate::telemetry::dataplane_registry(counters, stats, *occupancy, tally, &labels);
            let hw = reg.highwater(
                "pp_ring_depth_highwater",
                "Deepest observed in-flight depth of the shard's inbound SPSC ring.",
                &labels,
            );
            reg.observe_high(hw, self.workers[w].tx.high_water() as u64);
            total.merge_from(&reg);
            agg_counters.add(counters);
            agg_stats.add(stats);
            agg_occupancy += occupancy;
            agg_tally.add(tally);
        }
        total.merge_from(&crate::telemetry::dataplane_registry(
            &agg_counters,
            &agg_stats,
            agg_occupancy,
            &agg_tally,
            &[],
        ));
        total
    }
}

impl Drop for Engine {
    fn drop(&mut self) {
        for w in &mut self.workers {
            w.send(WorkerMsg::Shutdown);
        }
        for w in &mut self.workers {
            if let Some(join) = w.join.take() {
                let _ = join.join();
            }
        }
    }
}

/// Cuts a queue into `size`-packet messages, preserving order.
fn chunked(mut q: Vec<BatchPacket>, size: usize) -> VecDeque<Vec<BatchPacket>> {
    let mut out = VecDeque::new();
    loop {
        if q.len() <= size {
            if !q.is_empty() {
                out.push_back(q);
            }
            return out;
        }
        let rest = q.split_off(size);
        out.push_back(q);
        q = rest;
    }
}

/// The egress side of one [`Engine::process`] wave: each worker's batch
/// arenas, kept as produced (no merge copies on the hot path).
#[derive(Debug, Default)]
pub struct EngineOutput {
    per_worker: Vec<Vec<BatchOutput>>,
}

impl EngineOutput {
    /// Total packets egressed.
    pub fn packets(&self) -> usize {
        self.per_worker.iter().flatten().map(BatchOutput::len).sum()
    }

    /// Total wire bytes egressed.
    pub fn wire_bytes(&self) -> usize {
        self.per_worker.iter().flatten().map(BatchOutput::wire_bytes).sum()
    }

    /// Packets one worker egressed.
    pub fn worker_packets(&self, w: usize) -> usize {
        self.per_worker[w].iter().map(BatchOutput::len).sum()
    }

    /// Iterates one worker's outputs in that shard's arrival order.
    pub fn worker_iter(&self, w: usize) -> impl Iterator<Item = OutputRef<'_>> {
        self.per_worker[w].iter().flat_map(BatchOutput::iter)
    }

    /// Number of workers that contributed.
    pub fn workers(&self) -> usize {
        self.per_worker.len()
    }

    /// Iterates all outputs, worker by worker.
    pub fn iter(&self) -> impl Iterator<Item = OutputRef<'_>> {
        self.per_worker.iter().flatten().flat_map(BatchOutput::iter)
    }

    /// Borrowed views of all outputs, globally ordered by sequence number
    /// — the zero-copy way to walk a wave in deterministic order (the
    /// bytes stay in the workers' batch arenas).
    pub fn sorted_refs(&self) -> Vec<OutputRef<'_>> {
        let mut all: Vec<OutputRef<'_>> = self.iter().collect();
        all.sort_by_key(|o| o.seq);
        all
    }

    /// Copies all outputs out, globally ordered by sequence number — the
    /// deterministic order the equivalence oracle compares against the
    /// scalar pipeline's output. Clones every packet; hot paths should use
    /// [`EngineOutput::sorted_refs`].
    pub fn to_seq_sorted(&self) -> Vec<SwitchOutput> {
        self.sorted_refs().into_iter().map(|o| o.to_owned()).collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::testbed::SlicedTestbed;
    use pp_packet::builder::UdpPacketBuilder;

    const TB: SlicedTestbed = SlicedTestbed { slices: 4, slots: 512 };

    /// Round-trips `inputs` (split, MAC-swap at the server, merge) through
    /// the scalar switch, returning sink-side outputs and counters.
    fn scalar_roundtrip(inputs: &[BatchPacket]) -> (Vec<SwitchOutput>, CounterSnapshot) {
        let (mut sw, control) = TB.build_scalar();
        let merged = TB.scalar_roundtrip(&mut sw, inputs);
        let counters = control.counters(&sw);
        (merged, counters)
    }

    fn engine_roundtrip(
        inputs: Vec<BatchPacket>,
        workers: usize,
        fused: bool,
    ) -> (Vec<SwitchOutput>, CounterSnapshot) {
        let mut engine =
            TB.build_engine(EngineConfig { workers, batch: 16, ring_depth: 4 }).unwrap();
        let merged = if fused {
            engine.process_roundtrip(inputs, TB.sink_mac())
        } else {
            let to_server = engine.process(inputs);
            let back = reflect_outputs(to_server.iter(), TB.sink_mac());
            engine.process(back)
        };
        (merged.to_seq_sorted(), engine.counters())
    }

    #[test]
    fn sharded_engine_matches_scalar_switch() {
        // 75 packets per slice, well below the 512 slots: no wrap, so the
        // interleaved scalar reference and both engine drive modes must
        // agree exactly.
        let inputs = TB.counted_enterprise_wave(42, 300);
        let (scalar_out, scalar_counters) = scalar_roundtrip(&inputs);
        for workers in [1, 2, 4] {
            for fused in [false, true] {
                let (engine_out, engine_counters) =
                    engine_roundtrip(inputs.clone(), workers, fused);
                assert_eq!(engine_out, scalar_out, "{workers} workers, fused={fused}");
                assert_eq!(engine_counters, scalar_counters, "{workers} workers, fused={fused}");
            }
        }
        assert!(scalar_counters.splits > 0, "workload must exercise parking");
    }

    #[test]
    fn engine_survives_many_waves() {
        let mut engine =
            TB.build_engine(EngineConfig { workers: 2, batch: 32, ring_depth: 2 }).unwrap();
        let mut emitted = 0;
        for wave in 0..10 {
            let out = engine.process_roundtrip(TB.counted_enterprise_wave(wave, 64), TB.sink_mac());
            emitted += out.packets();
            assert_eq!(out.workers(), 2, "wave {wave}");
        }
        assert_eq!(emitted, 640);
        assert_eq!(engine.switch_stats().emitted, 2 * 640, "split pass + merge pass");
    }

    #[test]
    fn telemetry_registry_aggregates_shards() {
        let mut engine =
            TB.build_engine(EngineConfig { workers: 2, batch: 16, ring_depth: 4 }).unwrap();
        let _ = engine.process_roundtrip(TB.counted_enterprise_wave(3, 120), TB.sink_mac());
        let counters = engine.counters();
        assert!(counters.splits > 0);
        let reg = engine.telemetry_registry();
        // The unlabelled aggregate equals the summed per-shard series.
        assert_eq!(reg.get("pp_splits_total", &[]).unwrap().value(), counters.splits as f64);
        let s0 = reg.get("pp_splits_total", &[("shard", "0")]).unwrap().value();
        let s1 = reg.get("pp_splits_total", &[("shard", "1")]).unwrap().value();
        assert_eq!(s0 + s1, counters.splits as f64);
        // Every shard pushed batches, so its ring saw at least one message.
        for shard in ["0", "1"] {
            let hw = reg.get("pp_ring_depth_highwater", &[("shard", shard)]).unwrap();
            assert!(hw.value() >= 1.0, "shard {shard}: {}", hw.value());
        }
    }

    #[test]
    fn unknown_port_takes_the_l2_path_on_shard_zero() {
        let mut engine =
            TB.build_engine(EngineConfig { workers: 2, ..Default::default() }).unwrap();
        let pkt = BatchPacket {
            bytes: UdpPacketBuilder::new()
                .dst_mac(TB.sink_mac())
                .total_size(400, 9)
                .build()
                .into_bytes(),
            port: PortId(12), // not in any slice
            seq: 0,
        };
        let out = engine.process(vec![pkt.clone()]);
        assert_eq!(out.packets(), 1);
        assert_eq!(out.worker_packets(0), 1, "routed to shard 0");
        assert_eq!(out.worker_iter(0).count(), 1);
        assert_eq!(out.iter().next().unwrap().bytes, &pkt.bytes[..], "L2 is byte-transparent");
        assert_eq!(engine.counters().splits, 0);
        assert_eq!(engine.switch_stats().emitted, 1);
        assert_eq!(engine.occupancy(), 0);
        assert_eq!(engine.workers(), 2);
        assert_eq!(engine.plan().workers(), 2);
    }

    #[test]
    fn engine_moved_across_threads_keeps_its_wakeups() {
        // The dispatcher slot must follow the driving thread, not the
        // thread that constructed the engine.
        let mut engine =
            TB.build_engine(EngineConfig { workers: 2, batch: 16, ring_depth: 4 }).unwrap();
        let (merged, counters) = std::thread::spawn(move || {
            let out = engine.process_roundtrip(TB.counted_enterprise_wave(5, 120), TB.sink_mac());
            (out.packets(), engine.counters())
        })
        .join()
        .unwrap();
        assert_eq!(merged, 120);
        assert!(counters.splits > 0);
    }

    #[test]
    fn adverse_roundtrip_replays_byte_identically_from_its_seed() {
        use pp_netsim::adversity::LegProfile;
        let adv = AdversityProfile {
            seed: 42,
            to_nf: LegProfile::loss(0.05),
            from_nf: LegProfile {
                drop: 0.1,
                duplicate: 0.1,
                truncate: 0.1,
                reorder: 0.3,
                max_displacement: 8,
                ..Default::default()
            },
        };
        let run = |adv: &AdversityProfile| {
            let mut engine =
                TB.build_engine(EngineConfig { workers: 2, batch: 16, ring_depth: 4 }).unwrap();
            let out = engine.process_roundtrip_adverse(
                TB.counted_enterprise_wave(7, 240),
                TB.sink_mac(),
                adv,
            );
            (out.to_seq_sorted(), engine.counters(), engine.occupancy(), engine.fault_tally())
        };
        let (out_a, counters_a, occ_a, tally_a) = run(&adv);
        let (out_b, counters_b, occ_b, tally_b) = run(&adv);
        assert_eq!(out_a, out_b, "same seed must replay byte-identically");
        assert_eq!(counters_a, counters_b);
        assert_eq!(tally_a, tally_b);
        assert!(tally_a.lost() > 0, "{tally_a:?}");
        // The invariants hold even under loss + dup + truncation + reorder.
        payloadpark::oracle::check_counters(&counters_a, occ_a).assert_ok();
        payloadpark::oracle::check_counters(&counters_b, occ_b).assert_ok();
        // A different seed is a different scenario.
        let (_, _, _, tally_c) = run(&AdversityProfile { seed: 43, ..adv });
        assert_ne!(tally_a, tally_c, "seed must select the scenario");
    }

    #[test]
    fn disabled_adversity_is_the_plain_roundtrip() {
        let inputs = TB.counted_enterprise_wave(9, 120);
        let mut plain =
            TB.build_engine(EngineConfig { workers: 2, batch: 16, ring_depth: 4 }).unwrap();
        let expected = plain.process_roundtrip(inputs.clone(), TB.sink_mac()).to_seq_sorted();
        let mut adverse =
            TB.build_engine(EngineConfig { workers: 2, batch: 16, ring_depth: 4 }).unwrap();
        let got = adverse
            .process_roundtrip_adverse(inputs, TB.sink_mac(), &AdversityProfile::disabled())
            .to_seq_sorted();
        assert_eq!(got, expected);
        assert_eq!(adverse.fault_tally(), Default::default());
    }

    #[test]
    fn rejects_bad_configs() {
        assert!(TB.build_engine(EngineConfig { workers: 5, ..Default::default() }).is_err());
        assert!(TB.build_engine(EngineConfig { batch: 0, ..Default::default() }).is_err());
        assert!(TB.build_engine(EngineConfig { ring_depth: 0, ..Default::default() }).is_err());
    }

    #[test]
    fn chunking_preserves_order_and_sizes() {
        let q = TB.counted_enterprise_wave(1, 10);
        let chunks = chunked(q.clone(), 4);
        assert_eq!(chunks.len(), 3);
        let flat: Vec<u64> = chunks.iter().flatten().map(|p| p.seq).collect();
        assert_eq!(flat, (0..10).collect::<Vec<u64>>());
        assert!(chunked(Vec::new(), 4).is_empty());
    }
}
