//! Building [`pp_metrics`] registries from dataplane state.
//!
//! [`dataplane_registry`] is the one place the counter/stat/tally families
//! get their Prometheus names and help strings; every execution path — a
//! scalar [`SwitchModel`](pp_rmt::SwitchModel) loop, the DES harness, or
//! the sharded [`Engine`](crate::Engine) — feeds the same builder with its
//! own labels, so the exposition is structurally identical everywhere and
//! per-shard registries aggregate with
//! [`MetricsRegistry::merge_from`].

use payloadpark::CounterSnapshot;
use pp_metrics::MetricsRegistry;
use pp_netsim::adversity::FaultTally;
use pp_rmt::switch::SwitchStats;

/// Help text for a PayloadPark counter family (`COUNTER_NAMES` entry).
pub fn counter_help(name: &str) -> &'static str {
    match name {
        "splits" => "Successful Split operations.",
        "merges" => "Successful Merge operations.",
        "explicit_drops" => "Explicit Drop operations (slot reclaimed, packet dropped).",
        "evictions" => "Parked payloads evicted by the expiry mechanism.",
        "premature_evictions" => "Merges that found their payload prematurely evicted.",
        "enb0_from_server" => "Split-disabled packets returning from the NF server.",
        "disabled_small_payload" => "Splits skipped: payload under the minimum size.",
        "disabled_occupied" => "Splits skipped: probed slot occupied.",
        "crc_fail" => "Merge tags failing CRC validation.",
        "len_underflow" => "Packets dropped by the length fix-up underflow guard.",
        "dup_merge" => "Duplicate Merge arrivals dropped (slot already reclaimed).",
        _ => "PayloadPark counter.",
    }
}

fn switch_stat_help(name: &str) -> &'static str {
    match name {
        "received" => "Packets offered to the switch.",
        "emitted" => "Packets emitted on an egress port.",
        "dropped_by_program" => "Packets dropped by a program verdict.",
        "dropped_no_route" => "Packets dropped for lack of an L2 route.",
        "dropped_recirc_limit" => "Packets dropped at the recirculation limit.",
        "parse_errors" => "Packets the parser rejected.",
        "recirculations" => "Recirculation passes performed.",
        _ => "Switch statistic.",
    }
}

fn fault_help(name: &str) -> &'static str {
    match name {
        "seen" => "Packets offered to an active adversity leg injector.",
        "dropped" => "Packets dropped by random loss.",
        "blacked_out" => "Packets dropped by blackout windows.",
        "duplicated" => "Duplicates inserted by the injector.",
        "truncated" => "Packets with tail bytes cut.",
        "corrupted" => "Packets with a bit flipped.",
        "displaced" => "Packets displaced later in the stream.",
        _ => "Adversity fault tally.",
    }
}

/// Builds one execution context's registry under `labels`: the 11
/// PayloadPark counters (`pp_<name>_total`), park-table occupancy
/// (`pp_park_table_occupancy`), the switch statistics
/// (`pp_switch_<name>_total`) and the adversity fault tally
/// (`pp_fault_<name>_total`, omitted entirely when the tally saw nothing —
/// benign runs carry no fault families).
pub fn dataplane_registry(
    counters: &CounterSnapshot,
    stats: &SwitchStats,
    occupancy: usize,
    tally: &FaultTally,
    labels: &[(&str, &str)],
) -> MetricsRegistry {
    let mut reg = MetricsRegistry::new();
    for (name, v) in counters.named() {
        let id = reg.counter(&format!("pp_{name}_total"), counter_help(name), labels);
        reg.set_counter(id, v);
    }
    let occ = reg.gauge("pp_park_table_occupancy", "Occupied lookup-table slots.", labels);
    reg.set(occ, occupancy as f64);
    for (name, v) in stats.named() {
        let id = reg.counter(&format!("pp_switch_{name}_total"), switch_stat_help(name), labels);
        reg.set_counter(id, v);
    }
    if tally.seen > 0 {
        for (name, v) in tally.named() {
            let id = reg.counter(&format!("pp_fault_{name}_total"), fault_help(name), labels);
            reg.set_counter(id, v);
        }
    }
    reg
}

#[cfg(test)]
mod tests {
    use super::*;
    use payloadpark::counters::COUNTER_NAMES;

    #[test]
    fn every_counter_family_is_present_once() {
        let counters = CounterSnapshot { splits: 12, merges: 7, ..Default::default() };
        let reg = dataplane_registry(
            &counters,
            &SwitchStats::default(),
            3,
            &FaultTally::default(),
            &[("shard", "0")],
        );
        for name in COUNTER_NAMES {
            let family = format!("pp_{name}_total");
            let hits = reg.metrics().iter().filter(|m| m.name() == family).count();
            assert_eq!(hits, 1, "{family}");
        }
        assert_eq!(reg.get("pp_splits_total", &[("shard", "0")]).unwrap().value(), 12.0);
        assert_eq!(reg.get("pp_park_table_occupancy", &[("shard", "0")]).unwrap().value(), 3.0);
        assert!(
            !reg.metrics().iter().any(|m| m.name().starts_with("pp_fault_")),
            "benign runs export no fault families"
        );
    }

    #[test]
    fn fault_families_appear_when_the_injector_acted() {
        let tally = FaultTally { seen: 10, dropped: 2, ..Default::default() };
        let reg = dataplane_registry(
            &CounterSnapshot::default(),
            &SwitchStats::default(),
            0,
            &tally,
            &[],
        );
        assert_eq!(reg.get("pp_fault_dropped_total", &[]).unwrap().value(), 2.0);
        assert_eq!(reg.get("pp_fault_seen_total", &[]).unwrap().value(), 10.0);
    }

    #[test]
    fn per_shard_registries_merge_into_totals() {
        let mut a = dataplane_registry(
            &CounterSnapshot { splits: 5, ..Default::default() },
            &SwitchStats { emitted: 5, ..Default::default() },
            2,
            &FaultTally::default(),
            &[],
        );
        let b = dataplane_registry(
            &CounterSnapshot { splits: 3, ..Default::default() },
            &SwitchStats { emitted: 3, ..Default::default() },
            1,
            &FaultTally::default(),
            &[],
        );
        a.merge_from(&b);
        assert_eq!(a.get("pp_splits_total", &[]).unwrap().value(), 8.0);
        assert_eq!(a.get("pp_switch_emitted_total", &[]).unwrap().value(), 8.0);
        assert_eq!(a.get("pp_park_table_occupancy", &[]).unwrap().value(), 3.0);
    }
}
