//! **`pp_fastpath`** — a sharded, batched, multi-worker execution engine
//! for the PayloadPark Split/Merge dataplane.
//!
//! The reproduction's reference pipeline ([`pp_rmt::Pipeline`]) is
//! deliberately scalar and deterministic: one packet at a time, one thread.
//! That is the right *oracle*, but it cannot exhibit the property the
//! paper is about — throughput. This crate runs the same dataplane wide:
//!
//! * [`payloadpark::ShardPlan`] partitions a deployment by the paper's
//!   §6.2.4 port→slice mapping, giving each worker a disjoint slice of the
//!   parking store's circular buffers;
//! * [`engine::Engine`] owns one switch per shard and drives N worker
//!   threads over lock-free SPSC rings ([`spsc`]), each worker processing
//!   packet *batches* through the batched dataplane
//!   ([`pp_rmt::SwitchModel::process_batch`]), which amortizes MAT
//!   dispatch and deparses into a shared arena;
//! * [`adapter`] bridges [`pp_trafficgen`] streams in (paced ingest) and
//!   meters packets/sec and goodput out;
//! * [`adversity`] applies [`pp_netsim::adversity`] scenarios to engine
//!   waves: per-shard injectors mangle the internal NF legs with seeded
//!   loss/reorder/duplication/truncation, deterministically enough that
//!   scalar and sharded runs suffer identical misfortune.
//!
//! Sharded-batched execution is *observationally identical* to the scalar
//! pipeline: a slice's register cells are only ever touched by its own
//! shard, each shard preserves arrival order, and batch execution performs
//! register accesses in the same per-array order as scalar execution (see
//! [`pp_rmt::Pipeline::execute_batch`]). `tests/functional_equivalence.rs`
//! holds the repository's oracle: identical counter totals and
//! byte-identical merged captures at 2 and 4 shards.

pub mod adapter;
pub mod adversity;
pub mod engine;
pub mod spsc;
pub mod telemetry;
pub mod testbed;

pub use adapter::{reflect_outputs, EgressMeter, PacedIngest};
pub use adversity::{adverse_return_wave, apply_leg_wave, internal_leg_protected_prefix};
pub use engine::{Engine, EngineConfig, EngineOutput};
pub use telemetry::dataplane_registry;
pub use testbed::SlicedTestbed;
// The batch I/O types engines speak, re-exported for callers' convenience.
pub use pp_rmt::switch::{BatchOutput, BatchPacket, OutputRef};
