//! Adapters between [`pp_trafficgen`] streams and the engine.
//!
//! [`PacedIngest`] turns a paced [`TrafficGen`] into engine-ready
//! [`BatchPacket`] waves (round-robining the stream across a deployment's
//! split ports, the way the paper's generator drives two NIC ports, §6.1);
//! [`EgressMeter`] accumulates egress-side packet and byte counts and
//! converts them to packets/sec and goodput over a wall-clock window;
//! [`reflect_outputs`] models the MAC-swapping NF server that returns
//! header packets to the merge ports.

use pp_netsim::time::SimDuration;
use pp_packet::MacAddr;
use pp_rmt::switch::{BatchPacket, OutputRef};
use pp_rmt::PortId;
use pp_trafficgen::gen::TrafficGen;
use std::time::Duration;

/// Pulls a paced traffic stream and shards it across split ports.
pub struct PacedIngest {
    gen: TrafficGen,
    split_ports: Vec<u16>,
}

impl PacedIngest {
    /// Wraps `gen`, spreading packets across `split_ports` round-robin by
    /// sequence number (deterministic, so scalar and sharded runs see the
    /// same port assignment).
    pub fn new(gen: TrafficGen, split_ports: Vec<u16>) -> Self {
        assert!(!split_ports.is_empty(), "need at least one split port");
        PacedIngest { gen, split_ports }
    }

    /// All departures within the next `window` of simulated time, as one
    /// input wave.
    pub fn wave(&mut self, window: SimDuration) -> Vec<BatchPacket> {
        self.gen
            .take_for(window)
            .into_iter()
            .map(|(_, pkt)| {
                let seq = pkt.seq();
                let port = self.split_ports[(seq as usize) % self.split_ports.len()];
                BatchPacket { bytes: pkt.into_bytes(), port: PortId(port), seq }
            })
            .collect()
    }

    /// Total packets generated so far.
    pub fn generated(&self) -> u64 {
        self.gen.generated()
    }

    /// Total wire bytes generated so far.
    pub fn generated_bytes(&self) -> u64 {
        self.gen.generated_bytes()
    }
}

/// Builds the merge-side return wave for outputs that reached an NF
/// server: the MAC-swap server readdresses each packet to `sink` and sends
/// it back into the switch on the port it arrived from.
pub fn reflect_outputs<'a>(
    outputs: impl Iterator<Item = OutputRef<'a>>,
    sink: MacAddr,
) -> Vec<BatchPacket> {
    outputs
        .map(|o| {
            let mut bytes = o.bytes.to_vec();
            bytes[0..6].copy_from_slice(&sink.0);
            BatchPacket { bytes, port: o.port, seq: o.seq }
        })
        .collect()
}

/// Egress-side throughput accounting.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct EgressMeter {
    packets: u64,
    wire_bytes: u64,
}

impl EgressMeter {
    /// An empty meter.
    pub fn new() -> Self {
        Self::default()
    }

    /// Records one egress wave.
    pub fn record(&mut self, packets: u64, wire_bytes: u64) {
        self.packets += packets;
        self.wire_bytes += wire_bytes;
    }

    /// Packets recorded.
    pub fn packets(&self) -> u64 {
        self.packets
    }

    /// Wire bytes recorded.
    pub fn wire_bytes(&self) -> u64 {
        self.wire_bytes
    }

    /// Packets per second of wall-clock `elapsed`.
    pub fn pps(&self, elapsed: Duration) -> f64 {
        self.packets as f64 / elapsed.as_secs_f64().max(1e-12)
    }

    /// Egressed Gbit per second of wall-clock `elapsed`.
    pub fn gbps(&self, elapsed: Duration) -> f64 {
        self.wire_bytes as f64 * 8.0 / elapsed.as_secs_f64().max(1e-12) / 1e9
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use pp_trafficgen::gen::{GenConfig, SizeModel};

    fn ingest(ports: Vec<u16>) -> PacedIngest {
        let gen = TrafficGen::new(GenConfig {
            rate_gbps: 5.0,
            sizes: SizeModel::Fixed(512),
            seed: 3,
            ..Default::default()
        });
        PacedIngest::new(gen, ports)
    }

    #[test]
    fn wave_round_robins_ports_by_seq() {
        let mut ing = ingest(vec![0, 2, 4]);
        let wave = ing.wave(SimDuration::from_micros(50));
        assert!(wave.len() > 6, "window too small: {}", wave.len());
        for pkt in &wave {
            assert_eq!(u64::from(pkt.port.0), (pkt.seq % 3) * 2);
        }
        assert_eq!(ing.generated(), wave.len() as u64 + 1, "one departure past the window");
        assert_eq!(ing.generated_bytes() % 512, 0);
    }

    #[test]
    fn waves_are_deterministic() {
        let a: Vec<_> = ingest(vec![0, 1]).wave(SimDuration::from_micros(80));
        let b: Vec<_> = ingest(vec![0, 1]).wave(SimDuration::from_micros(80));
        assert_eq!(a, b);
    }

    #[test]
    fn meter_converts_to_rates() {
        let mut m = EgressMeter::new();
        m.record(1000, 64_000);
        m.record(1000, 64_000);
        assert_eq!(m.packets(), 2000);
        assert_eq!(m.wire_bytes(), 128_000);
        let wall = Duration::from_millis(2);
        assert!((m.pps(wall) - 1_000_000.0).abs() < 1.0);
        assert!((m.gbps(wall) - 0.512).abs() < 1e-9);
    }

    #[test]
    #[should_panic(expected = "at least one split port")]
    fn empty_port_list_panics() {
        let _ = ingest(vec![]);
    }
}
