//! Stateful register arrays.
//!
//! Stage-local SRAM is exposed to MATs as fixed-width register arrays, the
//! model the paper builds its lookup table on: "MATs access SRAM reserved
//! for stateful operations using a read/write register API, which views all
//! of stateful memory as an array of fixed size bit-vector registers" (§2).

/// Identifies a register array within one pipeline.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct RegisterId(pub usize);

/// Declaration of a register array.
#[derive(Debug, Clone)]
pub struct RegisterSpec {
    /// Human-readable name (diagnostics and the resource report).
    pub name: String,
    /// Pipeline stage the array lives in; only MATs of the same stage may
    /// bind to it (Tofino stateful ALUs are stage-local).
    pub stage: usize,
    /// Width of one cell in bytes.
    pub cell_bytes: usize,
    /// Number of cells.
    pub cells: usize,
}

impl RegisterSpec {
    /// Total SRAM consumed by the array, in bits.
    pub fn sram_bits(&self) -> u64 {
        (self.cell_bytes as u64) * (self.cells as u64) * 8
    }
}

/// All register arrays of one pipeline, with their backing storage.
#[derive(Debug, Default)]
pub struct RegisterFile {
    specs: Vec<RegisterSpec>,
    data: Vec<Vec<u8>>,
    /// Total read-modify-write operations performed (work metric).
    accesses: u64,
}

impl RegisterFile {
    /// Creates an empty file.
    pub fn new() -> Self {
        Self::default()
    }

    /// Allocates an array, zero-initialised.
    pub fn allocate(&mut self, spec: RegisterSpec) -> RegisterId {
        assert!(spec.cell_bytes > 0 && spec.cells > 0, "register array must be non-empty");
        let id = RegisterId(self.specs.len());
        self.data.push(vec![0u8; spec.cell_bytes * spec.cells]);
        self.specs.push(spec);
        id
    }

    /// The declaration of `id`.
    pub fn spec(&self, id: RegisterId) -> &RegisterSpec {
        &self.specs[id.0]
    }

    /// All declarations (for resource accounting).
    pub fn specs(&self) -> &[RegisterSpec] {
        &self.specs
    }

    /// Mutable access to one cell — the single RMW a stateful ALU performs.
    ///
    /// Panics if the index is out of range: that is a program bug, the
    /// hardware equivalent of an invalid register index, which the P4
    /// compiler would reject.
    pub fn cell_mut(&mut self, id: RegisterId, index: usize) -> &mut [u8] {
        let spec = &self.specs[id.0];
        assert!(
            index < spec.cells,
            "register {} index {index} out of range ({} cells)",
            spec.name,
            spec.cells
        );
        self.accesses += 1;
        let w = spec.cell_bytes;
        &mut self.data[id.0][index * w..(index + 1) * w]
    }

    /// Read-only access to one cell **without** charging an access — for
    /// control-plane inspection (the paper reads its monitoring counters
    /// from the control plane, §5).
    pub fn cell(&self, id: RegisterId, index: usize) -> &[u8] {
        let spec = &self.specs[id.0];
        assert!(index < spec.cells, "register {} index {index} out of range", spec.name);
        let w = spec.cell_bytes;
        &self.data[id.0][index * w..(index + 1) * w]
    }

    /// Total RMW operations performed.
    pub fn total_accesses(&self) -> u64 {
        self.accesses
    }

    /// Zeroes every array (control-plane table clear).
    pub fn clear_all(&mut self) {
        for d in &mut self.data {
            d.fill(0);
        }
    }
}

/// Helpers for reading/writing little-endian integers in register cells.
pub mod cell {
    /// Reads a `u16` from the first two bytes of a cell.
    pub fn read_u16(cell: &[u8]) -> u16 {
        u16::from_le_bytes([cell[0], cell[1]])
    }

    /// Writes a `u16` into the first two bytes of a cell.
    pub fn write_u16(cell: &mut [u8], v: u16) {
        cell[..2].copy_from_slice(&v.to_le_bytes());
    }

    /// Reads a `u32` from the first four bytes of a cell.
    pub fn read_u32(cell: &[u8]) -> u32 {
        u32::from_le_bytes([cell[0], cell[1], cell[2], cell[3]])
    }

    /// Writes a `u32` into the first four bytes of a cell.
    pub fn write_u32(cell: &mut [u8], v: u32) {
        cell[..4].copy_from_slice(&v.to_le_bytes());
    }

    /// Reads a `u64` from the first eight bytes of a cell.
    pub fn read_u64(cell: &[u8]) -> u64 {
        u64::from_le_bytes(cell[..8].try_into().expect("cell >= 8 bytes"))
    }

    /// Writes a `u64` into the first eight bytes of a cell.
    pub fn write_u64(cell: &mut [u8], v: u64) {
        cell[..8].copy_from_slice(&v.to_le_bytes());
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn file_with_array(cells: usize, width: usize) -> (RegisterFile, RegisterId) {
        let mut f = RegisterFile::new();
        let id =
            f.allocate(RegisterSpec { name: "test".into(), stage: 2, cell_bytes: width, cells });
        (f, id)
    }

    #[test]
    fn arrays_are_zero_initialised() {
        let (f, id) = file_with_array(4, 8);
        for i in 0..4 {
            assert_eq!(f.cell(id, i), &[0u8; 8]);
        }
    }

    #[test]
    fn rmw_updates_one_cell() {
        let (mut f, id) = file_with_array(4, 4);
        cell::write_u32(f.cell_mut(id, 2), 0xDEADBEEF);
        assert_eq!(cell::read_u32(f.cell(id, 2)), 0xDEADBEEF);
        assert_eq!(cell::read_u32(f.cell(id, 1)), 0);
        assert_eq!(cell::read_u32(f.cell(id, 3)), 0);
        assert_eq!(f.total_accesses(), 1);
    }

    #[test]
    fn control_plane_reads_are_free() {
        let (mut f, id) = file_with_array(2, 2);
        f.cell_mut(id, 0);
        let _ = f.cell(id, 1);
        assert_eq!(f.total_accesses(), 1);
    }

    #[test]
    fn sram_bits_accounting() {
        let spec = RegisterSpec { name: "a".into(), stage: 0, cell_bytes: 16, cells: 1024 };
        assert_eq!(spec.sram_bits(), 16 * 1024 * 8);
    }

    #[test]
    fn clear_all_zeroes() {
        let (mut f, id) = file_with_array(2, 2);
        cell::write_u16(f.cell_mut(id, 0), 77);
        f.clear_all();
        assert_eq!(cell::read_u16(f.cell(id, 0)), 0);
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn out_of_range_panics() {
        let (mut f, id) = file_with_array(2, 2);
        f.cell_mut(id, 2);
    }

    #[test]
    fn cell_helpers_roundtrip() {
        let mut buf = [0u8; 8];
        cell::write_u16(&mut buf, 0x1234);
        assert_eq!(cell::read_u16(&buf), 0x1234);
        cell::write_u32(&mut buf, 0xAABBCCDD);
        assert_eq!(cell::read_u32(&buf), 0xAABBCCDD);
        cell::write_u64(&mut buf, 0x1122334455667788);
        assert_eq!(cell::read_u64(&buf), 0x1122334455667788);
    }

    #[test]
    fn multiple_arrays_are_independent() {
        let mut f = RegisterFile::new();
        let a = f.allocate(RegisterSpec { name: "a".into(), stage: 1, cell_bytes: 2, cells: 2 });
        let b = f.allocate(RegisterSpec { name: "b".into(), stage: 1, cell_bytes: 2, cells: 2 });
        cell::write_u16(f.cell_mut(a, 0), 1);
        cell::write_u16(f.cell_mut(b, 0), 2);
        assert_eq!(cell::read_u16(f.cell(a, 0)), 1);
        assert_eq!(cell::read_u16(f.cell(b, 0)), 2);
        assert_eq!(f.spec(a).name, "a");
        assert_eq!(f.specs().len(), 2);
    }
}
