//! An RMT (Reconfigurable Match-Action Table) dataplane emulator.
//!
//! The PayloadPark paper prototypes on a Barefoot Tofino ASIC programmed in
//! P4-16. There is no P4 toolchain target for a Rust reproduction, so this
//! crate provides a software switch that mimics the *architecture* of such a
//! chip closely enough that the constraints which shaped PayloadPark's
//! design hold here too:
//!
//! * packets are parsed into a **Packet Header Vector** ([`phv::Phv`]) with
//!   a bounded bit budget;
//! * processing is a fixed sequence of **stages**, each containing
//!   match-action tables ([`mat::Mat`]);
//! * each MAT may access **at most one cell of one register array per
//!   packet** (a single read-modify-write, like a Tofino stateful ALU) —
//!   enforced by construction: a MAT's stateful binding names one array and
//!   one index function;
//! * register arrays are **local to their stage** and pipes do **not**
//!   share stateful memory (paper §5);
//! * **recirculation** re-injects a packet at the parser (optionally into a
//!   different pipe) at a latency/bandwidth cost (§2, §6.2.5);
//! * per-stage SRAM/TCAM/VLIW/crossbar and chip-wide PHV budgets are
//!   accounted and enforced at program-build time, producing the resource
//!   report of the paper's Table 1 ([`resources`]).
//!
//! The crate is program-agnostic: the `payloadpark` crate builds its Split
//! and Merge logic (Algorithms 1 and 2 of the paper) from these primitives,
//! and a plain L2 forwarder serves as the baseline.

pub mod chip;
pub mod mat;
pub mod parser;
pub mod phv;
pub mod pipeline;
pub mod register;
pub mod resources;
pub mod summary;
pub mod switch;
pub mod trace;

pub use chip::{ChipProfile, PortId};
pub use mat::{ActionCtx, Mat, MatBuilder, MatFootprint, MatchKind};
pub use parser::{deparse_phv, parse_packet, BlockRule, ParserConfig};
pub use phv::{PayloadBlock, Phv, PpFields, RecircTarget, Verdict, BLOCK_BYTES};
pub use pipeline::{Pipeline, PipelineBuilder, ProgramError, Stage, StageProfile};
pub use register::{RegisterFile, RegisterId, RegisterSpec};
pub use resources::{ResourceReport, StageUsage};
pub use summary::{BranchSummary, Effects, MatSummary, PortDomain, Req, Slot};
pub use switch::{BatchOutput, BatchPacket, OutputRef, SwitchModel, SwitchOutput, SwitchStats};
pub use trace::{FlightRecorder, TraceEvent, TracePoint, TraceReason};
