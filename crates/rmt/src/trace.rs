//! Flight recorder: a fixed-capacity ring of sampled per-packet
//! [`TraceEvent`]s.
//!
//! The switch records an event at the parse, gateway (post-pipeline) and
//! deparse boundaries for every packet the program made a decision about
//! (split/merge/evict/drop…, accumulated as [`decision`] bits in
//! `Phv::trace_flags`) and for every drop; undecided forwards are sampled
//! 1-in-[`PLAIN_SAMPLE_MASK`]+1 by sequence number so steady traffic still
//! leaves a trail. The ring is pre-allocated and overwrites its oldest
//! entry when full, so recording is a bounds-checked array write — no
//! allocation, cheap enough to stay on inside the warm-batch
//! zero-allocation invariant.
//!
//! When the conformance oracle finds a violation, the recorder's contents
//! are dumped as JSONL ([`FlightRecorder::to_jsonl`]) so the failure ships
//! with the packet history that produced it.

/// Decision bits a program sets in `Phv::trace_flags`. Several can apply
//  to one packet (a Split that also evicted the slot's previous tenant).
pub mod decision {
    /// Payload parked (successful Split).
    pub const SPLIT: u16 = 1 << 0;
    /// Payload restored (successful Merge).
    pub const MERGE: u16 = 1 << 1;
    /// The probed slot's previous tenant was evicted by the expiry clock.
    pub const EVICT: u16 = 1 << 2;
    /// Explicit Drop opcode reclaimed the slot.
    pub const EXPLICIT_DROP: u16 = 1 << 3;
    /// Merge found its payload prematurely evicted (packet dropped).
    pub const PREMATURE_EVICT: u16 = 1 << 4;
    /// Duplicate Merge arrival on an already-reclaimed slot (dropped).
    pub const DUP_MERGE: u16 = 1 << 5;
    /// Tag failed CRC validation (dropped).
    pub const CRC_FAIL: u16 = 1 << 6;
    /// Length fix-up would have under/overflowed (dropped).
    pub const LEN_UNDERFLOW: u16 = 1 << 7;
    /// Split disabled: payload under the minimum size.
    pub const DISABLED_SMALL: u16 = 1 << 8;
    /// Split disabled: probed slot occupied.
    pub const DISABLED_OCCUPIED: u16 = 1 << 9;
    /// ENB=0 shim stripped (server declined parking).
    pub const ENB0: u16 = 1 << 10;
    /// Packet was sent through a recirculation channel.
    pub const RECIRCULATE: u16 = 1 << 11;

    /// The decisions that force a packet's trace into the recorder
    /// regardless of sampling: everything that loses, reclaims, or
    /// rejects state. Normal-path decisions (Split, Merge, the expected
    /// disable/strip cases, recirculation) are sampled like plain
    /// traffic — on an enterprise wave nearly every packet takes one, and
    /// recording them all would put the recorder on the hot path's
    /// critical cost (~4 % of scalar packets/sec; sampled, it is noise).
    pub const ANOMALY_MASK: u16 =
        EVICT | EXPLICIT_DROP | PREMATURE_EVICT | DUP_MERGE | CRC_FAIL | LEN_UNDERFLOW;

    /// Renders the set bits as a stable `+`-joined token list ("split",
    /// "split+evict", or "none").
    pub fn render(flags: u16) -> String {
        const NAMES: [(u16, &str); 12] = [
            (SPLIT, "split"),
            (MERGE, "merge"),
            (EVICT, "evict"),
            (EXPLICIT_DROP, "explicit_drop"),
            (PREMATURE_EVICT, "premature_evict"),
            (DUP_MERGE, "dup_merge"),
            (CRC_FAIL, "crc_fail"),
            (LEN_UNDERFLOW, "len_underflow"),
            (DISABLED_SMALL, "disabled_small"),
            (DISABLED_OCCUPIED, "disabled_occupied"),
            (ENB0, "enb0"),
            (RECIRCULATE, "recirculate"),
        ];
        let mut out = String::new();
        for (bit, name) in NAMES {
            if flags & bit != 0 {
                if !out.is_empty() {
                    out.push('+');
                }
                out.push_str(name);
            }
        }
        if out.is_empty() {
            out.push_str("none");
        }
        out
    }
}

/// Which boundary of the switch recorded the event.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TracePoint {
    /// The parser (only parse errors are recorded here).
    Parse,
    /// After the MAT pipeline ran, before the verdict is resolved.
    Gateway,
    /// Verdict resolution / deparse: egress, drop, or recirculation.
    Deparse,
}

impl TracePoint {
    fn as_str(self) -> &'static str {
        match self {
            TracePoint::Parse => "parse",
            TracePoint::Gateway => "gateway",
            TracePoint::Deparse => "deparse",
        }
    }
}

/// Why a packet left the switch (or didn't) at the deparse boundary.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum TraceReason {
    /// Nothing noteworthy (forwarded, or a non-deparse event).
    #[default]
    None,
    /// Emitted on an egress port.
    Egress,
    /// Dropped by the program's verdict.
    DropProgram,
    /// Dropped: no L2 route and no explicit egress.
    DropNoRoute,
    /// Dropped: recirculation limit exceeded.
    DropRecircLimit,
    /// Rejected by the parser.
    ParseError,
    /// Sent around a recirculation channel for another pass.
    Recirculated,
}

impl TraceReason {
    fn as_str(self) -> &'static str {
        match self {
            TraceReason::None => "none",
            TraceReason::Egress => "egress",
            TraceReason::DropProgram => "drop_program",
            TraceReason::DropNoRoute => "drop_no_route",
            TraceReason::DropRecircLimit => "drop_recirc_limit",
            TraceReason::ParseError => "parse_error",
            TraceReason::Recirculated => "recirculated",
        }
    }

    /// True for the drop/reject reasons.
    pub fn is_drop(self) -> bool {
        matches!(
            self,
            TraceReason::DropProgram
                | TraceReason::DropNoRoute
                | TraceReason::DropRecircLimit
                | TraceReason::ParseError
        )
    }
}

/// One sampled per-packet event.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct TraceEvent {
    /// Packet sequence number.
    pub seq: u64,
    /// Ingress port of the pass that recorded the event.
    pub port: u16,
    /// Pipe the pass ran in.
    pub pipe: u8,
    /// Boundary that recorded the event.
    pub point: TracePoint,
    /// Program decision bits ([`decision`]).
    pub decision: u16,
    /// Outcome at the deparse boundary.
    pub reason: TraceReason,
}

impl TraceEvent {
    /// Renders the event as one JSON object (one JSONL line, no newline).
    pub fn to_json(&self) -> String {
        format!(
            "{{\"seq\":{},\"port\":{},\"pipe\":{},\"point\":\"{}\",\"decision\":\"{}\",\"reason\":\"{}\"}}",
            self.seq,
            self.port,
            self.pipe,
            self.point.as_str(),
            decision::render(self.decision),
            self.reason.as_str()
        )
    }
}

/// Undecided forwards are sampled when `seq & PLAIN_SAMPLE_MASK == 0`.
pub const PLAIN_SAMPLE_MASK: u64 = 63;

/// Default ring capacity (events, not packets — a decided packet records
/// two events per pass).
pub const DEFAULT_CAPACITY: usize = 4096;

/// The fixed-capacity event ring. See the module docs.
#[derive(Debug, Clone)]
pub struct FlightRecorder {
    ring: Vec<TraceEvent>,
    /// Ring capacity (stored explicitly: `Vec::with_capacity` may round
    /// up, and the wrap arithmetic needs the exact modulus).
    cap: usize,
    /// Next write position.
    head: usize,
    /// Total events ever recorded (including overwritten ones).
    recorded: u64,
    enabled: bool,
}

impl Default for FlightRecorder {
    fn default() -> Self {
        FlightRecorder::with_capacity(DEFAULT_CAPACITY)
    }
}

impl FlightRecorder {
    /// A recorder holding up to `capacity` events, enabled, fully
    /// pre-allocated.
    pub fn with_capacity(capacity: usize) -> Self {
        let cap = capacity.max(1);
        FlightRecorder { ring: Vec::with_capacity(cap), cap, head: 0, recorded: 0, enabled: true }
    }

    /// Turns recording on/off (the overhead A/B switch).
    pub fn set_enabled(&mut self, enabled: bool) {
        self.enabled = enabled;
    }

    /// Is recording on?
    pub fn enabled(&self) -> bool {
        self.enabled
    }

    /// Records one event, overwriting the oldest when full.
    ///
    /// `#[cold]` + never-inline: call sites sit inside the per-packet
    /// verdict loop but fire for at most 1-in-64 packets — keeping the
    /// body (and the caller's `TraceEvent` construction) out of line keeps
    /// the hot loop's code footprint at its telemetry-off size.
    #[cold]
    #[inline(never)]
    pub fn record(&mut self, event: TraceEvent) {
        if !self.enabled {
            return;
        }
        self.recorded += 1;
        if self.ring.len() < self.cap {
            self.ring.push(event);
            self.head = self.ring.len() % self.cap;
        } else {
            self.ring[self.head] = event;
            self.head = (self.head + 1) % self.cap;
        }
    }

    /// Should an undecided forward with this sequence number be sampled?
    #[inline]
    pub fn sample_plain(&self, seq: u64) -> bool {
        self.enabled && seq & PLAIN_SAMPLE_MASK == 0
    }

    /// Number of events currently held.
    pub fn len(&self) -> usize {
        self.ring.len()
    }

    /// True when no events are held.
    pub fn is_empty(&self) -> bool {
        self.ring.is_empty()
    }

    /// Total events ever recorded, including ones the ring overwrote.
    pub fn recorded(&self) -> u64 {
        self.recorded
    }

    /// Discards all held events (recording stays on).
    pub fn clear(&mut self) {
        self.ring.clear();
        self.head = 0;
    }

    /// Events oldest-first.
    pub fn iter(&self) -> impl Iterator<Item = &TraceEvent> {
        // While filling, head == len and `older` is the whole fill; once
        // wrapped, entries at head.. are the oldest.
        let (newer, older) = self.ring.split_at(self.head.min(self.ring.len()));
        older.iter().chain(newer.iter())
    }

    /// Every held event for one packet, oldest-first.
    pub fn events_for_seq(&self, seq: u64) -> Vec<TraceEvent> {
        self.iter().filter(|e| e.seq == seq).copied().collect()
    }

    /// The whole ring as JSONL, oldest-first, one event per line.
    pub fn to_jsonl(&self) -> String {
        let mut out = String::new();
        for e in self.iter() {
            out.push_str(&e.to_json());
            out.push('\n');
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ev(seq: u64) -> TraceEvent {
        TraceEvent {
            seq,
            port: 3,
            pipe: 0,
            point: TracePoint::Gateway,
            decision: decision::SPLIT,
            reason: TraceReason::None,
        }
    }

    #[test]
    fn ring_overwrites_oldest() {
        let mut r = FlightRecorder::with_capacity(4);
        for seq in 0..6 {
            r.record(ev(seq));
        }
        assert_eq!(r.len(), 4);
        assert_eq!(r.recorded(), 6);
        let seqs: Vec<u64> = r.iter().map(|e| e.seq).collect();
        assert_eq!(seqs, vec![2, 3, 4, 5], "oldest-first, oldest two overwritten");
        assert_eq!(r.events_for_seq(5).len(), 1);
        assert!(r.events_for_seq(1).is_empty());
    }

    #[test]
    fn disabled_recorder_records_nothing() {
        let mut r = FlightRecorder::with_capacity(4);
        r.set_enabled(false);
        r.record(ev(0));
        assert!(r.is_empty());
        assert!(!r.sample_plain(0));
        r.set_enabled(true);
        assert!(r.sample_plain(0));
        assert!(!r.sample_plain(1));
        assert!(r.sample_plain(64));
    }

    #[test]
    fn jsonl_renders_one_event_per_line() {
        let mut r = FlightRecorder::with_capacity(8);
        r.record(ev(7));
        r.record(TraceEvent {
            seq: 8,
            port: 1,
            pipe: 2,
            point: TracePoint::Deparse,
            decision: decision::MERGE | decision::EVICT,
            reason: TraceReason::DropProgram,
        });
        let jsonl = r.to_jsonl();
        let lines: Vec<&str> = jsonl.lines().collect();
        assert_eq!(lines.len(), 2);
        assert_eq!(
            lines[0],
            "{\"seq\":7,\"port\":3,\"pipe\":0,\"point\":\"gateway\",\
             \"decision\":\"split\",\"reason\":\"none\"}"
        );
        assert!(lines[1].contains("\"decision\":\"merge+evict\""), "{}", lines[1]);
        assert!(lines[1].contains("\"reason\":\"drop_program\""));
    }

    #[test]
    fn decision_render_is_stable() {
        assert_eq!(decision::render(0), "none");
        assert_eq!(decision::render(decision::SPLIT | decision::EVICT), "split+evict");
        assert_eq!(decision::render(decision::DUP_MERGE), "dup_merge");
    }

    #[test]
    fn clear_keeps_recording() {
        let mut r = FlightRecorder::with_capacity(2);
        r.record(ev(1));
        r.clear();
        assert!(r.is_empty());
        r.record(ev(2));
        assert_eq!(r.len(), 1);
    }
}
