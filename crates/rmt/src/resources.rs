//! Resource utilization accounting — the reproduction of the paper's
//! Table 1.
//!
//! A [`ResourceReport`] summarises per-stage SRAM, TCAM, VLIW and crossbar
//! usage plus chip-wide PHV usage, as percentages of the
//! [`ChipProfile`](crate::chip::ChipProfile) budgets. The paper reports
//! average and peak per-stage SRAM (25.94 % / 33.75 % for 4 NF servers) and
//! flat percentages for the other resources.

use crate::chip::ChipProfile;

/// Resource usage of one stage.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct StageUsage {
    /// MATs placed.
    pub mats: usize,
    /// SRAM bits (register arrays + match tables).
    pub sram_bits: u64,
    /// TCAM bits.
    pub tcam_bits: u64,
    /// VLIW instruction slots.
    pub vliw_slots: u32,
    /// Exact-match crossbar bits.
    pub exact_xbar_bits: u32,
    /// Ternary-match crossbar bits.
    pub ternary_xbar_bits: u32,
}

/// A complete utilization report for one pipeline program.
#[derive(Debug, Clone)]
pub struct ResourceReport {
    chip: ChipProfile,
    phv_bits: u32,
    stages: Vec<StageUsage>,
}

impl ResourceReport {
    /// Builds a report from per-stage usage.
    pub fn new(chip: ChipProfile, phv_bits: u32, stages: Vec<StageUsage>) -> Self {
        ResourceReport { chip, phv_bits, stages }
    }

    /// Per-stage usage, indexed by stage.
    pub fn stages(&self) -> &[StageUsage] {
        &self.stages
    }

    /// Average per-stage SRAM utilization, in percent.
    pub fn sram_avg_pct(&self) -> f64 {
        let total: u64 = self.stages.iter().map(|s| s.sram_bits).sum();
        let budget = self.chip.sram_bits_per_stage * self.stages.len() as u64;
        percent(total as f64, budget as f64)
    }

    /// Peak per-stage SRAM utilization, in percent.
    pub fn sram_peak_pct(&self) -> f64 {
        self.stages
            .iter()
            .map(|s| percent(s.sram_bits as f64, self.chip.sram_bits_per_stage as f64))
            .fold(0.0, f64::max)
    }

    /// TCAM utilization across all stages, in percent.
    pub fn tcam_pct(&self) -> f64 {
        let total: u64 = self.stages.iter().map(|s| s.tcam_bits).sum();
        let budget = self.chip.tcam_bits_per_stage * self.stages.len() as u64;
        percent(total as f64, budget as f64)
    }

    /// VLIW utilization across all stages, in percent.
    pub fn vliw_pct(&self) -> f64 {
        let total: u32 = self.stages.iter().map(|s| s.vliw_slots).sum();
        let budget = self.chip.vliw_slots_per_stage * self.stages.len() as u32;
        percent(f64::from(total), f64::from(budget))
    }

    /// Exact-match crossbar utilization across all stages, in percent.
    pub fn exact_xbar_pct(&self) -> f64 {
        let total: u32 = self.stages.iter().map(|s| s.exact_xbar_bits).sum();
        let budget = self.chip.exact_xbar_bits_per_stage * self.stages.len() as u32;
        percent(f64::from(total), f64::from(budget))
    }

    /// Ternary-match crossbar utilization across all stages, in percent.
    pub fn ternary_xbar_pct(&self) -> f64 {
        let total: u32 = self.stages.iter().map(|s| s.ternary_xbar_bits).sum();
        let budget = self.chip.ternary_xbar_bits_per_stage * self.stages.len() as u32;
        percent(f64::from(total), f64::from(budget))
    }

    /// PHV utilization, in percent.
    pub fn phv_pct(&self) -> f64 {
        percent(f64::from(self.phv_bits), f64::from(self.chip.phv_bits))
    }

    /// Total SRAM bytes consumed by the program in this pipe.
    pub fn total_sram_bytes(&self) -> u64 {
        self.stages.iter().map(|s| s.sram_bits).sum::<u64>() / 8
    }

    /// Renders the report as a Table 1-style text table.
    pub fn render(&self) -> String {
        let mut out = String::new();
        out.push_str("Resource Name               | Utilization\n");
        out.push_str("----------------------------+---------------------------\n");
        out.push_str(&format!(
            "SRAM                        | {:.2}% (Avg.) / {:.2}% (Peak)\n",
            self.sram_avg_pct(),
            self.sram_peak_pct()
        ));
        out.push_str(&format!("TCAM                        | {:.2}%\n", self.tcam_pct()));
        out.push_str(&format!("VLIW                        | {:.2}%\n", self.vliw_pct()));
        out.push_str(&format!("Exact Match Crossbar        | {:.2}%\n", self.exact_xbar_pct()));
        out.push_str(&format!("Ternary Match Crossbar      | {:.2}%\n", self.ternary_xbar_pct()));
        out.push_str(&format!("Packet Header Vector        | {:.2}%\n", self.phv_pct()));
        out
    }

    /// Merges this report with another pipe's report (summing usage), for
    /// multi-pipe deployments where memory is sliced across pipes.
    pub fn merged_with(&self, other: &ResourceReport) -> ResourceReport {
        assert_eq!(self.stages.len(), other.stages.len(), "mismatched stage counts");
        let stages = self
            .stages
            .iter()
            .zip(&other.stages)
            .map(|(a, b)| StageUsage {
                mats: a.mats + b.mats,
                sram_bits: a.sram_bits + b.sram_bits,
                tcam_bits: a.tcam_bits + b.tcam_bits,
                vliw_slots: a.vliw_slots + b.vliw_slots,
                exact_xbar_bits: a.exact_xbar_bits + b.exact_xbar_bits,
                ternary_xbar_bits: a.ternary_xbar_bits + b.ternary_xbar_bits,
            })
            .collect();
        ResourceReport::new(self.chip, self.phv_bits.max(other.phv_bits), stages)
    }
}

fn percent(used: f64, budget: f64) -> f64 {
    if budget <= 0.0 {
        0.0
    } else {
        used / budget * 100.0
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn report_with(sram_per_stage: &[u64]) -> ResourceReport {
        let chip = ChipProfile::default();
        let stages = sram_per_stage
            .iter()
            .map(|&s| StageUsage { sram_bits: s, ..Default::default() })
            .collect();
        ResourceReport::new(chip, 2048, stages)
    }

    #[test]
    fn sram_avg_and_peak() {
        let budget = ChipProfile::default().sram_bits_per_stage;
        // Two stages at 50%, rest of 12 empty.
        let mut usage = vec![0u64; 12];
        usage[0] = budget / 2;
        usage[1] = budget / 2;
        let r = report_with(&usage);
        assert!((r.sram_avg_pct() - (100.0 / 12.0)).abs() < 1e-9);
        assert!((r.sram_peak_pct() - 50.0).abs() < 1e-9);
    }

    #[test]
    fn phv_pct() {
        let r = report_with(&[0; 12]);
        assert!((r.phv_pct() - 50.0).abs() < 1e-9); // 2048 / 4096
    }

    #[test]
    fn render_contains_all_rows() {
        let r = report_with(&[0; 12]);
        let text = r.render();
        for key in ["SRAM", "TCAM", "VLIW", "Exact Match", "Ternary Match", "Packet Header"] {
            assert!(text.contains(key), "missing {key}");
        }
    }

    #[test]
    fn merged_reports_sum() {
        let budget = ChipProfile::default().sram_bits_per_stage;
        let mut a_usage = vec![0u64; 12];
        a_usage[3] = budget / 4;
        let a = report_with(&a_usage);
        let b = report_with(&a_usage);
        let merged = a.merged_with(&b);
        assert!((merged.sram_peak_pct() - 50.0).abs() < 1e-9);
        assert_eq!(merged.stages()[3].sram_bits, budget / 2);
    }

    #[test]
    fn zero_budget_yields_zero_percent() {
        let chip = ChipProfile { ternary_xbar_bits_per_stage: 0, ..Default::default() };
        let r = ResourceReport::new(chip, 0, vec![StageUsage::default(); 12]);
        assert_eq!(r.ternary_xbar_pct(), 0.0);
    }

    #[test]
    fn total_sram_bytes() {
        let mut usage = vec![0u64; 12];
        usage[0] = 8 * 1000;
        usage[5] = 8 * 500;
        let r = report_with(&usage);
        assert_eq!(r.total_sram_bytes(), 1500);
    }
}
