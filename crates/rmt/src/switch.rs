//! The whole-switch model: pipes, L2 forwarding and recirculation.
//!
//! A [`SwitchModel`] owns one [`Pipeline`] per pipe, an L2 exact-match
//! forwarding table (dst MAC → port), and the recirculation plumbing. Ports
//! map onto pipes in consecutive groups of `ports_per_pipe` (paper §5), and
//! pipes never share stateful state.

use crate::chip::{ChipProfile, PortId};
use crate::parser::parse_packet;
use crate::pipeline::Pipeline;
use pp_packet::MacAddr;
use std::collections::HashMap;

/// Counters kept by the switch model.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct SwitchStats {
    /// Packets offered to the switch.
    pub received: u64,
    /// Packets emitted on an egress port.
    pub emitted: u64,
    /// Packets dropped by a program verdict (e.g. premature-eviction drop).
    pub dropped_by_program: u64,
    /// Packets dropped because no L2 route existed.
    pub dropped_no_route: u64,
    /// Packets dropped at the recirculation limit.
    pub dropped_recirc_limit: u64,
    /// Packets the parser rejected.
    pub parse_errors: u64,
    /// Recirculation passes performed.
    pub recirculations: u64,
}

/// One packet leaving the switch.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SwitchOutput {
    /// Egress port.
    pub port: PortId,
    /// Packet bytes as deparsed.
    pub bytes: Vec<u8>,
    /// Nanoseconds spent inside the switch (pipeline passes plus
    /// recirculation penalties).
    pub latency_ns: u64,
    /// Sequence number carried through from ingress.
    pub seq: u64,
}

/// A multi-pipe RMT switch.
pub struct SwitchModel {
    chip: ChipProfile,
    pipes: Vec<Pipeline>,
    l2: HashMap<MacAddr, PortId>,
    stats: SwitchStats,
}

impl SwitchModel {
    /// Assembles a switch from per-pipe programs.
    ///
    /// Panics if the number of pipelines does not match the chip's pipe
    /// count — a wiring bug, not a runtime condition.
    pub fn new(chip: ChipProfile, pipes: Vec<Pipeline>) -> Self {
        assert_eq!(pipes.len(), chip.pipes, "one pipeline per pipe required");
        SwitchModel { chip, pipes, l2: HashMap::new(), stats: SwitchStats::default() }
    }

    /// The chip profile.
    pub fn chip(&self) -> &ChipProfile {
        &self.chip
    }

    /// Adds (or replaces) an L2 forwarding entry.
    pub fn l2_add(&mut self, mac: MacAddr, port: PortId) {
        self.l2.insert(mac, port);
    }

    /// Looks up the L2 table.
    pub fn l2_lookup(&self, mac: MacAddr) -> Option<PortId> {
        self.l2.get(&mac).copied()
    }

    /// The virtual port id used when a packet recirculates into `pipe` on
    /// `channel`.
    pub fn recirc_port(&self, pipe: usize, channel: u8) -> PortId {
        self.chip.recirc_port(pipe, channel)
    }

    /// Immutable access to a pipe's pipeline (counters, registers, report).
    pub fn pipe(&self, idx: usize) -> &Pipeline {
        &self.pipes[idx]
    }

    /// Mutable access to a pipe's pipeline (control plane).
    pub fn pipe_mut(&mut self, idx: usize) -> &mut Pipeline {
        &mut self.pipes[idx]
    }

    /// Switch-level statistics.
    pub fn stats(&self) -> SwitchStats {
        self.stats
    }

    /// Processes one packet arriving on `in_port`; returns zero or one
    /// outputs (zero when dropped).
    pub fn process(&mut self, bytes: &[u8], in_port: PortId, seq: u64) -> Vec<SwitchOutput> {
        self.stats.received += 1;
        let mut pipe_idx = self.chip.pipe_of(in_port);
        debug_assert!(pipe_idx < self.pipes.len(), "port {in_port} beyond chip");
        let mut latency = self.chip.pipeline_latency_ns;

        let mut phv = match self.pipes[pipe_idx].process(bytes, in_port, seq) {
            Ok(phv) => phv,
            Err(_) => {
                self.stats.parse_errors += 1;
                return Vec::new();
            }
        };

        loop {
            if phv.verdict.drop {
                self.stats.dropped_by_program += 1;
                return Vec::new();
            }
            let Some(target) = phv.verdict.recirculate else { break };
            if phv.recirc_count >= self.chip.max_recirculations {
                self.stats.dropped_recirc_limit += 1;
                return Vec::new();
            }
            debug_assert!(target.pipe < self.pipes.len(), "recirculation to unknown pipe");
            self.stats.recirculations += 1;
            latency += self.chip.pipeline_latency_ns + self.chip.recirculation_penalty_ns;

            // Deparse on the current pipe, re-parse on the target pipe's
            // recirculation port. User metadata is bridged across the pass
            // (Tofino recirculation headers provide the same facility).
            let wire = self.pipes[pipe_idx].deparse(&phv);
            let port = self.recirc_port(target.pipe, target.channel);
            let mut next = match parse_packet(self.pipes[target.pipe].parser(), &wire, port, seq)
            {
                Ok(p) => p,
                Err(_) => {
                    self.stats.parse_errors += 1;
                    return Vec::new();
                }
            };
            next.recirc_count = phv.recirc_count + 1;
            next.meta = phv.meta;
            self.pipes[target.pipe].execute(&mut next);
            phv = next;
            pipe_idx = target.pipe;
        }

        let egress = phv.verdict.egress.or_else(|| self.l2.get(&phv.eth.dst).copied());
        match egress {
            Some(port) => {
                self.stats.emitted += 1;
                let bytes = self.pipes[pipe_idx].deparse(&phv);
                vec![SwitchOutput { port, bytes, latency_ns: latency, seq }]
            }
            None => {
                self.stats.dropped_no_route += 1;
                Vec::new()
            }
        }
    }

    /// Clears per-run statistics (register contents are left alone).
    pub fn reset_stats(&mut self) {
        self.stats = SwitchStats::default();
    }
}

impl core::fmt::Debug for SwitchModel {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        f.debug_struct("SwitchModel")
            .field("pipes", &self.pipes.len())
            .field("l2_entries", &self.l2.len())
            .field("stats", &self.stats)
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::mat::Mat;
    use crate::phv::RecircTarget;
    use crate::pipeline::Pipeline;
    use pp_packet::builder::UdpPacketBuilder;

    fn l2_switch() -> SwitchModel {
        let chip = ChipProfile::default();
        let pipes =
            (0..chip.pipes).map(|_| Pipeline::builder(chip).build().unwrap()).collect();
        SwitchModel::new(chip, pipes)
    }

    fn pkt_to(dst: MacAddr) -> Vec<u8> {
        UdpPacketBuilder::new().dst_mac(dst).total_size(300, 4).build().into_bytes()
    }

    #[test]
    fn l2_forwarding_delivers_to_learned_port() {
        let mut sw = l2_switch();
        let server = MacAddr::from_index(42);
        sw.l2_add(server, PortId(3));
        let bytes = pkt_to(server);
        let out = sw.process(&bytes, PortId(0), 1);
        assert_eq!(out.len(), 1);
        assert_eq!(out[0].port, PortId(3));
        assert_eq!(out[0].bytes, bytes);
        assert_eq!(out[0].seq, 1);
        assert_eq!(out[0].latency_ns, 400);
        assert_eq!(sw.stats().emitted, 1);
        assert_eq!(sw.l2_lookup(server), Some(PortId(3)));
    }

    #[test]
    fn unknown_destination_dropped() {
        let mut sw = l2_switch();
        let out = sw.process(&pkt_to(MacAddr::from_index(9)), PortId(0), 0);
        assert!(out.is_empty());
        assert_eq!(sw.stats().dropped_no_route, 1);
    }

    #[test]
    fn parse_error_counted() {
        let mut sw = l2_switch();
        let out = sw.process(&[0u8; 5], PortId(0), 0);
        assert!(out.is_empty());
        assert_eq!(sw.stats().parse_errors, 1);
    }

    #[test]
    fn program_drop_verdict() {
        let chip = ChipProfile::default();
        let mut pipes: Vec<Pipeline> = Vec::new();
        for _ in 0..chip.pipes {
            let mut b = Pipeline::builder(chip);
            b.place(0, Mat::builder("drop_all").action(|ctx| ctx.phv.verdict.drop = true).build());
            pipes.push(b.build().unwrap());
        }
        let mut sw = SwitchModel::new(chip, pipes);
        let out = sw.process(&pkt_to(MacAddr::from_index(1)), PortId(0), 0);
        assert!(out.is_empty());
        assert_eq!(sw.stats().dropped_by_program, 1);
    }

    #[test]
    fn program_egress_overrides_l2() {
        let chip = ChipProfile::default();
        let mut pipes: Vec<Pipeline> = Vec::new();
        for _ in 0..chip.pipes {
            let mut b = Pipeline::builder(chip);
            b.place(
                0,
                Mat::builder("steer")
                    .action(|ctx| ctx.phv.verdict.egress = Some(PortId(12)))
                    .build(),
            );
            pipes.push(b.build().unwrap());
        }
        let mut sw = SwitchModel::new(chip, pipes);
        sw.l2_add(MacAddr::from_index(2), PortId(5));
        let out = sw.process(&pkt_to(MacAddr::from_index(2)), PortId(0), 0);
        assert_eq!(out[0].port, PortId(12));
    }

    #[test]
    fn recirculation_crosses_pipes_and_charges_latency() {
        let chip = ChipProfile::default();
        let mut pipes: Vec<Pipeline> = Vec::new();
        for pipe_idx in 0..chip.pipes {
            let mut b = Pipeline::builder(chip);
            if pipe_idx == 0 {
                // First pass in pipe 0 sends the packet to pipe 1 once.
                b.place(
                    0,
                    Mat::builder("to_pipe1")
                        .gateway(|p| p.recirc_count == 0 && p.ingress_port == PortId(0))
                        .action(|ctx| {
                            ctx.phv.verdict.recirculate =
                                Some(RecircTarget { pipe: 1, channel: 0 })
                        })
                        .build(),
                );
            }
            if pipe_idx == 1 {
                b.place(
                    0,
                    Mat::builder("mark")
                        .action(|ctx| ctx.phv.verdict.egress = Some(PortId(30)))
                        .build(),
                );
            }
            pipes.push(b.build().unwrap());
        }
        let mut sw = SwitchModel::new(chip, pipes);
        let bytes = pkt_to(MacAddr::from_index(3));
        let out = sw.process(&bytes, PortId(0), 0);
        assert_eq!(out.len(), 1);
        assert_eq!(out[0].port, PortId(30));
        // Two passes + one recirculation penalty.
        assert_eq!(out[0].latency_ns, 400 + 400 + 60);
        assert_eq!(sw.stats().recirculations, 1);
        // Payload is preserved across the recirculation.
        assert_eq!(out[0].bytes, bytes);
    }

    #[test]
    fn recirculation_limit_drops() {
        let chip = ChipProfile::default();
        let mut pipes: Vec<Pipeline> = Vec::new();
        for _ in 0..chip.pipes {
            let mut b = Pipeline::builder(chip);
            b.place(
                0,
                Mat::builder("loop")
                    .action(|ctx| {
                        ctx.phv.verdict.recirculate = Some(RecircTarget { pipe: 0, channel: 0 })
                    })
                    .build(),
            );
            pipes.push(b.build().unwrap());
        }
        let mut sw = SwitchModel::new(chip, pipes);
        let out = sw.process(&pkt_to(MacAddr::from_index(1)), PortId(0), 0);
        assert!(out.is_empty());
        assert_eq!(sw.stats().dropped_recirc_limit, 1);
        assert_eq!(sw.stats().recirculations as u32, ChipProfile::default().max_recirculations);
    }

    #[test]
    fn recirc_port_ids_are_beyond_front_panel() {
        let sw = l2_switch();
        assert_eq!(sw.recirc_port(0, 0), PortId(64));
        assert_eq!(sw.recirc_port(0, 1), PortId(65));
        assert_eq!(sw.recirc_port(3, 1), PortId(71));
    }

    #[test]
    fn reset_stats() {
        let mut sw = l2_switch();
        sw.process(&[0u8; 3], PortId(0), 0);
        sw.reset_stats();
        assert_eq!(sw.stats(), SwitchStats::default());
    }

    #[test]
    #[should_panic(expected = "one pipeline per pipe")]
    fn wrong_pipe_count_panics() {
        let chip = ChipProfile::default();
        SwitchModel::new(chip, vec![]);
    }
}
