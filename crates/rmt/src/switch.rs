//! The whole-switch model: pipes, L2 forwarding and recirculation.
//!
//! A [`SwitchModel`] owns one [`Pipeline`] per pipe, an L2 exact-match
//! forwarding table (dst MAC → port), and the recirculation plumbing. Ports
//! map onto pipes in consecutive groups of `ports_per_pipe` (paper §5), and
//! pipes never share stateful state.

use crate::chip::{ChipProfile, PortId};
use crate::parser::parse_packet_into;
use crate::phv::Phv;
use crate::pipeline::Pipeline;
use crate::trace::{decision, FlightRecorder, TraceEvent, TracePoint, TraceReason};
use core::hash::{BuildHasherDefault, Hasher};
use core::mem;
use pp_packet::MacAddr;
use std::collections::HashMap;

/// FNV-1a, used for the L2 table.
///
/// The forwarding lookup runs once per pipeline pass on a 6-byte key;
/// SipHash's per-lookup setup costs more than the rest of egress
/// resolution. FNV is not DoS-resistant, but the L2 table is populated by
/// the control plane, not by packet contents.
#[derive(Default)]
struct FnvHasher(u64);

impl Hasher for FnvHasher {
    fn write(&mut self, bytes: &[u8]) {
        let mut h = if self.0 == 0 { 0xcbf2_9ce4_8422_2325 } else { self.0 };
        for &b in bytes {
            h = (h ^ u64::from(b)).wrapping_mul(0x0000_0100_0000_01b3);
        }
        self.0 = h;
    }

    fn finish(&self) -> u64 {
        self.0
    }
}

type L2Table = HashMap<MacAddr, PortId, BuildHasherDefault<FnvHasher>>;

/// Counters kept by the switch model.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct SwitchStats {
    /// Packets offered to the switch.
    pub received: u64,
    /// Packets emitted on an egress port.
    pub emitted: u64,
    /// Packets dropped by a program verdict (e.g. premature-eviction drop).
    pub dropped_by_program: u64,
    /// Packets dropped because no L2 route existed.
    pub dropped_no_route: u64,
    /// Packets dropped at the recirculation limit.
    pub dropped_recirc_limit: u64,
    /// Packets the parser rejected.
    pub parse_errors: u64,
    /// Recirculation passes performed.
    pub recirculations: u64,
}

impl SwitchStats {
    /// Accumulates another switch's statistics into this one (aggregating
    /// sharded workers must account for every field, so this lives next
    /// to the struct).
    pub fn add(&mut self, other: &SwitchStats) {
        self.received += other.received;
        self.emitted += other.emitted;
        self.dropped_by_program += other.dropped_by_program;
        self.dropped_no_route += other.dropped_no_route;
        self.dropped_recirc_limit += other.dropped_recirc_limit;
        self.parse_errors += other.parse_errors;
        self.recirculations += other.recirculations;
    }

    /// The statistics paired with stable snake_case names, for telemetry
    /// exporters.
    pub fn named(&self) -> [(&'static str, u64); 7] {
        [
            ("received", self.received),
            ("emitted", self.emitted),
            ("dropped_by_program", self.dropped_by_program),
            ("dropped_no_route", self.dropped_no_route),
            ("dropped_recirc_limit", self.dropped_recirc_limit),
            ("parse_errors", self.parse_errors),
            ("recirculations", self.recirculations),
        ]
    }
}

/// One packet leaving the switch.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SwitchOutput {
    /// Egress port.
    pub port: PortId,
    /// Packet bytes as deparsed.
    pub bytes: Vec<u8>,
    /// Nanoseconds spent inside the switch (pipeline passes plus
    /// recirculation penalties).
    pub latency_ns: u64,
    /// Sequence number carried through from ingress.
    pub seq: u64,
}

/// One packet offered to [`SwitchModel::process_batch`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct BatchPacket {
    /// Wire bytes.
    pub bytes: Vec<u8>,
    /// Ingress port.
    pub port: PortId,
    /// Sequence number (simulation bookkeeping).
    pub seq: u64,
}

impl From<SwitchOutput> for BatchPacket {
    /// Re-offering an egressed packet to the switch (NF reflection, merge
    /// return waves): the egress port doubles as the re-ingress port in
    /// the testbed wiring, and the sequence number rides along.
    fn from(o: SwitchOutput) -> Self {
        BatchPacket { bytes: o.bytes, port: o.port, seq: o.seq }
    }
}

#[derive(Debug, Clone, Copy)]
struct OutputItem {
    port: PortId,
    seq: u64,
    latency_ns: u64,
    start: usize,
    end: usize,
}

/// A borrowed view of one packet inside a [`BatchOutput`].
#[derive(Debug, Clone, Copy)]
pub struct OutputRef<'a> {
    /// Egress port.
    pub port: PortId,
    /// Sequence number carried through from ingress.
    pub seq: u64,
    /// Nanoseconds spent inside the switch.
    pub latency_ns: u64,
    /// Deparsed wire bytes (a slice of the batch arena).
    pub bytes: &'a [u8],
}

impl OutputRef<'_> {
    /// Copies this view out into an owned [`SwitchOutput`] (the one place
    /// a clone happens — hot paths stay on the borrowed view).
    pub fn to_owned(&self) -> SwitchOutput {
        SwitchOutput {
            port: self.port,
            bytes: self.bytes.to_vec(),
            latency_ns: self.latency_ns,
            seq: self.seq,
        }
    }
}

/// Egress side of one batch pass: all deparsed packets share a single byte
/// arena, so a batch costs two allocations amortized over every packet
/// instead of one `Vec` per packet. Reuse the same `BatchOutput` across
/// calls to keep the arena's capacity warm.
#[derive(Debug, Clone, Default)]
pub struct BatchOutput {
    bytes: Vec<u8>,
    items: Vec<OutputItem>,
}

impl BatchOutput {
    /// An empty output buffer.
    pub fn new() -> Self {
        Self::default()
    }

    /// Drops the contents, keeping the allocations.
    pub fn clear(&mut self) {
        self.bytes.clear();
        self.items.clear();
    }

    /// Packets held.
    pub fn len(&self) -> usize {
        self.items.len()
    }

    /// True when no packet egressed.
    pub fn is_empty(&self) -> bool {
        self.items.is_empty()
    }

    /// Total wire bytes emitted (the arena length).
    pub fn wire_bytes(&self) -> usize {
        self.bytes.len()
    }

    /// The `i`-th egressed packet.
    pub fn get(&self, i: usize) -> OutputRef<'_> {
        let it = self.items[i];
        OutputRef {
            port: it.port,
            seq: it.seq,
            latency_ns: it.latency_ns,
            bytes: &self.bytes[it.start..it.end],
        }
    }

    /// Iterates over the egressed packets in egress order.
    pub fn iter(&self) -> impl Iterator<Item = OutputRef<'_>> {
        self.items.iter().map(|it| OutputRef {
            port: it.port,
            seq: it.seq,
            latency_ns: it.latency_ns,
            bytes: &self.bytes[it.start..it.end],
        })
    }

    /// Copies the batch out into owned per-packet [`SwitchOutput`]s.
    ///
    /// This clones every packet's bytes — it exists for tests and cold
    /// paths that want owned data. Hot paths should consume the borrowed
    /// views from [`BatchOutput::iter`] / [`BatchOutput::get`] instead.
    pub fn to_switch_outputs(&self) -> Vec<SwitchOutput> {
        self.iter().map(|o| o.to_owned()).collect()
    }

    /// Appends the outputs of another batch (used when merging per-worker
    /// results).
    pub fn append(&mut self, other: &BatchOutput) {
        let base = self.bytes.len();
        self.bytes.extend_from_slice(&other.bytes);
        self.items.extend(other.items.iter().map(|it| OutputItem {
            start: it.start + base,
            end: it.end + base,
            ..*it
        }));
    }

    fn push_deparsed(
        &mut self,
        pipe: &Pipeline,
        phv: &Phv,
        frame: &[u8],
        item: (PortId, u64, u64),
    ) {
        let start = self.bytes.len();
        pipe.deparse_into(phv, frame, &mut self.bytes);
        self.items.push(OutputItem {
            port: item.0,
            seq: item.1,
            latency_ns: item.2,
            start,
            end: self.bytes.len(),
        });
    }
}

/// A multi-pipe RMT switch.
pub struct SwitchModel {
    chip: ChipProfile,
    pipes: Vec<Pipeline>,
    l2: L2Table,
    stats: SwitchStats,
    // Pooled scratch for the batch path, retained across process_batch
    // calls so a warm switch performs no heap allocation per batch.
    phv_pool: Vec<Phv>,
    origin: Vec<usize>,
    by_pipe: Vec<Vec<usize>>,
    // Ping-pong buffers for recirculation: the wire image of the current
    // recirculation pass lives in `recirc_frame` (the PHV's spans point
    // into it) while `recirc_spare` is free for the next deparse.
    recirc_frame: Vec<u8>,
    recirc_spare: Vec<u8>,
    // Flight recorder: sampled per-packet trace events at the parse,
    // gateway and deparse boundaries (pre-allocated ring, overwrite-oldest).
    recorder: FlightRecorder,
}

impl SwitchModel {
    /// Assembles a switch from per-pipe programs.
    ///
    /// Panics if the number of pipelines does not match the chip's pipe
    /// count — a wiring bug, not a runtime condition.
    pub fn new(chip: ChipProfile, pipes: Vec<Pipeline>) -> Self {
        assert_eq!(pipes.len(), chip.pipes, "one pipeline per pipe required");
        SwitchModel {
            chip,
            pipes,
            l2: L2Table::default(),
            stats: SwitchStats::default(),
            phv_pool: Vec::new(),
            origin: Vec::new(),
            by_pipe: Vec::new(),
            recirc_frame: Vec::new(),
            recirc_spare: Vec::new(),
            recorder: FlightRecorder::default(),
        }
    }

    /// The flight recorder (read side: iterate, dump as JSONL).
    pub fn recorder(&self) -> &FlightRecorder {
        &self.recorder
    }

    /// Mutable flight-recorder access (enable/disable, clear).
    pub fn recorder_mut(&mut self) -> &mut FlightRecorder {
        &mut self.recorder
    }

    /// Master telemetry switch: toggles the flight recorder and per-stage
    /// pipeline profiling together. Both default to on; turning them off
    /// gives the zero-telemetry baseline used by the overhead benchmarks.
    pub fn set_telemetry(&mut self, on: bool) {
        self.recorder.set_enabled(on);
        for pipe in &mut self.pipes {
            pipe.set_profiling(on);
        }
    }

    /// The chip profile.
    pub fn chip(&self) -> &ChipProfile {
        &self.chip
    }

    /// Adds (or replaces) an L2 forwarding entry.
    pub fn l2_add(&mut self, mac: MacAddr, port: PortId) {
        self.l2.insert(mac, port);
    }

    /// Looks up the L2 table.
    pub fn l2_lookup(&self, mac: MacAddr) -> Option<PortId> {
        self.l2.get(&mac).copied()
    }

    /// The virtual port id used when a packet recirculates into `pipe` on
    /// `channel`.
    pub fn recirc_port(&self, pipe: usize, channel: u8) -> PortId {
        self.chip.recirc_port(pipe, channel)
    }

    /// Immutable access to a pipe's pipeline (counters, registers, report).
    pub fn pipe(&self, idx: usize) -> &Pipeline {
        &self.pipes[idx]
    }

    /// Mutable access to a pipe's pipeline (control plane).
    pub fn pipe_mut(&mut self, idx: usize) -> &mut Pipeline {
        &mut self.pipes[idx]
    }

    /// Switch-level statistics.
    pub fn stats(&self) -> SwitchStats {
        self.stats
    }

    /// Processes one packet arriving on `in_port`; returns zero or one
    /// outputs (zero when dropped).
    ///
    /// The PHV comes from the switch's pool; only the returned output is a
    /// fresh allocation. Per-packet hot loops that can reuse a
    /// [`BatchOutput`] should call [`SwitchModel::process_into`] instead.
    pub fn process(&mut self, bytes: &[u8], in_port: PortId, seq: u64) -> Vec<SwitchOutput> {
        self.stats.received += 1;
        let pipe_idx = self.chip.pipe_of(in_port);
        debug_assert!(pipe_idx < self.pipes.len(), "port {in_port} beyond chip");

        let mut phv = self.phv_pool.pop().unwrap_or_default();
        let parsed =
            parse_packet_into(self.pipes[pipe_idx].parser(), bytes, in_port, seq, &mut phv);
        if parsed.is_err() {
            self.stats.parse_errors += 1;
            self.recorder.record(TraceEvent {
                seq,
                port: in_port.0,
                pipe: pipe_idx as u8,
                point: TracePoint::Parse,
                decision: 0,
                reason: TraceReason::ParseError,
            });
            self.phv_pool.push(phv);
            return Vec::new();
        }
        self.pipes[pipe_idx].execute(&mut phv);
        let result = match self.finish_passes(&mut phv, bytes, pipe_idx, seq) {
            Some((port, final_pipe, latency_ns, recirced)) => {
                let frame: &[u8] = if recirced { &self.recirc_frame } else { bytes };
                let deparsed = self.pipes[final_pipe].deparse(&phv, frame);
                vec![SwitchOutput { port, bytes: deparsed, latency_ns, seq }]
            }
            None => Vec::new(),
        };
        self.phv_pool.push(phv);
        result
    }

    /// Processes one packet, appending its egress (if any) to `out`.
    ///
    /// The packet's PHV comes from the switch's pool and the deparsed bytes
    /// land in `out`'s arena, so a warm switch driven through a reused
    /// `out` performs no heap allocation per packet. `out` is appended to,
    /// not cleared — the caller owns its lifecycle.
    pub fn process_into(&mut self, bytes: &[u8], in_port: PortId, seq: u64, out: &mut BatchOutput) {
        self.stats.received += 1;
        let pipe_idx = self.chip.pipe_of(in_port);
        debug_assert!(pipe_idx < self.pipes.len(), "port {in_port} beyond chip");

        let mut phv = self.phv_pool.pop().unwrap_or_default();
        let parsed =
            parse_packet_into(self.pipes[pipe_idx].parser(), bytes, in_port, seq, &mut phv);
        if parsed.is_err() {
            self.stats.parse_errors += 1;
            self.recorder.record(TraceEvent {
                seq,
                port: in_port.0,
                pipe: pipe_idx as u8,
                point: TracePoint::Parse,
                decision: 0,
                reason: TraceReason::ParseError,
            });
            self.phv_pool.push(phv);
            return;
        }
        self.pipes[pipe_idx].execute(&mut phv);
        if let Some((port, final_pipe, latency_ns, recirced)) =
            self.finish_passes(&mut phv, bytes, pipe_idx, seq)
        {
            let frame: &[u8] = if recirced { &self.recirc_frame } else { bytes };
            out.push_deparsed(&self.pipes[final_pipe], &phv, frame, (port, seq, latency_ns));
        }
        self.phv_pool.push(phv);
    }

    /// Runs the verdict/recirculation loop on an executed PHV and resolves
    /// egress. `frame` is the source frame `phv` was parsed from. Returns
    /// `(egress port, pipe holding the deparser, accumulated latency,
    /// recirculated)`, or `None` when the packet was dropped. When
    /// `recirculated` is true the PHV's spans reference the switch-owned
    /// `recirc_frame` buffer instead of `frame` — the caller must deparse
    /// from there before the next packet's recirculation overwrites it.
    fn finish_passes(
        &mut self,
        phv: &mut Phv,
        frame: &[u8],
        mut pipe_idx: usize,
        seq: u64,
    ) -> Option<(PortId, usize, u64, bool)> {
        let mut latency = self.chip.pipeline_latency_ns;
        let mut recirced = false;
        // A pass is traced when its program took an anomalous decision
        // (state lost, reclaimed, or rejected — see
        // `decision::ANOMALY_MASK`), dropped the packet, or hit the
        // 1-in-64 sample that also covers plain and normal-decision
        // traffic; `traced` carries the last pass's state to the egress
        // event below. All checks are branch-and-mask — no allocation.
        let mut traced;
        loop {
            traced = self.recorder.enabled()
                && (phv.trace_flags & decision::ANOMALY_MASK != 0
                    || phv.verdict.drop
                    || self.recorder.sample_plain(seq));
            if traced {
                self.recorder.record(TraceEvent {
                    seq,
                    port: phv.ingress_port.0,
                    pipe: pipe_idx as u8,
                    point: TracePoint::Gateway,
                    decision: phv.trace_flags,
                    reason: TraceReason::None,
                });
            }
            if phv.verdict.drop {
                self.stats.dropped_by_program += 1;
                if traced {
                    self.recorder.record(TraceEvent {
                        seq,
                        port: phv.ingress_port.0,
                        pipe: pipe_idx as u8,
                        point: TracePoint::Deparse,
                        decision: phv.trace_flags,
                        reason: TraceReason::DropProgram,
                    });
                }
                return None;
            }
            let Some(target) = phv.verdict.recirculate else { break };
            if phv.recirc_count >= self.chip.max_recirculations {
                self.stats.dropped_recirc_limit += 1;
                if traced {
                    self.recorder.record(TraceEvent {
                        seq,
                        port: phv.ingress_port.0,
                        pipe: pipe_idx as u8,
                        point: TracePoint::Deparse,
                        decision: phv.trace_flags,
                        reason: TraceReason::DropRecircLimit,
                    });
                }
                return None;
            }
            debug_assert!(target.pipe < self.pipes.len(), "recirculation to unknown pipe");
            self.stats.recirculations += 1;
            latency += self.chip.pipeline_latency_ns + self.chip.recirculation_penalty_ns;
            if traced {
                self.recorder.record(TraceEvent {
                    seq,
                    port: phv.ingress_port.0,
                    pipe: pipe_idx as u8,
                    point: TracePoint::Deparse,
                    decision: phv.trace_flags,
                    reason: TraceReason::Recirculated,
                });
            }

            // Deparse on the current pipe into the spare recirculation
            // buffer, re-parse on the target pipe's recirculation port.
            // The two switch-owned buffers ping-pong (the PHV's spans must
            // keep referencing the pass it was parsed from), so steady-state
            // recirculation allocates nothing. User metadata is bridged
            // across the pass (Tofino recirculation headers provide the
            // same facility).
            let mut wire = mem::take(&mut self.recirc_spare);
            wire.clear();
            let src: &[u8] = if recirced { &self.recirc_frame } else { frame };
            self.pipes[pipe_idx].deparse_into(phv, src, &mut wire);
            let port = self.recirc_port(target.pipe, target.channel);
            let saved_meta = phv.meta;
            let saved_recirc = phv.recirc_count;
            let saved_flags = phv.trace_flags;
            let parsed = parse_packet_into(self.pipes[target.pipe].parser(), &wire, port, seq, phv);
            self.recirc_spare = mem::replace(&mut self.recirc_frame, wire);
            recirced = true;
            if parsed.is_err() {
                self.stats.parse_errors += 1;
                self.recorder.record(TraceEvent {
                    seq,
                    port: port.0,
                    pipe: target.pipe as u8,
                    point: TracePoint::Parse,
                    decision: saved_flags,
                    reason: TraceReason::ParseError,
                });
                return None;
            }
            phv.recirc_count = saved_recirc + 1;
            phv.meta = saved_meta;
            // Decision bits accumulate across passes so the final egress
            // event carries the packet's whole story.
            phv.trace_flags = saved_flags | decision::RECIRCULATE;
            self.pipes[target.pipe].execute(phv);
            pipe_idx = target.pipe;
        }

        let egress = phv.verdict.egress.or_else(|| self.l2.get(&phv.eth.dst).copied());
        match egress {
            Some(port) => {
                self.stats.emitted += 1;
                if traced {
                    self.recorder.record(TraceEvent {
                        seq,
                        port: port.0,
                        pipe: pipe_idx as u8,
                        point: TracePoint::Deparse,
                        decision: phv.trace_flags,
                        reason: TraceReason::Egress,
                    });
                }
                Some((port, pipe_idx, latency, recirced))
            }
            None => {
                self.stats.dropped_no_route += 1;
                if traced {
                    self.recorder.record(TraceEvent {
                        seq,
                        port: phv.ingress_port.0,
                        pipe: pipe_idx as u8,
                        point: TracePoint::Deparse,
                        decision: phv.trace_flags,
                        reason: TraceReason::DropNoRoute,
                    });
                }
                None
            }
        }
    }

    /// Processes a whole batch of packets, appending egressed packets to
    /// `out` (cleared first) in input order.
    ///
    /// Equivalent to calling [`SwitchModel::process`] on each packet in
    /// order — byte-identical outputs, counters and register state — as
    /// long as recirculation targets pipes whose register arrays are not
    /// also written by first-pass traffic (true for PayloadPark, whose
    /// annex pipe is recirculation-only). The batch amortizes MAT dispatch
    /// (stage-outer execution via [`Pipeline::execute_batch`]) and
    /// deparses every packet into one shared arena.
    pub fn process_batch(&mut self, inputs: &[BatchPacket], out: &mut BatchOutput) {
        out.clear();
        self.stats.received += inputs.len() as u64;

        // Parse everything up front (parsing touches no shared state) into
        // the pooled, arrival-ordered PHV buffer; per-pipe index lists let
        // each pipe batch-execute its packets in place, without moving a
        // PHV. All scratch is taken out of `self` (borrowck: the pipes are
        // borrowed mutably below) and put back at the end, so a warm
        // switch allocates nothing here.
        let n_pipes = self.pipes.len();
        let mut phvs = mem::take(&mut self.phv_pool);
        let mut origin = mem::take(&mut self.origin);
        let mut by_pipe = mem::take(&mut self.by_pipe);
        origin.clear();
        by_pipe.iter_mut().for_each(Vec::clear);
        by_pipe.resize_with(n_pipes, Vec::new);

        let mut live = 0usize; // phvs[..live] hold this batch's packets
        for (i, pkt) in inputs.iter().enumerate() {
            let pipe_idx = self.chip.pipe_of(pkt.port);
            debug_assert!(pipe_idx < n_pipes, "port {} beyond chip", pkt.port);
            if live == phvs.len() {
                phvs.push(Phv::default());
            }
            let parser = self.pipes[pipe_idx].parser();
            match parse_packet_into(parser, &pkt.bytes, pkt.port, pkt.seq, &mut phvs[live]) {
                Ok(()) => {
                    by_pipe[pipe_idx].push(live);
                    origin.push(i);
                    live += 1;
                }
                Err(_) => {
                    self.stats.parse_errors += 1;
                    self.recorder.record(TraceEvent {
                        seq: pkt.seq,
                        port: pkt.port.0,
                        pipe: pipe_idx as u8,
                        point: TracePoint::Parse,
                        decision: 0,
                        reason: TraceReason::ParseError,
                    });
                }
            }
        }

        // One batched pass per ingress pipe, in arrival order per pipe.
        for (pipe_idx, idxs) in by_pipe.iter().enumerate() {
            if !idxs.is_empty() {
                self.pipes[pipe_idx].execute_batch_indexed(&mut phvs, idxs);
            }
        }

        // Finish each packet in arrival order: verdicts, recirculation,
        // egress resolution, arena deparse (splicing body spans out of the
        // input frame — or the recirculation buffer if the packet took
        // another pass).
        for (k, &i) in origin.iter().enumerate() {
            let pkt = &inputs[i];
            let pipe_idx = self.chip.pipe_of(pkt.port);
            let phv = &mut phvs[k];
            if let Some((port, final_pipe, latency, recirced)) =
                self.finish_passes(phv, &pkt.bytes, pipe_idx, pkt.seq)
            {
                let frame: &[u8] = if recirced { &self.recirc_frame } else { &pkt.bytes };
                out.push_deparsed(&self.pipes[final_pipe], phv, frame, (port, pkt.seq, latency));
            }
        }

        self.phv_pool = phvs;
        self.origin = origin;
        self.by_pipe = by_pipe;
    }

    /// Clears per-run statistics (register contents are left alone).
    pub fn reset_stats(&mut self) {
        self.stats = SwitchStats::default();
    }
}

impl core::fmt::Debug for SwitchModel {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        f.debug_struct("SwitchModel")
            .field("pipes", &self.pipes.len())
            .field("l2_entries", &self.l2.len())
            .field("stats", &self.stats)
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::mat::Mat;
    use crate::phv::RecircTarget;
    use crate::pipeline::Pipeline;
    use pp_packet::builder::UdpPacketBuilder;

    fn l2_switch() -> SwitchModel {
        let chip = ChipProfile::default();
        let pipes = (0..chip.pipes).map(|_| Pipeline::builder(chip).build().unwrap()).collect();
        SwitchModel::new(chip, pipes)
    }

    fn pkt_to(dst: MacAddr) -> Vec<u8> {
        UdpPacketBuilder::new().dst_mac(dst).total_size(300, 4).build().into_bytes()
    }

    #[test]
    fn l2_forwarding_delivers_to_learned_port() {
        let mut sw = l2_switch();
        let server = MacAddr::from_index(42);
        sw.l2_add(server, PortId(3));
        let bytes = pkt_to(server);
        let out = sw.process(&bytes, PortId(0), 1);
        assert_eq!(out.len(), 1);
        assert_eq!(out[0].port, PortId(3));
        assert_eq!(out[0].bytes, bytes);
        assert_eq!(out[0].seq, 1);
        assert_eq!(out[0].latency_ns, 400);
        assert_eq!(sw.stats().emitted, 1);
        assert_eq!(sw.l2_lookup(server), Some(PortId(3)));
    }

    #[test]
    fn unknown_destination_dropped() {
        let mut sw = l2_switch();
        let out = sw.process(&pkt_to(MacAddr::from_index(9)), PortId(0), 0);
        assert!(out.is_empty());
        assert_eq!(sw.stats().dropped_no_route, 1);
    }

    #[test]
    fn parse_error_counted() {
        let mut sw = l2_switch();
        let out = sw.process(&[0u8; 5], PortId(0), 0);
        assert!(out.is_empty());
        assert_eq!(sw.stats().parse_errors, 1);
    }

    #[test]
    fn program_drop_verdict() {
        let chip = ChipProfile::default();
        let mut pipes: Vec<Pipeline> = Vec::new();
        for _ in 0..chip.pipes {
            let mut b = Pipeline::builder(chip);
            b.place(0, Mat::builder("drop_all").action(|ctx| ctx.phv.verdict.drop = true).build());
            pipes.push(b.build().unwrap());
        }
        let mut sw = SwitchModel::new(chip, pipes);
        let out = sw.process(&pkt_to(MacAddr::from_index(1)), PortId(0), 0);
        assert!(out.is_empty());
        assert_eq!(sw.stats().dropped_by_program, 1);
    }

    #[test]
    fn program_egress_overrides_l2() {
        let chip = ChipProfile::default();
        let mut pipes: Vec<Pipeline> = Vec::new();
        for _ in 0..chip.pipes {
            let mut b = Pipeline::builder(chip);
            b.place(
                0,
                Mat::builder("steer")
                    .action(|ctx| ctx.phv.verdict.egress = Some(PortId(12)))
                    .build(),
            );
            pipes.push(b.build().unwrap());
        }
        let mut sw = SwitchModel::new(chip, pipes);
        sw.l2_add(MacAddr::from_index(2), PortId(5));
        let out = sw.process(&pkt_to(MacAddr::from_index(2)), PortId(0), 0);
        assert_eq!(out[0].port, PortId(12));
    }

    #[test]
    fn recirculation_crosses_pipes_and_charges_latency() {
        let chip = ChipProfile::default();
        let mut pipes: Vec<Pipeline> = Vec::new();
        for pipe_idx in 0..chip.pipes {
            let mut b = Pipeline::builder(chip);
            if pipe_idx == 0 {
                // First pass in pipe 0 sends the packet to pipe 1 once.
                b.place(
                    0,
                    Mat::builder("to_pipe1")
                        .gateway(|p| p.recirc_count == 0 && p.ingress_port == PortId(0))
                        .action(|ctx| {
                            ctx.phv.verdict.recirculate = Some(RecircTarget { pipe: 1, channel: 0 })
                        })
                        .build(),
                );
            }
            if pipe_idx == 1 {
                b.place(
                    0,
                    Mat::builder("mark")
                        .action(|ctx| ctx.phv.verdict.egress = Some(PortId(30)))
                        .build(),
                );
            }
            pipes.push(b.build().unwrap());
        }
        let mut sw = SwitchModel::new(chip, pipes);
        let bytes = pkt_to(MacAddr::from_index(3));
        let out = sw.process(&bytes, PortId(0), 0);
        assert_eq!(out.len(), 1);
        assert_eq!(out[0].port, PortId(30));
        // Two passes + one recirculation penalty.
        assert_eq!(out[0].latency_ns, 400 + 400 + 60);
        assert_eq!(sw.stats().recirculations, 1);
        // Payload is preserved across the recirculation.
        assert_eq!(out[0].bytes, bytes);
    }

    #[test]
    fn recirculation_limit_drops() {
        let chip = ChipProfile::default();
        let mut pipes: Vec<Pipeline> = Vec::new();
        for _ in 0..chip.pipes {
            let mut b = Pipeline::builder(chip);
            b.place(
                0,
                Mat::builder("loop")
                    .action(|ctx| {
                        ctx.phv.verdict.recirculate = Some(RecircTarget { pipe: 0, channel: 0 })
                    })
                    .build(),
            );
            pipes.push(b.build().unwrap());
        }
        let mut sw = SwitchModel::new(chip, pipes);
        let out = sw.process(&pkt_to(MacAddr::from_index(1)), PortId(0), 0);
        assert!(out.is_empty());
        assert_eq!(sw.stats().dropped_recirc_limit, 1);
        assert_eq!(sw.stats().recirculations as u32, ChipProfile::default().max_recirculations);
    }

    #[test]
    fn recirc_port_ids_are_beyond_front_panel() {
        let sw = l2_switch();
        assert_eq!(sw.recirc_port(0, 0), PortId(64));
        assert_eq!(sw.recirc_port(0, 1), PortId(65));
        assert_eq!(sw.recirc_port(3, 1), PortId(71));
    }

    #[test]
    fn reset_stats() {
        let mut sw = l2_switch();
        sw.process(&[0u8; 3], PortId(0), 0);
        sw.reset_stats();
        assert_eq!(sw.stats(), SwitchStats::default());
    }

    #[test]
    #[should_panic(expected = "one pipeline per pipe")]
    fn wrong_pipe_count_panics() {
        let chip = ChipProfile::default();
        SwitchModel::new(chip, vec![]);
    }

    /// A switch whose program is order-sensitive: a per-pipe stateful
    /// counter is stamped into each packet's source MAC, so any deviation
    /// from sequential packet order shows up in the output bytes.
    fn stamping_switch() -> SwitchModel {
        use crate::register::{cell, RegisterSpec};
        let chip = ChipProfile::default();
        let mut pipes: Vec<Pipeline> = Vec::new();
        for _ in 0..chip.pipes {
            let mut b = Pipeline::builder(chip);
            let arr = b.register(RegisterSpec {
                name: "stamp".into(),
                stage: 0,
                cell_bytes: 4,
                cells: 1,
            });
            b.place(
                0,
                Mat::builder("stamp")
                    .stateful(arr, |_| Some(0))
                    .action(|ctx| {
                        let c = ctx.cell.as_deref_mut().unwrap();
                        let v = cell::read_u32(c) + 1;
                        cell::write_u32(c, v);
                        ctx.phv.eth.src.0[5] = v as u8;
                    })
                    .build(),
            );
            pipes.push(b.build().unwrap());
        }
        SwitchModel::new(chip, pipes)
    }

    #[test]
    fn batch_matches_sequential_processing() {
        let dst = MacAddr::from_index(8);
        let inputs: Vec<BatchPacket> = (0..37)
            .map(|i| BatchPacket {
                bytes: UdpPacketBuilder::new()
                    .dst_mac(dst)
                    .total_size(100 + (i % 7) * 50, i as u64)
                    .build()
                    .into_bytes(),
                // Spread the batch across two pipes.
                port: PortId(if i % 3 == 0 { 16 } else { 0 }),
                seq: i as u64,
            })
            .collect();

        let mut seq_switch = stamping_switch();
        seq_switch.l2_add(dst, PortId(40));
        let mut expected = Vec::new();
        for pkt in &inputs {
            expected.extend(seq_switch.process(&pkt.bytes, pkt.port, pkt.seq));
        }

        let mut batch_switch = stamping_switch();
        batch_switch.l2_add(dst, PortId(40));
        let mut out = BatchOutput::new();
        batch_switch.process_batch(&inputs, &mut out);

        assert_eq!(out.to_switch_outputs(), expected);
        assert_eq!(batch_switch.stats(), seq_switch.stats());
        assert_eq!(out.wire_bytes(), expected.iter().map(|o| o.bytes.len()).sum::<usize>());
    }

    #[test]
    fn batch_counts_parse_errors_and_reuses_buffers() {
        let dst = MacAddr::from_index(8);
        let mut sw = stamping_switch();
        sw.l2_add(dst, PortId(40));
        let good = UdpPacketBuilder::new().dst_mac(dst).total_size(128, 1).build().into_bytes();
        let inputs = vec![
            BatchPacket { bytes: vec![0u8; 4], port: PortId(0), seq: 0 },
            BatchPacket { bytes: good.clone(), port: PortId(0), seq: 1 },
        ];
        let mut out = BatchOutput::new();
        sw.process_batch(&inputs, &mut out);
        assert_eq!(sw.stats().parse_errors, 1);
        assert_eq!(out.len(), 1);
        assert_eq!(out.get(0).seq, 1);
        // A second call clears the previous contents.
        sw.process_batch(&inputs[1..], &mut out);
        assert_eq!(out.len(), 1);
        assert_eq!(out.iter().count(), 1);
        assert!(!out.is_empty());
    }

    #[test]
    fn batch_output_append_rebases_slices() {
        let dst = MacAddr::from_index(8);
        let mut sw = stamping_switch();
        sw.l2_add(dst, PortId(40));
        let pkt = |seq| BatchPacket {
            bytes: UdpPacketBuilder::new().dst_mac(dst).total_size(90, seq).build().into_bytes(),
            port: PortId(0),
            seq,
        };
        let (mut a, mut b) = (BatchOutput::new(), BatchOutput::new());
        sw.process_batch(&[pkt(0)], &mut a);
        sw.process_batch(&[pkt(1)], &mut b);
        let b0 = b.get(0).bytes.to_vec();
        a.append(&b);
        assert_eq!(a.len(), 2);
        assert_eq!(a.get(1).seq, 1);
        assert_eq!(a.get(1).bytes, &b0[..]);
    }
}
