//! The match-action pipeline of one pipe.
//!
//! A [`Pipeline`] owns its stages (each a list of MATs), its register file,
//! its parser configuration and a block of named statistics counters. It is
//! built through [`PipelineBuilder`], which validates the program against a
//! [`ChipProfile`] — stage counts, per-stage SRAM/VLIW/crossbar budgets,
//! PHV capacity, MAT placement, and the stage-locality of stateful
//! bindings — the same class of constraints the P4 compiler enforces when
//! mapping a program onto the Tofino (§2).

use crate::chip::{ChipProfile, PortId};
use crate::mat::{ActionCtx, Mat, MatchKind};
use crate::parser::{deparse_phv, parse_packet, ParserConfig};
use crate::phv::Phv;
use crate::register::{RegisterFile, RegisterId, RegisterSpec};
use crate::resources::{ResourceReport, StageUsage};
use pp_packet::Result as PacketResult;

/// Errors detected while building (i.e. "compiling") a pipeline program.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ProgramError {
    /// Referenced a stage beyond the chip's stage count.
    StageOutOfRange {
        /// The offending stage index.
        stage: usize,
        /// Stages available on the chip.
        available: usize,
    },
    /// More MATs placed in a stage than the chip allows.
    TooManyMats {
        /// The offending stage.
        stage: usize,
        /// MATs placed.
        placed: usize,
        /// Chip limit.
        limit: usize,
    },
    /// A stage's SRAM budget (tables + registers) is exceeded.
    SramExceeded {
        /// The offending stage.
        stage: usize,
        /// Bits requested.
        used: u64,
        /// Bits available.
        budget: u64,
    },
    /// A stage's VLIW budget is exceeded.
    VliwExceeded {
        /// The offending stage.
        stage: usize,
        /// Slots requested.
        used: u32,
        /// Slots available.
        budget: u32,
    },
    /// A stage's match-crossbar budget is exceeded.
    CrossbarExceeded {
        /// The offending stage.
        stage: usize,
        /// Bits requested.
        used: u32,
        /// Bits available.
        budget: u32,
    },
    /// The parser layout does not fit in the PHV.
    PhvExceeded {
        /// Bits requested.
        used: u32,
        /// Bits available.
        budget: u32,
    },
    /// A MAT binds to a register array in a different stage.
    CrossStageStatefulBinding {
        /// The MAT's name.
        mat: String,
        /// The MAT's stage.
        mat_stage: usize,
        /// The register array's stage.
        register_stage: usize,
    },
    /// An invalid chip profile.
    BadChip(String),
}

impl core::fmt::Display for ProgramError {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        match self {
            ProgramError::StageOutOfRange { stage, available } => {
                write!(f, "stage {stage} out of range (chip has {available})")
            }
            ProgramError::TooManyMats { stage, placed, limit } => {
                write!(f, "stage {stage}: {placed} MATs exceed limit {limit}")
            }
            ProgramError::SramExceeded { stage, used, budget } => {
                write!(f, "stage {stage}: SRAM {used}b exceeds {budget}b")
            }
            ProgramError::VliwExceeded { stage, used, budget } => {
                write!(f, "stage {stage}: VLIW {used} exceeds {budget}")
            }
            ProgramError::CrossbarExceeded { stage, used, budget } => {
                write!(f, "stage {stage}: crossbar {used}b exceeds {budget}b")
            }
            ProgramError::PhvExceeded { used, budget } => {
                write!(f, "PHV {used}b exceeds {budget}b")
            }
            ProgramError::CrossStageStatefulBinding { mat, mat_stage, register_stage } => {
                write!(f, "MAT {mat} (stage {mat_stage}) binds register in stage {register_stage}")
            }
            ProgramError::BadChip(why) => write!(f, "invalid chip profile: {why}"),
        }
    }
}

impl std::error::Error for ProgramError {}

/// One pipeline stage: an ordered set of MATs.
///
/// Hardware executes the MATs of a stage in parallel on disjoint PHV fields;
/// the emulator runs them in placement order. Programs must not rely on
/// intra-stage ordering (PayloadPark does not).
#[derive(Debug, Default)]
pub struct Stage {
    mats: Vec<Mat>,
}

impl Stage {
    /// The MATs placed in this stage.
    pub fn mats(&self) -> &[Mat] {
        &self.mats
    }
}

/// Wall-clock execution profile of one pipeline stage, accumulated by the
/// batch execution paths: one timestamp pair per stage per *batch*, so the
/// per-packet cost is amortized to near zero while still yielding per-stage
/// packets/sec and time share.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct StageProfile {
    /// Wall-clock nanoseconds spent inside this stage's batch loops.
    pub nanos: u64,
    /// Packets that passed through this stage via a batch path.
    pub packets: u64,
}

impl StageProfile {
    /// Packets per second through this stage (0 when unmeasured).
    pub fn packets_per_sec(&self) -> f64 {
        if self.nanos == 0 {
            return 0.0;
        }
        self.packets as f64 / (self.nanos as f64 / 1e9)
    }
}

/// A compiled pipeline program for one pipe.
pub struct Pipeline {
    chip: ChipProfile,
    parser: ParserConfig,
    stages: Vec<Stage>,
    registers: RegisterFile,
    counters: Vec<u64>,
    counter_names: Vec<&'static str>,
    packets: u64,
    stage_profile: Vec<StageProfile>,
    profiling: bool,
}

impl Pipeline {
    /// Starts building a program against `chip`.
    pub fn builder(chip: ChipProfile) -> PipelineBuilder {
        PipelineBuilder {
            chip,
            parser: ParserConfig::l2_only(),
            stages: Vec::new(),
            registers: RegisterFile::new(),
            counter_names: Vec::new(),
        }
    }

    /// Runs one pass of the pipeline on raw bytes.
    ///
    /// Returns the PHV after all stages executed (the caller — usually
    /// [`crate::switch::SwitchModel`] — deparses it, applies the verdict
    /// and handles recirculation).
    pub fn process(&mut self, bytes: &[u8], port: PortId, seq: u64) -> PacketResult<Phv> {
        let mut phv = parse_packet(&self.parser, bytes, port, seq)?;
        self.execute(&mut phv);
        Ok(phv)
    }

    /// Runs all stages on an already-parsed PHV (used for recirculation).
    pub fn execute(&mut self, phv: &mut Phv) {
        self.packets += 1;
        let Pipeline { stages, registers, counters, .. } = self;
        for stage in stages.iter_mut() {
            stage_pass(stage, registers, counters, phv);
        }
    }

    /// Runs all stages over a whole *batch* of parsed PHVs.
    ///
    /// The loop order is stage-outer, packet-middle, MAT-inner: every packet
    /// of the batch clears stage *s* before any packet enters stage *s*+1 —
    /// exactly how an RMT chip pipelines packets (packet B occupies stage 0
    /// while packet A occupies stage 1). Because stateful bindings are
    /// stage-local (enforced by [`PipelineBuilder::build`]), the sequence of
    /// register accesses per array is identical to processing the batch one
    /// packet at a time through [`Pipeline::execute`], so batched and scalar
    /// execution produce byte-identical PHVs, counters and register state.
    /// Within a stage each packet still runs the stage's MATs in placement
    /// order, preserving per-packet intra-stage semantics.
    pub fn execute_batch(&mut self, phvs: &mut [Phv]) {
        self.packets += phvs.len() as u64;
        let Pipeline { stages, registers, counters, stage_profile, profiling, .. } = self;
        for (si, stage) in stages.iter_mut().enumerate() {
            if stage.mats.is_empty() {
                continue;
            }
            let t0 = profiling.then(std::time::Instant::now);
            for phv in phvs.iter_mut() {
                stage_pass(stage, registers, counters, phv);
            }
            if let Some(t0) = t0 {
                stage_profile[si].nanos += t0.elapsed().as_nanos() as u64;
                stage_profile[si].packets += phvs.len() as u64;
            }
        }
    }

    /// [`Pipeline::execute_batch`] over a scattered batch: runs the stages
    /// on `phvs[i]` for each `i` in `idxs`, in that order. Lets a caller
    /// batch a mixed-pipe wave without moving PHVs into per-pipe buffers
    /// ([`crate::switch::SwitchModel::process_batch`] does this).
    pub fn execute_batch_indexed(&mut self, phvs: &mut [Phv], idxs: &[usize]) {
        self.packets += idxs.len() as u64;
        let Pipeline { stages, registers, counters, stage_profile, profiling, .. } = self;
        for (si, stage) in stages.iter_mut().enumerate() {
            if stage.mats.is_empty() {
                continue;
            }
            let t0 = profiling.then(std::time::Instant::now);
            for &i in idxs {
                stage_pass(stage, registers, counters, &mut phvs[i]);
            }
            if let Some(t0) = t0 {
                stage_profile[si].nanos += t0.elapsed().as_nanos() as u64;
                stage_profile[si].packets += idxs.len() as u64;
            }
        }
    }

    /// Deparses a PHV with this pipe's deparser. `frame` is the source
    /// frame the PHV was parsed from (its spans are spliced out of it).
    pub fn deparse(&self, phv: &Phv, frame: &[u8]) -> Vec<u8> {
        deparse_phv(phv, frame)
    }

    /// Deparses a PHV, appending to `out` (the batch path's arena deparser).
    pub fn deparse_into(&self, phv: &Phv, frame: &[u8], out: &mut Vec<u8>) {
        crate::parser::deparse_phv_into(phv, frame, out);
    }

    /// The pipeline's stages in execution order (for static analysis and
    /// introspection; stage `i` of the vector is hardware stage `i`).
    pub fn stages(&self) -> &[Stage] {
        &self.stages
    }

    /// The parser configuration.
    pub fn parser(&self) -> &ParserConfig {
        &self.parser
    }

    /// The chip profile the program was compiled against.
    pub fn chip(&self) -> &ChipProfile {
        &self.chip
    }

    /// Control-plane read of a statistics counter by name.
    pub fn counter(&self, name: &str) -> u64 {
        self.counter_names.iter().position(|n| *n == name).map(|i| self.counters[i]).unwrap_or(0)
    }

    /// All counters as (name, value) pairs.
    pub fn counters(&self) -> Vec<(&'static str, u64)> {
        self.counter_names.iter().copied().zip(self.counters.iter().copied()).collect()
    }

    /// Control-plane access to the register file (read side).
    pub fn registers(&self) -> &RegisterFile {
        &self.registers
    }

    /// Control-plane access to the register file (write side, e.g. clearing
    /// tables between runs).
    pub fn registers_mut(&mut self) -> &mut RegisterFile {
        &mut self.registers
    }

    /// Packets processed (pipeline passes, recirculations included).
    pub fn packets_processed(&self) -> u64 {
        self.packets
    }

    /// The accumulated per-stage batch-execution profile (index = stage).
    /// Wall-clock, so excluded from deterministic telemetry snapshots.
    pub fn stage_profile(&self) -> &[StageProfile] {
        &self.stage_profile
    }

    /// Turns per-stage batch timing on/off (on by default; the telemetry
    /// overhead A/B switch).
    pub fn set_profiling(&mut self, on: bool) {
        self.profiling = on;
    }

    /// Zeroes the accumulated stage profile.
    pub fn reset_stage_profile(&mut self) {
        for p in &mut self.stage_profile {
            *p = StageProfile::default();
        }
    }

    /// Computes the resource report for this program (paper Table 1).
    pub fn resource_report(&self) -> ResourceReport {
        let mut stages: Vec<StageUsage> =
            (0..self.chip.stages_per_pipe).map(|_| StageUsage::default()).collect();
        for spec in self.registers.specs() {
            stages[spec.stage].sram_bits += spec.sram_bits();
        }
        for (i, stage) in self.stages.iter().enumerate() {
            for mat in stage.mats() {
                let fp = mat.footprint();
                stages[i].mats += 1;
                stages[i].vliw_slots += fp.vliw_slots;
                stages[i].sram_bits += fp.table_sram_bits;
                stages[i].tcam_bits += fp.tcam_bits;
                match fp.match_kind {
                    MatchKind::Ternary => stages[i].ternary_xbar_bits += fp.key_bits,
                    MatchKind::Exact | MatchKind::Gateway => {
                        stages[i].exact_xbar_bits += fp.key_bits
                    }
                }
            }
        }
        ResourceReport::new(self.chip, self.parser.phv_bits(), stages)
    }
}

impl core::fmt::Debug for Pipeline {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        f.debug_struct("Pipeline")
            .field("stages", &self.stages.len())
            .field("registers", &self.registers.specs().len())
            .field("packets", &self.packets)
            .finish()
    }
}

/// Runs one stage's MATs, in placement order, on one PHV.
#[inline]
fn stage_pass(
    stage: &mut Stage,
    registers: &mut RegisterFile,
    counters: &mut [u64],
    phv: &mut Phv,
) {
    for mat in stage.mats.iter_mut() {
        if !mat.matches(phv) {
            continue;
        }
        // At most one register cell per MAT per packet — the stateful-ALU
        // restriction (§4).
        let cell = mat.stateful_index(phv).map(|(array, index)| registers.cell_mut(array, index));
        let mut ctx = ActionCtx { phv, cell, counters };
        mat.run(&mut ctx);
    }
}

/// Builder/"compiler" for [`Pipeline`].
pub struct PipelineBuilder {
    chip: ChipProfile,
    parser: ParserConfig,
    stages: Vec<(usize, Mat)>,
    registers: RegisterFile,
    counter_names: Vec<&'static str>,
}

impl PipelineBuilder {
    /// Sets the parser configuration.
    pub fn parser(mut self, parser: ParserConfig) -> Self {
        self.parser = parser;
        self
    }

    /// Allocates a register array; `spec.stage` fixes which stage's MATs may
    /// bind to it.
    pub fn register(&mut self, spec: RegisterSpec) -> RegisterId {
        self.registers.allocate(spec)
    }

    /// Declares a named statistics counter; returns its index for use inside
    /// actions (`ctx.counters[idx] += 1`).
    pub fn counter(&mut self, name: &'static str) -> usize {
        self.counter_names.push(name);
        self.counter_names.len() - 1
    }

    /// Places `mat` into `stage` (0-based).
    pub fn place(&mut self, stage: usize, mat: Mat) -> &mut Self {
        self.stages.push((stage, mat));
        self
    }

    /// Validates the program and produces the pipeline.
    pub fn build(self) -> Result<Pipeline, ProgramError> {
        self.chip.validate().map_err(ProgramError::BadChip)?;
        let n_stages = self.chip.stages_per_pipe;

        let mut stages: Vec<Stage> = (0..n_stages).map(|_| Stage::default()).collect();
        for (idx, mat) in self.stages {
            if idx >= n_stages {
                return Err(ProgramError::StageOutOfRange { stage: idx, available: n_stages });
            }
            if let Some(array) = mat.stateful_array() {
                let reg_stage = self.registers.spec(array).stage;
                if reg_stage != idx {
                    return Err(ProgramError::CrossStageStatefulBinding {
                        mat: mat.name().to_string(),
                        mat_stage: idx,
                        register_stage: reg_stage,
                    });
                }
            }
            stages[idx].mats.push(mat);
        }

        for spec in self.registers.specs() {
            if spec.stage >= n_stages {
                return Err(ProgramError::StageOutOfRange {
                    stage: spec.stage,
                    available: n_stages,
                });
            }
        }

        // Per-stage budget checks.
        for (i, stage) in stages.iter().enumerate() {
            if stage.mats.len() > self.chip.max_mats_per_stage {
                return Err(ProgramError::TooManyMats {
                    stage: i,
                    placed: stage.mats.len(),
                    limit: self.chip.max_mats_per_stage,
                });
            }
            let mut sram: u64 =
                self.registers.specs().iter().filter(|s| s.stage == i).map(|s| s.sram_bits()).sum();
            let mut vliw: u32 = 0;
            let mut exact_xbar: u32 = 0;
            let mut ternary_xbar: u32 = 0;
            let mut tcam: u64 = 0;
            for mat in &stage.mats {
                let fp = mat.footprint();
                sram += fp.table_sram_bits;
                vliw += fp.vliw_slots;
                tcam += fp.tcam_bits;
                match fp.match_kind {
                    MatchKind::Ternary => ternary_xbar += fp.key_bits,
                    _ => exact_xbar += fp.key_bits,
                }
            }
            if sram > self.chip.sram_bits_per_stage {
                return Err(ProgramError::SramExceeded {
                    stage: i,
                    used: sram,
                    budget: self.chip.sram_bits_per_stage,
                });
            }
            if vliw > self.chip.vliw_slots_per_stage {
                return Err(ProgramError::VliwExceeded {
                    stage: i,
                    used: vliw,
                    budget: self.chip.vliw_slots_per_stage,
                });
            }
            if exact_xbar > self.chip.exact_xbar_bits_per_stage {
                return Err(ProgramError::CrossbarExceeded {
                    stage: i,
                    used: exact_xbar,
                    budget: self.chip.exact_xbar_bits_per_stage,
                });
            }
            if ternary_xbar > self.chip.ternary_xbar_bits_per_stage {
                return Err(ProgramError::CrossbarExceeded {
                    stage: i,
                    used: ternary_xbar,
                    budget: self.chip.ternary_xbar_bits_per_stage,
                });
            }
            if tcam > self.chip.tcam_bits_per_stage {
                return Err(ProgramError::SramExceeded {
                    stage: i,
                    used: tcam,
                    budget: self.chip.tcam_bits_per_stage,
                });
            }
        }

        let phv_bits = self.parser.phv_bits();
        if phv_bits > self.chip.phv_bits {
            return Err(ProgramError::PhvExceeded { used: phv_bits, budget: self.chip.phv_bits });
        }

        let n_counters = self.counter_names.len();
        let stage_profile = vec![StageProfile::default(); n_stages];
        Ok(Pipeline {
            chip: self.chip,
            parser: self.parser,
            stages,
            registers: self.registers,
            counters: vec![0; n_counters],
            counter_names: self.counter_names,
            packets: 0,
            stage_profile,
            profiling: true,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::mat::MatFootprint;
    use crate::register::cell;
    use pp_packet::builder::UdpPacketBuilder;

    fn chip() -> ChipProfile {
        ChipProfile::default()
    }

    #[test]
    fn empty_program_is_identity() {
        let mut p = Pipeline::builder(chip()).build().unwrap();
        let pkt = UdpPacketBuilder::new().total_size(200, 1).build();
        let phv = p.process(pkt.bytes(), PortId(0), 0).unwrap();
        assert_eq!(p.deparse(&phv, pkt.bytes()), pkt.bytes());
        assert_eq!(p.packets_processed(), 1);
    }

    #[test]
    fn stateful_mat_updates_register() {
        let mut b = Pipeline::builder(chip());
        let arr =
            b.register(RegisterSpec { name: "ctr".into(), stage: 0, cell_bytes: 4, cells: 16 });
        let hits = b.counter("hits");
        b.place(
            0,
            Mat::builder("bump")
                .stateful(arr, |_| Some(3))
                .action(move |ctx| {
                    let cell_ref = ctx.cell.as_deref_mut().expect("bound");
                    let v = cell::read_u32(cell_ref) + 1;
                    cell::write_u32(cell_ref, v);
                    ctx.counters[hits] += 1;
                })
                .build(),
        );
        let mut p = b.build().unwrap();
        let pkt = UdpPacketBuilder::new().total_size(100, 1).build();
        for _ in 0..5 {
            p.process(pkt.bytes(), PortId(0), 0).unwrap();
        }
        assert_eq!(cell::read_u32(p.registers().cell(RegisterId(0), 3)), 5);
        assert_eq!(p.counter("hits"), 5);
        assert_eq!(p.counter("nonexistent"), 0);
        assert_eq!(p.counters(), vec![("hits", 5)]);
    }

    #[test]
    fn execute_batch_matches_sequential_execution() {
        // A two-stage stateful program: stage 0 assigns each packet a
        // ticket from a shared counter, stage 1 accumulates tickets into a
        // second register. Batch execution must produce the same PHVs and
        // the same register state as one-at-a-time execution.
        let build = || {
            let mut b = Pipeline::builder(chip());
            let tickets = b.register(RegisterSpec {
                name: "tickets".into(),
                stage: 0,
                cell_bytes: 4,
                cells: 1,
            });
            let sum =
                b.register(RegisterSpec { name: "sum".into(), stage: 1, cell_bytes: 4, cells: 1 });
            b.place(
                0,
                Mat::builder("ticket")
                    .stateful(tickets, |_| Some(0))
                    .action(|ctx| {
                        let c = ctx.cell.as_deref_mut().unwrap();
                        let v = cell::read_u32(c) + 1;
                        cell::write_u32(c, v);
                        ctx.phv.meta[0] = v;
                    })
                    .build(),
            );
            b.place(
                1,
                Mat::builder("acc")
                    .stateful(sum, |_| Some(0))
                    .action(|ctx| {
                        let c = ctx.cell.as_deref_mut().unwrap();
                        let v = cell::read_u32(c) + ctx.phv.meta[0];
                        cell::write_u32(c, v);
                        ctx.phv.meta[1] = v;
                    })
                    .build(),
            );
            b.build().unwrap()
        };
        let pkt = UdpPacketBuilder::new().total_size(120, 1).build();
        let parse = |p: &Pipeline| {
            (0..8)
                .map(|i| {
                    crate::parser::parse_packet(p.parser(), pkt.bytes(), PortId(0), i).unwrap()
                })
                .collect::<Vec<_>>()
        };

        let mut scalar = build();
        let mut expected = parse(&scalar);
        for phv in expected.iter_mut() {
            scalar.execute(phv);
        }

        let mut batched = build();
        let mut phvs = parse(&batched);
        batched.execute_batch(&mut phvs);

        assert_eq!(phvs, expected);
        assert_eq!(batched.packets_processed(), scalar.packets_processed());
        assert_eq!(
            cell::read_u32(batched.registers().cell(RegisterId(1), 0)),
            cell::read_u32(scalar.registers().cell(RegisterId(1), 0)),
        );
    }

    #[test]
    fn batch_paths_accumulate_stage_profile() {
        let mut b = Pipeline::builder(chip());
        b.place(0, Mat::builder("touch").action(|ctx| ctx.phv.meta[0] += 1).build());
        b.place(2, Mat::builder("touch2").action(|ctx| ctx.phv.meta[1] += 1).build());
        let mut p = b.build().unwrap();
        let pkt = UdpPacketBuilder::new().total_size(100, 1).build();
        let mut phvs: Vec<Phv> = (0..4)
            .map(|i| crate::parser::parse_packet(p.parser(), pkt.bytes(), PortId(0), i).unwrap())
            .collect();
        p.execute_batch(&mut phvs);
        let prof = p.stage_profile();
        assert_eq!(prof.len(), chip().stages_per_pipe);
        assert_eq!(prof[0].packets, 4);
        assert_eq!(prof[2].packets, 4);
        // Empty stages are skipped entirely — no timestamps, no packets.
        assert_eq!(prof[1], StageProfile::default());
        assert!(prof[0].packets_per_sec() >= 0.0);

        // The A/B switch stops accumulation; reset zeroes it.
        p.set_profiling(false);
        p.execute_batch_indexed(&mut phvs, &[0, 1]);
        assert_eq!(p.stage_profile()[0].packets, 4);
        p.reset_stage_profile();
        assert_eq!(p.stage_profile()[0], StageProfile::default());
    }

    #[test]
    fn deparse_into_appends_to_arena() {
        let p = Pipeline::builder(chip()).build().unwrap();
        let pkt = UdpPacketBuilder::new().total_size(150, 2).build();
        let phv = crate::parser::parse_packet(p.parser(), pkt.bytes(), PortId(0), 0).unwrap();
        let mut arena = vec![0xAAu8; 3];
        p.deparse_into(&phv, pkt.bytes(), &mut arena);
        assert_eq!(&arena[..3], &[0xAA; 3]);
        assert_eq!(&arena[3..], pkt.bytes());
    }

    #[test]
    fn stages_execute_in_order() {
        let mut b = Pipeline::builder(chip());
        b.place(1, Mat::builder("second").action(|ctx| ctx.phv.meta[0] *= 10).build());
        b.place(0, Mat::builder("first").action(|ctx| ctx.phv.meta[0] += 3).build());
        let mut p = b.build().unwrap();
        let pkt = UdpPacketBuilder::new().total_size(100, 1).build();
        let phv = p.process(pkt.bytes(), PortId(0), 0).unwrap();
        // (0 + 3) * 10, not 0 * 10 + 3.
        assert_eq!(phv.meta[0], 30);
    }

    #[test]
    fn gateway_mismatch_skips_action_and_register() {
        let mut b = Pipeline::builder(chip());
        let arr = b.register(RegisterSpec { name: "a".into(), stage: 0, cell_bytes: 4, cells: 1 });
        b.place(
            0,
            Mat::builder("gated")
                .gateway(|p| p.ingress_port == PortId(7))
                .stateful(arr, |_| Some(0))
                .action(|ctx| {
                    let c = ctx.cell.as_deref_mut().unwrap();
                    cell::write_u32(c, 1);
                })
                .build(),
        );
        let mut p = b.build().unwrap();
        let pkt = UdpPacketBuilder::new().total_size(100, 1).build();
        p.process(pkt.bytes(), PortId(0), 0).unwrap();
        assert_eq!(p.registers().total_accesses(), 0);
        p.process(pkt.bytes(), PortId(7), 0).unwrap();
        assert_eq!(p.registers().total_accesses(), 1);
    }

    #[test]
    fn rejects_stage_out_of_range() {
        let mut b = Pipeline::builder(chip());
        b.place(12, Mat::builder("too_far").build());
        assert!(matches!(
            b.build(),
            Err(ProgramError::StageOutOfRange { stage: 12, available: 12 })
        ));
    }

    #[test]
    fn rejects_cross_stage_stateful_binding() {
        let mut b = Pipeline::builder(chip());
        let arr = b.register(RegisterSpec { name: "a".into(), stage: 2, cell_bytes: 4, cells: 4 });
        b.place(1, Mat::builder("wrong_stage").stateful(arr, |_| Some(0)).build());
        let err = b.build().unwrap_err();
        assert!(matches!(err, ProgramError::CrossStageStatefulBinding { .. }));
        assert!(err.to_string().contains("wrong_stage"));
    }

    #[test]
    fn rejects_sram_overflow() {
        let mut b = Pipeline::builder(chip());
        let budget = chip().sram_bits_per_stage;
        b.register(RegisterSpec {
            name: "huge".into(),
            stage: 0,
            cell_bytes: 16,
            cells: (budget / 8 / 16 + 1) as usize,
        });
        assert!(matches!(b.build(), Err(ProgramError::SramExceeded { stage: 0, .. })));
    }

    #[test]
    fn rejects_vliw_overflow() {
        let mut b = Pipeline::builder(chip());
        b.place(
            0,
            Mat::builder("fat")
                .footprint(MatFootprint { vliw_slots: 33, ..Default::default() })
                .build(),
        );
        assert!(matches!(b.build(), Err(ProgramError::VliwExceeded { stage: 0, .. })));
    }

    #[test]
    fn rejects_too_many_mats() {
        let mut profile = chip();
        profile.max_mats_per_stage = 2;
        let mut b = Pipeline::builder(profile);
        for i in 0..3 {
            b.place(0, Mat::builder(format!("m{i}")).build());
        }
        assert!(matches!(b.build(), Err(ProgramError::TooManyMats { stage: 0, .. })));
    }

    #[test]
    fn rejects_phv_overflow() {
        let mut profile = chip();
        profile.phv_bits = 100;
        let b = Pipeline::builder(profile);
        assert!(matches!(b.build(), Err(ProgramError::PhvExceeded { .. })));
    }

    #[test]
    fn resource_report_counts_registers_and_mats() {
        let mut b = Pipeline::builder(chip());
        let arr = b.register(RegisterSpec {
            name: "payload0".into(),
            stage: 3,
            cell_bytes: 16,
            cells: 1024,
        });
        b.place(
            3,
            Mat::builder("store")
                .stateful(arr, |_| Some(0))
                .footprint(MatFootprint { vliw_slots: 2, key_bits: 16, ..Default::default() })
                .build(),
        );
        let p = b.build().unwrap();
        let report = p.resource_report();
        let s3 = &report.stages()[3];
        assert_eq!(s3.sram_bits, 16 * 1024 * 8);
        assert_eq!(s3.vliw_slots, 2);
        assert_eq!(s3.mats, 1);
        assert!(report.sram_avg_pct() > 0.0);
    }

    #[test]
    fn error_display_is_informative() {
        let e = ProgramError::SramExceeded { stage: 4, used: 10, budget: 5 };
        assert_eq!(e.to_string(), "stage 4: SRAM 10b exceeds 5b");
        let e = ProgramError::PhvExceeded { used: 9000, budget: 4096 };
        assert!(e.to_string().contains("PHV"));
    }
}
