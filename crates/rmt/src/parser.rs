//! Programmable parser and deparser.
//!
//! The parser turns packet bytes into a [`Phv`]; the deparser re-serializes
//! the (possibly modified) PHV. Like a P4 parser, behaviour branches on the
//! ingress port: on *split* ports the parser extracts payload blocks into
//! the PHV (so MATs can write them to registers); on *merge* ports it
//! expects a PayloadPark header after the transport header. The parse graph
//! has a branch per transport — UDP and TCP are both first-class (the
//! paper's 7-byte shim sits between the transport header and the payload
//! regardless of protocol). Recirculation ports combine both behaviours
//! (paper §6.2.5: blocks are striped into a second pipe).
//!
//! Non-IPv4 and non-UDP/TCP packets degrade gracefully: unparsed bytes stay
//! in the source frame, referenced by `Phv::body` as a [`Span`], and the
//! deparser splices them back verbatim, so the baseline L2 path is
//! byte-transparent — and zero-copy: parsing never duplicates payload bytes.

use crate::chip::{PortId, PortMap, PortSet};
use crate::phv::{
    EthFields, Ipv4Fields, PayloadBlock, Phv, PpFields, Span, TcpFields, UdpFields, Verdict,
    BLOCK_BYTES, META_WORDS,
};
use pp_packet::checksum::Checksum;
use pp_packet::ethernet::{EthernetFrame, ETHERNET_HEADER_LEN};
use pp_packet::ipv4::{IpProtocol, Ipv4Header, IPV4_HEADER_LEN};
use pp_packet::ppark::{PayloadParkHeader, PpOpcode, PAYLOADPARK_HEADER_LEN};
use pp_packet::tcp::{TcpHeader, TCP_HEADER_LEN};
use pp_packet::udp::{UdpHeader, UDP_HEADER_LEN};
use pp_packet::Result;

/// Per-port payload-block extraction rule.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct BlockRule {
    /// Number of 16-byte blocks to lift into the PHV from the front of the
    /// (post-PayloadPark-header) payload.
    pub blocks: usize,
    /// Extract only if the payload has at least this many bytes — the
    /// 160-byte minimum-payload rule of §5 (384 with recirculation).
    pub min_payload: usize,
}

/// Parser configuration for one pipe.
#[derive(Debug, Clone, Default)]
pub struct ParserConfig {
    /// Ports whose packets carry a PayloadPark header after the UDP header
    /// (packets returning from the NF server, and recirculated packets).
    pub pp_header_ports: PortSet,
    /// Ports where the parser extracts payload blocks into the PHV, with
    /// their extraction rules.
    pub block_rules: PortMap<BlockRule>,
    /// Number of payload-block slots the PHV carries (10 × 16 B = 160 B in
    /// the paper's prototype; 24 with recirculation). Blocks beyond what the
    /// port's rule extracts start out invalid, ready for MATs to fill.
    pub phv_block_capacity: usize,
}

impl ParserConfig {
    /// Parser for a plain L2 switch: nothing beyond headers is parsed.
    pub fn l2_only() -> Self {
        ParserConfig::default()
    }

    /// Bits of PHV capacity this configuration consumes (for Table 1).
    pub fn phv_bits(&self) -> u32 {
        let eth = 48 + 48 + 16;
        let ipv4 = 160;
        // The two transport branches never coexist in one packet, so the
        // container allocator overlays them: the wider (TCP, 160 bits)
        // bounds the cost.
        let transport = 160;
        let pp = if self.pp_header_ports.is_empty() && self.block_rules.is_empty() {
            0
        } else {
            PAYLOADPARK_HEADER_LEN as u32 * 8
        };
        let blocks = (self.phv_block_capacity as u32) * (BLOCK_BYTES as u32) * 8;
        let meta = META_WORDS as u32 * 32;
        eth + ipv4 + transport + pp + blocks + meta
    }
}

/// The span `sub` occupies within `frame`. `sub` must be a subslice of
/// `frame` (everything the parser touches is), which makes this pure
/// pointer arithmetic — the parse graph never copies payload bytes.
fn span_of(frame: &[u8], sub: &[u8]) -> Span {
    let off = sub.as_ptr() as usize - frame.as_ptr() as usize;
    debug_assert!(off + sub.len() <= frame.len());
    Span::new(off, sub.len())
}

/// Parses `bytes` arriving on `port` into a fresh PHV.
///
/// The PHV's [`Span`] fields (`body`, IP/TCP options) reference `bytes`;
/// pass the same frame back to [`deparse_phv`] / [`deparse_phv_into`]. Hot
/// paths that recycle PHVs should call [`parse_packet_into`] instead.
pub fn parse_packet(config: &ParserConfig, bytes: &[u8], port: PortId, seq: u64) -> Result<Phv> {
    let mut phv = Phv::default();
    parse_packet_into(config, bytes, port, seq, &mut phv)?;
    Ok(phv)
}

/// Parses `bytes` arriving on `port` into an existing PHV, reusing its
/// heap capacity (the `blocks` vector) — the batch hot path recycles PHVs
/// across batches so steady state performs no allocation at all.
///
/// Every field is reset; no state from the previous packet survives. On
/// error the PHV is left reset but partially populated and must not be fed
/// to the pipeline.
pub fn parse_packet_into(
    config: &ParserConfig,
    bytes: &[u8],
    port: PortId,
    seq: u64,
    phv: &mut Phv,
) -> Result<()> {
    phv.ingress_port = port;
    phv.ipv4 = None;
    phv.udp = None;
    phv.tcp = None;
    phv.pp = PpFields::default();
    phv.blocks.clear();
    phv.body = Span::EMPTY;
    phv.meta = [0; META_WORDS];
    phv.verdict = Verdict::default();
    phv.recirc_count = 0;
    phv.seq = seq;
    phv.trace_flags = 0;

    let eth = EthernetFrame::new_checked(bytes)?;
    phv.eth = EthFields { dst: eth.dst(), src: eth.src(), ethertype: u16::from(eth.ethertype()) };

    if phv.eth.ethertype != 0x0800 {
        phv.body = span_of(bytes, eth.payload());
        return Ok(());
    }

    let ip = Ipv4Header::new_checked(eth.payload())?;
    phv.ipv4 = Some(Ipv4Fields {
        total_len: ip.total_len(),
        ident: ip.ident(),
        ttl: ip.ttl(),
        protocol: ip.protocol().into(),
        src: u32::from(ip.src()),
        dst: u32::from(ip.dst()),
        options: span_of(bytes, &eth.payload()[IPV4_HEADER_LEN..ip.header_len()]),
    });

    // Transport branch of the parse graph: UDP and TCP both continue into
    // the PayloadPark states; anything else rides in the opaque body.
    let mut payload = match ip.protocol() {
        IpProtocol::Udp => {
            let udp = UdpHeader::new_checked(ip.payload())?;
            phv.udp = Some(UdpFields {
                src_port: udp.src_port(),
                dst_port: udp.dst_port(),
                len: udp.len_field(),
                checksum: udp.checksum_field(),
            });
            &ip.payload()[UDP_HEADER_LEN..usize::from(udp.len_field())]
        }
        IpProtocol::Tcp => {
            let tcp = TcpHeader::new_checked(ip.payload())?;
            let header_len = tcp.header_len();
            phv.tcp = Some(TcpFields {
                src_port: tcp.src_port(),
                dst_port: tcp.dst_port(),
                seq: tcp.seq(),
                ack: tcp.ack(),
                reserved: tcp.reserved_bits(),
                flags: tcp.flags(),
                window: tcp.window(),
                checksum: tcp.checksum_field(),
                urgent: tcp.urgent(),
                options: span_of(bytes, tcp.options()),
            });
            &ip.payload()[header_len..]
        }
        IpProtocol::Other(_) => {
            phv.body = span_of(bytes, ip.payload());
            return Ok(());
        }
    };
    if config.phv_block_capacity > 0 {
        phv.blocks.resize(config.phv_block_capacity, PayloadBlock::default());
    }

    if config.pp_header_ports.contains(port.0) {
        // A PayloadPark header follows the UDP header on this port.
        let pp = PayloadParkHeader::new_checked(payload)?;
        let tag = pp.tag();
        phv.pp = PpFields {
            valid: true,
            enb: pp.enabled(),
            op_drop: pp.opcode() == PpOpcode::ExplicitDrop,
            tbl_idx: tag.table_index,
            clk: tag.generation,
            crc: pp.crc_field(),
        };
        payload = &payload[PAYLOADPARK_HEADER_LEN..];
    }

    if let Some(rule) = config.block_rules.get(port.0) {
        debug_assert!(rule.blocks <= config.phv_block_capacity, "rule exceeds PHV blocks");
        let take = rule.blocks * BLOCK_BYTES;
        if rule.blocks > 0 && payload.len() >= rule.min_payload.max(take) {
            for (slot, chunk) in
                phv.blocks.iter_mut().zip(payload[..take].chunks_exact(BLOCK_BYTES))
            {
                slot.data = chunk.try_into().expect("exact chunk");
                slot.valid = true;
            }
            payload = &payload[take..];
        }
    }
    phv.body = span_of(bytes, payload);
    Ok(())
}

/// Re-serializes a PHV into packet bytes.
///
/// Field values are emitted as stored — length fields are the *program's*
/// responsibility, exactly as in a P4 deparser. The IPv4 header checksum is
/// recomputed (standard practice for programs that rewrite IP fields).
///
/// The transport checksum is emitted verbatim with one exception: on
/// header-only packets (a valid PayloadPark header with ENB=1, i.e. the
/// payload is parked in switch memory) the carried checksum no longer
/// covers what is on the wire, so it is zeroed — RFC 768's "checksum not
/// computed" for UDP, and the same marker on the PayloadPark-internal TCP
/// leg. The Split program parks the original checksum alongside the
/// payload and Merge restores it, so end-to-end verification still passes.
pub fn deparse_phv(phv: &Phv, frame: &[u8]) -> Vec<u8> {
    let mut out = Vec::with_capacity(
        ETHERNET_HEADER_LEN + 60 + phv.valid_block_bytes() + phv.body.len() + 16,
    );
    deparse_phv_into(phv, frame, &mut out);
    out
}

/// Appends the deparsed bytes of `phv` to `out` without allocating a fresh
/// buffer — the batch path deparses a whole batch into one arena. `frame`
/// is the source frame the PHV was parsed from; the PHV's spans (body,
/// IP/TCP options) are spliced out of it rather than copied through the
/// pipeline.
pub fn deparse_phv_into(phv: &Phv, frame: &[u8], out: &mut Vec<u8>) {
    out.extend_from_slice(&phv.eth.dst.0);
    out.extend_from_slice(&phv.eth.src.0);
    out.extend_from_slice(&phv.eth.ethertype.to_be_bytes());

    let Some(ip) = &phv.ipv4 else {
        out.extend_from_slice(phv.body.slice(frame));
        return;
    };

    let ihl = (IPV4_HEADER_LEN + ip.options.len()) / 4;
    let ip_start = out.len();
    out.push(0x40 | ihl as u8);
    out.push(0);
    out.extend_from_slice(&ip.total_len.to_be_bytes());
    out.extend_from_slice(&ip.ident.to_be_bytes());
    out.extend_from_slice(&[0, 0]); // flags + fragment offset
    out.push(ip.ttl);
    out.push(ip.protocol);
    out.extend_from_slice(&[0, 0]); // checksum placeholder
    out.extend_from_slice(&ip.src.to_be_bytes());
    out.extend_from_slice(&ip.dst.to_be_bytes());
    out.extend_from_slice(ip.options.slice(frame));
    let ip_end = out.len();
    let mut c = Checksum::new();
    c.add_bytes(&out[ip_start..ip_end]);
    let ck = c.finish();
    out[ip_start + 10..ip_start + 12].copy_from_slice(&ck.to_be_bytes());

    // The carried transport checksum is invalid once payload bytes leave
    // the wire; emit zero on the parked (ENB=1) leg.
    let parked = phv.pp.valid && phv.pp.enb;
    if let Some(udp) = &phv.udp {
        out.extend_from_slice(&udp.src_port.to_be_bytes());
        out.extend_from_slice(&udp.dst_port.to_be_bytes());
        out.extend_from_slice(&udp.len.to_be_bytes());
        let ck = if parked { 0 } else { udp.checksum };
        out.extend_from_slice(&ck.to_be_bytes());
    } else if let Some(tcp) = &phv.tcp {
        out.extend_from_slice(&tcp.src_port.to_be_bytes());
        out.extend_from_slice(&tcp.dst_port.to_be_bytes());
        out.extend_from_slice(&tcp.seq.to_be_bytes());
        out.extend_from_slice(&tcp.ack.to_be_bytes());
        let data_offset = (TCP_HEADER_LEN + tcp.options.len()) / 4;
        out.push(((data_offset as u8) << 4) | (tcp.reserved & 0x0F));
        out.push(tcp.flags);
        out.extend_from_slice(&tcp.window.to_be_bytes());
        let ck = if parked { 0 } else { tcp.checksum };
        out.extend_from_slice(&ck.to_be_bytes());
        out.extend_from_slice(&tcp.urgent.to_be_bytes());
        out.extend_from_slice(tcp.options.slice(frame));
    } else {
        out.extend_from_slice(phv.body.slice(frame));
        return;
    }

    if phv.pp.valid {
        let mut hdr = [0u8; PAYLOADPARK_HEADER_LEN];
        hdr[0] = (u8::from(phv.pp.enb) << 7) | (u8::from(phv.pp.op_drop) << 6);
        hdr[1..3].copy_from_slice(&phv.pp.tbl_idx.to_be_bytes());
        hdr[3..5].copy_from_slice(&phv.pp.clk.to_be_bytes());
        hdr[5..7].copy_from_slice(&phv.pp.crc.to_be_bytes());
        out.extend_from_slice(&hdr);
    }

    for block in phv.blocks.iter().filter(|b| b.valid) {
        out.extend_from_slice(&block.data);
    }
    out.extend_from_slice(phv.body.slice(frame));
}

/// Convenience check used by tests: parse + deparse must be the identity on
/// well-formed packets when no MAT modified the PHV.
pub fn roundtrips(config: &ParserConfig, bytes: &[u8], port: PortId) -> bool {
    match parse_packet(config, bytes, port, 0) {
        Ok(phv) => deparse_phv(&phv, bytes) == bytes,
        Err(_) => false,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use pp_packet::builder::{TcpPacketBuilder, UdpPacketBuilder};
    use pp_packet::ppark::PpTag;
    use pp_packet::ParseError;

    fn split_config() -> ParserConfig {
        ParserConfig {
            pp_header_ports: [1u16].into_iter().collect(),
            block_rules: [(0u16, BlockRule { blocks: 10, min_payload: 160 })].into_iter().collect(),
            phv_block_capacity: 10,
        }
    }

    #[test]
    fn l2_roundtrip_is_identity() {
        let cfg = ParserConfig::l2_only();
        for size in [42usize, 64, 256, 882, 1492] {
            let pkt = UdpPacketBuilder::new().total_size(size, 9).build();
            assert!(roundtrips(&cfg, pkt.bytes(), PortId(5)), "size {size}");
        }
    }

    #[test]
    fn non_ipv4_passthrough() {
        let mut bytes = UdpPacketBuilder::new().total_size(100, 1).build().into_bytes();
        bytes[12..14].copy_from_slice(&0x88B5u16.to_be_bytes());
        let cfg = ParserConfig::l2_only();
        let phv = parse_packet(&cfg, &bytes, PortId(0), 0).unwrap();
        assert!(phv.ipv4.is_none());
        assert_eq!(deparse_phv(&phv, &bytes), bytes);
    }

    #[test]
    fn non_transport_passthrough() {
        let mut bytes = UdpPacketBuilder::new().total_size(100, 1).build().into_bytes();
        bytes[23] = 47; // GRE: neither UDP nor TCP
        let mut ip = Ipv4Header::new_checked(&mut bytes[14..]).unwrap();
        ip.fill_checksum();
        let cfg = split_config();
        let phv = parse_packet(&cfg, &bytes, PortId(0), 0).unwrap();
        assert!(phv.ipv4.is_some());
        assert!(phv.udp.is_none() && phv.tcp.is_none());
        assert!(phv.blocks.is_empty());
        assert_eq!(deparse_phv(&phv, &bytes), bytes);
    }

    #[test]
    fn tcp_split_port_extracts_blocks() {
        let pkt = TcpPacketBuilder::new().total_size(54 + 200, 3).build();
        let cfg = split_config();
        let phv = parse_packet(&cfg, pkt.bytes(), PortId(0), 7).unwrap();
        assert!(phv.is_tcp() && !phv.is_udp() && phv.has_transport());
        assert_eq!(phv.blocks.len(), 10);
        assert!(phv.blocks.iter().all(|b| b.valid));
        assert_eq!(phv.body.len(), 40);
        // Deparse without modification restores the original bytes.
        assert_eq!(deparse_phv(&phv, pkt.bytes()), pkt.bytes());
    }

    #[test]
    fn tcp_small_payload_skips_block_extraction() {
        let pkt = TcpPacketBuilder::new().total_size(54 + 159, 3).build();
        let cfg = split_config();
        let phv = parse_packet(&cfg, pkt.bytes(), PortId(0), 0).unwrap();
        assert!(phv.blocks.iter().all(|b| !b.valid));
        assert_eq!(phv.body.len(), 159);
        assert_eq!(deparse_phv(&phv, pkt.bytes()), pkt.bytes());
    }

    #[test]
    fn tcp_control_flags_and_fields_roundtrip() {
        let pkt = TcpPacketBuilder::new()
            .tcp_seq(0xDEADBEEF)
            .tcp_ack(0x01020304)
            .flags(pp_packet::TcpFlags::SYN)
            .build();
        let cfg = split_config();
        let phv = parse_packet(&cfg, pkt.bytes(), PortId(0), 0).unwrap();
        let tcp = phv.tcp.as_ref().unwrap();
        assert_eq!(tcp.seq, 0xDEADBEEF);
        assert_eq!(tcp.ack, 0x01020304);
        assert_eq!(tcp.flags, pp_packet::TcpFlags::SYN);
        assert_eq!(tcp.window, 0xFFFF);
        assert!(tcp.options.is_empty());
        assert_eq!(deparse_phv(&phv, pkt.bytes()), pkt.bytes());
    }

    #[test]
    fn tcp_options_preserved_through_roundtrip() {
        // Hand-build a segment with a 4-byte MSS option (data offset 6).
        let mut pkt = TcpPacketBuilder::new().payload(&[0u8; 8]).build().into_bytes();
        // Grow the buffer by 4 option bytes after the 20-byte TCP header.
        let opt = [0x02, 0x04, 0x05, 0xB4];
        let insert_at = 14 + 20 + 20;
        for (i, b) in opt.into_iter().enumerate() {
            pkt.insert(insert_at + i, b);
        }
        pkt[14 + 20 + 12] = 6 << 4; // data offset 6
        let ip_len = (pkt.len() - 14) as u16;
        pkt[16..18].copy_from_slice(&ip_len.to_be_bytes());
        let mut ip = Ipv4Header::new_checked(&mut pkt[14..]).unwrap();
        ip.fill_checksum();
        let (src, dst) = {
            let ip = Ipv4Header::new_checked(&pkt[14..]).unwrap();
            (u32::from(ip.src()), u32::from(ip.dst()))
        };
        let mut tcp = pp_packet::TcpHeader::new_checked(&mut pkt[34..]).unwrap();
        tcp.fill_checksum(src, dst);

        let phv = parse_packet(&ParserConfig::l2_only(), &pkt, PortId(0), 0).unwrap();
        assert_eq!(phv.tcp.as_ref().unwrap().options.slice(&pkt), opt);
        assert_eq!(deparse_phv(&phv, &pkt), pkt);
    }

    #[test]
    fn parked_leg_zeroes_the_transport_checksum() {
        // A split-port UDP packet whose program parked the payload: the
        // deparser must emit checksum 0 (RFC 768 "not computed").
        let pkt = UdpPacketBuilder::new().total_size(42 + 200, 3).build();
        let cfg = split_config();
        let mut phv = parse_packet(&cfg, pkt.bytes(), PortId(0), 0).unwrap();
        phv.pp.valid = true;
        phv.pp.enb = true;
        let bytes = deparse_phv(&phv, pkt.bytes());
        assert_eq!(&bytes[40..42], &[0, 0], "UDP checksum must be zeroed");

        // Same for TCP (checksum bytes 16-17 of the transport header).
        let pkt = TcpPacketBuilder::new().total_size(54 + 200, 3).build();
        let mut phv = parse_packet(&cfg, pkt.bytes(), PortId(0), 0).unwrap();
        assert_ne!(&pkt.bytes()[50..52], &[0, 0]);
        phv.pp.valid = true;
        phv.pp.enb = true;
        let bytes = deparse_phv(&phv, pkt.bytes());
        assert_eq!(&bytes[50..52], &[0, 0], "TCP checksum must be zeroed");

        // A disabled (ENB=0) header leaves the checksum untouched: the
        // payload never left the wire and Merge will strip the shim.
        let pkt = UdpPacketBuilder::new().total_size(42 + 100, 3).build();
        let mut phv = parse_packet(&cfg, pkt.bytes(), PortId(0), 0).unwrap();
        phv.pp.valid = true;
        phv.pp.enb = false;
        let bytes = deparse_phv(&phv, pkt.bytes());
        assert_eq!(&bytes[40..42], &pkt.bytes()[40..42]);
    }

    #[test]
    fn split_port_extracts_blocks() {
        let pkt = UdpPacketBuilder::new().total_size(42 + 200, 3).build();
        let cfg = split_config();
        let phv = parse_packet(&cfg, pkt.bytes(), PortId(0), 7).unwrap();
        assert_eq!(phv.blocks.len(), 10);
        assert!(phv.blocks.iter().all(|b| b.valid));
        assert_eq!(phv.body.len(), 40);
        assert_eq!(phv.seq, 7);
        // Deparse without modification restores the original bytes.
        assert_eq!(deparse_phv(&phv, pkt.bytes()), pkt.bytes());
    }

    #[test]
    fn small_payload_skips_block_extraction() {
        let pkt = UdpPacketBuilder::new().total_size(42 + 159, 3).build();
        let cfg = split_config();
        let phv = parse_packet(&cfg, pkt.bytes(), PortId(0), 0).unwrap();
        assert_eq!(phv.blocks.len(), 10);
        assert!(phv.blocks.iter().all(|b| !b.valid));
        assert_eq!(phv.body.len(), 159);
        assert_eq!(deparse_phv(&phv, pkt.bytes()), pkt.bytes());
    }

    #[test]
    fn payload_exactly_at_threshold_extracts() {
        let pkt = UdpPacketBuilder::new().total_size(42 + 160, 3).build();
        let cfg = split_config();
        let phv = parse_packet(&cfg, pkt.bytes(), PortId(0), 0).unwrap();
        assert_eq!(phv.blocks.iter().filter(|b| b.valid).count(), 10);
        assert!(phv.body.is_empty());
    }

    #[test]
    fn non_split_port_leaves_payload_in_body() {
        let pkt = UdpPacketBuilder::new().total_size(42 + 200, 3).build();
        let cfg = split_config();
        let phv = parse_packet(&cfg, pkt.bytes(), PortId(9), 0).unwrap();
        assert_eq!(phv.valid_block_bytes(), 0);
        assert_eq!(phv.body.len(), 200);
    }

    #[test]
    fn merge_port_parses_pp_header() {
        // Construct a split-looking packet: UDP payload = PP header + 40 B.
        let tag = PpTag { table_index: 123, generation: 456 };
        let mut payload = vec![0u8; PAYLOADPARK_HEADER_LEN + 40];
        PayloadParkHeader::new_checked(&mut payload[..])
            .unwrap()
            .write_enabled(PpOpcode::Merge, tag);
        let pkt = UdpPacketBuilder::new().payload(&payload).build();
        let cfg = split_config();
        let phv = parse_packet(&cfg, pkt.bytes(), PortId(1), 0).unwrap();
        assert!(phv.pp.valid);
        assert!(phv.pp.enb);
        assert!(!phv.pp.op_drop);
        assert_eq!(phv.pp.tbl_idx, 123);
        assert_eq!(phv.pp.clk, 456);
        assert_eq!(phv.pp.crc, tag.crc());
        assert_eq!(phv.body.len(), 40);
        // Blocks are allocated (for the merge MATs to fill) but invalid.
        assert_eq!(phv.blocks.len(), 10);
        assert_eq!(phv.valid_block_bytes(), 0);
        // Re-emitting the still-parked (ENB=1) packet is the identity
        // except for the zeroed transport checksum.
        let mut expected = pkt.bytes().to_vec();
        expected[40..42].fill(0);
        assert_eq!(deparse_phv(&phv, pkt.bytes()), expected);
    }

    #[test]
    fn port_with_pp_header_and_block_rule_extracts_after_header() {
        // Recirculation-style port: PP header + blocks from the remainder.
        let tag = PpTag { table_index: 9, generation: 2 };
        let mut payload = vec![0u8; PAYLOADPARK_HEADER_LEN + 250];
        PayloadParkHeader::new_checked(&mut payload[..])
            .unwrap()
            .write_enabled(PpOpcode::Merge, tag);
        for (i, b) in payload[PAYLOADPARK_HEADER_LEN..].iter_mut().enumerate() {
            *b = i as u8;
        }
        let pkt = UdpPacketBuilder::new().payload(&payload).build();
        let cfg = ParserConfig {
            pp_header_ports: [5u16].into_iter().collect(),
            block_rules: [(5u16, BlockRule { blocks: 14, min_payload: 224 })].into_iter().collect(),
            phv_block_capacity: 24,
        };
        let phv = parse_packet(&cfg, pkt.bytes(), PortId(5), 0).unwrap();
        assert!(phv.pp.valid);
        assert_eq!(phv.blocks.len(), 24);
        assert_eq!(phv.valid_block_bytes(), 14 * BLOCK_BYTES);
        // First block is payload bytes 0..16 after the PP header.
        assert_eq!(phv.blocks[0].data[0], 0);
        assert_eq!(phv.blocks[1].data[0], 16);
        assert_eq!(phv.body.len(), 250 - 14 * BLOCK_BYTES);
        let mut expected = pkt.bytes().to_vec();
        expected[40..42].fill(0); // ENB=1: parked-leg checksum is zeroed
        assert_eq!(deparse_phv(&phv, pkt.bytes()), expected);
    }

    #[test]
    fn truncated_pp_header_rejected_on_merge_port() {
        let pkt = UdpPacketBuilder::new().payload(&[0u8; 3]).build();
        let cfg = split_config();
        assert!(matches!(
            parse_packet(&cfg, pkt.bytes(), PortId(1), 0),
            Err(ParseError::Truncated { .. })
        ));
    }

    #[test]
    fn phv_bits_accounting() {
        let l2 = ParserConfig::l2_only();
        let pp = split_config();
        assert!(pp.phv_bits() > l2.phv_bits());
        // 10 blocks = 1280 bits plus the 56-bit PayloadPark header.
        assert_eq!(pp.phv_bits() - l2.phv_bits(), 1280 + 56);
    }
}
