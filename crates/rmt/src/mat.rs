//! Match-action tables.
//!
//! A [`Mat`] couples a *gateway* (the match side: a predicate over the PHV),
//! an optional *stateful binding* (at most one register array, at most one
//! cell per packet — the Tofino stateful-ALU restriction the paper designs
//! around, §4 "Implications of ASIC restrictions"), and an *action* over the
//! PHV plus that single cell.

use crate::phv::Phv;
use crate::register::RegisterId;
use crate::summary::MatSummary;

/// Kind of match hardware a table consumes (for resource accounting).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum MatchKind {
    /// Exact-match (SRAM + exact crossbar).
    Exact,
    /// Ternary match (TCAM + ternary crossbar).
    Ternary,
    /// Gateway-only predicate (no table lookup; small crossbar cost).
    Gateway,
}

/// Per-MAT counters the action may bump (statistics hardware, separate from
/// stateful ALUs — the paper's eight monitoring counters, §5).
pub type Counters = [u64];

/// Execution context handed to an action.
pub struct ActionCtx<'a> {
    /// The packet header vector.
    pub phv: &'a mut Phv,
    /// The one register cell this MAT may read-modify-write this packet,
    /// if the MAT has a stateful binding and the index function selected a
    /// cell.
    pub cell: Option<&'a mut [u8]>,
    /// Program-wide statistics counters.
    pub counters: &'a mut [u64],
}

type GatewayFn = Box<dyn Fn(&Phv) -> bool + Send>;
type IndexFn = Box<dyn Fn(&Phv) -> Option<usize> + Send>;
type ActionFn = Box<dyn Fn(&mut ActionCtx<'_>) + Send>;

/// Static resource footprint declared by a MAT.
#[derive(Debug, Clone, Copy)]
pub struct MatFootprint {
    /// Kind of match hardware used.
    pub match_kind: MatchKind,
    /// Bits of match key (crossbar usage).
    pub key_bits: u32,
    /// VLIW instruction slots used by the action.
    pub vliw_slots: u32,
    /// SRAM bits for match entries (0 for pure gateways).
    pub table_sram_bits: u64,
    /// TCAM bits for ternary entries.
    pub tcam_bits: u64,
}

impl Default for MatFootprint {
    fn default() -> Self {
        MatFootprint {
            match_kind: MatchKind::Gateway,
            key_bits: 16,
            vliw_slots: 1,
            table_sram_bits: 0,
            tcam_bits: 0,
        }
    }
}

/// The stateful binding: one array, one index per packet.
pub struct StatefulBinding {
    /// Bound register array.
    pub array: RegisterId,
    index: IndexFn,
}

/// A match-action table.
pub struct Mat {
    name: String,
    gateway: GatewayFn,
    stateful: Option<StatefulBinding>,
    action: ActionFn,
    footprint: MatFootprint,
    summary: Option<MatSummary>,
    hits: u64,
}

impl Mat {
    /// Begins building a MAT.
    pub fn builder(name: impl Into<String>) -> MatBuilder {
        MatBuilder {
            name: name.into(),
            gateway: None,
            stateful: None,
            action: None,
            footprint: MatFootprint::default(),
            summary: None,
        }
    }

    /// The MAT's name.
    pub fn name(&self) -> &str {
        &self.name
    }

    /// Declared footprint.
    pub fn footprint(&self) -> MatFootprint {
        self.footprint
    }

    /// The bound register array, if any.
    pub fn stateful_array(&self) -> Option<RegisterId> {
        self.stateful.as_ref().map(|s| s.array)
    }

    /// The declared dataflow summary, if the program attached one.
    pub fn summary(&self) -> Option<&MatSummary> {
        self.summary.as_ref()
    }

    /// Whether the gateway matches this PHV.
    pub fn matches(&self, phv: &Phv) -> bool {
        (self.gateway)(phv)
    }

    /// The register index the binding selects for this PHV.
    pub fn stateful_index(&self, phv: &Phv) -> Option<(RegisterId, usize)> {
        let b = self.stateful.as_ref()?;
        (b.index)(phv).map(|i| (b.array, i))
    }

    /// Runs the action.
    pub fn run(&mut self, ctx: &mut ActionCtx<'_>) {
        self.hits += 1;
        (self.action)(ctx);
    }

    /// Number of packets whose gateway matched (action executions).
    pub fn hits(&self) -> u64 {
        self.hits
    }
}

impl core::fmt::Debug for Mat {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        f.debug_struct("Mat")
            .field("name", &self.name)
            .field("stateful", &self.stateful.as_ref().map(|s| s.array))
            .field("footprint", &self.footprint)
            .field("hits", &self.hits)
            .finish()
    }
}

/// Builder for [`Mat`].
pub struct MatBuilder {
    name: String,
    gateway: Option<GatewayFn>,
    stateful: Option<StatefulBinding>,
    action: Option<ActionFn>,
    footprint: MatFootprint,
    summary: Option<MatSummary>,
}

impl MatBuilder {
    /// Sets the match predicate. Defaults to match-all.
    pub fn gateway(mut self, f: impl Fn(&Phv) -> bool + Send + 'static) -> Self {
        self.gateway = Some(Box::new(f));
        self
    }

    /// Binds the MAT to `array`, selecting the cell per packet with `index`.
    /// Returning `None` skips the register access for that packet.
    pub fn stateful(
        mut self,
        array: RegisterId,
        index: impl Fn(&Phv) -> Option<usize> + Send + 'static,
    ) -> Self {
        self.stateful = Some(StatefulBinding { array, index: Box::new(index) });
        self
    }

    /// Sets the action body.
    pub fn action(mut self, f: impl Fn(&mut ActionCtx<'_>) + Send + 'static) -> Self {
        self.action = Some(Box::new(f));
        self
    }

    /// Overrides the declared resource footprint.
    pub fn footprint(mut self, fp: MatFootprint) -> Self {
        self.footprint = fp;
        self
    }

    /// Attaches a dataflow summary describing the gateway and action for
    /// static analysis (`pp_verify`). The summary is declarative — it must
    /// be kept in sync with the closures by the program author.
    pub fn summary(mut self, s: MatSummary) -> Self {
        self.summary = Some(s);
        self
    }

    /// Finishes the MAT. A missing action becomes a no-op.
    pub fn build(self) -> Mat {
        Mat {
            name: self.name,
            gateway: self.gateway.unwrap_or_else(|| Box::new(|_| true)),
            stateful: self.stateful,
            action: self.action.unwrap_or_else(|| Box::new(|_| {})),
            footprint: self.footprint,
            summary: self.summary,
            hits: 0,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::chip::PortId;
    fn phv(port: u16) -> Phv {
        Phv { ingress_port: PortId(port), ..Phv::default() }
    }

    #[test]
    fn gateway_filters() {
        let mat = Mat::builder("only_port_3").gateway(|p| p.ingress_port == PortId(3)).build();
        assert!(mat.matches(&phv(3)));
        assert!(!mat.matches(&phv(4)));
    }

    #[test]
    fn default_gateway_matches_all() {
        let mat = Mat::builder("all").build();
        assert!(mat.matches(&phv(0)));
    }

    #[test]
    fn action_mutates_phv_and_counters() {
        let mut mat = Mat::builder("count")
            .action(|ctx| {
                ctx.phv.meta[0] = 99;
                ctx.counters[2] += 1;
            })
            .build();
        let mut p = phv(0);
        let mut counters = vec![0u64; 4];
        let mut ctx = ActionCtx { phv: &mut p, cell: None, counters: &mut counters };
        mat.run(&mut ctx);
        assert_eq!(p.meta[0], 99);
        assert_eq!(counters[2], 1);
        assert_eq!(mat.hits(), 1);
    }

    #[test]
    fn stateful_index_selection() {
        let array = RegisterId(0);
        let mat = Mat::builder("idx")
            .stateful(array, |p| if p.meta[0] < 10 { Some(p.meta[0] as usize) } else { None })
            .build();
        let mut p = phv(0);
        p.meta[0] = 5;
        assert_eq!(mat.stateful_index(&p), Some((array, 5)));
        p.meta[0] = 50;
        assert_eq!(mat.stateful_index(&p), None);
        assert_eq!(mat.stateful_array(), Some(array));
    }

    #[test]
    fn cell_is_mutable_through_ctx() {
        let mut mat = Mat::builder("rmw")
            .action(|ctx| {
                if let Some(cell) = ctx.cell.as_deref_mut() {
                    cell[0] = cell[0].wrapping_add(1);
                }
            })
            .build();
        let mut p = phv(0);
        let mut counters = vec![0u64; 1];
        let mut storage = [7u8; 4];
        let mut ctx =
            ActionCtx { phv: &mut p, cell: Some(&mut storage[..]), counters: &mut counters };
        mat.run(&mut ctx);
        assert_eq!(storage[0], 8);
    }

    #[test]
    fn debug_format_includes_name() {
        let mat = Mat::builder("my_table").build();
        assert!(format!("{mat:?}").contains("my_table"));
    }
}
