//! The Packet Header Vector (PHV).
//!
//! The parser populates a `Phv` from packet bytes; match-action stages read
//! and modify it; the deparser re-serializes it. Fields the parser did not
//! extract stay behind [`Phv::body`], a [`Span`] into the *source frame*
//! the PHV was parsed from — they flow through the switch's packet buffer
//! untouched, exactly as on real hardware, and are never copied between
//! ingress and egress. The deparser splices them back out of the frame.

use crate::chip::PortId;
use pp_packet::MacAddr;

/// A `(offset, len)` view into the source frame a PHV was parsed from.
///
/// The PISA model keeps the packet body in the switch's packet buffer while
/// only the header vector travels through the MAT pipeline; `Span` is that
/// buffer reference. Spans produced by [`crate::parser::parse_packet`] are
/// always in bounds of the frame that produced them, and the deparser
/// resolves them against the same frame — so the opaque bytes of a packet
/// cost zero copies between ingress and egress.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct Span {
    /// Byte offset from the start of the source frame.
    pub off: u32,
    /// Length in bytes.
    pub len: u32,
}

impl Span {
    /// An empty span (offset 0, length 0).
    pub const EMPTY: Span = Span { off: 0, len: 0 };

    /// A span covering `range` of the source frame.
    pub fn new(off: usize, len: usize) -> Span {
        debug_assert!(off <= u32::MAX as usize && len <= u32::MAX as usize);
        Span { off: off as u32, len: len as u32 }
    }

    /// Length in bytes.
    #[allow(clippy::len_without_is_empty)]
    pub fn len(&self) -> usize {
        self.len as usize
    }

    /// True when the span covers no bytes.
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// The byte range covered within the source frame.
    pub fn range(&self) -> core::ops::Range<usize> {
        self.off as usize..self.off as usize + self.len as usize
    }

    /// Resolves the span against the frame it was produced from.
    ///
    /// Panics if the span is out of bounds for `frame` — which means the
    /// caller paired a PHV with a frame it was not parsed from (a wiring
    /// bug, never a traffic-dependent condition: the parser only emits
    /// in-bounds spans).
    pub fn slice<'a>(&self, frame: &'a [u8]) -> &'a [u8] {
        &frame[self.range()]
    }

    /// True when every byte of the span lies within `frame`.
    pub fn in_bounds(&self, frame: &[u8]) -> bool {
        self.off as usize + self.len as usize <= frame.len()
    }
}

/// Width of one payload block — the unit in which PayloadPark stripes
/// payload bytes across MAT-local register arrays (paper Fig. 4).
pub const BLOCK_BYTES: usize = 16;

/// Parsed Ethernet fields.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct EthFields {
    /// Destination MAC.
    pub dst: MacAddr,
    /// Source MAC.
    pub src: MacAddr,
    /// Ethertype.
    pub ethertype: u16,
}

/// Parsed IPv4 fields (options preserved verbatim in the source frame,
/// referenced by span).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Ipv4Fields {
    /// Total datagram length (header + payload).
    pub total_len: u16,
    /// Identification.
    pub ident: u16,
    /// Time to live.
    pub ttl: u8,
    /// Transport protocol number.
    pub protocol: u8,
    /// Source address.
    pub src: u32,
    /// Destination address.
    pub dst: u32,
    /// Option bytes in the source frame (empty for IHL = 5).
    pub options: Span,
}

/// Parsed UDP fields.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct UdpFields {
    /// Source port.
    pub src_port: u16,
    /// Destination port.
    pub dst_port: u16,
    /// UDP length field.
    pub len: u16,
    /// UDP checksum as carried (never recomputed by the dataplane).
    pub checksum: u16,
}

/// Parsed TCP fields (options preserved verbatim in the source frame; the
/// data offset is derived from the option length at deparse time).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct TcpFields {
    /// Source port.
    pub src_port: u16,
    /// Destination port.
    pub dst_port: u16,
    /// Sequence number.
    pub seq: u32,
    /// Acknowledgement number.
    pub ack: u32,
    /// Reserved bits + NS (low nibble of byte 12), carried verbatim.
    pub reserved: u8,
    /// Flags byte (CWR..FIN).
    pub flags: u8,
    /// Receive window.
    pub window: u16,
    /// TCP checksum as carried (never recomputed by the dataplane).
    pub checksum: u16,
    /// Urgent pointer.
    pub urgent: u16,
    /// Option bytes in the source frame (empty for data offset 5).
    pub options: Span,
}

/// Parsed (or to-be-emitted) PayloadPark header fields.
///
/// `valid` mirrors P4's `setValid()`/`setInvalid()`: only a valid header is
/// emitted by the deparser.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct PpFields {
    /// Header validity (P4 `isValid()`).
    pub valid: bool,
    /// Enable bit: payload actually parked?
    pub enb: bool,
    /// Opcode bit: false = Merge, true = Explicit Drop.
    pub op_drop: bool,
    /// Tag: table index.
    pub tbl_idx: u16,
    /// Tag: generation clock.
    pub clk: u16,
    /// Tag: CRC over (tbl_idx, clk).
    pub crc: u16,
}

/// One payload block with a validity flag.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct PayloadBlock {
    /// Block contents.
    pub data: [u8; BLOCK_BYTES],
    /// Emitted by the deparser only when valid.
    pub valid: bool,
}

impl Default for PayloadBlock {
    fn default() -> Self {
        PayloadBlock { data: [0; BLOCK_BYTES], valid: false }
    }
}

/// Destination of a recirculation pass.
///
/// Real chips expose several recirculation channels per pipe; programs that
/// need direction-dependent parsing (PayloadPark's annex pipe parses
/// split-annex and merge-annex traffic differently) use distinct channels,
/// which map to distinct virtual ingress ports.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct RecircTarget {
    /// Pipe to re-enter.
    pub pipe: usize,
    /// Recirculation channel within that pipe.
    pub channel: u8,
}

/// Forwarding decision accumulated while the packet traverses the pipeline.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct Verdict {
    /// Explicit egress port chosen by the program (otherwise the switch's
    /// L2 table decides).
    pub egress: Option<PortId>,
    /// Drop the packet.
    pub drop: bool,
    /// Re-inject at the parser of the given pipe/channel after this pass.
    pub recirculate: Option<RecircTarget>,
}

/// Number of 32-bit user-metadata words carried by the PHV.
pub const META_WORDS: usize = 8;

/// The Packet Header Vector.
#[derive(Debug, Clone, PartialEq)]
pub struct Phv {
    /// Ingress port of the current pass (recirculation ports included).
    pub ingress_port: PortId,
    /// Ethernet fields (always parsed).
    pub eth: EthFields,
    /// IPv4 fields, when the ethertype is IPv4.
    pub ipv4: Option<Ipv4Fields>,
    /// UDP fields, when IPv4 protocol is UDP (mutually exclusive with
    /// `tcp`).
    pub udp: Option<UdpFields>,
    /// TCP fields, when IPv4 protocol is TCP (mutually exclusive with
    /// `udp`).
    pub tcp: Option<TcpFields>,
    /// PayloadPark header fields.
    pub pp: PpFields,
    /// Payload blocks extracted by the parser (split side) or filled from
    /// registers (merge side).
    pub blocks: Vec<PayloadBlock>,
    /// Unparsed remainder of the packet, as a span into the source frame.
    pub body: Span,
    /// User-defined metadata words (the paper's `meta` struct).
    pub meta: [u32; META_WORDS],
    /// Forwarding decision.
    pub verdict: Verdict,
    /// Recirculation passes completed so far.
    pub recirc_count: u32,
    /// Sequence number carried through from the input packet (simulation
    /// bookkeeping, not visible to the dataplane program).
    pub seq: u64,
    /// Decision bits ([`crate::trace::decision`]) accumulated by the
    /// program for the flight recorder (simulation bookkeeping, not
    /// visible to the dataplane program).
    pub trace_flags: u16,
}

impl Default for Phv {
    /// A blank PHV (no headers parsed, empty spans) — the starting state
    /// [`crate::parser::parse_packet_into`] fills in, and what pooled PHVs
    /// are initialised to.
    fn default() -> Self {
        Phv {
            ingress_port: PortId(0),
            eth: EthFields { dst: MacAddr::default(), src: MacAddr::default(), ethertype: 0 },
            ipv4: None,
            udp: None,
            tcp: None,
            pp: PpFields::default(),
            blocks: Vec::new(),
            body: Span::EMPTY,
            meta: [0; META_WORDS],
            verdict: Verdict::default(),
            recirc_count: 0,
            seq: 0,
            trace_flags: 0,
        }
    }
}

impl Phv {
    /// Bytes of currently-valid payload blocks.
    pub fn valid_block_bytes(&self) -> usize {
        self.blocks.iter().filter(|b| b.valid).count() * BLOCK_BYTES
    }

    /// Marks every payload block invalid (after parking them in registers).
    pub fn invalidate_blocks(&mut self) {
        for b in &mut self.blocks {
            b.valid = false;
        }
    }

    /// Transport payload bytes currently represented on the wire: valid
    /// blocks plus the opaque body.
    pub fn wire_payload_len(&self) -> usize {
        self.valid_block_bytes() + self.body.len()
    }

    /// True when this packet carries a UDP datagram.
    pub fn is_udp(&self) -> bool {
        self.udp.is_some()
    }

    /// True when this packet carries a TCP segment.
    pub fn is_tcp(&self) -> bool {
        self.tcp.is_some()
    }

    /// True when this packet carries a parseable transport segment (UDP or
    /// TCP) — the protocols the Split/Merge program can park.
    pub fn has_transport(&self) -> bool {
        self.udp.is_some() || self.tcp.is_some()
    }

    /// The transport checksum as carried in the PHV, if any transport was
    /// parsed.
    pub fn transport_checksum(&self) -> Option<u16> {
        self.udp.as_ref().map(|u| u.checksum).or_else(|| self.tcp.as_ref().map(|t| t.checksum))
    }

    /// Overwrites the transport checksum field of whichever transport is
    /// present (Split parks it; Merge restores it).
    pub fn set_transport_checksum(&mut self, ck: u16) {
        if let Some(udp) = self.udp.as_mut() {
            udp.checksum = ck;
        } else if let Some(tcp) = self.tcp.as_mut() {
            tcp.checksum = ck;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn empty_phv() -> Phv {
        Phv {
            ingress_port: PortId(0),
            eth: EthFields { dst: MacAddr::default(), src: MacAddr::default(), ethertype: 0 },
            ipv4: None,
            udp: None,
            tcp: None,
            pp: PpFields::default(),
            blocks: Vec::new(),
            body: Span::EMPTY,
            meta: [0; META_WORDS],
            verdict: Verdict::default(),
            recirc_count: 0,
            seq: 0,
            trace_flags: 0,
        }
    }

    #[test]
    fn span_accessors() {
        let frame = [0u8, 1, 2, 3, 4, 5, 6, 7];
        let s = Span::new(2, 3);
        assert_eq!(s.len(), 3);
        assert!(!s.is_empty());
        assert_eq!(s.range(), 2..5);
        assert_eq!(s.slice(&frame), &[2, 3, 4]);
        assert!(s.in_bounds(&frame));
        assert!(!Span::new(6, 3).in_bounds(&frame));
        assert!(Span::EMPTY.is_empty());
        assert_eq!(Span::default(), Span::EMPTY);
    }

    #[test]
    fn block_byte_accounting() {
        let mut phv = empty_phv();
        phv.blocks = vec![PayloadBlock { data: [1; BLOCK_BYTES], valid: true }; 10];
        phv.blocks[9].valid = false;
        phv.body = Span::new(0, 30);
        assert_eq!(phv.valid_block_bytes(), 9 * BLOCK_BYTES);
        assert_eq!(phv.wire_payload_len(), 9 * BLOCK_BYTES + 30);
        phv.invalidate_blocks();
        assert_eq!(phv.valid_block_bytes(), 0);
        assert_eq!(phv.wire_payload_len(), 30);
    }

    #[test]
    fn default_block_is_invalid() {
        assert!(!PayloadBlock::default().valid);
    }

    #[test]
    fn verdict_defaults_to_l2_forwarding() {
        let v = Verdict::default();
        assert_eq!(v.egress, None);
        assert!(!v.drop);
        assert_eq!(v.recirculate, None);
    }

    #[test]
    fn udp_flag() {
        let mut phv = empty_phv();
        assert!(!phv.is_udp());
        phv.udp = Some(UdpFields { src_port: 1, dst_port: 2, len: 8, checksum: 0 });
        assert!(phv.is_udp());
    }

    #[test]
    fn transport_helpers_cover_both_protocols() {
        let mut phv = empty_phv();
        assert!(!phv.has_transport());
        assert_eq!(phv.transport_checksum(), None);
        phv.set_transport_checksum(7); // no transport: a no-op
        assert_eq!(phv.transport_checksum(), None);

        phv.udp = Some(UdpFields { src_port: 1, dst_port: 2, len: 8, checksum: 0xAB });
        assert!(phv.has_transport() && !phv.is_tcp());
        assert_eq!(phv.transport_checksum(), Some(0xAB));
        phv.set_transport_checksum(0xCD);
        assert_eq!(phv.udp.as_ref().unwrap().checksum, 0xCD);

        let mut phv = empty_phv();
        phv.tcp = Some(TcpFields {
            src_port: 1,
            dst_port: 2,
            seq: 3,
            ack: 4,
            reserved: 0,
            flags: 0x10,
            window: 100,
            checksum: 0x55,
            urgent: 0,
            options: Span::EMPTY,
        });
        assert!(phv.has_transport() && phv.is_tcp() && !phv.is_udp());
        assert_eq!(phv.transport_checksum(), Some(0x55));
        phv.set_transport_checksum(0x66);
        assert_eq!(phv.tcp.as_ref().unwrap().checksum, 0x66);
    }
}
