//! Chip resource profiles and port identifiers.

/// A switch port number (0-based, chip-wide).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct PortId(pub u16);

impl core::fmt::Display for PortId {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        write!(f, "port{}", self.0)
    }
}

/// Static resource budgets of the emulated ASIC.
///
/// The paper withholds the Tofino's exact numbers for confidentiality (§5
/// footnote 2); these defaults are drawn from public descriptions of
/// 6.4 Tbps RMT chips — 4 pipes of 12 stages, 16 × 100 GbE ports per pipe,
/// and a ~15 MB register-capable SRAM partition — and can be overridden per run.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ChipProfile {
    /// Number of independent pipes. Pipes do not share stateful memory.
    pub pipes: usize,
    /// Match-action stages per pipe.
    pub stages_per_pipe: usize,
    /// Front-panel ports attached to each pipe.
    pub ports_per_pipe: usize,
    /// SRAM bits available per stage for *stateful* use (register arrays
    /// plus the match tables the program declares). This models the
    /// register-capable partition of a stage's SRAM, not the whole match
    /// memory; resource percentages are reported against it.
    pub sram_bits_per_stage: u64,
    /// TCAM bits available in each stage.
    pub tcam_bits_per_stage: u64,
    /// VLIW action-instruction slots per stage.
    pub vliw_slots_per_stage: u32,
    /// Exact-match crossbar bits per stage (match key width budget).
    pub exact_xbar_bits_per_stage: u32,
    /// Ternary-match crossbar bits per stage.
    pub ternary_xbar_bits_per_stage: u32,
    /// Packet Header Vector capacity in bits.
    pub phv_bits: u32,
    /// Maximum MATs that may be placed in one stage.
    pub max_mats_per_stage: usize,
    /// Nanoseconds for one traversal of the pipeline (parser → deparser).
    pub pipeline_latency_ns: u64,
    /// Additional nanoseconds charged per recirculation pass ("on the order
    /// of 10s of ns", paper §6.2.5).
    pub recirculation_penalty_ns: u64,
    /// Maximum recirculation passes before the packet is dropped (guards the
    /// emulator against mis-programmed loops).
    pub max_recirculations: u32,
    /// Recirculation channels available per pipe; each maps to a distinct
    /// virtual ingress port so the parser can branch on direction.
    pub recirc_channels_per_pipe: u8,
}

impl Default for ChipProfile {
    fn default() -> Self {
        ChipProfile {
            pipes: 4,
            stages_per_pipe: 12,
            ports_per_pipe: 16,
            // 320 KB of register-capable SRAM per stage -> ~3.8 MB per
            // pipe, ~15 MB chip-wide. (The chip's *total* SRAM, most of it
            // match-table-only, sits in the 50-100 MB range the paper
            // cites for 6.4 Tbps switches.)
            sram_bits_per_stage: 327_680 * 8,
            // 24 TCAM blocks of 512 x 44b per stage.
            tcam_bits_per_stage: 24 * 512 * 44,
            vliw_slots_per_stage: 32,
            exact_xbar_bits_per_stage: 1024,
            ternary_xbar_bits_per_stage: 528,
            phv_bits: 4096,
            max_mats_per_stage: 16,
            pipeline_latency_ns: 400,
            recirculation_penalty_ns: 60,
            max_recirculations: 4,
            recirc_channels_per_pipe: 2,
        }
    }
}

impl ChipProfile {
    /// The pipe that owns `port`.
    ///
    /// Ports are numbered consecutively: pipe 0 gets ports `0..16`, pipe 1
    /// gets `16..32`, and so on (matching the paper's description of four
    /// sets of 16 ports sharing a pipe, §5).
    pub fn pipe_of(&self, port: PortId) -> usize {
        usize::from(port.0) / self.ports_per_pipe
    }

    /// Total ports on the chip.
    pub fn total_ports(&self) -> usize {
        self.pipes * self.ports_per_pipe
    }

    /// Total stage SRAM on the chip, in bytes.
    pub fn total_sram_bytes(&self) -> u64 {
        self.sram_bits_per_stage / 8 * self.stages_per_pipe as u64 * self.pipes as u64
    }

    /// Stage SRAM per pipe, in bytes.
    pub fn pipe_sram_bytes(&self) -> u64 {
        self.sram_bits_per_stage / 8 * self.stages_per_pipe as u64
    }

    /// The virtual ingress port for recirculation into `pipe` on `channel`.
    ///
    /// Recirculation ports are numbered after the front-panel ports.
    pub fn recirc_port(&self, pipe: usize, channel: u8) -> PortId {
        debug_assert!(channel < self.recirc_channels_per_pipe, "channel out of range");
        let base = self.total_ports();
        PortId(
            (base + pipe * usize::from(self.recirc_channels_per_pipe) + usize::from(channel))
                as u16,
        )
    }

    /// Validates internal consistency (positive budgets).
    pub fn validate(&self) -> Result<(), String> {
        if self.pipes == 0 || self.stages_per_pipe == 0 || self.ports_per_pipe == 0 {
            return Err("chip must have pipes, stages and ports".into());
        }
        if self.sram_bits_per_stage == 0 || self.phv_bits == 0 {
            return Err("chip must have SRAM and PHV capacity".into());
        }
        if self.max_mats_per_stage == 0 {
            return Err("chip must allow at least one MAT per stage".into());
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_profile_is_valid() {
        let p = ChipProfile::default();
        p.validate().unwrap();
        assert_eq!(p.total_ports(), 64);
        // ~15 MB chip-wide stateful SRAM.
        assert_eq!(p.total_sram_bytes(), 15_728_640);
        assert_eq!(p.pipe_sram_bytes(), 3_932_160);
    }

    #[test]
    fn pipe_of_maps_16_ports_per_pipe() {
        let p = ChipProfile::default();
        assert_eq!(p.pipe_of(PortId(0)), 0);
        assert_eq!(p.pipe_of(PortId(15)), 0);
        assert_eq!(p.pipe_of(PortId(16)), 1);
        assert_eq!(p.pipe_of(PortId(63)), 3);
    }

    #[test]
    fn invalid_profiles_rejected() {
        let p = ChipProfile { pipes: 0, ..Default::default() };
        assert!(p.validate().is_err());
        let p = ChipProfile { phv_bits: 0, ..Default::default() };
        assert!(p.validate().is_err());
        let p = ChipProfile { max_mats_per_stage: 0, ..Default::default() };
        assert!(p.validate().is_err());
    }

    #[test]
    fn port_display() {
        assert_eq!(PortId(7).to_string(), "port7");
    }
}
