//! Chip resource profiles and port identifiers.

/// A switch port number (0-based, chip-wide).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct PortId(pub u16);

impl core::fmt::Display for PortId {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        write!(f, "port{}", self.0)
    }
}

/// A set of port numbers backed by a bit vector.
///
/// MAT gateways test port membership once per packet per table; a tree or
/// hash set spends more time walking nodes than the rest of the gateway
/// combined. This is a flat bitmap sized to the largest member, so
/// membership is one bounds check and one bit test.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct PortSet {
    bits: Vec<u64>,
}

impl PortSet {
    /// An empty set.
    pub fn new() -> Self {
        Self::default()
    }

    /// Inserts a port.
    pub fn insert(&mut self, port: u16) {
        let word = usize::from(port) / 64;
        if word >= self.bits.len() {
            self.bits.resize(word + 1, 0);
        }
        self.bits[word] |= 1u64 << (port % 64);
    }

    /// Whether `port` is a member.
    #[inline]
    pub fn contains(&self, port: u16) -> bool {
        match self.bits.get(usize::from(port) / 64) {
            Some(w) => w & (1u64 << (port % 64)) != 0,
            None => false,
        }
    }

    /// Number of member ports.
    pub fn len(&self) -> usize {
        self.bits.iter().map(|w| w.count_ones() as usize).sum()
    }

    /// True when no port is a member.
    pub fn is_empty(&self) -> bool {
        self.bits.iter().all(|w| *w == 0)
    }

    /// Iterates over the member ports in ascending order.
    pub fn iter(&self) -> impl Iterator<Item = u16> + '_ {
        self.bits.iter().enumerate().flat_map(|(word, &w)| {
            (0..64)
                .filter(move |bit| w & (1u64 << bit) != 0)
                .map(move |bit| (word * 64 + bit) as u16)
        })
    }
}

impl FromIterator<u16> for PortSet {
    fn from_iter<I: IntoIterator<Item = u16>>(iter: I) -> Self {
        let mut set = PortSet::new();
        for p in iter {
            set.insert(p);
        }
        set
    }
}

/// A map from port number to `T`, backed by a flat port-indexed vector.
///
/// Same rationale as [`PortSet`]: the parser consults per-port rules once
/// per packet, so lookups must be a single indexed load, not a tree walk.
/// Sized to the largest inserted port; suited to the small, dense port
/// numbers of a chip config, not to sparse arbitrary u16 keys.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct PortMap<T> {
    slots: Vec<Option<T>>,
}

impl<T> Default for PortMap<T> {
    fn default() -> Self {
        PortMap::new()
    }
}

impl<T> PortMap<T> {
    /// An empty map.
    pub fn new() -> Self {
        PortMap { slots: Vec::new() }
    }

    /// Maps `port` to `value`, replacing any previous mapping.
    pub fn insert(&mut self, port: u16, value: T) {
        let i = usize::from(port);
        if i >= self.slots.len() {
            self.slots.resize_with(i + 1, || None);
        }
        self.slots[i] = Some(value);
    }

    /// The value mapped to `port`, if any.
    #[inline]
    pub fn get(&self, port: u16) -> Option<&T> {
        self.slots.get(usize::from(port)).and_then(Option::as_ref)
    }

    /// Whether `port` has a mapping.
    pub fn contains(&self, port: u16) -> bool {
        self.get(port).is_some()
    }

    /// Number of mapped ports.
    pub fn len(&self) -> usize {
        self.slots.iter().filter(|s| s.is_some()).count()
    }

    /// True when no port is mapped.
    pub fn is_empty(&self) -> bool {
        self.slots.iter().all(Option::is_none)
    }

    /// Iterates over `(port, value)` pairs in ascending port order.
    pub fn iter(&self) -> impl Iterator<Item = (u16, &T)> {
        self.slots.iter().enumerate().filter_map(|(p, s)| s.as_ref().map(|v| (p as u16, v)))
    }
}

impl<T> FromIterator<(u16, T)> for PortMap<T> {
    fn from_iter<I: IntoIterator<Item = (u16, T)>>(iter: I) -> Self {
        let mut map = PortMap::new();
        for (p, v) in iter {
            map.insert(p, v);
        }
        map
    }
}

/// Static resource budgets of the emulated ASIC.
///
/// The paper withholds the Tofino's exact numbers for confidentiality (§5
/// footnote 2); these defaults are drawn from public descriptions of
/// 6.4 Tbps RMT chips — 4 pipes of 12 stages, 16 × 100 GbE ports per pipe,
/// and a ~15 MB register-capable SRAM partition — and can be overridden per run.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ChipProfile {
    /// Number of independent pipes. Pipes do not share stateful memory.
    pub pipes: usize,
    /// Match-action stages per pipe.
    pub stages_per_pipe: usize,
    /// Front-panel ports attached to each pipe.
    pub ports_per_pipe: usize,
    /// SRAM bits available per stage for *stateful* use (register arrays
    /// plus the match tables the program declares). This models the
    /// register-capable partition of a stage's SRAM, not the whole match
    /// memory; resource percentages are reported against it.
    pub sram_bits_per_stage: u64,
    /// TCAM bits available in each stage.
    pub tcam_bits_per_stage: u64,
    /// VLIW action-instruction slots per stage.
    pub vliw_slots_per_stage: u32,
    /// Exact-match crossbar bits per stage (match key width budget).
    pub exact_xbar_bits_per_stage: u32,
    /// Ternary-match crossbar bits per stage.
    pub ternary_xbar_bits_per_stage: u32,
    /// Packet Header Vector capacity in bits.
    pub phv_bits: u32,
    /// Maximum MATs that may be placed in one stage.
    pub max_mats_per_stage: usize,
    /// Nanoseconds for one traversal of the pipeline (parser → deparser).
    pub pipeline_latency_ns: u64,
    /// Additional nanoseconds charged per recirculation pass ("on the order
    /// of 10s of ns", paper §6.2.5).
    pub recirculation_penalty_ns: u64,
    /// Maximum recirculation passes before the packet is dropped (guards the
    /// emulator against mis-programmed loops).
    pub max_recirculations: u32,
    /// Recirculation channels available per pipe; each maps to a distinct
    /// virtual ingress port so the parser can branch on direction.
    pub recirc_channels_per_pipe: u8,
}

impl Default for ChipProfile {
    fn default() -> Self {
        ChipProfile {
            pipes: 4,
            stages_per_pipe: 12,
            ports_per_pipe: 16,
            // 320 KB of register-capable SRAM per stage -> ~3.8 MB per
            // pipe, ~15 MB chip-wide. (The chip's *total* SRAM, most of it
            // match-table-only, sits in the 50-100 MB range the paper
            // cites for 6.4 Tbps switches.)
            sram_bits_per_stage: 327_680 * 8,
            // 24 TCAM blocks of 512 x 44b per stage.
            tcam_bits_per_stage: 24 * 512 * 44,
            vliw_slots_per_stage: 32,
            exact_xbar_bits_per_stage: 1024,
            ternary_xbar_bits_per_stage: 528,
            phv_bits: 4096,
            max_mats_per_stage: 16,
            pipeline_latency_ns: 400,
            recirculation_penalty_ns: 60,
            max_recirculations: 4,
            recirc_channels_per_pipe: 2,
        }
    }
}

impl ChipProfile {
    /// The pipe that owns `port`.
    ///
    /// Ports are numbered consecutively: pipe 0 gets ports `0..16`, pipe 1
    /// gets `16..32`, and so on (matching the paper's description of four
    /// sets of 16 ports sharing a pipe, §5).
    pub fn pipe_of(&self, port: PortId) -> usize {
        usize::from(port.0) / self.ports_per_pipe
    }

    /// Total ports on the chip.
    pub fn total_ports(&self) -> usize {
        self.pipes * self.ports_per_pipe
    }

    /// Total stage SRAM on the chip, in bytes.
    pub fn total_sram_bytes(&self) -> u64 {
        self.sram_bits_per_stage / 8 * self.stages_per_pipe as u64 * self.pipes as u64
    }

    /// Stage SRAM per pipe, in bytes.
    pub fn pipe_sram_bytes(&self) -> u64 {
        self.sram_bits_per_stage / 8 * self.stages_per_pipe as u64
    }

    /// The virtual ingress port for recirculation into `pipe` on `channel`.
    ///
    /// Recirculation ports are numbered after the front-panel ports.
    pub fn recirc_port(&self, pipe: usize, channel: u8) -> PortId {
        debug_assert!(channel < self.recirc_channels_per_pipe, "channel out of range");
        let base = self.total_ports();
        PortId(
            (base + pipe * usize::from(self.recirc_channels_per_pipe) + usize::from(channel))
                as u16,
        )
    }

    /// Validates internal consistency (positive budgets).
    pub fn validate(&self) -> Result<(), String> {
        if self.pipes == 0 || self.stages_per_pipe == 0 || self.ports_per_pipe == 0 {
            return Err("chip must have pipes, stages and ports".into());
        }
        if self.sram_bits_per_stage == 0 || self.phv_bits == 0 {
            return Err("chip must have SRAM and PHV capacity".into());
        }
        if self.max_mats_per_stage == 0 {
            return Err("chip must allow at least one MAT per stage".into());
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_profile_is_valid() {
        let p = ChipProfile::default();
        p.validate().unwrap();
        assert_eq!(p.total_ports(), 64);
        // ~15 MB chip-wide stateful SRAM.
        assert_eq!(p.total_sram_bytes(), 15_728_640);
        assert_eq!(p.pipe_sram_bytes(), 3_932_160);
    }

    #[test]
    fn pipe_of_maps_16_ports_per_pipe() {
        let p = ChipProfile::default();
        assert_eq!(p.pipe_of(PortId(0)), 0);
        assert_eq!(p.pipe_of(PortId(15)), 0);
        assert_eq!(p.pipe_of(PortId(16)), 1);
        assert_eq!(p.pipe_of(PortId(63)), 3);
    }

    #[test]
    fn invalid_profiles_rejected() {
        let p = ChipProfile { pipes: 0, ..Default::default() };
        assert!(p.validate().is_err());
        let p = ChipProfile { phv_bits: 0, ..Default::default() };
        assert!(p.validate().is_err());
        let p = ChipProfile { max_mats_per_stage: 0, ..Default::default() };
        assert!(p.validate().is_err());
    }

    #[test]
    fn port_display() {
        assert_eq!(PortId(7).to_string(), "port7");
    }

    #[test]
    fn port_set_membership_and_iteration() {
        let set: PortSet = [0u16, 5, 63, 64, 130].into_iter().collect();
        assert_eq!(set.len(), 5);
        assert!(!set.is_empty());
        for p in [0u16, 5, 63, 64, 130] {
            assert!(set.contains(p), "port {p}");
        }
        for p in [1u16, 62, 65, 129, 131, 9999] {
            assert!(!set.contains(p), "port {p}");
        }
        assert_eq!(set.iter().collect::<Vec<_>>(), vec![0, 5, 63, 64, 130]);
        assert!(PortSet::new().is_empty());
        assert!(!PortSet::new().contains(0));
    }

    #[test]
    fn port_map_basics() {
        let mut map: PortMap<&str> = PortMap::new();
        assert!(map.is_empty());
        map.insert(3, "three");
        map.insert(64, "sixty-four");
        map.insert(3, "replaced");
        assert_eq!(map.len(), 2);
        assert_eq!(map.get(3), Some(&"replaced"));
        assert_eq!(map.get(64), Some(&"sixty-four"));
        assert_eq!(map.get(4), None);
        assert_eq!(map.get(1000), None);
        assert!(map.contains(64) && !map.contains(0));
        assert_eq!(map.iter().collect::<Vec<_>>(), vec![(3, &"replaced"), (64, &"sixty-four")]);
        let from: PortMap<u8> = [(1u16, 9u8)].into_iter().collect();
        assert_eq!(from.get(1), Some(&9));
    }
}
