//! Declarative dataflow summaries for MATs.
//!
//! A [`Mat`](crate::mat::Mat)'s gateway and action are opaque closures —
//! fast to dispatch, impossible to inspect. A [`MatSummary`] is the
//! side-channel a program author attaches to each table describing *what
//! the closures do* in a tiny effect language: which ingress ports the
//! gateway admits, which PHV facts it requires ([`Req`]), and which
//! [`Slot`]s the action reads, writes, validates or invalidates —
//! unconditionally ([`MatSummary::base`]) or on one of several action
//! branches ([`BranchSummary`]).
//!
//! The summary exists for static analysis: `pp_verify` walks summaries
//! (never closures) to prove header-validity def-use, reachability and
//! stage-locality properties at config time, off the packet hot path.
//! Summaries are trusted, not checked against the closures — keeping the
//! two in sync is the program author's contract, the same way a P4
//! program's control-plane annotations describe its tables.

use crate::chip::PortSet;

/// A PHV location a MAT may read, write, validate or invalidate.
///
/// Header slots (`Eth`..`Blocks`) model the parsed-header validity bits;
/// `Meta(w)` models user metadata word `w` (defined-ness rather than
/// validity: metadata is zero-initialised by the parser, so reading an
/// unwritten word is suspicious, not unsafe).
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum Slot {
    /// The Ethernet header (always extracted).
    Eth,
    /// The IPv4 header.
    Ipv4,
    /// The transport header (UDP or TCP).
    Transport,
    /// The PayloadPark shim header.
    Pp,
    /// The extracted payload blocks (coarse: "at least one block valid";
    /// the blocks vector itself is sized whenever a transport header was
    /// parsed, so *writing* blocks requires `Transport`, not `Blocks`).
    Blocks,
    /// User metadata word `w` (`phv.meta[w]`).
    Meta(u8),
}

impl Slot {
    /// True for `Meta(_)` slots.
    pub fn is_meta(self) -> bool {
        matches!(self, Slot::Meta(_))
    }
}

/// One conjunct of a gateway condition.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Req {
    /// The slot must be valid (headers) / defined (metadata).
    Valid(Slot),
    /// The slot must be invalid (e.g. "no payload block was extracted").
    Invalid(Slot),
    /// `pp.enb` must equal the given value (in addition to any
    /// `Valid(Pp)` conjunct).
    PpEnb(bool),
    /// Metadata word `w` was set non-zero by an earlier table's
    /// [`sets_flags`](Effects::sets_flags) — the intra-pipeline
    /// "guard flag" idiom (`META_SPLIT_OK`, `META_MERGE_OK`).
    MetaFlag(u8),
}

/// The effects of an action (or one branch of it) on the PHV.
#[derive(Debug, Clone, Default)]
pub struct Effects {
    /// Slots whose *contents* the action reads (beyond gateway checks).
    pub reads: Vec<Slot>,
    /// Slots whose contents the action writes.
    pub writes: Vec<Slot>,
    /// Header slots the action makes valid.
    pub sets_valid: Vec<Slot>,
    /// Header slots the action invalidates.
    pub sets_invalid: Vec<Slot>,
    /// New value of `pp.enb`, when the action assigns it.
    pub sets_enb: Option<bool>,
    /// Guard-flag metadata words the action sets non-zero (each implies a
    /// write of that `Meta` word).
    pub sets_flags: Vec<u8>,
    /// The action may set `verdict.drop`.
    pub drops: bool,
    /// The action may request recirculation on this channel.
    pub recirculates: Option<u8>,
}

/// A named conditional branch inside an action.
#[derive(Debug, Clone)]
pub struct BranchSummary {
    /// Short branch name, used in diagnostics ("split", "crc_fail", ...).
    pub name: &'static str,
    /// The branch's effects, in addition to the MAT's base effects.
    pub effects: Effects,
}

/// The set of ingress ports a gateway admits.
#[derive(Debug, Clone)]
pub enum PortDomain {
    /// The gateway does not test the ingress port.
    Any,
    /// The gateway admits exactly these ports.
    Set(PortSet),
}

impl PortDomain {
    /// Whether the domain admits `port`.
    pub fn admits(&self, port: u16) -> bool {
        match self {
            PortDomain::Any => true,
            PortDomain::Set(s) => s.contains(port),
        }
    }
}

/// The complete dataflow summary of one MAT. Build fluently:
///
/// ```
/// use pp_rmt::summary::{MatSummary, Req, Slot};
/// let s = MatSummary::on_ports([0u16, 1])
///     .require(Req::Valid(Slot::Transport))
///     .writes(Slot::Meta(4));
/// assert!(s.ports.admits(1));
/// ```
#[derive(Debug, Clone)]
pub struct MatSummary {
    /// Ingress ports the gateway admits.
    pub ports: PortDomain,
    /// Gateway conjuncts beyond the port test (all must hold to fire).
    pub requires: Vec<Req>,
    /// Effects that happen whenever the MAT fires.
    pub base: Effects,
    /// Mutually exclusive extra effect sets, at most one per firing.
    pub branches: Vec<BranchSummary>,
}

macro_rules! effect_methods {
    ($field:ident) => {
        /// Declares a slot the action reads.
        pub fn reads(mut self, s: Slot) -> Self {
            self.$field.reads.push(s);
            self
        }
        /// Declares a slot the action writes.
        pub fn writes(mut self, s: Slot) -> Self {
            self.$field.writes.push(s);
            self
        }
        /// Declares a header slot the action makes valid.
        pub fn sets_valid(mut self, s: Slot) -> Self {
            self.$field.sets_valid.push(s);
            self
        }
        /// Declares a header slot the action invalidates.
        pub fn sets_invalid(mut self, s: Slot) -> Self {
            self.$field.sets_invalid.push(s);
            self
        }
        /// Declares an assignment to `pp.enb`.
        pub fn sets_enb(mut self, v: bool) -> Self {
            self.$field.sets_enb = Some(v);
            self
        }
        /// Declares a guard flag (metadata word set non-zero).
        pub fn sets_flag(mut self, w: u8) -> Self {
            self.$field.sets_flags.push(w);
            self
        }
        /// Declares that the action may drop the packet.
        pub fn drops(mut self) -> Self {
            self.$field.drops = true;
            self
        }
        /// Declares that the action may recirculate on `channel`.
        pub fn recirculates(mut self, channel: u8) -> Self {
            self.$field.recirculates = Some(channel);
            self
        }
    };
}

impl MatSummary {
    /// A summary whose gateway does not test the ingress port.
    pub fn any_port() -> Self {
        MatSummary {
            ports: PortDomain::Any,
            requires: Vec::new(),
            base: Effects::default(),
            branches: Vec::new(),
        }
    }

    /// A summary admitting exactly the given ports.
    pub fn on_ports(ports: impl IntoIterator<Item = u16>) -> Self {
        MatSummary { ports: PortDomain::Set(ports.into_iter().collect()), ..Self::any_port() }
    }

    /// A summary admitting an already-built [`PortSet`].
    pub fn on_port_set(ports: PortSet) -> Self {
        MatSummary { ports: PortDomain::Set(ports), ..Self::any_port() }
    }

    /// Adds a gateway conjunct.
    pub fn require(mut self, r: Req) -> Self {
        self.requires.push(r);
        self
    }

    /// Adds a conditional branch.
    pub fn branch(mut self, b: BranchSummary) -> Self {
        self.branches.push(b);
        self
    }

    effect_methods!(base);

    /// All metadata words this summary reads (action reads plus
    /// `MetaFlag` gateway conjuncts), across base and branches.
    pub fn meta_reads(&self) -> impl Iterator<Item = u8> + '_ {
        let action = self.effect_sets().flat_map(|e| e.reads.iter()).filter_map(|s| match s {
            Slot::Meta(w) => Some(*w),
            _ => None,
        });
        let gateway = self.requires.iter().filter_map(|r| match r {
            Req::MetaFlag(w) => Some(*w),
            _ => None,
        });
        action.chain(gateway)
    }

    /// All metadata words this summary writes (action writes plus guard
    /// flags), across base and branches.
    pub fn meta_writes(&self) -> impl Iterator<Item = u8> + '_ {
        self.effect_sets().flat_map(|e| {
            e.writes
                .iter()
                .filter_map(|s| match s {
                    Slot::Meta(w) => Some(*w),
                    _ => None,
                })
                .chain(e.sets_flags.iter().copied())
        })
    }

    /// Base effects followed by every branch's effects.
    pub fn effect_sets(&self) -> impl Iterator<Item = &Effects> {
        std::iter::once(&self.base).chain(self.branches.iter().map(|b| &b.effects))
    }
}

impl BranchSummary {
    /// A new empty branch with the given diagnostic name.
    pub fn new(name: &'static str) -> Self {
        BranchSummary { name, effects: Effects::default() }
    }

    effect_methods!(effects);
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fluent_builders_accumulate() {
        let s = MatSummary::on_ports([3u16])
            .require(Req::Valid(Slot::Pp))
            .require(Req::PpEnb(true))
            .reads(Slot::Pp)
            .writes(Slot::Meta(5))
            .branch(BranchSummary::new("fail").drops())
            .branch(BranchSummary::new("ok").sets_flag(3).recirculates(1));
        assert!(s.ports.admits(3) && !s.ports.admits(4));
        assert_eq!(s.requires.len(), 2);
        assert_eq!(s.branches.len(), 2);
        assert!(s.branches[0].effects.drops);
        assert_eq!(s.branches[1].effects.recirculates, Some(1));
        let writes: Vec<u8> = s.meta_writes().collect();
        assert_eq!(writes, vec![5, 3]);
        let reads: Vec<u8> = s.meta_reads().collect();
        assert!(reads.is_empty());
    }

    #[test]
    fn meta_flag_counts_as_meta_read() {
        let s = MatSummary::any_port().require(Req::MetaFlag(2)).reads(Slot::Meta(0));
        let mut reads: Vec<u8> = s.meta_reads().collect();
        reads.sort_unstable();
        assert_eq!(reads, vec![0, 2]);
    }
}
