//! Property-based tests for the RMT emulator.

use proptest::prelude::*;

use pp_packet::builder::{TcpPacketBuilder, UdpPacketBuilder};
use pp_packet::MacAddr;
use pp_rmt::chip::ChipProfile;
use pp_rmt::parser::{deparse_phv, parse_packet, BlockRule, ParserConfig};
use pp_rmt::pipeline::Pipeline;
use pp_rmt::switch::SwitchModel;
use pp_rmt::{Phv, PortId};

fn l2_switch() -> SwitchModel {
    let chip = ChipProfile::default();
    let pipes = (0..chip.pipes).map(|_| Pipeline::builder(chip).build().unwrap()).collect();
    SwitchModel::new(chip, pipes)
}

/// Every [`Span`](pp_rmt::phv::Span) the parser produced must reference
/// bytes inside the source frame — the zero-copy deparser splices them
/// back without further bounds checks.
fn assert_spans_in_bounds(phv: &Phv, frame: &[u8]) -> Result<(), TestCaseError> {
    prop_assert!(phv.body.in_bounds(frame), "body span {:?} escapes frame", phv.body);
    if let Some(ip) = &phv.ipv4 {
        prop_assert!(ip.options.in_bounds(frame), "IP options span escapes frame");
    }
    if let Some(tcp) = &phv.tcp {
        prop_assert!(tcp.options.in_bounds(frame), "TCP options span escapes frame");
    }
    Ok(())
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(128))]

    /// Parse + deparse is the identity on any well-formed UDP packet, on
    /// any port and parser configuration (split-side, merge-side or plain),
    /// as long as no MAT modifies the PHV.
    #[test]
    fn parser_roundtrip_identity(
        size in 42usize..1492,
        seed in any::<u64>(),
        port in 0u16..8,
        blocks in 0usize..12,
        min_payload in 0usize..400,
    ) {
        let pkt = UdpPacketBuilder::new().total_size(size, seed).build();
        let mut cfg = ParserConfig { phv_block_capacity: blocks, ..Default::default() };
        if blocks > 0 {
            cfg.block_rules.insert(0, BlockRule { blocks, min_payload });
        }
        let phv = parse_packet(&cfg, pkt.bytes(), PortId(port), 0).unwrap();
        prop_assert_eq!(deparse_phv(&phv, pkt.bytes()), pkt.bytes());
    }

    /// An L2 switch is byte-transparent for any routed packet and drops
    /// (never corrupts) unrouted ones.
    #[test]
    fn l2_switch_is_transparent(
        size in 42usize..1200,
        seed in any::<u64>(),
        in_port in 0u16..64,
        dst_idx in 0u64..4,
        routed in any::<bool>(),
    ) {
        let mut sw = l2_switch();
        let dst = MacAddr::from_index(dst_idx);
        if routed {
            sw.l2_add(dst, PortId(9));
        }
        let pkt = UdpPacketBuilder::new().dst_mac(dst).total_size(size, seed).build();
        let out = sw.process(pkt.bytes(), PortId(in_port), 1);
        if routed {
            prop_assert_eq!(out.len(), 1);
            prop_assert_eq!(&out[0].bytes[..], pkt.bytes());
            prop_assert_eq!(out[0].port, PortId(9));
        } else {
            prop_assert!(out.is_empty());
            prop_assert_eq!(sw.stats().dropped_no_route, 1);
        }
    }

    /// Garbage bytes never panic the switch; they are counted as parse
    /// errors or forwarded opaquely, and never duplicated.
    #[test]
    fn switch_never_panics_on_garbage(data in proptest::collection::vec(any::<u8>(), 0..200)) {
        let mut sw = l2_switch();
        sw.l2_add(MacAddr::BROADCAST, PortId(1));
        let out = sw.process(&data, PortId(0), 0);
        prop_assert!(out.len() <= 1);
        let s = sw.stats();
        prop_assert_eq!(s.received, 1);
        prop_assert_eq!(s.emitted + s.parse_errors + s.dropped_no_route, 1);
    }

    /// Truncating a well-formed packet (UDP or TCP) at any point never
    /// panics the parser: it either rejects the prefix or yields a PHV
    /// whose spans all stay inside the truncated frame, and deparsing
    /// that PHV never reads out of bounds.
    #[test]
    fn parser_survives_truncation(
        size in 54usize..1492,
        seed in any::<u64>(),
        cut in 0usize..1492,
        tcp in any::<bool>(),
        port in 0u16..8,
    ) {
        let pkt = if tcp {
            TcpPacketBuilder::new().total_size(size, seed).build()
        } else {
            UdpPacketBuilder::new().total_size(size, seed).build()
        };
        let frame = &pkt.bytes()[..cut.min(pkt.len())];
        let mut cfg = ParserConfig { phv_block_capacity: 10, ..Default::default() };
        cfg.pp_header_ports.insert(1);
        cfg.block_rules.insert(0, BlockRule { blocks: 10, min_payload: 160 });
        if let Ok(phv) = parse_packet(&cfg, frame, PortId(port), 0) {
            assert_spans_in_bounds(&phv, frame)?;
            let out = deparse_phv(&phv, frame);
            prop_assert!(out.len() <= frame.len() + 16, "deparse invented bytes");
        }
    }

    /// Arbitrary garbage bytes — including mutated headers with lying
    /// length fields — never panic the parser, and any spans it hands out
    /// stay inside the frame.
    #[test]
    fn parser_survives_garbage(
        data in proptest::collection::vec(any::<u8>(), 0..256),
        port in 0u16..8,
    ) {
        let mut cfg = ParserConfig { phv_block_capacity: 10, ..Default::default() };
        cfg.pp_header_ports.insert(1);
        cfg.block_rules.insert(0, BlockRule { blocks: 10, min_payload: 160 });
        if let Ok(phv) = parse_packet(&cfg, &data, PortId(port), 0) {
            assert_spans_in_bounds(&phv, &data)?;
            deparse_phv(&phv, &data); // must not panic
        }
    }

    /// Flipping bytes of a well-formed packet (corrupting length fields,
    /// IHL, data offset, ethertype...) never panics parse or deparse.
    #[test]
    fn parser_survives_byte_flips(
        size in 54usize..600,
        seed in any::<u64>(),
        flips in proptest::collection::vec((0usize..600, any::<u8>()), 1..8),
        tcp in any::<bool>(),
    ) {
        let pkt = if tcp {
            TcpPacketBuilder::new().total_size(size, seed).build()
        } else {
            UdpPacketBuilder::new().total_size(size, seed).build()
        };
        let mut bytes = pkt.into_bytes();
        for (pos, val) in flips {
            let len = bytes.len();
            bytes[pos % len] = val;
        }
        let mut cfg = ParserConfig { phv_block_capacity: 10, ..Default::default() };
        cfg.block_rules.insert(0, BlockRule { blocks: 10, min_payload: 160 });
        if let Ok(phv) = parse_packet(&cfg, &bytes, PortId(0), 0) {
            assert_spans_in_bounds(&phv, &bytes)?;
            deparse_phv(&phv, &bytes); // must not panic
        }
    }

    /// Block extraction conserves bytes: valid blocks + body always equal
    /// the UDP payload.
    #[test]
    fn block_extraction_conserves_payload(
        size in 42usize..1492,
        seed in any::<u64>(),
        blocks in 1usize..12,
    ) {
        let pkt = UdpPacketBuilder::new().total_size(size, seed).build();
        let mut cfg = ParserConfig { phv_block_capacity: blocks, ..Default::default() };
        cfg.block_rules.insert(0, BlockRule { blocks, min_payload: 0 });
        let phv = parse_packet(&cfg, pkt.bytes(), PortId(0), 0).unwrap();
        prop_assert_eq!(phv.wire_payload_len(), size - 42);
    }
}
