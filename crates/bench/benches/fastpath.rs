//! The `pp_fastpath` bench: packets/sec of the full Split → NF → Merge
//! round trip, scalar pipeline vs the sharded, batched engine at
//! 1/2/4/8 workers over an 8-server §6.2.4 slicing
//! ([`pp_fastpath::SlicedTestbed`], the same rig the equivalence oracle
//! and `pp-exp throughput` use).
//!
//! Engines are built once per target, so the worker threads are warm and
//! iterations measure the steady state. Both sides clone the input wave
//! per iteration (the engine consumes its inputs), keeping the comparison
//! apples-to-apples. Speedup over scalar scales with the host's core
//! count: each worker runs a full dataplane, so N cores can retire ~N
//! shards' worth of batches concurrently, while a single-core host merely
//! time-slices them. `PP_BENCH_FAST=1` shrinks the measurement to a smoke
//! pass, as for the other targets.

use criterion::{criterion_group, criterion_main, Criterion, Throughput};
use pp_fastpath::{EngineConfig, SlicedTestbed};
use pp_netsim::time::SimDuration;
use pp_rmt::switch::BatchOutput;
use std::hint::black_box;

fn bench_fastpath(c: &mut Criterion) {
    let tb = SlicedTestbed::new(8, 2048);
    let wave = tb.enterprise_wave(11, SimDuration::from_millis(2));
    let n = wave.len() as u64;

    let mut g = c.benchmark_group("fastpath");
    g.throughput(Throughput::Elements(n));

    let (mut scalar, _) = tb.build_scalar();
    let mut merged = BatchOutput::new();
    g.bench_function("scalar_roundtrip", |b| {
        b.iter(|| {
            let inputs = wave.clone();
            tb.scalar_roundtrip_into(&mut scalar, &inputs, &mut merged);
            black_box(merged.len())
        })
    });

    // Telemetry (flight recorder + stage profiling) is on by default; this
    // leg is the same roundtrip with it switched off, so the trajectory
    // tracks the observability overhead (`pp-exp overhead` gates it ≤3 %).
    let (mut dark, _) = tb.build_scalar();
    dark.set_telemetry(false);
    g.bench_function("scalar_roundtrip_no_telemetry", |b| {
        b.iter(|| {
            let inputs = wave.clone();
            tb.scalar_roundtrip_into(&mut dark, &inputs, &mut merged);
            black_box(merged.len())
        })
    });

    for workers in [1usize, 2, 4, 8] {
        let mut engine = tb.build_engine(EngineConfig { workers, ..Default::default() }).unwrap();
        g.bench_function(&format!("engine_{workers}_workers"), |b| {
            b.iter(|| black_box(engine.process_roundtrip(wave.clone(), tb.sink_mac()).packets()))
        });
    }
    g.finish();
}

criterion_group!(fastpath, bench_fastpath);
criterion_main!(fastpath);
