//! Micro-benchmarks of the packet-processing hot paths: per-packet costs
//! of the dataplane emulator (split pass, merge pass, baseline L2), the
//! parser, checksums, and the Maglev lookup. These are ablation-style
//! measurements of the reproduction itself.

use criterion::{criterion_group, criterion_main, Criterion, Throughput};
use payloadpark::program::{build_baseline_switch, build_switch};
use payloadpark::ParkConfig;
use pp_packet::builder::UdpPacketBuilder;
use pp_packet::checksum::checksum;
use pp_packet::crc::tag_crc;
use pp_packet::parse::{FiveTuple, ParsedPacket};
use pp_packet::MacAddr;
use pp_rmt::chip::ChipProfile;
use pp_rmt::parser::{parse_packet, ParserConfig};
use pp_rmt::PortId;
use std::hint::black_box;
use std::net::Ipv4Addr;

fn bench_packet_primitives(c: &mut Criterion) {
    let pkt = UdpPacketBuilder::new().total_size(512, 7).build();
    let mut g = c.benchmark_group("packet");
    g.throughput(Throughput::Bytes(512));
    g.bench_function("parse_512B", |b| {
        b.iter(|| black_box(ParsedPacket::parse(pkt.bytes()).unwrap().five_tuple()))
    });
    g.bench_function("checksum_512B", |b| b.iter(|| black_box(checksum(pkt.bytes()))));
    g.bench_function("tag_crc", |b| b.iter(|| black_box(tag_crc(1234, 5678))));
    g.bench_function("build_512B", |b| {
        b.iter(|| black_box(UdpPacketBuilder::new().total_size(512, 7).build().len()))
    });
    g.finish();
}

fn bench_rmt_parser(c: &mut Criterion) {
    let pkt = UdpPacketBuilder::new().total_size(512, 7).build();
    let l2 = ParserConfig::l2_only();
    let split = {
        let mut p = ParserConfig { phv_block_capacity: 10, ..Default::default() };
        p.block_rules.insert(0, pp_rmt::BlockRule { blocks: 10, min_payload: 160 });
        p
    };
    let mut g = c.benchmark_group("rmt_parser");
    g.throughput(Throughput::Bytes(512));
    g.bench_function("parse_l2", |b| {
        b.iter(|| black_box(parse_packet(&l2, pkt.bytes(), PortId(0), 0).unwrap().body.len()))
    });
    g.bench_function("parse_split_blocks", |b| {
        b.iter(|| {
            black_box(parse_packet(&split, pkt.bytes(), PortId(0), 0).unwrap().valid_block_bytes())
        })
    });
    g.finish();
}

fn bench_switch_passes(c: &mut Criterion) {
    let chip = ChipProfile::default();
    let server_mac = MacAddr::from_index(100);
    let sink_mac = MacAddr::from_index(200);
    let pkt = UdpPacketBuilder::new().dst_mac(server_mac).total_size(512, 7).build();

    let mut baseline = build_baseline_switch(chip).unwrap();
    baseline.l2_add(server_mac, PortId(2));
    baseline.l2_add(sink_mac, PortId(3));

    let cfg = ParkConfig::single_server(chip, vec![0, 1], 2, 4096);
    let (mut park, _) = build_switch(&cfg).unwrap();
    park.l2_add(server_mac, PortId(2));
    park.l2_add(sink_mac, PortId(3));

    let mut g = c.benchmark_group("switch");
    g.throughput(Throughput::Elements(1));
    g.bench_function("baseline_l2_pass", |b| {
        b.iter(|| black_box(baseline.process(pkt.bytes(), PortId(0), 0).len()))
    });
    g.bench_function("split_then_merge", |b| {
        b.iter(|| {
            let out = park.process(pkt.bytes(), PortId(0), 0);
            let mut back = out[0].bytes.clone();
            back[0..6].copy_from_slice(&sink_mac.0);
            black_box(park.process(&back, PortId(2), 0).len())
        })
    });
    g.finish();
}

fn bench_nfs(c: &mut Criterion) {
    use pp_nf::chain::Nf;
    use pp_nf::nfs::maglev::{Backend, MaglevLb};
    use pp_nf::nfs::{Firewall, Nat};

    let mut g = c.benchmark_group("nfs");
    g.throughput(Throughput::Elements(1));

    let mut fw = Firewall::with_rule_count(20);
    let mut fw_pkt = UdpPacketBuilder::new().total_size(512, 1).build();
    g.bench_function("firewall_20_rules", |b| b.iter(|| black_box(fw.process(&mut fw_pkt).cycles)));

    let mut nat = Nat::new(Ipv4Addr::new(198, 51, 100, 1));
    let mut nat_pkt = UdpPacketBuilder::new().total_size(512, 1).build();
    g.bench_function("nat_flow_hit", |b| b.iter(|| black_box(nat.process(&mut nat_pkt).cycles)));

    let lb = MaglevLb::with_table_size(
        (0..8)
            .map(|i| Backend { name: format!("b{i}"), ip: Ipv4Addr::new(10, 50, 0, i as u8 + 1) })
            .collect(),
        65_537,
    );
    let ft = FiveTuple {
        src_ip: Ipv4Addr::new(9, 9, 9, 9),
        dst_ip: Ipv4Addr::new(10, 0, 0, 2),
        src_port: 77,
        dst_port: 80,
        protocol: 17,
    };
    g.bench_function("maglev_lookup", |b| b.iter(|| black_box(lb.backend_for(&ft).ip)));
    g.bench_function("maglev_table_build_8x65537", |b| {
        b.iter(|| {
            let lb = MaglevLb::with_table_size(
                (0..8)
                    .map(|i| Backend {
                        name: format!("b{i}"),
                        ip: Ipv4Addr::new(10, 50, 0, i as u8 + 1),
                    })
                    .collect(),
                65_537,
            );
            black_box(lb.slot_distribution().len())
        })
    });
    g.finish();
}

criterion_group!(
    hotpaths,
    bench_packet_primitives,
    bench_rmt_parser,
    bench_switch_passes,
    bench_nfs
);
criterion_main!(hotpaths);
