//! Parse → deparse round-trip micro-benchmarks for the zero-copy hot
//! path: [`parse_packet_into`] fills a recycled PHV whose body/options are
//! [`Span`]s into the source frame, and [`deparse_phv_into`] splices those
//! spans back into a recycled output arena. Measured for both transports
//! (UDP and TCP share the PayloadPark states of the parse graph) on the
//! plain L2 parser and on a split-port parser that lifts ten 16-byte
//! payload blocks into the PHV.
//!
//! [`Span`]: pp_rmt::phv::Span

use criterion::{criterion_group, criterion_main, Criterion, Throughput};
use pp_packet::builder::{TcpPacketBuilder, UdpPacketBuilder};
use pp_rmt::parser::{deparse_phv_into, parse_packet_into, ParserConfig};
use pp_rmt::{BlockRule, Phv, PortId};
use std::hint::black_box;

const PKT_SIZE: usize = 512;

fn split_config() -> ParserConfig {
    let mut cfg = ParserConfig { phv_block_capacity: 10, ..Default::default() };
    cfg.block_rules.insert(0, BlockRule { blocks: 10, min_payload: 160 });
    cfg
}

/// One steady-state round trip: recycled PHV in, recycled arena out.
fn roundtrip(cfg: &ParserConfig, bytes: &[u8], phv: &mut Phv, out: &mut Vec<u8>) -> usize {
    parse_packet_into(cfg, bytes, PortId(0), 0, phv).unwrap();
    out.clear();
    deparse_phv_into(phv, bytes, out);
    out.len()
}

fn bench_parse_deparse(c: &mut Criterion) {
    let udp = UdpPacketBuilder::new().total_size(PKT_SIZE, 7).build();
    let tcp = TcpPacketBuilder::new().total_size(PKT_SIZE, 7).build();
    let l2 = ParserConfig::l2_only();
    let split = split_config();

    let mut g = c.benchmark_group("parse_deparse");
    g.throughput(Throughput::Bytes(PKT_SIZE as u64));
    for (name, cfg, pkt) in [
        ("udp_l2_512B", &l2, &udp),
        ("tcp_l2_512B", &l2, &tcp),
        ("udp_split_512B", &split, &udp),
        ("tcp_split_512B", &split, &tcp),
    ] {
        let mut phv = Phv::default();
        let mut out = Vec::new();
        // Warm the recycled buffers so the timed loop is allocation-free.
        roundtrip(cfg, pkt.bytes(), &mut phv, &mut out);
        assert_eq!(out, pkt.bytes(), "{name}: round trip must be the identity");
        g.bench_function(name, |b| {
            b.iter(|| black_box(roundtrip(cfg, pkt.bytes(), &mut phv, &mut out)))
        });
    }
    g.finish();
}

criterion_group!(parse_deparse, bench_parse_deparse);
criterion_main!(parse_deparse);
