//! One Criterion benchmark per paper figure/table.
//!
//! Each bench exercises the distinctive configuration of its figure — the
//! chain, workload, deployment and switch program — as a single
//! representative testbed run (the full sweeps that regenerate the series
//! live in `pp-exp`; running a whole sweep per Criterion sample would take
//! hours). `fig06` and `table1` are cheap enough to run whole.

use criterion::{criterion_group, criterion_main, Criterion};
use pp_harness::experiments::{fig06, table1};
use pp_harness::multiserver::{run_pipe, MultiServerConfig};
use pp_harness::testbed::{run, ChainSpec, DeployMode, FrameworkKind, ParkParams, TestbedConfig};
use pp_netsim::time::SimDuration;
use pp_nf::nfs::NF_MEDIUM_CYCLES;
use pp_nf::server::ServerProfile;
use pp_trafficgen::gen::SizeModel;
use std::hint::black_box;
use std::time::Duration;

fn server() -> ServerProfile {
    ServerProfile { cpu_hz: 2.3e9, ..Default::default() }
}

fn cfg(
    nic: f64,
    rate: f64,
    sizes: SizeModel,
    chain: ChainSpec,
    fw: FrameworkKind,
    mode: DeployMode,
) -> TestbedConfig {
    TestbedConfig {
        nic_gbps: nic,
        rate_gbps: rate,
        sizes,
        mix: pp_trafficgen::gen::TrafficMix::UdpOnly,
        duration: SimDuration::from_millis(3),
        chain,
        framework: fw,
        server: server(),
        flows: 64,
        seed: 5,
        mode,
        ..Default::default()
    }
}

fn park() -> DeployMode {
    DeployMode::PayloadPark(ParkParams::default())
}

fn bench_figures(c: &mut Criterion) {
    let mut g = c.benchmark_group("figures");
    g.sample_size(10);
    g.warm_up_time(Duration::from_millis(500));
    g.measurement_time(Duration::from_secs(5));

    g.bench_function("fig06_workload_cdf", |b| b.iter(|| black_box(fig06().points().len())));

    // Fig 7 / Fig 13: FW→NAT→LB on NetBricks, 10GE enterprise, at 11 Gbps.
    let fig07_cfg = |recirc| {
        let mode =
            DeployMode::PayloadPark(ParkParams { recirculation: recirc, ..Default::default() });
        cfg(
            10.0,
            11.0,
            SizeModel::Enterprise,
            ChainSpec::FwNatLb { fw_rules: 20 },
            FrameworkKind::NetBricks,
            mode,
        )
    };
    g.bench_function("fig07_chain_goodput", |b| {
        let c = fig07_cfg(false);
        b.iter(|| black_box(run(&c).goodput_gbps))
    });
    g.bench_function("fig13_recirculation", |b| {
        let c = fig07_cfg(true);
        b.iter(|| black_box(run(&c).goodput_gbps))
    });

    // Fig 8/9: fixed 384 B, FW→NAT on OpenNetVM at 40GE.
    g.bench_function("fig08_fig09_fixed_sizes", |b| {
        let c = cfg(
            40.0,
            14.0,
            SizeModel::Fixed(384),
            ChainSpec::FwNat { fw_rules: 1 },
            FrameworkKind::OpenNetVm,
            park(),
        );
        b.iter(|| {
            let r = run(&c);
            black_box((r.goodput_gbps, r.pcie_gbps))
        })
    });

    // Fig 10/11: the two-slice multi-server pipe.
    g.bench_function("fig10_fig11_multi_server", |b| {
        let c = MultiServerConfig {
            rate_gbps: 4.0,
            duration: SimDuration::from_millis(3),
            mode: DeployMode::PayloadPark(ParkParams { sram_fraction: 0.40, ..Default::default() }),
            ..Default::default()
        };
        b.iter(|| black_box(run_pipe(&c)[0].goodput_gbps))
    });

    // Fig 12: FW(40% drops)→NAT with explicit drops at EXP=10.
    g.bench_function("fig12_explicit_drop", |b| {
        let c = cfg(
            40.0,
            6.0,
            SizeModel::Enterprise,
            ChainSpec::FwNatBlacklist { blocked_pct: 40 },
            FrameworkKind::OpenNetVm,
            DeployMode::PayloadPark(ParkParams {
                expiry: 10,
                explicit_drop: true,
                ..Default::default()
            }),
        );
        b.iter(|| black_box(run(&c).goodput_gbps))
    });

    // Fig 14: the smallest memory fraction under load.
    g.bench_function("fig14_memory_sweep", |b| {
        let c = cfg(
            40.0,
            16.0,
            SizeModel::Fixed(384),
            ChainSpec::FwNat { fw_rules: 1 },
            FrameworkKind::OpenNetVm,
            DeployMode::PayloadPark(ParkParams {
                sram_fraction: 0.1781,
                expiry: 1,
                ..Default::default()
            }),
        );
        b.iter(|| black_box(run(&c).health.premature_eviction_drops))
    });

    // Fig 15: NF-Medium at 256 B.
    g.bench_function("fig15_nf_cycles", |b| {
        let c = cfg(
            40.0,
            10.0,
            SizeModel::Fixed(256),
            ChainSpec::Synthetic { cycles: NF_MEDIUM_CYCLES },
            FrameworkKind::OpenNetVm,
            park(),
        );
        b.iter(|| black_box(run(&c).goodput_gbps))
    });

    // Fig 16: 512 B past the baseline's saturation.
    g.bench_function("fig16_small_packets", |b| {
        let c = cfg(
            40.0,
            18.0,
            SizeModel::Fixed(512),
            ChainSpec::FwNat { fw_rules: 1 },
            FrameworkKind::OpenNetVm,
            park(),
        );
        b.iter(|| black_box(run(&c).avg_latency_us))
    });

    // §6.2.1 headline: enterprise FW→NAT at 40GE.
    g.bench_function("headline_sec621", |b| {
        let c = cfg(
            40.0,
            12.0,
            SizeModel::Enterprise,
            ChainSpec::FwNat { fw_rules: 1 },
            FrameworkKind::OpenNetVm,
            park(),
        );
        b.iter(|| black_box(run(&c).pcie_gbps))
    });

    g.bench_function("table1_resources", |b| b.iter(|| black_box(table1().len())));

    g.finish();
}

criterion_group!(figures, bench_figures);
criterion_main!(figures);
