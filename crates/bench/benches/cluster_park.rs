//! The `cluster_park` bench: packets/sec of the full Split → NF → Merge
//! round trip through the distributed parking tier at 1/2/4 switches,
//! over the shared 8-server slicing with the generational slab store
//! (the same rig `pp-exp cluster` times and the cluster conformance
//! suite pins to the scalar reference at N = 1).
//!
//! Clusters are rebuilt per iteration batch start (state is cheap: the
//! wave fully merges, so a warm cluster re-enters each iteration empty);
//! both the one-switch anchor and the multi-switch rows clone the input
//! wave per iteration, keeping the comparison apples-to-apples with the
//! `fastpath` targets. `PP_BENCH_FAST=1` shrinks the measurement to a
//! smoke pass, as for the other targets.

use criterion::{criterion_group, criterion_main, Criterion, Throughput};
use pp_cluster::{Cluster, ClusterConfig};
use pp_fastpath::SlicedTestbed;
use pp_netsim::adversity::{AdversityProfile, FaultTally};
use std::hint::black_box;

fn bench_cluster_park(c: &mut Criterion) {
    let tb = SlicedTestbed::new(8, 512);
    let wave = tb.counted_enterprise_wave(21, 2000);
    let n = wave.len() as u64;
    let calm = AdversityProfile::disabled();

    let mut g = c.benchmark_group("cluster_park");
    g.throughput(Throughput::Elements(n));

    for switches in [1usize, 2, 4] {
        let mut cluster = Cluster::new(&tb.config(), ClusterConfig::slab(switches)).unwrap();
        tb.wire(&mut |mac, port| cluster.l2_add(mac, port));
        let mut tally = FaultTally::default();
        g.bench_function(&format!("roundtrip_{switches}_switches"), |b| {
            b.iter(|| {
                let merged = cluster.roundtrip_adverse(&wave, tb.sink_mac(), &calm, &mut tally);
                black_box(merged.len())
            })
        });
        assert_eq!(cluster.occupancy(), 0, "bench wave must fully merge");
        cluster.check_oracle().assert_ok();
    }
    g.finish();
}

criterion_group!(cluster_park, bench_cluster_park);
criterion_main!(cluster_park);
