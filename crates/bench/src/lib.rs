//! Criterion benchmark harness.
//!
//! `benches/figures.rs` wraps every experiment runner of `pp-harness` (one
//! Criterion group per paper figure/table) at `Quick` effort, so
//! `cargo bench` regenerates each series in bounded time and tracks the
//! simulator's own performance run-over-run. `benches/hotpaths.rs` micro-
//! benchmarks the packet-processing primitives (parser, split/merge pass,
//! Maglev lookup, checksum).
//!
//! The full-effort sweeps — the numbers quoted in EXPERIMENTS.md — come
//! from `cargo run --release -p pp-harness --bin pp-exp -- all`.

/// Re-exported for the bench targets.
pub use pp_harness::experiments;
