//! Goodput measurement.
//!
//! "PayloadPark is a goodput optimization, which we measure from the RMT
//! switch's perspective. We use a UDP header as the unit of useful
//! information" (§6.1). Every packet that completes the round trip
//! (generator → switch → NF chain → switch → generator) delivers one UDP
//! header's worth — 336 bits — of useful information.

use pp_netsim::time::SimTime;

/// Bits of useful information per delivered packet: the 42-byte
/// Ethernet+IPv4+UDP header stack.
pub const USEFUL_BITS_PER_PACKET: f64 = 336.0;

/// Counts delivered packets and computes goodput.
#[derive(Debug, Clone, Copy, Default, PartialEq)]
pub struct GoodputMeter {
    delivered: u64,
    delivered_wire_bytes: u64,
    first: Option<SimTime>,
    last: Option<SimTime>,
}

impl GoodputMeter {
    /// Creates an empty meter.
    pub fn new() -> Self {
        Self::default()
    }

    /// Records one packet delivered back to the generator at `t` with
    /// `wire_bytes` on the wire.
    pub fn record(&mut self, t: SimTime, wire_bytes: usize) {
        self.delivered += 1;
        self.delivered_wire_bytes += wire_bytes as u64;
        if self.first.is_none() {
            self.first = Some(t);
        }
        self.last = Some(t);
    }

    /// Packets delivered.
    pub fn delivered(&self) -> u64 {
        self.delivered
    }

    /// Goodput in Gbps over the window `[0, duration]`.
    pub fn goodput_gbps(&self, duration_ns: u64) -> f64 {
        if duration_ns == 0 {
            return 0.0;
        }
        self.delivered as f64 * USEFUL_BITS_PER_PACKET / duration_ns as f64
    }

    /// Delivered throughput (wire bytes) in Gbps over `[0, duration]` — the
    /// conventional throughput, for comparison.
    pub fn throughput_gbps(&self, duration_ns: u64) -> f64 {
        if duration_ns == 0 {
            return 0.0;
        }
        self.delivered_wire_bytes as f64 * 8.0 / duration_ns as f64
    }

    /// Delivered packet rate in Mpps over `[0, duration]`.
    pub fn rate_mpps(&self, duration_ns: u64) -> f64 {
        if duration_ns == 0 {
            return 0.0;
        }
        self.delivered as f64 / duration_ns as f64 * 1e3
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn unit_is_336_bits() {
        assert_eq!(USEFUL_BITS_PER_PACKET, 336.0);
    }

    #[test]
    fn goodput_matches_hand_computation() {
        let mut m = GoodputMeter::new();
        // 1000 packets over 1 ms.
        for i in 0..1000u64 {
            m.record(SimTime(i * 1_000), 882);
        }
        // 1 Mpps × 336 bits = 0.336 Gbps.
        let g = m.goodput_gbps(1_000_000);
        assert!((g - 0.336).abs() < 1e-9, "{g}");
        let t = m.throughput_gbps(1_000_000);
        assert!((t - 882.0 * 8.0 / 1000.0).abs() < 1e-9, "{t}");
        assert!((m.rate_mpps(1_000_000) - 1.0).abs() < 1e-9);
        assert_eq!(m.delivered(), 1000);
    }

    #[test]
    fn empty_meter_reports_zero() {
        let m = GoodputMeter::new();
        assert_eq!(m.goodput_gbps(1_000), 0.0);
        assert_eq!(m.goodput_gbps(0), 0.0);
        assert_eq!(m.throughput_gbps(0), 0.0);
        assert_eq!(m.rate_mpps(0), 0.0);
    }

    #[test]
    fn paper_sanity_check_500b_at_40g() {
        // §1: 10 Mpps of 500-byte packets saturates 40 Gbps but yields only
        // 3.36 Gbps of goodput.
        let mut m = GoodputMeter::new();
        for i in 0..10_000u64 {
            m.record(SimTime(i * 100), 500);
        }
        let g = m.goodput_gbps(1_000_000);
        assert!((g - 3.36).abs() < 1e-9, "{g}");
        let t = m.throughput_gbps(1_000_000);
        assert!((t - 40.0).abs() < 1e-9, "{t}");
    }
}
