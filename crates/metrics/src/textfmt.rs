//! Prometheus text exposition format for a [`MetricsRegistry`].
//!
//! [`render`] emits the version-0.0.4 text format: one `# HELP` / `# TYPE`
//! pair per metric family followed by every sample of that family, in
//! registration order. No timestamps are emitted and floats render through
//! a fixed formatter, so the output is byte-stable for a deterministic run
//! — the golden-snapshot test and CI's artifact diff rely on that.
//!
//! Conventions enforced here (and checked by the exposition test):
//! counters end in `_total`, high-water marks render as gauges (Prometheus
//! has no native max-aggregation type), histograms expand to cumulative
//! `_bucket{le="..."}` samples plus `_sum` and `_count`.

use crate::registry::{bucket_upper_bound, Metric, MetricKind, MetricsRegistry, HISTOGRAM_BUCKETS};

/// Renders the whole registry in Prometheus text format.
pub fn render(registry: &MetricsRegistry) -> String {
    let mut out = String::new();
    let metrics = registry.metrics();
    for (i, m) in metrics.iter().enumerate() {
        // HELP/TYPE once per family: only for the first sample of a name.
        if !metrics[..i].iter().any(|p| p.name() == m.name()) {
            render_header(&mut out, m);
        }
        render_samples(&mut out, m);
    }
    out
}

fn render_header(out: &mut String, m: &Metric) {
    out.push_str("# HELP ");
    out.push_str(m.name());
    out.push(' ');
    out.push_str(&escape_help(m.help()));
    out.push('\n');
    out.push_str("# TYPE ");
    out.push_str(m.name());
    out.push(' ');
    out.push_str(match m.kind() {
        MetricKind::Counter => "counter",
        MetricKind::Gauge | MetricKind::Highwater => "gauge",
        MetricKind::Histogram => "histogram",
    });
    out.push('\n');
}

fn render_samples(out: &mut String, m: &Metric) {
    match m.histogram() {
        None => {
            out.push_str(m.name());
            render_labels(out, m.labels(), None);
            out.push(' ');
            out.push_str(&format_value(m.value()));
            out.push('\n');
        }
        Some((buckets, sum, count)) => {
            let mut cumulative = 0u64;
            for (i, &c) in buckets.iter().enumerate() {
                cumulative += c;
                let le = if i == HISTOGRAM_BUCKETS - 1 {
                    "+Inf".to_string()
                } else {
                    bucket_upper_bound(i).to_string()
                };
                out.push_str(m.name());
                out.push_str("_bucket");
                render_labels(out, m.labels(), Some(&le));
                out.push(' ');
                out.push_str(&cumulative.to_string());
                out.push('\n');
            }
            out.push_str(m.name());
            out.push_str("_sum");
            render_labels(out, m.labels(), None);
            out.push(' ');
            out.push_str(&sum.to_string());
            out.push('\n');
            out.push_str(m.name());
            out.push_str("_count");
            render_labels(out, m.labels(), None);
            out.push(' ');
            out.push_str(&count.to_string());
            out.push('\n');
        }
    }
}

fn render_labels(out: &mut String, labels: &[(String, String)], le: Option<&str>) {
    if labels.is_empty() && le.is_none() {
        return;
    }
    out.push('{');
    let mut first = true;
    for (k, v) in labels {
        if !first {
            out.push(',');
        }
        first = false;
        out.push_str(k);
        out.push_str("=\"");
        out.push_str(&escape_label(v));
        out.push('"');
    }
    if let Some(le) = le {
        if !first {
            out.push(',');
        }
        out.push_str("le=\"");
        out.push_str(le);
        out.push('"');
    }
    out.push('}');
}

/// Deterministic value formatting: integral values (the common case —
/// counters, occupancy, high-water marks) print without a fraction;
/// everything else prints with full round-trip precision.
fn format_value(v: f64) -> String {
    if v.is_finite() && v.fract() == 0.0 && v.abs() < 1e15 {
        format!("{}", v as i64)
    } else {
        format!("{v}")
    }
}

fn escape_help(s: &str) -> String {
    s.replace('\\', "\\\\").replace('\n', "\\n")
}

fn escape_label(s: &str) -> String {
    s.replace('\\', "\\\\").replace('"', "\\\"").replace('\n', "\\n")
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn scalar_families_render_in_registration_order() {
        let mut r = MetricsRegistry::new();
        let c0 = r.counter("pp_splits_total", "Successful Split operations.", &[("pipe", "0")]);
        let c1 = r.counter("pp_splits_total", "Successful Split operations.", &[("pipe", "1")]);
        let g = r.gauge("pp_park_occupancy_slots", "Occupied park-table slots.", &[]);
        let h = r.highwater("pp_ring_depth_highwater", "SPSC ring depth.", &[("shard", "0")]);
        r.inc(c0, 12);
        r.inc(c1, 3);
        r.set(g, 7.0);
        r.observe_high(h, 5);
        let text = render(&r);
        assert_eq!(
            text,
            "# HELP pp_splits_total Successful Split operations.\n\
             # TYPE pp_splits_total counter\n\
             pp_splits_total{pipe=\"0\"} 12\n\
             pp_splits_total{pipe=\"1\"} 3\n\
             # HELP pp_park_occupancy_slots Occupied park-table slots.\n\
             # TYPE pp_park_occupancy_slots gauge\n\
             pp_park_occupancy_slots 7\n\
             # HELP pp_ring_depth_highwater SPSC ring depth.\n\
             # TYPE pp_ring_depth_highwater gauge\n\
             pp_ring_depth_highwater{shard=\"0\"} 5\n"
        );
    }

    #[test]
    fn histograms_render_cumulative_buckets() {
        let mut r = MetricsRegistry::new();
        let h = r.histogram("pp_batch_pkts", "Packets per batch.", &[]);
        r.observe(h, 1);
        r.observe(h, 3);
        let text = render(&r);
        assert!(text.contains("# TYPE pp_batch_pkts histogram\n"), "{text}");
        assert!(text.contains("pp_batch_pkts_bucket{le=\"1\"} 1\n"), "{text}");
        // Cumulative: the le=4 bucket includes both samples.
        assert!(text.contains("pp_batch_pkts_bucket{le=\"4\"} 2\n"), "{text}");
        assert!(text.contains("pp_batch_pkts_bucket{le=\"+Inf\"} 2\n"), "{text}");
        assert!(text.ends_with("pp_batch_pkts_sum 4\npp_batch_pkts_count 2\n"), "{text}");
    }

    #[test]
    fn rendering_is_byte_stable() {
        let mut r = MetricsRegistry::new();
        let g = r.gauge("pp_goodput_gbps", "Goodput.", &[]);
        r.set(g, 38.4375);
        assert_eq!(render(&r), render(&r));
        assert!(render(&r).contains("pp_goodput_gbps 38.4375\n"));
    }
}
