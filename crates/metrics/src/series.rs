//! Sweep results as paper-style text tables.
//!
//! Every experiment runner produces a [`Series`]: named columns over a
//! swept x-axis, rendered as an aligned text table (the repository's
//! equivalent of the paper's figures).

/// One row of a sweep.
#[derive(Debug, Clone, PartialEq)]
pub struct SeriesPoint {
    /// The x value (send rate, packet size, memory %, …).
    pub x: f64,
    /// One value per column.
    pub values: Vec<f64>,
}

/// A complete sweep result.
#[derive(Debug, Clone, PartialEq)]
pub struct Series {
    title: String,
    x_label: String,
    columns: Vec<String>,
    points: Vec<SeriesPoint>,
}

impl Series {
    /// Creates an empty series with the given column names.
    pub fn new(title: impl Into<String>, x_label: impl Into<String>, columns: Vec<String>) -> Self {
        Series { title: title.into(), x_label: x_label.into(), columns, points: Vec::new() }
    }

    /// Appends a row; the value count must match the column count.
    pub fn push(&mut self, x: f64, values: Vec<f64>) {
        assert_eq!(values.len(), self.columns.len(), "row width mismatch");
        self.points.push(SeriesPoint { x, values });
    }

    /// The rows.
    pub fn points(&self) -> &[SeriesPoint] {
        &self.points
    }

    /// The column names.
    pub fn columns(&self) -> &[String] {
        &self.columns
    }

    /// The series title.
    pub fn title(&self) -> &str {
        &self.title
    }

    /// Looks up a column index by name.
    pub fn column_index(&self, name: &str) -> Option<usize> {
        self.columns.iter().position(|c| c == name)
    }

    /// The values of one column across the sweep.
    pub fn column(&self, name: &str) -> Option<Vec<f64>> {
        let idx = self.column_index(name)?;
        Some(self.points.iter().map(|p| p.values[idx]).collect())
    }

    /// Renders an aligned text table.
    pub fn render(&self) -> String {
        let mut out = String::new();
        out.push_str(&format!("# {}\n", self.title));
        let mut header = format!("{:>14}", self.x_label);
        for c in &self.columns {
            header.push_str(&format!(" {c:>18}"));
        }
        out.push_str(&header);
        out.push('\n');
        out.push_str(&"-".repeat(header.len()));
        out.push('\n');
        for p in &self.points {
            out.push_str(&format!("{:>14.3}", p.x));
            for v in &p.values {
                out.push_str(&format!(" {v:>18.4}"));
            }
            out.push('\n');
        }
        out
    }

    /// Renders the series as a JSON object (title, x label, columns, and
    /// one `[x, v0, v1, …]` row per point) — the machine-readable twin of
    /// [`Series::render`], used by `pp-exp` subcommands that feed
    /// dashboards rather than eyes.
    pub fn render_json(&self) -> String {
        fn esc(s: &str) -> String {
            s.replace('\\', "\\\\").replace('"', "\\\"")
        }
        fn num(v: f64) -> String {
            if v.is_finite() {
                format!("{v}")
            } else {
                "null".into()
            }
        }
        let columns: Vec<String> = self.columns.iter().map(|c| format!("\"{}\"", esc(c))).collect();
        let rows: Vec<String> = self
            .points
            .iter()
            .map(|p| {
                let mut cells = vec![num(p.x)];
                cells.extend(p.values.iter().map(|&v| num(v)));
                format!("    [{}]", cells.join(", "))
            })
            .collect();
        format!(
            "{{\n  \"title\": \"{}\",\n  \"x_label\": \"{}\",\n  \"columns\": [{}],\n  \"points\": [\n{}\n  ]\n}}",
            esc(&self.title),
            esc(&self.x_label),
            columns.join(", "),
            rows.join(",\n")
        )
    }

    /// Parses a series back out of its [`Series::render_json`] form — the
    /// inverse used by the bench regression gate to read a committed
    /// baseline file. Hand-rolled (the workspace carries no JSON
    /// dependency) but a complete parser for the emitted subset: objects,
    /// arrays, escaped strings, numbers, and `null` (which round-trips to
    /// NaN). Returns `None` on malformed input or a missing field.
    pub fn parse_json(text: &str) -> Option<Series> {
        let (value, rest) = json::parse_value(text.trim())?;
        if !rest.trim().is_empty() {
            return None;
        }
        let obj = value.as_object()?;
        let title = obj.get("title")?.as_str()?.to_owned();
        let x_label = obj.get("x_label")?.as_str()?.to_owned();
        let columns: Vec<String> = obj
            .get("columns")?
            .as_array()?
            .iter()
            .map(|v| v.as_str().map(str::to_owned))
            .collect::<Option<_>>()?;
        let mut series = Series::new(title, x_label, columns);
        for row in obj.get("points")?.as_array()? {
            let cells = row.as_array()?;
            let mut nums = cells.iter().map(|c| c.as_number());
            let x = nums.next()??;
            let values: Vec<f64> = nums.collect::<Option<_>>()?;
            if values.len() != series.columns.len() {
                return None;
            }
            series.push(x, values);
        }
        Some(series)
    }
}

/// Minimal recursive-descent JSON reader covering exactly what
/// [`Series::render_json`] emits.
mod json {
    use std::collections::BTreeMap;

    pub enum Value {
        Null,
        Number(f64),
        String(String),
        Array(Vec<Value>),
        Object(BTreeMap<String, Value>),
    }

    impl Value {
        pub fn as_object(&self) -> Option<&BTreeMap<String, Value>> {
            match self {
                Value::Object(m) => Some(m),
                _ => None,
            }
        }

        pub fn as_array(&self) -> Option<&[Value]> {
            match self {
                Value::Array(v) => Some(v),
                _ => None,
            }
        }

        pub fn as_str(&self) -> Option<&str> {
            match self {
                Value::String(s) => Some(s),
                _ => None,
            }
        }

        /// Numbers parse to themselves; `null` (a non-finite value on the
        /// emit side) round-trips to NaN rather than failing.
        pub fn as_number(&self) -> Option<f64> {
            match self {
                Value::Number(n) => Some(*n),
                Value::Null => Some(f64::NAN),
                _ => None,
            }
        }
    }

    /// Parses one value off the front of `s`; returns it and the rest.
    pub fn parse_value(s: &str) -> Option<(Value, &str)> {
        let s = s.trim_start();
        match s.as_bytes().first()? {
            b'{' => parse_object(s),
            b'[' => parse_array(s),
            b'"' => parse_string(s).map(|(v, r)| (Value::String(v), r)),
            b'n' => s.strip_prefix("null").map(|r| (Value::Null, r)),
            _ => parse_number(s),
        }
    }

    fn parse_object(s: &str) -> Option<(Value, &str)> {
        let mut rest = s.strip_prefix('{')?.trim_start();
        let mut map = BTreeMap::new();
        if let Some(r) = rest.strip_prefix('}') {
            return Some((Value::Object(map), r));
        }
        loop {
            let (key, r) = parse_string(rest.trim_start())?;
            let r = r.trim_start().strip_prefix(':')?;
            let (val, r) = parse_value(r)?;
            map.insert(key, val);
            rest = r.trim_start();
            if let Some(r) = rest.strip_prefix(',') {
                rest = r;
            } else {
                return rest.strip_prefix('}').map(|r| (Value::Object(map), r));
            }
        }
    }

    fn parse_array(s: &str) -> Option<(Value, &str)> {
        let mut rest = s.strip_prefix('[')?.trim_start();
        let mut items = Vec::new();
        if let Some(r) = rest.strip_prefix(']') {
            return Some((Value::Array(items), r));
        }
        loop {
            let (val, r) = parse_value(rest)?;
            items.push(val);
            rest = r.trim_start();
            if let Some(r) = rest.strip_prefix(',') {
                rest = r;
            } else {
                return rest.strip_prefix(']').map(|r| (Value::Array(items), r));
            }
        }
    }

    fn parse_string(s: &str) -> Option<(String, &str)> {
        let mut chars = s.strip_prefix('"')?.char_indices();
        let mut out = String::new();
        while let Some((i, c)) = chars.next() {
            match c {
                '"' => return Some((out, &s[1..][i + 1..])),
                '\\' => match chars.next()?.1 {
                    '"' => out.push('"'),
                    '\\' => out.push('\\'),
                    'n' => out.push('\n'),
                    't' => out.push('\t'),
                    other => out.push(other),
                },
                other => out.push(other),
            }
        }
        None
    }

    fn parse_number(s: &str) -> Option<(Value, &str)> {
        let end = s.find(|c: char| !(c.is_ascii_digit() || "+-.eE".contains(c))).unwrap_or(s.len());
        let n: f64 = s[..end].parse().ok()?;
        Some((Value::Number(n), &s[end..]))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> Series {
        let mut s = Series::new(
            "Fig 7: goodput vs send rate",
            "send_gbps",
            vec!["baseline".into(), "payloadpark".into()],
        );
        s.push(2.0, vec![0.095, 0.095]);
        s.push(10.0, vec![0.476, 0.476]);
        s.push(12.0, vec![0.476, 0.55]);
        s
    }

    #[test]
    fn accessors() {
        let s = sample();
        assert_eq!(s.title(), "Fig 7: goodput vs send rate");
        assert_eq!(s.points().len(), 3);
        assert_eq!(s.column_index("payloadpark"), Some(1));
        assert_eq!(s.column_index("nope"), None);
        assert_eq!(s.column("baseline").unwrap(), vec![0.095, 0.476, 0.476]);
        assert!(s.column("nope").is_none());
    }

    #[test]
    fn render_contains_rows_and_headers() {
        let text = sample().render();
        assert!(text.contains("send_gbps"));
        assert!(text.contains("baseline"));
        assert!(text.contains("payloadpark"));
        assert!(text.contains("12.000"));
        assert!(text.contains("0.5500"));
    }

    #[test]
    fn render_json_is_parseable_shape() {
        let json = sample().render_json();
        assert!(json.contains("\"title\": \"Fig 7: goodput vs send rate\""));
        assert!(json.contains("\"x_label\": \"send_gbps\""));
        assert!(json.contains("\"baseline\", \"payloadpark\""));
        assert!(json.contains("[2, 0.095, 0.095]"));
        // Balanced braces/brackets (cheap well-formedness check).
        let opens = json.matches('[').count() + json.matches('{').count();
        let closes = json.matches(']').count() + json.matches('}').count();
        assert_eq!(opens, closes);
    }

    #[test]
    fn render_json_escapes_and_handles_non_finite() {
        let mut s = Series::new("say \"hi\"", "x", vec!["v".into()]);
        s.push(1.0, vec![f64::NAN]);
        let json = s.render_json();
        assert!(json.contains("say \\\"hi\\\""));
        assert!(json.contains("[1, null]"));
    }

    #[test]
    #[should_panic(expected = "row width mismatch")]
    fn wrong_width_panics() {
        sample().push(1.0, vec![1.0]);
    }

    #[test]
    fn parse_json_roundtrips_render_json() {
        let s = sample();
        let parsed = Series::parse_json(&s.render_json()).unwrap();
        assert_eq!(parsed, s);
    }

    #[test]
    fn parse_json_roundtrips_escapes_and_null() {
        let mut s = Series::new("say \"hi\" \\ there", "x", vec!["v".into()]);
        s.push(1.5e3, vec![f64::NAN]);
        s.push(-2.0, vec![0.25]);
        let parsed = Series::parse_json(&s.render_json()).unwrap();
        assert_eq!(parsed.title(), "say \"hi\" \\ there");
        assert!(parsed.points()[0].values[0].is_nan());
        assert_eq!(parsed.points()[1].values[0], 0.25);
        assert_eq!(parsed.points()[1].x, -2.0);
    }

    #[test]
    fn parse_json_rejects_malformed_input() {
        for bad in [
            "",
            "{",
            "not json",
            "{\"title\": \"t\"}",
            "{\"title\": \"t\", \"x_label\": \"x\", \"columns\": [\"a\"], \"points\": [[1]]} extra",
            // Row width disagrees with the column count.
            "{\"title\": \"t\", \"x_label\": \"x\", \"columns\": [\"a\"], \"points\": [[1, 2, 3]]}",
        ] {
            assert!(Series::parse_json(bad).is_none(), "accepted: {bad:?}");
        }
    }
}
