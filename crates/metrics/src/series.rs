//! Sweep results as paper-style text tables.
//!
//! Every experiment runner produces a [`Series`]: named columns over a
//! swept x-axis, rendered as an aligned text table (the repository's
//! equivalent of the paper's figures).

/// One row of a sweep.
#[derive(Debug, Clone, PartialEq)]
pub struct SeriesPoint {
    /// The x value (send rate, packet size, memory %, …).
    pub x: f64,
    /// One value per column.
    pub values: Vec<f64>,
}

/// A complete sweep result.
#[derive(Debug, Clone, PartialEq)]
pub struct Series {
    title: String,
    x_label: String,
    columns: Vec<String>,
    points: Vec<SeriesPoint>,
}

impl Series {
    /// Creates an empty series with the given column names.
    pub fn new(title: impl Into<String>, x_label: impl Into<String>, columns: Vec<String>) -> Self {
        Series { title: title.into(), x_label: x_label.into(), columns, points: Vec::new() }
    }

    /// Appends a row; the value count must match the column count.
    pub fn push(&mut self, x: f64, values: Vec<f64>) {
        assert_eq!(values.len(), self.columns.len(), "row width mismatch");
        self.points.push(SeriesPoint { x, values });
    }

    /// The rows.
    pub fn points(&self) -> &[SeriesPoint] {
        &self.points
    }

    /// The column names.
    pub fn columns(&self) -> &[String] {
        &self.columns
    }

    /// The series title.
    pub fn title(&self) -> &str {
        &self.title
    }

    /// Looks up a column index by name.
    pub fn column_index(&self, name: &str) -> Option<usize> {
        self.columns.iter().position(|c| c == name)
    }

    /// The values of one column across the sweep.
    pub fn column(&self, name: &str) -> Option<Vec<f64>> {
        let idx = self.column_index(name)?;
        Some(self.points.iter().map(|p| p.values[idx]).collect())
    }

    /// Renders an aligned text table.
    pub fn render(&self) -> String {
        let mut out = String::new();
        out.push_str(&format!("# {}\n", self.title));
        let mut header = format!("{:>14}", self.x_label);
        for c in &self.columns {
            header.push_str(&format!(" {c:>18}"));
        }
        out.push_str(&header);
        out.push('\n');
        out.push_str(&"-".repeat(header.len()));
        out.push('\n');
        for p in &self.points {
            out.push_str(&format!("{:>14.3}", p.x));
            for v in &p.values {
                out.push_str(&format!(" {v:>18.4}"));
            }
            out.push('\n');
        }
        out
    }

    /// Renders the series as a JSON object (title, x label, columns, and
    /// one `[x, v0, v1, …]` row per point) — the machine-readable twin of
    /// [`Series::render`], used by `pp-exp` subcommands that feed
    /// dashboards rather than eyes.
    pub fn render_json(&self) -> String {
        fn esc(s: &str) -> String {
            s.replace('\\', "\\\\").replace('"', "\\\"")
        }
        fn num(v: f64) -> String {
            if v.is_finite() {
                format!("{v}")
            } else {
                "null".into()
            }
        }
        let columns: Vec<String> = self.columns.iter().map(|c| format!("\"{}\"", esc(c))).collect();
        let rows: Vec<String> = self
            .points
            .iter()
            .map(|p| {
                let mut cells = vec![num(p.x)];
                cells.extend(p.values.iter().map(|&v| num(v)));
                format!("    [{}]", cells.join(", "))
            })
            .collect();
        format!(
            "{{\n  \"title\": \"{}\",\n  \"x_label\": \"{}\",\n  \"columns\": [{}],\n  \"points\": [\n{}\n  ]\n}}",
            esc(&self.title),
            esc(&self.x_label),
            columns.join(", "),
            rows.join(",\n")
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> Series {
        let mut s = Series::new(
            "Fig 7: goodput vs send rate",
            "send_gbps",
            vec!["baseline".into(), "payloadpark".into()],
        );
        s.push(2.0, vec![0.095, 0.095]);
        s.push(10.0, vec![0.476, 0.476]);
        s.push(12.0, vec![0.476, 0.55]);
        s
    }

    #[test]
    fn accessors() {
        let s = sample();
        assert_eq!(s.title(), "Fig 7: goodput vs send rate");
        assert_eq!(s.points().len(), 3);
        assert_eq!(s.column_index("payloadpark"), Some(1));
        assert_eq!(s.column_index("nope"), None);
        assert_eq!(s.column("baseline").unwrap(), vec![0.095, 0.476, 0.476]);
        assert!(s.column("nope").is_none());
    }

    #[test]
    fn render_contains_rows_and_headers() {
        let text = sample().render();
        assert!(text.contains("send_gbps"));
        assert!(text.contains("baseline"));
        assert!(text.contains("payloadpark"));
        assert!(text.contains("12.000"));
        assert!(text.contains("0.5500"));
    }

    #[test]
    fn render_json_is_parseable_shape() {
        let json = sample().render_json();
        assert!(json.contains("\"title\": \"Fig 7: goodput vs send rate\""));
        assert!(json.contains("\"x_label\": \"send_gbps\""));
        assert!(json.contains("\"baseline\", \"payloadpark\""));
        assert!(json.contains("[2, 0.095, 0.095]"));
        // Balanced braces/brackets (cheap well-formedness check).
        let opens = json.matches('[').count() + json.matches('{').count();
        let closes = json.matches(']').count() + json.matches('}').count();
        assert_eq!(opens, closes);
    }

    #[test]
    fn render_json_escapes_and_handles_non_finite() {
        let mut s = Series::new("say \"hi\"", "x", vec!["v".into()]);
        s.push(1.0, vec![f64::NAN]);
        let json = s.render_json();
        assert!(json.contains("say \\\"hi\\\""));
        assert!(json.contains("[1, null]"));
    }

    #[test]
    #[should_panic(expected = "row width mismatch")]
    fn wrong_width_panics() {
        sample().push(1.0, vec![1.0]);
    }
}
