//! Latency statistics.
//!
//! Histogram-backed so multi-million-packet runs cost constant memory:
//! 1 µs buckets up to 20 ms plus an overflow bucket. Average and maximum
//! are exact; percentiles are bucket-resolution.

use pp_netsim::time::SimDuration;

const BUCKET_NS: u64 = 1_000;
const BUCKETS: usize = 20_000;

/// Online latency statistics.
#[derive(Clone)]
pub struct LatencyStats {
    // u64 buckets: long-horizon runs can put more than 4.29 G samples in
    // one bucket, which would wrap a u32.
    histogram: Vec<u64>,
    overflow: u64,
    count: u64,
    sum_ns: u128,
    max_ns: u64,
    min_ns: u64,
}

impl Default for LatencyStats {
    fn default() -> Self {
        Self::new()
    }
}

// Summarize rather than dumping 20k buckets into debug output.
impl core::fmt::Debug for LatencyStats {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        f.debug_struct("LatencyStats")
            .field("count", &self.count)
            .field("avg_us", &self.avg_us())
            .field("max_us", &self.max_us())
            .finish_non_exhaustive()
    }
}

impl LatencyStats {
    /// Creates empty statistics.
    pub fn new() -> Self {
        LatencyStats {
            histogram: vec![0; BUCKETS],
            overflow: 0,
            count: 0,
            sum_ns: 0,
            max_ns: 0,
            min_ns: u64::MAX,
        }
    }

    /// Records one sample.
    pub fn record(&mut self, latency: SimDuration) {
        self.record_n(latency, 1);
    }

    /// Records `n` identical samples — bulk ingestion for aggregation and
    /// long-horizon tests that would otherwise loop billions of times.
    pub fn record_n(&mut self, latency: SimDuration, n: u64) {
        if n == 0 {
            return;
        }
        let ns = latency.nanos();
        self.count += n;
        self.sum_ns += u128::from(ns) * u128::from(n);
        self.max_ns = self.max_ns.max(ns);
        self.min_ns = self.min_ns.min(ns);
        let bucket = (ns / BUCKET_NS) as usize;
        if bucket < BUCKETS {
            self.histogram[bucket] += n;
        } else {
            self.overflow += n;
        }
    }

    /// Number of samples.
    pub fn count(&self) -> u64 {
        self.count
    }

    /// Average latency in microseconds.
    pub fn avg_us(&self) -> f64 {
        if self.count == 0 {
            return 0.0;
        }
        self.sum_ns as f64 / self.count as f64 / 1e3
    }

    /// Maximum latency in microseconds.
    pub fn max_us(&self) -> f64 {
        if self.count == 0 {
            return 0.0;
        }
        self.max_ns as f64 / 1e3
    }

    /// Minimum latency in microseconds.
    pub fn min_us(&self) -> f64 {
        if self.count == 0 {
            return 0.0;
        }
        self.min_ns as f64 / 1e3
    }

    /// Jitter as the paper reports it: peak minus average (Fig. 7 caption).
    pub fn jitter_us(&self) -> f64 {
        (self.max_us() - self.avg_us()).max(0.0)
    }

    /// The `q`-quantile (0 < q ≤ 1) in microseconds, at 1 µs resolution.
    ///
    /// Bucket resolution rounds up to the bucket's upper edge, but the
    /// result is clamped to the exact maximum so no quantile can report
    /// above the largest sample actually observed.
    pub fn percentile_us(&self, q: f64) -> f64 {
        if self.count == 0 {
            return 0.0;
        }
        let q = q.clamp(0.0, 1.0);
        let target = (q * self.count as f64).ceil().max(1.0) as u64;
        let mut seen = 0u64;
        for (i, &c) in self.histogram.iter().enumerate() {
            seen += c;
            if seen >= target {
                let edge = ((i as u64 + 1) * BUCKET_NS) as f64 / 1e3;
                return edge.min(self.max_us());
            }
        }
        self.max_us()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn basic_statistics() {
        let mut s = LatencyStats::new();
        for us in [10u64, 20, 30, 40] {
            s.record(SimDuration::from_micros(us));
        }
        assert_eq!(s.count(), 4);
        assert!((s.avg_us() - 25.0).abs() < 1e-9);
        assert!((s.max_us() - 40.0).abs() < 1e-9);
        assert!((s.min_us() - 10.0).abs() < 1e-9);
        assert!((s.jitter_us() - 15.0).abs() < 1e-9);
    }

    #[test]
    fn empty_stats_are_zero() {
        let s = LatencyStats::new();
        assert_eq!(s.avg_us(), 0.0);
        assert_eq!(s.max_us(), 0.0);
        assert_eq!(s.min_us(), 0.0);
        assert_eq!(s.jitter_us(), 0.0);
        assert_eq!(s.percentile_us(0.99), 0.0);
    }

    #[test]
    fn percentiles_are_ordered() {
        let mut s = LatencyStats::new();
        for i in 1..=1000u64 {
            s.record(SimDuration::from_micros(i));
        }
        let p50 = s.percentile_us(0.50);
        let p99 = s.percentile_us(0.99);
        let p100 = s.percentile_us(1.0);
        assert!(p50 <= p99 && p99 <= p100);
        assert!((p50 - 500.0).abs() <= 1.0, "p50 {p50}");
        assert!((p99 - 990.0).abs() <= 1.0, "p99 {p99}");
    }

    #[test]
    fn overflow_samples_still_counted() {
        let mut s = LatencyStats::new();
        s.record(SimDuration::from_millis(50)); // beyond histogram range
        s.record(SimDuration::from_micros(10));
        assert_eq!(s.count(), 2);
        assert!((s.max_us() - 50_000.0).abs() < 1e-9);
        // p100 falls back to the exact max.
        assert!((s.percentile_us(1.0) - 50_000.0).abs() < 1e-9);
    }

    #[test]
    fn sub_microsecond_resolution_truncates_to_bucket() {
        let mut s = LatencyStats::new();
        s.record(SimDuration::from_nanos(1_499));
        // The bucket's upper edge is 2 µs, but the quantile clamps to the
        // exact maximum (1.499 µs): no percentile exceeds the observed max.
        assert!((s.percentile_us(1.0) - 1.499).abs() < 1e-9);
        assert!((s.avg_us() - 1.499).abs() < 1e-9); // average is exact
    }

    #[test]
    fn percentile_never_exceeds_max() {
        // Regression: a single 10 µs sample used to report p50 = 11 µs
        // (the bucket's upper edge) while max was 10 µs.
        let mut s = LatencyStats::new();
        s.record(SimDuration::from_micros(10));
        for q in [0.01, 0.5, 0.99, 1.0] {
            assert!(
                s.percentile_us(q) <= s.max_us() + 1e-12,
                "p{q} = {} > max {}",
                s.percentile_us(q),
                s.max_us()
            );
        }
        assert!((s.percentile_us(0.5) - 10.0).abs() < 1e-9);
    }

    #[test]
    fn bucket_counts_survive_u32_overflow() {
        // Regression: buckets were u32 and wrapped past 4.29 G samples in
        // one bucket on long-horizon runs.
        let mut s = LatencyStats::new();
        let n = u64::from(u32::MAX) + 5;
        s.record_n(SimDuration::from_micros(3), n);
        assert_eq!(s.count(), n);
        // A wrapped u32 bucket would make the quantile scan miss the
        // target and fall through to max; with u64 buckets the median of a
        // single-bucket distribution is that bucket.
        assert!((s.percentile_us(0.5) - 3.0).abs() < 1e-9);
        assert!((s.avg_us() - 3.0).abs() < 1e-9);
    }

    #[test]
    fn record_n_matches_repeated_record() {
        let mut bulk = LatencyStats::new();
        let mut each = LatencyStats::new();
        bulk.record_n(SimDuration::from_micros(7), 4);
        bulk.record_n(SimDuration::from_micros(9), 0); // no-op
        for _ in 0..4 {
            each.record(SimDuration::from_micros(7));
        }
        assert_eq!(bulk.count(), each.count());
        assert_eq!(bulk.avg_us(), each.avg_us());
        assert_eq!(bulk.percentile_us(0.5), each.percentile_us(0.5));
        assert_eq!(bulk.min_us(), each.min_us());
    }
}
