//! Latency statistics.
//!
//! Histogram-backed so multi-million-packet runs cost constant memory:
//! 1 µs buckets up to 20 ms plus an overflow bucket. Average and maximum
//! are exact; percentiles are bucket-resolution.

use pp_netsim::time::SimDuration;

const BUCKET_NS: u64 = 1_000;
const BUCKETS: usize = 20_000;

/// Online latency statistics.
#[derive(Clone)]
pub struct LatencyStats {
    histogram: Vec<u32>,
    overflow: u64,
    count: u64,
    sum_ns: u128,
    max_ns: u64,
    min_ns: u64,
}

impl Default for LatencyStats {
    fn default() -> Self {
        Self::new()
    }
}

impl LatencyStats {
    /// Creates empty statistics.
    pub fn new() -> Self {
        LatencyStats {
            histogram: vec![0; BUCKETS],
            overflow: 0,
            count: 0,
            sum_ns: 0,
            max_ns: 0,
            min_ns: u64::MAX,
        }
    }

    /// Records one sample.
    pub fn record(&mut self, latency: SimDuration) {
        let ns = latency.nanos();
        self.count += 1;
        self.sum_ns += u128::from(ns);
        self.max_ns = self.max_ns.max(ns);
        self.min_ns = self.min_ns.min(ns);
        let bucket = (ns / BUCKET_NS) as usize;
        if bucket < BUCKETS {
            self.histogram[bucket] += 1;
        } else {
            self.overflow += 1;
        }
    }

    /// Number of samples.
    pub fn count(&self) -> u64 {
        self.count
    }

    /// Average latency in microseconds.
    pub fn avg_us(&self) -> f64 {
        if self.count == 0 {
            return 0.0;
        }
        self.sum_ns as f64 / self.count as f64 / 1e3
    }

    /// Maximum latency in microseconds.
    pub fn max_us(&self) -> f64 {
        if self.count == 0 {
            return 0.0;
        }
        self.max_ns as f64 / 1e3
    }

    /// Minimum latency in microseconds.
    pub fn min_us(&self) -> f64 {
        if self.count == 0 {
            return 0.0;
        }
        self.min_ns as f64 / 1e3
    }

    /// Jitter as the paper reports it: peak minus average (Fig. 7 caption).
    pub fn jitter_us(&self) -> f64 {
        (self.max_us() - self.avg_us()).max(0.0)
    }

    /// The `q`-quantile (0 < q ≤ 1) in microseconds, at 1 µs resolution.
    pub fn percentile_us(&self, q: f64) -> f64 {
        if self.count == 0 {
            return 0.0;
        }
        let q = q.clamp(0.0, 1.0);
        let target = (q * self.count as f64).ceil().max(1.0) as u64;
        let mut seen = 0u64;
        for (i, &c) in self.histogram.iter().enumerate() {
            seen += u64::from(c);
            if seen >= target {
                return ((i as u64 + 1) * BUCKET_NS) as f64 / 1e3;
            }
        }
        self.max_us()
    }
}

impl core::fmt::Debug for LatencyStats {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        f.debug_struct("LatencyStats")
            .field("count", &self.count)
            .field("avg_us", &self.avg_us())
            .field("max_us", &self.max_us())
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn basic_statistics() {
        let mut s = LatencyStats::new();
        for us in [10u64, 20, 30, 40] {
            s.record(SimDuration::from_micros(us));
        }
        assert_eq!(s.count(), 4);
        assert!((s.avg_us() - 25.0).abs() < 1e-9);
        assert!((s.max_us() - 40.0).abs() < 1e-9);
        assert!((s.min_us() - 10.0).abs() < 1e-9);
        assert!((s.jitter_us() - 15.0).abs() < 1e-9);
    }

    #[test]
    fn empty_stats_are_zero() {
        let s = LatencyStats::new();
        assert_eq!(s.avg_us(), 0.0);
        assert_eq!(s.max_us(), 0.0);
        assert_eq!(s.min_us(), 0.0);
        assert_eq!(s.jitter_us(), 0.0);
        assert_eq!(s.percentile_us(0.99), 0.0);
    }

    #[test]
    fn percentiles_are_ordered() {
        let mut s = LatencyStats::new();
        for i in 1..=1000u64 {
            s.record(SimDuration::from_micros(i));
        }
        let p50 = s.percentile_us(0.50);
        let p99 = s.percentile_us(0.99);
        let p100 = s.percentile_us(1.0);
        assert!(p50 <= p99 && p99 <= p100);
        assert!((p50 - 500.0).abs() <= 1.0, "p50 {p50}");
        assert!((p99 - 990.0).abs() <= 1.0, "p99 {p99}");
    }

    #[test]
    fn overflow_samples_still_counted() {
        let mut s = LatencyStats::new();
        s.record(SimDuration::from_millis(50)); // beyond histogram range
        s.record(SimDuration::from_micros(10));
        assert_eq!(s.count(), 2);
        assert!((s.max_us() - 50_000.0).abs() < 1e-9);
        // p100 falls back to the exact max.
        assert!((s.percentile_us(1.0) - 50_000.0).abs() < 1e-9);
    }

    #[test]
    fn sub_microsecond_resolution_truncates_to_bucket() {
        let mut s = LatencyStats::new();
        s.record(SimDuration::from_nanos(1_499));
        assert!((s.percentile_us(1.0) - 2.0).abs() < 1e-9); // bucket upper edge
        assert!((s.avg_us() - 1.499).abs() < 1e-9); // average is exact
    }
}
