//! Measurement infrastructure matching the paper's metric definitions
//! (§6.1):
//!
//! * [`goodput`] — goodput from the switch's perspective, with the UDP
//!   header (42 B = 336 bits of useful information) as the unit;
//! * [`latency`] — average end-to-end latency and jitter (peak − average),
//!   histogram-backed percentiles;
//! * [`health`] — the 0.1 % drop-rate health criterion used to find peak
//!   goodput;
//! * [`series`] — sweep results rendered as paper-style text tables.

pub mod goodput;
pub mod health;
pub mod latency;
pub mod series;

pub use goodput::GoodputMeter;
pub use health::HealthTracker;
pub use latency::LatencyStats;
pub use series::{Series, SeriesPoint};
