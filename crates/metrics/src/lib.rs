//! Measurement infrastructure matching the paper's metric definitions
//! (§6.1):
//!
//! * [`goodput`] — goodput from the switch's perspective, with the UDP
//!   header (42 B = 336 bits of useful information) as the unit;
//! * [`latency`] — average end-to-end latency and jitter (peak − average),
//!   histogram-backed percentiles;
//! * [`health`] — the 0.1 % drop-rate health criterion used to find peak
//!   goodput;
//! * [`series`] — sweep results rendered as paper-style text tables;
//! * [`registry`] — the always-on telemetry registry (counters, gauges,
//!   high-water marks, log-bucketed histograms; alloc-free updates);
//! * [`textfmt`] — Prometheus text exposition of a registry.

pub mod goodput;
pub mod health;
pub mod latency;
pub mod registry;
pub mod series;
pub mod textfmt;

pub use goodput::GoodputMeter;
pub use health::HealthTracker;
pub use latency::LatencyStats;
pub use registry::{MetricId, MetricKind, MetricsRegistry};
pub use series::{Series, SeriesPoint};
