//! The health criterion.
//!
//! "We consider the system to be healthy when the packet drop rate is below
//! 0.1%; we use this threshold to measure peak goodput" (§6.1). Intended
//! drops (firewall ACL hits, explicit drops) do not count against health;
//! unintended ones (ring overflows, premature evictions, lost packets) do.

/// The paper's drop-rate threshold.
pub const HEALTH_THRESHOLD: f64 = 0.001;

/// Tracks offered vs lost packets for the health decision.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct HealthTracker {
    /// Packets offered by the generator.
    pub offered: u64,
    /// Packets delivered end to end.
    pub delivered: u64,
    /// Intended drops (firewall/NF policy) — not a health problem.
    pub intended_drops: u64,
    /// Unintended drops: NIC ring overflows.
    pub ring_drops: u64,
    /// Unintended drops: premature payload evictions (PayloadPark only).
    pub premature_eviction_drops: u64,
    /// Unintended drops: anything else (parse errors, no route, faults).
    pub other_drops: u64,
}

impl HealthTracker {
    /// Creates an empty tracker.
    pub fn new() -> Self {
        Self::default()
    }

    /// Total unintended losses.
    pub fn unintended_drops(&self) -> u64 {
        self.ring_drops + self.premature_eviction_drops + self.other_drops
    }

    /// Unintended drop rate relative to offered load.
    pub fn drop_rate(&self) -> f64 {
        if self.offered == 0 {
            return 0.0;
        }
        self.unintended_drops() as f64 / self.offered as f64
    }

    /// The paper's health criterion.
    pub fn healthy(&self) -> bool {
        self.drop_rate() < HEALTH_THRESHOLD
    }

    /// Packets still in flight (or unaccounted) at measurement end.
    pub fn in_flight(&self) -> i64 {
        self.offered as i64
            - self.delivered as i64
            - self.intended_drops as i64
            - self.unintended_drops() as i64
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn healthy_below_threshold() {
        let h = HealthTracker {
            offered: 100_000,
            delivered: 99_950,
            ring_drops: 50,
            ..Default::default()
        };
        assert!((h.drop_rate() - 0.0005).abs() < 1e-12);
        assert!(h.healthy());
    }

    #[test]
    fn unhealthy_at_threshold() {
        let h = HealthTracker {
            offered: 100_000,
            delivered: 99_900,
            ring_drops: 60,
            premature_eviction_drops: 40,
            ..Default::default()
        };
        assert!((h.drop_rate() - 0.001).abs() < 1e-12);
        assert!(!h.healthy());
    }

    #[test]
    fn intended_drops_do_not_hurt_health() {
        let h = HealthTracker {
            offered: 1000,
            delivered: 600,
            intended_drops: 400,
            ..Default::default()
        };
        assert_eq!(h.drop_rate(), 0.0);
        assert!(h.healthy());
        assert_eq!(h.in_flight(), 0);
    }

    #[test]
    fn in_flight_accounts_everything() {
        let h = HealthTracker {
            offered: 100,
            delivered: 80,
            intended_drops: 5,
            ring_drops: 3,
            premature_eviction_drops: 2,
            other_drops: 1,
        };
        assert_eq!(h.unintended_drops(), 6);
        assert_eq!(h.in_flight(), 9);
    }

    #[test]
    fn zero_offered_is_healthy() {
        assert!(HealthTracker::new().healthy());
        assert_eq!(HealthTracker::new().drop_rate(), 0.0);
    }
}
