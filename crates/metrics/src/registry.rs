//! A registry of named metrics: counters, gauges, high-water marks and
//! fixed-size log-bucketed histograms.
//!
//! All registration happens at build time and returns an index handle;
//! hot-path updates ([`MetricsRegistry::inc`], [`set`](MetricsRegistry::set),
//! [`observe`](MetricsRegistry::observe)…) are plain array writes and never
//! allocate, so the registry can stay enabled inside the warm-batch
//! zero-allocation invariant of `tests/alloc_steady_state.rs`.
//!
//! Metrics carry registration-time label sets (`pipe="0"`, `shard="3"`,
//! `port="12"`…), and [`MetricsRegistry::merge_from`] folds registries
//! together — same `(name, labels)` entries combine by kind (counters and
//! gauges sum, high-water marks take the max, histograms add bucket-wise),
//! unseen entries append — which is how the engine aggregates N worker
//! registries into one view.

/// Number of log₂ buckets a histogram carries: bucket `i` counts values
/// `v` with `2^(i-1) < v ≤ 2^i` (bucket 0 counts `v ≤ 1`), and the last
/// bucket is the overflow. 32 buckets cover values up to 2³¹.
pub const HISTOGRAM_BUCKETS: usize = 32;

/// What a metric measures, which also fixes its merge rule and its
/// Prometheus `# TYPE`.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum MetricKind {
    /// Monotone event count; merges by summing.
    Counter,
    /// Point-in-time value; merges by summing (per-shard gauges aggregate
    /// to the deployment total, e.g. park-table occupancy).
    Gauge,
    /// Maximum value ever observed (ring depth high-water); merges by max.
    Highwater,
    /// Log₂-bucketed distribution; merges bucket-wise.
    Histogram,
}

#[derive(Debug, Clone, PartialEq)]
enum MetricValue {
    Counter(u64),
    Gauge(f64),
    Highwater(u64),
    Histogram { buckets: Box<[u64; HISTOGRAM_BUCKETS]>, sum: u64, count: u64 },
}

/// One registered metric: name, help text, labels and current value.
#[derive(Debug, Clone)]
pub struct Metric {
    name: String,
    help: String,
    labels: Vec<(String, String)>,
    value: MetricValue,
}

impl Metric {
    /// The metric family name (without labels).
    pub fn name(&self) -> &str {
        &self.name
    }

    /// The help text.
    pub fn help(&self) -> &str {
        &self.help
    }

    /// The registration-time labels.
    pub fn labels(&self) -> &[(String, String)] {
        &self.labels
    }

    /// The metric's kind.
    pub fn kind(&self) -> MetricKind {
        match self.value {
            MetricValue::Counter(_) => MetricKind::Counter,
            MetricValue::Gauge(_) => MetricKind::Gauge,
            MetricValue::Highwater(_) => MetricKind::Highwater,
            MetricValue::Histogram { .. } => MetricKind::Histogram,
        }
    }

    /// The scalar value of a counter/gauge/high-water metric (counters and
    /// high-water marks as exact integers cast to f64). Histograms return
    /// their observation count.
    pub fn value(&self) -> f64 {
        match &self.value {
            MetricValue::Counter(v) => *v as f64,
            MetricValue::Gauge(v) => *v,
            MetricValue::Highwater(v) => *v as f64,
            MetricValue::Histogram { count, .. } => *count as f64,
        }
    }

    /// Histogram internals: (buckets, sum, count); `None` for scalars.
    pub fn histogram(&self) -> Option<(&[u64; HISTOGRAM_BUCKETS], u64, u64)> {
        match &self.value {
            MetricValue::Histogram { buckets, sum, count } => Some((buckets, *sum, *count)),
            _ => None,
        }
    }

    fn key_eq(&self, name: &str, labels: &[(String, String)]) -> bool {
        self.name == name && self.labels == labels
    }

    fn merge_value(&mut self, other: &MetricValue) {
        match (&mut self.value, other) {
            (MetricValue::Counter(a), MetricValue::Counter(b)) => *a += b,
            (MetricValue::Gauge(a), MetricValue::Gauge(b)) => *a += b,
            (MetricValue::Highwater(a), MetricValue::Highwater(b)) => *a = (*a).max(*b),
            (
                MetricValue::Histogram { buckets: a, sum: sa, count: ca },
                MetricValue::Histogram { buckets: b, sum: sb, count: cb },
            ) => {
                for (x, y) in a.iter_mut().zip(b.iter()) {
                    *x += y;
                }
                *sa = sa.saturating_add(*sb);
                *ca += cb;
            }
            _ => panic!("merge kind mismatch for metric {:?}", self.name),
        }
    }
}

/// Handle returned by registration; updates address metrics by index, so
/// the hot path never hashes or compares strings.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct MetricId(usize);

/// The registry. See the module docs for the design.
#[derive(Debug, Clone, Default)]
pub struct MetricsRegistry {
    metrics: Vec<Metric>,
}

impl MetricsRegistry {
    /// An empty registry.
    pub fn new() -> Self {
        MetricsRegistry::default()
    }

    fn register(
        &mut self,
        name: &str,
        help: &str,
        labels: &[(&str, &str)],
        value: MetricValue,
    ) -> MetricId {
        debug_assert!(
            name.chars().all(|c| c.is_ascii_lowercase() || c.is_ascii_digit() || c == '_'),
            "metric names are snake_case: {name:?}"
        );
        let labels: Vec<(String, String)> =
            labels.iter().map(|(k, v)| (k.to_string(), v.to_string())).collect();
        if let Some(existing) = self.metrics.iter().find(|m| m.key_eq(name, &labels)) {
            panic!("metric {:?} with labels {:?} registered twice", name, existing.labels);
        }
        self.metrics.push(Metric { name: name.to_string(), help: help.to_string(), labels, value });
        MetricId(self.metrics.len() - 1)
    }

    /// Registers a counter (monotone event count), starting at zero.
    pub fn counter(&mut self, name: &str, help: &str, labels: &[(&str, &str)]) -> MetricId {
        self.register(name, help, labels, MetricValue::Counter(0))
    }

    /// Registers a gauge (point-in-time value), starting at zero.
    pub fn gauge(&mut self, name: &str, help: &str, labels: &[(&str, &str)]) -> MetricId {
        self.register(name, help, labels, MetricValue::Gauge(0.0))
    }

    /// Registers a high-water mark, starting at zero.
    pub fn highwater(&mut self, name: &str, help: &str, labels: &[(&str, &str)]) -> MetricId {
        self.register(name, help, labels, MetricValue::Highwater(0))
    }

    /// Registers a log₂-bucketed histogram. The bucket array is allocated
    /// here, once; `observe` never allocates.
    pub fn histogram(&mut self, name: &str, help: &str, labels: &[(&str, &str)]) -> MetricId {
        self.register(
            name,
            help,
            labels,
            MetricValue::Histogram { buckets: Box::new([0; HISTOGRAM_BUCKETS]), sum: 0, count: 0 },
        )
    }

    /// Adds `n` to a counter.
    #[inline]
    pub fn inc(&mut self, id: MetricId, n: u64) {
        match &mut self.metrics[id.0].value {
            MetricValue::Counter(v) => *v += n,
            _ => debug_assert!(false, "inc on a non-counter"),
        }
    }

    /// Sets a counter to an absolute total (snapshot-style ingestion from
    /// an existing counter block).
    #[inline]
    pub fn set_counter(&mut self, id: MetricId, total: u64) {
        match &mut self.metrics[id.0].value {
            MetricValue::Counter(v) => *v = total,
            _ => debug_assert!(false, "set_counter on a non-counter"),
        }
    }

    /// Sets a gauge.
    #[inline]
    pub fn set(&mut self, id: MetricId, value: f64) {
        match &mut self.metrics[id.0].value {
            MetricValue::Gauge(v) => *v = value,
            _ => debug_assert!(false, "set on a non-gauge"),
        }
    }

    /// Raises a high-water mark to `value` if it is the new maximum.
    #[inline]
    pub fn observe_high(&mut self, id: MetricId, value: u64) {
        match &mut self.metrics[id.0].value {
            MetricValue::Highwater(v) => *v = (*v).max(value),
            _ => debug_assert!(false, "observe_high on a non-highwater"),
        }
    }

    /// Records one histogram observation.
    #[inline]
    pub fn observe(&mut self, id: MetricId, value: u64) {
        match &mut self.metrics[id.0].value {
            MetricValue::Histogram { buckets, sum, count } => {
                let b = (bucket_index(value)).min(HISTOGRAM_BUCKETS - 1);
                buckets[b] += 1;
                *sum = sum.saturating_add(value);
                *count += 1;
            }
            _ => debug_assert!(false, "observe on a non-histogram"),
        }
    }

    /// The registered metrics, in registration order.
    pub fn metrics(&self) -> &[Metric] {
        &self.metrics
    }

    /// Looks a metric up by name and labels.
    pub fn get(&self, name: &str, labels: &[(&str, &str)]) -> Option<&Metric> {
        let labels: Vec<(String, String)> =
            labels.iter().map(|(k, v)| (k.to_string(), v.to_string())).collect();
        self.metrics.iter().find(|m| m.key_eq(name, &labels))
    }

    /// Folds `other` into this registry: entries with the same
    /// `(name, labels)` combine by kind (counter/gauge sum, high-water
    /// max, histogram bucket-wise), entries this registry has not seen are
    /// appended. Aggregating N per-shard registries this way yields the
    /// deployment-wide view.
    pub fn merge_from(&mut self, other: &MetricsRegistry) {
        for m in &other.metrics {
            match self.metrics.iter_mut().find(|e| e.key_eq(&m.name, &m.labels)) {
                Some(existing) => {
                    assert_eq!(
                        existing.kind(),
                        m.kind(),
                        "merge kind mismatch for metric {:?}",
                        m.name
                    );
                    existing.merge_value(&m.value)
                }
                None => self.metrics.push(m.clone()),
            }
        }
    }
}

/// The log₂ bucket index for `value`: 0 for `value ≤ 1`, else
/// `ceil(log2(value))`.
#[inline]
fn bucket_index(value: u64) -> usize {
    if value <= 1 {
        0
    } else {
        (64 - (value - 1).leading_zeros()) as usize
    }
}

/// The inclusive upper bound of histogram bucket `i` (`2^i`); the final
/// bucket is rendered as `+Inf`.
pub fn bucket_upper_bound(i: usize) -> u64 {
    1u64 << i
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counters_and_gauges_update_by_handle() {
        let mut r = MetricsRegistry::new();
        let c = r.counter("pp_splits_total", "Splits.", &[("pipe", "0")]);
        let g = r.gauge("pp_occupancy", "Occupied slots.", &[]);
        r.inc(c, 3);
        r.inc(c, 2);
        r.set(g, 17.0);
        assert_eq!(r.get("pp_splits_total", &[("pipe", "0")]).unwrap().value(), 5.0);
        assert_eq!(r.get("pp_occupancy", &[]).unwrap().value(), 17.0);
        assert!(r.get("pp_splits_total", &[]).is_none(), "labels are part of the key");
    }

    #[test]
    fn highwater_keeps_the_maximum() {
        let mut r = MetricsRegistry::new();
        let h = r.highwater("pp_ring_depth_highwater", "Ring depth.", &[("shard", "1")]);
        for v in [3u64, 9, 4] {
            r.observe_high(h, v);
        }
        assert_eq!(r.metrics()[0].value(), 9.0);
    }

    #[test]
    fn histogram_buckets_are_log2() {
        assert_eq!(bucket_index(0), 0);
        assert_eq!(bucket_index(1), 0);
        assert_eq!(bucket_index(2), 1);
        assert_eq!(bucket_index(3), 2);
        assert_eq!(bucket_index(4), 2);
        assert_eq!(bucket_index(5), 3);
        assert_eq!(bucket_index(1024), 10);
        assert_eq!(bucket_index(1025), 11);

        let mut r = MetricsRegistry::new();
        let h = r.histogram("pp_batch_bytes", "Batch sizes.", &[]);
        r.observe(h, 1);
        r.observe(h, 4);
        r.observe(h, 4);
        r.observe(h, u64::MAX); // lands in the overflow bucket
        let (buckets, sum, count) = r.metrics()[0].histogram().unwrap();
        assert_eq!(buckets[0], 1);
        assert_eq!(buckets[2], 2);
        assert_eq!(buckets[HISTOGRAM_BUCKETS - 1], 1);
        assert_eq!(count, 4);
        assert_eq!(sum, u64::MAX, "sum saturates instead of wrapping");
    }

    #[test]
    fn merge_sums_maxes_and_appends() {
        let build = |shard: &str, splits: u64, depth: u64| {
            let mut r = MetricsRegistry::new();
            let c = r.counter("pp_splits_total", "Splits.", &[]);
            let h = r.highwater("pp_ring_depth_highwater", "Depth.", &[("shard", shard)]);
            let g = r.gauge("pp_occupancy", "Slots.", &[]);
            let hist = r.histogram("pp_batch_pkts", "Batch.", &[]);
            r.inc(c, splits);
            r.observe_high(h, depth);
            r.set(g, splits as f64);
            r.observe(hist, depth);
            r
        };
        let mut total = build("0", 10, 7);
        total.merge_from(&build("1", 5, 3));
        // Shared keys combined: counter summed, gauge summed, histogram
        // bucket-wise; per-shard high-water marks appended separately.
        assert_eq!(total.get("pp_splits_total", &[]).unwrap().value(), 15.0);
        assert_eq!(total.get("pp_occupancy", &[]).unwrap().value(), 15.0);
        assert_eq!(total.get("pp_batch_pkts", &[]).unwrap().value(), 2.0);
        assert_eq!(total.get("pp_ring_depth_highwater", &[("shard", "0")]).unwrap().value(), 7.0);
        assert_eq!(total.get("pp_ring_depth_highwater", &[("shard", "1")]).unwrap().value(), 3.0);

        // Same-key high-water marks merge by max.
        let mut a = MetricsRegistry::new();
        let h = a.highwater("pp_ring_depth_highwater", "Depth.", &[]);
        a.observe_high(h, 4);
        let mut b = MetricsRegistry::new();
        let h = b.highwater("pp_ring_depth_highwater", "Depth.", &[]);
        b.observe_high(h, 9);
        a.merge_from(&b);
        assert_eq!(a.metrics()[0].value(), 9.0);
    }

    #[test]
    #[should_panic(expected = "registered twice")]
    fn duplicate_registration_panics() {
        let mut r = MetricsRegistry::new();
        r.counter("pp_splits_total", "Splits.", &[]);
        r.counter("pp_splits_total", "Splits again.", &[]);
    }
}
