//! `pp-exp` — regenerate the paper's tables and figures.
//!
//! Usage:
//!
//! ```text
//! pp-exp <experiment> [--quick] [--out FILE] [--baseline FILE] [--tolerance T]
//!        [--telemetry FILE]
//!
//! experiments: fig06 fig07 fig08 fig09 fig10 fig11 fig12 fig13 fig14
//!              fig15 fig16 table1 headline mixed throughput adversity
//!              overhead cluster all
//! ```
//!
//! Each experiment prints a text table (the repository's rendering of the
//! corresponding figure). `--quick` uses the reduced test-effort sweep.
//! Unknown flags and experiments are rejected with this usage and exit
//! code 2 — see [`pp_harness::cli`].
//!
//! Three experiments measure the reproduction itself and emit JSON series
//! on stdout for dashboards and trend tracking: `throughput` (scalar
//! pipeline vs the `pp_fastpath` engine at 1/2/4/8 workers), `adversity`
//! (goodput/eviction curves vs injected NF-leg loss under a fixed scenario
//! seed — the same seed always produces byte-identical output, so the
//! series doubles as a replay/regression artifact), and `overhead` (the
//! scalar hot path with the always-on telemetry — flight recorder + stage
//! profiling — vs with it switched off; exits 1 when the slowdown exceeds
//! `--tolerance`, default 3 %).
//!
//! For `throughput`, `--out FILE` also writes the JSON series to `FILE`
//! (the committed `BENCH_fastpath.json` trajectory snapshot), and
//! `--baseline FILE` compares the fresh run against a committed snapshot,
//! exiting 1 when any worker width lost more than `--tolerance` (default
//! 0.15) of its packets/sec.
//!
//! `cluster` sweeps the distributed parking tier: round-trip goodput at
//! 1/2/4 switches (JSON rows at `x = 100 + N`, gated against the same
//! `BENCH_fastpath.json` trajectory via `--baseline`) plus the
//! one-switch-blackout drill, asserted oracle-clean with the survivors
//! serving. Its `--telemetry FILE` snapshot carries per-switch labelled
//! dataplane families and the `pp_cluster_*` aggregates.
//!
//! `--telemetry FILE` (on `throughput`, `mixed`, `adversity` and
//! `cluster`) writes a
//! Prometheus text-exposition snapshot of a representative run's dataplane
//! telemetry — the PayloadPark counters, switch statistics, park-table
//! occupancy, fault tally, and (for `throughput`) per-shard ring
//! high-water marks.

use pp_harness::bench_gate::{compare_throughput, DEFAULT_TOLERANCE};
use pp_harness::cli;
use pp_harness::experiments::{
    adversity_report, adversity_sweep, cluster_blackout, cluster_goodput, cluster_telemetry,
    emulator_throughput, fig06, fig07, fig08_09, fig10_11, fig12, fig14, fig15, fig16,
    headline_fw_nat_40g, mixed_goodput, mixed_report, table1, telemetry_overhead,
    throughput_telemetry, Effort,
};
use pp_harness::telemetry::{registry_from_report, write_prom};
use pp_metrics::{MetricsRegistry, Series};

/// Default `overhead` gate: telemetry may cost at most 3 % of scalar pps.
const DEFAULT_OVERHEAD_TOLERANCE: f64 = 0.03;

fn write_telemetry(path: &str, registry: &MetricsRegistry) {
    if let Err(e) = write_prom(std::path::Path::new(path), registry) {
        eprintln!("failed to write telemetry {path}: {e}");
        std::process::exit(1);
    }
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let cli = match cli::parse(&args) {
        Ok(cli) => cli,
        Err(e) => {
            eprintln!("pp-exp: {e}");
            eprintln!("{}", cli::usage());
            std::process::exit(2);
        }
    };
    let effort = if cli.quick { Effort::Quick } else { Effort::Full };
    let want = |name: &str| cli.which == name || cli.which == "all";

    if want("fig06") {
        println!("{}", fig06().render());
    }
    if want("fig07") {
        println!("{}", fig07(effort, false).render());
    }
    if want("fig08") || want("fig09") {
        let (g, p) = fig08_09(effort);
        if want("fig08") {
            println!("{}", g.render());
        }
        if want("fig09") {
            println!("{}", p.render());
        }
    }
    if want("fig10") || want("fig11") {
        let (g, l) = fig10_11(effort);
        if want("fig10") {
            println!("{}", g.render());
        }
        if want("fig11") {
            println!("{}", l.render());
        }
    }
    if want("fig12") {
        println!("{}", fig12(effort).render());
    }
    if want("fig13") {
        println!("{}", fig07(effort, true).render());
    }
    if want("fig14") {
        println!("{}", fig14(effort).render());
    }
    if want("fig15") {
        println!("{}", fig15(effort).render());
    }
    if want("fig16") {
        println!("{}", fig16(effort).render());
    }
    if want("headline") {
        println!("{}", headline_fw_nat_40g(effort).render());
    }
    if want("mixed") {
        println!("{}", mixed_goodput(effort).render());
        if let Some(path) = &cli.telemetry {
            let reg = registry_from_report(&mixed_report(effort), &[("experiment", "mixed")]);
            write_telemetry(path, &reg);
        }
    }
    if want("table1") {
        println!("{}", table1());
    }
    if want("throughput") {
        // Machine-readable: this subcommand feeds the bench trajectory.
        let series = emulator_throughput(effort);
        let json = series.render_json();
        println!("{json}");
        if let Some(path) = &cli.out {
            if let Err(e) = std::fs::write(path, format!("{json}\n")) {
                eprintln!("failed to write {path}: {e}");
                std::process::exit(1);
            }
        }
        if let Some(path) = &cli.telemetry {
            write_telemetry(path, &throughput_telemetry(effort));
        }
        if let Some(path) = &cli.baseline {
            let text = std::fs::read_to_string(path).unwrap_or_else(|e| {
                eprintln!("failed to read baseline {path}: {e}");
                std::process::exit(1);
            });
            let baseline = Series::parse_json(&text).unwrap_or_else(|| {
                eprintln!("baseline {path} is not a valid series JSON");
                std::process::exit(1);
            });
            let tolerance = cli.tolerance.unwrap_or(DEFAULT_TOLERANCE);
            match compare_throughput(&series, &baseline, tolerance) {
                Ok(report) => {
                    for line in &report.lines {
                        eprintln!("{line}");
                    }
                    if !report.passed() {
                        for failure in &report.failures {
                            eprintln!("throughput regression: {failure}");
                        }
                        std::process::exit(1);
                    }
                }
                Err(e) => {
                    eprintln!("baseline comparison failed: {e}");
                    std::process::exit(1);
                }
            }
        }
    }
    if want("adversity") {
        // Machine-readable and byte-reproducible for a given seed: CI
        // uploads this series as an artifact on every push.
        println!("{}", adversity_sweep(effort).render_json());
        if let Some(path) = &cli.telemetry {
            let reg =
                registry_from_report(&adversity_report(effort), &[("experiment", "adversity")]);
            write_telemetry(path, &reg);
        }
    }
    if want("cluster") {
        // Machine-readable like `throughput`: the goodput rows (x =
        // 100 + N) feed the same trajectory file and regression gate.
        let series = cluster_goodput(effort);
        let json = series.render_json();
        println!("{json}");
        println!("{}", cluster_blackout(effort).render());
        if let Some(path) = &cli.out {
            if let Err(e) = std::fs::write(path, format!("{json}\n")) {
                eprintln!("failed to write {path}: {e}");
                std::process::exit(1);
            }
        }
        if let Some(path) = &cli.telemetry {
            write_telemetry(path, &cluster_telemetry(effort));
        }
        if let Some(path) = &cli.baseline {
            let text = std::fs::read_to_string(path).unwrap_or_else(|e| {
                eprintln!("failed to read baseline {path}: {e}");
                std::process::exit(1);
            });
            let baseline = Series::parse_json(&text).unwrap_or_else(|| {
                eprintln!("baseline {path} is not a valid series JSON");
                std::process::exit(1);
            });
            let tolerance = cli.tolerance.unwrap_or(DEFAULT_TOLERANCE);
            match compare_throughput(&series, &baseline, tolerance) {
                Ok(report) => {
                    for line in &report.lines {
                        eprintln!("{line}");
                    }
                    if !report.passed() {
                        for failure in &report.failures {
                            eprintln!("cluster throughput regression: {failure}");
                        }
                        std::process::exit(1);
                    }
                }
                Err(e) => {
                    eprintln!("baseline comparison failed: {e}");
                    std::process::exit(1);
                }
            }
        }
    }
    if want("overhead") {
        let report = telemetry_overhead(effort);
        let tolerance = cli.tolerance.unwrap_or(DEFAULT_OVERHEAD_TOLERANCE);
        println!(
            "{{\"on_pps\":{:.0},\"off_pps\":{:.0},\"overhead\":{:.4},\"tolerance\":{:.4}}}",
            report.on_pps,
            report.off_pps,
            report.overhead(),
            tolerance
        );
        if report.overhead() > tolerance {
            eprintln!(
                "telemetry overhead {:.2}% exceeds the {:.2}% gate",
                report.overhead() * 100.0,
                tolerance * 100.0
            );
            std::process::exit(1);
        }
    }
}
