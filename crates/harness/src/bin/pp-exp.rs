//! `pp-exp` — regenerate the paper's tables and figures.
//!
//! Usage:
//!
//! ```text
//! pp-exp <experiment> [--quick]
//!
//! experiments: fig06 fig07 fig08 fig09 fig10 fig11 fig12 fig13 fig14
//!              fig15 fig16 table1 headline mixed throughput adversity all
//! ```
//!
//! Each experiment prints a text table (the repository's rendering of the
//! corresponding figure). `--quick` uses the reduced test-effort sweep.
//! Two experiments measure the reproduction itself and emit JSON series on
//! stdout for dashboards and trend tracking: `throughput` (scalar pipeline
//! vs the `pp_fastpath` engine at 1/2/4/8 workers) and `adversity`
//! (goodput/eviction curves vs injected NF-leg loss under a fixed scenario
//! seed — the same seed always produces byte-identical output, so the
//! series doubles as a replay/regression artifact).

use pp_harness::experiments::{
    adversity_sweep, emulator_throughput, fig06, fig07, fig08_09, fig10_11, fig12, fig14, fig15,
    fig16, headline_fw_nat_40g, mixed_goodput, table1, Effort,
};

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let quick = args.iter().any(|a| a == "--quick");
    let effort = if quick { Effort::Quick } else { Effort::Full };
    let which = args.iter().find(|a| !a.starts_with("--")).cloned().unwrap_or_default();

    let known = [
        "fig06",
        "fig07",
        "fig08",
        "fig09",
        "fig10",
        "fig11",
        "fig12",
        "fig13",
        "fig14",
        "fig15",
        "fig16",
        "table1",
        "headline",
        "mixed",
        "throughput",
        "adversity",
        "all",
    ];
    if which.is_empty() || !known.contains(&which.as_str()) {
        eprintln!("usage: pp-exp <{}> [--quick]", known.join("|"));
        std::process::exit(2);
    }

    let want = |name: &str| which == name || which == "all";

    if want("fig06") {
        println!("{}", fig06().render());
    }
    if want("fig07") {
        println!("{}", fig07(effort, false).render());
    }
    if want("fig08") || want("fig09") {
        let (g, p) = fig08_09(effort);
        if want("fig08") {
            println!("{}", g.render());
        }
        if want("fig09") {
            println!("{}", p.render());
        }
    }
    if want("fig10") || want("fig11") {
        let (g, l) = fig10_11(effort);
        if want("fig10") {
            println!("{}", g.render());
        }
        if want("fig11") {
            println!("{}", l.render());
        }
    }
    if want("fig12") {
        println!("{}", fig12(effort).render());
    }
    if want("fig13") {
        println!("{}", fig07(effort, true).render());
    }
    if want("fig14") {
        println!("{}", fig14(effort).render());
    }
    if want("fig15") {
        println!("{}", fig15(effort).render());
    }
    if want("fig16") {
        println!("{}", fig16(effort).render());
    }
    if want("headline") {
        println!("{}", headline_fw_nat_40g(effort).render());
    }
    if want("mixed") {
        println!("{}", mixed_goodput(effort).render());
    }
    if want("table1") {
        println!("{}", table1());
    }
    if want("throughput") {
        // Machine-readable: this subcommand feeds the bench trajectory.
        println!("{}", emulator_throughput(effort).render_json());
    }
    if want("adversity") {
        // Machine-readable and byte-reproducible for a given seed: CI
        // uploads this series as an artifact on every push.
        println!("{}", adversity_sweep(effort).render_json());
    }
}
