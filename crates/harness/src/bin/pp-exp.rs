//! `pp-exp` — regenerate the paper's tables and figures.
//!
//! Usage:
//!
//! ```text
//! pp-exp <experiment> [--quick] [--out FILE] [--baseline FILE] [--tolerance T]
//!
//! experiments: fig06 fig07 fig08 fig09 fig10 fig11 fig12 fig13 fig14
//!              fig15 fig16 table1 headline mixed throughput adversity all
//! ```
//!
//! Each experiment prints a text table (the repository's rendering of the
//! corresponding figure). `--quick` uses the reduced test-effort sweep.
//! Two experiments measure the reproduction itself and emit JSON series on
//! stdout for dashboards and trend tracking: `throughput` (scalar pipeline
//! vs the `pp_fastpath` engine at 1/2/4/8 workers) and `adversity`
//! (goodput/eviction curves vs injected NF-leg loss under a fixed scenario
//! seed — the same seed always produces byte-identical output, so the
//! series doubles as a replay/regression artifact).
//!
//! For `throughput`, `--out FILE` also writes the JSON series to `FILE`
//! (the committed `BENCH_fastpath.json` trajectory snapshot), and
//! `--baseline FILE` compares the fresh run against a committed snapshot,
//! exiting 1 when any worker width lost more than `--tolerance` (default
//! 0.15) of its packets/sec.

use pp_harness::bench_gate::{compare_throughput, DEFAULT_TOLERANCE};
use pp_harness::experiments::{
    adversity_sweep, emulator_throughput, fig06, fig07, fig08_09, fig10_11, fig12, fig14, fig15,
    fig16, headline_fw_nat_40g, mixed_goodput, table1, Effort,
};
use pp_metrics::Series;

/// The value following a `--flag`, if present.
fn flag_value(args: &[String], flag: &str) -> Option<String> {
    args.iter().position(|a| a == flag).and_then(|i| args.get(i + 1)).cloned()
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let quick = args.iter().any(|a| a == "--quick");
    let effort = if quick { Effort::Quick } else { Effort::Full };
    let out_path = flag_value(&args, "--out");
    let baseline_path = flag_value(&args, "--baseline");
    let tolerance = match flag_value(&args, "--tolerance") {
        Some(t) => t.parse().unwrap_or_else(|_| {
            eprintln!("--tolerance must be a number, got {t:?}");
            std::process::exit(2);
        }),
        None => DEFAULT_TOLERANCE,
    };
    let flags_taking_value = ["--out", "--baseline", "--tolerance"];
    let which = args
        .iter()
        .enumerate()
        .find(|(i, a)| {
            let is_flag_value = *i > 0 && flags_taking_value.contains(&args[i - 1].as_str());
            !a.starts_with("--") && !is_flag_value
        })
        .map(|(_, a)| a.clone())
        .unwrap_or_default();

    let known = [
        "fig06",
        "fig07",
        "fig08",
        "fig09",
        "fig10",
        "fig11",
        "fig12",
        "fig13",
        "fig14",
        "fig15",
        "fig16",
        "table1",
        "headline",
        "mixed",
        "throughput",
        "adversity",
        "all",
    ];
    if which.is_empty() || !known.contains(&which.as_str()) {
        eprintln!(
            "usage: pp-exp <{}> [--quick] [--out FILE] [--baseline FILE] [--tolerance T]",
            known.join("|")
        );
        std::process::exit(2);
    }

    let want = |name: &str| which == name || which == "all";

    if want("fig06") {
        println!("{}", fig06().render());
    }
    if want("fig07") {
        println!("{}", fig07(effort, false).render());
    }
    if want("fig08") || want("fig09") {
        let (g, p) = fig08_09(effort);
        if want("fig08") {
            println!("{}", g.render());
        }
        if want("fig09") {
            println!("{}", p.render());
        }
    }
    if want("fig10") || want("fig11") {
        let (g, l) = fig10_11(effort);
        if want("fig10") {
            println!("{}", g.render());
        }
        if want("fig11") {
            println!("{}", l.render());
        }
    }
    if want("fig12") {
        println!("{}", fig12(effort).render());
    }
    if want("fig13") {
        println!("{}", fig07(effort, true).render());
    }
    if want("fig14") {
        println!("{}", fig14(effort).render());
    }
    if want("fig15") {
        println!("{}", fig15(effort).render());
    }
    if want("fig16") {
        println!("{}", fig16(effort).render());
    }
    if want("headline") {
        println!("{}", headline_fw_nat_40g(effort).render());
    }
    if want("mixed") {
        println!("{}", mixed_goodput(effort).render());
    }
    if want("table1") {
        println!("{}", table1());
    }
    if want("throughput") {
        // Machine-readable: this subcommand feeds the bench trajectory.
        let series = emulator_throughput(effort);
        let json = series.render_json();
        println!("{json}");
        if let Some(path) = &out_path {
            if let Err(e) = std::fs::write(path, format!("{json}\n")) {
                eprintln!("failed to write {path}: {e}");
                std::process::exit(1);
            }
        }
        if let Some(path) = &baseline_path {
            let text = std::fs::read_to_string(path).unwrap_or_else(|e| {
                eprintln!("failed to read baseline {path}: {e}");
                std::process::exit(1);
            });
            let baseline = Series::parse_json(&text).unwrap_or_else(|| {
                eprintln!("baseline {path} is not a valid series JSON");
                std::process::exit(1);
            });
            match compare_throughput(&series, &baseline, tolerance) {
                Ok(report) => {
                    for line in &report.lines {
                        eprintln!("{line}");
                    }
                    if !report.passed() {
                        for failure in &report.failures {
                            eprintln!("throughput regression: {failure}");
                        }
                        std::process::exit(1);
                    }
                }
                Err(e) => {
                    eprintln!("baseline comparison failed: {e}");
                    std::process::exit(1);
                }
            }
        }
    }
    if want("adversity") {
        // Machine-readable and byte-reproducible for a given seed: CI
        // uploads this series as an artifact on every push.
        println!("{}", adversity_sweep(effort).render_json());
    }
}
