//! `pp-fuzz` — differential conformance fuzzing of every execution
//! path, with failure shrinking and a pinned-regression corpus.
//!
//! Exit codes: 0 all cases/replays clean, 1 failures found, 2 usage
//! error.

use pp_harness::fuzz;
use std::process::ExitCode;

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let cli = match fuzz::parse(&args) {
        Ok(cli) => cli,
        Err(e) => {
            eprintln!("pp-fuzz: {e}\n{}", fuzz::usage());
            return ExitCode::from(2);
        }
    };
    match fuzz::run_fuzz(&cli) {
        Ok(run) => {
            print!("{}", run.rendered);
            if run.failures > 0 {
                ExitCode::from(1)
            } else {
                ExitCode::SUCCESS
            }
        }
        Err(e) => {
            eprintln!("pp-fuzz: {e}");
            ExitCode::from(2)
        }
    }
}
