//! Static verification gate: runs `pp_verify` over every built-in
//! dataplane program. Exit codes: 0 = clean (infos/warnings allowed),
//! 1 = at least one error-severity finding, 2 = usage error.

use pp_harness::lint;

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let cli = match lint::parse(&args) {
        Ok(cli) => cli,
        Err(e) => {
            eprintln!("pp-lint: {e}\n{}", lint::usage());
            std::process::exit(2);
        }
    };
    if cli.list {
        for t in lint::TARGETS {
            println!("{t}");
        }
        return;
    }
    let targets: Vec<String> = if cli.all {
        lint::TARGETS.iter().map(|s| s.to_string()).collect()
    } else {
        cli.targets.clone()
    };
    let run = match lint::run_lint(&targets) {
        Ok(run) => run,
        Err(e) => {
            eprintln!("pp-lint: {e}\n{}", lint::usage());
            std::process::exit(2);
        }
    };
    print!("{}", run.rendered);
    if let Some(path) = &cli.out {
        if let Err(e) = std::fs::write(path, &run.rendered) {
            eprintln!("pp-lint: writing {path}: {e}");
            std::process::exit(2);
        }
    }
    if run.errors > 0 {
        std::process::exit(1);
    }
}
