//! The distributed parking tier: goodput and fault tolerance of a
//! [`pp_cluster::Cluster`] as the switch count grows.
//!
//! Not a figure from the paper — like `throughput`, it measures the
//! reproduction itself. The parent deployment is the shared 8-server
//! slicing; a cluster of N switches serves it behind the consistent-hash
//! plan, and the sweep times the full Split → NF → Merge round trip at
//! N ∈ {1, 2, 4}. The one-switch row doubles as the equivalence anchor:
//! `tests/cluster_conformance.rs` pins it step-for-step to the scalar
//! reference, so the sweep's cost over `throughput`'s scalar row is the
//! store indirection plus the routing layer, nothing semantic.
//!
//! The second series is the availability drill: park a wave, black out
//! one switch, and let the survivors merge what they own. The drill
//! asserts the cluster-wide conformance oracle — the blacked-out
//! switch's slots stay accounted, nothing leaks — and that the
//! survivors actually serve (their merges are the goodput that remains).

use std::time::Instant;

use crate::experiments::Effort;
use pp_cluster::{Cluster, ClusterConfig};
use pp_fastpath::SlicedTestbed;
use pp_metrics::{MetricsRegistry, Series};
use pp_netsim::adversity::{AdversityProfile, FaultTally, LegProfile};
use pp_rmt::switch::BatchPacket;

/// Slices of the parent deployment (the shared 8-server shape).
const SLICES: usize = 8;
/// Per-slice park-table slots: 8 × 512 = 4096, enough for the full wave.
/// (`ClusterConfig::slab` pins the ring seed to 42, the seed the lint
/// targets and the conformance tests share.)
const SLOTS: usize = 512;

/// `x` offset distinguishing cluster rows from worker rows when both
/// land in the same trajectory file (`BENCH_fastpath.json`): a cluster
/// of N switches is row `100 + N`.
pub const CLUSTER_ROW_BASE: f64 = 100.0;

fn testbed() -> SlicedTestbed {
    SlicedTestbed::new(SLICES, SLOTS)
}

fn workload(effort: Effort) -> Vec<BatchPacket> {
    let packets = match effort {
        Effort::Quick => 600,
        Effort::Full => 4000,
    };
    testbed().counted_enterprise_wave(21, packets)
}

fn build(tb: &SlicedTestbed, switches: usize) -> Cluster {
    let mut cluster =
        Cluster::new(&tb.config(), ClusterConfig::slab(switches)).expect("cluster builds");
    tb.wire(&mut |mac, port| cluster.l2_add(mac, port));
    cluster
}

/// One timed fault-free sample of `reps` back-to-back round trips (each
/// fully merges, so the cluster re-enters every rep empty); returns
/// (packets/sec, parked-per-rep, merged-per-rep). Repeating inside the
/// timer widens the measurement window — a single 4k-packet round trip
/// is ~10 ms on this class of host, too short for a stable wall-clock
/// rate.
fn run_once(
    tb: &SlicedTestbed,
    inputs: &[BatchPacket],
    switches: usize,
    reps: u64,
) -> (f64, u64, u64) {
    let mut cluster = build(tb, switches);
    let calm = AdversityProfile::disabled();
    let mut tally = FaultTally::default();
    let start = Instant::now();
    let mut merged_total = 0u64;
    for _ in 0..reps {
        merged_total +=
            cluster.roundtrip_adverse(inputs, tb.sink_mac(), &calm, &mut tally).len() as u64;
    }
    let wall = start.elapsed();
    cluster.check_oracle().assert_ok();
    let totals = cluster.cluster_counters();
    assert_eq!(merged_total, totals.merges + totals.enb0_from_server);
    let pps = (inputs.len() as u64 * reps) as f64 / wall.as_secs_f64();
    (pps, totals.splits / reps, totals.merges / reps)
}

/// The goodput sweep: packets/sec of the cluster round trip at 1, 2 and
/// 4 switches. Row `x = 100 + N`; the `pps` column feeds the same
/// `compare_throughput` gate as the emulator-throughput sweep.
pub fn cluster_goodput(effort: Effort) -> Series {
    let tb = testbed();
    let inputs = workload(effort);
    let mut series = Series::new(
        "Cluster tier: Split -> NF -> Merge goodput vs switch count (slab store)",
        "cluster_row",
        vec!["pps".into(), "parked".into(), "merged".into()],
    );
    // Wall-clock throughput on a shared host is noisy: take the best of
    // several samples, and at full effort widen each sample to five
    // round trips so one timing window covers ~50 ms of work.
    let (tries, reps) = match effort {
        Effort::Quick => (3, 1),
        Effort::Full => (5, 5),
    };
    for switches in [1usize, 2, 4] {
        let (mut pps, mut parked, mut merged) = (0.0, 0, 0);
        for _ in 0..tries {
            let r = run_once(&tb, &inputs, switches, reps);
            if r.0 > pps {
                (pps, parked, merged) = r;
            }
        }
        assert!(parked > 0, "cluster of {switches} parked nothing");
        assert_eq!(parked, merged, "a calm run restores every parked flow");
        series.push(CLUSTER_ROW_BASE + switches as f64, vec![pps, parked as f64, merged as f64]);
    }
    series
}

/// The blackout drill at N ∈ {2, 4}: park a seeded-adversity wave, take
/// one switch down, and merge the survivors' share. Asserts the
/// cluster-wide oracle (zero leaked slots) and that survivors serve.
pub fn cluster_blackout(effort: Effort) -> Series {
    let tb = testbed();
    let inputs = workload(effort);
    let adv = AdversityProfile { seed: 77, from_nf: LegProfile::loss(0.05), ..Default::default() };
    let mut series = Series::new(
        "Cluster tier: one-switch blackout, survivors' goodput (oracle-clean)",
        "switches",
        vec![
            "survivor_merges".into(),
            "blackout_drops".into(),
            "proxy_drops".into(),
            "leaked_slots".into(),
        ],
    );
    for switches in [2usize, 4] {
        let mut cluster = build(&tb, switches);
        // Stale routing stays on during the outage: sprayed arrivals
        // whose owner is the dead switch die in the mesh (proxy_drops),
        // arrivals cabled to it die at its front panel (blackout_drops).
        cluster.set_proxy_spray(200);
        let mut tally = FaultTally::default();
        let outs = cluster.process_wave(&inputs);
        let down = cluster.switch_ids()[0];
        cluster.set_down(down, true);
        let back = pp_fastpath::adverse_return_wave(&adv, outs, tb.sink_mac(), &mut tally);
        cluster.process_return_wave(back);

        cluster.check_oracle().assert_ok();
        let totals = cluster.cluster_counters();
        let leaked = cluster.occupancy() as i64
            - (totals.splits - totals.merges - totals.explicit_drops - totals.evictions) as i64;
        assert_eq!(leaked, 0, "blackout at N={switches} leaked slots");
        assert!(totals.merges > 0, "survivors must keep serving at N={switches}");
        assert!(
            cluster.counters().blackout_drops > 0,
            "the dead switch's share must be charged at its front panel"
        );
        series.push(
            switches as f64,
            vec![
                totals.merges as f64,
                cluster.counters().blackout_drops as f64,
                cluster.counters().proxy_drops as f64,
                leaked as f64,
            ],
        );
    }
    series
}

/// The telemetry snapshot `pp-exp cluster --telemetry FILE` exports: a
/// two-switch cluster that parks a wave, grows to three switches
/// mid-flight (so the rebalance families are live), and merges the wave
/// under mild adversity — per-switch labelled dataplane families plus
/// the `pp_cluster_*` aggregates, `pp_cluster_rebalance_moved_flows`
/// included.
pub fn cluster_telemetry(effort: Effort) -> MetricsRegistry {
    let tb = testbed();
    let inputs = workload(effort);
    let mut cluster = build(&tb, 2);
    let mut tally = FaultTally::default();
    let outs = cluster.process_wave(&inputs);
    cluster.join().expect("a third switch joins");
    let adv = AdversityProfile::nf_loss(5, 0.02);
    let back = pp_fastpath::adverse_return_wave(&adv, outs, tb.sink_mac(), &mut tally);
    cluster.process_return_wave(back);
    cluster.check_oracle().assert_ok();
    cluster.telemetry_registry(&tally)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn goodput_rows_park_and_restore_at_every_width() {
        let s = cluster_goodput(Effort::Quick);
        assert_eq!(s.points().len(), 3);
        let pps = s.column("pps").unwrap();
        assert!(pps.iter().all(|&p| p > 0.0), "{pps:?}");
        assert_eq!(s.points()[0].x, 101.0);
        assert_eq!(s.points()[2].x, 104.0);
    }

    #[test]
    fn blackout_drill_is_oracle_clean_with_survivors_serving() {
        let s = cluster_blackout(Effort::Quick);
        let merges = s.column("survivor_merges").unwrap();
        let leaked = s.column("leaked_slots").unwrap();
        assert!(merges.iter().all(|&m| m > 0.0), "{merges:?}");
        assert!(leaked.iter().all(|&l| l == 0.0), "{leaked:?}");
    }

    #[test]
    fn telemetry_snapshot_has_per_switch_labels_and_rebalance_counter() {
        let reg = cluster_telemetry(Effort::Quick);
        assert!(reg.get("pp_cluster_rebalance_moved_flows", &[]).is_some());
        assert!(reg.get("pp_cluster_rebalances", &[]).unwrap().value() >= 1.0);
        // At least one per-switch labelled dataplane family.
        assert!(reg.get("pp_splits_total", &[("switch", "0")]).is_some());
        assert!(reg.get("pp_splits_total", &[]).is_some(), "aggregate family");
    }
}
