//! One runner per figure/table of the paper's evaluation.
//!
//! Each function returns a [`Series`] whose rendered text table is this
//! repository's equivalent of the figure. [`Effort`] scales simulation
//! windows and sweep densities: `Quick` keeps integration tests fast,
//! `Full` is what the `pp-exp` binary and the Criterion benches run.
//!
//! The per-experiment parameters (NIC speed, framework, chain, memory
//! fraction, expiry threshold) follow §6.1 of the paper; see DESIGN.md's
//! per-experiment index for the mapping.

pub mod adversity;
pub mod cluster;
pub mod throughput;

pub use adversity::{adversity as adversity_sweep, adversity_report};
pub use cluster::{cluster_blackout, cluster_goodput, cluster_telemetry};
pub use throughput::{
    telemetry_overhead, throughput as emulator_throughput, throughput_telemetry, OverheadReport,
};

use crate::multiserver::{run_pipe, MultiServerConfig};
use crate::runner::find_peak_goodput;
use crate::testbed::{
    run, ChainSpec, DeployMode, FrameworkKind, ParkParams, RunReport, TestbedConfig,
};
use payloadpark::program::build_switch;
use payloadpark::{ParkConfig, PipeControl, PipePark, SliceSpec};
use pp_metrics::Series;
use pp_netsim::time::SimDuration;
use pp_nf::nfs::{NF_HEAVY_CYCLES, NF_LIGHT_CYCLES, NF_MEDIUM_CYCLES};
use pp_nf::server::ServerProfile;
use pp_rmt::chip::ChipProfile;
use pp_trafficgen::enterprise::EnterpriseDistribution;
use pp_trafficgen::gen::{SizeModel, TrafficMix};

/// Sweep density / simulation-window scaling.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Effort {
    /// Small windows, sparse sweeps — for tests.
    Quick,
    /// The real experiment parameters — for the `pp-exp` binary and benches.
    Full,
}

impl Effort {
    fn duration(self) -> SimDuration {
        match self {
            Effort::Quick => SimDuration::from_millis(6),
            Effort::Full => SimDuration::from_millis(40),
        }
    }
    fn coarse(self) -> usize {
        match self {
            Effort::Quick => 4,
            Effort::Full => 7,
        }
    }
    fn refine(self) -> usize {
        match self {
            Effort::Quick => 2,
            Effort::Full => 4,
        }
    }
}

/// The main rig's server model (60-core 2.3 GHz Xeon E7-4870v2, §6.1).
fn main_rig() -> ServerProfile {
    ServerProfile {
        cpu_hz: 2.3e9,
        // Deep, slow service-rate dips (frequency scaling / interference):
        // near saturation these create the multi-millisecond queue
        // excursions that exhaust the lookup table (Figs. 14/15).
        modulation_amplitude: 0.12,
        modulation_period: SimDuration::from_millis(25),
        ..Default::default()
    }
}

fn base_config(effort: Effort) -> TestbedConfig {
    TestbedConfig {
        duration: effort.duration(),
        server: main_rig(),
        seed: 42,
        ..Default::default()
    }
}

fn peak(cfg: &TestbedConfig, effort: Effort, hi: f64) -> RunReport {
    find_peak_goodput(cfg, 0.5, hi, effort.coarse(), effort.refine()).report
}

// ---------------------------------------------------------------------
// Fig. 6 — workload packet-size CDF
// ---------------------------------------------------------------------

/// Fig. 6: the enterprise-datacenter packet-size CDF.
pub fn fig06() -> Series {
    let mut s = Series::new(
        "Fig 6: packet size CDF, enterprise datacenter workload",
        "size_bytes",
        vec!["cdf".into()],
    );
    for (size, cdf) in EnterpriseDistribution::figure_series() {
        s.push(size as f64, vec![cdf]);
    }
    s
}

// ---------------------------------------------------------------------
// Fig. 7 / Fig. 13 — FW→NAT→LB goodput & latency vs send rate
// ---------------------------------------------------------------------

/// A baseline-vs-PayloadPark send-rate sweep over one testbed
/// configuration: the Fig. 7-style shape (goodput, average latency and
/// PCIe bandwidth per deployment at each rate), shared by every sweep
/// that renders it.
fn rate_sweep(title: &str, rates: &[f64], mut cfg: TestbedConfig, park: ParkParams) -> Series {
    let mut series = Series::new(
        title,
        "send_gbps",
        vec![
            "goodput_base_gbps".into(),
            "goodput_pp_gbps".into(),
            "latency_base_us".into(),
            "latency_pp_us".into(),
            "pcie_base_gbps".into(),
            "pcie_pp_gbps".into(),
        ],
    );
    for &rate in rates {
        cfg.rate_gbps = rate;
        cfg.mode = DeployMode::Baseline;
        let base = run(&cfg);
        cfg.mode = DeployMode::PayloadPark(park);
        let park = run(&cfg);
        series.push(
            rate,
            vec![
                base.goodput_gbps,
                park.goodput_gbps,
                base.avg_latency_us,
                park.avg_latency_us,
                base.pcie_gbps,
                park.pcie_gbps,
            ],
        );
    }
    series
}

/// Fig. 7: FW→NAT→LB on NetBricks over 10 GE, goodput and average latency
/// vs send rate; `recirculation` turns it into Fig. 13 (384 B parked).
pub fn fig07(effort: Effort, recirculation: bool) -> Series {
    let rates: Vec<f64> = match effort {
        Effort::Quick => vec![2.0, 6.0, 10.0, 12.0],
        Effort::Full => vec![1.0, 2.0, 4.0, 6.0, 8.0, 9.0, 10.0, 11.0, 12.0, 13.0],
    };
    let title = if recirculation {
        "Fig 13: FW->NAT->LB on NetBricks, 10GE, with recirculation (384B parked)"
    } else {
        "Fig 7: FW->NAT->LB on NetBricks, 10GE (160B parked)"
    };
    let mut cfg = base_config(effort);
    cfg.nic_gbps = 10.0;
    cfg.framework = FrameworkKind::NetBricks;
    cfg.chain = ChainSpec::FwNatLb { fw_rules: 20 };
    cfg.sizes = SizeModel::Enterprise;
    rate_sweep(title, &rates, cfg, ParkParams { recirculation, ..Default::default() })
}

/// The Fig. 7/8/9-style goodput sweep on the *mixed TCP+UDP* enterprise
/// wave — the traffic composition the paper's target datacenters actually
/// carry (70 % of flows are TCP connections with SYN/data/FIN phases).
/// FW→NAT on OpenNetVM over 40 GE: goodput, latency and PCIe bandwidth vs
/// send rate, baseline against PayloadPark parking both protocols.
pub fn mixed_goodput(effort: Effort) -> Series {
    let rates: Vec<f64> = match effort {
        Effort::Quick => vec![4.0, 12.0, 20.0],
        Effort::Full => vec![2.0, 6.0, 10.0, 14.0, 18.0, 22.0, 26.0, 30.0],
    };
    let mut cfg = base_config(effort);
    cfg.nic_gbps = 40.0;
    cfg.framework = FrameworkKind::OpenNetVm;
    cfg.chain = ChainSpec::FwNat { fw_rules: 1 };
    cfg.sizes = SizeModel::Enterprise;
    cfg.mix = TrafficMix::TcpUdp { tcp_fraction: 0.7 };
    rate_sweep(
        "Mixed TCP+UDP enterprise wave: FW->NAT on OpenNetVM, 40GE (70% TCP flows)",
        &rates,
        cfg,
        ParkParams::default(),
    )
}

/// One representative PayloadPark run of the mixed TCP+UDP sweep at a
/// mid-sweep send rate — the run `pp-exp mixed --telemetry FILE` exports.
pub fn mixed_report(effort: Effort) -> RunReport {
    let mut cfg = base_config(effort);
    cfg.nic_gbps = 40.0;
    cfg.framework = FrameworkKind::OpenNetVm;
    cfg.chain = ChainSpec::FwNat { fw_rules: 1 };
    cfg.sizes = SizeModel::Enterprise;
    cfg.mix = TrafficMix::TcpUdp { tcp_fraction: 0.7 };
    cfg.rate_gbps = 12.0;
    cfg.mode = DeployMode::PayloadPark(ParkParams::default());
    run(&cfg)
}

/// §6.2.1 headline: FW→NAT on OpenNetVM over 40 GE with the enterprise
/// workload — peak goodput baseline vs PayloadPark (+15.6 % in the paper)
/// and the PCIe saving (12 %).
pub fn headline_fw_nat_40g(effort: Effort) -> Series {
    let mut cfg = base_config(effort);
    cfg.nic_gbps = 40.0;
    cfg.framework = FrameworkKind::OpenNetVm;
    cfg.chain = ChainSpec::FwNat { fw_rules: 1 };
    cfg.sizes = SizeModel::Enterprise;
    cfg.mode = DeployMode::Baseline;
    let base = peak(&cfg, effort, 60.0);
    cfg.mode = DeployMode::PayloadPark(ParkParams::default());
    let park = peak(&cfg, effort, 60.0);
    let mut s = Series::new(
        "Sec 6.2.1: FW->NAT on OpenNetVM, 40GE, enterprise workload (peak)",
        "row",
        vec![
            "goodput_base_gbps".into(),
            "goodput_pp_gbps".into(),
            "gain_pct".into(),
            "pcie_base_gbps".into(),
            "pcie_pp_gbps".into(),
            "pcie_saving_pct".into(),
        ],
    );
    let gain = (park.goodput_gbps / base.goodput_gbps - 1.0) * 100.0;
    let pcie_saving = (1.0 - park.pcie_gbps / base.pcie_gbps) * 100.0;
    s.push(
        0.0,
        vec![
            base.goodput_gbps,
            park.goodput_gbps,
            gain,
            base.pcie_gbps,
            park.pcie_gbps,
            pcie_saving,
        ],
    );
    s
}

// ---------------------------------------------------------------------
// Figs. 8 & 9 — fixed packet sizes: peak goodput and PCIe utilization
// ---------------------------------------------------------------------

/// Figs. 8 and 9: peak goodput (higher is better) and PCIe bandwidth at
/// peak (lower is better) across fixed packet sizes for Firewall, NAT and
/// FW→NAT on OpenNetVM over 40 GE.
pub fn fig08_09(effort: Effort) -> (Series, Series) {
    let sizes: Vec<usize> = match effort {
        Effort::Quick => vec![256, 512, 1492],
        Effort::Full => vec![256, 384, 512, 1024, 1492],
    };
    let chains: [(&str, ChainSpec); 3] = [
        ("fw", ChainSpec::Firewall { rules: 1 }),
        ("nat", ChainSpec::Nat),
        ("fw_nat", ChainSpec::FwNat { fw_rules: 1 }),
    ];
    let mut cols = Vec::new();
    for (name, _) in &chains {
        cols.push(format!("{name}_base"));
        cols.push(format!("{name}_pp"));
    }
    let mut goodput = Series::new(
        "Fig 8: peak goodput (Gbps) vs packet size, 40GE OpenNetVM",
        "pkt_bytes",
        cols.clone(),
    );
    let mut pcie = Series::new(
        "Fig 9: PCIe bandwidth (Gbps) at peak vs packet size, 40GE OpenNetVM",
        "pkt_bytes",
        cols,
    );
    for &size in &sizes {
        let mut grow = Vec::new();
        let mut prow = Vec::new();
        for (_, chain) in &chains {
            let mut cfg = base_config(effort);
            cfg.nic_gbps = 40.0;
            cfg.framework = FrameworkKind::OpenNetVm;
            cfg.chain = *chain;
            cfg.sizes = SizeModel::Fixed(size);
            cfg.mode = DeployMode::Baseline;
            let base = peak(&cfg, effort, 50.0);
            cfg.mode = DeployMode::PayloadPark(ParkParams::default());
            let park = peak(&cfg, effort, 50.0);
            grow.push(base.goodput_gbps);
            grow.push(park.goodput_gbps);
            prow.push(base.pcie_gbps);
            prow.push(park.pcie_gbps);
        }
        goodput.push(size as f64, grow);
        pcie.push(size as f64, prow);
    }
    (goodput, pcie)
}

// ---------------------------------------------------------------------
// Figs. 10 & 11 — eight NF servers
// ---------------------------------------------------------------------

/// Figs. 10 and 11: per-server goodput and latency for 8 NF servers
/// (4 pipes × 2 slices, MAC swapper, 384 B packets, ~40 % SRAM reserved).
///
/// The four pipes are independent (no shared stateful memory), so they run
/// as four parallel `run_pipe` instances with distinct seeds.
pub fn fig10_11(effort: Effort) -> (Series, Series) {
    let base_cfg = |seed: u64, mode: DeployMode, rate: f64| MultiServerConfig {
        rate_gbps: rate,
        duration: effort.duration(),
        server: ServerProfile {
            cpu_hz: 2.4e9,
            modulation_period: SimDuration::from_millis(10),
            ..Default::default()
        },
        seed,
        mode,
        ..Default::default()
    };
    let park = DeployMode::PayloadPark(ParkParams { sram_fraction: 0.40, ..Default::default() });

    // Find a sustainable per-server rate for each mode on pipe 0, then run
    // every pipe at that rate (the paper drives all servers identically).
    let probe = |mode: DeployMode| -> f64 {
        let mut rate = 2.0;
        let mut best = rate;
        while rate <= 16.0 {
            let reports = run_pipe(&base_cfg(1, mode, rate));
            if reports.iter().all(|r| r.healthy()) {
                best = rate;
            } else {
                break;
            }
            rate += match effort {
                Effort::Quick => 3.0,
                Effort::Full => 1.0,
            };
        }
        best
    };
    let rate_base = probe(DeployMode::Baseline);
    let rate_park = probe(park);

    // Per pipe: baseline at its peak, PayloadPark at its (higher) peak for
    // the goodput comparison, and PayloadPark at the *baseline's* rate for
    // the like-for-like latency comparison (the paper's latency win is the
    // PCIe saving at comparable load, §6.2.3).
    let mut per_server: Vec<(RunReport, RunReport, RunReport)> = Vec::new();
    std::thread::scope(|scope| {
        let handles: Vec<_> = (0..4u64)
            .map(|pipe| {
                let base_cfg = &base_cfg;
                scope.spawn(move || {
                    let b = run_pipe(&base_cfg(pipe + 1, DeployMode::Baseline, rate_base));
                    let p = run_pipe(&base_cfg(pipe + 1, park, rate_park));
                    let pl = run_pipe(&base_cfg(pipe + 1, park, rate_base));
                    [
                        (b[0].clone(), p[0].clone(), pl[0].clone()),
                        (b[1].clone(), p[1].clone(), pl[1].clone()),
                    ]
                })
            })
            .collect();
        for h in handles {
            per_server.extend(h.join().expect("pipe thread"));
        }
    });

    let mut goodput = Series::new(
        "Fig 10: per-server peak goodput, 8 NF servers, 384B MAC-swap",
        "server",
        vec!["baseline_gbps".into(), "payloadpark_gbps".into()],
    );
    let mut latency = Series::new(
        "Fig 11: per-server avg latency at the baseline's peak rate, 8 NF servers",
        "server",
        vec!["baseline_us".into(), "payloadpark_us".into()],
    );
    for (i, (b, p, pl)) in per_server.iter().enumerate() {
        goodput.push((i + 1) as f64, vec![b.goodput_gbps, p.goodput_gbps]);
        latency.push((i + 1) as f64, vec![b.avg_latency_us, pl.avg_latency_us]);
    }
    (goodput, latency)
}

// ---------------------------------------------------------------------
// Fig. 12 — explicit drops vs eviction policy
// ---------------------------------------------------------------------

/// Fig. 12: peak goodput with/without Explicit Drops at expiry thresholds
/// 2 and 10, as the firewall's blacklist fraction varies (FW→NAT,
/// enterprise workload, 40 GE OpenNetVM).
pub fn fig12(effort: Effort) -> Series {
    let drop_pcts: Vec<u8> = match effort {
        Effort::Quick => vec![0, 40],
        Effort::Full => vec![0, 10, 20, 40],
    };
    let variants: [(&str, Option<(u16, bool)>); 4] = [
        ("baseline", None),
        ("noexp_exp2", Some((2, false))),
        ("noexp_exp10", Some((10, false))),
        ("exp_exp10", Some((10, true))),
    ];
    let mut series = Series::new(
        "Fig 12: peak goodput (Gbps) vs firewall drop rate, FW->NAT enterprise",
        "blocked_pct",
        variants.iter().map(|(n, _)| n.to_string()).collect(),
    );
    for &pct in &drop_pcts {
        let mut row = Vec::new();
        for (_, v) in &variants {
            let mut cfg = base_config(effort);
            cfg.nic_gbps = 40.0;
            cfg.framework = FrameworkKind::OpenNetVm;
            cfg.chain = ChainSpec::FwNatBlacklist { blocked_pct: pct };
            cfg.sizes = SizeModel::Enterprise;
            cfg.mode = match v {
                None => DeployMode::Baseline,
                Some((expiry, explicit)) => DeployMode::PayloadPark(ParkParams {
                    expiry: *expiry,
                    explicit_drop: *explicit,
                    ..Default::default()
                }),
            };
            row.push(peak(&cfg, effort, 60.0).goodput_gbps);
        }
        series.push(f64::from(pct), row);
    }
    series
}

// ---------------------------------------------------------------------
// Fig. 14 — reserved memory sweep
// ---------------------------------------------------------------------

/// Fig. 14: peak goodput with zero premature evictions vs the fraction of
/// pipe SRAM reserved (384 B packets, FW→NAT, EXP = 1).
pub fn fig14(effort: Effort) -> Series {
    // The paper's measured operating points: 17.81 / 21.56 / 25.94 %.
    let fractions = [0.1781, 0.2156, 0.2594];
    let mut series = Series::new(
        "Fig 14: peak goodput (Gbps) vs % of pipe SRAM reserved, 384B FW->NAT EXP=1",
        "sram_pct",
        vec!["payloadpark_gbps".into(), "baseline_gbps".into()],
    );
    let mut cfg = base_config(effort);
    // Long windows: the eviction-vs-memory tradeoff needs several
    // modulation cycles to surface.
    cfg.duration = SimDuration::from_nanos(effort.duration().nanos() * 3);
    cfg.nic_gbps = 40.0;
    cfg.framework = FrameworkKind::OpenNetVm;
    cfg.chain = ChainSpec::FwNat { fw_rules: 1 };
    cfg.sizes = SizeModel::Fixed(384);
    cfg.mode = DeployMode::Baseline;
    let baseline = peak(&cfg, effort, 50.0).goodput_gbps;
    for &f in &fractions {
        cfg.mode = DeployMode::PayloadPark(ParkParams {
            sram_fraction: f,
            expiry: 1,
            ..Default::default()
        });
        let park = peak(&cfg, effort, 50.0);
        series.push(f * 100.0, vec![park.goodput_gbps, baseline]);
    }
    series
}

// ---------------------------------------------------------------------
// Fig. 15 — NF computational cost
// ---------------------------------------------------------------------

/// Fig. 15: peak goodput for NF-Light/Medium/Heavy across packet sizes
/// (40 GE, OpenNetVM).
pub fn fig15(effort: Effort) -> Series {
    let sizes: Vec<usize> = match effort {
        Effort::Quick => vec![256, 1492],
        Effort::Full => vec![256, 384, 1024, 1492],
    };
    let nfs: [(&str, u64); 3] =
        [("light", NF_LIGHT_CYCLES), ("medium", NF_MEDIUM_CYCLES), ("heavy", NF_HEAVY_CYCLES)];
    let mut cols = Vec::new();
    for (n, _) in &nfs {
        cols.push(format!("{n}_base"));
        cols.push(format!("{n}_pp"));
    }
    let mut series = Series::new(
        "Fig 15: peak goodput (Gbps) for NF-Light/Medium/Heavy vs packet size",
        "pkt_bytes",
        cols,
    );
    for &size in &sizes {
        let mut row = Vec::new();
        for (_, cycles) in &nfs {
            let mut cfg = base_config(effort);
            cfg.nic_gbps = 40.0;
            cfg.framework = FrameworkKind::OpenNetVm;
            cfg.chain = ChainSpec::Synthetic { cycles: *cycles };
            cfg.sizes = SizeModel::Fixed(size);
            cfg.mode = DeployMode::Baseline;
            let base = peak(&cfg, effort, 50.0);
            cfg.mode = DeployMode::PayloadPark(ParkParams::default());
            let park = peak(&cfg, effort, 50.0);
            row.push(base.goodput_gbps);
            row.push(park.goodput_gbps);
        }
        series.push(size as f64, row);
    }
    series
}

// ---------------------------------------------------------------------
// Fig. 16 — small fixed packets past saturation
// ---------------------------------------------------------------------

/// Fig. 16: goodput and latency vs send rate for 512 B packets, FW→NAT on
/// OpenNetVM over 40 GE — the baseline caps while PayloadPark continues.
pub fn fig16(effort: Effort) -> Series {
    let rates: Vec<f64> = match effort {
        Effort::Quick => vec![4.0, 12.0, 20.0],
        Effort::Full => vec![4.0, 8.0, 12.0, 14.0, 16.0, 18.0, 20.0, 24.0],
    };
    let mut series = Series::new(
        "Fig 16: 512B FW->NAT on OpenNetVM, 40GE: goodput & latency vs send rate",
        "send_gbps",
        vec![
            "goodput_base_gbps".into(),
            "goodput_pp_gbps".into(),
            "latency_base_us".into(),
            "latency_pp_us".into(),
        ],
    );
    let mut cfg = base_config(effort);
    cfg.nic_gbps = 40.0;
    cfg.framework = FrameworkKind::OpenNetVm;
    cfg.chain = ChainSpec::FwNat { fw_rules: 1 };
    cfg.sizes = SizeModel::Fixed(512);
    for &rate in &rates {
        cfg.rate_gbps = rate;
        cfg.mode = DeployMode::Baseline;
        let base = run(&cfg);
        cfg.mode = DeployMode::PayloadPark(ParkParams::default());
        let park = run(&cfg);
        series.push(
            rate,
            vec![base.goodput_gbps, park.goodput_gbps, base.avg_latency_us, park.avg_latency_us],
        );
    }
    series
}

// ---------------------------------------------------------------------
// Table 1 — resource utilization
// ---------------------------------------------------------------------

/// Table 1: switch resource utilization for the 4-server deployment (one
/// slice per pipe at ≈26 % SRAM) and the 8-server deployment (two slices
/// per pipe at ≈40 % total). Returns the rendered text.
pub fn table1() -> String {
    let chip = ChipProfile::default();

    let build = |slices_per_pipe: usize, fraction: f64| -> String {
        let mut pipes = Vec::new();
        for pipe in 0..1 {
            let mut park = ParkConfig {
                chip,
                expiry_threshold: 1,
                primary_blocks: 10,
                annex_blocks: 14,
                pipes: vec![],
            };
            let slots_total = park.slots_for_sram_fraction(fraction);
            let slices = (0..slices_per_pipe)
                .map(|s| SliceSpec {
                    name: format!("server{s}"),
                    split_ports: vec![(s * 4) as u16, (s * 4 + 1) as u16],
                    merge_ports: vec![(s * 4 + 2) as u16],
                    slots: (slots_total / slices_per_pipe).max(1),
                })
                .collect();
            park.pipes = vec![PipePark { pipe, slices, annex_pipe: None }];
            let (switch, handles) = build_switch(&park).expect("park builds");
            let control = PipeControl::new(handles[0].clone());
            pipes.push(control.resource_report(&switch).render());
        }
        pipes.remove(0)
    };

    let mut out = String::new();
    out.push_str("# Table 1: resource utilization on the emulated chip\n\n");
    out.push_str("## 4 NF servers (1 per pipe, ~26% SRAM reserved per pipe)\n");
    out.push_str(&build(1, 0.26));
    out.push_str("\n## 8 NF servers (2 per pipe, ~40% SRAM reserved per pipe)\n");
    out.push_str(&build(2, 0.40));
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fig06_series_shape() {
        let s = fig06();
        assert!(s.points().len() >= 5);
        assert_eq!(s.points().first().unwrap().values[0], 0.0);
        assert_eq!(s.points().last().unwrap().values[0], 1.0);
    }

    #[test]
    fn table1_mentions_all_resources() {
        let t = table1();
        for key in ["SRAM", "TCAM", "VLIW", "Crossbar", "Packet Header"] {
            assert!(t.contains(key), "missing {key} in:\n{t}");
        }
        assert!(t.contains("4 NF servers"));
        assert!(t.contains("8 NF servers"));
    }

    #[test]
    fn fig07_quick_shows_park_advantage_at_overload() {
        let s = fig07(Effort::Quick, false);
        let base = s.column("goodput_base_gbps").unwrap();
        let park = s.column("goodput_pp_gbps").unwrap();
        // At the highest send rate (12G > 10GE link), PayloadPark must beat
        // the baseline; below saturation they tie.
        let last = base.len() - 1;
        assert!(park[last] > base[last] * 1.02, "park {} base {}", park[last], base[last]);
        assert!((park[0] - base[0]).abs() / base[0] < 0.05);
        // And it saves PCIe bandwidth everywhere.
        let pcie_b = s.column("pcie_base_gbps").unwrap();
        let pcie_p = s.column("pcie_pp_gbps").unwrap();
        assert!(pcie_p.iter().zip(&pcie_b).all(|(p, b)| p < b));
    }

    #[test]
    fn mixed_goodput_quick_parks_the_tcp_wave() {
        let s = mixed_goodput(Effort::Quick);
        let base = s.column("goodput_base_gbps").unwrap();
        let park = s.column("goodput_pp_gbps").unwrap();
        // Below saturation they tie; at the top rate parking must win.
        assert!((park[0] - base[0]).abs() / base[0] < 0.05, "park {} base {}", park[0], base[0]);
        let last = base.len() - 1;
        assert!(park[last] > base[last] * 1.02, "park {} base {}", park[last], base[last]);
    }

    #[test]
    fn fig16_quick_baseline_caps_first() {
        let s = fig16(Effort::Quick);
        let base = s.column("goodput_base_gbps").unwrap();
        let park = s.column("goodput_pp_gbps").unwrap();
        let last = base.len() - 1;
        assert!(park[last] > base[last], "park {} base {}", park[last], base[last]);
    }
}
