//! Emulator throughput: scalar pipeline vs the `pp_fastpath` engine.
//!
//! This is not a figure from the paper — it measures the *reproduction
//! itself*: wall-clock packets per second of the full Split → NF → Merge
//! round trip, single-threaded versus the sharded, batched engine at
//! 1/2/4/8 workers. The rig is the shared 8-server §6.2.4 slicing
//! ([`SlicedTestbed`], also used by the `fastpath` bench and the
//! equivalence oracle), so every engine width runs the identical
//! dataplane program on identical traffic.
//!
//! The row at `workers = 0` is the scalar
//! [`pp_rmt::SwitchModel::process`] baseline; `speedup` is each row's
//! packets/sec over that baseline. Numbers scale with the host's core
//! count — on a single-core host the engine can only win through batch
//! amortization.

use crate::experiments::Effort;
use pp_fastpath::{EgressMeter, EngineConfig, SlicedTestbed};
use pp_metrics::Series;
use pp_netsim::time::SimDuration;
use pp_rmt::switch::{BatchOutput, BatchPacket};
use std::time::Instant;

/// Slices sharing the pipe (and the maximum worker count measured).
const SLICES: usize = 8;

fn testbed() -> SlicedTestbed {
    SlicedTestbed::new(SLICES, 2048)
}

/// The enterprise-mix workload, round-robined over the split ports.
fn workload(effort: Effort) -> Vec<BatchPacket> {
    let window = match effort {
        Effort::Quick => SimDuration::from_millis(2),
        Effort::Full => SimDuration::from_millis(12),
    };
    testbed().enterprise_wave(20, window)
}

/// One timed scalar round trip; returns (packets/sec, egress Gbps).
fn run_scalar(inputs: &[BatchPacket]) -> (f64, f64) {
    let tb = testbed();
    let (mut sw, _) = tb.build_scalar();
    let mut merged = BatchOutput::new();
    // Warm the pooled scratch (PHV pool, deparse arena, bounce frame) so
    // the timed loop measures steady-state, allocation-free processing.
    tb.scalar_roundtrip_into(&mut sw, &inputs[..inputs.len().min(64)], &mut merged);
    let start = Instant::now();
    tb.scalar_roundtrip_into(&mut sw, inputs, &mut merged);
    let wall = start.elapsed();
    let mut meter = EgressMeter::new();
    meter.record(merged.len() as u64, merged.wire_bytes() as u64);
    (inputs.len() as f64 / wall.as_secs_f64(), meter.gbps(wall))
}

/// One timed engine round trip; returns (packets/sec, egress Gbps). The
/// fused [`pp_fastpath::Engine::process_roundtrip`] keeps each slice's NF
/// reflection on its worker, so the whole per-packet path runs
/// shard-locally.
fn run_engine(inputs: Vec<BatchPacket>, workers: usize) -> (f64, f64) {
    let tb = testbed();
    let mut engine = tb.build_engine(EngineConfig { workers, ..Default::default() }).unwrap();
    let n = inputs.len();
    let start = Instant::now();
    let merged = engine.process_roundtrip(inputs, tb.sink_mac());
    let wall = start.elapsed();
    let mut meter = EgressMeter::new();
    meter.record(merged.packets() as u64, merged.wire_bytes() as u64);
    (n as f64 / wall.as_secs_f64(), meter.gbps(wall))
}

/// Best of three timed runs — wall-clock throughput on a shared host is
/// noisy, and the best run is the least-disturbed one.
fn best_of_3(mut run: impl FnMut() -> (f64, f64)) -> (f64, f64) {
    (0..3).map(|_| run()).fold((0.0, 0.0), |best, r| if r.0 > best.0 { r } else { best })
}

/// The emulator-throughput sweep: packets/sec for the full Split → NF →
/// Merge round trip. `workers = 0` is the scalar baseline.
pub fn throughput(effort: Effort) -> Series {
    let inputs = workload(effort);
    let mut series = Series::new(
        "Emulator throughput: scalar pipeline vs pp_fastpath workers (enterprise mix)",
        "workers",
        vec!["pps".into(), "egress_gbps".into(), "speedup".into()],
    );
    let (scalar_pps, scalar_gbps) = best_of_3(|| run_scalar(&inputs));
    series.push(0.0, vec![scalar_pps, scalar_gbps, 1.0]);
    for workers in [1usize, 2, 4, 8] {
        let (pps, gbps) = best_of_3(|| run_engine(inputs.clone(), workers));
        series.push(workers as f64, vec![pps, gbps, pps / scalar_pps]);
    }
    series
}

/// The dataplane telemetry registry for one engine round trip over the
/// throughput workload — what `pp-exp throughput --telemetry FILE` writes:
/// per-shard and aggregate PayloadPark counters, switch statistics,
/// occupancy and ring high-water marks.
pub fn throughput_telemetry(effort: Effort) -> pp_metrics::MetricsRegistry {
    let tb = testbed();
    let mut engine = tb.build_engine(EngineConfig { workers: 2, ..Default::default() }).unwrap();
    let _ = engine.process_roundtrip(workload(effort), tb.sink_mac());
    engine.telemetry_registry()
}

/// Telemetry cost on the scalar hot path: packets/sec with the flight
/// recorder and stage profiling on (the default) vs off.
#[derive(Debug, Clone, Copy)]
pub struct OverheadReport {
    /// Best observed packets/sec with telemetry enabled.
    pub on_pps: f64,
    /// Best observed packets/sec with telemetry disabled.
    pub off_pps: f64,
}

impl OverheadReport {
    /// Fractional slowdown of the telemetry-on path (0.03 = 3 % slower),
    /// from the ratio of the per-arm bests. Negative differences
    /// (telemetry "faster" — measurement noise) clamp to zero.
    pub fn overhead(&self) -> f64 {
        if self.off_pps <= 0.0 {
            return 0.0;
        }
        ((self.off_pps - self.on_pps) / self.off_pps).max(0.0)
    }
}

/// Measures telemetry overhead on the scalar Split → NF → Merge round trip.
/// **One** switch instance runs both arms — `set_telemetry` is toggled
/// between timed runs — because two separately-built switches differ by a
/// few percent from heap/cache layout alone, which would drown the signal.
/// The arms alternate (on, off, on, off, …) so slow drift in the host's
/// load hits both equally, and the gate statistic is the ratio of the
/// per-arm **bests**: timing noise on a shared host is one-sided
/// (interference only slows a run down), so each arm's maximum over the
/// rounds converges on that arm's true capacity — empirically far stabler
/// than any per-round pairing on a single-core box.
pub fn telemetry_overhead(effort: Effort) -> OverheadReport {
    let tb = testbed();
    let (packets, rounds) = match effort {
        Effort::Quick => (8_192, 25),
        Effort::Full => (16_384, 41),
    };
    let inputs = tb.counted_enterprise_wave(20, packets);
    let (mut sw, _) = tb.build_scalar();
    let mut merged = BatchOutput::new();
    // Warm the pooled scratch (and the recorder ring) outside the timing.
    tb.scalar_roundtrip_into(&mut sw, &inputs[..64], &mut merged);
    let mut report = OverheadReport { on_pps: 0.0, off_pps: 0.0 };
    for _ in 0..rounds {
        sw.set_telemetry(true);
        let start = Instant::now();
        tb.scalar_roundtrip_into(&mut sw, &inputs, &mut merged);
        let on = packets as f64 / start.elapsed().as_secs_f64();
        sw.set_telemetry(false);
        let start = Instant::now();
        tb.scalar_roundtrip_into(&mut sw, &inputs, &mut merged);
        let off = packets as f64 / start.elapsed().as_secs_f64();
        report.on_pps = report.on_pps.max(on);
        report.off_pps = report.off_pps.max(off);
    }
    report
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn throughput_series_shape_and_positivity() {
        let s = throughput(Effort::Quick);
        assert_eq!(s.points().len(), 5, "scalar + 4 worker widths");
        let pps = s.column("pps").unwrap();
        assert!(pps.iter().all(|&v| v > 0.0), "{pps:?}");
        let speedup = s.column("speedup").unwrap();
        assert_eq!(speedup[0], 1.0);
        let xs: Vec<f64> = s.points().iter().map(|p| p.x).collect();
        assert_eq!(xs, vec![0.0, 1.0, 2.0, 4.0, 8.0]);
    }

    #[test]
    fn overhead_report_measures_both_arms() {
        let r = telemetry_overhead(Effort::Quick);
        assert!(r.on_pps > 0.0 && r.off_pps > 0.0, "{r:?}");
        assert!(r.overhead() >= 0.0 && r.overhead() < 1.0, "{r:?}");
    }

    #[test]
    fn throughput_telemetry_exports_aggregate_counters() {
        let reg = throughput_telemetry(Effort::Quick);
        let splits = reg.get("pp_splits_total", &[]).expect("aggregate splits family");
        assert!(splits.value() > 0.0, "the enterprise wave must split packets");
        assert!(reg.get("pp_ring_depth_highwater", &[("shard", "0")]).is_some());
    }

    #[test]
    fn workload_targets_every_slice() {
        let tb = testbed();
        let wave = workload(Effort::Quick);
        assert!(wave.len() > 500, "window too small: {}", wave.len());
        for k in 0..SLICES {
            assert!(wave.iter().any(|p| p.port == tb.split_port(k)), "slice {k} unused");
        }
    }
}
