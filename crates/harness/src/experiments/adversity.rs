//! The adversity sweep: goodput and eviction behaviour vs NF-leg loss.
//!
//! Not a figure from the paper — it measures the mechanism the paper only
//! motivates: §3.3 argues the evictor exists because packets are "dropped
//! by NFs … or lost by lossy links", so this sweep injects exactly that
//! loss on the NF → switch leg (plus a mild reorder, the realistic
//! companion of loss) and reports, per loss rate, the goodput of both
//! deployments, the delivered fraction, and the evictor's counters. The
//! conformance oracle is asserted at every point: whatever the loss rate,
//! the counters must balance against the occupied slots.
//!
//! Everything derives from one fixed seed, so `pp-exp adversity` with the
//! same seed produces byte-identical JSON — the series doubles as a
//! regression artifact for CI.

use crate::experiments::Effort;
use crate::testbed::{run, ChainSpec, DeployMode, ParkParams, TestbedConfig};
use pp_metrics::Series;
use pp_netsim::adversity::{AdversityProfile, LegProfile};
use pp_trafficgen::gen::SizeModel;

/// The sweep's fixed scenario seed (reseeding is the replay knob).
const SCENARIO_SEED: u64 = 7;

/// One operating point of the sweep: `loss` on the NF → switch leg (plus
/// the companion reorder once loss is non-zero), everything else pinned to
/// the scenario seed. Mode is left at the default; callers set it.
fn point_config(loss: f64, effort: Effort) -> TestbedConfig {
    let adv = AdversityProfile {
        seed: SCENARIO_SEED,
        from_nf: LegProfile {
            drop: loss,
            reorder: (loss > 0.0) as u8 as f64 * 0.1,
            max_displacement: 16,
            ..Default::default()
        },
        ..Default::default()
    };
    let mut cfg = TestbedConfig {
        nic_gbps: 10.0,
        rate_gbps: 3.0,
        sizes: SizeModel::Fixed(512),
        duration: match effort {
            Effort::Quick => pp_netsim::time::SimDuration::from_millis(2),
            Effort::Full => pp_netsim::time::SimDuration::from_millis(12),
        },
        chain: ChainSpec::MacSwap,
        flows: 32,
        seed: SCENARIO_SEED,
        adversity: adv,
        ..Default::default()
    };
    cfg.server.jitter_frac = 0.0;
    cfg.server.modulation_amplitude = 0.0;
    cfg
}

/// The sweep's PayloadPark deployment: a deliberately small lookup table
/// (≈0.2 % of pipe SRAM) so the evictor, not just the link, is under test.
fn park_mode() -> DeployMode {
    DeployMode::PayloadPark(ParkParams { sram_fraction: 0.002, expiry: 2, ..Default::default() })
}

/// One representative PayloadPark run at the sweep's harshest loss point —
/// the run `pp-exp adversity --telemetry FILE` exports, chosen because it
/// exercises every counter family (splits, merges, evictions, faults).
pub fn adversity_report(effort: Effort) -> crate::testbed::RunReport {
    let mut cfg = point_config(0.08, effort);
    cfg.mode = park_mode();
    run(&cfg)
}

/// Goodput / premature-eviction curves vs NF-leg loss rate, baseline
/// against PayloadPark. A deliberately small lookup table (≈0.2 % of pipe
/// SRAM) keeps the circular buffers wrapping inside the window so the
/// evictor, not just the link, is under test.
pub fn adversity(effort: Effort) -> Series {
    let losses: Vec<f64> = match effort {
        Effort::Quick => vec![0.0, 0.02, 0.08],
        Effort::Full => vec![0.0, 0.005, 0.01, 0.02, 0.05, 0.1, 0.2],
    };
    let mut series = Series::new(
        "Adversity: goodput & evictions vs NF-leg loss (MacSwap, 512B, seeded scenario)",
        "loss_pct",
        vec![
            "goodput_base_gbps".into(),
            "goodput_pp_gbps".into(),
            "delivered_frac_pp".into(),
            "evictions".into(),
            "premature_evict".into(),
            "dup_merge".into(),
            "injected_lost".into(),
        ],
    );
    for &loss in &losses {
        let mut cfg = point_config(loss, effort);

        cfg.mode = DeployMode::Baseline;
        let base = run(&cfg);
        cfg.mode = park_mode();
        let park = run(&cfg);
        // The conformance oracle must hold at every operating point.
        assert!(
            park.oracle_violations.is_empty(),
            "oracle violated at loss {loss}: {:?}",
            park.oracle_violations
        );
        let c = park.counters.expect("park counters");
        let delivered_frac = park.health.delivered as f64 / park.health.offered.max(1) as f64;
        series.push(
            loss * 100.0,
            vec![
                base.goodput_gbps,
                park.goodput_gbps,
                delivered_frac,
                c.evictions as f64,
                c.premature_evictions as f64,
                c.dup_merge as f64,
                park.fault_tally.lost() as f64,
            ],
        );
    }
    series
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn adversity_sweep_is_deterministic_and_loss_responsive() {
        let a = adversity(Effort::Quick);
        let b = adversity(Effort::Quick);
        // Byte-identical JSON from the same seed: the acceptance criterion.
        assert_eq!(a.render_json(), b.render_json());

        let delivered = a.column("delivered_frac_pp").unwrap();
        let lost = a.column("injected_lost").unwrap();
        let evictions = a.column("evictions").unwrap();
        // Loss 0: everything delivered, nothing injected.
        assert!(delivered[0] > 0.999, "{delivered:?}");
        assert_eq!(lost[0], 0.0);
        // Top loss rate: deliveries drop and the evictor reclaims orphans.
        let last = delivered.len() - 1;
        assert!(delivered[last] < delivered[0], "{delivered:?}");
        assert!(lost[last] > 0.0);
        assert!(evictions[last] > 0.0, "orphaned slots must be evicted: {evictions:?}");
    }
}
