//! Replayable repro files and the pinned-regression corpus.
//!
//! A repro is one JSON document: the case seed, the (possibly shrunk)
//! config, the failure it reproduced, and a copy of the expanded
//! deployment (`ParkConfig`) the config maps to. The embedded
//! deployment is a **drift guard**: replay re-derives the deployment
//! from the config axes and refuses to run if the two disagree — a
//! changed generator would otherwise silently replay a different case
//! than the one that failed.
//!
//! `corpus/` at the repository root holds repros of bugs this fuzzer
//! (or its satellites) flushed out, minimized and then fixed; CI
//! replays the whole directory on every push and requires each case to
//! run clean now.

use super::config::FuzzConfig;
use super::driver::{run_case, Bug, CaseOutcome};
use payloadpark::jsonio::{self, obj, Value};
use std::fs;
use std::io;
use std::path::{Path, PathBuf};

/// Format tag every repro carries.
pub const REPRO_FORMAT: &str = "pp-fuzz-repro-v1";

/// A parsed repro file.
#[derive(Debug, Clone, PartialEq)]
pub struct Repro {
    /// Case seed the config was generated from.
    pub seed: u64,
    /// The (possibly shrunk) failing config.
    pub config: FuzzConfig,
    /// The failure the repro reproduced when it was written.
    pub failure: String,
}

/// Renders a repro as deterministic JSON (byte-stable across
/// parse → render, which the shrinker-determinism CI check diffs).
pub fn render_repro(repro: &Repro) -> String {
    obj(vec![
        ("format", Value::str(REPRO_FORMAT)),
        ("seed", Value::num(repro.seed)),
        ("failure", Value::str(repro.failure.clone())),
        ("config", repro.config.to_json_value()),
        ("deployment", repro.config.deployment().to_json_value()),
    ])
    .render()
}

/// Parses a repro document, checking the format tag and the embedded
/// deployment against what the config expands to today.
pub fn parse_repro(text: &str) -> Result<Repro, String> {
    let v = jsonio::parse(text).ok_or("repro is not valid JSON")?;
    match v.get("format").and_then(Value::as_str) {
        Some(REPRO_FORMAT) => {}
        other => return Err(format!("unknown repro format {other:?}")),
    }
    let seed = v.get("seed").and_then(Value::as_u64).ok_or("missing/invalid \"seed\"")?;
    let config = FuzzConfig::from_json_value(v.get("config").ok_or("missing \"config\"")?)?;
    let failure =
        v.get("failure").and_then(Value::as_str).ok_or("missing/invalid \"failure\"")?.to_owned();
    let embedded = v.get("deployment").ok_or("missing \"deployment\"")?;
    let derived = config.deployment().to_json_value();
    if *embedded != derived {
        return Err(
            "deployment drift: the config expands to a different deployment than the repro \
             captured (generator changed since the repro was written)"
                .into(),
        );
    }
    Ok(Repro { seed, config, failure })
}

/// Writes a repro into `dir` (created if missing) as
/// `repro-<seed>-<len>.json`; returns the path.
pub fn write_repro(dir: &Path, repro: &Repro) -> io::Result<PathBuf> {
    fs::create_dir_all(dir)?;
    let name = format!("repro-{:016x}.json", repro.seed);
    let path = dir.join(name);
    fs::write(&path, render_repro(repro))?;
    Ok(path)
}

/// The outcome of replaying one repro file.
#[derive(Debug, Clone)]
pub struct Replay {
    /// The parsed repro.
    pub repro: Repro,
    /// What the case does against today's code.
    pub outcome: CaseOutcome,
}

/// Replays one repro file against the current implementation.
pub fn replay_file(path: &Path) -> Result<Replay, String> {
    let text = fs::read_to_string(path).map_err(|e| format!("{}: {e}", path.display()))?;
    let repro = parse_repro(&text).map_err(|e| format!("{}: {e}", path.display()))?;
    let outcome = run_case(&repro.config, Bug::None);
    Ok(Replay { repro, outcome })
}

/// All `.json` files in a corpus directory, sorted by name for
/// deterministic replay order.
pub fn corpus_files(dir: &Path) -> io::Result<Vec<PathBuf>> {
    let mut files: Vec<PathBuf> = fs::read_dir(dir)?
        .filter_map(|e| e.ok().map(|e| e.path()))
        .filter(|p| p.extension().is_some_and(|x| x == "json"))
        .collect();
    files.sort();
    Ok(files)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> Repro {
        let mut config = FuzzConfig::generate(9);
        config.slots = 48; // keep it runnable
        Repro { seed: 9, config, failure: "engine (4 workers): counters diverged".into() }
    }

    #[test]
    fn repro_round_trips_byte_identically() {
        let repro = sample();
        let text = render_repro(&repro);
        let back = parse_repro(&text).expect("parses");
        assert_eq!(back, repro);
        assert_eq!(render_repro(&back), text);
    }

    #[test]
    fn deployment_drift_is_refused() {
        let repro = sample();
        let mut v = jsonio::parse(&render_repro(&repro)).unwrap();
        // Mutate the embedded config's slot count without touching the
        // captured deployment: replay must refuse the mismatch.
        if let Value::Obj(fields) = &mut v {
            for (k, val) in fields.iter_mut() {
                if k == "config" {
                    if let Value::Obj(cfg_fields) = val {
                        for (ck, cv) in cfg_fields.iter_mut() {
                            if ck == "slots" {
                                *cv = Value::num(96u64);
                            }
                        }
                    }
                }
            }
        }
        let err = parse_repro(&v.render()).unwrap_err();
        assert!(err.contains("drift"), "{err}");
    }

    #[test]
    fn unknown_formats_are_rejected() {
        assert!(parse_repro("{\"format\":\"pp-fuzz-repro-v9\"}").unwrap_err().contains("format"));
        assert!(parse_repro("not json").unwrap_err().contains("JSON"));
    }
}
